// Instance-construction benchmark: the parallel, allocation-lean
// IncidenceIndex build path vs the serial reference build on the Fig. 5
// Arenas fixture. Emits a machine-readable BENCH_index_build.json so the
// perf trajectory of the cold build stage — the last major serial stage in
// the serving path — is tracked across PRs.
//
// For every motif the bench times:
//   reference      — IncidenceIndex::BuildSerialReference: serial
//                    per-target enumeration with materialized
//                    common-neighbor vectors, hash-map edge-id resolution
//                    in the CSR fill, per-edge scratch sort for the
//                    per-target counts.
//   build @ T      — IncidenceIndex::Build at T = 1, 2, 4, 8 threads:
//                    task-parallel enumeration (hub targets split by
//                    first-neighbor chunk), marker-based O(1) adjacency
//                    probes, counting-sort interning with bucket-table id
//                    resolution, blocked count-then-fill CSR passes. The
//                    per-stage breakdown (enumerate / intern / csr) comes
//                    from IncidenceIndex::BuildStats.
// Every measured build is verified BitIdentical to the reference, so the
// speedups never come from computing something different.
//
// Flags: --quick (fewer repetitions, CI smoke mode), --threads=N (caps
//        the measured thread points at N — the TSan job passes 4 so the
//        sweep never exceeds its sanitizer budget; the 1-thread point
//        always runs), --out=PATH (default BENCH_index_build.json).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/timer.h"
#include "core/problem.h"
#include "graph/datasets.h"
#include "motif/incidence_index.h"

namespace tpp::bench {
namespace {

using core::TppInstance;
using motif::IncidenceIndex;
using motif::MotifKind;

constexpr size_t kNumTargets = 200;
constexpr int kThreadPoints[] = {1, 2, 4, 8};

struct BuildPoint {
  int threads = 0;
  double total_ms = 0;
  double enumerate_ms = 0;
  double intern_ms = 0;
  double csr_ms = 0;
  double speedup = 0;  ///< reference_ms / total_ms
};

struct MotifResult {
  std::string motif;
  size_t instances = 0;
  size_t interned_edges = 0;
  size_t tasks = 0;
  double reference_ms = 0;
  std::vector<BuildPoint> points;
};

TppInstance MakeArenas(MotifKind kind) {
  Result<graph::Graph> g = graph::MakeArenasEmailLike(1);
  TPP_CHECK(g.ok());
  Rng rng(7);
  auto targets = *core::SampleTargets(*g, kNumTargets, rng);
  return *core::MakeInstance(*g, targets, kind);
}

MotifResult RunMotif(MotifKind kind, bool quick, int max_threads) {
  const TppInstance inst = MakeArenas(kind);
  MotifResult out;
  out.motif = std::string(motif::MotifName(kind));
  // Pentagon probes O(deg^3) per target; keep its repetitions low so the
  // full sweep stays seconds, not minutes.
  const size_t reps =
      quick ? (kind == MotifKind::kPentagon ? 1 : 3)
            : (kind == MotifKind::kPentagon ? 3 : 10);

  const IncidenceIndex reference = *IncidenceIndex::BuildSerialReference(
      inst.released, inst.targets, inst.motif);
  {
    double total = 0;
    for (size_t r = 0; r < reps; ++r) {
      WallTimer timer;
      IncidenceIndex idx = *IncidenceIndex::BuildSerialReference(
          inst.released, inst.targets, inst.motif);
      total += timer.Millis();
      TPP_CHECK_EQ(idx.TotalAlive(), reference.TotalAlive());
    }
    out.reference_ms = total / static_cast<double>(reps);
  }

  for (int threads : kThreadPoints) {
    if (threads > max_threads && threads != 1) continue;
    IncidenceIndex::BuildOptions options;
    options.threads = threads;
    BuildPoint point;
    point.threads = threads;
    double total = 0, enumerate = 0, intern = 0, csr = 0;
    for (size_t r = 0; r < reps; ++r) {
      IncidenceIndex::BuildStats stats;
      WallTimer timer;
      IncidenceIndex idx = *IncidenceIndex::Build(
          inst.released, inst.targets, inst.motif, options, &stats);
      total += timer.Millis();
      enumerate += stats.enumerate_seconds * 1e3;
      intern += stats.intern_seconds * 1e3;
      csr += stats.csr_seconds * 1e3;
      if (r == 0) {
        TPP_CHECK(idx.BitIdentical(reference));
        out.instances = stats.instances;
        out.interned_edges = stats.interned_edges;
        out.tasks = stats.tasks;
      }
    }
    point.total_ms = total / static_cast<double>(reps);
    point.enumerate_ms = enumerate / static_cast<double>(reps);
    point.intern_ms = intern / static_cast<double>(reps);
    point.csr_ms = csr / static_cast<double>(reps);
    point.speedup =
        point.total_ms > 0 ? out.reference_ms / point.total_ms : 0;
    out.points.push_back(point);
  }
  return out;
}

double SpeedupAt(const MotifResult& result, int threads) {
  for (const BuildPoint& point : result.points) {
    if (point.threads == threads) return point.speedup;
  }
  return 0;
}

void WriteJson(const std::string& path, bool quick,
               const std::vector<MotifResult>& results,
               double headline_speedup) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"index_build\",\n");
  std::fprintf(f, "  \"fixture\": \"arenas_email_like\",\n");
  std::fprintf(f, "  \"num_targets\": %zu,\n", kNumTargets);
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"bit_identical_to_serial\": true,\n");
  std::fprintf(f, "  \"motifs\": [\n");
  for (size_t m = 0; m < results.size(); ++m) {
    const MotifResult& result = results[m];
    std::fprintf(f,
                 "    {\"motif\": \"%s\", \"instances\": %zu, "
                 "\"interned_edges\": %zu, \"tasks\": %zu, "
                 "\"reference_ms\": %.3f, \"builds\": [\n",
                 result.motif.c_str(), result.instances,
                 result.interned_edges, result.tasks, result.reference_ms);
    for (size_t p = 0; p < result.points.size(); ++p) {
      const BuildPoint& point = result.points[p];
      std::fprintf(f,
                   "      {\"threads\": %d, \"total_ms\": %.3f, "
                   "\"enumerate_ms\": %.3f, \"intern_ms\": %.3f, "
                   "\"csr_ms\": %.3f, \"speedup_vs_reference\": %.2f}%s\n",
                   point.threads, point.total_ms, point.enumerate_ms,
                   point.intern_ms, point.csr_ms, point.speedup,
                   p + 1 < result.points.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", m + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"headline_speedup_4threads\": %.2f\n}\n",
               headline_speedup);
  std::fclose(f);
  std::printf("[json] %s\n", path.c_str());
}

int Run(int argc, char** argv) {
  Result<ParsedArgs> args = ParsedArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    return 2;
  }
  Status threads_status = ApplyThreadsFlag(*args);
  if (!threads_status.ok()) {
    std::fprintf(stderr, "error: %s\n", threads_status.ToString().c_str());
    return 2;
  }
  const bool quick = args->GetBool("quick");
  Result<int64_t> max_threads_flag = args->GetInt("threads", 8);
  // <= 0 means "auto" to ApplyThreadsFlag; for the sweep it means no cap.
  const int max_threads =
      *max_threads_flag <= 0 ? 8 : static_cast<int>(*max_threads_flag);
  const std::string out_path =
      args->GetString("out", "BENCH_index_build.json");

  std::printf("== index build: parallel allocation-lean path vs serial "
              "reference, Arenas-email-like, |T|=%zu%s ==\n\n",
              kNumTargets, quick ? ", quick" : "");
  std::vector<MotifResult> results;
  for (MotifKind kind : motif::kAllMotifs) {
    MotifResult result = RunMotif(kind, quick, max_threads);
    std::printf("%-9s %7zu inst %6zu edges %4zu tasks  reference %9.2f ms\n",
                result.motif.c_str(), result.instances,
                result.interned_edges, result.tasks, result.reference_ms);
    for (const BuildPoint& point : result.points) {
      std::printf("          threads=%d  total %9.2f ms  "
                  "(enum %7.2f + intern %6.2f + csr %6.2f)  "
                  "speedup %5.2fx\n",
                  point.threads, point.total_ms, point.enumerate_ms,
                  point.intern_ms, point.csr_ms, point.speedup);
    }
    results.push_back(std::move(result));
  }
  // Headline: the better of Rectangle/RecTri at 4 threads (the acceptance
  // bar of the cold-build work; Triangle builds are too small to matter
  // and Pentagon is not in the paper's evaluation). When --threads capped
  // the sweep below 4, the widest point that actually ran stands in.
  int headline_threads = 1;
  for (int threads : kThreadPoints) {
    if (threads <= max_threads && threads <= 4) headline_threads = threads;
  }
  double headline = 0;
  for (const MotifResult& result : results) {
    if (result.motif == "Rectangle" || result.motif == "RecTri") {
      headline = std::max(headline, SpeedupAt(result, headline_threads));
    }
  }
  std::printf("\nheadline (best of Rectangle/RecTri at %d threads): "
              "%.2fx, all builds bit-identical to serial\n",
              headline_threads, headline);
  WriteJson(out_path, quick, results, headline);
  return 0;
}

}  // namespace
}  // namespace tpp::bench

int main(int argc, char** argv) { return tpp::bench::Run(argc, argv); }
