// Fig. 4 reproduction: evolution of the number of existing target
// subgraphs vs budget k on the DBLP(-like) graph with the scalable "-R"
// algorithms, |T| = 50, k swept to 100.
//
// Paper shape to check: curves do NOT reach zero at k=100 (DBLP's clique
// density yields enormous initial similarity); SGB-R and CT-R:TBD drop the
// fastest; RD is flat; for Triangle, all non-random methods nearly
// coincide.
//
// The graph defaults to scale 0.1 of the published DBLP size for bench
// runtime; set TPP_BENCH_SCALE=1.0 to reproduce at full size.

#include <cstdio>

#include "common/table.h"
#include "graph/datasets.h"
#include "harness_common.h"
#include "motif/enumerate.h"

namespace tpp::bench {
namespace {

constexpr size_t kNumTargets = 50;
constexpr size_t kMaxBudget = 100;

int Run() {
  const size_t samples = BenchSamples(3);
  const double scale = BenchScale(0.1);
  std::printf("== Fig. 4: similarity vs budget k, DBLP-like (scale %.2f), "
              "|T|=%zu, scalable (-R) algorithms, %zu samplings ==\n\n",
              scale, kNumTargets, samples);
  RunConfig config;
  config.restricted = true;

  Result<graph::Graph> graph = graph::MakeDblpLike(1, scale);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph generation failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %s\n\n", graph->DebugString().c_str());

  std::vector<size_t> grid = {0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  (void)kMaxBudget;

  for (motif::MotifKind kind : motif::kPaperMotifs) {
    std::vector<core::TppInstance> instances;
    double s0_mean = 0.0;
    for (size_t s = 0; s < samples; ++s) {
      Rng rng(700 + s);
      auto targets = *core::SampleTargets(*graph, kNumTargets, rng);
      instances.push_back(*core::MakeInstance(*graph, targets, kind));
      s0_mean += static_cast<double>(motif::TotalSimilarity(
                     instances.back().released, instances.back().targets,
                     kind)) /
                 samples;
    }

    TextTable table;
    CsvWriter csv;
    std::vector<std::string> header = {"k"};
    for (Method m : kAllMethods) {
      std::string name(MethodName(m));
      if (m != Method::kRd && m != Method::kRdt) name += "-R";
      header.push_back(name);
    }
    table.SetHeader(header);
    csv.SetHeader(header);

    std::vector<std::vector<double>> mean(kAllMethods.size(),
                                          std::vector<double>(grid.size()));
    for (size_t mi = 0; mi < kAllMethods.size(); ++mi) {
      for (size_t s = 0; s < samples; ++s) {
        Rng rng(900 + 17 * s + mi);
        auto curve = *SimilarityEvolution(instances[s], kAllMethods[mi],
                                          grid, config, rng);
        for (size_t gi = 0; gi < grid.size(); ++gi) {
          mean[mi][gi] += curve.similarity[gi] / samples;
        }
      }
    }
    for (size_t gi = 0; gi < grid.size(); ++gi) {
      std::vector<std::string> row = {std::to_string(grid[gi])};
      for (size_t mi = 0; mi < kAllMethods.size(); ++mi) {
        row.push_back(Fmt(mean[mi][gi], 1));
      }
      table.AddRow(row);
      csv.AddRow(row);
    }
    std::printf("-- %s pattern: mean s({},T) = %s --\n",
                std::string(motif::MotifName(kind)).c_str(),
                Fmt(s0_mean, 1).c_str());
    std::printf("%s\n", table.ToString().c_str());
    WriteCsv("fig4_" + std::string(motif::MotifName(kind)), csv);
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace tpp::bench

int main() { return tpp::bench::Run(); }
