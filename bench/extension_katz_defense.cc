// Extension bench (paper §VII future work item 1): defending against the
// Katz index. The Katz dissimilarity is not submodular (no greedy
// guarantee), but the first-order greedy of core/katz_defense.h still
// drives the attacker's score down far faster than motif-based TPP with
// the same number of deletions.

#include <cstdio>

#include "common/table.h"
#include "graph/datasets.h"
#include "harness_common.h"

namespace tpp::bench {
namespace {

constexpr size_t kNumTargets = 10;

int Run() {
  std::printf("== Extension: Katz-index defense, Arenas-email-like, "
              "|T|=%zu ==\n\n",
              kNumTargets);
  Result<graph::Graph> graph = graph::MakeArenasEmailLike(1);
  if (!graph.ok()) return 1;

  linkpred::KatzParams params;
  params.beta = 0.05;
  params.max_length = 4;

  TextTable table;
  CsvWriter csv;
  std::vector<std::string> header = {
      "sample", "Katz s({},T)", "after Triangle TPP (same k)",
      "after Katz defense", "deletions k"};
  table.SetHeader(header);
  csv.SetHeader(header);

  const size_t samples = BenchSamples(3);
  for (size_t s = 0; s < samples; ++s) {
    Rng rng(400 + s);
    auto targets = *core::SampleTargets(*graph, kNumTargets, rng);
    core::TppInstance instance =
        *core::MakeInstance(*graph, targets, motif::MotifKind::kTriangle);
    double initial =
        *core::TotalKatzScore(instance.released, targets, params);

    // Triangle TPP to full protection.
    RunConfig config;
    Rng run_rng(500 + s);
    auto triangle =
        *RunToFullProtection(instance, Method::kSgb, config, run_rng);
    graph::Graph triangle_released = instance.released;
    triangle_released.RemoveEdges(triangle.protectors);
    double after_triangle =
        *core::TotalKatzScore(triangle_released, targets, params);

    // Katz-aware defense with the same deletion count.
    core::KatzDefenseOptions opts;
    opts.katz = params;
    opts.budget = triangle.protectors.size();
    auto katz = *core::GreedyKatzDefense(instance, opts);

    std::vector<std::string> row = {
        std::to_string(s), Fmt(initial, 4), Fmt(after_triangle, 4),
        Fmt(katz.final_score, 4),
        std::to_string(triangle.protectors.size())};
    table.AddRow(row);
    csv.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Triangle-motif TPP removes all 2-path evidence but leaves "
              "3-walks; the\nKatz-aware greedy spends the same budget "
              "directly on the attacker's objective.\n\n");
  WriteCsv("extension_katz_defense", csv);
  return 0;
}

}  // namespace
}  // namespace tpp::bench

int main() { return tpp::bench::Run(); }
