// Round-loop benchmark of the greedy selection strategies: for every
// (solver, motif) pair on the Fig. 5 Arenas-like fixture the bench times
// the full matrix of round modes against the historical cold sweep and
// emits a machine-readable BENCH_solver_rounds.json so the perf
// trajectory of the solve loop — the half of serving the round engine
// owns — is tracked across PRs (tools/bench_guard.cc fails CI on
// regressions against the committed floors).
//
//   cold         — GreedyOptions{rounds = kColdSweep}: the hoisted
//                  candidate sweep re-evaluating every candidate each
//                  round.
//   incremental  — GreedyOptions{rounds = kIncremental}: per-candidate
//                  gains persist across rounds; each committed deletion's
//                  dirty set is the only re-evaluation work, selection is
//                  a flat O(universe) scan.
//   heap         — GreedyOptions{rounds = kHeap}: same gain maintenance,
//                  selection on the addressable SelectionHeap — only
//                  dirtied entries are re-keyed, the pick is the heap
//                  top. Heap operation counters are reported per run.
//   sgb only:
//   lazy-classic — the historical CELF loop (std::priority_queue of
//                  stale bounds, re-push on every stale pop).
//   lazy-dirty   — dirty-aware CELF (the default --lazy path): the
//                  selection heap re-keyed from the dirty set, no stale
//                  pops at all.
//
// EVERY rep cross-checks bit-identity: picks, realized gains, charged
// targets, similarity trajectory, final similarity, and the
// gain-evaluation work metric must match the cold sweep for incremental,
// heap, and lazy-dirty (a mismatch aborts the bench, failing CI).
// lazy-classic is pick-identical but performs a different number of
// evaluations by construction (stale pops), so only its picks are
// checked.
//
// The bench also replays the incremental run's picks through a fresh
// IncidenceIndex collecting each round's dirty set, reporting its
// mean/max size next to the live candidate count — the measured locality
// that makes dirty-driven rounds pay off.
//
// Flags: --quick (fewer repetitions, CI smoke mode), --threads=N,
//        --out=PATH (default BENCH_solver_rounds.json). TPP_PIN_THREADS=1
//        pins pool workers (recorded in the JSON).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/selection_heap.h"
#include "core/tpp.h"
#include "graph/datasets.h"
#include "motif/incidence_index.h"

namespace tpp::bench {
namespace {

using core::CandidateScope;
using core::CelfMode;
using core::CtGreedy;
using core::GreedyOptions;
using core::IndexedEngine;
using core::ProtectionResult;
using core::RoundMode;
using core::SelectionHeapStats;
using core::SgbGreedy;
using core::TppInstance;
using core::WtGreedy;
using graph::EdgeKey;
using motif::IncidenceIndex;
using motif::MotifKind;

// 200 sampled targets, like bench/index_build: the round loops only
// differentiate on candidate sets big enough that a per-round sweep is
// real work (the 20-target gain_kernels fixture has 26 Triangle
// candidates — setup noise dominates there).
constexpr size_t kNumTargets = 200;
constexpr size_t kSgbBudget = 600;
constexpr size_t kPerTargetBudget = 2;

struct SolverResult {
  std::string solver;
  std::string motif;
  size_t rounds = 0;          ///< committed picks
  size_t universe = 0;        ///< round-view universe size
  double candidates_mean = 0; ///< live candidates per round
  double dirty_mean = 0;      ///< dirty-set size per committed pick
  size_t dirty_max = 0;
  double cold_ms = 0;
  double incremental_ms = 0;
  double heap_ms = 0;
  double lazy_classic_ms = 0;  ///< sgb only; 0 elsewhere
  double lazy_dirty_ms = 0;    ///< sgb only; 0 elsewhere
  SelectionHeapStats heap_stats;  ///< one heap-mode run's counters
  double Speedup() const {
    return incremental_ms > 0 ? cold_ms / incremental_ms : 0;
  }
  double HeapSpeedup() const { return heap_ms > 0 ? cold_ms / heap_ms : 0; }
  double LazyDirtySpeedup() const {
    return lazy_dirty_ms > 0 ? lazy_classic_ms / lazy_dirty_ms : 0;
  }
};

TppInstance MakeArenas(MotifKind kind) {
  Result<graph::Graph> g = graph::MakeArenasEmailLike(1);
  TPP_CHECK(g.ok());
  Rng rng(7);
  auto targets = *core::SampleTargets(*g, kNumTargets, rng);
  return *core::MakeInstance(*g, targets, kind);
}

Result<ProtectionResult> RunSolverOnce(std::string_view solver,
                                       IndexedEngine& engine,
                                       const GreedyOptions& options) {
  if (solver == "sgb") return SgbGreedy(engine, kSgbBudget, options);
  std::vector<size_t> budgets(kNumTargets, kPerTargetBudget);
  if (solver == "ct") return CtGreedy(engine, budgets, options);
  TPP_CHECK(solver == "wt");
  return WtGreedy(engine, budgets, options);
}

// The bit-identity contract: everything the cold sweep reports except
// wall-clock timestamps. `work_metric_too` additionally requires equal
// gain-evaluation counts (all modes except classic CELF, whose stale pops
// legitimately cost extra point queries).
void CheckBitIdentical(const ProtectionResult& cold,
                       const ProtectionResult& other, bool work_metric_too) {
  TPP_CHECK_EQ(cold.initial_similarity, other.initial_similarity);
  TPP_CHECK_EQ(cold.final_similarity, other.final_similarity);
  if (work_metric_too) {
    TPP_CHECK_EQ(cold.gain_evaluations, other.gain_evaluations);
  }
  TPP_CHECK_EQ(cold.picks.size(), other.picks.size());
  for (size_t i = 0; i < cold.picks.size(); ++i) {
    TPP_CHECK(cold.protectors[i] == other.protectors[i]);
    TPP_CHECK_EQ(cold.picks[i].edge, other.picks[i].edge);
    TPP_CHECK_EQ(cold.picks[i].realized_gain, other.picks[i].realized_gain);
    TPP_CHECK_EQ(cold.picks[i].for_target, other.picks[i].for_target);
    TPP_CHECK_EQ(cold.picks[i].similarity_after,
                 other.picks[i].similarity_after);
  }
}

SolverResult RunConfig(std::string_view solver, MotifKind kind, bool quick) {
  const TppInstance inst = MakeArenas(kind);
  const IndexedEngine prototype = *IndexedEngine::Create(inst);
  const CandidateScope scope = CandidateScope::kTargetSubgraphEdges;
  GreedyOptions cold_opts, incr_opts, heap_opts, classic_opts, dirty_opts;
  cold_opts.scope = incr_opts.scope = heap_opts.scope = classic_opts.scope =
      dirty_opts.scope = scope;
  cold_opts.rounds = RoundMode::kColdSweep;
  incr_opts.rounds = RoundMode::kIncremental;
  heap_opts.rounds = RoundMode::kHeap;
  classic_opts.lazy = true;
  classic_opts.celf = CelfMode::kClassic;
  dirty_opts.lazy = true;
  dirty_opts.celf = CelfMode::kDirtyAware;

  SolverResult out;
  out.solver = std::string(solver);
  out.motif = std::string(motif::MotifName(kind));
  out.universe = prototype.index().NumInternedEdges();
  heap_opts.heap_stats = &out.heap_stats;
  const bool sgb = solver == "sgb";

  const size_t reps = quick ? 3 : 12;
  double cold_ms = 0, incr_ms = 0, heap_ms = 0, classic_ms = 0, dirty_ms = 0;
  ProtectionResult reference;
  for (size_t r = 0; r < reps; ++r) {
    IndexedEngine cold_engine = prototype.Clone();
    WallTimer cold_timer;
    ProtectionResult cold = *RunSolverOnce(solver, cold_engine, cold_opts);
    cold_ms += cold_timer.Millis();

    IndexedEngine incr_engine = prototype.Clone();
    WallTimer incr_timer;
    ProtectionResult incr = *RunSolverOnce(solver, incr_engine, incr_opts);
    incr_ms += incr_timer.Millis();

    // The heap-ops counters accumulate across reps; divide by reps when
    // reading per-run numbers (WriteJson reports them normalized).
    IndexedEngine heap_engine = prototype.Clone();
    WallTimer heap_timer;
    ProtectionResult heap = *RunSolverOnce(solver, heap_engine, heap_opts);
    heap_ms += heap_timer.Millis();

    CheckBitIdentical(cold, incr, /*work_metric_too=*/true);
    CheckBitIdentical(cold, heap, /*work_metric_too=*/true);

    if (sgb) {
      IndexedEngine classic_engine = prototype.Clone();
      WallTimer classic_timer;
      ProtectionResult classic =
          *RunSolverOnce(solver, classic_engine, classic_opts);
      classic_ms += classic_timer.Millis();

      IndexedEngine dirty_engine = prototype.Clone();
      WallTimer dirty_timer;
      ProtectionResult dirty =
          *RunSolverOnce(solver, dirty_engine, dirty_opts);
      dirty_ms += dirty_timer.Millis();

      // Classic CELF's stale pops cost extra point queries; its picks are
      // identical but its work metric is its own.
      CheckBitIdentical(cold, classic, /*work_metric_too=*/false);
      CheckBitIdentical(cold, dirty, /*work_metric_too=*/true);
    }
    if (r == 0) reference = std::move(incr);
  }
  const double n = static_cast<double>(reps);
  out.cold_ms = cold_ms / n;
  out.incremental_ms = incr_ms / n;
  out.heap_ms = heap_ms / n;
  out.lazy_classic_ms = classic_ms / n;
  out.lazy_dirty_ms = dirty_ms / n;
  out.rounds = reference.picks.size();
  // Normalize the accumulated heap counters to one run.
  out.heap_stats.builds /= reps;
  out.heap_stats.built_rows /= reps;
  out.heap_stats.rekeys /= reps;
  out.heap_stats.inserts /= reps;
  out.heap_stats.removes /= reps;
  out.heap_stats.noops /= reps;
  out.heap_stats.sift_steps /= reps;

  // Replay the picks on a fresh index to measure each round's dirty set
  // and live candidate count — the locality the dirty-driven rounds
  // exploit (untimed; diagnostics only).
  IncidenceIndex replay =
      *IncidenceIndex::Build(inst.released, inst.targets, inst.motif);
  std::vector<uint32_t> dirty;
  size_t dirty_total = 0, candidates_total = 0;
  for (const core::PickTrace& pick : reference.picks) {
    candidates_total += replay.NumAliveEdges();
    dirty.clear();
    replay.DeleteEdge(pick.edge, &dirty);
    dirty_total += dirty.size();
    out.dirty_max = std::max(out.dirty_max, dirty.size());
  }
  if (!reference.picks.empty()) {
    out.dirty_mean = static_cast<double>(dirty_total) /
                     static_cast<double>(reference.picks.size());
    out.candidates_mean = static_cast<double>(candidates_total) /
                          static_cast<double>(reference.picks.size());
  }
  return out;
}

// Total cold vs incremental time of the CT/WT round loops across motifs —
// the acceptance headline of the incremental engine (SGB rounds were
// already a single flat scan, so they gain little and are excluded).
double AggregateCtWtSpeedup(const std::vector<SolverResult>& results) {
  double cold = 0, incr = 0;
  for (const SolverResult& result : results) {
    if (result.solver == "sgb") continue;
    cold += result.cold_ms;
    incr += result.incremental_ms;
  }
  return incr > 0 ? cold / incr : 0;
}

// Same aggregate with heap-mode selection — the tentpole headline of the
// selection heap.
double AggregateCtWtHeapSpeedup(const std::vector<SolverResult>& results) {
  double cold = 0, heap = 0;
  for (const SolverResult& result : results) {
    if (result.solver == "sgb") continue;
    cold += result.cold_ms;
    heap += result.heap_ms;
  }
  return heap > 0 ? cold / heap : 0;
}

void WriteJson(const std::string& path, bool quick,
               const std::vector<SolverResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"solver_rounds\",\n");
  std::fprintf(f, "  \"fixture\": \"arenas_email_like\",\n");
  std::fprintf(f, "  \"num_targets\": %zu,\n", kNumTargets);
  std::fprintf(f, "  \"scope\": \"subgraph\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"threads\": %d,\n", GlobalThreadCount());
  std::fprintf(f, "  \"pinned_threads\": %s,\n",
               ThreadPinningEnabled() ? "true" : "false");
  std::fprintf(f, "  \"bit_identical_to_cold_sweep\": true,\n");
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const SolverResult& r = results[i];
    const SelectionHeapStats& h = r.heap_stats;
    std::fprintf(
        f,
        "    {\"solver\": \"%s\", \"motif\": \"%s\", \"rounds\": %zu, "
        "\"universe_edges\": %zu, \"candidates_mean\": %.1f, "
        "\"dirty_mean\": %.1f, \"dirty_max\": %zu, \"cold_ms\": %.3f, "
        "\"incremental_ms\": %.3f, \"heap_ms\": %.3f, \"speedup\": %.2f, "
        "\"heap_speedup\": %.2f, \"heap_builds\": %llu, "
        "\"heap_built_rows\": %llu, \"heap_rekeys\": %llu, "
        "\"heap_inserts\": %llu, \"heap_removes\": %llu, "
        "\"heap_noops\": %llu, \"heap_sift_steps\": %llu",
        r.solver.c_str(), r.motif.c_str(), r.rounds, r.universe,
        r.candidates_mean, r.dirty_mean, r.dirty_max, r.cold_ms,
        r.incremental_ms, r.heap_ms, r.Speedup(), r.HeapSpeedup(),
        static_cast<unsigned long long>(h.builds),
        static_cast<unsigned long long>(h.built_rows),
        static_cast<unsigned long long>(h.rekeys),
        static_cast<unsigned long long>(h.inserts),
        static_cast<unsigned long long>(h.removes),
        static_cast<unsigned long long>(h.noops),
        static_cast<unsigned long long>(h.sift_steps));
    if (r.solver == "sgb") {
      std::fprintf(f,
                   ", \"lazy_classic_ms\": %.3f, \"lazy_dirty_ms\": %.3f, "
                   "\"lazy_dirty_vs_classic\": %.2f",
                   r.lazy_classic_ms, r.lazy_dirty_ms, r.LazyDirtySpeedup());
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"ct_wt_aggregate_speedup\": %.2f,\n",
               AggregateCtWtSpeedup(results));
  std::fprintf(f, "  \"ct_wt_heap_aggregate_speedup\": %.2f\n}\n",
               AggregateCtWtHeapSpeedup(results));
  std::fclose(f);
  std::printf("[json] %s\n", path.c_str());
}

int Run(int argc, char** argv) {
  Result<ParsedArgs> args = ParsedArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    return 2;
  }
  Status threads_status = ApplyThreadsFlag(*args);
  if (!threads_status.ok()) {
    std::fprintf(stderr, "error: %s\n", threads_status.ToString().c_str());
    return 2;
  }
  const bool quick = args->GetBool("quick");
  const std::string out_path =
      args->GetString("out", "BENCH_solver_rounds.json");

  std::printf("== solver rounds: cold vs incremental vs heap selection "
              "(sgb: + classic/dirty CELF), Arenas-email-like, |T|=%zu, "
              "scope=subgraph%s ==\n\n",
              kNumTargets, quick ? ", quick" : "");
  std::vector<SolverResult> results;
  for (std::string_view solver : {"sgb", "ct", "wt"}) {
    for (MotifKind kind : motif::kPaperMotifs) {
      SolverResult result = RunConfig(solver, kind, quick);
      std::printf("%-4s %-9s %3zu rounds  %6zu edges  "
                  "dirty %7.1f (max %5zu)  cold %9.3f ms  "
                  "incr %8.3f ms (%5.2fx)  heap %8.3f ms (%5.2fx)\n",
                  result.solver.c_str(), result.motif.c_str(), result.rounds,
                  result.universe, result.dirty_mean, result.dirty_max,
                  result.cold_ms, result.incremental_ms, result.Speedup(),
                  result.heap_ms, result.HeapSpeedup());
      if (result.solver == "sgb") {
        std::printf("     %-9s lazy-classic %8.3f ms  lazy-dirty %8.3f ms "
                    "(%5.2fx)  heap ops: %llu rekeys, %llu removes, "
                    "%llu sift steps\n",
                    result.motif.c_str(), result.lazy_classic_ms,
                    result.lazy_dirty_ms, result.LazyDirtySpeedup(),
                    static_cast<unsigned long long>(result.heap_stats.rekeys),
                    static_cast<unsigned long long>(
                        result.heap_stats.removes),
                    static_cast<unsigned long long>(
                        result.heap_stats.sift_steps));
      }
      results.push_back(std::move(result));
    }
  }
  std::printf("\nct/wt aggregate round-loop speedup: %.2fx incremental, "
              "%.2fx heap; every run bit-identical to the cold sweep\n",
              AggregateCtWtSpeedup(results),
              AggregateCtWtHeapSpeedup(results));
  WriteJson(out_path, quick, results);
  return 0;
}

}  // namespace
}  // namespace tpp::bench

int main(int argc, char** argv) { return tpp::bench::Run(argc, argv); }
