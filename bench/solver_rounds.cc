// Round-loop benchmark of the incremental round engine: SGB/CT/WT greedy
// runs with dirty-set gain maintenance (Engine::BeginRound on the
// persistent GainTable) against the historical cold sweep that re-evaluates
// every candidate every round. Emits a machine-readable
// BENCH_solver_rounds.json so the perf trajectory of the solve loop — the
// half of serving the incremental engine owns — is tracked across PRs.
//
// For every (solver, motif) pair on the Fig. 5 Arenas-like fixture the
// bench times:
//   cold         — GreedyOptions{rounds = kColdSweep}: the hoisted
//                  candidate sweep (CandidatesInto + GainVectorInto /
//                  CandidateGains) re-evaluating every candidate each
//                  round.
//   incremental  — GreedyOptions{rounds = kIncremental}: per-candidate
//                  gains persist across rounds; each committed deletion's
//                  dirty set (IncidenceIndex::DeleteEdge) is the only
//                  re-evaluation work, and CSR-2 upkeep is deferred to the
//                  next per-target read.
// EVERY rep cross-checks bit-identity: picks, realized gains, charged
// targets, similarity trajectory, final similarity, and the
// gain-evaluation work metric must match between the two paths, so the
// speedups never come from computing something different (a mismatch
// aborts the bench, failing CI).
//
// The bench also replays the incremental run's picks through a fresh
// IncidenceIndex collecting each round's dirty set, reporting its
// mean/max size next to the live candidate count — the measured locality
// that makes incremental rounds pay off.
//
// Flags: --quick (fewer repetitions, CI smoke mode), --threads=N,
//        --out=PATH (default BENCH_solver_rounds.json). TPP_PIN_THREADS=1
//        pins pool workers (recorded in the JSON).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/tpp.h"
#include "graph/datasets.h"
#include "motif/incidence_index.h"

namespace tpp::bench {
namespace {

using core::CandidateScope;
using core::CtGreedy;
using core::GreedyOptions;
using core::IndexedEngine;
using core::ProtectionResult;
using core::RoundMode;
using core::SgbGreedy;
using core::TppInstance;
using core::WtGreedy;
using graph::EdgeKey;
using motif::IncidenceIndex;
using motif::MotifKind;

// 200 sampled targets, like bench/index_build: the round loops only
// differentiate on candidate sets big enough that a per-round sweep is
// real work (the 20-target gain_kernels fixture has 26 Triangle
// candidates — setup noise dominates there).
constexpr size_t kNumTargets = 200;
constexpr size_t kSgbBudget = 60;
constexpr size_t kPerTargetBudget = 2;

struct SolverResult {
  std::string solver;
  std::string motif;
  size_t rounds = 0;          ///< committed picks
  size_t universe = 0;        ///< round-view universe size
  double candidates_mean = 0; ///< live candidates per round
  double dirty_mean = 0;      ///< dirty-set size per committed pick
  size_t dirty_max = 0;
  double cold_ms = 0;
  double incremental_ms = 0;
  double Speedup() const {
    return incremental_ms > 0 ? cold_ms / incremental_ms : 0;
  }
};

TppInstance MakeArenas(MotifKind kind) {
  Result<graph::Graph> g = graph::MakeArenasEmailLike(1);
  TPP_CHECK(g.ok());
  Rng rng(7);
  auto targets = *core::SampleTargets(*g, kNumTargets, rng);
  return *core::MakeInstance(*g, targets, kind);
}

Result<ProtectionResult> RunSolverOnce(std::string_view solver,
                                       IndexedEngine& engine,
                                       const GreedyOptions& options) {
  if (solver == "sgb") return SgbGreedy(engine, kSgbBudget, options);
  std::vector<size_t> budgets(kNumTargets, kPerTargetBudget);
  if (solver == "ct") return CtGreedy(engine, budgets, options);
  TPP_CHECK(solver == "wt");
  return WtGreedy(engine, budgets, options);
}

// The bit-identity contract of the incremental engine: everything the
// cold sweep reports except wall-clock timestamps.
void CheckBitIdentical(const ProtectionResult& cold,
                       const ProtectionResult& incremental,
                       std::string_view what) {
  TPP_CHECK_EQ(cold.initial_similarity, incremental.initial_similarity);
  TPP_CHECK_EQ(cold.final_similarity, incremental.final_similarity);
  TPP_CHECK_EQ(cold.gain_evaluations, incremental.gain_evaluations);
  TPP_CHECK_EQ(cold.picks.size(), incremental.picks.size());
  for (size_t i = 0; i < cold.picks.size(); ++i) {
    TPP_CHECK(cold.protectors[i] == incremental.protectors[i]);
    TPP_CHECK_EQ(cold.picks[i].edge, incremental.picks[i].edge);
    TPP_CHECK_EQ(cold.picks[i].realized_gain,
                 incremental.picks[i].realized_gain);
    TPP_CHECK_EQ(cold.picks[i].for_target, incremental.picks[i].for_target);
    TPP_CHECK_EQ(cold.picks[i].similarity_after,
                 incremental.picks[i].similarity_after);
  }
  (void)what;
}

SolverResult RunConfig(std::string_view solver, MotifKind kind, bool quick) {
  const TppInstance inst = MakeArenas(kind);
  const IndexedEngine prototype = *IndexedEngine::Create(inst);
  GreedyOptions cold_opts, incr_opts;
  cold_opts.scope = incr_opts.scope = CandidateScope::kTargetSubgraphEdges;
  cold_opts.rounds = RoundMode::kColdSweep;
  incr_opts.rounds = RoundMode::kIncremental;

  SolverResult out;
  out.solver = std::string(solver);
  out.motif = std::string(motif::MotifName(kind));
  out.universe = prototype.index().NumInternedEdges();

  const size_t reps = quick ? 3 : 12;
  double cold_ms = 0, incr_ms = 0;
  ProtectionResult reference;
  for (size_t r = 0; r < reps; ++r) {
    IndexedEngine cold_engine = prototype.Clone();
    WallTimer cold_timer;
    ProtectionResult cold = *RunSolverOnce(solver, cold_engine, cold_opts);
    cold_ms += cold_timer.Millis();

    IndexedEngine incr_engine = prototype.Clone();
    WallTimer incr_timer;
    ProtectionResult incr = *RunSolverOnce(solver, incr_engine, incr_opts);
    incr_ms += incr_timer.Millis();

    CheckBitIdentical(cold, incr, solver);
    if (r == 0) reference = std::move(incr);
  }
  out.cold_ms = cold_ms / static_cast<double>(reps);
  out.incremental_ms = incr_ms / static_cast<double>(reps);
  out.rounds = reference.picks.size();

  // Replay the picks on a fresh index to measure each round's dirty set
  // and live candidate count — the locality the incremental engine
  // exploits (untimed; diagnostics only).
  IncidenceIndex replay =
      *IncidenceIndex::Build(inst.released, inst.targets, inst.motif);
  std::vector<uint32_t> dirty;
  size_t dirty_total = 0, candidates_total = 0;
  for (const core::PickTrace& pick : reference.picks) {
    candidates_total += replay.NumAliveEdges();
    dirty.clear();
    replay.DeleteEdge(pick.edge, &dirty);
    dirty_total += dirty.size();
    out.dirty_max = std::max(out.dirty_max, dirty.size());
  }
  if (!reference.picks.empty()) {
    out.dirty_mean = static_cast<double>(dirty_total) /
                     static_cast<double>(reference.picks.size());
    out.candidates_mean = static_cast<double>(candidates_total) /
                          static_cast<double>(reference.picks.size());
  }
  return out;
}

// Total cold vs incremental time of the CT/WT round loops across motifs —
// the acceptance headline of the incremental engine (SGB rounds were
// already a single flat scan, so they gain little and are excluded).
double AggregateCtWtSpeedup(const std::vector<SolverResult>& results) {
  double cold = 0, incr = 0;
  for (const SolverResult& result : results) {
    if (result.solver == "sgb") continue;
    cold += result.cold_ms;
    incr += result.incremental_ms;
  }
  return incr > 0 ? cold / incr : 0;
}

void WriteJson(const std::string& path, bool quick,
               const std::vector<SolverResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"solver_rounds\",\n");
  std::fprintf(f, "  \"fixture\": \"arenas_email_like\",\n");
  std::fprintf(f, "  \"num_targets\": %zu,\n", kNumTargets);
  std::fprintf(f, "  \"scope\": \"subgraph\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"threads\": %d,\n", GlobalThreadCount());
  std::fprintf(f, "  \"pinned_threads\": %s,\n",
               ThreadPinningEnabled() ? "true" : "false");
  std::fprintf(f, "  \"bit_identical_to_cold_sweep\": true,\n");
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const SolverResult& r = results[i];
    std::fprintf(
        f,
        "    {\"solver\": \"%s\", \"motif\": \"%s\", \"rounds\": %zu, "
        "\"universe_edges\": %zu, \"candidates_mean\": %.1f, "
        "\"dirty_mean\": %.1f, \"dirty_max\": %zu, \"cold_ms\": %.3f, "
        "\"incremental_ms\": %.3f, \"speedup\": %.2f}%s\n",
        r.solver.c_str(), r.motif.c_str(), r.rounds, r.universe,
        r.candidates_mean, r.dirty_mean, r.dirty_max, r.cold_ms,
        r.incremental_ms, r.Speedup(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"ct_wt_aggregate_speedup\": %.2f\n}\n",
               AggregateCtWtSpeedup(results));
  std::fclose(f);
  std::printf("[json] %s\n", path.c_str());
}

int Run(int argc, char** argv) {
  Result<ParsedArgs> args = ParsedArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    return 2;
  }
  Status threads_status = ApplyThreadsFlag(*args);
  if (!threads_status.ok()) {
    std::fprintf(stderr, "error: %s\n", threads_status.ToString().c_str());
    return 2;
  }
  const bool quick = args->GetBool("quick");
  const std::string out_path =
      args->GetString("out", "BENCH_solver_rounds.json");

  std::printf("== solver rounds: incremental (dirty-set) vs cold sweep, "
              "Arenas-email-like, |T|=%zu, scope=subgraph%s ==\n\n",
              kNumTargets, quick ? ", quick" : "");
  std::vector<SolverResult> results;
  for (std::string_view solver : {"sgb", "ct", "wt"}) {
    for (MotifKind kind : motif::kPaperMotifs) {
      SolverResult result = RunConfig(solver, kind, quick);
      std::printf("%-4s %-9s %3zu rounds  %6zu edges  "
                  "cand %8.1f  dirty %7.1f (max %5zu)  "
                  "cold %9.3f ms  incr %8.3f ms  speedup %6.2fx\n",
                  result.solver.c_str(), result.motif.c_str(), result.rounds,
                  result.universe, result.candidates_mean, result.dirty_mean,
                  result.dirty_max, result.cold_ms, result.incremental_ms,
                  result.Speedup());
      results.push_back(std::move(result));
    }
  }
  std::printf("\nct/wt aggregate round-loop speedup: %.2fx, every run "
              "bit-identical to the cold sweep\n",
              AggregateCtWtSpeedup(results));
  WriteJson(out_path, quick, results);
  return 0;
}

}  // namespace
}  // namespace tpp::bench

int main(int argc, char** argv) { return tpp::bench::Run(argc, argv); }
