// Table IV reproduction: utility-loss ratio of full protection on
// Arenas-email(-like) with |T| = 50 — the larger-target-set companion of
// Table III.
//
// Paper shape to check: every entry is larger than its Table III
// counterpart (more targets -> more protectors -> more loss), with
// Rectangle still the most expensive motif (paper: up to ~8.6%).

#include "graph/datasets.h"
#include "utility_table.h"

int main() {
  tpp::Result<tpp::graph::Graph> graph = tpp::graph::MakeArenasEmailLike(1);
  if (!graph.ok()) return 1;
  tpp::bench::UtilityTableSpec spec;
  spec.title =
      "Table IV: utility loss ratio, Arenas-email-like, full protection";
  spec.csv_name = "table4_utility_arenas_t50";
  spec.num_targets = 50;
  spec.samples = tpp::bench::BenchSamples(3);
  spec.fixed_budget = 0;
  return tpp::bench::RunUtilityLossTable(*graph, spec);
}
