// google-benchmark micro-kernels for the library's hot paths: motif
// enumeration, incidence-index construction, gain queries, greedy picks,
// and the utility-metric substrates.

#include <benchmark/benchmark.h>

#include "community/louvain.h"
#include "core/tpp.h"
#include "graph/datasets.h"
#include "graph/fixtures.h"
#include "graph/traversal.h"
#include "metrics/clustering.h"
#include "metrics/kcore.h"
#include "metrics/spectral.h"
#include "motif/enumerate.h"
#include "motif/incidence_index.h"

namespace tpp {
namespace {

using core::IndexedEngine;
using core::NaiveEngine;
using core::TppInstance;
using graph::Graph;
using motif::MotifKind;

const Graph& ArenasGraph() {
  static const Graph* graph = new Graph(*graph::MakeArenasEmailLike(1));
  return *graph;
}

TppInstance MakeArenasInstance(MotifKind kind, size_t num_targets) {
  Rng rng(7);
  auto targets = *core::SampleTargets(ArenasGraph(), num_targets, rng);
  return *core::MakeInstance(ArenasGraph(), targets, kind);
}

void BM_CountTargetSubgraphs(benchmark::State& state) {
  MotifKind kind = static_cast<MotifKind>(state.range(0));
  TppInstance inst = MakeArenasInstance(kind, 20);
  size_t i = 0;
  for (auto _ : state) {
    const graph::Edge& t = inst.targets[i++ % inst.targets.size()];
    benchmark::DoNotOptimize(
        motif::CountTargetSubgraphs(inst.released, t, kind));
  }
}
BENCHMARK(BM_CountTargetSubgraphs)->Arg(0)->Arg(1)->Arg(2);

void BM_IncidenceIndexBuild(benchmark::State& state) {
  MotifKind kind = static_cast<MotifKind>(state.range(0));
  TppInstance inst = MakeArenasInstance(kind, 20);
  for (auto _ : state) {
    auto index =
        motif::IncidenceIndex::Build(inst.released, inst.targets, kind);
    benchmark::DoNotOptimize(index.ok());
  }
}
BENCHMARK(BM_IncidenceIndexBuild)->Arg(0)->Arg(1)->Arg(2);

void BM_IndexedGainVector(benchmark::State& state) {
  TppInstance inst = MakeArenasInstance(MotifKind::kRectangle, 20);
  IndexedEngine engine = *IndexedEngine::Create(inst);
  auto candidates =
      engine.Candidates(core::CandidateScope::kTargetSubgraphEdges);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.GainVector(candidates[i++ % candidates.size()]));
  }
}
BENCHMARK(BM_IndexedGainVector);

void BM_NaiveGainVector(benchmark::State& state) {
  TppInstance inst = MakeArenasInstance(MotifKind::kRectangle, 20);
  NaiveEngine engine(inst);
  auto candidates =
      engine.Candidates(core::CandidateScope::kTargetSubgraphEdges);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.GainVector(candidates[i++ % candidates.size()]));
  }
}
BENCHMARK(BM_NaiveGainVector);

void BM_SgbGreedyFullProtection(benchmark::State& state) {
  MotifKind kind = static_cast<MotifKind>(state.range(0));
  TppInstance inst = MakeArenasInstance(kind, 20);
  for (auto _ : state) {
    IndexedEngine engine = *IndexedEngine::Create(inst);
    core::GreedyOptions opts;
    opts.scope = core::CandidateScope::kTargetSubgraphEdges;
    benchmark::DoNotOptimize(core::FullProtection(engine, opts).ok());
  }
}
BENCHMARK(BM_SgbGreedyFullProtection)->Arg(0)->Arg(1)->Arg(2);

void BM_BfsSweep(benchmark::State& state) {
  const Graph& g = ArenasGraph();
  graph::NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::BfsDistances(g, source));
    source = (source + 97) % g.NumNodes();
  }
}
BENCHMARK(BM_BfsSweep);

void BM_AverageClustering(benchmark::State& state) {
  const Graph& g = ArenasGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::AverageClustering(g));
  }
}
BENCHMARK(BM_AverageClustering);

void BM_CoreNumbers(benchmark::State& state) {
  const Graph& g = ArenasGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::CoreNumbers(g));
  }
}
BENCHMARK(BM_CoreNumbers);

void BM_Louvain(benchmark::State& state) {
  const Graph& g = ArenasGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(community::Louvain(g).ok());
  }
}
BENCHMARK(BM_Louvain);

void BM_LanczosSecondEigenvalue(benchmark::State& state) {
  const Graph& g = ArenasGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metrics::SecondLargestLaplacianEigenvalue(g).ok());
  }
}
BENCHMARK(BM_LanczosSecondEigenvalue);

void BM_GraphCopyAndDelete(benchmark::State& state) {
  const Graph& g = ArenasGraph();
  auto edges = g.Edges();
  for (auto _ : state) {
    Graph copy = g;
    for (size_t i = 0; i < 25; ++i) {
      (void)copy.RemoveEdge(edges[i * 7].u, edges[i * 7].v);
    }
    benchmark::DoNotOptimize(copy.NumEdges());
  }
}
BENCHMARK(BM_GraphCopyAndDelete);

}  // namespace
}  // namespace tpp

BENCHMARK_MAIN();
