// google-benchmark micro-kernels for the library's hot paths: motif
// enumeration, incidence-index construction, gain queries, greedy picks,
// and the utility-metric substrates.

#include <benchmark/benchmark.h>

#include "community/louvain.h"
#include "core/tpp.h"
#include "graph/datasets.h"
#include "graph/fixtures.h"
#include "graph/traversal.h"
#include "metrics/clustering.h"
#include "metrics/kcore.h"
#include "metrics/spectral.h"
#include "motif/enumerate.h"
#include "motif/incidence_index.h"
#include "motif/legacy_incidence_index.h"

namespace tpp {
namespace {

using core::IndexedEngine;
using core::NaiveEngine;
using core::TppInstance;
using graph::Graph;
using motif::MotifKind;

const Graph& ArenasGraph() {
  static const Graph* graph = new Graph(*graph::MakeArenasEmailLike(1));
  return *graph;
}

TppInstance MakeArenasInstance(MotifKind kind, size_t num_targets) {
  Rng rng(7);
  auto targets = *core::SampleTargets(ArenasGraph(), num_targets, rng);
  return *core::MakeInstance(ArenasGraph(), targets, kind);
}

void BM_CountTargetSubgraphs(benchmark::State& state) {
  MotifKind kind = static_cast<MotifKind>(state.range(0));
  TppInstance inst = MakeArenasInstance(kind, 20);
  size_t i = 0;
  for (auto _ : state) {
    const graph::Edge& t = inst.targets[i++ % inst.targets.size()];
    benchmark::DoNotOptimize(
        motif::CountTargetSubgraphs(inst.released, t, kind));
  }
}
BENCHMARK(BM_CountTargetSubgraphs)->Arg(0)->Arg(1)->Arg(2);

void BM_IncidenceIndexBuild(benchmark::State& state) {
  MotifKind kind = static_cast<MotifKind>(state.range(0));
  TppInstance inst = MakeArenasInstance(kind, 20);
  for (auto _ : state) {
    auto index =
        motif::IncidenceIndex::Build(inst.released, inst.targets, kind);
    benchmark::DoNotOptimize(index.ok());
  }
}
BENCHMARK(BM_IncidenceIndexBuild)->Arg(0)->Arg(1)->Arg(2);

// One eager greedy round's query work on the historical map-based index:
// enumerate alive candidates (map traversal + liveness walks + sort), then
// a hash+posting-walk Gain per candidate.
void BM_LegacyGainSweep(benchmark::State& state) {
  MotifKind kind = static_cast<MotifKind>(state.range(0));
  TppInstance inst = MakeArenasInstance(kind, 20);
  auto index =
      *motif::LegacyIncidenceIndex::Build(inst.released, inst.targets, kind);
  for (auto _ : state) {
    size_t sum = 0;
    for (graph::EdgeKey e : index.AliveCandidateEdges()) {
      sum += index.Gain(e);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_LegacyGainSweep)->Arg(0)->Arg(1)->Arg(2);

// The same round on the CSR index: one scan of the cached alive counts.
void BM_CsrGainSweep(benchmark::State& state) {
  MotifKind kind = static_cast<MotifKind>(state.range(0));
  TppInstance inst = MakeArenasInstance(kind, 20);
  auto index =
      *motif::IncidenceIndex::Build(inst.released, inst.targets, kind);
  std::vector<graph::EdgeKey> edges;
  std::vector<size_t> gains;
  for (auto _ : state) {
    index.AliveCandidateGains(&edges, &gains);
    size_t sum = 0;
    for (size_t g : gains) sum += g;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_CsrGainSweep)->Arg(0)->Arg(1)->Arg(2);

// Delete-commit kernels: kill every instance, edge by edge. The CSR path
// additionally maintains the per-edge alive-count caches.
void BM_LegacyDeleteCommit(benchmark::State& state) {
  TppInstance inst = MakeArenasInstance(MotifKind::kRectangle, 20);
  auto index = *motif::LegacyIncidenceIndex::Build(
      inst.released, inst.targets, MotifKind::kRectangle);
  auto candidates = index.AliveCandidateEdges();
  for (auto _ : state) {
    state.PauseTiming();
    auto scratch = index;  // copy excluded from the measurement
    state.ResumeTiming();
    for (graph::EdgeKey e : candidates) scratch.DeleteEdge(e);
    benchmark::DoNotOptimize(scratch.TotalAlive());
  }
}
BENCHMARK(BM_LegacyDeleteCommit);

void BM_CsrDeleteCommit(benchmark::State& state) {
  TppInstance inst = MakeArenasInstance(MotifKind::kRectangle, 20);
  auto index = *motif::IncidenceIndex::Build(inst.released, inst.targets,
                                             MotifKind::kRectangle);
  auto candidates = index.AliveCandidateEdges();
  for (auto _ : state) {
    state.PauseTiming();
    auto scratch = index;  // copy excluded from the measurement
    state.ResumeTiming();
    for (graph::EdgeKey e : candidates) scratch.DeleteEdge(e);
    benchmark::DoNotOptimize(scratch.TotalAlive());
  }
}
BENCHMARK(BM_CsrDeleteCommit);

// Batched keyed sweep at an explicit thread budget.
void BM_IndexedBatchGain(benchmark::State& state) {
  TppInstance inst = MakeArenasInstance(MotifKind::kRectangle, 20);
  IndexedEngine engine = *IndexedEngine::Create(inst);
  engine.set_threads(static_cast<int>(state.range(0)));
  auto candidates =
      engine.Candidates(core::CandidateScope::kTargetSubgraphEdges);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.BatchGain(candidates));
  }
}
BENCHMARK(BM_IndexedBatchGain)->Arg(1)->Arg(2)->Arg(4);

void BM_IndexedGainVector(benchmark::State& state) {
  TppInstance inst = MakeArenasInstance(MotifKind::kRectangle, 20);
  IndexedEngine engine = *IndexedEngine::Create(inst);
  auto candidates =
      engine.Candidates(core::CandidateScope::kTargetSubgraphEdges);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.GainVector(candidates[i++ % candidates.size()]));
  }
}
BENCHMARK(BM_IndexedGainVector);

void BM_NaiveGainVector(benchmark::State& state) {
  TppInstance inst = MakeArenasInstance(MotifKind::kRectangle, 20);
  NaiveEngine engine(inst);
  auto candidates =
      engine.Candidates(core::CandidateScope::kTargetSubgraphEdges);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.GainVector(candidates[i++ % candidates.size()]));
  }
}
BENCHMARK(BM_NaiveGainVector);

void BM_SgbGreedyFullProtection(benchmark::State& state) {
  MotifKind kind = static_cast<MotifKind>(state.range(0));
  TppInstance inst = MakeArenasInstance(kind, 20);
  for (auto _ : state) {
    IndexedEngine engine = *IndexedEngine::Create(inst);
    core::GreedyOptions opts;
    opts.scope = core::CandidateScope::kTargetSubgraphEdges;
    benchmark::DoNotOptimize(core::FullProtection(engine, opts).ok());
  }
}
BENCHMARK(BM_SgbGreedyFullProtection)->Arg(0)->Arg(1)->Arg(2);

void BM_BfsSweep(benchmark::State& state) {
  const Graph& g = ArenasGraph();
  graph::NodeId source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::BfsDistances(g, source));
    source = (source + 97) % g.NumNodes();
  }
}
BENCHMARK(BM_BfsSweep);

void BM_AverageClustering(benchmark::State& state) {
  const Graph& g = ArenasGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::AverageClustering(g));
  }
}
BENCHMARK(BM_AverageClustering);

void BM_CoreNumbers(benchmark::State& state) {
  const Graph& g = ArenasGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::CoreNumbers(g));
  }
}
BENCHMARK(BM_CoreNumbers);

void BM_Louvain(benchmark::State& state) {
  const Graph& g = ArenasGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(community::Louvain(g).ok());
  }
}
BENCHMARK(BM_Louvain);

void BM_LanczosSecondEigenvalue(benchmark::State& state) {
  const Graph& g = ArenasGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metrics::SecondLargestLaplacianEigenvalue(g).ok());
  }
}
BENCHMARK(BM_LanczosSecondEigenvalue);

void BM_GraphCopyAndDelete(benchmark::State& state) {
  const Graph& g = ArenasGraph();
  auto edges = g.Edges();
  for (auto _ : state) {
    Graph copy = g;
    for (size_t i = 0; i < 25; ++i) {
      (void)copy.RemoveEdge(edges[i * 7].u, edges[i * 7].v);
    }
    benchmark::DoNotOptimize(copy.NumEdges());
  }
}
BENCHMARK(BM_GraphCopyAndDelete);

}  // namespace
}  // namespace tpp

BENCHMARK_MAIN();
