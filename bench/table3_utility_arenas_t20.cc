// Table III reproduction: utility-loss ratio of full protection on
// Arenas-email(-like) with |T| = 20, for every greedy algorithm and all
// three motifs, over the six Table II metrics.
//
// Paper shape to check: all losses are small (sub-3%); SGB costs the
// least utility (it deletes the fewest links); Rectangle costs the most;
// losses grow with |T| (compare against table4).

#include "graph/datasets.h"
#include "utility_table.h"

int main() {
  tpp::Result<tpp::graph::Graph> graph = tpp::graph::MakeArenasEmailLike(1);
  if (!graph.ok()) return 1;
  tpp::bench::UtilityTableSpec spec;
  spec.title =
      "Table III: utility loss ratio, Arenas-email-like, full protection";
  spec.csv_name = "table3_utility_arenas_t20";
  spec.num_targets = 20;
  spec.samples = tpp::bench::BenchSamples(3);
  spec.fixed_budget = 0;  // full protection
  // All six Table II metrics; exact APL is affordable at 1133 nodes.
  return tpp::bench::RunUtilityLossTable(*graph, spec);
}
