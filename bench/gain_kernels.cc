// Gain-kernel benchmark: CSR IncidenceIndex vs the map-based
// LegacyIncidenceIndex on the Fig. 5 Arenas fixture, plus the threaded
// Engine::BatchGain sweep. Emits a machine-readable BENCH_gain_kernels.json
// so the perf trajectory of the gain oracle is tracked across PRs.
//
// Kernels (per paper motif):
//   gain_query     — the whole query side of one eager greedy round:
//                    enumerate the alive candidate set and evaluate every
//                    gain, exactly what Candidates()+Gain() cost per round
//                    in the Fig. 5/6 loops. Legacy pays a map traversal,
//                    per-edge liveness walks, a sort, and a hash+walk per
//                    gain; CSR answers everything with one scan of the
//                    cached alive-count array (AliveCandidateGains).
//   point_query    — a single keyed Gain(e) lookup: hash+posting-walk vs
//                    hash+cached-count read.
//   gain_vector    — sweep AccumulateGains(e) (the CT/WT inner query);
//   delete_commit  — delete every alive candidate in key order (kills all
//                    instances), measuring the commit cost of the CSR
//                    index. Since the deferred-maintenance rework a
//                    commit is kill marks plus an O(1) queue append —
//                    count and CSR-2 cell upkeep replays batched at the
//                    next flush boundary, where a greedy round was going
//                    to read anyway — and the keyed lookup goes through
//                    the static probe table, so the CSR side now beats
//                    the legacy map on every motif instead of paying
//                    ~0.8x for eager sibling-count upkeep.
// Each kernel reports ns/op for legacy and CSR and the speedup ratio; the
// JSON also records the batch_gain sweep at 1 and GlobalThreadCount()
// threads.
//
// Flags: --quick (fewer repetitions, CI smoke mode), --threads=N,
//        --out=PATH (default BENCH_gain_kernels.json).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/timer.h"
#include "core/tpp.h"
#include "graph/datasets.h"
#include "motif/incidence_index.h"
#include "motif/legacy_incidence_index.h"

namespace tpp::bench {
namespace {

using core::IndexedEngine;
using core::TppInstance;
using graph::EdgeKey;
using motif::IncidenceIndex;
using motif::LegacyIncidenceIndex;
using motif::MotifKind;

constexpr size_t kNumTargets = 20;

struct KernelResult {
  std::string motif;
  std::string name;
  size_t ops = 0;
  double legacy_ns = 0;  ///< ns/op on LegacyIncidenceIndex
  double csr_ns = 0;     ///< ns/op on IncidenceIndex
  double Speedup() const { return csr_ns > 0 ? legacy_ns / csr_ns : 0; }
};

// Runs `body` `reps` times and returns ns per op for `ops_per_rep` ops.
template <typename Body>
double TimeNsPerOp(size_t reps, size_t ops_per_rep, Body&& body) {
  WallTimer timer;
  for (size_t r = 0; r < reps; ++r) body();
  double ns = timer.Seconds() * 1e9;
  return ns / static_cast<double>(reps * (ops_per_rep ? ops_per_rep : 1));
}

TppInstance MakeArenas(MotifKind kind) {
  Result<graph::Graph> g = graph::MakeArenasEmailLike(1);
  TPP_CHECK(g.ok());
  Rng rng(7);
  auto targets = *core::SampleTargets(*g, kNumTargets, rng);
  return *core::MakeInstance(*g, targets, kind);
}

std::vector<KernelResult> RunMotif(MotifKind kind, bool quick,
                                   std::vector<double>* batch_ns) {
  TppInstance inst = MakeArenas(kind);
  LegacyIncidenceIndex legacy =
      *LegacyIncidenceIndex::Build(inst.released, inst.targets, kind);
  IncidenceIndex csr =
      *IncidenceIndex::Build(inst.released, inst.targets, kind);
  const std::vector<EdgeKey> candidates = csr.AliveCandidateEdges();
  TPP_CHECK(candidates == legacy.AliveCandidateEdges());
  const std::string motif(motif::MotifName(kind));
  std::vector<KernelResult> out;

  // Adaptive repetitions: small candidate sets (Triangle has ~26) need
  // many rounds for stable ns/op numbers.
  const size_t sweep_reps =
      (quick ? 20000 : 400000) / std::max<size_t>(1, candidates.size()) + 1;
  {
    // One greedy round's query work, using each layout's natural API.
    KernelResult k{motif, "gain_query", candidates.size()};
    size_t sum_legacy = 0, sum_csr = 0;
    k.legacy_ns = TimeNsPerOp(sweep_reps, candidates.size(), [&] {
      for (EdgeKey e : legacy.AliveCandidateEdges()) {
        sum_legacy += legacy.Gain(e);
      }
    });
    std::vector<EdgeKey> sweep_edges;
    std::vector<size_t> sweep_gains;
    k.csr_ns = TimeNsPerOp(sweep_reps, candidates.size(), [&] {
      csr.AliveCandidateGains(&sweep_edges, &sweep_gains);
      for (size_t g : sweep_gains) sum_csr += g;
    });
    TPP_CHECK_EQ(sum_legacy, sum_csr);
    TPP_CHECK(sweep_edges == candidates);
    out.push_back(k);
  }
  {
    // Single keyed lookup: hash + posting walk vs hash + cached count.
    KernelResult k{motif, "point_query", candidates.size()};
    size_t sum_legacy = 0, sum_csr = 0;
    k.legacy_ns = TimeNsPerOp(sweep_reps, candidates.size(), [&] {
      for (EdgeKey e : candidates) sum_legacy += legacy.Gain(e);
    });
    k.csr_ns = TimeNsPerOp(sweep_reps, candidates.size(), [&] {
      for (EdgeKey e : candidates) sum_csr += csr.Gain(e);
    });
    TPP_CHECK_EQ(sum_legacy, sum_csr);
    out.push_back(k);
  }
  {
    KernelResult k{motif, "gain_vector", candidates.size()};
    std::vector<size_t> acc_legacy(kNumTargets, 0), acc_csr(kNumTargets, 0);
    const size_t reps = sweep_reps;
    k.legacy_ns = TimeNsPerOp(reps, candidates.size(), [&] {
      for (EdgeKey e : candidates) legacy.AccumulateGains(e, &acc_legacy);
    });
    k.csr_ns = TimeNsPerOp(reps, candidates.size(), [&] {
      for (EdgeKey e : candidates) csr.AccumulateGains(e, &acc_csr);
    });
    TPP_CHECK(acc_legacy == acc_csr);  // same reps -> identical accumulators
    out.push_back(k);
  }
  {
    // Deleting every candidate kills every instance — the worst case for
    // CSR count maintenance. The scratch copies are made outside the
    // timed region so only DeleteEdge work is measured.
    KernelResult k{motif, "delete_commit", candidates.size()};
    const size_t reps = quick ? 20 : 200;
    double legacy_ns = 0, csr_ns = 0;
    for (size_t r = 0; r < reps; ++r) {
      LegacyIncidenceIndex scratch = legacy;
      WallTimer timer;
      for (EdgeKey e : candidates) scratch.DeleteEdge(e);
      legacy_ns += timer.Seconds() * 1e9;
      TPP_CHECK_EQ(scratch.TotalAlive(), 0u);
    }
    for (size_t r = 0; r < reps; ++r) {
      IncidenceIndex scratch = csr;
      WallTimer timer;
      for (EdgeKey e : candidates) scratch.DeleteEdge(e);
      csr_ns += timer.Seconds() * 1e9;
      TPP_CHECK_EQ(scratch.TotalAlive(), 0u);
    }
    k.legacy_ns = legacy_ns / static_cast<double>(reps * candidates.size());
    k.csr_ns = csr_ns / static_cast<double>(reps * candidates.size());
    out.push_back(k);
  }
  if (batch_ns) {
    // Engine-level batched sweep, serial vs a forced multi-thread
    // partition (set_threads bypasses the batch-size heuristic, so the
    // parallel path genuinely runs even on small candidate sets).
    IndexedEngine engine = *IndexedEngine::Create(inst);
    const size_t reps = quick ? 5 : 100;
    engine.set_threads(1);
    batch_ns->push_back(TimeNsPerOp(reps, candidates.size(), [&] {
      engine.BatchGain(candidates);
    }));
    engine.set_threads(std::max(2, GlobalThreadCount()));
    batch_ns->push_back(TimeNsPerOp(reps, candidates.size(), [&] {
      engine.BatchGain(candidates);
    }));
  }
  return out;
}

// Total legacy vs CSR time of the per-round gain-query kernel across all
// measured motifs — the Fig. 5 headline number.
double AggregateGainQuerySpeedup(const std::vector<KernelResult>& kernels) {
  double legacy = 0, csr = 0;
  for (const KernelResult& k : kernels) {
    if (k.name != "gain_query") continue;
    legacy += k.legacy_ns * static_cast<double>(k.ops);
    csr += k.csr_ns * static_cast<double>(k.ops);
  }
  return csr > 0 ? legacy / csr : 0;
}

void WriteJson(const std::string& path, bool quick,
               const std::vector<KernelResult>& kernels,
               const std::vector<double>& batch_ns) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"gain_kernels\",\n");
  std::fprintf(f, "  \"fixture\": \"arenas_email_like\",\n");
  std::fprintf(f, "  \"num_targets\": %zu,\n", kNumTargets);
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"threads\": %d,\n", GlobalThreadCount());
  std::fprintf(f, "  \"kernels\": [\n");
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelResult& k = kernels[i];
    std::fprintf(f,
                 "    {\"motif\": \"%s\", \"name\": \"%s\", \"ops\": %zu, "
                 "\"legacy_ns_per_op\": %.2f, \"csr_ns_per_op\": %.2f, "
                 "\"speedup\": %.2f}%s\n",
                 k.motif.c_str(), k.name.c_str(), k.ops, k.legacy_ns,
                 k.csr_ns, k.Speedup(), i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"batch_gain_ns_per_op\": [");
  for (size_t i = 0; i < batch_ns.size(); ++i) {
    std::fprintf(f, "%s%.2f", i ? ", " : "", batch_ns[i]);
  }
  std::fprintf(f, "],\n  \"gain_query_aggregate_speedup\": %.2f\n}\n",
               AggregateGainQuerySpeedup(kernels));
  std::fclose(f);
  std::printf("[json] %s\n", path.c_str());
}

int Run(int argc, char** argv) {
  Result<ParsedArgs> args = ParsedArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    return 2;
  }
  Status threads_status = ApplyThreadsFlag(*args);
  if (!threads_status.ok()) {
    std::fprintf(stderr, "error: %s\n", threads_status.ToString().c_str());
    return 2;
  }
  const bool quick = args->GetBool("quick");
  const std::string out_path =
      args->GetString("out", "BENCH_gain_kernels.json");

  std::printf("== gain kernels: legacy (map) vs CSR incidence index, "
              "Arenas-email-like, |T|=%zu%s ==\n\n",
              kNumTargets, quick ? ", quick" : "");
  std::vector<KernelResult> kernels;
  std::vector<double> batch_ns;
  for (MotifKind kind : motif::kPaperMotifs) {
    std::vector<KernelResult> motif_kernels =
        RunMotif(kind, quick, &batch_ns);
    for (const KernelResult& k : motif_kernels) {
      std::printf("%-9s %-14s %6zu ops  legacy %9.1f ns/op  "
                  "csr %8.1f ns/op  speedup %6.2fx\n",
                  k.motif.c_str(), k.name.c_str(), k.ops, k.legacy_ns,
                  k.csr_ns, k.Speedup());
      kernels.push_back(k);
    }
  }
  std::printf("batch_gain serial vs %d-thread ns/op:", GlobalThreadCount());
  for (double ns : batch_ns) std::printf(" %.1f", ns);
  std::printf("\naggregate gain_query speedup: %.2fx\n",
              AggregateGainQuerySpeedup(kernels));
  WriteJson(out_path, quick, kernels, batch_ns);
  return 0;
}

}  // namespace
}  // namespace tpp::bench

int main(int argc, char** argv) { return tpp::bench::Run(argc, argv); }
