#include "utility_table.h"

#include <cstdio>

#include "common/table.h"
#include "motif/motif.h"

namespace tpp::bench {

int RunUtilityLossTable(const graph::Graph& graph,
                        const UtilityTableSpec& spec) {
  std::printf("== %s ==\n", spec.title.c_str());
  std::string budget_desc =
      spec.fixed_budget == 0
          ? std::string("full protection (k = k*)")
          : "fixed budget k=" + std::to_string(spec.fixed_budget);
  std::printf("graph: %s, |T|=%zu, %zu samplings, %s\n\n",
              graph.DebugString().c_str(), spec.num_targets, spec.samples,
              budget_desc.c_str());

  // The baseline utility of the original graph is shared by all rows.
  metrics::UtilityMetrics original =
      metrics::ComputeUtilityMetrics(graph, spec.utility_options);

  TextTable table;
  CsvWriter csv;
  std::vector<std::string> header = {"G\\T", "phase-1 only"};
  for (Method m : kGreedyMethods) {
    header.push_back(std::string(MethodName(m)) + "(-R)");
  }
  header.push_back("mean k*");
  table.SetHeader(header);
  csv.SetHeader(header);

  RunConfig config;  // indexed engine (identical deletions, fast)
  for (motif::MotifKind kind : motif::kPaperMotifs) {
    std::vector<std::string> row = {std::string(motif::MotifName(kind))};
    // "Phase-1 only" baseline: delete just the targets, no protectors.
    // The paper's SGD column is constant across motifs (0.64% / 1.14%),
    // which matches this baseline; see EXPERIMENTS.md.
    {
      double mean_loss = 0.0;
      for (size_t s = 0; s < spec.samples; ++s) {
        Rng rng(1000 + 37 * s);
        auto targets = *core::SampleTargets(graph, spec.num_targets, rng);
        graph::Graph released = graph;
        for (const graph::Edge& t : targets) {
          (void)released.RemoveEdge(t.u, t.v);
        }
        metrics::UtilityMetrics perturbed =
            metrics::ComputeUtilityMetrics(released, spec.utility_options);
        mean_loss += metrics::UtilityLossRatio(original, perturbed).average /
                     spec.samples;
      }
      row.push_back(Fmt(mean_loss * 100.0, 3) + "%");
    }
    double mean_kstar = 0.0;
    for (Method method : kGreedyMethods) {
      double mean_loss = 0.0;
      for (size_t s = 0; s < spec.samples; ++s) {
        Rng rng(1000 + 37 * s);
        Result<std::vector<graph::Edge>> targets =
            core::SampleTargets(graph, spec.num_targets, rng);
        if (!targets.ok()) {
          std::fprintf(stderr, "sampling failed: %s\n",
                       targets.status().ToString().c_str());
          return 1;
        }
        Result<core::TppInstance> instance =
            core::MakeInstance(graph, *targets, kind);
        if (!instance.ok()) {
          std::fprintf(stderr, "instance failed: %s\n",
                       instance.status().ToString().c_str());
          return 1;
        }
        Rng run_rng(2000 + 11 * s);
        Result<core::ProtectionResult> result =
            spec.fixed_budget == 0
                ? RunToFullProtection(*instance, method, config, run_rng)
                : RunMethod(*instance, method, spec.fixed_budget, config,
                            run_rng);
        if (!result.ok()) {
          std::fprintf(stderr, "%s failed: %s\n",
                       std::string(MethodName(method)).c_str(),
                       result.status().ToString().c_str());
          return 1;
        }
        // The released graph: original minus targets minus protectors.
        graph::Graph released = graph;
        for (const graph::Edge& t : *targets) {
          (void)released.RemoveEdge(t.u, t.v);
        }
        released.RemoveEdges(result->protectors);
        metrics::UtilityMetrics perturbed =
            metrics::ComputeUtilityMetrics(released, spec.utility_options);
        metrics::UtilityLoss loss =
            metrics::UtilityLossRatio(original, perturbed);
        mean_loss += loss.average / spec.samples;
        if (method == Method::kSgb) {
          mean_kstar += static_cast<double>(result->protectors.size()) /
                        spec.samples;
        }
      }
      row.push_back(Fmt(mean_loss * 100.0, 3) + "%");
    }
    row.push_back(Fmt(mean_kstar, 1));
    table.AddRow(row);
    csv.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
  WriteCsv(spec.csv_name, csv);
  return 0;
}

}  // namespace tpp::bench
