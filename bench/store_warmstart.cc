// Warm-start benchmark: disk-backed store vs cold construction on the
// Fig. 5 Arenas fixture. Emits BENCH_store_warmstart.json.
//
// Two comparisons:
//   per-motif   — cold IncidenceIndex::Build vs WarmStore::LoadIndex of
//                 the same index from its snapshot file (one mmap + header
//                 validation + flat-array adoption). Every warm load is
//                 CHECKed BitIdentical to the cold build, so the speedup
//                 never comes from loading something different.
//   end-to-end  — a batch of protection requests served by a cold process
//                 (empty store: every group builds, every plan solves)
//                 vs a restarted process (same store directory reopened,
//                 fresh in-memory cache: snapshots adopt, plans replay
//                 from the log). Responses are CHECKed byte-identical
//                 through the plan codec.
//
// The JSON carries a "store_health" section — retry/degradation counters
// summed over every store the bench opened, plus the TPP_FAULTS profile
// it ran under (empty when unarmed). CI re-runs this bench under a
// transient fault profile and gates on it with `bench_guard --mode=fault`
// (docs/ROBUSTNESS.md): retries must fire, degradations must stay zero,
// and every bit-identity CHECK above must still hold.
//
// Flags: --quick (fewer repetitions, CI smoke mode), --threads=N (build
//        thread budget for the cold side; default 1), --targets=N
//        (protected edges per motif; default 1500 so even the cheapest
//        cold build is well above the fixed mmap/validate overhead),
//        --out=PATH (default BENCH_store_warmstart.json), --store-dir=DIR
//        (scratch store location, recreated from empty each run).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/timer.h"
#include "core/problem.h"
#include "graph/datasets.h"
#include "graph/fingerprint.h"
#include "motif/incidence_index.h"
#include "service/plan_cache.h"
#include "service/plan_service.h"
#include "service/store/plan_codec.h"
#include "service/store/warm_store.h"

namespace tpp::bench {
namespace {

using core::TppInstance;
using motif::IncidenceIndex;
using motif::MotifKind;
using service::store::WarmStore;

// Overridable via --targets. The motif-vs-motif shape of Fig. 5 uses 200
// targets; here the interesting quantity is the cold/warm ratio, and tiny
// target sets make the cheap motifs' cold builds so fast (tens of
// microseconds) that the comparison measures syscall overhead instead of
// construction work.
size_t g_num_targets = 1500;

struct MotifResult {
  std::string motif;
  size_t instances = 0;
  uint64_t snapshot_bytes = 0;
  double cold_build_ms = 0;
  double warm_load_ms = 0;
  double speedup = 0;
};

struct BatchResult {
  size_t requests = 0;
  double cold_ms = 0;
  double warm_ms = 0;
  double speedup = 0;
};

// Degradation counters accumulated across every store/cache the bench
// opens. On a healthy filesystem all of these are zero; under a
// TPP_FAULTS transient profile retries climb while degradations must
// stay zero — that is the invariant `bench_guard --mode=fault` gates on.
struct StoreHealth {
  uint64_t io_retries = 0;
  uint64_t write_failures = 0;
  uint64_t read_degradations = 0;
  uint64_t index_rejects = 0;
  uint64_t backing_write_failures = 0;
  uint64_t degradations() const {
    return write_failures + read_degradations + index_rejects;
  }
};
StoreHealth g_health;

void AbsorbStoreStats(const WarmStore& store) {
  const WarmStore::Stats stats = store.stats();
  g_health.io_retries += stats.io_retries;
  g_health.write_failures += stats.write_failures;
  g_health.read_degradations += stats.read_degradations;
  g_health.index_rejects += stats.index_rejects;
}

TppInstance MakeArenas(MotifKind kind) {
  Result<graph::Graph> g = graph::MakeArenasEmailLike(1);
  TPP_CHECK(g.ok());
  Rng rng(7);
  auto targets = *core::SampleTargets(*g, g_num_targets, rng);
  return *core::MakeInstance(*g, targets, kind);
}

MotifResult RunMotif(MotifKind kind, bool quick, int build_threads,
                     const std::string& store_dir) {
  const TppInstance inst = MakeArenas(kind);
  MotifResult out;
  out.motif = std::string(motif::MotifName(kind));
  // Pentagon probes O(deg^3) per target; keep its repetitions low so the
  // full sweep stays seconds, not minutes.
  const size_t cold_reps =
      quick ? (kind == MotifKind::kPentagon ? 1 : 3)
            : (kind == MotifKind::kPentagon ? 3 : 10);
  // Warm loads are orders of magnitude cheaper; more repetitions cost
  // nothing and stabilize the small numbers.
  const size_t warm_reps = quick ? 10 : 50;

  IncidenceIndex::BuildOptions options;
  options.threads = build_threads;
  const IncidenceIndex reference =
      *IncidenceIndex::Build(inst.released, inst.targets, inst.motif,
                             options);
  out.instances = reference.instances().size();

  {
    double total = 0;
    for (size_t r = 0; r < cold_reps; ++r) {
      WallTimer timer;
      IncidenceIndex idx = *IncidenceIndex::Build(
          inst.released, inst.targets, inst.motif, options);
      total += timer.Millis();
      TPP_CHECK_EQ(idx.TotalAlive(), reference.TotalAlive());
    }
    out.cold_build_ms = total / static_cast<double>(cold_reps);
  }

  motif::IndexSnapshotMeta meta;
  meta.graph_fingerprint = graph::Fingerprint(inst.released);
  meta.target_hash = graph::TargetSetHash(inst.targets);
  meta.motif = kind;
  meta.num_targets = static_cast<uint32_t>(inst.targets.size());
  std::unique_ptr<WarmStore> store = WarmStore::Open(store_dir).value();
  TPP_CHECK(store->SaveIndex(reference, meta).ok());
  Result<std::vector<service::store::StoreEntry>> entries = store->Scan();
  TPP_CHECK(entries.ok());
  for (const service::store::StoreEntry& e : *entries) {
    if (e.kind == service::store::StoreEntry::Kind::kIndexSnapshot &&
        e.motif == out.motif) {
      out.snapshot_bytes = e.bytes;
    }
  }

  {
    double total = 0;
    for (size_t r = 0; r < warm_reps; ++r) {
      WallTimer timer;
      Result<IncidenceIndex> idx = store->LoadIndex(meta);
      TPP_CHECK(idx.ok());
      total += timer.Millis();
      // Bit-identity every rep: the warm path must reproduce the cold
      // build exactly, not approximately.
      TPP_CHECK(idx->BitIdentical(reference));
    }
    out.warm_load_ms = total / static_cast<double>(warm_reps);
  }
  out.speedup =
      out.warm_load_ms > 0 ? out.cold_build_ms / out.warm_load_ms : 0;
  AbsorbStoreStats(*store);
  return out;
}

std::vector<service::PlanRequest> MakeBatch() {
  std::vector<service::PlanRequest> requests;
  for (MotifKind kind : motif::kAllMotifs) {
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      service::PlanRequest request;
      request.name = std::string(motif::MotifName(kind)) + "-s" +
                     std::to_string(seed);
      request.motif = kind;
      request.sample = 20;
      request.seed = seed;
      request.spec.algorithm = "sgb";
      request.spec.budget = 10;
      requests.push_back(std::move(request));
    }
  }
  return requests;
}

BatchResult RunBatchComparison(const std::string& store_dir) {
  Result<graph::Graph> g = graph::MakeArenasEmailLike(1);
  TPP_CHECK(g.ok());
  service::PlanService plan_service(*g);
  const std::vector<service::PlanRequest> requests = MakeBatch();
  BatchResult out;
  out.requests = requests.size();

  const auto run = [&](double* ms) {
    // A fresh WarmStore + PlanCache per run models a process restart: all
    // in-memory state is gone, only the store directory carries over.
    std::unique_ptr<WarmStore> store = WarmStore::Open(store_dir).value();
    service::PlanCache cache(1024);
    cache.set_backing_store(store.get());
    cache.set_cache_failures(false);
    service::BatchOptions options;
    options.cache = &cache;
    options.store = store.get();
    WallTimer timer;
    std::vector<service::PlanResponse> responses =
        plan_service.RunBatch(requests, options);
    *ms = timer.Millis();
    AbsorbStoreStats(*store);
    g_health.backing_write_failures += cache.stats().backing_write_failures;
    return responses;
  };

  double cold_ms = 0, warm_ms = 0;
  std::vector<service::PlanResponse> cold = run(&cold_ms);
  std::vector<service::PlanResponse> warm = run(&warm_ms);
  TPP_CHECK_EQ(cold.size(), warm.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    TPP_CHECK(cold[i].status.ok());
    TPP_CHECK(warm[i].status.ok());
    // The codec covers every persisted response field (from_cache is
    // transient by design), so equal encodings mean byte-identical plans.
    TPP_CHECK(service::store::EncodePlanResponse(cold[i]) ==
              service::store::EncodePlanResponse(warm[i]));
  }
  out.cold_ms = cold_ms;
  out.warm_ms = warm_ms;
  out.speedup = warm_ms > 0 ? cold_ms / warm_ms : 0;
  return out;
}

void WriteJson(const std::string& path, bool quick,
               const std::vector<MotifResult>& results,
               const BatchResult& batch, double min_speedup) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"store_warmstart\",\n");
  std::fprintf(f, "  \"fixture\": \"arenas_email_like\",\n");
  std::fprintf(f, "  \"num_targets\": %zu,\n", g_num_targets);
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"motifs\": [\n");
  for (size_t m = 0; m < results.size(); ++m) {
    const MotifResult& result = results[m];
    std::fprintf(f,
                 "    {\"motif\": \"%s\", \"instances\": %zu, "
                 "\"snapshot_bytes\": %llu, \"cold_build_ms\": %.3f, "
                 "\"warm_load_ms\": %.3f, \"speedup\": %.1f, "
                 "\"bit_identical_to_cold_build\": true}%s\n",
                 result.motif.c_str(), result.instances,
                 static_cast<unsigned long long>(result.snapshot_bytes),
                 result.cold_build_ms, result.warm_load_ms, result.speedup,
                 m + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"batch\": {\"requests\": %zu, \"cold_ms\": %.3f, "
               "\"warm_ms\": %.3f, \"speedup\": %.1f, "
               "\"responses_byte_identical\": true},\n",
               batch.requests, batch.cold_ms, batch.warm_ms, batch.speedup);
  // The degradation tally plus the profile it ran under, so a consumer
  // (bench_guard --mode=fault) can tell a clean run from a fault run
  // whose retries were expected to fire. The spec grammar has no quotes
  // or backslashes, so it embeds verbatim.
  const char* fault_spec = std::getenv("TPP_FAULTS");
  std::fprintf(f,
               "  \"store_health\": {\"fault_spec\": \"%s\", "
               "\"io_retries\": %llu, \"write_failures\": %llu, "
               "\"read_degradations\": %llu, \"index_rejects\": %llu, "
               "\"backing_write_failures\": %llu, \"degradations\": "
               "%llu},\n",
               fault_spec == nullptr ? "" : fault_spec,
               static_cast<unsigned long long>(g_health.io_retries),
               static_cast<unsigned long long>(g_health.write_failures),
               static_cast<unsigned long long>(g_health.read_degradations),
               static_cast<unsigned long long>(g_health.index_rejects),
               static_cast<unsigned long long>(
                   g_health.backing_write_failures),
               static_cast<unsigned long long>(g_health.degradations()));
  std::fprintf(f, "  \"min_motif_speedup\": %.1f\n}\n", min_speedup);
  std::fclose(f);
  std::printf("[json] %s\n", path.c_str());
}

int Run(int argc, char** argv) {
  Result<ParsedArgs> args = ParsedArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    return 2;
  }
  Status threads_status = ApplyThreadsFlag(*args);
  if (!threads_status.ok()) {
    std::fprintf(stderr, "error: %s\n", threads_status.ToString().c_str());
    return 2;
  }
  const bool quick = args->GetBool("quick");
  Result<int64_t> threads_flag = args->GetInt("threads", 1);
  const int build_threads =
      *threads_flag <= 0 ? 1 : static_cast<int>(*threads_flag);
  Result<int64_t> targets_flag =
      args->GetInt("targets", static_cast<int64_t>(g_num_targets));
  if (*targets_flag > 0) {
    g_num_targets = static_cast<size_t>(*targets_flag);
  }
  const std::string out_path =
      args->GetString("out", "BENCH_store_warmstart.json");
  const std::string store_dir =
      args->GetString("store-dir", "bench_store_warmstart.tmp");

  std::error_code ec;
  std::filesystem::remove_all(store_dir, ec);

  std::printf("== store warm start: mmap snapshot load vs cold build, "
              "Arenas-email-like, |T|=%zu%s ==\n\n",
              g_num_targets, quick ? ", quick" : "");
  std::vector<MotifResult> results;
  double min_speedup = 0;
  for (MotifKind kind : motif::kAllMotifs) {
    MotifResult result = RunMotif(kind, quick, build_threads, store_dir);
    std::printf("%-9s %7zu inst  %9llu B snapshot  cold %9.2f ms  "
                "warm %7.3f ms  speedup %7.1fx\n",
                result.motif.c_str(), result.instances,
                static_cast<unsigned long long>(result.snapshot_bytes),
                result.cold_build_ms, result.warm_load_ms, result.speedup);
    min_speedup = results.empty()
                      ? result.speedup
                      : std::min(min_speedup, result.speedup);
    results.push_back(std::move(result));
  }

  std::filesystem::remove_all(store_dir, ec);
  BatchResult batch = RunBatchComparison(store_dir);
  std::printf("\nbatch of %zu requests: cold %9.2f ms  warm %9.2f ms  "
              "speedup %5.1fx, responses byte-identical\n",
              batch.requests, batch.cold_ms, batch.warm_ms, batch.speedup);
  std::printf("minimum per-motif warm-load speedup: %.1fx, all loads "
              "bit-identical to the cold build\n",
              min_speedup);
  std::printf("store health: %llu retries, %llu write failures, %llu "
              "degradations\n",
              static_cast<unsigned long long>(g_health.io_retries),
              static_cast<unsigned long long>(g_health.write_failures),
              static_cast<unsigned long long>(g_health.degradations()));
  WriteJson(out_path, quick, results, batch, min_speedup);
  std::filesystem::remove_all(store_dir, ec);
  return 0;
}

}  // namespace
}  // namespace tpp::bench

int main(int argc, char** argv) { return tpp::bench::Run(argc, argv); }
