// Fig. 5 reproduction: running time vs budget k on Arenas-email(-like),
// |T| = 20, comparing the base greedy algorithms (full candidate scan,
// recount engine) against their scalable "-R" restrictions, plus RD/RDT.
//
// Paper shape to check: the normal greedy algorithms cost roughly an order
// of magnitude (paper: ~20x) more than the "-R" variants; SGB, CT and WT
// have very similar cost (same asymptotic complexity); RD/RDT are ~free.
//
// All algorithms here run on the NaiveEngine so measured time follows the
// paper's O(k n m (log N)^2) cost model rather than our incidence index.

#include <cstdio>

#include "common/table.h"
#include "graph/datasets.h"
#include "harness_common.h"

namespace tpp::bench {
namespace {

constexpr size_t kNumTargets = 20;
constexpr size_t kBudget = 25;

struct Variant {
  Method method;
  bool restricted;
  std::string DisplayName() const {
    std::string name(MethodName(method));
    if (method != Method::kRd && method != Method::kRdt && restricted) {
      name += "-R";
    }
    return name;
  }
};

int Run() {
  std::printf("== Fig. 5: running time vs budget k, Arenas-email-like, "
              "|T|=%zu, k<=%zu, recount (naive) engine ==\n\n",
              kNumTargets, kBudget);
  Result<graph::Graph> graph = graph::MakeArenasEmailLike(1);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph generation failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }

  const std::vector<Variant> variants = {
      {Method::kSgb, true},   {Method::kSgb, false},
      {Method::kCtTbd, true}, {Method::kCtTbd, false},
      {Method::kWtTbd, true}, {Method::kWtTbd, false},
      {Method::kRd, false},   {Method::kRdt, false},
  };
  const std::vector<size_t> report_ks = {1, 5, 10, 15, 20, 25};

  for (motif::MotifKind kind : motif::kPaperMotifs) {
    Rng rng(42);
    auto targets = *core::SampleTargets(*graph, kNumTargets, rng);
    core::TppInstance instance = *core::MakeInstance(*graph, targets, kind);

    TextTable table;
    CsvWriter csv;
    std::vector<std::string> header = {"k"};
    for (const Variant& v : variants) header.push_back(v.DisplayName());
    table.SetHeader(header);
    csv.SetHeader(header);

    // One run per variant to k=25; cumulative seconds read off the trace.
    std::vector<std::vector<double>> seconds(variants.size());
    for (size_t vi = 0; vi < variants.size(); ++vi) {
      RunConfig config;
      config.naive_engine = true;
      config.restricted = variants[vi].restricted;
      Rng run_rng(7 + vi);
      auto result =
          *RunMethod(instance, variants[vi].method, kBudget, config,
                     run_rng);
      seconds[vi].assign(report_ks.size(), result.total_seconds);
      for (size_t ri = 0; ri < report_ks.size(); ++ri) {
        size_t k = report_ks[ri];
        if (k <= result.picks.size()) {
          seconds[vi][ri] = result.picks[k - 1].cumulative_seconds;
        }
      }
    }
    for (size_t ri = 0; ri < report_ks.size(); ++ri) {
      std::vector<std::string> row = {std::to_string(report_ks[ri])};
      for (size_t vi = 0; vi < variants.size(); ++vi) {
        row.push_back(Fmt(seconds[vi][ri], 4));
      }
      table.AddRow(row);
      csv.AddRow(row);
    }
    std::printf("-- %s pattern (seconds, cumulative) --\n%s",
                std::string(motif::MotifName(kind)).c_str(),
                table.ToString().c_str());
    // Speedup headline, as the paper reports (~20x).
    double normal_total = seconds[1].back();
    double restricted_total = seconds[0].back();
    if (restricted_total > 0) {
      std::printf("SGB normal/restricted speedup at k=%zu: %.1fx\n\n",
                  kBudget, normal_total / restricted_total);
    }
    WriteCsv("fig5_" + std::string(motif::MotifName(kind)), csv);
  }
  return 0;
}

}  // namespace
}  // namespace tpp::bench

int main() { return tpp::bench::Run(); }
