// Fig. 6 reproduction: running time vs budget k on the DBLP(-like) graph
// for the scalable algorithms (SGB-R / CT-R / WT-R) and RD/RDT, |T| = 50,
// k <= 25 — the non-scalable variants did not finish within a week in the
// paper and are likewise omitted here.
//
// Paper shape to check: RD/RDT are near zero; CT-R and WT-R cost more than
// SGB-R (they re-scan candidates per (target, pick)); Rectangle is the most
// expensive motif.
//
// Defaults to scale 0.1 of the published DBLP size (TPP_BENCH_SCALE=1.0
// reproduces the full-size experiment; expect thousands of seconds, as in
// the paper).

#include <cstdio>

#include "common/table.h"
#include "graph/datasets.h"
#include "harness_common.h"

namespace tpp::bench {
namespace {

constexpr size_t kNumTargets = 50;
constexpr size_t kBudget = 25;

int Run() {
  const double scale = BenchScale(0.1);
  std::printf("== Fig. 6: running time vs budget k, DBLP-like (scale %.2f), "
              "|T|=%zu, k<=%zu, scalable (-R) algorithms ==\n\n",
              scale, kNumTargets, kBudget);
  Result<graph::Graph> graph = graph::MakeDblpLike(1, scale);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph generation failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %s\n\n", graph->DebugString().c_str());

  const std::vector<Method> methods = {Method::kSgb, Method::kCtTbd,
                                       Method::kWtTbd, Method::kRd,
                                       Method::kRdt};
  const std::vector<size_t> report_ks = {1, 5, 10, 15, 20, 25};

  for (motif::MotifKind kind : motif::kPaperMotifs) {
    Rng rng(42);
    auto targets = *core::SampleTargets(*graph, kNumTargets, rng);
    core::TppInstance instance = *core::MakeInstance(*graph, targets, kind);

    TextTable table;
    CsvWriter csv;
    std::vector<std::string> header = {"k"};
    for (Method m : methods) {
      std::string name(MethodName(m));
      if (m != Method::kRd && m != Method::kRdt) name += "-R";
      header.push_back(name);
    }
    table.SetHeader(header);
    csv.SetHeader(header);

    std::vector<std::vector<double>> seconds(methods.size());
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      RunConfig config;
      config.naive_engine = true;  // paper-faithful cost model
      config.restricted = true;
      Rng run_rng(7 + mi);
      auto result =
          *RunMethod(instance, methods[mi], kBudget, config, run_rng);
      seconds[mi].assign(report_ks.size(), result.total_seconds);
      for (size_t ri = 0; ri < report_ks.size(); ++ri) {
        size_t k = report_ks[ri];
        if (k <= result.picks.size()) {
          seconds[mi][ri] = result.picks[k - 1].cumulative_seconds;
        }
      }
    }
    for (size_t ri = 0; ri < report_ks.size(); ++ri) {
      std::vector<std::string> row = {std::to_string(report_ks[ri])};
      for (size_t mi = 0; mi < methods.size(); ++mi) {
        row.push_back(Fmt(seconds[mi][ri], 4));
      }
      table.AddRow(row);
      csv.AddRow(row);
    }
    std::printf("-- %s pattern (seconds, cumulative) --\n%s\n",
                std::string(motif::MotifName(kind)).c_str(),
                table.ToString().c_str());
    WriteCsv("fig6_" + std::string(motif::MotifName(kind)), csv);
  }
  return 0;
}

}  // namespace
}  // namespace tpp::bench

int main() { return tpp::bench::Run(); }
