// Shared driver for the utility-loss tables (paper Tables III-V).

#ifndef TPP_BENCH_UTILITY_TABLE_H_
#define TPP_BENCH_UTILITY_TABLE_H_

#include <string>

#include "graph/graph.h"
#include "harness_common.h"
#include "metrics/utility.h"

namespace tpp::bench {

/// Configuration of one utility-loss experiment.
struct UtilityTableSpec {
  std::string title;          ///< printed heading
  std::string csv_name;       ///< results/<csv_name>.csv
  size_t num_targets = 20;    ///< |T|
  size_t samples = 3;         ///< independent target samplings averaged
  /// 0 = run every greedy method to full protection (Tables III/IV);
  /// otherwise delete exactly this budget (Table V uses k=25).
  size_t fixed_budget = 0;
  /// Metric selection; Tables III/IV use all six, Table V only clustering
  /// and core number (the paper skips l and mu on DBLP for cost).
  metrics::UtilityOptions utility_options;
};

/// Runs the experiment on `graph` and prints one row per motif with the
/// average utility-loss ratio of each greedy method, paper-style.
/// Returns non-zero on failure.
int RunUtilityLossTable(const graph::Graph& graph,
                        const UtilityTableSpec& spec);

}  // namespace tpp::bench

#endif  // TPP_BENCH_UTILITY_TABLE_H_
