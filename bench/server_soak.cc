// Plan-server soak: deterministic overload shedding + a multi-client
// Unix-socket soak with byte-identity across runs. Emits
// BENCH_server_soak.json for tools/bench_guard --mode=server.
//
// Three sections:
//   overload — one stdio session floods a server whose solve loop is
//              frozen on the before_pickup hook, so every admission
//              decision is made by the IO thread against a full, static
//              queue: exactly `depth` requests admit and the rest shed
//              with kUnavailable + retry-after. Deterministic by
//              construction — no timing, no load generator tuning.
//   soak     — C clients connect over a Unix socket and push R requests
//              each (interleaving freely), then the server drains under
//              load. The WHOLE soak runs twice; the bench asserts every
//              client's response transcript is byte-identical across the
//              two runs (the server's determinism contract: responses
//              depend on request + graph state, never on interleaving,
//              worker count, or connection order).
//   drain    — drain is requested with a known number of requests queued
//              behind a frozen solve loop; every one must run to
//              completion with its response delivered (drained_in_flight
//              equals the queue depth at drain time, nothing drops).
//
// Under an armed TPP_FAULTS profile (CI soaks with transient net faults)
// the run additionally reports faults_injected so the guard can reject a
// vacuous pass where the profile never fired. Arm TRANSIENT profiles
// only: a torn/permanent profile kills sessions by design, which is a
// correctness scenario for tests/server_test.cc, not a soak invariant.
//
// Flags: --quick (smaller fleet, CI smoke mode), --clients=N,
//        --per-client=N, --out=PATH (default BENCH_server_soak.json).

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/flags.h"
#include "common/net_io.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "service/instance_repository.h"
#include "service/plan_service.h"
#include "service/server/admission.h"
#include "service/server/framing.h"
#include "service/server/server.h"

namespace tpp::bench {
namespace {

namespace server = service::server;
using service::PlanService;

graph::Graph SoakBase() {
  Rng rng(20240809);
  return *graph::HolmeKim(400, 3, 0.3, rng);
}

// ------------------------------------------------- drain under load

// Freezes the solve loop, queues `in_flight` requests, requests drain
// with all of them pending, then releases: every queued request must
// run to completion with its response delivered (drained_in_flight ==
// in_flight, dropped_responses == 0) — the graceful-drain guarantee,
// measured instead of assumed.
server::ServerStats RunDrainUnderLoad(size_t in_flight) {
  int in_pipe[2];
  int out_pipe[2];
  TPP_CHECK(::pipe(in_pipe) == 0 && ::pipe(out_pipe) == 0);

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  server::ServerOptions options;
  options.stdio = true;
  options.stdio_in = in_pipe[0];
  options.stdio_out = out_pipe[1];
  options.admission.max_per_client = 0;
  options.before_pickup = [gate] { gate.wait(); };

  PlanService service(SoakBase());
  server::PlanServer plan_server(&service, std::move(options));
  std::thread serve([&] { TPP_CHECK(plan_server.Serve().ok()); });

  for (size_t i = 0; i < in_flight; ++i) {
    const std::string line =
        StrFormat("algorithm=sgb sample=3 seed=%zu budget=4\n", 500 + i);
    TPP_CHECK(net::WriteAll(in_pipe[1], line.data(), line.size()).ok());
  }
  while (plan_server.snapshot_stats().admitted < in_flight) {
    std::this_thread::yield();
  }
  plan_server.RequestDrain();
  release.set_value();

  server::LineAssembler reader;
  size_t answered = 0;
  while (answered < in_flight) {
    pollfd pfd{out_pipe[0], POLLIN, 0};
    TPP_CHECK(::poll(&pfd, 1, 30000) > 0);
    char buffer[4096];
    Result<size_t> got = net::ReadSome(out_pipe[0], buffer, sizeof(buffer));
    TPP_CHECK(got.ok() && *got > 0);
    answered += reader.Feed(std::string_view(buffer, *got)).size();
  }
  serve.join();
  ::close(in_pipe[0]);
  ::close(in_pipe[1]);
  ::close(out_pipe[0]);
  ::close(out_pipe[1]);

  server::ServerStats stats = plan_server.snapshot_stats();
  TPP_CHECK(stats.admitted == in_flight);
  TPP_CHECK(stats.drained_in_flight == in_flight);
  TPP_CHECK(stats.dropped_responses == 0);
  return stats;
}

// ----------------------------------------------------------- overload

struct OverloadResult {
  size_t offered = 0;
  size_t admitted = 0;
  size_t shed = 0;
  uint64_t retry_after_hint_ms = 0;
};

OverloadResult RunOverload(size_t depth) {
  int in_pipe[2];
  int out_pipe[2];
  TPP_CHECK(::pipe(in_pipe) == 0 && ::pipe(out_pipe) == 0);

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  server::ServerOptions options;
  options.stdio = true;
  options.stdio_in = in_pipe[0];
  options.stdio_out = out_pipe[1];
  options.admission.max_queue_depth = depth;
  options.admission.max_per_client = 0;
  options.before_pickup = [gate] { gate.wait(); };

  PlanService service(SoakBase());
  server::PlanServer plan_server(&service, std::move(options));
  std::thread serve([&] { TPP_CHECK(plan_server.Serve().ok()); });

  OverloadResult result;
  result.offered = depth * 3;
  for (size_t i = 0; i < result.offered; ++i) {
    const std::string line =
        StrFormat("algorithm=sgb sample=3 seed=%zu budget=4\n", i);
    TPP_CHECK(net::WriteAll(in_pipe[1], line.data(), line.size()).ok());
  }
  // The shed replies are written by the IO thread at the admission
  // decision; read them all before releasing the solve loop to prove
  // overload feedback never queues behind solving.
  server::LineAssembler reader;
  std::vector<std::string> sheds;
  while (sheds.size() < result.offered - depth) {
    pollfd pfd{out_pipe[0], POLLIN, 0};
    TPP_CHECK(::poll(&pfd, 1, 30000) > 0);
    char buffer[4096];
    Result<size_t> got = net::ReadSome(out_pipe[0], buffer, sizeof(buffer));
    TPP_CHECK(got.ok() && *got > 0);
    for (std::string& line :
         reader.Feed(std::string_view(buffer, *got))) {
      TPP_CHECK(line.find(" shed Unavailable ") != std::string::npos);
      const size_t hint = line.find("retry_after_ms=");
      TPP_CHECK(hint != std::string::npos);
      result.retry_after_hint_ms = static_cast<uint64_t>(
          std::strtoull(line.c_str() + hint + 15, nullptr, 10));
      sheds.push_back(std::move(line));
    }
  }
  release.set_value();
  ::close(in_pipe[1]);
  serve.join();
  ::close(in_pipe[0]);
  ::close(out_pipe[0]);
  ::close(out_pipe[1]);

  server::ServerStats stats = plan_server.snapshot_stats();
  result.admitted = stats.admitted;
  result.shed = static_cast<size_t>(stats.shed_total());
  TPP_CHECK(result.admitted == depth);
  TPP_CHECK(result.shed == result.offered - depth);
  TPP_CHECK(stats.responses == depth);  // admitted work still answered
  return result;
}

// --------------------------------------------------------------- soak

int ConnectUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  TPP_CHECK(fd >= 0);
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  TPP_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0);
  return fd;
}

struct SoakRun {
  std::vector<std::vector<std::string>> transcripts;  // per client
  server::ServerStats stats;
  double wall_ms = 0;
};

SoakRun RunSoak(size_t clients, size_t per_client) {
  const std::string path = StrFormat(
      "/tmp/tpp_soak_%d.sock", static_cast<int>(::getpid()));
  server::ServerOptions options;
  options.socket_path = path;
  options.admission.max_per_client = 0;
  PlanService service(SoakBase());
  service::InstanceRepository repository(&service.base());
  options.repository = &repository;
  server::PlanServer plan_server(&service, std::move(options));
  std::thread serve([&] { TPP_CHECK(plan_server.Serve().ok()); });
  while (!std::filesystem::exists(path)) std::this_thread::yield();

  SoakRun run;
  run.transcripts.resize(clients);
  WallTimer timer;
  std::vector<std::thread> fleet;
  for (size_t c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      const int fd = ConnectUnix(path);
      for (size_t r = 0; r < per_client; ++r) {
        const std::string line = StrFormat(
            "name=c%zur%zu algorithm=sgb sample=3 seed=%zu budget=4\n", c,
            r, c * 1000 + r);
        TPP_CHECK(net::WriteAll(fd, line.data(), line.size()).ok());
      }
      server::LineAssembler reader;
      std::vector<std::string>& transcript = run.transcripts[c];
      while (transcript.size() < per_client) {
        pollfd pfd{fd, POLLIN, 0};
        TPP_CHECK(::poll(&pfd, 1, 30000) > 0);
        char buffer[4096];
        Result<size_t> got = net::ReadSome(fd, buffer, sizeof(buffer));
        TPP_CHECK(got.ok() && *got > 0);
        for (std::string& line :
             reader.Feed(std::string_view(buffer, *got))) {
          transcript.push_back(std::move(line));
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& t : fleet) t.join();
  plan_server.RequestDrain();
  serve.join();
  run.wall_ms = timer.Millis();
  ::unlink(path.c_str());
  run.stats = plan_server.snapshot_stats();
  TPP_CHECK(run.stats.admitted == clients * per_client);
  TPP_CHECK(run.stats.responses == clients * per_client);
  TPP_CHECK(run.stats.dropped_responses == 0);
  return run;
}

void WriteJson(const std::string& path, bool quick,
               const OverloadResult& overload, const SoakRun& first,
               const SoakRun& second, size_t clients, size_t per_client,
               bool byte_identical, const server::ServerStats& drain,
               const std::string& fault_spec, uint64_t faults_injected) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  TPP_CHECK(f != nullptr);
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"server_soak\",\n");
  std::fprintf(f, "  \"fixture\": \"holme_kim_400\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"fault_spec\": \"%s\",\n", fault_spec.c_str());
  std::fprintf(f, "  \"faults_injected\": %llu,\n",
               static_cast<unsigned long long>(faults_injected));
  std::fprintf(f,
               "  \"overload\": {\"offered\": %zu, \"admitted\": %zu, "
               "\"shed\": %zu, \"retry_after_hint_ms\": %llu},\n",
               overload.offered, overload.admitted, overload.shed,
               static_cast<unsigned long long>(
                   overload.retry_after_hint_ms));
  const double rps =
      second.wall_ms > 0
          ? static_cast<double>(clients * per_client) * 1000.0 /
                second.wall_ms
          : 0;
  std::fprintf(f,
               "  \"soak\": {\"clients\": %zu, \"per_client\": %zu, "
               "\"admitted\": %llu, \"responses\": %llu, "
               "\"dropped_responses\": %llu, \"net_write_retries\": %llu, "
               "\"byte_identical\": %s, \"wall_ms\": %.2f, "
               "\"throughput_rps\": %.1f},\n",
               clients, per_client,
               static_cast<unsigned long long>(second.stats.admitted),
               static_cast<unsigned long long>(second.stats.responses),
               static_cast<unsigned long long>(
                   second.stats.dropped_responses),
               static_cast<unsigned long long>(
                   first.stats.net_write_retries +
                   second.stats.net_write_retries),
               byte_identical ? "true" : "false", second.wall_ms, rps);
  std::fprintf(f,
               "  \"drain\": {\"in_flight_at_drain\": %llu, "
               "\"drained_in_flight\": %llu, \"aborted_in_flight\": %llu, "
               "\"drain_dropped_responses\": %llu},\n",
               static_cast<unsigned long long>(drain.admitted),
               static_cast<unsigned long long>(drain.drained_in_flight),
               static_cast<unsigned long long>(drain.aborted_in_flight),
               static_cast<unsigned long long>(drain.dropped_responses));
  std::fprintf(f, "  \"crashes\": 0\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("[json] %s\n", path.c_str());
}

int Run(int argc, char** argv) {
  Result<ParsedArgs> args = ParsedArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    return 2;
  }
  const bool quick = args->GetBool("quick");
  Result<int64_t> clients_flag =
      args->GetInt("clients", quick ? 4 : 8);
  Result<int64_t> per_client_flag =
      args->GetInt("per-client", quick ? 8 : 25);
  const std::string out_path =
      args->GetString("out", "BENCH_server_soak.json");
  const size_t clients = static_cast<size_t>(*clients_flag);
  const size_t per_client = static_cast<size_t>(*per_client_flag);

  const char* fault_env = std::getenv("TPP_FAULTS");
  const std::string fault_spec = fault_env == nullptr ? "" : fault_env;

  std::printf("== plan-server soak: %zu clients x %zu requests%s%s%s ==\n\n",
              clients, per_client, quick ? ", quick" : "",
              fault_spec.empty() ? "" : ", faults ", fault_spec.c_str());

  const size_t depth = quick ? 8 : 32;
  OverloadResult overload = RunOverload(depth);
  std::printf("overload: %zu offered, %zu admitted, %zu shed at the door, "
              "retry-after hint %llu ms\n",
              overload.offered, overload.admitted, overload.shed,
              static_cast<unsigned long long>(
                  overload.retry_after_hint_ms));

  SoakRun first = RunSoak(clients, per_client);
  SoakRun second = RunSoak(clients, per_client);
  bool byte_identical = true;
  for (size_t c = 0; c < clients; ++c) {
    if (first.transcripts[c] != second.transcripts[c]) {
      byte_identical = false;
      std::printf("client %zu transcript DIVERGED between runs\n", c);
    }
  }
  const server::ServerStats& stats = second.stats;
  std::printf("soak: %llu admitted, %llu responses, %llu dropped, "
              "transcripts across runs %s, %.2f ms (%.1f req/s)\n",
              static_cast<unsigned long long>(stats.admitted),
              static_cast<unsigned long long>(stats.responses),
              static_cast<unsigned long long>(stats.dropped_responses),
              byte_identical ? "byte-identical" : "DIVERGED",
              second.wall_ms,
              second.wall_ms > 0
                  ? static_cast<double>(clients * per_client) * 1000.0 /
                        second.wall_ms
                  : 0);
  const server::ServerStats drain = RunDrainUnderLoad(quick ? 6 : 16);
  std::printf("drain: %llu queued at drain, %llu finished in flight, "
              "%llu aborted, %llu dropped (soak high water: depth %zu, "
              "client load %zu)\n",
              static_cast<unsigned long long>(drain.admitted),
              static_cast<unsigned long long>(drain.drained_in_flight),
              static_cast<unsigned long long>(drain.aborted_in_flight),
              static_cast<unsigned long long>(drain.dropped_responses),
              stats.max_queue_depth, stats.max_client_load);
  const uint64_t faults_injected = fault::FaultInjector::Global().injected();
  if (!fault_spec.empty()) {
    std::printf("faults: profile '%s' fired %llu times, %llu write "
                "retries absorbed\n",
                fault_spec.c_str(),
                static_cast<unsigned long long>(faults_injected),
                static_cast<unsigned long long>(
                    first.stats.net_write_retries +
                    second.stats.net_write_retries));
  }

  WriteJson(out_path, quick, overload, first, second, clients, per_client,
            byte_identical, drain, fault_spec, faults_injected);
  return byte_identical ? 0 : 1;
}

}  // namespace
}  // namespace tpp::bench

int main(int argc, char** argv) { return tpp::bench::Run(argc, argv); }
