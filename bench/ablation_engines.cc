// Ablation benches for the design choices called out in DESIGN.md:
//   1. incidence-index engine vs paper-faithful recount engine,
//   2. restricted ("-R") vs full candidate scope,
//   3. lazy (CELF) vs eager SGB evaluation.
// All three produce identical protector sequences (differential-tested in
// tests/); this bench quantifies the cost differences.

#include <cstdio>

#include "common/table.h"
#include "common/timer.h"
#include "graph/datasets.h"
#include "harness_common.h"

namespace tpp::bench {
namespace {

constexpr size_t kNumTargets = 20;
constexpr size_t kBudget = 25;

struct Row {
  std::string label;
  double seconds = 0;
  uint64_t gain_evals = 0;
  size_t final_similarity = 0;
};

Row Measure(const core::TppInstance& instance, const std::string& label,
            const RunConfig& config) {
  Rng rng(3);
  WallTimer timer;
  auto result = *RunMethod(instance, Method::kSgb, kBudget, config, rng);
  Row row;
  row.label = label;
  row.seconds = timer.Seconds();
  row.gain_evals = result.gain_evaluations;
  row.final_similarity = result.final_similarity;
  return row;
}

int Run() {
  std::printf("== Ablation: engine / candidate-scope / laziness, SGB with "
              "k=%zu, Arenas-email-like, |T|=%zu ==\n\n",
              kBudget, kNumTargets);
  Result<graph::Graph> graph = graph::MakeArenasEmailLike(1);
  if (!graph.ok()) return 1;

  for (motif::MotifKind kind : motif::kPaperMotifs) {
    Rng rng(42);
    auto targets = *core::SampleTargets(*graph, kNumTargets, rng);
    core::TppInstance instance = *core::MakeInstance(*graph, targets, kind);

    std::vector<Row> rows;
    {
      RunConfig c;  // indexed + restricted (library default)
      rows.push_back(Measure(instance, "indexed + restricted", c));
    }
    {
      RunConfig c;
      c.lazy = true;
      rows.push_back(Measure(instance, "indexed + restricted + lazy", c));
    }
    {
      RunConfig c;
      c.restricted = false;
      rows.push_back(Measure(instance, "indexed + all-edges", c));
    }
    {
      RunConfig c;
      c.naive_engine = true;
      rows.push_back(Measure(instance, "naive + restricted (SGB-R)", c));
    }
    {
      RunConfig c;
      c.naive_engine = true;
      c.restricted = false;
      rows.push_back(Measure(instance, "naive + all-edges (paper SGB)", c));
    }

    TextTable table;
    CsvWriter csv;
    std::vector<std::string> header = {"configuration", "seconds",
                                       "gain evals", "final s(P,T)"};
    table.SetHeader(header);
    csv.SetHeader(header);
    for (const Row& row : rows) {
      std::vector<std::string> cells = {
          row.label, Fmt(row.seconds, 4), std::to_string(row.gain_evals),
          std::to_string(row.final_similarity)};
      table.AddRow(cells);
      csv.AddRow(cells);
    }
    std::printf("-- %s pattern --\n%s",
                std::string(motif::MotifName(kind)).c_str(),
                table.ToString().c_str());
    // Sanity headline: all configurations end at the same similarity.
    bool identical = true;
    for (const Row& row : rows) {
      if (row.final_similarity != rows[0].final_similarity) identical = false;
    }
    std::printf("identical final similarity across configs: %s\n\n",
                identical ? "yes" : "NO (BUG)");
    WriteCsv("ablation_" + std::string(motif::MotifName(kind)), csv);
  }
  return 0;
}

}  // namespace
}  // namespace tpp::bench

int main() { return tpp::bench::Run(); }
