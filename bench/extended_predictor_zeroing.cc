// Extended Discussion (§VI-D) reproduction: a fully protected graph
// defeats ALL triangle-based link predictions at once — Jaccard, Salton,
// Sorensen, Hub Promoted, Hub Depressed, LHN, Adamic-Adar and Resource
// Allocation all score every target 0 after Triangle-motif full
// protection, and the attack AUC collapses to chance.

#include <cstdio>

#include "common/table.h"
#include "graph/datasets.h"
#include "harness_common.h"
#include "linkpred/attack.h"
#include "linkpred/katz.h"

namespace tpp::bench {
namespace {

constexpr size_t kNumTargets = 20;

int Run() {
  std::printf("== Extended: predictor zeroing after Triangle full "
              "protection, Arenas-email-like, |T|=%zu ==\n\n",
              kNumTargets);
  Result<graph::Graph> graph = graph::MakeArenasEmailLike(1);
  if (!graph.ok()) return 1;
  Rng rng(5);
  auto targets = *core::SampleTargets(*graph, kNumTargets, rng);
  core::TppInstance instance =
      *core::MakeInstance(*graph, targets, motif::MotifKind::kTriangle);

  // Attack the phase-1 release (targets deleted, no protectors yet).
  Rng attack_rng(11);
  auto before =
      *linkpred::EvaluateAllAttacks(instance.released, targets, attack_rng);

  // Full protection, then attack again.
  RunConfig config;
  Rng run_rng(13);
  auto protection =
      *RunToFullProtection(instance, Method::kSgb, config, run_rng);
  graph::Graph released = instance.released;
  released.RemoveEdges(protection.protectors);
  Rng attack_rng2(11);
  auto after = *linkpred::EvaluateAllAttacks(released, targets, attack_rng2);

  TextTable table;
  CsvWriter csv;
  std::vector<std::string> header = {
      "index",          "AUC before", "AUC after",  "max score before",
      "max score after", "zeroed targets"};
  table.SetHeader(header);
  csv.SetHeader(header);
  for (size_t i = 0; i < before.size(); ++i) {
    double max_before = 0, max_after = 0;
    for (double s : before[i].target_scores) max_before = std::max(max_before, s);
    for (double s : after[i].target_scores) max_after = std::max(max_after, s);
    std::vector<std::string> row = {
        std::string(linkpred::IndexName(before[i].index)),
        Fmt(before[i].auc, 3),
        Fmt(after[i].auc, 3),
        Fmt(max_before, 4),
        Fmt(max_after, 4),
        std::to_string(after[i].zero_score_targets) + "/" +
            std::to_string(kNumTargets)};
    table.AddRow(row);
    csv.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("protectors deleted for full protection (k*): %zu\n",
              protection.protectors.size());

  // Katz is path-based, not purely triangle-based: the paper lists it as
  // future work because full Triangle protection does NOT zero it. Report
  // it for context.
  double katz_before = 0, katz_after = 0;
  for (const graph::Edge& t : targets) {
    katz_before = std::max(katz_before,
                           *linkpred::KatzScore(instance.released, t.u, t.v));
    katz_after =
        std::max(katz_after, *linkpred::KatzScore(released, t.u, t.v));
  }
  std::printf("Katz (future work in the paper): max target score %.5f -> "
              "%.5f (not zeroed, as expected)\n\n",
              katz_before, katz_after);
  WriteCsv("extended_predictor_zeroing", csv);
  return 0;
}

}  // namespace
}  // namespace tpp::bench

int main() { return tpp::bench::Run(); }
