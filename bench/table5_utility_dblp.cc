// Table V reproduction: utility-loss ratio on the DBLP(-like) graph with
// |T| = 52 and a limited budget k = 25, reporting only the clustering
// coefficient and core number (the paper skips path length and the
// eigenvalue on DBLP because they cannot be computed efficiently there).
//
// Paper shape to check: all losses are tiny (full-scale paper values are
// ~0.01-0.02%; at reduced TPP_BENCH_SCALE the same deletions touch a
// proportionally larger share of the graph, so expect values scaled up by
// roughly 1/scale while remaining far below the Arenas losses).

#include "graph/datasets.h"
#include "utility_table.h"

int main() {
  const double scale = tpp::bench::BenchScale(0.1);
  tpp::Result<tpp::graph::Graph> graph = tpp::graph::MakeDblpLike(1, scale);
  if (!graph.ok()) return 1;
  tpp::bench::UtilityTableSpec spec;
  spec.title = "Table V: utility loss ratio, DBLP-like (scale " +
               tpp::bench::Fmt(scale, 2) + "), k=25";
  spec.csv_name = "table5_utility_dblp";
  spec.num_targets = 52;
  spec.samples = tpp::bench::BenchSamples(2);
  spec.fixed_budget = 25;
  spec.utility_options = {};
  spec.utility_options.apl = false;
  spec.utility_options.assortativity = false;
  spec.utility_options.mu = false;
  spec.utility_options.modularity = false;
  // clustering + core number remain, matching the paper's Table V.
  return tpp::bench::RunUtilityLossTable(*graph, spec);
}
