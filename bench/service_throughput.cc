// Plan-service throughput: batches of mixed-solver protection requests
// against the Arenas fixture, executed by PlanService on the shared
// thread pool at 1/2/4/8 workers vs a plain sequential loop. Emits a
// machine-readable BENCH_service_throughput.json so the serving-path
// scaling trajectory is tracked across PRs.
//
// Every run cross-checks that the concurrent batch reproduces the
// sequential plans bit-for-bit (the service's determinism contract), so
// the bench doubles as a stress test of per-request RNG stream isolation.
//
// A second scenario models the nightly repeated-request workload: a
// batch with 50% duplicate requests run on two consecutive "nights",
// served by the staged pipeline (in-batch dedup + instance sharing +
// content-addressed PlanCache) vs the uncached build-per-request path.
// Emits BENCH_plan_cache.json with the cache hit-rate and the aggregate
// speedup, and cross-checks that every cached/shared response is
// bit-identical to the uncached one.
//
// Flags: --quick (smaller batch, CI smoke mode), --requests=N,
//        --out=PATH (default BENCH_service_throughput.json),
//        --cache-out=PATH (default BENCH_plan_cache.json).

#include <algorithm>
#include <cstdio>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "graph/datasets.h"
#include "service/plan_cache.h"
#include "service/plan_service.h"

namespace tpp::bench {
namespace {

using service::PlanRequest;
using service::PlanResponse;
using service::PlanService;

// The solver mix cycled across the batch: the three greedy families, both
// budget divisions, the lazy SGB variant, and both random baselines —
// roughly what a mixed protection workload looks like.
struct MixEntry {
  const char* algorithm;
  bool lazy;
};
constexpr MixEntry kSolverMix[] = {
    {"sgb", false}, {"ct-tbd", false}, {"wt-dbd", false}, {"rdt", false},
    {"sgb", true},  {"ct-dbd", false}, {"wt-tbd", false}, {"rd", false},
};

// `heavy` (the non-quick mode) skews the mix toward Rectangle/RecTri
// motifs and larger target sets so per-request solver work dominates
// pool overhead — that is the regime the scaling numbers are about.
std::vector<PlanRequest> MakeRequests(size_t count, size_t budget,
                                      bool heavy) {
  std::vector<PlanRequest> requests;
  requests.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const MixEntry& mix = kSolverMix[i % std::size(kSolverMix)];
    PlanRequest request;
    request.name = "q" + std::to_string(i);
    request.sample = (heavy ? 20 : 10) + (i % 3) * 5;
    if (heavy) {
      request.motif = i % 2 == 1 ? motif::MotifKind::kRectangle
                                 : motif::MotifKind::kRecTri;
    } else {
      request.motif = i % 4 == 3 ? motif::MotifKind::kRectangle
                                 : motif::MotifKind::kTriangle;
    }
    request.spec.algorithm = mix.algorithm;
    request.spec.lazy = mix.lazy;
    request.spec.budget = budget;
    request.seed = 1000 + i;
    // Carry the released graph so the bit-identity checks compare it too.
    request.want_released = true;
    requests.push_back(std::move(request));
  }
  return requests;
}

double MedianOfRuns(size_t reps, const std::function<double()>& run) {
  std::vector<double> seconds;
  seconds.reserve(reps);
  for (size_t r = 0; r < reps; ++r) seconds.push_back(run());
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

struct ScalingPoint {
  int workers = 0;
  double seconds = 0;
  double requests_per_sec = 0;
  double speedup = 0;  ///< vs the sequential loop
};

// Nightly repeated-request scenario: `unique` distinct requests, each
// issued twice per night (50% duplicates), run on two consecutive nights.
// The uncached PR 2 path (no cache, build-per-request) re-solves all of
// it; the staged pipeline dedups within the night and serves the second
// night from the PlanCache. Responses are cross-checked bit-identical.
int RunPlanCacheScenario(const PlanService& plan_service, size_t unique,
                         size_t budget, bool quick,
                         const std::string& out_path) {
  std::vector<PlanRequest> night = MakeRequests(unique, budget,
                                                /*heavy=*/!quick);
  for (PlanRequest& request : night) {
    // Nightly batches use the lean default: no released-graph copies
    // (the plan files are the artifact). Identity below compares plans.
    request.want_released = false;
  }
  for (size_t i = 0; i < unique; ++i) {
    PlanRequest duplicate = night[i];  // same payload, different name
    duplicate.name += "-dup";
    night.push_back(std::move(duplicate));
  }
  constexpr int kNights = 2;
  std::printf(
      "== plan cache: %d nights x %zu requests (50%% duplicates) ==\n",
      kNights, night.size());

  // Baseline: the uncached PR 2 call pattern — every request solved from
  // scratch, no dedup, no sharing, no memo.
  service::BatchOptions uncached;
  uncached.share_instances = false;
  uncached.dedup = false;
  std::vector<std::vector<PlanResponse>> reference;
  WallTimer uncached_timer;
  for (int n = 0; n < kNights; ++n) {
    reference.push_back(plan_service.RunBatch(night, uncached));
  }
  const double uncached_seconds = uncached_timer.Seconds();
  for (const auto& responses : reference) {
    for (const PlanResponse& response : responses) {
      TPP_CHECK(response.status.ok());
    }
  }
  std::printf("uncached path: %.3fs (%.1f req/s)\n", uncached_seconds,
              kNights * night.size() / uncached_seconds);

  // Staged pipeline: dedup + instance sharing + content-addressed cache
  // warm across nights.
  service::PlanCache cache(/*capacity=*/4 * night.size());
  service::BatchStats stats;
  service::BatchOptions cached;
  cached.cache = &cache;
  cached.stats = &stats;
  bool identical = true;
  size_t dedup_shared = 0;
  size_t instance_builds = 0;
  WallTimer cached_timer;
  std::vector<std::vector<PlanResponse>> piped;
  for (int n = 0; n < kNights; ++n) {
    piped.push_back(plan_service.RunBatch(night, cached));
    dedup_shared += stats.dedup_shared;
    instance_builds += stats.instance_builds;
  }
  const double cached_seconds = cached_timer.Seconds();
  for (int n = 0; n < kNights; ++n) {
    for (size_t i = 0; i < night.size(); ++i) {
      if (piped[n][i].plan_text != reference[n][i].plan_text ||
          !(piped[n][i].released == reference[n][i].released)) {
        identical = false;
      }
    }
  }
  service::PlanCache::Stats cs = cache.stats();
  const double hit_rate =
      cs.hits + cs.misses > 0
          ? static_cast<double>(cs.hits) / (cs.hits + cs.misses)
          : 0;
  const double speedup = uncached_seconds / cached_seconds;
  std::printf("staged pipeline: %.3fs (%.1f req/s, %.2fx aggregate)\n",
              cached_seconds, kNights * night.size() / cached_seconds,
              speedup);
  std::printf(
      "cache: %llu hits / %llu misses (%.0f%% hit-rate), %zu "
      "dedup-shared, %zu instance builds\n",
      static_cast<unsigned long long>(cs.hits),
      static_cast<unsigned long long>(cs.misses), 100 * hit_rate,
      dedup_shared, instance_builds);
  std::printf(identical
                  ? "all cached/shared responses bit-identical to the "
                    "uncached path\n"
                  : "DETERMINISM VIOLATION: pipeline output differs from "
                    "the uncached path\n");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", out_path.c_str());
    TPP_CHECK(identical);
    return 0;
  }
  std::fprintf(f, "{\n  \"bench\": \"plan_cache\",\n");
  std::fprintf(f, "  \"fixture\": \"arenas_email_like\",\n");
  std::fprintf(f, "  \"nights\": %d,\n", kNights);
  std::fprintf(f, "  \"requests_per_night\": %zu,\n", night.size());
  std::fprintf(f, "  \"duplicate_fraction\": 0.5,\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"identical_to_uncached\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"uncached_seconds\": %.4f,\n", uncached_seconds);
  std::fprintf(f, "  \"cached_seconds\": %.4f,\n", cached_seconds);
  std::fprintf(f, "  \"aggregate_speedup\": %.2f,\n", speedup);
  std::fprintf(f, "  \"cache_hits\": %llu,\n",
               static_cast<unsigned long long>(cs.hits));
  std::fprintf(f, "  \"cache_misses\": %llu,\n",
               static_cast<unsigned long long>(cs.misses));
  std::fprintf(f, "  \"cache_evictions\": %llu,\n",
               static_cast<unsigned long long>(cs.evictions));
  std::fprintf(f, "  \"cache_hit_rate\": %.4f,\n", hit_rate);
  std::fprintf(f, "  \"dedup_shared\": %zu,\n", dedup_shared);
  std::fprintf(f, "  \"instance_builds\": %zu\n", instance_builds);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("[json] %s\n", out_path.c_str());
  // Fail AFTER writing so a determinism regression still uploads the
  // JSON evidence from CI.
  TPP_CHECK(identical);
  return 0;
}

int Run(int argc, char** argv) {
  Result<ParsedArgs> args = ParsedArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    return 2;
  }
  Status threads_status = ApplyThreadsFlag(*args);
  if (!threads_status.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 threads_status.ToString().c_str());
    return 2;
  }
  const bool quick = args->GetBool("quick");
  Result<int64_t> requests_flag =
      args->GetInt("requests", quick ? 8 : 16);
  if (!requests_flag.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 requests_flag.status().ToString().c_str());
    return 2;
  }
  const size_t num_requests = static_cast<size_t>(*requests_flag);
  const std::string out_path =
      args->GetString("out", "BENCH_service_throughput.json");
  const std::string cache_out_path =
      args->GetString("cache-out", "BENCH_plan_cache.json");
  const size_t reps = quick ? 1 : 3;

  PlanService plan_service(*graph::MakeArenasEmailLike(1));
  std::vector<PlanRequest> requests = MakeRequests(
      num_requests, /*budget=*/quick ? 8 : 24, /*heavy=*/!quick);
  std::printf("== service throughput: %zu mixed-solver requests on %s ==\n",
              requests.size(),
              plan_service.base().DebugString().c_str());

  // Baseline: the pre-service call pattern — one request at a time.
  std::vector<PlanResponse> reference;
  double serial_seconds = MedianOfRuns(reps, [&] {
    WallTimer timer;
    std::vector<PlanResponse> responses;
    responses.reserve(requests.size());
    for (const PlanRequest& request : requests) {
      responses.push_back(plan_service.RunOne(request));
    }
    reference = std::move(responses);
    return timer.Seconds();
  });
  for (const PlanResponse& response : reference) {
    TPP_CHECK(response.status.ok());
  }
  std::printf("sequential loop: %.3fs (%.1f req/s)\n", serial_seconds,
              requests.size() / serial_seconds);

  std::vector<ScalingPoint> points;
  bool identical = true;
  for (int workers : {1, 2, 4, 8}) {
    ScalingPoint point;
    point.workers = workers;
    std::vector<PlanResponse> responses;
    point.seconds = MedianOfRuns(reps, [&] {
      WallTimer timer;
      responses = plan_service.RunBatch(requests, workers);
      return timer.Seconds();
    });
    // Bit-identity of the served plans vs the sequential reference —
    // checked OUTSIDE the timed region so the speedup numbers measure
    // serving cost only.
    TPP_CHECK_EQ(responses.size(), reference.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      if (responses[i].plan_text != reference[i].plan_text ||
          !(responses[i].released == reference[i].released)) {
        identical = false;
      }
    }
    point.requests_per_sec = requests.size() / point.seconds;
    point.speedup = serial_seconds / point.seconds;
    points.push_back(point);
    std::printf("batch x%d workers: %.3fs (%.1f req/s, %.2fx)\n",
                workers, point.seconds, point.requests_per_sec,
                point.speedup);
  }
  std::printf(identical
                  ? "all batches bit-identical to the sequential loop\n"
                  : "DETERMINISM VIOLATION: batch output differs from "
                    "the sequential loop\n");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", out_path.c_str());
    TPP_CHECK(identical);
    return 0;
  }
  std::fprintf(f, "{\n  \"bench\": \"service_throughput\",\n");
  std::fprintf(f, "  \"fixture\": \"arenas_email_like\",\n");
  std::fprintf(f, "  \"requests\": %zu,\n", requests.size());
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_threads\": %d,\n", GlobalThreadCount());
  std::fprintf(f, "  \"identical_to_sequential\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"serial_seconds\": %.4f,\n", serial_seconds);
  std::fprintf(f, "  \"serial_requests_per_sec\": %.2f,\n",
               requests.size() / serial_seconds);
  std::fprintf(f, "  \"scaling\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const ScalingPoint& p = points[i];
    std::fprintf(f,
                 "    {\"workers\": %d, \"seconds\": %.4f, "
                 "\"requests_per_sec\": %.2f, \"speedup_vs_serial\": "
                 "%.2f}%s\n",
                 p.workers, p.seconds, p.requests_per_sec, p.speedup,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[json] %s\n", out_path.c_str());

  int cache_rc = RunPlanCacheScenario(plan_service, num_requests,
                                      /*budget=*/quick ? 8 : 24, quick,
                                      cache_out_path);
  // Fail AFTER writing so a determinism regression still uploads the
  // JSON evidence (with identical_to_sequential: false) from CI.
  TPP_CHECK(identical);
  return cache_rc;
}

}  // namespace
}  // namespace tpp::bench

int main(int argc, char** argv) { return tpp::bench::Run(argc, argv); }
