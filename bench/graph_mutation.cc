// Live-edit benchmark: in-place IncidenceIndex repair vs cold rebuild
// under batched base-graph churn on the Arenas fixture. Emits
// BENCH_graph_mutation.json.
//
// Two sections:
//   repair-vs-rebuild — per motif x churn level {0.1%, 1%, 5%} of the
//                 released edge count: a committed edit session's delta
//                 (half removals of existing edges, half insertions of
//                 absent pairs, never touching a target link) is applied
//                 to a fresh prototype clone via IndexedEngine::ApplyEdit
//                 (graph advance + delta-neighborhood index repair) and
//                 timed against IncidenceIndex::Build on the edited graph
//                 at the same thread budget. EVERY rep proves equivalence
//                 the strong way: an sgb restricted solve on the repaired
//                 engine must serialize a byte-identical deletion plan to
//                 the same solve on an engine adopting the rebuilt index.
//   cache-survival — a PlanService batch (explicit far-target requests +
//                 one sampled and one near-target request) runs against a
//                 PlanCache and an external InstanceRepository, a small
//                 edit commits through PlanService::ApplyEdit (cache
//                 rekeying + in-place group repair), and the batch reruns:
//                 far requests must hit the rekeyed cache (their plans
//                 CHECKed byte-identical to a cold service over the edited
//                 graph) while requests in the delta neighborhood are
//                 invalidated and re-solve.
//
// Flags: --quick (fewer repetitions, CI smoke mode), --threads=N (build
//        thread budget for both sides; default 1), --targets=N (protected
//        edges per motif; default 1500, matching store_warmstart so the
//        rebuild cost is the realistic serving cost), --out=PATH (default
//        BENCH_graph_mutation.json).

#include <malloc.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/indexed_engine.h"
#include "core/problem.h"
#include "core/report.h"
#include "core/solver.h"
#include "graph/datasets.h"
#include "graph/fingerprint.h"
#include "graph/graph.h"
#include "motif/incidence_index.h"
#include "service/instance_repository.h"
#include "service/plan_cache.h"
#include "service/plan_service.h"

namespace tpp::bench {
namespace {

using core::IndexedEngine;
using core::TppInstance;
using graph::Edge;
using graph::EdgeKey;
using graph::GraphDelta;
using graph::NodeId;
using motif::IncidenceIndex;
using motif::MotifKind;

// Overridable via --targets; matches bench/store_warmstart.cc so the cold
// rebuild here is the same index construction the warm-start bench prices.
size_t g_num_targets = 1500;

const double kChurnLevels[] = {0.1, 1.0, 5.0};

struct ChurnResult {
  std::string motif;
  double churn_pct = 0;
  size_t edits = 0;
  size_t instances = 0;
  double repair_ms = 0;
  double rebuild_ms = 0;
  double repair_speedup = 0;
};

struct CacheResult {
  size_t requests = 0;
  size_t far_requests = 0;
  size_t cache_rekeyed = 0;
  size_t invalidated_by_edit = 0;
  size_t groups_repaired = 0;
  size_t groups_reset = 0;
  size_t post_edit_cache_hits = 0;
  double post_edit_cache_hit_rate = 0;
};

TppInstance MakeArenas(MotifKind kind) {
  Result<graph::Graph> g = graph::MakeArenasEmailLike(1);
  TPP_CHECK(g.ok());
  Rng rng(7);
  auto targets = *core::SampleTargets(*g, g_num_targets, rng);
  return *core::MakeInstance(*g, targets, kind);
}

// A random normalized delta against `g`: `edits`/2 removals of existing
// edges plus the rest insertions of absent pairs, none of them target
// links (edits to target links change the problem itself and route
// through a group reset, not a repair).
GraphDelta RandomChurn(const graph::Graph& g,
                       const std::unordered_set<EdgeKey>& target_keys,
                       size_t edits, Rng& rng) {
  const std::vector<Edge> edges = g.Edges();
  GraphDelta delta;
  std::unordered_set<EdgeKey> used;
  const size_t removes = edits / 2;
  while (delta.removed.size() < removes) {
    const Edge& e = edges[rng.UniformIndex(edges.size())];
    if (used.insert(e.Key()).second) delta.removed.push_back(e);
  }
  while (delta.inserted.size() < edits - removes) {
    NodeId u = static_cast<NodeId>(rng.UniformIndex(g.NumNodes()));
    NodeId v = static_cast<NodeId>(rng.UniformIndex(g.NumNodes()));
    if (u == v || g.HasEdge(u, v)) continue;
    EdgeKey key = graph::MakeEdgeKey(u, v);
    if (target_keys.count(key) || !used.insert(key).second) continue;
    delta.inserted.emplace_back(std::min(u, v), std::max(u, v));
  }
  const auto by_key = [](const Edge& a, const Edge& b) {
    return a.Key() < b.Key();
  };
  std::sort(delta.inserted.begin(), delta.inserted.end(), by_key);
  std::sort(delta.removed.begin(), delta.removed.end(), by_key);
  return delta;
}

// The strong equivalence check: repaired engine and rebuilt index must
// drive the sgb restricted greedy to a byte-identical deletion plan.
void CheckPlansByteIdentical(IndexedEngine& repaired,
                             IncidenceIndex rebuilt,
                             const TppInstance& edited_inst) {
  core::SolverSpec spec;
  spec.algorithm = "sgb";
  spec.budget = 8;
  Rng rng_a(99), rng_b(99);
  Result<core::ProtectionResult> a =
      core::RunSolver(spec, repaired, edited_inst, rng_a);
  TPP_CHECK(a.ok());
  Result<IndexedEngine> adopted =
      IndexedEngine::Adopt(edited_inst, std::move(rebuilt));
  TPP_CHECK(adopted.ok());
  Result<core::ProtectionResult> b =
      core::RunSolver(spec, *adopted, edited_inst, rng_b);
  TPP_CHECK(b.ok());
  TPP_CHECK(core::SerializeDeletionPlan(edited_inst, *a) ==
            core::SerializeDeletionPlan(edited_inst, *b));
}

ChurnResult RunChurnLevel(MotifKind kind, const TppInstance& inst,
                          const IndexedEngine& prototype, double churn_pct,
                          bool quick, int build_threads) {
  ChurnResult out;
  out.motif = std::string(motif::MotifName(kind));
  out.churn_pct = churn_pct;
  out.instances = prototype.index().instances().size();
  out.edits = std::max<size_t>(
      2, static_cast<size_t>(static_cast<double>(inst.released.NumEdges()) *
                             churn_pct / 100.0));
  // The rebuild side re-enumerates the full motif set every rep; keep
  // Pentagon repetitions low exactly as store_warmstart does (but never
  // a single rep: the first carries the cold-cache warmup).
  const size_t reps = quick ? (kind == MotifKind::kPentagon ? 2 : 3)
                            : (kind == MotifKind::kPentagon ? 3 : 5);

  std::unordered_set<EdgeKey> target_keys;
  for (const Edge& t : inst.targets) target_keys.insert(t.Key());

  IncidenceIndex::BuildOptions options;
  options.threads = build_threads;

  // Each rep draws a fresh random delta (so the equivalence CHECKs cover
  // distinct edits); the reported times are the per-side minima across
  // reps — the standard noise floor, since every rep does the same amount
  // of nominal work on both sides.
  double repair_best = 0, rebuild_best = 0;
  for (size_t r = 0; r < reps; ++r) {
    Rng rng(1000 * static_cast<uint64_t>(kind) +
            static_cast<uint64_t>(churn_pct * 10) + r);
    GraphDelta delta = RandomChurn(inst.released, target_keys, out.edits,
                                   rng);

    IndexedEngine repaired = prototype.Clone();
    {
      WallTimer timer;
      TPP_CHECK(repaired.ApplyEdit(delta).ok());
      const double ms = timer.Millis();
      repair_best = r == 0 ? ms : std::min(repair_best, ms);
    }

    graph::Graph edited = inst.released;
    TPP_CHECK(edited.ApplyDelta(delta).ok());
    IncidenceIndex rebuilt = [&] {
      WallTimer timer;
      IncidenceIndex idx =
          *IncidenceIndex::Build(edited, inst.targets, kind, options);
      const double ms = timer.Millis();
      rebuild_best = r == 0 ? ms : std::min(rebuild_best, ms);
      return idx;
    }();
    TPP_CHECK_EQ(repaired.index().TotalAlive(), rebuilt.TotalAlive());

    TppInstance edited_inst{std::move(edited), inst.targets, kind};
    CheckPlansByteIdentical(repaired, std::move(rebuilt), edited_inst);
  }
  out.repair_ms = repair_best;
  out.rebuild_ms = rebuild_best;
  out.repair_speedup =
      out.repair_ms > 0 ? out.rebuild_ms / out.repair_ms : 0;
  return out;
}

// ---------------------------------------------------------------------------
// Cache-survival section.

// Explicit-target request over `links`, shaped to satisfy the cache
// survival rules (deterministic sgb, restricted scope).
service::PlanRequest FarRequest(const std::string& name,
                                std::vector<Edge> links) {
  service::PlanRequest request;
  request.name = name;
  request.targets = std::move(links);
  request.spec.algorithm = "sgb";
  request.spec.scope = core::CandidateScope::kTargetSubgraphEdges;
  request.spec.budget = 6;
  request.seed = 3;
  return request;
}

CacheResult RunCacheSurvival() {
  Result<graph::Graph> base = graph::MakeArenasEmailLike(1);
  TPP_CHECK(base.ok());

  // Pick the edit first, then derive its distance-1 affected set so the
  // "far" requests provably sit outside it.
  Rng churn_rng(42);
  GraphDelta delta = RandomChurn(*base, {}, 12, churn_rng);
  std::unordered_set<NodeId> affected;
  const auto touch = [&](const Edge& e) {
    affected.insert(e.u);
    affected.insert(e.v);
    for (NodeId w : base->Neighbors(e.u)) affected.insert(w);
    for (NodeId w : base->Neighbors(e.v)) affected.insert(w);
  };
  for (const Edge& e : delta.inserted) touch(e);
  for (const Edge& e : delta.removed) touch(e);

  // Far target links: existing edges with both endpoints outside the
  // affected set, chunked two per request.
  constexpr size_t kFarRequests = 6;
  std::vector<service::PlanRequest> requests;
  {
    std::vector<Edge> pool;
    for (const Edge& e : base->Edges()) {
      if (!affected.count(e.u) && !affected.count(e.v)) pool.push_back(e);
      if (pool.size() == 2 * kFarRequests) break;
    }
    TPP_CHECK_EQ(pool.size(), 2 * kFarRequests);
    for (size_t i = 0; i < kFarRequests; ++i) {
      requests.push_back(FarRequest("far" + std::to_string(i),
                                    {pool[2 * i], pool[2 * i + 1]}));
    }
  }
  // Two requests the edit must invalidate: one sampled (targets depend on
  // the base fingerprint) and one whose target link sits inside the delta
  // neighborhood.
  {
    service::PlanRequest sampled;
    sampled.name = "sampled";
    sampled.sample = 15;
    sampled.seed = 5;
    sampled.spec.algorithm = "sgb";
    sampled.spec.budget = 6;
    requests.push_back(std::move(sampled));
    requests.push_back(FarRequest("near", {delta.removed.front()}));
    // The near request targets a link the edit deletes; re-point it at a
    // surviving edge incident to a touched endpoint instead.
    const Edge& victim = delta.removed.front();
    requests.back().targets.clear();
    for (NodeId w : base->Neighbors(victim.u)) {
      if (graph::MakeEdgeKey(victim.u, w) != victim.Key()) {
        requests.back().targets.emplace_back(std::min(victim.u, w),
                                             std::max(victim.u, w));
        break;
      }
    }
    TPP_CHECK(!requests.back().targets.empty());
  }

  service::PlanService plan_service(*base);
  service::PlanCache cache(1024);
  service::InstanceRepository repository(&plan_service.base());
  service::BatchOptions options;
  options.cache = &cache;
  options.repository = &repository;

  service::BatchStats cold_stats;
  options.stats = &cold_stats;
  std::vector<service::PlanResponse> cold =
      plan_service.RunBatch(requests, options);
  for (const service::PlanResponse& response : cold) {
    TPP_CHECK(response.status.ok());
  }

  Result<service::EditSummary> summary =
      plan_service.ApplyEdit(delta, &cache, &repository);
  TPP_CHECK(summary.ok());

  service::BatchStats warm_stats;
  options.stats = &warm_stats;
  std::vector<service::PlanResponse> warm =
      plan_service.RunBatch(requests, options);

  // Reference: a cold service over the edited graph, no cache, no
  // sharing. Every response — served from the rekeyed cache or re-solved
  // — must match it byte for byte.
  graph::Graph edited = *base;
  TPP_CHECK(edited.ApplyDelta(delta).ok());
  service::PlanService cold_service(std::move(edited));
  for (size_t i = 0; i < requests.size(); ++i) {
    TPP_CHECK(warm[i].status.ok());
    if (i < kFarRequests) TPP_CHECK(warm[i].from_cache);
    service::PlanResponse reference = cold_service.RunOne(requests[i]);
    TPP_CHECK(reference.status.ok());
    TPP_CHECK(warm[i].plan_text == reference.plan_text);
  }

  CacheResult out;
  out.requests = requests.size();
  out.far_requests = kFarRequests;
  out.cache_rekeyed = summary->cache_rekeyed;
  out.invalidated_by_edit = summary->cache_invalidated;
  out.groups_repaired = summary->groups_repaired;
  out.groups_reset = summary->groups_reset;
  out.post_edit_cache_hits = warm_stats.cache_hits;
  out.post_edit_cache_hit_rate =
      static_cast<double>(warm_stats.cache_hits) /
      static_cast<double>(requests.size());
  TPP_CHECK(out.post_edit_cache_hits >= kFarRequests);
  TPP_CHECK(out.invalidated_by_edit > 0);
  return out;
}

void WriteJson(const std::string& path, bool quick,
               const std::vector<ChurnResult>& results,
               const CacheResult& cache, double min_speedup_at_1pct) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"graph_mutation\",\n");
  std::fprintf(f, "  \"fixture\": \"arenas_email_like\",\n");
  std::fprintf(f, "  \"num_targets\": %zu,\n", g_num_targets);
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ChurnResult& r = results[i];
    std::fprintf(f,
                 "    {\"motif\": \"%s\", \"churn_pct\": %.1f, "
                 "\"edits\": %zu, \"instances\": %zu, "
                 "\"repair_ms\": %.3f, \"rebuild_ms\": %.3f, "
                 "\"repair_speedup\": %.1f, "
                 "\"plan_byte_identical\": true}%s\n",
                 r.motif.c_str(), r.churn_pct, r.edits, r.instances,
                 r.repair_ms, r.rebuild_ms, r.repair_speedup,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"cache\": {\"requests\": %zu, \"far_requests\": %zu, "
               "\"cache_rekeyed\": %zu, \"invalidated_by_edit\": %zu, "
               "\"groups_repaired\": %zu, \"groups_reset\": %zu, "
               "\"post_edit_cache_hits\": %zu, "
               "\"post_edit_cache_hit_rate\": %.3f, "
               "\"survivor_plans_byte_identical\": true},\n",
               cache.requests, cache.far_requests, cache.cache_rekeyed,
               cache.invalidated_by_edit, cache.groups_repaired,
               cache.groups_reset, cache.post_edit_cache_hits,
               cache.post_edit_cache_hit_rate);
  std::fprintf(f, "  \"min_speedup_at_1pct\": %.1f\n}\n",
               min_speedup_at_1pct);
  std::fclose(f);
  std::printf("[json] %s\n", path.c_str());
}

int Run(int argc, char** argv) {
#if defined(__GLIBC__)
  // Both sides of the comparison allocate and free hundred-KB arrays
  // every rep; with default thresholds glibc serves those via mmap and
  // returns them on free, so each timed commit re-pays page faults on
  // fresh zero pages. Pin the thresholds so the heap retains and reuses
  // the pages — steady-state allocator behavior for a long-lived
  // service, applied identically to repair and rebuild.
  mallopt(M_MMAP_THRESHOLD, 1 << 30);
  mallopt(M_TRIM_THRESHOLD, 1 << 30);
#endif
  Result<ParsedArgs> args = ParsedArgs::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    return 2;
  }
  Status threads_status = ApplyThreadsFlag(*args);
  if (!threads_status.ok()) {
    std::fprintf(stderr, "error: %s\n", threads_status.ToString().c_str());
    return 2;
  }
  const bool quick = args->GetBool("quick");
  Result<int64_t> threads_flag = args->GetInt("threads", 1);
  const int build_threads =
      *threads_flag <= 0 ? 1 : static_cast<int>(*threads_flag);
  Result<int64_t> targets_flag =
      args->GetInt("targets", static_cast<int64_t>(g_num_targets));
  if (*targets_flag > 0) {
    g_num_targets = static_cast<size_t>(*targets_flag);
  }
  const std::string out_path =
      args->GetString("out", "BENCH_graph_mutation.json");

  std::printf("== graph mutation: in-place index repair vs cold rebuild, "
              "Arenas-email-like, |T|=%zu%s ==\n\n",
              g_num_targets, quick ? ", quick" : "");
  std::vector<ChurnResult> results;
  double min_speedup_at_1pct = 0;
  for (MotifKind kind : motif::kAllMotifs) {
    const TppInstance inst = MakeArenas(kind);
    const IndexedEngine prototype = *IndexedEngine::Create(inst);
    for (double churn : kChurnLevels) {
      ChurnResult result = RunChurnLevel(kind, inst, prototype, churn,
                                         quick, build_threads);
      std::printf("%-9s %4.1f%% churn (%5zu edits)  repair %9.3f ms  "
                  "rebuild %9.2f ms  speedup %7.1fx\n",
                  result.motif.c_str(), result.churn_pct, result.edits,
                  result.repair_ms, result.rebuild_ms,
                  result.repair_speedup);
      if (churn <= 1.0) {
        min_speedup_at_1pct =
            results.empty() || min_speedup_at_1pct == 0
                ? result.repair_speedup
                : std::min(min_speedup_at_1pct, result.repair_speedup);
      }
      results.push_back(std::move(result));
    }
  }

  CacheResult cache = RunCacheSurvival();
  std::printf("\ncache survival: %zu/%zu requests served from the rekeyed "
              "cache after the edit (%zu invalidated, %zu groups repaired "
              "in place, %zu reset), survivors byte-identical to a cold "
              "service over the edited graph\n",
              cache.post_edit_cache_hits, cache.requests,
              cache.invalidated_by_edit, cache.groups_repaired,
              cache.groups_reset);
  std::printf("minimum repair speedup at <=1%% churn: %.1fx, every rep "
              "plan-byte-identical to the cold rebuild\n",
              min_speedup_at_1pct);
  WriteJson(out_path, quick, results, cache, min_speedup_at_1pct);
  return 0;
}

}  // namespace
}  // namespace tpp::bench

int main(int argc, char** argv) { return tpp::bench::Run(argc, argv); }
