// Shared experiment harness for the paper-reproduction benchmarks.
//
// Every bench binary regenerates one table or figure of the paper
// (see DESIGN.md §5 for the index). This header provides the paper's
// method axis (SGB / CT:TBD / CT:DBD / WT:TBD / WT:DBD / RD / RDT) as an
// enum over the core solver registry (core/solver.h, which owns all
// dispatch), the engine selection (naive vs indexed, full vs restricted
// candidates), the similarity-evolution sweeps, and output helpers
// (aligned tables on stdout + CSV files under results/).

#ifndef TPP_BENCH_HARNESS_COMMON_H_
#define TPP_BENCH_HARNESS_COMMON_H_

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/tpp.h"

namespace tpp::bench {

/// The protector-selection methods compared throughout the evaluation.
enum class Method {
  kSgb = 0,   ///< SGB-Greedy (single global budget)
  kCtDbd,     ///< CT-Greedy with degree-product budget division
  kCtTbd,     ///< CT-Greedy with target-subgraph budget division
  kWtDbd,     ///< WT-Greedy with degree-product budget division
  kWtTbd,     ///< WT-Greedy with target-subgraph budget division
  kRd,        ///< random deletions
  kRdt,       ///< random deletions from target subgraphs
};

inline constexpr std::array<Method, 7> kAllMethods = {
    Method::kSgb,   Method::kCtDbd, Method::kCtTbd, Method::kWtDbd,
    Method::kWtTbd, Method::kRd,    Method::kRdt};

/// Greedy methods only (the utility-loss tables exclude RD/RDT).
inline constexpr std::array<Method, 5> kGreedyMethods = {
    Method::kSgb, Method::kCtDbd, Method::kCtTbd, Method::kWtDbd,
    Method::kWtTbd};

/// Registry key of the method's solver (core/solver.h), e.g. "ct-tbd".
std::string_view MethodSolverName(Method method);

/// Display name in the paper's notation, e.g. "CT-Greedy:TBD".
std::string_view MethodName(Method method);

/// How to run a method.
struct RunConfig {
  /// Restrict candidates to target-subgraph edges (the "-R" variants).
  bool restricted = true;
  /// Use the paper-faithful recount engine instead of the incidence index
  /// (only relevant for timing experiments; results are identical).
  bool naive_engine = false;
  /// Use CELF lazy evaluation for SGB (extension; results identical).
  bool lazy = false;
};

/// Builds the engine dictated by `config` for `instance`.
Result<std::unique_ptr<core::Engine>> MakeEngine(
    const core::TppInstance& instance, const RunConfig& config);

/// Runs `method` with total budget `k` (divided per target for CT/WT).
Result<core::ProtectionResult> RunMethod(const core::TppInstance& instance,
                                         Method method, size_t k,
                                         const RunConfig& config, Rng& rng);

/// Runs `method` until total similarity reaches zero, doubling the budget
/// as needed for the MLBT divisions (paper's "full protection"). Returns
/// the final run; `result.protectors.size()` is the realized k*.
Result<core::ProtectionResult> RunToFullProtection(
    const core::TppInstance& instance, Method method,
    const RunConfig& config, Rng& rng);

/// Mean similarity s(P_k, T) at each budget in `grid`, averaged over
/// `samples` independent target draws (as the paper averages >= 10 runs).
struct EvolutionCurve {
  std::vector<size_t> grid;        ///< the budgets evaluated
  std::vector<double> similarity;  ///< mean similarity at each budget
};

/// Computes the evolution curve for one method. For SGB/RD/RDT a single
/// maximal run yields the entire curve (greedy prefixes are consistent);
/// for CT/WT the budget division depends on k, so each grid point is run
/// separately, exactly as the paper defines the experiment.
Result<EvolutionCurve> SimilarityEvolution(const core::TppInstance& instance,
                                           Method method,
                                           const std::vector<size_t>& grid,
                                           const RunConfig& config, Rng& rng);

/// Environment knobs shared by the bench binaries.
size_t BenchSamples(size_t fallback);     ///< TPP_BENCH_SAMPLES
double BenchScale(double fallback);       ///< TPP_BENCH_SCALE (DBLP size)
std::string ResultsDir();                 ///< TPP_RESULTS_DIR (default results)

/// Builds an evenly spaced budget grid {0, ..., k_max} with at most
/// `max_points` points, always containing 0 and k_max.
std::vector<size_t> MakeBudgetGrid(size_t k_max, size_t max_points);

/// Writes a CSV (header + rows) to `<ResultsDir()>/<name>.csv`, logging a
/// warning to stderr on failure (benches never abort on I/O).
void WriteCsv(const std::string& name, const CsvWriter& csv);

/// Formats a double with `digits` decimals.
std::string Fmt(double value, int digits = 2);

}  // namespace tpp::bench

#endif  // TPP_BENCH_HARNESS_COMMON_H_
