#include "harness_common.h"

#include <cstdio>

#include "common/env.h"
#include "common/strings.h"

namespace tpp::bench {

using core::CandidateScope;
using core::Engine;
using core::GreedyOptions;
using core::IndexedEngine;
using core::NaiveEngine;
using core::ProtectionResult;
using core::TppInstance;

namespace {

// Registry keys aligned with the Method enum values; all dispatch and
// naming goes through core/solver.h.
constexpr std::array<std::string_view, 7> kMethodSolverNames = {
    "sgb", "ct-dbd", "ct-tbd", "wt-dbd", "wt-tbd", "rd", "rdt"};

}  // namespace

std::string_view MethodSolverName(Method method) {
  return kMethodSolverNames[static_cast<size_t>(method)];
}

std::string_view MethodName(Method method) {
  return core::FindSolver(MethodSolverName(method))->DisplayName();
}

Result<std::unique_ptr<Engine>> MakeEngine(const TppInstance& instance,
                                           const RunConfig& config) {
  if (config.naive_engine) {
    return std::unique_ptr<Engine>(new NaiveEngine(instance));
  }
  TPP_ASSIGN_OR_RETURN(IndexedEngine engine,
                       IndexedEngine::Create(instance));
  return std::unique_ptr<Engine>(new IndexedEngine(std::move(engine)));
}

Result<ProtectionResult> RunMethod(const TppInstance& instance,
                                   Method method, size_t k,
                                   const RunConfig& config, Rng& rng) {
  TPP_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                       MakeEngine(instance, config));
  core::SolverSpec spec;
  spec.algorithm = std::string(MethodSolverName(method));
  spec.scope = config.restricted ? CandidateScope::kTargetSubgraphEdges
                                 : CandidateScope::kAllEdges;
  spec.lazy = config.lazy;
  spec.budget = k;
  return core::RunSolver(spec, *engine, instance, rng);
}

Result<ProtectionResult> RunToFullProtection(const TppInstance& instance,
                                             Method method,
                                             const RunConfig& config,
                                             Rng& rng) {
  // s({},T) deletions always suffice for SGB/RDT (every pick breaks >= 1
  // instance); for the MLBT divisions a skewed division may strand budget
  // on the wrong targets, so double until protected.
  TPP_ASSIGN_OR_RETURN(std::unique_ptr<Engine> probe,
                       MakeEngine(instance, config));
  size_t k = probe->TotalSimilarity();
  if (k == 0) k = 1;
  for (int attempt = 0; attempt < 8; ++attempt) {
    Rng attempt_rng = rng.Fork();
    TPP_ASSIGN_OR_RETURN(ProtectionResult result,
                         RunMethod(instance, method, k, config,
                                   attempt_rng));
    if (result.final_similarity == 0) return result;
    k *= 2;
  }
  return Status::Internal(
      StrFormat("%s failed to reach full protection",
                std::string(MethodName(method)).c_str()));
}

Result<EvolutionCurve> SimilarityEvolution(const TppInstance& instance,
                                           Method method,
                                           const std::vector<size_t>& grid,
                                           const RunConfig& config,
                                           Rng& rng) {
  EvolutionCurve curve;
  curve.grid = grid;
  curve.similarity.assign(grid.size(), 0.0);
  if (grid.empty()) return curve;

  const bool prefix_consistent = method == Method::kSgb ||
                                 method == Method::kRd ||
                                 method == Method::kRdt;
  if (prefix_consistent) {
    // One maximal run; read the curve off the pick trace.
    size_t k_max = grid.back();
    TPP_ASSIGN_OR_RETURN(ProtectionResult result,
                         RunMethod(instance, method, k_max, config, rng));
    for (size_t gi = 0; gi < grid.size(); ++gi) {
      size_t k = grid[gi];
      if (k == 0) {
        curve.similarity[gi] = static_cast<double>(result.initial_similarity);
      } else if (k <= result.picks.size()) {
        curve.similarity[gi] =
            static_cast<double>(result.picks[k - 1].similarity_after);
      } else {
        curve.similarity[gi] = static_cast<double>(result.final_similarity);
      }
    }
    return curve;
  }
  // CT/WT: the division of k changes with k, so each point is a fresh run.
  for (size_t gi = 0; gi < grid.size(); ++gi) {
    Rng point_rng = rng.Fork();
    TPP_ASSIGN_OR_RETURN(ProtectionResult result,
                         RunMethod(instance, method, grid[gi], config,
                                   point_rng));
    curve.similarity[gi] = grid[gi] == 0
                               ? static_cast<double>(result.initial_similarity)
                               : static_cast<double>(result.final_similarity);
  }
  return curve;
}

size_t BenchSamples(size_t fallback) {
  int64_t v = EnvInt("TPP_BENCH_SAMPLES", static_cast<int64_t>(fallback));
  return v < 1 ? 1 : static_cast<size_t>(v);
}

double BenchScale(double fallback) {
  double v = EnvDouble("TPP_BENCH_SCALE", fallback);
  return (v <= 0.0 || v > 1.0) ? fallback : v;
}

std::string ResultsDir() { return EnvString("TPP_RESULTS_DIR", "results"); }

std::vector<size_t> MakeBudgetGrid(size_t k_max, size_t max_points) {
  std::vector<size_t> grid;
  if (max_points < 2 || k_max == 0) {
    grid.push_back(0);
    if (k_max > 0) grid.push_back(k_max);
    return grid;
  }
  size_t points = std::min(max_points, k_max + 1);
  for (size_t i = 0; i < points; ++i) {
    size_t k = (k_max * i) / (points - 1);
    if (grid.empty() || grid.back() != k) grid.push_back(k);
  }
  return grid;
}

void WriteCsv(const std::string& name, const CsvWriter& csv) {
  std::string path = ResultsDir() + "/" + name + ".csv";
  Status s = csv.WriteToFile(path);
  if (!s.ok()) {
    std::fprintf(stderr, "warning: could not write %s: %s\n", path.c_str(),
                 s.ToString().c_str());
  } else {
    std::printf("[csv] %s\n", path.c_str());
  }
}

std::string Fmt(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

}  // namespace tpp::bench
