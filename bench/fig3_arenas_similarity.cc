// Fig. 3 reproduction: evolution of the number of existing target
// subgraphs as a function of budget k on the Arenas-email(-like) graph,
// |T| = 20, for Triangle / Rectangle / RecTri and all seven methods.
//
// Paper shape to check (see EXPERIMENTS.md):
//   * s({},T) is largest for Rectangle (hardest motif to defend);
//   * SGB-Greedy gives the lowest curve at every k;
//   * CT beats WT slightly; TBD beats DBD;
//   * RD barely moves; RDT is competitive for Triangle only;
//   * k* (budget reaching similarity 0) is largest for Rectangle.

#include <cstdio>

#include "common/table.h"
#include "graph/datasets.h"
#include "harness_common.h"
#include "motif/enumerate.h"

namespace tpp::bench {
namespace {

constexpr size_t kNumTargets = 20;

int Run() {
  const size_t samples = BenchSamples(5);
  std::printf("== Fig. 3: similarity vs budget k, Arenas-email-like, "
              "|T|=%zu, %zu target samplings ==\n\n",
              kNumTargets, samples);
  RunConfig config;  // indexed engine, restricted scope: same output as
                     // the paper's base algorithms, fast enough for sweeps

  Result<graph::Graph> graph = graph::MakeArenasEmailLike(1);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph generation failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }

  for (motif::MotifKind kind : motif::kPaperMotifs) {
    // Determine k_max as the largest SGB k* across samples, so the grid
    // spans to full protection for every method.
    size_t k_max = 0;
    double s0_mean = 0.0;
    std::vector<core::TppInstance> instances;
    for (size_t s = 0; s < samples; ++s) {
      Rng rng(100 + s);
      auto targets = *core::SampleTargets(*graph, kNumTargets, rng);
      instances.push_back(*core::MakeInstance(*graph, targets, kind));
      Rng run_rng(200 + s);
      auto full = *RunToFullProtection(instances.back(), Method::kSgb,
                                       config, run_rng);
      k_max = std::max(k_max, full.protectors.size());
      s0_mean += static_cast<double>(full.initial_similarity);
    }
    s0_mean /= static_cast<double>(samples);
    std::vector<size_t> grid = MakeBudgetGrid(k_max, 13);

    // Mean curve per method.
    TextTable table;
    CsvWriter csv;
    std::vector<std::string> header = {"k"};
    for (Method m : kAllMethods) header.push_back(std::string(MethodName(m)));
    table.SetHeader(header);
    csv.SetHeader(header);

    std::vector<std::vector<double>> mean(kAllMethods.size(),
                                          std::vector<double>(grid.size()));
    for (size_t mi = 0; mi < kAllMethods.size(); ++mi) {
      for (size_t s = 0; s < samples; ++s) {
        Rng rng(300 + 31 * s + mi);
        auto curve = *SimilarityEvolution(instances[s], kAllMethods[mi],
                                          grid, config, rng);
        for (size_t gi = 0; gi < grid.size(); ++gi) {
          mean[mi][gi] += curve.similarity[gi] / samples;
        }
      }
    }
    for (size_t gi = 0; gi < grid.size(); ++gi) {
      std::vector<std::string> row = {std::to_string(grid[gi])};
      for (size_t mi = 0; mi < kAllMethods.size(); ++mi) {
        row.push_back(Fmt(mean[mi][gi], 1));
      }
      table.AddRow(row);
      csv.AddRow(row);
    }
    std::printf("-- %s pattern: mean s({},T) = %s, grid to k* = %zu --\n",
                std::string(motif::MotifName(kind)).c_str(),
                Fmt(s0_mean, 1).c_str(), k_max);
    std::printf("%s\n", table.ToString().c_str());
    WriteCsv("fig3_" + std::string(motif::MotifName(kind)), csv);
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace tpp::bench

int main() { return tpp::bench::Run(); }
