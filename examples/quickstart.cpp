// Quickstart: protect two sensitive links in a small social graph.
//
//   $ ./build/examples/quickstart
//
// Walks through the full TPP pipeline on a toy graph: build the graph,
// declare targets, run phase 1 (delete targets) + phase 2 (greedy
// protector selection), and inspect the result.

#include <cstdio>

#include "core/tpp.h"
#include "graph/fixtures.h"

using tpp::core::IndexedEngine;
using tpp::core::ProtectionResult;
using tpp::core::SgbGreedy;
using tpp::core::TppInstance;
using tpp::graph::Edge;
using tpp::graph::Graph;
using tpp::motif::MotifKind;

int main() {
  // Zachary's karate club as a stand-in for a small social community.
  Graph g = tpp::graph::MakeKarateClub();
  std::printf("original graph: %s\n", g.DebugString().c_str());

  // Two friendships the club members want kept secret.
  std::vector<Edge> targets = {Edge(0, 8), Edge(31, 32)};

  // Phase 1: the targets are removed from the release candidate.
  tpp::Result<TppInstance> instance =
      tpp::core::MakeInstance(g, targets, MotifKind::kTriangle);
  if (!instance.ok()) {
    std::fprintf(stderr, "MakeInstance: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }

  // How exposed are the hidden links? Each target triangle is a 2-path an
  // attacker can close.
  tpp::Result<IndexedEngine> engine = IndexedEngine::Create(*instance);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("after phase 1: s({},T) = %zu target triangles remain\n",
              engine->TotalSimilarity());

  // Phase 2: delete up to 6 protector links, greedily maximizing the
  // dissimilarity gain (1-1/e approximation of optimal). This calls the
  // algorithm directly to show the core API; production callers name a
  // solver through the registry instead (core/solver.h, `tpp solvers`).
  tpp::Result<ProtectionResult> result = SgbGreedy(*engine, /*budget=*/6);
  if (!result.ok()) {
    std::fprintf(stderr, "SgbGreedy: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("deleted %zu protectors:\n", result->protectors.size());
  for (size_t i = 0; i < result->protectors.size(); ++i) {
    const auto& pick = result->picks[i];
    std::printf("  #%zu: (%u,%u) broke %zu target subgraph(s); s(P,T) -> "
                "%zu\n",
                i + 1, result->protectors[i].u, result->protectors[i].v,
                pick.realized_gain, pick.similarity_after);
  }
  std::printf("final similarity: %zu (%s)\n", result->final_similarity,
              result->final_similarity == 0 ? "fully protected"
                                            : "partially protected");
  std::printf("released graph: %s (%zu of %zu links kept)\n",
              engine->CurrentGraph().DebugString().c_str(),
              engine->CurrentGraph().NumEdges(), g.NumEdges());
  return 0;
}
