// Target-node privacy (the paper's future-work item 2): a protected
// witness must hide the sensitive half of their contact list while the
// rest stays public. Shows why partial hiding leaks (public links
// complete triangles around hidden ones) and how TPP closes the leak.
//
//   $ ./build/examples/witness_protection

#include <cstdio>

#include "core/tpp.h"
#include "graph/datasets.h"

using tpp::Rng;
using tpp::core::IndexedEngine;
using tpp::core::NodeExposure;
using tpp::graph::Graph;
using tpp::graph::NodeId;
using tpp::motif::MotifKind;

int main() {
  Graph g = *tpp::graph::MakeArenasEmailLike(31);

  // The witness: a well-connected node.
  NodeId witness = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (g.Degree(v) > g.Degree(witness)) witness = v;
  }
  std::printf("witness: node %u with %zu contacts\n", witness,
              g.Degree(witness));

  // Half the contacts are sensitive (say, family), half stay public.
  std::vector<NodeId> contacts(g.Neighbors(witness).begin(),
                               g.Neighbors(witness).end());
  Rng rng(7);
  rng.Shuffle(contacts);
  std::vector<NodeId> sensitive(contacts.begin(),
                                contacts.begin() + contacts.size() / 2);
  std::printf("hiding %zu sensitive contacts, keeping %zu public\n\n",
              sensitive.size(), contacts.size() - sensitive.size());

  auto instance = *tpp::core::MakePartialNodeInstance(
      g, witness, sensitive, MotifKind::kTriangle);

  // Exposure after naive hiding (phase 1 only).
  NodeExposure naive = *tpp::core::MeasureNodeExposure(
      instance.released, instance.targets, MotifKind::kTriangle);
  std::printf("naive hiding: %zu of %zu hidden contacts still exposed via "
              "%zu triangles\n",
              naive.exposed_links, naive.hidden_links,
              naive.alive_subgraphs);

  // TPP phase 2, through the solver registry.
  tpp::core::SolverSpec spec;
  spec.algorithm = "full";
  Rng solver_rng(0);  // deterministic solver; never drawn from
  IndexedEngine engine = *IndexedEngine::Create(instance);
  auto result = *tpp::core::RunSolver(spec, engine, instance, solver_rng);
  NodeExposure protected_exposure = *tpp::core::MeasureNodeExposure(
      engine.CurrentGraph(), instance.targets, MotifKind::kTriangle);
  std::printf("after TPP (%zu protector deletions): %zu exposed, "
              "protected fraction %.0f%%\n",
              result.protectors.size(), protected_exposure.exposed_links,
              100.0 * protected_exposure.protected_fraction());

  // Contrast: hiding the ENTIRE contact list needs no protectors at all
  // under motif-based attacks (every motif instance would use another of
  // the witness's own links) — the cost is that the witness's public
  // presence disappears.
  auto full = *tpp::core::MakeNodeInstance(g, witness, MotifKind::kTriangle);
  IndexedEngine full_engine = *IndexedEngine::Create(full);
  std::printf("\nfull isolation alternative: motif attack surface = %zu "
              "(trivially safe,\nbut deletes all %zu links and the "
              "witness's public profile with them)\n",
              full_engine.TotalSimilarity(), g.Degree(witness));
  return 0;
}
