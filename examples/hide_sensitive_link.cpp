// The paper's motivating scenario: a patient wants the link to a cancer
// doctor kept secret. Merely deleting the link is not enough — attackers
// infer it from the structure around it. This example mounts the actual
// attack (all nine similarity indices) before and after TPP protection.
//
//   $ ./build/examples/hide_sensitive_link

#include <cstdio>

#include "common/strings.h"
#include "common/table.h"
#include "core/tpp.h"
#include "graph/datasets.h"
#include "linkpred/attack.h"

using tpp::Rng;
using tpp::core::IndexedEngine;
using tpp::core::TppInstance;
using tpp::graph::Edge;
using tpp::graph::Graph;
using tpp::motif::MotifKind;

int main() {
  // A realistic social graph (Arenas-email-like synthetic community).
  Graph g = *tpp::graph::MakeArenasEmailLike(2024);
  std::printf("community graph: %s\n\n", g.DebugString().c_str());

  // The sensitive link: pick a well-embedded edge (many common contacts) —
  // the hardest case to hide, like a patient and doctor sharing clinic
  // staff, receptionists and mutual acquaintances.
  Edge sensitive(0, 0);
  size_t best_cn = 0;
  for (const Edge& e : g.Edges()) {
    size_t cn = g.CountCommonNeighbors(e.u, e.v);
    if (cn > best_cn) {
      best_cn = cn;
      sensitive = e;
    }
  }
  std::printf("sensitive link: (%u,%u) with %zu common contacts\n",
              sensitive.u, sensitive.v, best_cn);

  TppInstance instance =
      *tpp::core::MakeInstance(g, {sensitive}, MotifKind::kTriangle);

  // Attack the naive release (link deleted, nothing else done).
  Rng attack_rng(1);
  auto before = *tpp::linkpred::EvaluateAllAttacks(instance.released,
                                                   {sensitive}, attack_rng);

  // TPP phase 2: fully protect the link, via the solver registry ("full"
  // runs SGB-Greedy until no target subgraph survives).
  IndexedEngine engine = *IndexedEngine::Create(instance);
  tpp::core::SolverSpec spec;
  spec.algorithm = "full";
  Rng rng(0);  // deterministic solver; never drawn from
  auto result = *tpp::core::RunSolver(spec, engine, instance, rng);
  std::printf("TPP deleted %zu protector links (of %zu total) to reach "
              "full protection\n\n",
              result.protectors.size(), g.NumEdges());

  Rng attack_rng2(1);
  auto after = *tpp::linkpred::EvaluateAllAttacks(engine.CurrentGraph(),
                                                  {sensitive}, attack_rng2);

  tpp::TextTable table;
  table.SetHeader({"attacker index", "score before", "score after",
                   "AUC before", "AUC after"});
  for (size_t i = 0; i < before.size(); ++i) {
    table.AddRow({std::string(tpp::linkpred::IndexName(before[i].index)),
                  tpp::StrFormat("%.4f", before[i].target_scores[0]),
                  tpp::StrFormat("%.4f", after[i].target_scores[0]),
                  tpp::StrFormat("%.3f", before[i].auc),
                  tpp::StrFormat("%.3f", after[i].auc)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("after protection, every index scores the hidden link 0: an "
              "attacker sees\nno structural evidence the patient and doctor "
              "ever met.\n");
  return 0;
}
