// A graph-release pipeline, end to end: load an edge list from disk,
// protect a target set, audit the release (attack + utility), and write
// the releasable edge list back to disk — what a data-publishing team
// would actually run before sharing a social graph.
//
//   $ ./build/examples/release_pipeline [input.edges]
//
// Without an argument, a demo graph is synthesized and saved first.

#include <cstdio>
#include <string>

#include "core/tpp.h"
#include "graph/datasets.h"
#include "graph/io.h"
#include "graph/relabel.h"
#include "linkpred/attack.h"
#include "metrics/utility.h"
#include "service/plan_service.h"

using tpp::Rng;
using tpp::Status;
using tpp::graph::Graph;

int main(int argc, char** argv) {
  std::string input = argc > 1 ? argv[1] : "";
  if (input.empty()) {
    input = "demo_social_graph.edges";
    Graph demo = *tpp::graph::MakeArenasEmailLike(7);
    Status s = tpp::graph::SaveEdgeList(demo, input);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot write demo graph: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("[1/5] synthesized demo graph -> %s\n", input.c_str());
  }

  tpp::Result<Graph> loaded = tpp::graph::LoadEdgeList(input);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", input.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  Graph g = std::move(*loaded);
  std::printf("[2/5] loaded %s: %s\n", input.c_str(),
              g.DebugString().c_str());

  // The data owner's sensitive links: sampled here; in production this
  // comes from user privacy settings. The whole protection step is one
  // request to the plan service — the same path `tpp batch` uses to serve
  // many target sets concurrently.
  tpp::service::PlanService plan_service(g);
  tpp::service::PlanRequest request;
  request.sample = 15;
  request.seed = 20240610;
  request.spec.algorithm = "full";
  // The audit below inspects the released graph, so ask the service to
  // carry it in the response (off by default to keep batches lean).
  request.want_released = true;
  tpp::service::PlanResponse response = plan_service.RunOne(request);
  if (!response.status.ok()) {
    std::fprintf(stderr, "protection failed: %s\n",
                 response.status.ToString().c_str());
    return 1;
  }
  std::printf("[3/5] %zu sensitive links; exposure s({},T) = %zu\n",
              response.targets.size(),
              response.result.initial_similarity);
  std::printf("[4/5] full protection with %zu protector deletions "
              "(%.2f%% of links)\n",
              response.result.protectors.size(),
              100.0 * response.result.protectors.size() / g.NumEdges());

  // Release audit: strongest attacker score and utility loss.
  Rng attack_rng(1);
  auto attacks = *tpp::linkpred::EvaluateAllAttacks(
      response.released, response.targets, attack_rng);
  double worst_auc = 0;
  for (const auto& report : attacks) worst_auc = std::max(worst_auc,
                                                          report.auc);
  tpp::metrics::UtilityOptions uopts;
  uopts.apl_sample_sources = 100;
  uopts.mu = false;
  auto before = tpp::metrics::ComputeUtilityMetrics(g, uopts);
  auto after = tpp::metrics::ComputeUtilityMetrics(response.released, uopts);
  auto loss = tpp::metrics::UtilityLossRatio(before, after);

  // A real release also permutes node ids so released ids carry no
  // meaning; the secret mapping stays with the owner.
  Rng relabel_rng = tpp::service::RequestRng(request.seed + 1);
  tpp::graph::RelabeledGraph relabeled =
      tpp::graph::RandomRelabel(response.released, relabel_rng);

  std::string output = input + ".released";
  Status s = tpp::graph::SaveEdgeList(relabeled.graph, output);
  if (!s.ok()) {
    std::fprintf(stderr, "cannot write release: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("[5/5] audit: worst attacker AUC %.3f (chance=0.5), average "
              "utility loss %.2f%%\n",
              worst_auc, 100.0 * loss.average);
  std::printf("      released graph (ids permuted) written to %s\n",
              output.c_str());
  return 0;
}
