// VIP protection with per-target budgets: a graph owner must protect the
// relationships of several high-profile users, each with its own budget
// share (MLBT problem). Compares the CT/WT selections under TBD and DBD
// budget divisions against the single-global-budget SGB, and reports the
// utility cost of each choice.
//
//   $ ./build/examples/vip_protection

#include <cstdio>

#include "common/strings.h"
#include "common/table.h"
#include "core/tpp.h"
#include "graph/datasets.h"
#include "metrics/utility.h"

using tpp::Rng;
using tpp::core::IndexedEngine;
using tpp::core::ProtectionResult;
using tpp::core::TppInstance;
using tpp::graph::Edge;
using tpp::graph::Graph;
using tpp::motif::MotifKind;

namespace {

// Deletes targets+protectors from a copy of the original and measures the
// utility loss.
double UtilityLossOf(const Graph& original, const TppInstance& instance,
                     const ProtectionResult& result) {
  Graph released = instance.released;
  released.RemoveEdges(result.protectors);
  tpp::metrics::UtilityOptions opts;
  opts.apl_sample_sources = 100;  // sampled APL is plenty for a demo
  opts.mu = false;
  tpp::metrics::UtilityMetrics before =
      tpp::metrics::ComputeUtilityMetrics(original, opts);
  tpp::metrics::UtilityMetrics after =
      tpp::metrics::ComputeUtilityMetrics(released, opts);
  return tpp::metrics::UtilityLossRatio(before, after).average;
}

}  // namespace

int main() {
  Graph g = *tpp::graph::MakeArenasEmailLike(99);
  std::printf("social graph: %s\n", g.DebugString().c_str());

  // The "VIPs": endpoints of the 12 highest-degree-product links. These
  // are the visible, high-attention relationships that need protection.
  std::vector<Edge> edges = g.Edges();
  std::sort(edges.begin(), edges.end(), [&](const Edge& a, const Edge& b) {
    return g.Degree(a.u) * g.Degree(a.v) > g.Degree(b.u) * g.Degree(b.v);
  });
  std::vector<Edge> targets(edges.begin(), edges.begin() + 12);
  std::printf("protecting %zu VIP relationships (RecTri attack model)\n\n",
              targets.size());

  TppInstance instance =
      *tpp::core::MakeInstance(g, targets, MotifKind::kRecTri);

  IndexedEngine probe = *IndexedEngine::Create(instance);
  std::printf("initial exposure s({},T) = %zu target subgraphs\n",
              probe.TotalSimilarity());
  const size_t budget = probe.TotalSimilarity() / 10;

  // The solver registry (core/solver.h) owns all algorithm dispatch: name
  // a solver, get a run. Per-target budget division happens inside the
  // CT/WT solvers.
  struct Row {
    std::string name;
    ProtectionResult result;
  };
  std::vector<Row> rows;
  tpp::Rng rng(0);  // untouched: all five solvers are deterministic
  for (const char* algorithm :
       {"sgb", "ct-tbd", "ct-dbd", "wt-tbd", "wt-dbd"}) {
    tpp::core::SolverSpec spec;
    spec.algorithm = algorithm;
    spec.budget = budget;
    IndexedEngine e = *IndexedEngine::Create(instance);
    rows.push_back(
        {std::string(tpp::core::FindSolver(algorithm)->DisplayName()),
         *tpp::core::RunSolver(spec, e, instance, rng)});
  }

  tpp::TextTable table;
  table.SetHeader({"method", "deleted", "exposure left", "protected",
                   "avg utility loss"});
  for (const Row& row : rows) {
    double loss = UtilityLossOf(g, instance, row.result);
    table.AddRow({row.name, std::to_string(row.result.protectors.size()),
                  std::to_string(row.result.final_similarity),
                  tpp::StrFormat("%.0f%%",
                                 100.0 *
                                     static_cast<double>(
                                         row.result.TotalGain()) /
                                     row.result.initial_similarity),
                  tpp::StrFormat("%.2f%%", 100.0 * loss)});
  }
  std::printf("\nbudget k = %zu links:\n%s\n", budget,
              table.ToString().c_str());
  std::printf("The global budget (SGB) and cross-target picking (CT) "
              "stretch the budget\nfurthest; within-target picking (WT) "
              "strands budget on already-protected VIPs,\nand DBD "
              "over-funds high-degree VIPs relative to their actual "
              "exposure.\n");
  return 0;
}
