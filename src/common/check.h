// TPP_CHECK: fatal invariant checks, enabled in all build types.
//
// Use for programmer errors that must never occur (broken invariants,
// out-of-contract calls on hot internal paths). Recoverable conditions go
// through Status instead.

#ifndef TPP_COMMON_CHECK_H_
#define TPP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace tpp::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "TPP_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace tpp::internal

/// Aborts the process with a diagnostic when `cond` is false.
#define TPP_CHECK(cond)                                          \
  do {                                                           \
    if (!(cond)) {                                               \
      ::tpp::internal::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                            \
  } while (false)

/// Convenience comparisons; evaluate operands once.
#define TPP_CHECK_EQ(a, b) TPP_CHECK((a) == (b))
#define TPP_CHECK_NE(a, b) TPP_CHECK((a) != (b))
#define TPP_CHECK_LT(a, b) TPP_CHECK((a) < (b))
#define TPP_CHECK_LE(a, b) TPP_CHECK((a) <= (b))
#define TPP_CHECK_GT(a, b) TPP_CHECK((a) > (b))
#define TPP_CHECK_GE(a, b) TPP_CHECK((a) >= (b))

#endif  // TPP_COMMON_CHECK_H_
