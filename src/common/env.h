// Environment-variable knobs used by the benchmark harnesses.

#ifndef TPP_COMMON_ENV_H_
#define TPP_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace tpp {

/// Reads an integer environment variable; returns `fallback` when unset or
/// unparsable.
int64_t EnvInt(const char* name, int64_t fallback);

/// Reads a double environment variable; returns `fallback` when unset or
/// unparsable.
double EnvDouble(const char* name, double fallback);

/// Reads a string environment variable; returns `fallback` when unset.
std::string EnvString(const char* name, const std::string& fallback);

}  // namespace tpp

#endif  // TPP_COMMON_ENV_H_
