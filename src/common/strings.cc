#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace tpp {

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                          s[b] == '\n' || s[b] == '\f' || s[b] == '\v')) {
    ++b;
  }
  size_t e = s.size();
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n' || s[e - 1] == '\f' || s[e - 1] == '\v')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::vector<std::string_view> SplitNonEmpty(std::string_view s,
                                            std::string_view delims) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty integer literal");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty double literal");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: " + buf);
  }
  return v;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace tpp
