// Status: lightweight error propagation without exceptions.
//
// Follows the RocksDB / Google idiom: every fallible operation returns a
// Status (or a Result<T>, see result.h) and callers are expected to check it.
// Library code never throws across the public API boundary.

#ifndef TPP_COMMON_STATUS_H_
#define TPP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tpp {

/// Canonical error categories, a deliberately small subset of the
/// absl/gRPC canonical codes that matter for an analytics library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIoError = 8,
  kDeadlineExceeded = 9,
  kUnavailable = 10,
  kAborted = 11,
};

/// True for codes that describe a transient condition worth retrying.
/// Retry loops key off this alone: kUnavailable means "the same call may
/// succeed if repeated" (EINTR, short write, injected transient fault),
/// while every other error code is either permanent (kIoError, kInternal)
/// or a caller decision (kDeadlineExceeded, kAborted).
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

/// Returns a stable human-readable name for a status code, e.g.
/// "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

/// Value-type carrying either success (`Ok`) or an error code plus message.
///
/// Cheap to move; the OK state allocates nothing. Statuses are annotated
/// [[nodiscard]] so silently dropping an error is a compile-time warning.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. An empty message
  /// is allowed; a code of kOk with a message is normalized to plain OK.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    if (code_ == StatusCode::kOk) message_.clear();
  }

  /// Factory helpers, mirroring the canonical codes.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders "Ok" or "<CodeName>: <message>" for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace tpp

/// Propagates a non-OK Status to the caller. Usage:
///   TPP_RETURN_IF_ERROR(DoThing());
#define TPP_RETURN_IF_ERROR(expr)                         \
  do {                                                    \
    ::tpp::Status tpp_status_tmp_ = (expr);               \
    if (!tpp_status_tmp_.ok()) return tpp_status_tmp_;    \
  } while (false)

#endif  // TPP_COMMON_STATUS_H_
