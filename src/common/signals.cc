#include "common/signals.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#define TPP_SIGNALS_POSIX 1
#include <csignal>
#include <fcntl.h>
#include <unistd.h>
#endif

namespace tpp::signals {

namespace {

std::atomic<uint64_t> g_signal_count{0};
// Write end used by the handler; -1 until installed. Plain int is fine:
// it is written once under the install mutex before any handler can run.
int g_pipe_read = -1;
int g_pipe_write = -1;
std::once_flag g_install_once;
Status g_install_status = Status::Ok();

#if TPP_SIGNALS_POSIX
// Async-signal-safe: one atomic bump and one write(2). A full pipe is
// fine to drop — the reader is already far behind on shutdown requests.
void OnShutdownSignal(int) {
  const int saved_errno = errno;
  g_signal_count.fetch_add(1, std::memory_order_relaxed);
  const char byte = 's';
  ssize_t ignored = ::write(g_pipe_write, &byte, 1);
  (void)ignored;
  errno = saved_errno;
}
#endif

void InstallOnce() {
#if TPP_SIGNALS_POSIX
  int fds[2];
  if (::pipe(fds) != 0) {
    g_install_status = Status::IoError(
        std::string("cannot create signal pipe: ") + std::strerror(errno));
    return;
  }
  // Non-blocking write end so a handler storm never wedges the handler;
  // close-on-exec both ends so children do not inherit the plumbing.
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
  g_pipe_read = fds[0];
  g_pipe_write = fds[1];

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnShutdownSignal;
  ::sigemptyset(&action.sa_mask);
  // No SA_RESTART: the whole point is to interrupt blocking I/O so the
  // EINTR-safe wrappers loop and the poll loop notices the pipe.
  if (::sigaction(SIGTERM, &action, nullptr) != 0 ||
      ::sigaction(SIGINT, &action, nullptr) != 0) {
    // A partial install is possible (SIGTERM landed, SIGINT failed):
    // restore the default before tearing down the pipe so no installed
    // handler can write to a closed fd, then undo the pipe entirely —
    // a failed install must not leak fds or leave the globals armed.
    std::signal(SIGTERM, SIG_DFL);
    ::close(fds[0]);
    ::close(fds[1]);
    g_pipe_read = -1;
    g_pipe_write = -1;
    g_install_status = Status::IoError("cannot install signal handlers");
    return;
  }
  ::signal(SIGPIPE, SIG_IGN);
#else
  g_install_status = Status::Unimplemented("signal pipe requires POSIX");
#endif
}

}  // namespace

Result<int> InstallShutdownPipe() {
  std::call_once(g_install_once, InstallOnce);
  if (!g_install_status.ok()) return g_install_status;
  return g_pipe_read;
}

uint64_t ShutdownSignalCount() {
  return g_signal_count.load(std::memory_order_relaxed);
}

void InjectShutdownSignalForTest() {
#if TPP_SIGNALS_POSIX
  if (g_pipe_write >= 0) {
    g_signal_count.fetch_add(1, std::memory_order_relaxed);
    const char byte = 's';
    ssize_t ignored = ::write(g_pipe_write, &byte, 1);
    (void)ignored;
  }
#endif
}

}  // namespace tpp::signals
