// TextTable / CsvWriter: aligned console tables and CSV files for the
// benchmark harnesses that regenerate the paper's tables and figures.

#ifndef TPP_COMMON_TABLE_H_
#define TPP_COMMON_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace tpp {

/// Builds a column-aligned plain-text table, the format the bench binaries
/// print so their output reads like the paper's tables.
class TextTable {
 public:
  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row. Rows may have fewer cells than the header.
  void AddRow(std::vector<std::string> row);

  /// Renders with two-space column separation and a rule under the header.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Accumulates rows and writes RFC-4180-ish CSV (quotes fields containing
/// commas, quotes or newlines). Used to dump machine-readable results next
/// to the human-readable tables.
class CsvWriter {
 public:
  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);

  /// Serializes all rows to a CSV string.
  std::string ToString() const;

  /// Writes the CSV to `path`, creating parent directories if needed.
  Status WriteToFile(const std::string& path) const;

 private:
  static std::string EscapeField(const std::string& field);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tpp

#endif  // TPP_COMMON_TABLE_H_
