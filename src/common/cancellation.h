// Cooperative cancellation: a deadline clock plus an explicit cancel
// flag, polled at work-loop boundaries.
//
// A CancellationToken is shared by address: the issuer keeps the token
// alive and hands `const CancellationToken*` down through options
// structs; workers poll it at natural checkpoints (solver round
// boundaries, pipeline stage boundaries). A null pointer means "never
// canceled" and costs one branch, so unconditionally threading the
// pointer through hot paths is free when no deadline is armed.
//
// Polling is read-only and touches no shared mutable state beyond one
// relaxed atomic load, so adding a poll to a loop cannot perturb the
// loop's output: a run that finishes inside its deadline is bit-identical
// to a run with no deadline at all.
//
// Cancel() may race with polls from any number of threads; the token is
// internally synchronized. Tokens are neither copyable nor movable —
// their address is their identity.

#ifndef TPP_COMMON_CANCELLATION_H_
#define TPP_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace tpp {

/// Deadline clock + explicit cancel flag. Default-constructed tokens are
/// unarmed (no deadline, not canceled) and every poll on them is a cheap
/// early-out; tokens become observable either by carrying a deadline or
/// by a Cancel() call.
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unarmed token: never expires until Cancel() is called.
  CancellationToken() = default;

  /// Token that expires at `deadline`.
  explicit CancellationToken(Clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Token that expires `millis` from now. `millis <= 0` arms an
  /// already-expired deadline (every poll fails immediately).
  static CancellationToken AfterMillis(int64_t millis) {
    return CancellationToken(Clock::now() +
                             std::chrono::milliseconds(millis));
  }

  /// Chains this token under `parent`: this token reports expiry when
  /// the parent does (batch-level deadlines propagate into per-request
  /// tokens this way). The parent must outlive this token.
  void set_parent(const CancellationToken* parent) { parent_ = parent; }

  /// Tightens the deadline to `deadline` if it is earlier than the
  /// current one (or if none is set). Call before sharing the token.
  void TightenDeadline(Clock::time_point deadline) {
    if (!has_deadline_ || deadline < deadline_) {
      has_deadline_ = true;
      deadline_ = deadline;
    }
  }

  /// Requests cancellation. Safe from any thread, idempotent.
  void Cancel() { canceled_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() was called on this token (not the parent chain).
  bool canceled() const {
    return canceled_.load(std::memory_order_relaxed);
  }

  /// True if this token carries its own deadline.
  bool has_deadline() const { return has_deadline_; }

  /// The armed deadline; meaningless unless has_deadline().
  Clock::time_point deadline() const { return deadline_; }

  /// Cheap poll: canceled, past the deadline, or expired up the parent
  /// chain. One relaxed load on the unarmed fast path.
  bool Expired() const {
    if (canceled_.load(std::memory_order_relaxed)) return true;
    if (has_deadline_ && Clock::now() >= deadline_) return true;
    return parent_ != nullptr && parent_->Expired();
  }

  /// Poll returning a Status: Ok while live, kAborted after Cancel(),
  /// kDeadlineExceeded past the deadline. `site` names the checkpoint
  /// in the error message ("solver round", "pipeline:solve", ...).
  Status Check(std::string_view site) const;

 private:
  std::atomic<bool> canceled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  const CancellationToken* parent_ = nullptr;
};

/// Null-safe poll: Ok when `token` is null, else token->Check(site).
/// The form work loops use so unarmed callers pay one pointer test.
inline Status PollCancellation(const CancellationToken* token,
                               std::string_view site) {
  if (token == nullptr) return Status::Ok();
  return token->Check(site);
}

}  // namespace tpp

#endif  // TPP_COMMON_CANCELLATION_H_
