#include "common/flags.h"

#include <atomic>
#include <thread>

#include "common/env.h"
#include "common/strings.h"

namespace tpp {

Result<ParsedArgs> ParsedArgs::Parse(int argc, const char* const* argv) {
  ParsedArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      args.positional_.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    std::string key, value;
    size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      key = std::string(body.substr(0, eq));
      value = std::string(body.substr(eq + 1));
    } else {
      key = std::string(body);
      // "--key value" form: consume the next token if it is not a flag.
      if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";  // boolean flag
      }
    }
    if (key.empty()) {
      return Status::InvalidArgument("empty flag name in " +
                                     std::string(arg));
    }
    if (!args.flags_.emplace(key, value).second) {
      return Status::InvalidArgument("duplicate flag --" + key);
    }
  }
  return args;
}

std::string ParsedArgs::GetString(const std::string& key,
                                  const std::string& fallback) const {
  read_[key] = true;
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

Result<int64_t> ParsedArgs::GetInt(const std::string& key,
                                   int64_t fallback) const {
  read_[key] = true;
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  TPP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(it->second));
  return v;
}

Result<double> ParsedArgs::GetDouble(const std::string& key,
                                     double fallback) const {
  read_[key] = true;
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  TPP_ASSIGN_OR_RETURN(double v, ParseDouble(it->second));
  return v;
}

bool ParsedArgs::GetBool(const std::string& key, bool fallback) const {
  read_[key] = true;
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1";
}

namespace {

// 0 = auto (TPP_THREADS env var, then hardware concurrency).
std::atomic<int> g_thread_count{0};

}  // namespace

int GlobalThreadCount() {
  int explicit_count = g_thread_count.load(std::memory_order_relaxed);
  if (explicit_count > 0) return explicit_count;
  int64_t env = EnvInt("TPP_THREADS", 0);
  if (env > 0) return static_cast<int>(env);
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void SetGlobalThreadCount(int threads) {
  g_thread_count.store(threads > 0 ? threads : 0,
                       std::memory_order_relaxed);
}

Status ApplyThreadsFlag(const ParsedArgs& args) {
  if (!args.Has("threads")) return Status::Ok();
  TPP_ASSIGN_OR_RETURN(int64_t threads, args.GetInt("threads", 0));
  SetGlobalThreadCount(static_cast<int>(threads));
  return Status::Ok();
}

std::vector<std::string> ParsedArgs::UnreadFlags() const {
  std::vector<std::string> unread;
  for (const auto& [key, value] : flags_) {
    auto it = read_.find(key);
    if (it == read_.end() || !it->second) unread.push_back(key);
  }
  return unread;
}

}  // namespace tpp
