// Deterministic I/O fault injection, compiled in always.
//
// A process-wide registry maps injection *sites* (short dotted names like
// "store.append" or "blob.write", named at each instrumented call) to
// armed *profiles*: fire probabilistically (p=), on exactly the Nth call
// (n=), or on every Kth call (every=), producing a transient error, a
// permanent error, or a torn write that lets only a byte prefix through.
// Profiles are armed programmatically (tests) or from the TPP_FAULTS /
// TPP_FAULTS_SEED environment variables (CI), and every decision derives
// from the armed seed plus a per-profile call counter — the same seed
// over the same call sequence injects the same faults, so sanitizer runs
// and bit-identity checks are reproducible.
//
// Unarmed cost: one relaxed atomic load per instrumented call (the
// common case in production builds — there is no compile-time switch to
// get wrong). Instrumented code writes:
//
//   if (fault::FaultDecision f = fault::Hit("store.append", size); f.fire)
//     return f.ToStatus("store.append");
//
// Profile spec grammar (';'-separated profiles, ':'-separated terms):
//
//   spec    := profile (';' profile)*
//   profile := site (':' term)*
//   site    := dotted name, optionally ending in '*' ("store.*", "*")
//   term    := 'p=' PROB       fire with probability PROB per call
//            | 'n=' N          fire on exactly the Nth call (1-based)
//            | 'every=' K      fire on every Kth call
//            | 'transient'     fired calls fail kUnavailable (default)
//            | 'permanent'     fired calls fail kIoError
//            | 'torn'          tear at a seed-derived byte offset
//            | 'torn=' BYTES   tear after exactly BYTES bytes
//
// Example: TPP_FAULTS='store.*:p=0.05:transient' arms 5% transient
// failures on every warm-store I/O site. The first profile whose site
// pattern matches wins; later profiles for the same site never fire.

#ifndef TPP_COMMON_FAULT_INJECTION_H_
#define TPP_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tpp::fault {

/// Failure mode of a fired fault.
enum class FaultKind {
  kTransient,  ///< maps to kUnavailable: a retry may succeed
  kPermanent,  ///< maps to kIoError: retrying is pointless
  kTorn,       ///< crash mid-write: a byte prefix lands, then kUnavailable
};

/// The verdict for one instrumented call.
struct FaultDecision {
  bool fire = false;
  FaultKind kind = FaultKind::kTransient;
  /// For kTorn only: how many payload bytes to let through before dying.
  uint64_t torn_bytes = 0;

  /// The Status a fired decision stands for (never called when !fire).
  Status ToStatus(std::string_view site) const;
};

/// One armed site profile (parsed form of the spec grammar above).
struct FaultProfile {
  std::string site_pattern;  ///< exact name, or prefix ending in '*'
  double probability = 0.0;  ///< p= term; 0 disables the probabilistic path
  uint64_t nth = 0;          ///< n= term; fires on exactly this call
  uint64_t every = 0;        ///< every= term; fires on every Kth call
  FaultKind kind = FaultKind::kTransient;
  bool torn_explicit = false;  ///< torn=BYTES vs seed-derived tear point
  uint64_t torn_bytes = 0;

  /// Calls matched so far (the 1-based counter n=/every= index into).
  std::atomic<uint64_t> calls{0};
  /// Calls that fired.
  std::atomic<uint64_t> fired{0};
};

/// The process-wide injection registry. All methods are thread-safe.
class FaultInjector {
 public:
  /// The global instance. First use arms from the TPP_FAULTS and
  /// TPP_FAULTS_SEED environment variables when they are set.
  static FaultInjector& Global();

  /// Replaces the armed profile set with the parsed `spec` (see grammar
  /// above). An empty spec disarms. Counters reset.
  Status Arm(std::string_view spec, uint64_t seed);

  /// Drops every profile; all subsequent calls take the unarmed path.
  void Disarm();

  /// True when at least one profile is armed (relaxed load — the only
  /// cost an uninjected process pays per instrumented call).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Decides whether the current call at `site` fires. `size` bounds the
  /// tear point of torn profiles (reduced into [0, size]). Matches the
  /// first armed profile whose pattern covers `site`.
  FaultDecision Decide(std::string_view site, uint64_t size);

  /// Total fired decisions since the last Arm().
  uint64_t injected() const { return injected_.load(std::memory_order_relaxed); }

  /// Total instrumented calls that matched an armed profile.
  uint64_t matched() const { return matched_.load(std::memory_order_relaxed); }

 private:
  FaultInjector();

  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> injected_{0};
  std::atomic<uint64_t> matched_{0};
  uint64_t seed_ = 0;
  // The profile set is immutable once armed: Arm/Disarm swap the whole
  // vector under mu_, Decide copies the shared_ptr under mu_ then works
  // on the profiles' atomic counters without the lock. Armed runs are
  // test/CI scenarios, so a brief lock on the I/O path is acceptable.
  mutable std::mutex mu_;
  std::shared_ptr<const std::vector<std::unique_ptr<FaultProfile>>> profiles_;
};

/// The instrumented-call entry point: an unfired decision unless the
/// global injector is armed and a profile matches and fires.
inline FaultDecision Hit(std::string_view site, uint64_t size = 0) {
  FaultInjector& g = FaultInjector::Global();
  if (!g.armed()) return {};
  return g.Decide(site, size);
}

}  // namespace tpp::fault

#endif  // TPP_COMMON_FAULT_INJECTION_H_
