// Blob I/O: mmap'd read-only file views, atomic whole-file writes, and
// the byte checksum the on-disk store formats share.
//
// These are the platform-facing primitives of the warm-start store
// (service/store/): snapshot files are written atomically (tmp + fsync +
// rename, so a crash never leaves a half-written file under the final
// name) and read back through a shared mapping whose bytes the
// IncidenceIndex snapshot codec adopts in place (common/flat_array.h).
// On platforms without mmap the mapping degrades to one aligned heap
// read of the whole file — same interface, one extra copy.

#ifndef TPP_COMMON_BLOB_IO_H_
#define TPP_COMMON_BLOB_IO_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"

namespace tpp {

/// A read-only view of a whole file, mmap'd where the platform supports
/// it (POSIX) and heap-loaded otherwise. Shared-ptr owned so array views
/// adopted out of the mapping keep it alive past the loading scope.
class MappedBlob {
 public:
  /// Maps (or reads) `path`. IoError when the file cannot be opened,
  /// stat'd, or read. An empty file maps to a valid zero-size blob.
  static Result<std::shared_ptr<const MappedBlob>> Open(
      const std::string& path);

  ~MappedBlob();
  MappedBlob(const MappedBlob&) = delete;
  MappedBlob& operator=(const MappedBlob&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  /// True when the bytes are a live mmap rather than a heap copy.
  bool mapped() const { return mapped_; }

 private:
  MappedBlob() = default;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::unique_ptr<uint8_t[]> heap_;  // fallback ownership when !mapped_
};

/// Writes `bytes` to `path` atomically: the data lands in a same-directory
/// temp file first, is fsync'd, and is renamed over the final name (the
/// directory is fsync'd too). Readers therefore see either the previous
/// complete file or the new complete file, never a torn write. IoError on
/// any failure; the temp file is cleaned up on error paths.
Status AtomicWriteFile(const std::string& path, std::string_view bytes);

/// 64-bit checksum of a byte range: four interleaved SplitMix64 chains
/// over 8-byte words (zero-padded tail), seeded with the length and folded
/// together at the end. Deterministic across runs and platforms of equal
/// endianness; this is an integrity check against torn or bit-flipped
/// files, not a cryptographic MAC.
uint64_t HashBytes64(const void* data, size_t size);

}  // namespace tpp

#endif  // TPP_COMMON_BLOB_IO_H_
