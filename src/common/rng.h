// Rng: the single source of randomness for the whole library.
//
// Every experiment, generator and baseline draws from an explicitly seeded
// Rng so that all results are reproducible bit-for-bit across runs.

#ifndef TPP_COMMON_RNG_H_
#define TPP_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace tpp {

/// SplitMix64 finalizer: a bijective avalanche mix of a 64-bit value.
/// Used to derive independent per-request RNG streams from small integer
/// seeds — adjacent seeds (1, 2, 3...) land in unrelated parts of the
/// mt19937_64 seed space, and the derivation depends on nothing but the
/// seed itself, so equal seeds always yield identical streams no matter
/// which thread or batch position runs the request.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic pseudo-random generator (mt19937_64) with the sampling
/// helpers the library needs. Not thread-safe; use one Rng per thread.
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    TPP_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n) {
    TPP_CHECK_GT(n, 0u);
    return static_cast<size_t>(
        std::uniform_int_distribution<uint64_t>(0, n - 1)(gen_));
  }

  /// Uniform real in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformReal() < p;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformIndex(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement.
  /// Requires k <= n. Order of the returned indices is unspecified.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Samples `k` distinct elements from `pool` without replacement.
  template <typename T>
  std::vector<T> SampleK(const std::vector<T>& pool, size_t k) {
    std::vector<size_t> idx = SampleWithoutReplacement(pool.size(), k);
    std::vector<T> out;
    out.reserve(k);
    for (size_t i : idx) out.push_back(pool[i]);
    return out;
  }

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return gen_; }

  /// Derives an independent child generator; useful for fanning a master
  /// seed out to per-sample experiment seeds.
  Rng Fork() { return Rng(gen_()); }

 private:
  std::mt19937_64 gen_;
};

}  // namespace tpp

#endif  // TPP_COMMON_RNG_H_
