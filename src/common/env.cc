#include "common/env.h"

#include <cstdlib>

#include "common/strings.h"

namespace tpp {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  Result<int64_t> parsed = ParseInt64(v);
  return parsed.ok() ? *parsed : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  Result<double> parsed = ParseDouble(v);
  return parsed.ok() ? *parsed : fallback;
}

std::string EnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

}  // namespace tpp
