// Result<T>: value-or-Status, the StatusOr idiom without exceptions.

#ifndef TPP_COMMON_RESULT_H_
#define TPP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace tpp {

/// Holds either a `T` or a non-OK `Status`.
///
/// Like absl::StatusOr: construct implicitly from a value or from an error
/// Status. Accessing `value()` on an error result aborts in debug builds
/// (assert) and is undefined otherwise, so callers must check `ok()` first
/// or use the TPP_ASSIGN_OR_RETURN macro.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Constructing from an OK
  /// status is a programming error and degrades to Internal.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff a value is held.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is held, the error otherwise.
  Status status() const { return ok() ? Status::Ok() : status_; }

  /// Value accessors; require ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace tpp

#define TPP_CONCAT_INNER_(a, b) a##b
#define TPP_CONCAT_(a, b) TPP_CONCAT_INNER_(a, b)

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// Status from the enclosing function. Usage:
///   TPP_ASSIGN_OR_RETURN(Graph g, LoadGraph(path));
#define TPP_ASSIGN_OR_RETURN(lhs, rexpr)                           \
  auto TPP_CONCAT_(tpp_result_, __LINE__) = (rexpr);               \
  if (!TPP_CONCAT_(tpp_result_, __LINE__).ok())                    \
    return TPP_CONCAT_(tpp_result_, __LINE__).status();            \
  lhs = std::move(TPP_CONCAT_(tpp_result_, __LINE__)).value()

#endif  // TPP_COMMON_RESULT_H_
