#include "common/rng.h"

#include <unordered_set>

namespace tpp {

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  TPP_CHECK_LE(k, n);
  std::vector<size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // For dense samples, shuffle a full index vector; for sparse samples use
  // rejection through a hash set (expected O(k) when k << n).
  if (k * 3 >= n) {
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    Shuffle(idx);
    idx.resize(k);
    return idx;
  }
  std::unordered_set<size_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    size_t i = UniformIndex(n);
    if (seen.insert(i).second) out.push_back(i);
  }
  return out;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    TPP_CHECK_GE(w, 0.0);
    total += w;
  }
  TPP_CHECK_GT(total, 0.0);
  double r = UniformReal() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

}  // namespace tpp
