#include "common/fault_injection.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "common/strings.h"

namespace tpp::fault {

namespace {

// FNV-1a over the site name: stable across platforms and standard-library
// implementations, so a given (seed, spec) pair injects the same faults
// everywhere — std::hash makes no such promise.
uint64_t HashSite(std::string_view site) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

bool PatternMatches(std::string_view pattern, std::string_view site) {
  if (!pattern.empty() && pattern.back() == '*') {
    return StartsWith(site, pattern.substr(0, pattern.size() - 1));
  }
  return pattern == site;
}

Status ParseProfile(std::string_view text, FaultProfile* out) {
  std::vector<std::string_view> terms = SplitNonEmpty(text, ":");
  if (terms.empty()) {
    return Status::InvalidArgument("fault profile: empty entry");
  }
  out->site_pattern = std::string(StripWhitespace(terms[0]));
  if (out->site_pattern.empty()) {
    return Status::InvalidArgument("fault profile: empty site pattern");
  }
  bool has_trigger = false;
  for (size_t i = 1; i < terms.size(); ++i) {
    std::string_view term = StripWhitespace(terms[i]);
    if (StartsWith(term, "p=")) {
      Result<double> p = ParseDouble(term.substr(2));
      if (!p.ok() || *p < 0.0 || *p > 1.0) {
        return Status::InvalidArgument("fault profile: bad probability in '" +
                                       std::string(text) + "'");
      }
      out->probability = *p;
      has_trigger = true;
    } else if (StartsWith(term, "n=")) {
      Result<int64_t> n = ParseInt64(term.substr(2));
      if (!n.ok() || *n <= 0) {
        return Status::InvalidArgument("fault profile: bad n= in '" +
                                       std::string(text) + "'");
      }
      out->nth = static_cast<uint64_t>(*n);
      has_trigger = true;
    } else if (StartsWith(term, "every=")) {
      Result<int64_t> k = ParseInt64(term.substr(6));
      if (!k.ok() || *k <= 0) {
        return Status::InvalidArgument("fault profile: bad every= in '" +
                                       std::string(text) + "'");
      }
      out->every = static_cast<uint64_t>(*k);
      has_trigger = true;
    } else if (term == "transient") {
      out->kind = FaultKind::kTransient;
    } else if (term == "permanent") {
      out->kind = FaultKind::kPermanent;
    } else if (term == "torn") {
      out->kind = FaultKind::kTorn;
      out->torn_explicit = false;
    } else if (StartsWith(term, "torn=")) {
      Result<int64_t> b = ParseInt64(term.substr(5));
      if (!b.ok() || *b < 0) {
        return Status::InvalidArgument("fault profile: bad torn= in '" +
                                       std::string(text) + "'");
      }
      out->kind = FaultKind::kTorn;
      out->torn_explicit = true;
      out->torn_bytes = static_cast<uint64_t>(*b);
    } else {
      return Status::InvalidArgument("fault profile: unknown term '" +
                                     std::string(term) + "'");
    }
  }
  if (!has_trigger) {
    return Status::InvalidArgument(
        "fault profile: no trigger (p=/n=/every=) in '" + std::string(text) +
        "'");
  }
  return Status::Ok();
}

}  // namespace

Status FaultDecision::ToStatus(std::string_view site) const {
  std::string msg = "injected fault at " + std::string(site);
  switch (kind) {
    case FaultKind::kPermanent:
      return Status::IoError(std::move(msg));
    case FaultKind::kTorn:
      // A torn write is a simulated crash: the caller already let
      // torn_bytes through, and whether the op would have succeeded on
      // retry is unknowable — report it transient so retry paths behave
      // as they would after a real interrupted write.
      return Status::Unavailable(msg + " (torn write)");
    case FaultKind::kTransient:
      break;
  }
  return Status::Unavailable(std::move(msg));
}

FaultInjector::FaultInjector() {
  const char* spec = std::getenv("TPP_FAULTS");
  if (spec != nullptr && spec[0] != '\0') {
    const char* seed_text = std::getenv("TPP_FAULTS_SEED");
    uint64_t seed = 0;
    if (seed_text != nullptr) {
      Result<int64_t> parsed = ParseInt64(seed_text);
      if (parsed.ok()) seed = static_cast<uint64_t>(*parsed);
    }
    Status armed = Arm(spec, seed);
    if (!armed.ok()) {
      std::fprintf(stderr, "tpp: ignoring TPP_FAULTS: %s\n",
                   armed.ToString().c_str());
    }
  }
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

Status FaultInjector::Arm(std::string_view spec, uint64_t seed) {
  auto parsed =
      std::make_shared<std::vector<std::unique_ptr<FaultProfile>>>();
  for (std::string_view entry : SplitNonEmpty(spec, ";,")) {
    entry = StripWhitespace(entry);
    if (entry.empty()) continue;
    auto profile = std::make_unique<FaultProfile>();
    TPP_RETURN_IF_ERROR(ParseProfile(entry, profile.get()));
    parsed->push_back(std::move(profile));
  }
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  injected_.store(0, std::memory_order_relaxed);
  matched_.store(0, std::memory_order_relaxed);
  if (parsed->empty()) {
    profiles_.reset();
    armed_.store(false, std::memory_order_relaxed);
  } else {
    profiles_ = std::move(parsed);
    armed_.store(true, std::memory_order_relaxed);
  }
  return Status::Ok();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  profiles_.reset();
  armed_.store(false, std::memory_order_relaxed);
}

FaultDecision FaultInjector::Decide(std::string_view site, uint64_t size) {
  std::shared_ptr<const std::vector<std::unique_ptr<FaultProfile>>> profiles;
  uint64_t seed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    profiles = profiles_;
    seed = seed_;
  }
  if (profiles == nullptr) return {};
  for (const auto& profile : *profiles) {
    if (!PatternMatches(profile->site_pattern, site)) continue;
    matched_.fetch_add(1, std::memory_order_relaxed);
    // 1-based call index within this profile, across all matched sites.
    const uint64_t call =
        profile->calls.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire = false;
    if (profile->nth != 0 && call == profile->nth) fire = true;
    if (profile->every != 0 && call % profile->every == 0) fire = true;
    if (profile->probability > 0.0) {
      // Seed ^ site ^ call through the SplitMix64 avalanche: a fixed
      // (seed, spec) pair fires on the same calls in every run.
      const uint64_t draw =
          SplitMix64(seed ^ HashSite(site) ^ (call * 0x9e3779b97f4a7c15ull));
      const double unit =
          static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
      if (unit < profile->probability) fire = true;
    }
    if (!fire) return {};  // first matching profile owns the site
    profile->fired.fetch_add(1, std::memory_order_relaxed);
    injected_.fetch_add(1, std::memory_order_relaxed);
    FaultDecision decision;
    decision.fire = true;
    decision.kind = profile->kind;
    if (profile->kind == FaultKind::kTorn) {
      if (profile->torn_explicit) {
        decision.torn_bytes = std::min(profile->torn_bytes, size);
      } else {
        const uint64_t draw = SplitMix64(seed ^ HashSite(site) ^ call);
        decision.torn_bytes = (size == 0) ? 0 : draw % (size + 1);
      }
    }
    return decision;
  }
  return {};
}

}  // namespace tpp::fault
