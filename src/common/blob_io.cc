#include "common/blob_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/fault_injection.h"
#include "common/net_io.h"
#include "common/rng.h"
#include "common/strings.h"

#if defined(__unix__) || defined(__APPLE__)
#define TPP_BLOB_POSIX 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace tpp {

namespace {

#if TPP_BLOB_POSIX
// Extracted so the mmap path can release the fd before returning.
struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};
#endif

}  // namespace

MappedBlob::~MappedBlob() {
#if TPP_BLOB_POSIX
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
#endif
}

Result<std::shared_ptr<const MappedBlob>> MappedBlob::Open(
    const std::string& path) {
  // Injection site "blob.read": a fired transient fault models EINTR /
  // an evicted page / a flaky network mount; permanent models a dead
  // disk. Either way the caller sees the failure before any bytes.
  if (fault::FaultDecision f = fault::Hit("blob.read"); f.fire) {
    return f.ToStatus("blob.read(" + path + ")");
  }
  auto blob = std::shared_ptr<MappedBlob>(new MappedBlob());
#if TPP_BLOB_POSIX
  FdCloser fd;
  fd.fd = ::open(path.c_str(), O_RDONLY);
  if (fd.fd < 0) return Status::IoError("cannot open " + path);
  struct stat st;
  if (::fstat(fd.fd, &st) != 0) return Status::IoError("cannot stat " + path);
  blob->size_ = static_cast<size_t>(st.st_size);
  if (blob->size_ == 0) return std::shared_ptr<const MappedBlob>(blob);
  int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
  // Prefault the whole file in one kernel pass instead of taking a minor
  // fault per 4 KiB page while the caller streams through it (checksum
  // validation reads every byte anyway).
  flags |= MAP_POPULATE;
#endif
  void* map = ::mmap(nullptr, blob->size_, PROT_READ, flags, fd.fd, 0);
#ifdef MAP_POPULATE
  if (map == MAP_FAILED) {
    // MAP_POPULATE may be refused under memory pressure; plain mapping
    // still works there.
    map = ::mmap(nullptr, blob->size_, PROT_READ, MAP_PRIVATE, fd.fd, 0);
  }
#endif
  if (map != MAP_FAILED) {
    blob->data_ = static_cast<const uint8_t*>(map);
    blob->mapped_ = true;
    return std::shared_ptr<const MappedBlob>(blob);
  }
  // mmap refused (unusual filesystem, resource limit): fall through to the
  // heap read below using the already-open descriptor.
  blob->heap_ = std::make_unique<uint8_t[]>(blob->size_);
  Status read = net::ReadFull(fd.fd, blob->heap_.get(), blob->size_);
  if (!read.ok()) return Status::IoError("short read of " + path);
  blob->data_ = blob->heap_.get();
  return std::shared_ptr<const MappedBlob>(blob);
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::IoError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IoError("cannot size " + path);
  }
  blob->size_ = static_cast<size_t>(size);
  if (blob->size_ > 0) {
    blob->heap_ = std::make_unique<uint8_t[]>(blob->size_);
    size_t got = std::fread(blob->heap_.get(), 1, blob->size_, f);
    std::fclose(f);
    if (got != blob->size_) return Status::IoError("short read of " + path);
    blob->data_ = blob->heap_.get();
  } else {
    std::fclose(f);
  }
  return std::shared_ptr<const MappedBlob>(blob);
#endif
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  // Injection site "blob.write". A transient fault fails before any
  // bytes land (EINTR storm, momentary ENOSPC); a torn fault simulates a
  // crash mid-write: `torn_bytes` of the payload reach the temp file,
  // then the process "dies" — no fsync, no rename, and the temp file is
  // left behind exactly as a real crash would leave it. Readers of
  // `path` must never observe the tear; that is the property the
  // crash-consistency tests sweep over every byte boundary.
  fault::FaultDecision injected = fault::Hit("blob.write", bytes.size());
  if (injected.fire && injected.kind != fault::FaultKind::kTorn) {
    return injected.ToStatus("blob.write(" + path + ")");
  }
#if TPP_BLOB_POSIX
  const std::string tmp =
      StrFormat("%s.tmp.%d", path.c_str(), static_cast<int>(::getpid()));
  {
    FdCloser fd;
    fd.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd.fd < 0) return Status::IoError("cannot create " + tmp);
    const size_t limit = injected.fire
                             ? static_cast<size_t>(injected.torn_bytes)
                             : bytes.size();
    size_t off = 0;
    while (off < limit) {
      ssize_t n = ::write(fd.fd, bytes.data() + off, limit - off);
      if (n < 0 && errno == EINTR) continue;  // interrupted, not failed
      if (n <= 0) {
        ::unlink(tmp.c_str());
        return Status::IoError("short write to " + tmp);
      }
      off += static_cast<size_t>(n);
    }
    if (injected.fire) {
      // Simulated crash: the prefix is on disk under the temp name and
      // the final path is untouched. The temp file survives, as it
      // would after a real kill.
      return injected.ToStatus("blob.write(" + path + ")");
    }
    if (::fsync(fd.fd) != 0) {
      ::unlink(tmp.c_str());
      return Status::IoError("fsync failed for " + tmp);
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IoError("rename failed for " + path);
  }
  // Persist the rename itself: fsync the containing directory (best
  // effort — some filesystems refuse directory fsync; the rename is still
  // atomic against concurrent readers either way).
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return Status::Ok();
#else
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return Status::IoError("cannot create " + tmp);
  if (injected.fire) {  // torn: prefix lands under the temp name, then die
    std::fwrite(bytes.data(), 1, static_cast<size_t>(injected.torn_bytes), f);
    std::fclose(f);
    return injected.ToStatus("blob.write(" + path + ")");
  }
  const size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (wrote != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::IoError("short write to " + tmp);
  }
  std::remove(path.c_str());  // non-POSIX rename may refuse to overwrite
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed for " + path);
  }
  return Status::Ok();
#endif
}

uint64_t HashBytes64(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  // Four independent SplitMix64 chains over interleaved words. A single
  // chain is latency-bound (each step waits on the previous multiply);
  // four lanes keep the multiplier busy and run ~4x faster on the
  // megabyte-scale payload checksums in the warm store, which sit directly
  // on the snapshot load path.
  const uint64_t seed = 0x74707062ull ^ size;  // "tppb" | length
  uint64_t lane[4] = {SplitMix64(seed), SplitMix64(seed + 1),
                      SplitMix64(seed + 2), SplitMix64(seed + 3)};
  size_t i = 0;
  for (; i + 32 <= size; i += 32) {
    uint64_t word[4];
    std::memcpy(word, p + i, 32);
    lane[0] = SplitMix64(lane[0] ^ word[0]);
    lane[1] = SplitMix64(lane[1] ^ word[1]);
    lane[2] = SplitMix64(lane[2] ^ word[2]);
    lane[3] = SplitMix64(lane[3] ^ word[3]);
  }
  for (size_t k = 0; i < size; i += 8, ++k) {
    uint64_t word = 0;
    std::memcpy(&word, p + i, size - i < 8 ? size - i : 8);
    lane[k] = SplitMix64(lane[k] ^ word);
  }
  uint64_t h = lane[0];
  h = SplitMix64(h ^ lane[1]);
  h = SplitMix64(h ^ lane[2]);
  h = SplitMix64(h ^ lane[3]);
  return h;
}

}  // namespace tpp
