// Small string helpers shared by I/O and the harnesses.

#ifndef TPP_COMMON_STRINGS_H_
#define TPP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace tpp {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string_view> SplitNonEmpty(std::string_view s,
                                            std::string_view delims);

/// Parses a base-10 signed integer; the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a double; the whole string must be consumed.
Result<double> ParseDouble(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace tpp

#endif  // TPP_COMMON_STRINGS_H_
