// EINTR-safe POSIX I/O wrappers with deterministic fault injection.
//
// Raw read(2)/write(2)/accept(2) return EINTR whenever a signal lands
// mid-call and write(2) may land only a prefix of the buffer; every call
// site that forgets the retry loop is a latent bug that only fires under
// signal pressure. These wrappers own the loops once, and each carries an
// optional fault-injection site (common/fault_injection.h) so soak tests
// can inject short reads, torn frames, and transient write failures
// deterministically:
//
//   transient -> kUnavailable before any byte moves (a retry may succeed)
//   permanent -> kIoError before any byte moves (the peer/fd is gone)
//   torn      -> a byte PREFIX moves and the rest is dropped, modeling a
//                frame torn by a dying peer or a mid-write crash
//
// The plan server instruments its socket paths with the "net.read" and
// "net.write" sites; blob_io's heap-read fallback routes through ReadFull
// (its own "blob.read" site already guards the open).

#ifndef TPP_COMMON_NET_IO_H_
#define TPP_COMMON_NET_IO_H_

#include <cstddef>
#include <string_view>

#include "common/result.h"

namespace tpp::net {

/// Reads up to `cap` bytes from `fd` into `buf`, retrying on EINTR.
/// Returns the byte count (0 = end of stream). With a non-empty `site`,
/// the fault registry is consulted first: a transient fault returns
/// kUnavailable with no bytes consumed (the caller retries on its next
/// readiness event), a permanent fault returns kIoError, and a torn
/// fault performs the read but delivers only a prefix — the tail is
/// dropped, exactly as a torn frame arrives off a crashed peer.
Result<size_t> ReadSome(int fd, void* buf, size_t cap,
                        std::string_view site = {});

/// Reads exactly `size` bytes (EINTR-safe loop); kIoError on EOF or any
/// read failure before `size` bytes arrive. No fault site — callers
/// that want injection guard the call themselves.
Status ReadFull(int fd, void* buf, size_t size);

/// Writes all `size` bytes, retrying on EINTR and continuing partial
/// writes. With a non-empty `site`: a transient fault fails with
/// kUnavailable before any byte lands, a permanent fault with kIoError,
/// and a torn fault lands a byte prefix and then fails — the frame is on
/// the wire incomplete, as after a mid-write crash.
Status WriteAll(int fd, const void* data, size_t size,
                std::string_view site = {});

/// accept(2) on `listen_fd`, retrying on EINTR. Returns the connected
/// fd. kUnavailable when no connection is pending (EAGAIN/EWOULDBLOCK on
/// a non-blocking listener — poll again), kIoError otherwise.
Result<int> AcceptRetry(int listen_fd);

}  // namespace tpp::net

#endif  // TPP_COMMON_NET_IO_H_
