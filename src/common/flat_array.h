// FlatArray<T>: an immutable flat array that either owns its elements or
// borrows them from a shared backing blob.
//
// The IncidenceIndex keeps its big build-time structures (posting lists,
// interned keys, maintenance records) in arrays that are never mutated
// after construction. Storing them as FlatArrays gives two things at
// once:
//   * copies of the index (IndexedEngine::Clone, one per batch request)
//     share one backing allocation instead of deep-copying every posting
//     list — only the genuinely mutable count arrays stay per-copy; and
//   * a snapshot loaded from disk can ADOPT the mmap'd file bytes in
//     place (motif/index_snapshot.h): the array views the mapping and the
//     shared owner handle keeps the mapping alive for as long as any view
//     does. Zero copies, zero parsing — the file layout IS the in-memory
//     layout.
//
// T must be trivially copyable (the adopted form reinterprets raw bytes).
// The element sequence is immutable through this type by construction;
// mutable state never belongs in a FlatArray.

#ifndef TPP_COMMON_FLAT_ARRAY_H_
#define TPP_COMMON_FLAT_ARRAY_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace tpp {

template <typename T>
class FlatArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "FlatArray elements must be trivially copyable");

 public:
  FlatArray() = default;

  /// Takes ownership of `values` (moved into a shared backing, so copies
  /// of this FlatArray alias rather than duplicate it). Implicit: members
  /// are assigned straight from the build-time vectors.
  FlatArray(std::vector<T> values)  // NOLINT(runtime/explicit)
      : owner_(std::make_shared<std::vector<T>>(std::move(values))) {
    const auto& v = *std::static_pointer_cast<const std::vector<T>>(owner_);
    data_ = v.data();
    size_ = v.size();
  }

  /// Borrows `size` elements at `data`; `owner` keeps the backing memory
  /// (an mmap'd snapshot file) alive for the lifetime of every copy.
  static FlatArray Adopt(const T* data, size_t size,
                         std::shared_ptr<const void> owner) {
    FlatArray a;
    a.data_ = data;
    a.size_ = size;
    a.owner_ = std::move(owner);
    return a;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* data() const { return data_; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& back() const { return data_[size_ - 1]; }
  std::span<const T> span() const { return {data_, size_}; }

  /// Element-wise equality (backing identity is irrelevant: an adopted
  /// snapshot equals the owned build it was written from).
  friend bool operator==(const FlatArray& a, const FlatArray& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::shared_ptr<const void> owner_;
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace tpp

#endif  // TPP_COMMON_FLAT_ARRAY_H_
