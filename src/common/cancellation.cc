#include "common/cancellation.h"

#include <string>

namespace tpp {

Status CancellationToken::Check(std::string_view site) const {
  // Walk the chain explicitly (rather than delegating to the parent's
  // Check) so the error message names the checkpoint that observed the
  // expiry, not the token that carried the deadline.
  for (const CancellationToken* tok = this; tok != nullptr;
       tok = tok->parent_) {
    if (tok->canceled_.load(std::memory_order_relaxed)) {
      return Status::Aborted(std::string(site) + ": canceled");
    }
    if (tok->has_deadline_ && Clock::now() >= tok->deadline_) {
      return Status::DeadlineExceeded(std::string(site) +
                                      ": deadline exceeded");
    }
  }
  return Status::Ok();
}

}  // namespace tpp
