#include "common/table.h"

#include <filesystem>
#include <fstream>

namespace tpp {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i) {
      width[i] = std::max(width[i], r[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::string out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i) {
      out += r[i];
      if (i + 1 < r.size()) {
        out.append(width[i] - r[i].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t rule = 0;
    for (size_t i = 0; i < cols; ++i) rule += width[i] + (i + 1 < cols ? 2 : 0);
    out.append(rule, '-');
    out += '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out;
}

void CsvWriter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void CsvWriter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string CsvWriter::EscapeField(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i) {
      if (i) out += ',';
      out += EscapeField(r[i]);
    }
    out += '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::error_code ec;
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      return Status::IoError("cannot create directory " +
                             p.parent_path().string() + ": " + ec.message());
    }
  }
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IoError("cannot open " + path + " for writing");
  f << ToString();
  if (!f.good()) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace tpp
