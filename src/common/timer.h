// WallTimer: monotonic wall-clock stopwatch for the benchmark harnesses.

#ifndef TPP_COMMON_TIMER_H_
#define TPP_COMMON_TIMER_H_

#include <chrono>

namespace tpp {

/// Simple stopwatch over std::chrono::steady_clock. Starts on construction.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tpp

#endif  // TPP_COMMON_TIMER_H_
