#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/env.h"
#include "common/flags.h"

namespace tpp {

namespace {

// Pins the calling worker to one CPU when TPP_PIN_THREADS=1 (Linux only;
// silently a no-op elsewhere or when the affinity call fails). Worker i
// takes core (i + 1) mod hardware_concurrency so the caller-participates
// ParallelFor keeps core 0 for the calling thread.
void MaybePinWorker(size_t worker_index) {
  if (!ThreadPinningEnabled()) return;
#if defined(__linux__)
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET((worker_index + 1) % cores, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)worker_index;
#endif
}

}  // namespace

bool ThreadPinningEnabled() {
  static const bool enabled = EnvInt("TPP_PIN_THREADS", 0) != 0;
  return enabled;
}

ThreadPool::ThreadPool(int num_threads) {
  EnsureThreads(num_threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::NumThreads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::EnsureThreads(int num_threads) {
  num_threads = std::min(num_threads, kMaxThreads);
  std::lock_guard<std::mutex> lock(mu_);
  while (!stopping_ && static_cast<int>(threads_.size()) < num_threads) {
    const size_t worker_index = threads_.size();
    threads_.emplace_back([this, worker_index] {
      MaybePinWorker(worker_index);
      WorkerLoop();
    });
  }
}

void ThreadPool::Run(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue before stopping so no accepted task is dropped.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

// Shared state of one ParallelFor call. Helper tasks hold it by
// shared_ptr: a helper scheduled after the loop already finished finds
// the cursor exhausted and exits without touching caller-owned data (the
// body's captures may be gone by then, but the body itself lives here).
struct ParallelForState {
  std::function<void(size_t, size_t)> body;
  size_t n = 0;
  size_t grain = 1;
  std::atomic<size_t> cursor{0};
  std::atomic<int> active_helpers{0};
  std::mutex mu;
  std::condition_variable done_cv;

  // Claims and processes chunks until the range is exhausted.
  void Drain() {
    for (;;) {
      size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      body(begin, std::min(begin + grain, n));
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(size_t n, int max_workers, size_t grain,
                             const std::function<void(size_t, size_t)>&
                                 body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  size_t chunks = (n + grain - 1) / grain;
  int workers = std::max(1, max_workers);
  workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(workers), chunks));
  if (workers > 1) EnsureThreads(workers - 1);
  if (workers <= 1 || NumThreads() == 0) {
    body(0, n);
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->body = body;
  state->n = n;
  state->grain = grain;
  for (int w = 1; w < workers; ++w) {
    Run([state] {
      state->active_helpers.fetch_add(1);
      state->Drain();
      if (state->active_helpers.fetch_sub(1) == 1) {
        // Wake the caller; the lock orders this with its predicate check.
        std::lock_guard<std::mutex> lock(state->mu);
        state->done_cv.notify_all();
      }
    });
  }
  // The caller is always worker 0: even with a saturated (or nested-into)
  // pool the range drains without waiting on anyone.
  state->Drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] {
    return state->active_helpers.load() == 0;
  });
  // Helpers that never started will see an exhausted cursor and drop
  // their shared_ptr; nothing of the caller's frame escapes into them.
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool pool(GlobalThreadCount());
  return pool;
}

}  // namespace tpp
