// ThreadPool: the process-wide worker pool behind every parallel sweep.
//
// Threads are created once per process (growing lazily up to the largest
// parallelism any caller requests) instead of once per batch, so hot
// paths like IndexedEngine::BatchGain and PlanService::RunBatch pay no
// spawn cost per call. ParallelFor is the only coordination primitive the
// library needs: a blocking chunked loop in which the CALLING thread
// always participates, which makes nested ParallelFor calls (a service
// request running a batched gain sweep) deadlock-free even when every
// pool thread is busy — the caller simply drains the chunks itself.

#ifndef TPP_COMMON_THREAD_POOL_H_
#define TPP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tpp {

/// Fixed-capacity growing worker pool. All methods are thread-safe.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to [0, kMaxThreads]). A pool
  /// with 0 workers is valid: ParallelFor then runs entirely on the
  /// calling thread.
  explicit ThreadPool(int num_threads);

  /// Finishes all queued tasks, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Current number of worker threads.
  int NumThreads() const;

  /// Grows the pool to at least `num_threads` workers (no-op if already
  /// that large; clamped to kMaxThreads). Threads are only ever added,
  /// never removed, so repeated sweeps reuse the same workers.
  void EnsureThreads(int num_threads);

  /// Enqueues a fire-and-forget task.
  void Run(std::function<void()> task);

  /// Runs `body(begin, end)` over disjoint chunks covering [0, n), using
  /// at most `max_workers` concurrent workers (the calling thread plus up
  /// to max_workers - 1 pool threads; the pool grows if needed). Chunks
  /// are `grain` indices long (the last one shorter) and are claimed
  /// dynamically, so uneven per-index cost still balances. Blocks until
  /// every index is processed. Writes to disjoint output slots need no
  /// synchronization; all worker writes are visible once this returns.
  ///
  /// Safe to call from inside a pool task (nesting): progress never
  /// depends on a free pool thread.
  void ParallelFor(size_t n, int max_workers, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

  /// Hard upper bound on pool size, a runaway-request backstop.
  static constexpr int kMaxThreads = 256;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
};

/// The process-wide shared pool, lazily created on first use and sized by
/// GlobalThreadCount() (the --threads flag / TPP_THREADS resolution). It
/// grows on demand when a caller asks ParallelFor for more workers than
/// the initial size.
ThreadPool& GlobalThreadPool();

/// True iff TPP_PIN_THREADS=1: pool workers pin themselves to one CPU each
/// (worker i to core (i + 1) mod hardware_concurrency, leaving core 0 to
/// the calling thread) via pthread_setaffinity_np on Linux; a no-op
/// elsewhere. Off by default — the first measurement toward the
/// NUMA/affinity roadmap item; bench/solver_rounds records this flag in
/// its JSON so pinned and unpinned runs are distinguishable.
bool ThreadPinningEnabled();

}  // namespace tpp

#endif  // TPP_COMMON_THREAD_POOL_H_
