#include "common/net_io.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"

#if defined(__unix__) || defined(__APPLE__)
#define TPP_NET_POSIX 1
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace tpp::net {

#if TPP_NET_POSIX

namespace {

// write(2) raises SIGPIPE when the peer is gone — fatal by default, and
// a server must treat a vanished client as an I/O error, not a process
// signal. Sockets get send(MSG_NOSIGNAL); pipes and files (ENOTSOCK)
// fall back to plain write, where the caller keeps the read end alive or
// has opted into SIGPIPE handling process-wide.
ssize_t WriteChunk(int fd, const void* p, size_t n, bool& use_send) {
  if (use_send) {
    const ssize_t r = ::send(fd, p, n, MSG_NOSIGNAL);
    if (r >= 0 || errno != ENOTSOCK) return r;
    use_send = false;
  }
  return ::write(fd, p, n);
}

}  // namespace

Result<size_t> ReadSome(int fd, void* buf, size_t cap,
                        std::string_view site) {
  fault::FaultDecision injected;
  if (!site.empty()) injected = fault::Hit(site, cap);
  if (injected.fire && injected.kind != fault::FaultKind::kTorn) {
    return injected.ToStatus(site);
  }
  for (;;) {
    ssize_t n = ::read(fd, buf, cap);
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted, not failed
      return Status::IoError(std::string("read failed: ") +
                             std::strerror(errno));
    }
    size_t got = static_cast<size_t>(n);
    if (injected.fire) {
      // Torn frame: only the prefix reaches the caller; the tail read
      // from the kernel is dropped, exactly as bytes in flight are lost
      // when the peer dies mid-frame.
      got = std::min<size_t>(got, static_cast<size_t>(injected.torn_bytes));
    }
    return got;
  }
}

Status ReadFull(int fd, void* buf, size_t size) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::read(fd, p + off, size - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IoError(std::string("short read: ") +
                             (n < 0 ? std::strerror(errno) : "EOF"));
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status WriteAll(int fd, const void* data, size_t size,
                std::string_view site) {
  fault::FaultDecision injected;
  if (!site.empty()) injected = fault::Hit(site, size);
  if (injected.fire && injected.kind != fault::FaultKind::kTorn) {
    return injected.ToStatus(site);
  }
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const size_t limit = injected.fire
                           ? std::min<size_t>(
                                 size, static_cast<size_t>(
                                           injected.torn_bytes))
                           : size;
  size_t off = 0;
  bool use_send = true;
  while (off < limit) {
    ssize_t n = WriteChunk(fd, p + off, limit - off, use_send);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IoError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  if (injected.fire) {
    // Torn write: the prefix is on the wire and the frame will never
    // complete — the peer's framing layer sees a garbled line. Unlike an
    // atomic blob write (temp+rename, where ToStatus reports torn as
    // retryable), a STREAM retry would duplicate the prefix and corrupt
    // framing, so the failure is terminal here.
    return Status::IoError("injected torn write at " + std::string(site));
  }
  return Status::Ok();
}

Result<int> AcceptRetry(int listen_fd) {
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("no pending connection");
    }
    return Status::IoError(std::string("accept failed: ") +
                           std::strerror(errno));
  }
}

#else  // !TPP_NET_POSIX

Result<size_t> ReadSome(int, void*, size_t, std::string_view) {
  return Status::Unimplemented("net I/O requires POSIX");
}
Status ReadFull(int, void*, size_t) {
  return Status::Unimplemented("net I/O requires POSIX");
}
Status WriteAll(int, const void*, size_t, std::string_view) {
  return Status::Unimplemented("net I/O requires POSIX");
}
Result<int> AcceptRetry(int) {
  return Status::Unimplemented("net I/O requires POSIX");
}

#endif

}  // namespace tpp::net
