// Minimal --key=value command-line flag parsing for the CLI tool.

#ifndef TPP_COMMON_FLAGS_H_
#define TPP_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace tpp {

/// Parsed command line: `prog [command] [--key=value ...] [positional...]`.
class ParsedArgs {
 public:
  /// Parses argv. Flags are "--key=value" or "--key value" or boolean
  /// "--key"; everything else is positional. Errors on duplicate flags.
  static Result<ParsedArgs> Parse(int argc, const char* const* argv);

  /// Positional arguments (excluding argv[0]).
  const std::vector<std::string>& positional() const { return positional_; }

  /// True if the flag was present at all.
  bool Has(const std::string& key) const { return flags_.count(key) > 0; }

  /// String flag with fallback.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  /// Integer flag with fallback; returns an error on unparsable values.
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;

  /// Double flag with fallback; returns an error on unparsable values.
  Result<double> GetDouble(const std::string& key, double fallback) const;

  /// Boolean flag: present without value or with "true"/"1".
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Flags that were never read by any Get*/Has call; used to report
  /// unknown flags to the user.
  std::vector<std::string> UnreadFlags() const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> read_;
};

/// Process-wide worker-thread budget for parallel batch evaluation
/// (Engine::BatchGain). Resolution order: an explicit
/// SetGlobalThreadCount(), else the TPP_THREADS environment variable, else
/// std::thread::hardware_concurrency(). Always returns >= 1.
int GlobalThreadCount();

/// Installs an explicit global thread count; values <= 0 reset to the
/// automatic TPP_THREADS / hardware-concurrency resolution.
void SetGlobalThreadCount(int threads);

/// Standard --threads flag hookup: when `args` carries --threads=N,
/// installs N via SetGlobalThreadCount (N <= 0 resets to auto). Returns an
/// error on unparsable values; absent flag leaves the setting untouched.
Status ApplyThreadsFlag(const ParsedArgs& args);

}  // namespace tpp

#endif  // TPP_COMMON_FLAGS_H_
