// Self-pipe shutdown signal handling for long-lived serving processes.
//
// A signal handler may only touch async-signal-safe state, so the
// classic pattern applies: the handler writes one byte to a pipe and
// bumps an atomic counter, and the serving poll loop watches the pipe's
// read end like any other fd. The FIRST byte means "drain gracefully"
// (stop admission, finish in-flight work, exit 0); the SECOND escalates
// to "cancel in-flight work via token" — the two-step ladder the plan
// server implements (docs/ROBUSTNESS.md).
//
// SIGPIPE is ignored as part of installation: a server writing a
// response to a client that already disconnected must see EPIPE from
// write(2), not die.

#ifndef TPP_COMMON_SIGNALS_H_
#define TPP_COMMON_SIGNALS_H_

#include <cstdint>

#include "common/result.h"

namespace tpp::signals {

/// Installs SIGTERM/SIGINT handlers that write one byte each to a
/// process-wide self-pipe, ignores SIGPIPE, and returns the pipe's read
/// end (owned by the process; never close it). Idempotent — repeat calls
/// return the same fd. The caller polls the fd and drains one byte per
/// delivered signal.
Result<int> InstallShutdownPipe();

/// Signals delivered through the handlers since installation.
uint64_t ShutdownSignalCount();

/// Test hook: simulates one signal delivery (same pipe byte + counter
/// bump as the real handler) without raising a signal.
void InjectShutdownSignalForTest();

}  // namespace tpp::signals

#endif  // TPP_COMMON_SIGNALS_H_
