#include "common/status.h"

namespace tpp {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tpp
