#include "core/solver.h"

#include <array>

#include "common/strings.h"
#include "common/timer.h"
#include "core/baselines.h"
#include "core/budget.h"
#include "core/katz_defense.h"

namespace tpp::core {

namespace {

// Resolves the budget sentinel: "full protection" means the current total
// similarity, which always suffices for the greedy selections (every pick
// breaks at least one alive instance).
size_t EffectiveBudget(const SolverSpec& spec, Engine& engine) {
  return spec.budget == SolverSpec::kFullProtection
             ? engine.TotalSimilarity()
             : spec.budget;
}

GreedyOptions OptionsOf(const SolverSpec& spec) {
  GreedyOptions opts;
  opts.scope = spec.scope;
  opts.lazy = spec.lazy;
  opts.rounds = spec.rounds;
  opts.celf = spec.celf;
  opts.cancel = spec.cancel;
  return opts;
}

std::vector<size_t> InitialSimilarities(Engine& engine) {
  std::vector<size_t> sims(engine.NumTargets());
  for (size_t t = 0; t < sims.size(); ++t) sims[t] = engine.SimilarityOf(t);
  return sims;
}

class SgbSolver : public Solver {
 public:
  std::string_view Name() const override { return "sgb"; }
  std::string_view DisplayName() const override { return "SGB-Greedy"; }
  BudgetModel Budgeting() const override { return BudgetModel::kGlobal; }
  bool Randomized() const override { return false; }
  Result<ProtectionResult> Run(Engine& engine, const TppInstance&,
                               const SolverSpec& spec, Rng&) const override {
    return SgbGreedy(engine, EffectiveBudget(spec, engine), OptionsOf(spec));
  }
};

// CT/WT with TBD/DBD budget division, parameterized by the two axes.
class MlbtSolver : public Solver {
 public:
  MlbtSolver(bool within_target, BudgetDivision division)
      : within_target_(within_target), division_(division) {}

  std::string_view Name() const override {
    if (within_target_) {
      return division_ == BudgetDivision::kTargetSubgraphBased ? "wt-tbd"
                                                               : "wt-dbd";
    }
    return division_ == BudgetDivision::kTargetSubgraphBased ? "ct-tbd"
                                                             : "ct-dbd";
  }
  std::string_view DisplayName() const override {
    if (within_target_) {
      return division_ == BudgetDivision::kTargetSubgraphBased
                 ? "WT-Greedy:TBD"
                 : "WT-Greedy:DBD";
    }
    return division_ == BudgetDivision::kTargetSubgraphBased
               ? "CT-Greedy:TBD"
               : "CT-Greedy:DBD";
  }
  BudgetModel Budgeting() const override { return BudgetModel::kPerTarget; }
  bool Randomized() const override { return false; }
  Result<ProtectionResult> Run(Engine& engine, const TppInstance& instance,
                               const SolverSpec& spec, Rng&) const override {
    size_t k = EffectiveBudget(spec, engine);
    std::vector<size_t> budgets =
        division_ == BudgetDivision::kTargetSubgraphBased
            ? DivideBudgetTbd(InitialSimilarities(engine), k)
            : DivideBudgetDbd(instance, k);
    return within_target_ ? WtGreedy(engine, budgets, OptionsOf(spec))
                          : CtGreedy(engine, budgets, OptionsOf(spec));
  }

 private:
  bool within_target_;
  BudgetDivision division_;
};

class RandomSolver : public Solver {
 public:
  explicit RandomSolver(bool target_subgraphs_only)
      : target_subgraphs_only_(target_subgraphs_only) {}

  std::string_view Name() const override {
    return target_subgraphs_only_ ? "rdt" : "rd";
  }
  std::string_view DisplayName() const override {
    return target_subgraphs_only_ ? "RDT" : "RD";
  }
  BudgetModel Budgeting() const override { return BudgetModel::kGlobal; }
  bool Randomized() const override { return true; }
  Result<ProtectionResult> Run(Engine& engine, const TppInstance&,
                               const SolverSpec& spec,
                               Rng& rng) const override {
    size_t k = EffectiveBudget(spec, engine);
    return target_subgraphs_only_
               ? RandomDeletionFromTargetSubgraphs(engine, k, rng)
               : RandomDeletion(engine, k, rng);
  }

 private:
  bool target_subgraphs_only_;
};

class FullProtectionSolver : public Solver {
 public:
  std::string_view Name() const override { return "full"; }
  std::string_view DisplayName() const override { return "Full-Protection"; }
  BudgetModel Budgeting() const override { return BudgetModel::kUnbudgeted; }
  bool Randomized() const override { return false; }
  Result<ProtectionResult> Run(Engine& engine, const TppInstance&,
                               const SolverSpec& spec, Rng&) const override {
    return FullProtection(engine, OptionsOf(spec));
  }
};

// Adapter over GreedyKatzDefense: the Katz defense picks protectors
// against the truncated-Katz attack model on its own copy of the released
// graph; the picks are then replayed through `engine` so the returned
// ProtectionResult reports the same motif-similarity trajectory (and
// leaves engine.CurrentGraph() == the defended graph) as every other
// solver. Scope and lazy flags do not apply to this solver.
class KatzDefenseSolver : public Solver {
 public:
  std::string_view Name() const override { return "katz"; }
  std::string_view DisplayName() const override { return "Katz-Defense"; }
  BudgetModel Budgeting() const override { return BudgetModel::kGlobal; }
  bool Randomized() const override { return false; }
  Result<ProtectionResult> Run(Engine& engine, const TppInstance& instance,
                               const SolverSpec& spec, Rng&) const override {
    WallTimer timer;
    KatzDefenseOptions options;
    options.budget = spec.budget == SolverSpec::kFullProtection
                         ? instance.released.NumEdges()
                         : spec.budget;
    TPP_ASSIGN_OR_RETURN(KatzDefenseResult defense,
                         GreedyKatzDefense(instance, options));
    ProtectionResult result;
    result.initial_similarity = engine.TotalSimilarity();
    for (const graph::Edge& e : defense.protectors) {
      PickTrace trace;
      trace.edge = e.Key();
      trace.realized_gain = engine.DeleteEdge(e.Key());
      trace.for_target = PickTrace::kNoTarget;
      trace.similarity_after = engine.TotalSimilarity();
      trace.cumulative_seconds = timer.Seconds();
      result.picks.push_back(trace);
      result.protectors.push_back(e);
    }
    result.final_similarity = engine.TotalSimilarity();
    result.gain_evaluations = engine.GainEvaluations();
    result.total_seconds = timer.Seconds();
    return result;
  }
};

// Registration order defines SolverNames() order; keep it in sync with
// the table in the header.
const std::array<const Solver*, 9>& Registry() {
  static const SgbSolver sgb;
  static const MlbtSolver ct_tbd(false, BudgetDivision::kTargetSubgraphBased);
  static const MlbtSolver ct_dbd(false, BudgetDivision::kDegreeProductBased);
  static const MlbtSolver wt_tbd(true, BudgetDivision::kTargetSubgraphBased);
  static const MlbtSolver wt_dbd(true, BudgetDivision::kDegreeProductBased);
  static const RandomSolver rd(false);
  static const RandomSolver rdt(true);
  static const FullProtectionSolver full;
  static const KatzDefenseSolver katz;
  static const std::array<const Solver*, 9> registry = {
      &sgb, &ct_tbd, &ct_dbd, &wt_tbd, &wt_dbd, &rd, &rdt, &full, &katz};
  return registry;
}

}  // namespace

Result<CandidateScope> ParseCandidateScope(std::string_view name) {
  if (name == "all") return CandidateScope::kAllEdges;
  if (name == "subgraph") return CandidateScope::kTargetSubgraphEdges;
  return Status::InvalidArgument(
      StrFormat("scope '%s' (want all|subgraph)",
                std::string(name).c_str()));
}

Result<RoundMode> ParseRoundMode(std::string_view name) {
  if (name == "incremental") return RoundMode::kIncremental;
  if (name == "cold") return RoundMode::kColdSweep;
  if (name == "heap") return RoundMode::kHeap;
  return Status::InvalidArgument(
      StrFormat("rounds '%s' (want incremental|cold|heap)",
                std::string(name).c_str()));
}

Result<CelfMode> ParseCelfMode(std::string_view name) {
  if (name == "dirty") return CelfMode::kDirtyAware;
  if (name == "classic") return CelfMode::kClassic;
  return Status::InvalidArgument(
      StrFormat("celf '%s' (want dirty|classic)",
                std::string(name).c_str()));
}

size_t BudgetFromFlag(int64_t budget) {
  return budget <= 0 ? SolverSpec::kFullProtection
                     : static_cast<size_t>(budget);
}

const Solver* FindSolver(std::string_view name) {
  for (const Solver* solver : Registry()) {
    if (solver->Name() == name) return solver;
  }
  return nullptr;
}

Result<const Solver*> GetSolver(std::string_view name) {
  const Solver* solver = FindSolver(name);
  if (solver != nullptr) return solver;
  std::string known;
  for (std::string_view n : SolverNames()) {
    if (!known.empty()) known += "|";
    known += n;
  }
  return Status::InvalidArgument(
      StrFormat("unknown solver '%s' (want %s)",
                std::string(name).c_str(), known.c_str()));
}

std::vector<std::string_view> SolverNames() {
  std::vector<std::string_view> names;
  names.reserve(Registry().size());
  for (const Solver* solver : Registry()) names.push_back(solver->Name());
  return names;
}

Status ValidateSolverSpec(const SolverSpec& spec) {
  TPP_ASSIGN_OR_RETURN(const Solver* solver, GetSolver(spec.algorithm));
  if (spec.lazy && solver->Name() != "sgb" && solver->Name() != "full") {
    return Status::InvalidArgument(
        StrFormat("solver '%s' does not support lazy (CELF) evaluation",
                  std::string(solver->Name()).c_str()));
  }
  return Status::Ok();
}

Result<ProtectionResult> RunSolver(const SolverSpec& spec, Engine& engine,
                                   const TppInstance& instance, Rng& rng) {
  Status valid = ValidateSolverSpec(spec);
  if (!valid.ok()) return valid;
  return FindSolver(spec.algorithm)->Run(engine, instance, spec, rng);
}

}  // namespace tpp::core
