// Weighted target importance (motivated by paper §V: "the importance
// level of every sensitive target is different").
//
// The weighted dissimilarity f_w(P,T) = C_w - sum_t w_t * s(P,t) with
// non-negative weights is a non-negative linear combination of the
// per-target dissimilarities, hence still monotone and submodular, so the
// weighted greedy keeps the 1-1/e guarantee for the SGBT problem.

#ifndef TPP_CORE_WEIGHTED_H_
#define TPP_CORE_WEIGHTED_H_

#include <vector>

#include "common/result.h"
#include "core/greedy.h"
#include "core/problem.h"

namespace tpp::core {

/// SGB-Greedy on the weighted objective: each pick maximizes
/// sum_t w_t * (s(P,t) - s(P+e,t)). Weights must be non-negative and one
/// per target. Ties break toward the smaller edge key; picks with zero
/// weighted gain stop the selection even if unweighted gain remains.
Result<ProtectionResult> WeightedSgbGreedy(Engine& engine,
                                           const std::vector<double>& weights,
                                           size_t budget,
                                           const GreedyOptions& options = {});

/// Convenience: weights proportional to the degree product of the target
/// endpoints in the released graph (the paper's DBD importance notion,
/// applied to the objective instead of the budget).
std::vector<double> DegreeProductWeights(const TppInstance& instance);

}  // namespace tpp::core

#endif  // TPP_CORE_WEIGHTED_H_
