// Solver registry: every protector-selection algorithm behind one
// string-keyed dispatch interface.
//
// Callers (the CLI, the bench harnesses, the plan service, the examples)
// name an algorithm by its registry key and run it through
// RunSolver(spec, engine, instance, rng) instead of hand-wiring their own
// dispatch switches. Registered solvers:
//
//   key      display          budgeting    notes
//   sgb      SGB-Greedy       global k     supports lazy (CELF)
//   ct-tbd   CT-Greedy:TBD    per-target   k divided by target-subgraph count
//   ct-dbd   CT-Greedy:DBD    per-target   k divided by degree product
//   wt-tbd   WT-Greedy:TBD    per-target   within-target, TBD division
//   wt-dbd   WT-Greedy:DBD    per-target   within-target, DBD division
//   rd       RD               global k     randomized baseline
//   rdt      RDT              global k     randomized, target-subgraph edges
//   full     Full-Protection  unbudgeted   SGB until similarity reaches 0
//   katz     Katz-Defense     global k     Katz-index defense (§VII), the
//                                          result traces the motif
//                                          similarity of its deletions
//
// A SolverSpec's budget of kFullProtection (the default) means "spend
// whatever it takes": budgeted solvers use the instance's initial total
// similarity as k, which always suffices for the greedy selections.

#ifndef TPP_CORE_SOLVER_H_
#define TPP_CORE_SOLVER_H_

#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/greedy.h"
#include "core/problem.h"

namespace tpp::core {

/// How a solver consumes the budget of a SolverSpec.
enum class BudgetModel {
  kGlobal,     ///< one pool of k deletions (SGB, RD, RDT, Katz)
  kPerTarget,  ///< k divided into per-target budgets K (CT/WT variants)
  kUnbudgeted, ///< runs to full protection; the budget field is ignored
};

/// A fully specified protection run: which algorithm, over which candidate
/// edges, with how much budget. The spec is plain data so it can be
/// parsed from CLI flags or batch request files and carried across
/// threads.
struct SolverSpec {
  /// Budget sentinel: protect fully (see header comment).
  static constexpr size_t kFullProtection =
      std::numeric_limits<size_t>::max();

  std::string algorithm = "sgb";  ///< registry key
  /// Candidate protector scope; kTargetSubgraphEdges gives the scalable
  /// "-R" variants with identical output (Lemma 5).
  CandidateScope scope = CandidateScope::kTargetSubgraphEdges;
  bool lazy = false;              ///< CELF evaluation (SGB-based only)
  /// Round strategy of the eager greedy loops (CLI --rounds flag:
  /// incremental|cold|heap). Every mode is bit-identical in output; only
  /// wall time differs, so plan caching ignores this field.
  RoundMode rounds = RoundMode::kIncremental;
  /// Stale-bound strategy when `lazy` is set (CLI --celf flag:
  /// dirty|classic). Bit-identical picks; dirty matches the eager paths'
  /// evaluation accounting exactly, classic is the historical
  /// re-push-on-pop loop.
  CelfMode celf = CelfMode::kDirtyAware;
  /// Total deletion budget k. 0 is legal and selects nothing (budget-grid
  /// sweeps evaluate it); the kFullProtection default is unbounded.
  size_t budget = kFullProtection;
  /// Cooperative cancellation (common/cancellation.h): solvers poll the
  /// token at round boundaries and return kDeadlineExceeded / kAborted
  /// instead of running on. Not owned; must outlive the Run call.
  /// Wall-clock only — like `rounds`, it never changes the output of a
  /// run that completes, so plan caching ignores this field.
  const CancellationToken* cancel = nullptr;
};

/// One registered protector-selection algorithm. Implementations are
/// stateless singletons owned by the registry; Run may be called
/// concurrently from many threads (each call gets its own engine and rng).
class Solver {
 public:
  virtual ~Solver() = default;

  /// Registry key, e.g. "ct-tbd".
  virtual std::string_view Name() const = 0;

  /// Display name in the paper's notation, e.g. "CT-Greedy:TBD".
  virtual std::string_view DisplayName() const = 0;

  /// How this solver consumes spec.budget.
  virtual BudgetModel Budgeting() const = 0;

  /// True if the selection draws from `rng` (RD/RDT). Deterministic
  /// solvers never touch it.
  virtual bool Randomized() const = 0;

  /// Runs the selection against `engine` (which it mutates by committing
  /// deletions, like the underlying algorithms). `instance` is the
  /// problem the engine was built from; per-target budget division and
  /// the Katz defense need it.
  virtual Result<ProtectionResult> Run(Engine& engine,
                                       const TppInstance& instance,
                                       const SolverSpec& spec,
                                       Rng& rng) const = 0;
};

/// Parses a candidate-scope name: "subgraph" (kTargetSubgraphEdges) or
/// "all" (kAllEdges) — the vocabulary of the CLI --scope flag and the
/// request-file scope= key.
Result<CandidateScope> ParseCandidateScope(std::string_view name);

/// Parses a round-mode name: "incremental" (kIncremental), "cold"
/// (kColdSweep), or "heap" (kHeap) — the vocabulary of the CLI --rounds
/// flag and the bench harnesses.
Result<RoundMode> ParseRoundMode(std::string_view name);

/// Parses a CELF-mode name: "dirty" (kDirtyAware) or "classic"
/// (kClassic) — the vocabulary of the CLI --celf flag.
Result<CelfMode> ParseCelfMode(std::string_view name);

/// Maps an integer budget knob to a spec budget: values <= 0 mean
/// "protect fully" (kFullProtection), matching the CLI --budget flag and
/// the request-file budget= key.
size_t BudgetFromFlag(int64_t budget);

/// Looks up a solver by registry key; nullptr when unknown.
const Solver* FindSolver(std::string_view name);

/// Like FindSolver but returns an InvalidArgument listing the known keys.
Result<const Solver*> GetSolver(std::string_view name);

/// All registry keys, in registration order (the order of the table
/// above).
std::vector<std::string_view> SolverNames();

/// Checks a spec against the registry: the algorithm must exist and the
/// flag combination must be supported (lazy is SGB-based only).
Status ValidateSolverSpec(const SolverSpec& spec);

/// Validates `spec` and runs the named solver. The one dispatch path all
/// callers share.
Result<ProtectionResult> RunSolver(const SolverSpec& spec, Engine& engine,
                                   const TppInstance& instance, Rng& rng);

}  // namespace tpp::core

#endif  // TPP_CORE_SOLVER_H_
