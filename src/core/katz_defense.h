// TPP against the Katz index (paper §VII future work item 1).
//
// The Katz dissimilarity C - sum_t katz(t) is monotone under edge
// deletion (removing edges can only remove walks) but NOT submodular, so
// the paper's greedy guarantees do not transfer. This module provides a
// documented best-effort defense: a greedy that at each step deletes the
// candidate edge with the largest estimated reduction in total truncated
// Katz score across all targets.
//
// Gain estimation is first-order: the walks through a candidate edge are
// counted from per-target forward/backward walk tables (exact for walks
// using the edge once; walks revisiting the edge — rare at small maximum
// lengths — make the estimate a lower bound). After each committed
// deletion the exact scores are recomputed, so the reported trajectory is
// exact even though the per-step choice is heuristic.

#ifndef TPP_CORE_KATZ_DEFENSE_H_
#define TPP_CORE_KATZ_DEFENSE_H_

#include <vector>

#include "common/result.h"
#include "core/problem.h"
#include "linkpred/katz.h"

namespace tpp::core {

/// Options for the Katz defense.
struct KatzDefenseOptions {
  linkpred::KatzParams katz;   ///< attack model parameters
  size_t budget = 10;          ///< maximum protector deletions
  /// Stop once the total Katz score over all targets falls to or below
  /// this value (0 demands walk-disconnection within max_length).
  double stop_score = 0.0;
};

/// Outcome of a Katz defense run.
struct KatzDefenseResult {
  std::vector<graph::Edge> protectors;   ///< deletion order
  double initial_score = 0.0;            ///< sum of target Katz scores
  double final_score = 0.0;
  std::vector<double> score_trajectory;  ///< exact score after each pick
  graph::Graph released{0};              ///< the defended graph
};

/// Runs the greedy Katz defense on the instance's released graph (targets
/// already removed). Candidates are restricted to edges lying on some
/// walk of length <= katz.max_length between a target's endpoints (the
/// Katz analogue of Lemma 5: other deletions cannot change any target's
/// score).
Result<KatzDefenseResult> GreedyKatzDefense(const TppInstance& instance,
                                            const KatzDefenseOptions& options);

/// Total truncated Katz score over all targets on `g`.
Result<double> TotalKatzScore(const graph::Graph& g,
                              const std::vector<graph::Edge>& targets,
                              const linkpred::KatzParams& params);

}  // namespace tpp::core

#endif  // TPP_CORE_KATZ_DEFENSE_H_
