#include "core/report.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "motif/motif.h"

namespace tpp::core {

using graph::Edge;
using graph::Graph;

std::string FormatProtectionReport(const TppInstance& instance,
                                   const ProtectionResult& result) {
  std::string out;
  out += StrFormat("TPP protection report\n");
  out += StrFormat("  motif:            %s\n",
                   std::string(motif::MotifName(instance.motif)).c_str());
  out += StrFormat("  released graph:   %s\n",
                   instance.released.DebugString().c_str());
  out += StrFormat("  targets:          %zu\n", instance.targets.size());
  out += StrFormat("  initial s({},T):  %zu\n", result.initial_similarity);
  out += StrFormat("  protectors:       %zu\n", result.protectors.size());
  out += StrFormat("  final s(P,T):     %zu (%s)\n", result.final_similarity,
                   result.final_similarity == 0 ? "full protection"
                                                : "partial protection");
  out += StrFormat("  gain evaluations: %llu\n",
                   static_cast<unsigned long long>(result.gain_evaluations));
  out += StrFormat("  selection time:   %.4fs\n", result.total_seconds);
  out += "  picks:\n";
  for (size_t i = 0; i < result.picks.size(); ++i) {
    const PickTrace& pick = result.picks[i];
    std::string target_note =
        pick.for_target == PickTrace::kNoTarget
            ? std::string("global")
            : StrFormat("target %zu", pick.for_target);
    out += StrFormat("    %3zu. delete (%u,%u)  gain=%zu  s->%zu  [%s]\n",
                     i + 1, result.protectors[i].u, result.protectors[i].v,
                     pick.realized_gain, pick.similarity_after,
                     target_note.c_str());
  }
  return out;
}

std::string SerializeDeletionPlan(const TppInstance& instance,
                                  const ProtectionResult& result) {
  std::string out = "# tpp deletion plan v1\n";
  for (const Edge& t : instance.targets) {
    out += StrFormat("target %u %u\n", t.u, t.v);
  }
  for (const Edge& p : result.protectors) {
    out += StrFormat("protector %u %u\n", p.u, p.v);
  }
  return out;
}

std::vector<Edge> DeletionPlan::AllDeletions() const {
  std::vector<Edge> all = targets;
  all.insert(all.end(), protectors.begin(), protectors.end());
  return all;
}

Result<DeletionPlan> ParseDeletionPlan(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  bool header_seen = false;
  DeletionPlan plan;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = StripWhitespace(line);
    if (sv.empty()) continue;
    if (sv[0] == '#') {
      if (!header_seen && sv.find("tpp deletion plan") == std::string::npos) {
        return Status::InvalidArgument("not a tpp deletion plan file");
      }
      header_seen = true;
      continue;
    }
    std::vector<std::string_view> parts = SplitNonEmpty(sv, " \t");
    if (parts.size() != 3 || (parts[0] != "target" &&
                              parts[0] != "protector")) {
      return Status::InvalidArgument(
          StrFormat("line %zu: expected 'target|protector <u> <v>'",
                    line_no));
    }
    Result<int64_t> u = ParseInt64(parts[1]);
    Result<int64_t> v = ParseInt64(parts[2]);
    if (!u.ok()) return u.status();
    if (!v.ok()) return v.status();
    if (*u < 0 || *v < 0 || *u == *v) {
      return Status::InvalidArgument(
          StrFormat("line %zu: invalid link (%lld,%lld)", line_no,
                    static_cast<long long>(*u),
                    static_cast<long long>(*v)));
    }
    Edge e(static_cast<graph::NodeId>(*u), static_cast<graph::NodeId>(*v));
    if (parts[0] == "target") {
      plan.targets.push_back(e);
    } else {
      plan.protectors.push_back(e);
    }
  }
  if (!header_seen) {
    return Status::InvalidArgument("missing '# tpp deletion plan' header");
  }
  return plan;
}

Status SaveDeletionPlan(const TppInstance& instance,
                        const ProtectionResult& result,
                        const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IoError("cannot open " + path + " for writing");
  f << SerializeDeletionPlan(instance, result);
  if (!f.good()) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Result<DeletionPlan> LoadDeletionPlan(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseDeletionPlan(buf.str());
}

Result<Graph> ApplyDeletionPlan(const Graph& original,
                                const DeletionPlan& plan) {
  Graph released = original;
  for (const Edge& e : plan.AllDeletions()) {
    Status s = released.RemoveEdge(e.u, e.v);
    if (!s.ok()) {
      return Status::FailedPrecondition(
          StrFormat("plan lists (%u,%u) but the graph lacks it", e.u, e.v));
    }
  }
  return released;
}

}  // namespace tpp::core
