#include "core/katz_defense.h"

#include <cmath>
#include <unordered_map>

#include "common/check.h"

namespace tpp::core {

using graph::Edge;
using graph::EdgeKey;
using graph::EdgeKeyU;
using graph::EdgeKeyV;
using graph::Graph;
using graph::MakeEdgeKey;
using graph::NodeId;

Result<double> TotalKatzScore(const Graph& g,
                              const std::vector<Edge>& targets,
                              const linkpred::KatzParams& params) {
  double total = 0.0;
  // Group targets by source endpoint so each DP sweep serves all targets
  // sharing it.
  std::unordered_map<NodeId, std::vector<NodeId>> by_source;
  for (const Edge& t : targets) by_source[t.u].push_back(t.v);
  for (const auto& [u, vs] : by_source) {
    TPP_ASSIGN_OR_RETURN(std::vector<double> scores,
                         linkpred::KatzScoresFrom(g, u, params));
    for (NodeId v : vs) total += scores[v];
  }
  return total;
}

namespace {

// First-order gain of deleting edge (a,b): the beta-weighted count of
// target walks that traverse it (in either direction), summed over
// targets. Exact when no walk repeats the edge.
double EstimateEdgeGain(
    const std::vector<std::vector<std::vector<double>>>& forward,
    const std::vector<std::vector<std::vector<double>>>& backward,
    const linkpred::KatzParams& params, NodeId a, NodeId b) {
  double gain = 0.0;
  const size_t kl = params.max_length;
  for (size_t t = 0; t < forward.size(); ++t) {
    const auto& f = forward[t];
    const auto& g = backward[t];
    double beta_pow = params.beta;
    for (size_t l = 1; l <= kl; ++l) {
      // Walks of length l through the edge at step i (1-based): the
      // prefix reaches one endpoint in i-1 steps, the suffix covers the
      // remaining l-i steps from the other endpoint.
      double through = 0.0;
      for (size_t i = 1; i <= l; ++i) {
        through += f[i - 1][a] * g[l - i][b];
        through += f[i - 1][b] * g[l - i][a];
      }
      gain += beta_pow * through;
      beta_pow *= params.beta;
    }
  }
  return gain;
}

}  // namespace

Result<KatzDefenseResult> GreedyKatzDefense(const TppInstance& instance,
                                            const KatzDefenseOptions& options) {
  if (options.katz.beta <= 0.0 || options.katz.beta >= 1.0) {
    return Status::InvalidArgument("Katz beta out of (0,1)");
  }
  KatzDefenseResult result;
  result.released = instance.released;
  Graph& g = result.released;
  const auto& targets = instance.targets;
  const size_t kl = options.katz.max_length;

  TPP_ASSIGN_OR_RETURN(result.initial_score,
                       TotalKatzScore(g, targets, options.katz));
  double current = result.initial_score;

  while (result.protectors.size() < options.budget &&
         current > options.stop_score) {
    // Walk tables per target: forward from u, backward from v (the graph
    // is undirected, so "backward" is just another forward table).
    std::vector<std::vector<std::vector<double>>> forward, backward;
    forward.reserve(targets.size());
    backward.reserve(targets.size());
    for (const Edge& t : targets) {
      TPP_ASSIGN_OR_RETURN(auto fu, linkpred::KatzWalkCounts(g, t.u, kl));
      TPP_ASSIGN_OR_RETURN(auto fv, linkpred::KatzWalkCounts(g, t.v, kl));
      forward.push_back(std::move(fu));
      backward.push_back(std::move(fv));
    }
    // Candidate edges: on some u->v walk of length <= max_length, i.e.
    // reachable from u within kl-1 AND from v within kl-1 (both endpoints).
    EdgeKey best_edge = 0;
    double best_gain = 0.0;
    for (const Edge& e : g.Edges()) {
      bool on_walk = false;
      for (size_t t = 0; t < targets.size() && !on_walk; ++t) {
        for (size_t i = 1; i <= kl && !on_walk; ++i) {
          for (size_t j = 0; i + j < kl + 1 && !on_walk; ++j) {
            if ((forward[t][i - 1][e.u] > 0 && backward[t][j][e.v] > 0) ||
                (forward[t][i - 1][e.v] > 0 && backward[t][j][e.u] > 0)) {
              on_walk = true;
            }
          }
        }
      }
      if (!on_walk) continue;
      double gain =
          EstimateEdgeGain(forward, backward, options.katz, e.u, e.v);
      if (gain > best_gain) {
        best_gain = gain;
        best_edge = e.Key();
      }
    }
    if (best_gain <= 0.0) break;  // no walk-carrying edge remains
    TPP_CHECK(g.RemoveEdgeKey(best_edge).ok());
    result.protectors.emplace_back(EdgeKeyU(best_edge), EdgeKeyV(best_edge));
    TPP_ASSIGN_OR_RETURN(current, TotalKatzScore(g, targets, options.katz));
    result.score_trajectory.push_back(current);
  }
  result.final_score = current;
  return result;
}

}  // namespace tpp::core
