// Engine: the similarity oracle the greedy algorithms run against.
//
// Two implementations share this contract:
//   * NaiveEngine  (naive_engine.h)   — recounts motifs on the live graph
//     for every gain query, reproducing the paper's cost model;
//   * IndexedEngine (indexed_engine.h) — answers from the precomputed
//     edge->instance incidence index (our scalable engine).
// Both must return identical values for every query; this is enforced by
// differential tests.

#ifndef TPP_CORE_ENGINE_H_
#define TPP_CORE_ENGINE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "motif/incidence_index.h"

namespace tpp::core {

/// Which edges a greedy algorithm may consider as protectors.
enum class CandidateScope {
  /// Every remaining edge of the released graph — the paper's base
  /// SGB/CT/WT-Greedy algorithms.
  kAllEdges,
  /// Only edges participating in at least one alive target subgraph
  /// (Lemma 5) — the scalable "-R" algorithms.
  kTargetSubgraphEdges,
};

/// Mutable similarity oracle for one TPP instance. Deletions are
/// irreversible; create a fresh engine to restart an experiment.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Number of targets |T|.
  virtual size_t NumTargets() const = 0;

  /// Current per-target similarity s(P, t).
  virtual size_t SimilarityOf(size_t t) = 0;

  /// Current total similarity s(P, T).
  virtual size_t TotalSimilarity() = 0;

  /// Dissimilarity gain of deleting `e` now: s(P,T) - s(P + e, T).
  /// Does not commit the deletion.
  virtual size_t Gain(graph::EdgeKey e) = 0;

  /// Gain split into the part benefiting target `t` (own) and everyone
  /// else (cross). own + cross == Gain(e).
  virtual motif::IncidenceIndex::SplitGain GainFor(graph::EdgeKey e,
                                                   size_t t) = 0;

  /// Per-target gains of deleting `e`: out[t] = s(P,t) - s(P + e, t).
  /// One evaluation yields the gain split for EVERY target, which is what
  /// keeps CT-Greedy at the same asymptotic cost as SGB-Greedy (the
  /// paper's O(k n m (log N)^2) analysis assumes this).
  virtual std::vector<size_t> GainVector(graph::EdgeKey e) = 0;

  /// Commits the deletion of `e` from the released graph. Returns the
  /// number of target subgraphs broken (== the gain it realized).
  virtual size_t DeleteEdge(graph::EdgeKey e) = 0;

  /// Candidate protector edges under `scope`, sorted ascending by key for
  /// deterministic tie-breaking. Already-deleted edges never appear.
  virtual std::vector<graph::EdgeKey> Candidates(CandidateScope scope) = 0;

  /// The current (phase-1 + committed deletions) graph; used by the random
  /// baselines and by utility analysis of the final release.
  virtual const graph::Graph& CurrentGraph() const = 0;

  /// Number of Gain/GainFor evaluations performed so far; the work metric
  /// reported by the running-time experiments.
  virtual uint64_t GainEvaluations() const = 0;
};

}  // namespace tpp::core

#endif  // TPP_CORE_ENGINE_H_
