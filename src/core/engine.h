// Engine: the similarity oracle the greedy algorithms run against.
//
// Two implementations share this contract:
//   * NaiveEngine  (naive_engine.h)   — recounts motifs on the live graph
//     for every gain query, reproducing the paper's cost model;
//   * IndexedEngine (indexed_engine.h) — answers from the precomputed
//     CSR incidence index (our scalable engine): Gain is an O(1) cached
//     alive-count lookup, GainVector scans the edge's short per-target
//     count segment, and DeleteEdge pays the index-maintenance cost once
//     per killed instance (see motif/incidence_index.h for the layout and
//     the alive-count invariant).
// Both must return identical values for every query; this is enforced by
// differential tests.
//
// Deletion contract: DeleteEdge on an edge that is absent from the current
// graph — never present, or already deleted — returns 0 and changes
// nothing. It must not CHECK-fail; greedy drivers and baselines rely on
// deletions being safely re-issuable.

#ifndef TPP_CORE_ENGINE_H_
#define TPP_CORE_ENGINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "motif/incidence_index.h"

namespace tpp::core {

/// Which edges a greedy algorithm may consider as protectors.
enum class CandidateScope {
  /// Every remaining edge of the released graph — the paper's base
  /// SGB/CT/WT-Greedy algorithms.
  kAllEdges,
  /// Only edges participating in at least one alive target subgraph
  /// (Lemma 5) — the scalable "-R" algorithms.
  kTargetSubgraphEdges,
};

/// Mutable similarity oracle for one TPP instance. Deletions are
/// irreversible; create a fresh engine to restart an experiment.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Number of targets |T|.
  virtual size_t NumTargets() const = 0;

  /// Current per-target similarity s(P, t).
  virtual size_t SimilarityOf(size_t t) = 0;

  /// Current total similarity s(P, T).
  virtual size_t TotalSimilarity() = 0;

  /// Dissimilarity gain of deleting `e` now: s(P,T) - s(P + e, T).
  /// Does not commit the deletion.
  virtual size_t Gain(graph::EdgeKey e) = 0;

  /// Batch form of Gain: out[i] == Gain(edges[i]), evaluated against the
  /// current graph state (no deletion is committed between elements).
  /// Counts one gain evaluation per queried edge. The base implementation
  /// is a serial loop; IndexedEngine overrides it with a partitioned
  /// evaluation on the shared process pool (common/thread_pool.h) so
  /// first-round full sweeps saturate cores (thread budget: --threads /
  /// tpp::GlobalThreadCount()).
  virtual std::vector<size_t> BatchGain(std::span<const graph::EdgeKey> edges) {
    std::vector<size_t> out;
    out.reserve(edges.size());
    for (graph::EdgeKey e : edges) out.push_back(Gain(e));
    return out;
  }

  /// Gain split into the part benefiting target `t` (own) and everyone
  /// else (cross). own + cross == Gain(e).
  virtual motif::IncidenceIndex::SplitGain GainFor(graph::EdgeKey e,
                                                   size_t t) = 0;

  /// Per-target gains of deleting `e`: out[t] = s(P,t) - s(P + e, t).
  /// One evaluation yields the gain split for EVERY target, which is what
  /// keeps CT-Greedy at the same asymptotic cost as SGB-Greedy (the
  /// paper's O(k n m (log N)^2) analysis assumes this).
  virtual std::vector<size_t> GainVector(graph::EdgeKey e) = 0;

  /// Commits the deletion of `e` from the released graph. Returns the
  /// number of target subgraphs broken (== the gain it realized); returns
  /// 0 without failing when `e` is absent or already deleted.
  virtual size_t DeleteEdge(graph::EdgeKey e) = 0;

  /// Candidate protector edges under `scope`, sorted ascending by key for
  /// deterministic tie-breaking. Already-deleted edges never appear.
  virtual std::vector<graph::EdgeKey> Candidates(CandidateScope scope) = 0;

  /// The whole query side of one eager greedy round: fills `edges` with
  /// Candidates(scope) and `gains` with the aligned Gain of each. Counts
  /// one gain evaluation per returned edge, exactly like the historical
  /// Candidates()+Gain() loop. Base implementation composes Candidates and
  /// BatchGain; IndexedEngine answers the restricted scope with a single
  /// hash-free scan of its cached alive-count array.
  virtual void CandidateGains(CandidateScope scope,
                              std::vector<graph::EdgeKey>* edges,
                              std::vector<size_t>* gains) {
    *edges = Candidates(scope);
    *gains = BatchGain(*edges);
  }

  /// The current (phase-1 + committed deletions) graph; used by the random
  /// baselines and by utility analysis of the final release.
  virtual const graph::Graph& CurrentGraph() const = 0;

  /// Number of gain evaluations performed so far; the work metric reported
  /// by the running-time experiments. Each Gain/GainFor/GainVector call
  /// counts 1, and the batch paths count one per queried edge (BatchGain)
  /// or per returned edge (CandidateGains), so every greedy round still
  /// reports |candidates| evaluations exactly as the historical serial
  /// loops did — the paper's work metric stays comparable across PRs.
  virtual uint64_t GainEvaluations() const = 0;
};

}  // namespace tpp::core

#endif  // TPP_CORE_ENGINE_H_
