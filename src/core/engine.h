// Engine: the similarity oracle the greedy algorithms run against.
//
// Two implementations share this contract:
//   * NaiveEngine  (naive_engine.h)   — recounts motifs on the live graph
//     for every gain query, reproducing the paper's cost model;
//   * IndexedEngine (indexed_engine.h) — answers from the precomputed
//     CSR incidence index (our scalable engine): Gain is an O(1) cached
//     alive-count lookup, GainVector scans the edge's short per-target
//     count segment, and DeleteEdge pays the index-maintenance cost once
//     per killed instance (see motif/incidence_index.h for the layout and
//     the alive-count invariant).
// Both must return identical values for every query; this is enforced by
// differential tests.
//
// Deletion contract: DeleteEdge on an edge that is absent from the current
// graph — never present, or already deleted — returns 0 and changes
// nothing. It must not CHECK-fail; greedy drivers and baselines rely on
// deletions being safely re-issuable.

#ifndef TPP_CORE_ENGINE_H_
#define TPP_CORE_ENGINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/engine_scope.h"
#include "core/gain_table.h"
#include "graph/graph.h"
#include "motif/incidence_index.h"

namespace tpp::core {

/// Mutable similarity oracle for one TPP instance. Deletions are
/// irreversible; create a fresh engine to restart an experiment.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Number of targets |T|.
  virtual size_t NumTargets() const = 0;

  /// Current per-target similarity s(P, t).
  virtual size_t SimilarityOf(size_t t) = 0;

  /// Current total similarity s(P, T).
  virtual size_t TotalSimilarity() = 0;

  /// Dissimilarity gain of deleting `e` now: s(P,T) - s(P + e, T).
  /// Does not commit the deletion.
  virtual size_t Gain(graph::EdgeKey e) = 0;

  /// Batch form of Gain: out[i] == Gain(edges[i]), evaluated against the
  /// current graph state (no deletion is committed between elements).
  /// Counts one gain evaluation per queried edge. The base implementation
  /// is a serial loop; IndexedEngine overrides it with a partitioned
  /// evaluation on the shared process pool (common/thread_pool.h) so
  /// first-round full sweeps saturate cores (thread budget: --threads /
  /// tpp::GlobalThreadCount()).
  virtual std::vector<size_t> BatchGain(std::span<const graph::EdgeKey> edges) {
    std::vector<size_t> out;
    out.reserve(edges.size());
    for (graph::EdgeKey e : edges) out.push_back(Gain(e));
    return out;
  }

  /// Gain split into the part benefiting target `t` (own) and everyone
  /// else (cross). own + cross == Gain(e).
  virtual motif::IncidenceIndex::SplitGain GainFor(graph::EdgeKey e,
                                                   size_t t) = 0;

  /// Per-target gains of deleting `e`: out[t] = s(P,t) - s(P + e, t).
  /// One evaluation yields the gain split for EVERY target, which is what
  /// keeps CT-Greedy at the same asymptotic cost as SGB-Greedy (the
  /// paper's O(k n m (log N)^2) analysis assumes this).
  virtual std::vector<size_t> GainVector(graph::EdgeKey e) = 0;

  /// Allocation-free form of GainVector: writes the per-target gains into
  /// `out` (size NumTargets()). Counts one gain evaluation, exactly like
  /// GainVector — the hoisted CT/WT cold loops reuse one buffer across the
  /// whole run through this. The base implementation copies out of
  /// GainVector; engines override it to fill in place.
  virtual void GainVectorInto(graph::EdgeKey e, std::span<size_t> out) {
    std::vector<size_t> diffs = GainVector(e);
    std::copy(diffs.begin(), diffs.end(), out.begin());
  }

  /// Batch form of GainVector: fills `out` with edges.size() rows of
  /// NumTargets() gains, row-major (resized to edges.size()*NumTargets()).
  /// Evaluated against the current graph state; counts one gain evaluation
  /// per queried edge. The base implementation is a serial loop;
  /// IndexedEngine overrides it with a pure-read fan-out on the shared
  /// pool (it flushes deferred index maintenance once, then every row fill
  /// is a read) — the wide-dirty-set path of incremental rounds.
  virtual void BatchGainVector(std::span<const graph::EdgeKey> edges,
                               std::vector<uint32_t>* out);

  /// Commits the deletion of `e` from the released graph. Returns the
  /// number of target subgraphs broken (== the gain it realized); returns
  /// 0 without failing when `e` is absent or already deleted.
  virtual size_t DeleteEdge(graph::EdgeKey e) = 0;

  /// Candidate protector edges under `scope`, sorted ascending by key for
  /// deterministic tie-breaking. Already-deleted edges never appear.
  virtual std::vector<graph::EdgeKey> Candidates(CandidateScope scope) = 0;

  /// Fill form of Candidates: reuses `out`'s capacity across rounds. Same
  /// contents and accounting (none) as Candidates.
  virtual void CandidatesInto(CandidateScope scope,
                              std::vector<graph::EdgeKey>* out) {
    *out = Candidates(scope);
  }

  /// The whole query side of one eager greedy round: fills `edges` with
  /// Candidates(scope) and `gains` with the aligned Gain of each. Counts
  /// one gain evaluation per returned edge, exactly like the historical
  /// Candidates()+Gain() loop. Base implementation composes Candidates and
  /// BatchGain; IndexedEngine answers the restricted scope with a single
  /// hash-free scan of its cached alive-count array.
  virtual void CandidateGains(CandidateScope scope,
                              std::vector<graph::EdgeKey>* edges,
                              std::vector<size_t>* gains) {
    *edges = Candidates(scope);
    *gains = BatchGain(*edges);
  }

  /// The whole query side of one INCREMENTAL greedy round. Returns a view
  /// whose totals (and per-target rows, when `per_target` is set) reflect
  /// the current graph state, re-evaluating only candidates dirtied by the
  /// deletions committed since the previous BeginRound of the same session
  /// (same scope and per_target). The view's `dirty` lists exactly those
  /// row indices, so selection layers can patch their own cached
  /// aggregates instead of rescanning per-target data.
  ///
  /// Accounting: counts `num_candidates` gain evaluations — one per LIVE
  /// candidate, identical to the cold Candidates()+GainVector()/Gain()
  /// sweep it replaces, regardless of how few rows were physically
  /// re-evaluated. The paper's work metric therefore reports the same
  /// numbers on both paths; only wall time changes.
  ///
  /// The base implementation is the trivial always-dirty fallback
  /// (NaiveEngine uses it as-is): it rebuilds the candidate universe and
  /// re-evaluates every gain each round through the counting query APIs,
  /// returning all_dirty views — bit-identical results, cold-sweep cost.
  /// IndexedEngine overrides it with dirty-set maintenance on its
  /// persistent GainTable.
  virtual const RoundGains& BeginRound(CandidateScope scope, bool per_target);

  /// The current (phase-1 + committed deletions) graph; used by the random
  /// baselines and by utility analysis of the final release.
  virtual const graph::Graph& CurrentGraph() const = 0;

  /// Number of gain evaluations performed so far; the work metric reported
  /// by the running-time experiments. Each Gain/GainFor/GainVector call
  /// counts 1, the batch paths count one per queried edge (BatchGain,
  /// BatchGainVector) or per returned edge (CandidateGains), and
  /// BeginRound counts one per live candidate, so every greedy round still
  /// reports |candidates| evaluations exactly as the historical serial
  /// loops did — the paper's work metric stays comparable across PRs.
  virtual uint64_t GainEvaluations() const = 0;

 protected:
  /// Storage behind the base-class BeginRound fallback; engines that
  /// override BeginRound carry their own table instead.
  GainTable fallback_table_;
};

}  // namespace tpp::core

#endif  // TPP_CORE_ENGINE_H_
