// CandidateScope: which edges a greedy algorithm may consider. Split out
// of core/engine.h so the gain-table types (core/gain_table.h) can name a
// scope without pulling in the whole Engine interface.

#ifndef TPP_CORE_ENGINE_SCOPE_H_
#define TPP_CORE_ENGINE_SCOPE_H_

namespace tpp::core {

/// Which edges a greedy algorithm may consider as protectors.
enum class CandidateScope {
  /// Every remaining edge of the released graph — the paper's base
  /// SGB/CT/WT-Greedy algorithms.
  kAllEdges,
  /// Only edges participating in at least one alive target subgraph
  /// (Lemma 5) — the scalable "-R" algorithms.
  kTargetSubgraphEdges,
};

}  // namespace tpp::core

#endif  // TPP_CORE_ENGINE_SCOPE_H_
