// IndexedEngine: CSR-incidence-index-backed similarity oracle.

#ifndef TPP_CORE_INDEXED_ENGINE_H_
#define TPP_CORE_INDEXED_ENGINE_H_

#include <functional>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "core/problem.h"
#include "motif/incidence_index.h"

namespace tpp::core {

/// Engine that enumerates all target subgraphs once at construction and
/// then answers every query from the CSR IncidenceIndex: Gain is an O(1)
/// cached-count lookup, GainFor/GainVector scan one short per-target count
/// segment, and DeleteEdge does work proportional to the instances it
/// kills. Returns exactly the same values as NaiveEngine
/// (differential-tested) at a fraction of the cost; this is the engine the
/// benchmarks use wherever the paper's own timing is not the object of
/// study.
class IndexedEngine : public Engine {
 public:
  /// Builds the incidence index (parallel over the shared pool at the
  /// global thread budget; bit-identical at any thread count); fails if a
  /// target is still present in the released graph.
  static Result<IndexedEngine> Create(const TppInstance& instance);

  /// Create with an explicit index-build thread budget and optional
  /// per-stage build timings (motif::IncidenceIndex::BuildStats).
  static Result<IndexedEngine> Create(
      const TppInstance& instance,
      const motif::IncidenceIndex::BuildOptions& build_options,
      motif::IncidenceIndex::BuildStats* build_stats = nullptr);

  /// Wraps an already-built index around `instance`'s released graph —
  /// the warm-start path: the index came from a snapshot file
  /// (motif/index_snapshot.h) instead of a cold Build. Fails when the
  /// index's target count does not match the instance's.
  static Result<IndexedEngine> Adopt(const TppInstance& instance,
                                     motif::IncidenceIndex index);

  size_t NumTargets() const override { return index_.NumTargets(); }
  size_t SimilarityOf(size_t t) override { return index_.AliveForTarget(t); }
  size_t TotalSimilarity() override { return index_.TotalAlive(); }
  size_t Gain(graph::EdgeKey e) override {
    ++gain_evals_;
    return index_.Gain(e);
  }
  /// Partitioned parallel batch evaluation on the shared process pool
  /// (common/thread_pool.h; budget: set_threads(), default
  /// tpp::GlobalThreadCount(), i.e. the --threads flag). Safe because gain
  /// queries are pure reads of the index. Falls back to a serial loop for
  /// small batches or a thread budget of 1.
  std::vector<size_t> BatchGain(std::span<const graph::EdgeKey> edges)
      override;
  motif::IncidenceIndex::SplitGain GainFor(graph::EdgeKey e,
                                           size_t t) override {
    ++gain_evals_;
    return index_.GainFor(e, t);
  }
  std::vector<size_t> GainVector(graph::EdgeKey e) override;
  /// In-place GainVector: zero-fill plus one pass over the edge's CSR-2
  /// segment, no allocation. Counts one evaluation.
  void GainVectorInto(graph::EdgeKey e, std::span<size_t> out) override;
  /// Parallel pure-read row fill on the shared pool: deferred index
  /// maintenance is flushed once up front, then every row is a read of
  /// the edge's CSR-2 segment into a disjoint output slice. Falls back to
  /// a serial loop for small batches (same heuristic as BatchGain).
  void BatchGainVector(std::span<const graph::EdgeKey> edges,
                       std::vector<uint32_t>* out) override;
  size_t DeleteEdge(graph::EdgeKey e) override;
  std::vector<graph::EdgeKey> Candidates(CandidateScope scope) override;
  void CandidatesInto(CandidateScope scope,
                      std::vector<graph::EdgeKey>* out) override;
  /// Restricted scope: one hash-free scan of the index's alive-count
  /// array produces the candidate set and every gain simultaneously (see
  /// IncidenceIndex::AliveCandidateGains). Full-edge scope falls back to
  /// the Candidates+BatchGain composition.
  void CandidateGains(CandidateScope scope,
                      std::vector<graph::EdgeKey>* edges,
                      std::vector<size_t>* gains) override;
  /// Incremental rounds on the persistent gain table. The candidate
  /// universe is static for a whole session — the interned edge set
  /// (restricted scope, where totals alias the index's eagerly-maintained
  /// alive counts and need no per-round work at all) or the graph's edge
  /// set at session start (full scope) — and per-target rows are patched
  /// only for the dirty ids the round's deferred-count flush reports,
  /// through the parallel row fill when the dirty set is wide. Charges
  /// one evaluation per live candidate (see Engine::BeginRound).
  const RoundGains& BeginRound(CandidateScope scope,
                               bool per_target) override;
  const graph::Graph& CurrentGraph() const override { return g_; }
  uint64_t GainEvaluations() const override { return gain_evals_; }

  /// Cheap private copy for shared-instance batching: duplicates the
  /// current graph and the index's alive-count state so the clone can
  /// commit deletions without touching this engine. Cloning a
  /// freshly-built engine is indistinguishable from building a second
  /// engine from the same instance — same graph, same index contents,
  /// work counter at zero — at the cost of a flat-array copy instead of a
  /// full motif re-enumeration. The thread budget is inherited; any
  /// incremental round session is RESET on the copy (the clone's first
  /// BeginRound is a full evaluation), so prototype engines shared by the
  /// batch pipeline never leak round state into per-request clones.
  IndexedEngine Clone() const {
    IndexedEngine copy(*this);
    copy.gain_evals_ = 0;
    copy.table_.Reset();
    copy.session_dirty_.clear();
    copy.row_ids_ = {};
    copy.id_to_row_ = {};
    copy.session_flush_epoch_ = 0;
    return copy;
  }

  /// Applies a committed base-graph edit (graph::Graph::EditSession
  /// delta) to this engine IN PLACE: advances the engine's graph copy and
  /// repairs the incidence index around the delta neighborhood
  /// (motif::IncidenceIndex::ApplyGraphDelta) instead of re-enumerating —
  /// the result answers every query exactly as an engine freshly built
  /// from the edited graph would (plans come out byte-identical;
  /// bench/graph_mutation.cc checks this every rep). Requires a FRESH
  /// engine — no deletions committed yet (prototype engines between
  /// batches, not per-request clones mid-solve); errors leave both graph
  /// and index unchanged. Any incremental round session is reset, exactly
  /// as on Clone. The delta must not touch a target link: edits to target
  /// links change the problem itself, so the owning service rebuilds
  /// those groups instead (service/instance_repository.h). `cancel`
  /// (optional) is polled before the repair mutates anything; once the
  /// repair starts it runs to completion.
  Status ApplyEdit(const graph::GraphDelta& delta,
                   const CancellationToken* cancel = nullptr);

  /// Overrides the worker-thread budget for BatchGain on this engine and
  /// disables the batch-size heuristic (exactly this many workers, capped
  /// by the batch length); 0 (the default) defers to
  /// tpp::GlobalThreadCount(), which only parallelizes batches large
  /// enough to amortize thread spawns.
  void set_threads(int threads) { threads_ = threads; }

  /// Access to the underlying index (for reporting and differential
  /// tests). Non-const because count-level reads flush the index's
  /// deferred maintenance; the const overload serves flush-free
  /// inspection (BitIdentical, instances()).
  motif::IncidenceIndex& index() { return index_; }
  const motif::IncidenceIndex& index() const { return index_; }

 private:
  IndexedEngine(graph::Graph g, motif::IncidenceIndex index,
                std::vector<graph::Edge> targets, motif::MotifKind motif)
      : g_(std::move(g)),
        index_(std::move(index)),
        targets_(std::move(targets)),
        motif_(motif) {}

  // Shared worker-sizing and dispatch of the row-granular parallel jobs
  // (FillGainRows, BeginRound's dirty-row patch): honors set_threads()
  // exactly, otherwise parallelizes only jobs big enough to amortize the
  // fan-out (kMinRowsPerThread).
  void ParallelRowJob(size_t n,
                      const std::function<void(size_t, size_t)>& body);

  // Parallel CSR-2 row fill behind BatchGainVector and the dirty-row
  // refresh of BeginRound: ids[i] is written to out[i * stride] (kNoEdge
  // ids produce zero rows). Flushes deferred maintenance, then fans out.
  void FillGainRows(std::span<const uint32_t> ids, size_t stride,
                    uint32_t* out);

  // (Re)starts an incremental round session for (scope, per_target).
  void InitRoundSession(CandidateScope scope, bool per_target);

  graph::Graph g_;
  motif::IncidenceIndex index_;
  // Build identity retained for ApplyEdit: the index repair re-derives
  // created instances per target, and the index itself only records the
  // motif's arity.
  std::vector<graph::Edge> targets_;
  motif::MotifKind motif_ = motif::MotifKind::kTriangle;
  uint64_t gain_evals_ = 0;
  int threads_ = 0;

  // Incremental round session state (see BeginRound). table_.edges /
  // totals stay empty under the restricted scope: the view aliases the
  // index's interned key and alive-count arrays directly.
  GainTable table_;
  std::vector<uint32_t> session_dirty_;  // flush-emitted ids, per round
  std::vector<uint32_t> row_ids_;    // full scope: row -> interned id
  std::vector<uint32_t> id_to_row_;  // full scope: interned id -> row
  // Index count-flush epoch as of this session's last BeginRound; a
  // mismatch means a non-dirty flush intervened (its dirty set is lost)
  // and the session restarts. See BeginRound.
  uint64_t session_flush_epoch_ = 0;
};

}  // namespace tpp::core

#endif  // TPP_CORE_INDEXED_ENGINE_H_
