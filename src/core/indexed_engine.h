// IndexedEngine: CSR-incidence-index-backed similarity oracle.

#ifndef TPP_CORE_INDEXED_ENGINE_H_
#define TPP_CORE_INDEXED_ENGINE_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "core/problem.h"
#include "motif/incidence_index.h"

namespace tpp::core {

/// Engine that enumerates all target subgraphs once at construction and
/// then answers every query from the CSR IncidenceIndex: Gain is an O(1)
/// cached-count lookup, GainFor/GainVector scan one short per-target count
/// segment, and DeleteEdge does work proportional to the instances it
/// kills. Returns exactly the same values as NaiveEngine
/// (differential-tested) at a fraction of the cost; this is the engine the
/// benchmarks use wherever the paper's own timing is not the object of
/// study.
class IndexedEngine : public Engine {
 public:
  /// Builds the incidence index (parallel over the shared pool at the
  /// global thread budget; bit-identical at any thread count); fails if a
  /// target is still present in the released graph.
  static Result<IndexedEngine> Create(const TppInstance& instance);

  /// Create with an explicit index-build thread budget and optional
  /// per-stage build timings (motif::IncidenceIndex::BuildStats).
  static Result<IndexedEngine> Create(
      const TppInstance& instance,
      const motif::IncidenceIndex::BuildOptions& build_options,
      motif::IncidenceIndex::BuildStats* build_stats = nullptr);

  size_t NumTargets() const override { return index_.NumTargets(); }
  size_t SimilarityOf(size_t t) override { return index_.AliveForTarget(t); }
  size_t TotalSimilarity() override { return index_.TotalAlive(); }
  size_t Gain(graph::EdgeKey e) override {
    ++gain_evals_;
    return index_.Gain(e);
  }
  /// Partitioned parallel batch evaluation on the shared process pool
  /// (common/thread_pool.h; budget: set_threads(), default
  /// tpp::GlobalThreadCount(), i.e. the --threads flag). Safe because gain
  /// queries are pure reads of the index. Falls back to a serial loop for
  /// small batches or a thread budget of 1.
  std::vector<size_t> BatchGain(std::span<const graph::EdgeKey> edges)
      override;
  motif::IncidenceIndex::SplitGain GainFor(graph::EdgeKey e,
                                           size_t t) override {
    ++gain_evals_;
    return index_.GainFor(e, t);
  }
  std::vector<size_t> GainVector(graph::EdgeKey e) override;
  size_t DeleteEdge(graph::EdgeKey e) override;
  std::vector<graph::EdgeKey> Candidates(CandidateScope scope) override;
  /// Restricted scope: one hash-free scan of the index's alive-count
  /// array produces the candidate set and every gain simultaneously (see
  /// IncidenceIndex::AliveCandidateGains). Full-edge scope falls back to
  /// the Candidates+BatchGain composition.
  void CandidateGains(CandidateScope scope,
                      std::vector<graph::EdgeKey>* edges,
                      std::vector<size_t>* gains) override;
  const graph::Graph& CurrentGraph() const override { return g_; }
  uint64_t GainEvaluations() const override { return gain_evals_; }

  /// Cheap private copy for shared-instance batching: duplicates the
  /// current graph and the index's alive-count state so the clone can
  /// commit deletions without touching this engine. Cloning a
  /// freshly-built engine is indistinguishable from building a second
  /// engine from the same instance — same graph, same index contents,
  /// work counter at zero — at the cost of a flat-array copy instead of a
  /// full motif re-enumeration. The thread budget is inherited.
  IndexedEngine Clone() const {
    IndexedEngine copy(*this);
    copy.gain_evals_ = 0;
    return copy;
  }

  /// Overrides the worker-thread budget for BatchGain on this engine and
  /// disables the batch-size heuristic (exactly this many workers, capped
  /// by the batch length); 0 (the default) defers to
  /// tpp::GlobalThreadCount(), which only parallelizes batches large
  /// enough to amortize thread spawns.
  void set_threads(int threads) { threads_ = threads; }

  /// Read access to the underlying index (for reporting).
  const motif::IncidenceIndex& index() const { return index_; }

 private:
  IndexedEngine(graph::Graph g, motif::IncidenceIndex index)
      : g_(std::move(g)), index_(std::move(index)) {}

  graph::Graph g_;
  motif::IncidenceIndex index_;
  uint64_t gain_evals_ = 0;
  int threads_ = 0;
};

}  // namespace tpp::core

#endif  // TPP_CORE_INDEXED_ENGINE_H_
