// IndexedEngine: incidence-index-backed similarity oracle.

#ifndef TPP_CORE_INDEXED_ENGINE_H_
#define TPP_CORE_INDEXED_ENGINE_H_

#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "core/problem.h"
#include "motif/incidence_index.h"

namespace tpp::core {

/// Engine that enumerates all target subgraphs once at construction and
/// then answers every query from the IncidenceIndex. Returns exactly the
/// same values as NaiveEngine (differential-tested) at a fraction of the
/// cost; this is the engine the benchmarks use wherever the paper's own
/// timing is not the object of study.
class IndexedEngine : public Engine {
 public:
  /// Builds the incidence index; fails if a target is still present in the
  /// released graph.
  static Result<IndexedEngine> Create(const TppInstance& instance);

  size_t NumTargets() const override { return index_.NumTargets(); }
  size_t SimilarityOf(size_t t) override { return index_.AliveForTarget(t); }
  size_t TotalSimilarity() override { return index_.TotalAlive(); }
  size_t Gain(graph::EdgeKey e) override {
    ++gain_evals_;
    return index_.Gain(e);
  }
  motif::IncidenceIndex::SplitGain GainFor(graph::EdgeKey e,
                                           size_t t) override {
    ++gain_evals_;
    return index_.GainFor(e, t);
  }
  std::vector<size_t> GainVector(graph::EdgeKey e) override;
  size_t DeleteEdge(graph::EdgeKey e) override;
  std::vector<graph::EdgeKey> Candidates(CandidateScope scope) override;
  const graph::Graph& CurrentGraph() const override { return g_; }
  uint64_t GainEvaluations() const override { return gain_evals_; }

  /// Read access to the underlying index (for reporting).
  const motif::IncidenceIndex& index() const { return index_; }

 private:
  IndexedEngine(graph::Graph g, motif::IncidenceIndex index)
      : g_(std::move(g)), index_(std::move(index)) {}

  graph::Graph g_;
  motif::IncidenceIndex index_;
  uint64_t gain_evals_ = 0;
};

}  // namespace tpp::core

#endif  // TPP_CORE_INDEXED_ENGINE_H_
