// The Extended Discussion's alternative mechanisms (paper §VI-D): link
// addition and random link switching.
//
// The paper argues these are NOT workable for TPP because the
// dissimilarity function loses monotonicity: adding a link can only
// create new target subgraphs (never break one), and a switch is a
// deletion plus an addition, so its net effect can be negative. These
// implementations exist to demonstrate that argument empirically (see
// tests/alternatives_test.cc) and to serve as honest baselines.

#ifndef TPP_CORE_ALTERNATIVES_H_
#define TPP_CORE_ALTERNATIVES_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/problem.h"

namespace tpp::core {

/// Outcome of an addition/switch perturbation.
struct PerturbationResult {
  graph::Graph graph{0};              ///< the perturbed released graph
  std::vector<graph::Edge> added;     ///< links inserted
  std::vector<graph::Edge> deleted;   ///< links removed
  size_t similarity_before = 0;       ///< s(T) on the phase-1 graph
  size_t similarity_after = 0;        ///< s(T) on the perturbed graph
};

/// Adds `k` uniform random non-links (never re-adding a target link).
/// Addition can only create target subgraphs, so
/// similarity_after >= similarity_before always holds.
Result<PerturbationResult> RandomLinkAddition(const TppInstance& instance,
                                              size_t k, Rng& rng);

/// Random switching (paper's two-step description): delete `k` uniform
/// random existing links, then add `k` uniform random non-links (avoiding
/// targets). The deletion half may break target subgraphs while the
/// addition half may create them, so the net similarity change has no
/// sign guarantee — the paper's non-monotonicity argument.
Result<PerturbationResult> RandomLinkSwitch(const TppInstance& instance,
                                            size_t k, Rng& rng);

}  // namespace tpp::core

#endif  // TPP_CORE_ALTERNATIVES_H_
