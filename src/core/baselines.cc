#include "core/baselines.h"

#include "common/timer.h"
#include "graph/edge.h"

namespace tpp::core {

using graph::EdgeKey;
using graph::EdgeKeyU;
using graph::EdgeKeyV;

namespace {

Result<ProtectionResult> RandomFromScope(Engine& engine, size_t budget,
                                         CandidateScope scope, Rng& rng) {
  WallTimer timer;
  ProtectionResult result;
  result.initial_similarity = engine.TotalSimilarity();
  while (result.protectors.size() < budget) {
    std::vector<EdgeKey> candidates = engine.Candidates(scope);
    if (candidates.empty()) break;
    EdgeKey e = candidates[rng.UniformIndex(candidates.size())];
    size_t realized = engine.DeleteEdge(e);
    PickTrace trace;
    trace.edge = e;
    trace.realized_gain = realized;
    trace.for_target = PickTrace::kNoTarget;
    trace.similarity_after = engine.TotalSimilarity();
    trace.cumulative_seconds = timer.Seconds();
    result.picks.push_back(trace);
    result.protectors.emplace_back(EdgeKeyU(e), EdgeKeyV(e));
  }
  result.final_similarity = engine.TotalSimilarity();
  result.gain_evaluations = engine.GainEvaluations();
  result.total_seconds = timer.Seconds();
  return result;
}

}  // namespace

Result<ProtectionResult> RandomDeletion(Engine& engine, size_t budget,
                                        Rng& rng) {
  return RandomFromScope(engine, budget, CandidateScope::kAllEdges, rng);
}

Result<ProtectionResult> RandomDeletionFromTargetSubgraphs(Engine& engine,
                                                           size_t budget,
                                                           Rng& rng) {
  return RandomFromScope(engine, budget, CandidateScope::kTargetSubgraphEdges,
                         rng);
}

}  // namespace tpp::core
