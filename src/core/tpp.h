// Umbrella header for the TPP core library.
//
// Typical use:
//
//   #include "core/tpp.h"
//
//   tpp::Rng rng(42);
//   auto targets = tpp::core::SampleTargets(g, 20, rng).value();
//   auto inst = tpp::core::MakeInstance(g, targets,
//                                       tpp::motif::MotifKind::kTriangle)
//                   .value();
//   auto engine = tpp::core::IndexedEngine::Create(inst).value();
//   auto result = tpp::core::SgbGreedy(engine, /*budget=*/10).value();
//   // result.protectors are the links to delete before release.

#ifndef TPP_CORE_TPP_H_
#define TPP_CORE_TPP_H_

#include "core/alternatives.h"   // IWYU pragma: export
#include "core/baselines.h"      // IWYU pragma: export
#include "core/budget.h"         // IWYU pragma: export
#include "core/engine.h"         // IWYU pragma: export
#include "core/exhaustive.h"     // IWYU pragma: export
#include "core/greedy.h"         // IWYU pragma: export
#include "core/indexed_engine.h" // IWYU pragma: export
#include "core/katz_defense.h"   // IWYU pragma: export
#include "core/naive_engine.h"   // IWYU pragma: export
#include "core/node_privacy.h"   // IWYU pragma: export
#include "core/problem.h"        // IWYU pragma: export
#include "core/report.h"         // IWYU pragma: export
#include "core/solver.h"         // IWYU pragma: export
#include "core/weighted.h"       // IWYU pragma: export

#endif  // TPP_CORE_TPP_H_
