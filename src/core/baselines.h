// The paper's two baseline protector selections (§VI-A).

#ifndef TPP_CORE_BASELINES_H_
#define TPP_CORE_BASELINES_H_

#include "common/result.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/greedy.h"

namespace tpp::core {

/// RD: deletes `budget` edges chosen uniformly at random from the remaining
/// edges of the released graph.
Result<ProtectionResult> RandomDeletion(Engine& engine, size_t budget,
                                        Rng& rng);

/// RDT: deletes `budget` edges chosen uniformly at random from the edges
/// that participate in at least one alive target subgraph; stops early if
/// no such edge remains.
Result<ProtectionResult> RandomDeletionFromTargetSubgraphs(Engine& engine,
                                                           size_t budget,
                                                           Rng& rng);

}  // namespace tpp::core

#endif  // TPP_CORE_BASELINES_H_
