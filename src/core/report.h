// Protection-plan reporting and persistence.
//
// A deletion plan (the protector list) is the artifact a graph owner
// actually deploys; these helpers render it for audit and round-trip it
// through a stable on-disk format.

#ifndef TPP_CORE_REPORT_H_
#define TPP_CORE_REPORT_H_

#include <string>

#include "common/result.h"
#include "core/greedy.h"
#include "core/problem.h"

namespace tpp::core {

/// Renders a human-readable audit report: instance summary, per-pick
/// trace, and final protection state.
std::string FormatProtectionReport(const TppInstance& instance,
                                   const ProtectionResult& result);

/// Serializes the deletion plan (targets + protectors) to a text format:
///   # tpp deletion plan v1
///   target <u> <v>
///   protector <u> <v>
/// Applying a plan to the original graph (deleting every listed link)
/// produces the releasable graph.
std::string SerializeDeletionPlan(const TppInstance& instance,
                                  const ProtectionResult& result);

/// A parsed deletion plan.
struct DeletionPlan {
  std::vector<graph::Edge> targets;
  std::vector<graph::Edge> protectors;

  /// All links to delete before release, targets first.
  std::vector<graph::Edge> AllDeletions() const;
};

/// Parses a plan serialized by SerializeDeletionPlan. Errors on malformed
/// lines or an unknown header.
Result<DeletionPlan> ParseDeletionPlan(const std::string& text);

/// File round-trip helpers.
Status SaveDeletionPlan(const TppInstance& instance,
                        const ProtectionResult& result,
                        const std::string& path);
Result<DeletionPlan> LoadDeletionPlan(const std::string& path);

/// Applies a plan to a copy of `original`: deletes every target and
/// protector. Errors if a listed link is absent (plan/graph mismatch).
Result<graph::Graph> ApplyDeletionPlan(const graph::Graph& original,
                                       const DeletionPlan& plan);

}  // namespace tpp::core

#endif  // TPP_CORE_REPORT_H_
