// NaiveEngine: recount-based similarity oracle (paper-faithful cost model).

#ifndef TPP_CORE_NAIVE_ENGINE_H_
#define TPP_CORE_NAIVE_ENGINE_H_

#include <memory>
#include <span>
#include <vector>

#include "core/engine.h"
#include "core/problem.h"

namespace tpp::core {

/// Engine that answers every gain query by temporarily removing the edge
/// and re-enumerating target subgraphs on the live graph, exactly the cost
/// profile the paper analyzes (O(n (log N)^2) per query). Used to reproduce
/// the running-time experiments (Figs. 5-6); for everything else prefer
/// IndexedEngine, which returns identical values faster.
class NaiveEngine : public Engine {
 public:
  /// Copies the released graph out of `instance`.
  explicit NaiveEngine(const TppInstance& instance);

  size_t NumTargets() const override { return targets_.size(); }
  size_t SimilarityOf(size_t t) override;
  size_t TotalSimilarity() override;
  size_t Gain(graph::EdgeKey e) override;
  /// Serial fallback: evaluates one candidate at a time through the
  /// recount path, preserving the paper's per-query cost model (timing
  /// experiments must not be accelerated by threading).
  std::vector<size_t> BatchGain(std::span<const graph::EdgeKey> edges)
      override {
    return Engine::BatchGain(edges);
  }
  motif::IncidenceIndex::SplitGain GainFor(graph::EdgeKey e,
                                           size_t t) override;
  std::vector<size_t> GainVector(graph::EdgeKey e) override;
  /// In-place recount: same temporary-deletion sweep as GainVector,
  /// written straight into `out` — the hoisted cold CT/WT loops reuse one
  /// buffer instead of allocating a vector per (candidate, round).
  void GainVectorInto(graph::EdgeKey e, std::span<size_t> out) override;
  size_t DeleteEdge(graph::EdgeKey e) override;
  std::vector<graph::EdgeKey> Candidates(CandidateScope scope) override;
  // BeginRound is intentionally NOT overridden: the base class's trivial
  // always-dirty fallback re-enumerates every candidate's gain each round
  // through the counting recount queries above, which is exactly the
  // paper's cost model — incremental callers get bit-identical picks and
  // work accounting, and the timing experiments stay honest.
  const graph::Graph& CurrentGraph() const override { return g_; }
  uint64_t GainEvaluations() const override { return gain_evals_; }

 private:
  // Recomputes the cached per-target similarity vector if dirty.
  void RefreshSimilarities();

  graph::Graph g_;
  std::vector<graph::Edge> targets_;
  motif::MotifKind motif_;
  std::vector<size_t> sims_;  // cached s(P, t), valid when !dirty_
  bool dirty_ = true;
  uint64_t gain_evals_ = 0;
};

}  // namespace tpp::core

#endif  // TPP_CORE_NAIVE_ENGINE_H_
