#include "core/naive_engine.h"

#include <numeric>
#include <unordered_set>

#include "common/check.h"
#include "motif/enumerate.h"

namespace tpp::core {

using graph::EdgeKey;
using graph::EdgeKeyU;
using graph::EdgeKeyV;

NaiveEngine::NaiveEngine(const TppInstance& instance)
    : g_(instance.released),
      targets_(instance.targets),
      motif_(instance.motif) {}

void NaiveEngine::RefreshSimilarities() {
  if (!dirty_) return;
  sims_.resize(targets_.size());
  for (size_t t = 0; t < targets_.size(); ++t) {
    sims_[t] = motif::CountTargetSubgraphs(g_, targets_[t], motif_);
  }
  dirty_ = false;
}

size_t NaiveEngine::SimilarityOf(size_t t) {
  TPP_CHECK_LT(t, targets_.size());
  RefreshSimilarities();
  return sims_[t];
}

size_t NaiveEngine::TotalSimilarity() {
  RefreshSimilarities();
  return std::accumulate(sims_.begin(), sims_.end(), size_t{0});
}

size_t NaiveEngine::Gain(EdgeKey e) {
  size_t total = 0;
  for (size_t diff : GainVector(e)) total += diff;
  return total;
}

motif::IncidenceIndex::SplitGain NaiveEngine::GainFor(EdgeKey e, size_t t) {
  motif::IncidenceIndex::SplitGain gain;
  std::vector<size_t> diffs = GainVector(e);
  for (size_t i = 0; i < diffs.size(); ++i) {
    if (i == t) {
      gain.own += diffs[i];
    } else {
      gain.cross += diffs[i];
    }
  }
  return gain;
}

std::vector<size_t> NaiveEngine::GainVector(EdgeKey e) {
  std::vector<size_t> diffs(targets_.size(), 0);
  GainVectorInto(e, diffs);
  return diffs;
}

void NaiveEngine::GainVectorInto(EdgeKey e, std::span<size_t> out) {
  std::fill(out.begin(), out.end(), size_t{0});
  if (!g_.HasEdgeKey(e)) return;
  RefreshSimilarities();
  ++gain_evals_;
  // Temporarily delete e and recount every target, as the paper's greedy
  // algorithms do at each estimate step.
  Status rs = g_.RemoveEdgeKey(e);
  TPP_CHECK(rs.ok());
  for (size_t i = 0; i < targets_.size(); ++i) {
    size_t after = motif::CountTargetSubgraphs(g_, targets_[i], motif_);
    TPP_CHECK_LE(after, sims_[i]);
    out[i] = sims_[i] - after;
  }
  Status as = g_.AddEdge(EdgeKeyU(e), EdgeKeyV(e));
  TPP_CHECK(as.ok());
}

size_t NaiveEngine::DeleteEdge(EdgeKey e) {
  if (!g_.HasEdgeKey(e)) return 0;
  size_t before = TotalSimilarity();
  Status s = g_.RemoveEdgeKey(e);
  TPP_CHECK(s.ok());
  dirty_ = true;
  size_t after = TotalSimilarity();
  return before - after;
}

std::vector<EdgeKey> NaiveEngine::Candidates(CandidateScope scope) {
  if (scope == CandidateScope::kAllEdges) {
    return g_.EdgeKeys();  // already sorted ascending
  }
  // Restricted scope (Lemma 5): collect the edges of all currently alive
  // target subgraphs by re-enumeration.
  std::unordered_set<EdgeKey> set;
  for (size_t t = 0; t < targets_.size(); ++t) {
    for (const motif::TargetSubgraph& inst : motif::EnumerateTargetSubgraphs(
             g_, targets_[t], motif_, static_cast<int32_t>(t))) {
      for (uint8_t j = 0; j < inst.num_edges; ++j) set.insert(inst.edges[j]);
    }
  }
  std::vector<EdgeKey> out(set.begin(), set.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tpp::core
