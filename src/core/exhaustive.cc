#include "core/exhaustive.h"

#include <algorithm>

#include "common/strings.h"
#include "graph/edge.h"
#include "motif/incidence_index.h"

namespace tpp::core {

using graph::Edge;
using graph::EdgeKey;
using graph::EdgeKeyU;
using graph::EdgeKeyV;
using motif::IncidenceIndex;
using motif::TargetSubgraph;

namespace {

// Counts subsets of size <= k out of n, saturating at `limit`.
size_t CountSubsets(size_t n, size_t k, size_t limit) {
  size_t total = 0;
  size_t level = 1;  // C(n, 0)
  for (size_t i = 0; i <= std::min(k, n); ++i) {
    total += level;
    if (total >= limit) return limit;
    if (i < n) {
      // C(n, i+1) = C(n, i) * (n - i) / (i + 1), watch for overflow.
      if (level > limit * (i + 1) / (n - i)) return limit;
      level = level * (n - i) / (i + 1);
    }
  }
  return total;
}

// Recursive enumeration of subsets of `candidates` of size <= k, tracking
// which instances are covered via a per-instance hit count.
struct Searcher {
  const std::vector<std::vector<uint32_t>>* edge_instances = nullptr;
  size_t num_instances = 0;
  size_t k = 0;
  std::vector<uint32_t> covered_by;  // per-instance count of chosen edges
  size_t covered = 0;
  std::vector<size_t> chosen;
  size_t best_gain = 0;
  std::vector<size_t> best_chosen;
  size_t examined = 0;

  void Choose(size_t e) {
    for (uint32_t inst : (*edge_instances)[e]) {
      if (covered_by[inst]++ == 0) ++covered;
    }
    chosen.push_back(e);
  }
  void Unchoose(size_t e) {
    for (uint32_t inst : (*edge_instances)[e]) {
      if (--covered_by[inst] == 0) --covered;
    }
    chosen.pop_back();
  }
  void Recurse(size_t from) {
    ++examined;
    if (covered > best_gain) {
      best_gain = covered;
      best_chosen = chosen;
    }
    if (chosen.size() == k) return;
    for (size_t e = from; e < edge_instances->size(); ++e) {
      Choose(e);
      Recurse(e + 1);
      Unchoose(e);
    }
  }
};

}  // namespace

Result<ExhaustiveResult> ExhaustiveOptimal(const TppInstance& instance,
                                           size_t k, size_t max_subsets) {
  TPP_ASSIGN_OR_RETURN(IncidenceIndex index,
                       IncidenceIndex::Build(instance.released,
                                             instance.targets,
                                             instance.motif));
  std::vector<EdgeKey> candidates = index.AliveCandidateEdges();
  size_t bound = CountSubsets(candidates.size(), k, max_subsets);
  if (bound >= max_subsets) {
    return Status::OutOfRange(
        StrFormat("exhaustive search over %zu candidates with k=%zu exceeds "
                  "the %zu-subset limit",
                  candidates.size(), k, max_subsets));
  }

  // Flatten the incidence into dense ids for the searcher.
  std::vector<std::vector<uint32_t>> edge_instances(candidates.size());
  const std::span<const TargetSubgraph> instances = index.instances();
  for (size_t e = 0; e < candidates.size(); ++e) {
    for (uint32_t i = 0; i < instances.size(); ++i) {
      if (instances[i].ContainsEdge(candidates[e])) {
        edge_instances[e].push_back(i);
      }
    }
  }

  Searcher searcher;
  searcher.edge_instances = &edge_instances;
  searcher.num_instances = instances.size();
  searcher.k = k;
  searcher.covered_by.assign(instances.size(), 0);
  searcher.Recurse(0);

  ExhaustiveResult out;
  out.best_gain = searcher.best_gain;
  out.subsets_examined = searcher.examined;
  for (size_t e : searcher.best_chosen) {
    out.best_set.emplace_back(EdgeKeyU(candidates[e]),
                              EdgeKeyV(candidates[e]));
  }
  return out;
}

}  // namespace tpp::core
