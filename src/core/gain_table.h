// GainTable: the persistent per-candidate gain state of an incremental
// round session (core/engine.h BeginRound).
//
// The cold greedy loops re-evaluate every candidate every round, although a
// committed deletion only changes the gains of edges that co-occurred with
// it in a killed target subgraph. An incremental round session keeps the
// previous round's gains alive in this table and re-evaluates only the
// DIRTY candidates the deletion reported (IncidenceIndex::DeleteEdge's
// dirty set, or everything for engines that cannot track dirtiness).
//
// RoundGains is the per-round view greedy loops consume: a STATIC,
// ascending candidate universe with aligned total gains (and per-target
// rows when requested), plus the dirty row indices since the previous
// round. The universe may be a superset of the live candidate set — dead
// or deleted candidates keep a total of zero, which no greedy selection
// rule can pick (every pick requires a positive gain), so scanning the
// full universe reproduces the cold sweep's first-max tie-breaking
// exactly. `num_candidates` is the live candidate count — the cold
// sweep's |Candidates(scope)| — which is what the engine charges to the
// gain-evaluation work metric per round, keeping the paper's accounting
// identical between the incremental and cold paths.

#ifndef TPP_CORE_GAIN_TABLE_H_
#define TPP_CORE_GAIN_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/engine_scope.h"
#include "graph/edge.h"

namespace tpp::core {

/// One round's gain view. Spans point into engine-owned storage and stay
/// valid until the next BeginRound/DeleteEdge on that engine.
struct RoundGains {
  /// Candidate universe, ascending by edge key. Identical across rounds of
  /// one session unless `all_dirty` is set (an engine that rebuilds its
  /// universe each round always sets all_dirty).
  std::span<const graph::EdgeKey> edges;
  /// totals[i] == Gain(edges[i]) against the current graph state.
  std::span<const uint32_t> totals;
  /// Per-target gains, row-major with stride `num_targets`:
  /// rows[i * num_targets + t] == GainVector(edges[i])[t]. Empty unless
  /// the round was begun with per_target set.
  std::span<const uint32_t> rows;
  /// Row stride of `rows`.
  size_t num_targets = 0;
  /// Universe indices whose totals/rows changed since the previous round
  /// (sorted ascending, deduplicated). Meaningful only when !all_dirty.
  std::span<const uint32_t> dirty;
  /// True when every row must be treated as changed: the session's first
  /// round, a scope switch, or an engine without dirty tracking.
  bool all_dirty = true;
  /// Live candidates this round == |Candidates(scope)| of the cold sweep;
  /// the engine charges exactly this many gain evaluations for the round.
  size_t num_candidates = 0;
};

/// Engine-owned storage behind RoundGains. Engines that answer from an
/// index may alias `view` spans straight into index internals and leave
/// the vectors here empty; the base-class fallback fills them per round.
struct GainTable {
  std::vector<graph::EdgeKey> edges;
  std::vector<uint32_t> totals;
  std::vector<uint32_t> rows;
  std::vector<uint32_t> dirty;
  RoundGains view;

  /// Session key: a BeginRound under a different scope/per_target restarts
  /// the session (all_dirty) instead of serving stale state.
  bool active = false;
  CandidateScope scope = CandidateScope::kAllEdges;
  bool per_target = false;

  /// Forgets the session (the next BeginRound is a full evaluation) and
  /// releases the storage — what IndexedEngine::Clone applies to the copy
  /// so prototype sessions never leak into per-request clones.
  void Reset() {
    edges = {};
    totals = {};
    rows = {};
    dirty = {};
    view = RoundGains{};
    active = false;
    per_target = false;
  }
};

}  // namespace tpp::core

#endif  // TPP_CORE_GAIN_TABLE_H_
