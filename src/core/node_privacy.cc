#include "core/node_privacy.h"

#include "common/strings.h"
#include "motif/enumerate.h"

namespace tpp::core {

using graph::Edge;
using graph::Graph;
using graph::NodeId;

Result<TppInstance> MakeNodeInstance(const Graph& original, NodeId node,
                                     motif::MotifKind motif) {
  if (node >= original.NumNodes()) {
    return Status::InvalidArgument(
        StrFormat("node %u out of range (n=%zu)", node,
                  original.NumNodes()));
  }
  if (original.Degree(node) == 0) {
    return Status::FailedPrecondition(
        StrFormat("node %u is isolated; nothing to protect", node));
  }
  std::vector<Edge> targets;
  targets.reserve(original.Degree(node));
  for (NodeId v : original.Neighbors(node)) {
    targets.emplace_back(node, v);
  }
  return MakeInstance(original, std::move(targets), motif);
}

Result<TppInstance> MakePartialNodeInstance(
    const Graph& original, NodeId node,
    const std::vector<NodeId>& sensitive_neighbors,
    motif::MotifKind motif) {
  if (node >= original.NumNodes()) {
    return Status::InvalidArgument(
        StrFormat("node %u out of range (n=%zu)", node,
                  original.NumNodes()));
  }
  if (sensitive_neighbors.empty()) {
    return Status::InvalidArgument("no sensitive neighbors listed");
  }
  std::vector<Edge> targets;
  targets.reserve(sensitive_neighbors.size());
  for (NodeId v : sensitive_neighbors) {
    if (!original.HasEdge(node, v)) {
      return Status::InvalidArgument(
          StrFormat("(%u,%u) is not a link of the graph", node, v));
    }
    targets.emplace_back(node, v);
  }
  return MakeInstance(original, std::move(targets), motif);
}

Result<NodeExposure> MeasureNodeExposure(const Graph& released,
                                         const std::vector<Edge>& hidden_links,
                                         motif::MotifKind motif) {
  NodeExposure exposure;
  for (const Edge& link : hidden_links) {
    if (link.u >= released.NumNodes() || link.v >= released.NumNodes()) {
      return Status::InvalidArgument(
          StrFormat("hidden link (%u,%u) out of range", link.u, link.v));
    }
    if (released.HasEdge(link.u, link.v)) {
      return Status::FailedPrecondition(
          StrFormat("hidden link (%u,%u) still present in the release",
                    link.u, link.v));
    }
    ++exposure.hidden_links;
    size_t s = motif::CountTargetSubgraphs(released, link, motif);
    exposure.alive_subgraphs += s;
    if (s > 0) ++exposure.exposed_links;
  }
  return exposure;
}

}  // namespace tpp::core
