#include "core/weighted.h"

#include "common/strings.h"
#include "common/timer.h"
#include "graph/edge.h"

namespace tpp::core {

using graph::EdgeKey;
using graph::EdgeKeyU;
using graph::EdgeKeyV;

Result<ProtectionResult> WeightedSgbGreedy(Engine& engine,
                                           const std::vector<double>& weights,
                                           size_t budget,
                                           const GreedyOptions& options) {
  if (weights.size() != engine.NumTargets()) {
    return Status::InvalidArgument(
        StrFormat("weight vector size %zu != target count %zu",
                  weights.size(), engine.NumTargets()));
  }
  for (double w : weights) {
    if (w < 0.0) {
      return Status::InvalidArgument("weights must be non-negative");
    }
  }
  WallTimer timer;
  ProtectionResult result;
  result.initial_similarity = engine.TotalSimilarity();
  while (result.protectors.size() < budget) {
    std::vector<EdgeKey> candidates = engine.Candidates(options.scope);
    bool found = false;
    EdgeKey best_edge = 0;
    double best_score = 0.0;
    for (EdgeKey e : candidates) {
      std::vector<size_t> diffs = engine.GainVector(e);
      double score = 0.0;
      for (size_t t = 0; t < diffs.size(); ++t) {
        score += weights[t] * static_cast<double>(diffs[t]);
      }
      if (score > best_score && (score > 0.0)) {
        best_score = score;
        best_edge = e;
        found = true;
      }
    }
    if (!found) break;
    size_t realized = engine.DeleteEdge(best_edge);
    PickTrace trace;
    trace.edge = best_edge;
    trace.realized_gain = realized;
    trace.for_target = PickTrace::kNoTarget;
    trace.similarity_after = engine.TotalSimilarity();
    trace.cumulative_seconds = timer.Seconds();
    result.picks.push_back(trace);
    result.protectors.emplace_back(EdgeKeyU(best_edge), EdgeKeyV(best_edge));
  }
  result.final_similarity = engine.TotalSimilarity();
  result.gain_evaluations = engine.GainEvaluations();
  result.total_seconds = timer.Seconds();
  return result;
}

std::vector<double> DegreeProductWeights(const TppInstance& instance) {
  std::vector<double> weights(instance.targets.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    const graph::Edge& t = instance.targets[i];
    weights[i] = static_cast<double>(instance.released.Degree(t.u)) *
                 static_cast<double>(instance.released.Degree(t.v));
  }
  return weights;
}

}  // namespace tpp::core
