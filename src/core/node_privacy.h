// Target-node privacy preserving (paper §VII future work item 2).
//
// Instead of a hand-picked set of target links, the protected object is a
// whole node: EVERY link incident to it is sensitive (e.g. a protected
// witness whose entire contact list must stay secret). Phase 1 deletes
// all incident links; phase 2 uses the ordinary TPP machinery to prevent
// the neighborhood from being reconstructed by link prediction.

#ifndef TPP_CORE_NODE_PRIVACY_H_
#define TPP_CORE_NODE_PRIVACY_H_

#include "common/result.h"
#include "core/problem.h"

namespace tpp::core {

/// Builds a TPP instance whose targets are all links incident to `node`.
/// Errors if the node is out of range or isolated (nothing to protect).
///
/// Note a structural property this library's tests document: hiding ALL
/// incident links is already fully protected against the motif attacks —
/// every Triangle/Rectangle/RecTri target subgraph for a hidden link
/// (node, v) contains another edge at `node`, and phase 1 removed them
/// all. The non-trivial node-privacy problem is PARTIAL hiding (below),
/// where the node's public links complete motifs around the hidden ones.
Result<TppInstance> MakeNodeInstance(const graph::Graph& original,
                                     graph::NodeId node,
                                     motif::MotifKind motif);

/// Builds a TPP instance hiding only the links from `node` to the listed
/// `sensitive_neighbors`; the node's other links stay public and are
/// eligible as protectors. Errors if any listed link does not exist or
/// the list is empty / has duplicates.
Result<TppInstance> MakePartialNodeInstance(
    const graph::Graph& original, graph::NodeId node,
    const std::vector<graph::NodeId>& sensitive_neighbors,
    motif::MotifKind motif);

/// Summary of how exposed a hidden node remains in a released graph.
struct NodeExposure {
  size_t hidden_links = 0;        ///< number of phase-1 deleted links
  size_t alive_subgraphs = 0;     ///< s(P, T) over the incident targets
  size_t exposed_links = 0;       ///< targets with at least one subgraph
  /// Fraction of hidden links with zero surviving target subgraphs.
  double protected_fraction() const {
    return hidden_links == 0
               ? 1.0
               : 1.0 - static_cast<double>(exposed_links) /
                           static_cast<double>(hidden_links);
  }
};

/// Measures the exposure of the given `hidden_links` (the instance's
/// targets) in `released`. Deleted protectors that happen to touch the
/// node are NOT hidden links — they are public deletions — so the caller
/// must pass the actual sensitive set rather than diffing the graphs.
/// Errors if any hidden link is still present in `released`.
Result<NodeExposure> MeasureNodeExposure(
    const graph::Graph& released,
    const std::vector<graph::Edge>& hidden_links, motif::MotifKind motif);

}  // namespace tpp::core

#endif  // TPP_CORE_NODE_PRIVACY_H_
