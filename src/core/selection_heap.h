// SelectionHeap: the addressable max-heap behind heap-mode greedy
// selection and the dirty-aware CELF path (core/greedy.cc).
//
// The incremental round engine (PR 5) made per-round GAIN maintenance
// proportional to the dirty set of the committed deletion, but SELECTION
// stayed a flat first-strict-max scan of the whole candidate universe —
// O(universe) per round even when only a handful of gains changed. This
// heap closes that gap: it holds one entry per universe row with a 64-bit
// priority, supports decrease/increase-key by row id, and orders entries
// by (priority descending, row ascending). Because the round universe is
// ascending by edge key, the heap's top is EXACTLY the row the flat scan's
// first-strict-max rule would select, so heap-mode picks are bit-identical
// to the cold sweep by construction. A round then costs
// O(|dirty| * log(universe)) re-keys instead of an O(universe) scan.
//
// Priorities are opaque uint64s supplied by the selection layer:
//   SGB    — the total gain;
//   CT/WT  — PackSplit(own, cross) = (own << 32) | cross, whose integer
//            order equals the paper's lexicographic (own, cross) rule.
// Priority 0 means "not selectable" (every greedy pick requires a positive
// gain): Update(row, 0) removes the row, and rows with priority 0 are
// never inserted, so Top() is always a legal pick.
//
// Layout: a 4-ary implicit heap of row ids (heap_) with an inverse
// position map (pos_) and a row -> priority array (prio_). 4-ary beats
// binary here: sift-down does one compare-4 per level over rows that are
// hot in cache, and the tree is half as deep. Build() is bottom-up
// heapify, O(n); Update() sifts from the row's current slot, O(log n).
//
// Determinism: the comparison (priority desc, row asc) is a total order
// over entries — no two entries share a row — so the heap's pop order is a
// pure function of the (row, priority) set, independent of insertion
// order, libstdc++ version, or sift implementation details. This is the
// fix for the CELF tie-break hazard: the historical std::priority_queue
// path kept (bound, edge, round) triples whose comparator ignored `round`,
// so its order was only deterministic as long as no two live entries ever
// collided — a property of the data, not the structure. Here it is a
// property of the structure (tests/selection_heap_test.cc pins it with an
// all-gains-equal fixture).

#ifndef TPP_CORE_SELECTION_HEAP_H_
#define TPP_CORE_SELECTION_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tpp::core {

/// Operation counters of one or more SelectionHeap sessions — the
/// heap-ops / dirty-repush telemetry bench/solver_rounds reports.
struct SelectionHeapStats {
  uint64_t builds = 0;      ///< bulk Build() heapifies (session restarts)
  uint64_t built_rows = 0;  ///< entries those builds inserted
  uint64_t rekeys = 0;      ///< Update() calls that changed a live entry
  uint64_t inserts = 0;     ///< Update() calls that added a missing row
  uint64_t removes = 0;     ///< Update(row, 0) calls that dropped a row
  uint64_t noops = 0;       ///< Update() calls that changed nothing
  uint64_t sift_steps = 0;  ///< total levels moved by all sifts
};

/// See file comment. Reset() before use; one heap serves one selection
/// session (universe size fixed between Reset()s).
class SelectionHeap {
 public:
  /// Row sentinel: not in the heap.
  static constexpr uint32_t kAbsent = 0xffffffffu;

  /// Packs a (own, cross) split gain into a priority whose integer order
  /// is the lexicographic (own, cross) order — the paper's CT/WT rule.
  /// Both halves must fit in 32 bits (counts are uint32 everywhere).
  static constexpr uint64_t PackSplit(uint32_t own, uint32_t cross) {
    return (static_cast<uint64_t>(own) << 32) | cross;
  }

  /// Clears the heap and sizes it for rows [0, universe). O(universe).
  void Reset(size_t universe);

  /// Bulk (re)build: Reset(universe), then stage every row, then heapify.
  /// BuildAdd ignores priority-0 rows, so callers loop the universe
  /// unconditionally. Staging must be in ascending row order (the natural
  /// universe loop); BuildFinish() is O(n) bottom-up heapify.
  void BuildBegin(size_t universe);
  void BuildAdd(uint32_t row, uint64_t priority);
  void BuildFinish();

  /// Re-keys `row` to `priority`: sifts a live entry (decrease OR
  /// increase — CT re-seats can move either way in cross), inserts an
  /// absent row with positive priority, removes a live row at priority 0.
  /// No-op when the priority is unchanged. O(log n).
  void Update(uint32_t row, uint64_t priority);

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  /// The selectable row with the maximum (priority, -row) — the pick of
  /// the flat first-strict-max scan. Requires !Empty().
  uint32_t TopRow() const { return heap_[0]; }
  uint64_t TopPriority() const { return prio_[heap_[0]]; }

  /// Current priority of `row`; 0 when absent.
  uint64_t PriorityOf(uint32_t row) const {
    return row < pos_.size() && pos_[row] != kAbsent ? prio_[row] : 0;
  }
  bool Contains(uint32_t row) const {
    return row < pos_.size() && pos_[row] != kAbsent;
  }

  /// Optional operation counters; aggregate across sessions when reused.
  void set_stats(SelectionHeapStats* stats) { stats_ = stats; }

 private:
  static constexpr size_t kArity = 4;

  /// Entry order: (priority desc, row asc). True iff a ranks before b.
  bool Before(uint32_t a, uint32_t b) const {
    return prio_[a] != prio_[b] ? prio_[a] > prio_[b] : a < b;
  }

  void SiftUp(size_t slot);
  void SiftDown(size_t slot);

  std::vector<uint32_t> heap_;  // heap slots -> row ids
  std::vector<uint32_t> pos_;   // row id -> heap slot, or kAbsent
  std::vector<uint64_t> prio_;  // row id -> current priority
  SelectionHeapStats* stats_ = nullptr;
};

}  // namespace tpp::core

#endif  // TPP_CORE_SELECTION_HEAP_H_
