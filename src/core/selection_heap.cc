#include "core/selection_heap.h"

#include <algorithm>

#include "common/check.h"

namespace tpp::core {

void SelectionHeap::Reset(size_t universe) {
  heap_.clear();
  heap_.reserve(universe);
  pos_.assign(universe, kAbsent);
  prio_.assign(universe, 0);
}

void SelectionHeap::BuildBegin(size_t universe) { Reset(universe); }

void SelectionHeap::BuildAdd(uint32_t row, uint64_t priority) {
  if (priority == 0) return;
  pos_[row] = static_cast<uint32_t>(heap_.size());
  prio_[row] = priority;
  heap_.push_back(row);
}

void SelectionHeap::BuildFinish() {
  if (heap_.size() > 1) {
    // Bottom-up heapify: sift every internal node down, last parent
    // first. O(n) total — the reason session restarts (all_dirty rounds)
    // cost a scan, not n * log n pushes.
    for (size_t slot = (heap_.size() - 2) / kArity + 1; slot-- > 0;) {
      SiftDown(slot);
    }
  }
  if (stats_ != nullptr) {
    ++stats_->builds;
    stats_->built_rows += heap_.size();
  }
}

void SelectionHeap::Update(uint32_t row, uint64_t priority) {
  TPP_CHECK_LT(row, pos_.size());
  const uint32_t slot = pos_[row];
  if (slot == kAbsent) {
    if (priority == 0) {
      if (stats_ != nullptr) ++stats_->noops;
      return;  // absent and unselectable: nothing to do
    }
    // Insert: append and sift up.
    pos_[row] = static_cast<uint32_t>(heap_.size());
    prio_[row] = priority;
    heap_.push_back(row);
    SiftUp(heap_.size() - 1);
    if (stats_ != nullptr) ++stats_->inserts;
    return;
  }
  if (priority == 0) {
    // Remove: move the last entry into the vacated slot and sift it to
    // its place (either direction — the replacement is unrelated).
    const uint32_t last = heap_.back();
    heap_.pop_back();
    pos_[row] = kAbsent;
    prio_[row] = 0;
    if (last != row) {
      heap_[slot] = last;
      pos_[last] = slot;
      SiftDown(slot);
      SiftUp(pos_[last]);
    }
    if (stats_ != nullptr) ++stats_->removes;
    return;
  }
  if (prio_[row] == priority) {
    if (stats_ != nullptr) ++stats_->noops;
    return;
  }
  const bool increased = priority > prio_[row];
  prio_[row] = priority;
  if (increased) {
    SiftUp(slot);
  } else {
    SiftDown(slot);
  }
  if (stats_ != nullptr) ++stats_->rekeys;
}

void SelectionHeap::SiftUp(size_t slot) {
  const uint32_t row = heap_[slot];
  size_t steps = 0;
  while (slot > 0) {
    const size_t parent = (slot - 1) / kArity;
    if (!Before(row, heap_[parent])) break;
    heap_[slot] = heap_[parent];
    pos_[heap_[slot]] = static_cast<uint32_t>(slot);
    slot = parent;
    ++steps;
  }
  heap_[slot] = row;
  pos_[row] = static_cast<uint32_t>(slot);
  if (stats_ != nullptr) stats_->sift_steps += steps;
}

void SelectionHeap::SiftDown(size_t slot) {
  const uint32_t row = heap_[slot];
  const size_t n = heap_.size();
  size_t steps = 0;
  for (;;) {
    const size_t first = slot * kArity + 1;
    if (first >= n) break;
    // Best of up to four children; ties inside the block resolve to the
    // smallest row via Before, like everywhere else.
    size_t best = first;
    const size_t last = std::min(first + kArity, n);
    for (size_t c = first + 1; c < last; ++c) {
      if (Before(heap_[c], heap_[best])) best = c;
    }
    if (!Before(heap_[best], row)) break;
    heap_[slot] = heap_[best];
    pos_[heap_[slot]] = static_cast<uint32_t>(slot);
    slot = best;
    ++steps;
  }
  heap_[slot] = row;
  pos_[row] = static_cast<uint32_t>(slot);
  if (stats_ != nullptr) stats_->sift_steps += steps;
}

}  // namespace tpp::core
