// TPP problem instance: released graph + target set + motif.

#ifndef TPP_CORE_PROBLEM_H_
#define TPP_CORE_PROBLEM_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "motif/motif.h"

namespace tpp::core {

/// A fully specified TPP instance. `released` is the phase-1 graph: the
/// original graph with every target link already deleted. All algorithms
/// operate on copies of `released`; the original graph is only needed again
/// for utility-loss analysis.
struct TppInstance {
  graph::Graph released;             ///< original minus target links
  std::vector<graph::Edge> targets;  ///< the hidden links T
  motif::MotifKind motif = motif::MotifKind::kTriangle;
};

/// Builds an instance from the original graph: validates that every target
/// is a distinct existing edge, then removes them (phase 1).
Result<TppInstance> MakeInstance(const graph::Graph& original,
                                 std::vector<graph::Edge> targets,
                                 motif::MotifKind motif);

/// Samples `count` distinct target links uniformly from the existing edges,
/// as in the paper's evaluation ("targets are randomly sampled from the
/// existing links"). Errors if the graph has fewer than `count` edges.
Result<std::vector<graph::Edge>> SampleTargets(const graph::Graph& g,
                                               size_t count, Rng& rng);

}  // namespace tpp::core

#endif  // TPP_CORE_PROBLEM_H_
