#include "core/greedy.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "common/strings.h"
#include "common/timer.h"
#include "graph/edge.h"

namespace tpp::core {

using graph::Edge;
using graph::EdgeKey;
using graph::EdgeKeyU;
using graph::EdgeKeyV;
using motif::IncidenceIndex;

namespace {

void CommitPick(Engine& engine, EdgeKey edge, size_t for_target,
                const WallTimer& timer, ProtectionResult& result) {
  size_t realized = engine.DeleteEdge(edge);
  PickTrace trace;
  trace.edge = edge;
  trace.realized_gain = realized;
  trace.for_target = for_target;
  trace.similarity_after = engine.TotalSimilarity();
  trace.cumulative_seconds = timer.Seconds();
  result.picks.push_back(trace);
  result.protectors.emplace_back(EdgeKeyU(edge), EdgeKeyV(edge));
}

void FinalizeResult(Engine& engine, const WallTimer& timer,
                    ProtectionResult& result) {
  result.final_similarity = engine.TotalSimilarity();
  result.gain_evaluations = engine.GainEvaluations();
  result.total_seconds = timer.Seconds();
}

// Cold SGB iteration: evaluate every candidate, take the best. The whole
// round's query work goes through CandidateGains: IndexedEngine answers
// the restricted scope with one scan of its alive-count cache, and the
// full-edge scope falls back to a (possibly threaded) BatchGain sweep.
// Candidate order is preserved, so the first-max tie-break is identical to
// the historical serial loop.
Result<ProtectionResult> SgbGreedyEagerCold(Engine& engine, size_t budget,
                                            const GreedyOptions& options) {
  WallTimer timer;
  ProtectionResult result;
  result.initial_similarity = engine.TotalSimilarity();
  std::vector<EdgeKey> candidates;
  std::vector<size_t> gains;
  while (result.protectors.size() < budget) {
    TPP_RETURN_IF_ERROR(PollCancellation(options.cancel, "sgb-greedy"));
    engine.CandidateGains(options.scope, &candidates, &gains);
    EdgeKey best_edge = 0;
    size_t best_gain = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (gains[i] > best_gain) {  // strict: first max wins => smallest key
        best_gain = gains[i];
        best_edge = candidates[i];
      }
    }
    if (best_gain == 0) break;
    CommitPick(engine, best_edge, PickTrace::kNoTarget, timer, result);
  }
  FinalizeResult(engine, timer, result);
  return result;
}

// Incremental SGB: one BeginRound per pick. The round view's universe is a
// static ascending superset of the cold candidate set in which dead or
// deleted candidates hold total 0, so the first-strict-max scan reproduces
// the cold sweep's smallest-key tie-break exactly; on the indexed engine
// the totals alias the eagerly-maintained alive counts and a round costs
// one flat scan, with no candidate-vector rebuild at all.
Result<ProtectionResult> SgbGreedyEagerIncremental(
    Engine& engine, size_t budget, const GreedyOptions& options) {
  WallTimer timer;
  ProtectionResult result;
  result.initial_similarity = engine.TotalSimilarity();
  while (result.protectors.size() < budget) {
    TPP_RETURN_IF_ERROR(PollCancellation(options.cancel, "sgb-greedy"));
    const RoundGains& round = engine.BeginRound(options.scope,
                                                /*per_target=*/false);
    uint32_t best_gain = 0;
    size_t best_i = 0;
    for (size_t i = 0; i < round.totals.size(); ++i) {
      if (round.totals[i] > best_gain) {  // strict: first max wins
        best_gain = round.totals[i];
        best_i = i;
      }
    }
    if (best_gain == 0) break;
    CommitPick(engine, round.edges[best_i], PickTrace::kNoTarget, timer,
               result);
  }
  FinalizeResult(engine, timer, result);
  return result;
}

// Heap-selection SGB — both the eager RoundMode::kHeap strategy and the
// dirty-aware CELF path (CelfMode::kDirtyAware): one loop serves both
// because once gains are maintained incrementally the CELF "stale upper
// bound" of an edge IS its exact current gain — submodularity says gains
// only shrink, and the dirty set tells us exactly which ones did — so
// lazy re-evaluation degenerates to re-keying the dirtied heap entries.
// Per round: consume BeginRound's dirty set, Update() each dirtied row to
// its new total (0 removes it, covering the committed pick itself), and
// read the pick off the heap top. The heap's (priority desc, row asc)
// order over the ascending-key universe reproduces the flat scan's
// first-strict-max rule, so picks/traces are bit-identical to the cold
// sweep; BeginRound charges one evaluation per live candidate, so the
// work metric is too. Selection cost: O(|dirty| log universe) per round
// instead of the flat O(universe) scan.
Result<ProtectionResult> SgbGreedyHeap(Engine& engine, size_t budget,
                                       const GreedyOptions& options) {
  WallTimer timer;
  ProtectionResult result;
  result.initial_similarity = engine.TotalSimilarity();
  SelectionHeap heap;
  heap.set_stats(options.heap_stats);
  bool built = false;
  while (result.protectors.size() < budget) {
    TPP_RETURN_IF_ERROR(PollCancellation(options.cancel, "sgb-greedy"));
    const RoundGains& round = engine.BeginRound(options.scope,
                                                /*per_target=*/false);
    const size_t universe = round.edges.size();
    if (round.all_dirty || !built) {
      heap.BuildBegin(universe);
      for (size_t i = 0; i < universe; ++i) {
        heap.BuildAdd(static_cast<uint32_t>(i), round.totals[i]);
      }
      heap.BuildFinish();
      built = true;
    } else {
      for (uint32_t i : round.dirty) heap.Update(i, round.totals[i]);
    }
    if (heap.Empty()) break;  // no positive gain left
    CommitPick(engine, round.edges[heap.TopRow()], PickTrace::kNoTarget,
               timer, result);
  }
  FinalizeResult(engine, timer, result);
  return result;
}

Result<ProtectionResult> SgbGreedyEager(Engine& engine, size_t budget,
                                        const GreedyOptions& options) {
  switch (options.rounds) {
    case RoundMode::kColdSweep:
      return SgbGreedyEagerCold(engine, budget, options);
    case RoundMode::kHeap:
      return SgbGreedyHeap(engine, budget, options);
    case RoundMode::kIncremental:
      break;
  }
  return SgbGreedyEagerIncremental(engine, budget, options);
}

// Classic CELF lazy-greedy SGB: keep stale upper bounds in a max-heap;
// re-evaluate only the top element. Valid because the gain of a fixed edge
// can only shrink as deletions accumulate (submodularity, Lemma 2). Kept
// as the CelfMode::kClassic baseline of the dirty-aware path: it
// re-evaluates whatever surfaces at the top — every popped entry whose
// bound predates the current round costs one point Gain() query — so its
// evaluation count depends on how often stale bounds surface, where the
// dirty-aware loop's accounting matches the eager sweep exactly.
Result<ProtectionResult> SgbGreedyLazyClassic(Engine& engine, size_t budget,
                                              const GreedyOptions& options) {
  WallTimer timer;
  ProtectionResult result;
  result.initial_similarity = engine.TotalSimilarity();

  struct HeapEntry {
    size_t bound;
    EdgeKey edge;
    uint64_t round;  // deletion round the bound was computed in
  };
  auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.bound != b.bound) return a.bound < b.bound;
    return a.edge > b.edge;  // prefer smaller key on ties
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(
      cmp);
  {
    // Initial bounds come from one batched sweep (first-round full scan).
    std::vector<EdgeKey> candidates;
    std::vector<size_t> gains;
    engine.CandidateGains(options.scope, &candidates, &gains);
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (gains[i] > 0) heap.push({gains[i], candidates[i], 0});
    }
  }
  uint64_t round = 0;
  while (result.protectors.size() < budget && !heap.empty()) {
    TPP_RETURN_IF_ERROR(PollCancellation(options.cancel, "sgb-celf"));
    HeapEntry top = heap.top();
    heap.pop();
    if (top.round != round) {
      size_t fresh = engine.Gain(top.edge);
      if (fresh > 0) heap.push({fresh, top.edge, round});
      continue;
    }
    if (top.bound == 0) break;
    CommitPick(engine, top.edge, PickTrace::kNoTarget, timer, result);
    ++round;
  }
  FinalizeResult(engine, timer, result);
  return result;
}

// Lexicographic comparison of (own, cross) gains, the exact-arithmetic
// form of the paper's own + cross / C score.
bool SplitGainLess(const IncidenceIndex::SplitGain& a,
                   const IncidenceIndex::SplitGain& b) {
  if (a.own != b.own) return a.own < b.own;
  return a.cross < b.cross;
}

// Cold CT rounds: one GainVector per candidate per round, with the
// candidate list and the diff buffer hoisted out of the loops (reused
// capacity, no per-candidate allocation).
Result<ProtectionResult> CtGreedyCold(Engine& engine,
                                      const std::vector<size_t>& budgets,
                                      const GreedyOptions& options) {
  WallTimer timer;
  ProtectionResult result;
  result.initial_similarity = engine.TotalSimilarity();

  std::vector<size_t> spent(budgets.size(), 0);
  size_t total_budget = 0;
  for (size_t b : budgets) total_budget += b;

  std::vector<EdgeKey> candidates;
  std::vector<size_t> diffs(budgets.size());
  while (result.protectors.size() < total_budget) {
    TPP_RETURN_IF_ERROR(PollCancellation(options.cancel, "ct-greedy"));
    engine.CandidatesInto(options.scope, &candidates);
    bool found = false;
    size_t best_target = 0;
    EdgeKey best_edge = 0;
    IncidenceIndex::SplitGain best_gain;
    for (EdgeKey e : candidates) {
      // One evaluation yields the per-target split for every (t, e) pair —
      // this is what keeps CT at the paper's O(k n m (log N)^2). No
      // batched prefilter here: on the recount engine a total-gain sweep
      // would double the per-round motif enumeration work and distort the
      // paper-cost-model runtime benches (Figs. 5-6).
      engine.GainVectorInto(e, diffs);
      size_t total = 0;
      for (size_t d : diffs) total += d;
      if (total == 0) continue;
      for (size_t t = 0; t < budgets.size(); ++t) {
        if (spent[t] >= budgets[t]) continue;  // budget used up (set T')
        IncidenceIndex::SplitGain gain{diffs[t], total - diffs[t]};
        if (!found || SplitGainLess(best_gain, gain)) {
          found = true;
          best_gain = gain;
          best_edge = e;
          best_target = t;
        }
      }
    }
    if (!found) break;  // best delta is zero everywhere
    ++spent[best_target];
    CommitPick(engine, best_edge, best_target, timer, result);
  }
  FinalizeResult(engine, timer, result);
  return result;
}

// Incremental CT. Each candidate's winning (target, own, cross) triple is
// determined by its per-target gain row and the unspent-target set, both
// of which change rarely: rows change only for the committed deletion's
// dirty set, the unspent set only when a pick exhausts a target. The loop
// caches (own, best target) per universe row and patches exactly those
// events, so a round is one flat (own, cross) scan instead of a
// |candidates| x |targets| re-evaluation.
//
// Equivalence to the cold loop: for a fixed candidate the pairs
// (row[t], total - row[t]) over unspent t are lexicographically maximized
// at the FIRST argmax of row[t] (larger own implies smaller cross), which
// is exactly what the cold (e, t) scan's strict-improvement rule selects;
// across candidates both loops take the first strict maximum in ascending
// key order. Removing an exhausted target re-seats only rows whose cached
// best target was that target (values are unchanged and a first-argmax
// elsewhere stays the first argmax), which is the re-seat set below.
Result<ProtectionResult> CtGreedyIncremental(
    Engine& engine, const std::vector<size_t>& budgets,
    const GreedyOptions& options) {
  WallTimer timer;
  ProtectionResult result;
  result.initial_similarity = engine.TotalSimilarity();

  const size_t num_targets = budgets.size();
  std::vector<size_t> spent(num_targets, 0);
  size_t total_budget = 0;
  for (size_t b : budgets) total_budget += b;

  constexpr uint32_t kNoExhaust = 0xffffffffu;
  std::vector<uint32_t> own;     // cached best own gain per universe row
  std::vector<uint32_t> best_t;  // cached first-argmax target per row
  bool rebuild_all = true;
  uint32_t exhausted = kNoExhaust;

  while (result.protectors.size() < total_budget) {
    TPP_RETURN_IF_ERROR(PollCancellation(options.cancel, "ct-greedy"));
    const RoundGains& round = engine.BeginRound(options.scope,
                                                /*per_target=*/true);
    const size_t universe = round.edges.size();
    auto recompute = [&](size_t i) {
      const uint32_t* row = round.rows.data() + i * round.num_targets;
      uint32_t o = 0;
      uint32_t bt = 0;
      bool seen = false;
      for (size_t t = 0; t < num_targets; ++t) {
        if (spent[t] >= budgets[t]) continue;
        if (!seen || row[t] > o) {
          seen = true;
          o = row[t];
          bt = static_cast<uint32_t>(t);
        }
      }
      own[i] = seen ? o : 0;
      best_t[i] = seen ? bt : kNoExhaust;
    };
    if (round.all_dirty || rebuild_all || own.size() != universe) {
      own.assign(universe, 0);
      best_t.assign(universe, kNoExhaust);
      for (size_t i = 0; i < universe; ++i) {
        if (round.totals[i] > 0) recompute(i);
      }
      rebuild_all = false;
    } else {
      for (uint32_t i : round.dirty) {
        if (round.totals[i] > 0) recompute(i);
      }
      if (exhausted != kNoExhaust) {
        for (size_t i = 0; i < universe; ++i) {
          if (round.totals[i] > 0 && best_t[i] == exhausted) recompute(i);
        }
      }
    }
    exhausted = kNoExhaust;

    bool found = false;
    size_t best_i = 0;
    uint32_t bo = 0;
    uint32_t bc = 0;
    for (size_t i = 0; i < universe; ++i) {
      const uint32_t total = round.totals[i];
      if (total == 0) continue;
      const uint32_t o = own[i];
      const uint32_t c = total - o;
      if (!found || bo < o || (bo == o && bc < c)) {  // SplitGainLess
        found = true;
        bo = o;
        bc = c;
        best_i = i;
      }
    }
    if (!found) break;  // best delta is zero everywhere
    const size_t best_target = best_t[best_i];
    ++spent[best_target];
    if (spent[best_target] >= budgets[best_target]) {
      exhausted = static_cast<uint32_t>(best_target);
    }
    CommitPick(engine, round.edges[best_i], best_target, timer, result);
  }
  FinalizeResult(engine, timer, result);
  return result;
}

// Heap-selection CT: CtGreedyIncremental's cached (own, best target)
// pairs, with the flat (own, cross) selection scan replaced by a
// SelectionHeap keyed PackSplit(own, cross) — the packed integer order
// equals the lexicographic SplitGain order, and priority 0 coincides with
// total 0 (own and cross are both zero exactly when the total is), so the
// heap holds precisely the rows the flat scan would consider and its top
// is the scan's first strict maximum. Rows are re-keyed on the same two
// events the cache is patched on: the round's dirty set and the
// exhausted-target re-seat (the latter stays a flat best_t scan — it
// fires at most once per target over the whole run).
Result<ProtectionResult> CtGreedyHeap(Engine& engine,
                                      const std::vector<size_t>& budgets,
                                      const GreedyOptions& options) {
  WallTimer timer;
  ProtectionResult result;
  result.initial_similarity = engine.TotalSimilarity();

  const size_t num_targets = budgets.size();
  std::vector<size_t> spent(num_targets, 0);
  size_t total_budget = 0;
  for (size_t b : budgets) total_budget += b;

  constexpr uint32_t kNoExhaust = 0xffffffffu;
  std::vector<uint32_t> own;     // cached best own gain per universe row
  std::vector<uint32_t> best_t;  // cached first-argmax target per row
  SelectionHeap heap;
  heap.set_stats(options.heap_stats);
  bool rebuild_all = true;
  uint32_t exhausted = kNoExhaust;

  while (result.protectors.size() < total_budget) {
    TPP_RETURN_IF_ERROR(PollCancellation(options.cancel, "ct-greedy"));
    const RoundGains& round = engine.BeginRound(options.scope,
                                                /*per_target=*/true);
    const size_t universe = round.edges.size();
    auto recompute = [&](size_t i) {
      const uint32_t* row = round.rows.data() + i * round.num_targets;
      uint32_t o = 0;
      uint32_t bt = 0;
      bool seen = false;
      for (size_t t = 0; t < num_targets; ++t) {
        if (spent[t] >= budgets[t]) continue;
        if (!seen || row[t] > o) {
          seen = true;
          o = row[t];
          bt = static_cast<uint32_t>(t);
        }
      }
      own[i] = seen ? o : 0;
      best_t[i] = seen ? bt : kNoExhaust;
    };
    auto priority = [&](size_t i) -> uint64_t {
      const uint32_t total = round.totals[i];
      if (total == 0) return 0;
      return SelectionHeap::PackSplit(own[i], total - own[i]);
    };
    if (round.all_dirty || rebuild_all || own.size() != universe) {
      own.assign(universe, 0);
      best_t.assign(universe, kNoExhaust);
      heap.BuildBegin(universe);
      for (size_t i = 0; i < universe; ++i) {
        if (round.totals[i] > 0) recompute(i);
        heap.BuildAdd(static_cast<uint32_t>(i), priority(i));
      }
      heap.BuildFinish();
      rebuild_all = false;
    } else {
      for (uint32_t i : round.dirty) {
        if (round.totals[i] > 0) recompute(i);
        heap.Update(i, priority(i));
      }
      if (exhausted != kNoExhaust) {
        for (size_t i = 0; i < universe; ++i) {
          if (round.totals[i] > 0 && best_t[i] == exhausted) {
            recompute(i);
            heap.Update(static_cast<uint32_t>(i), priority(i));
          }
        }
      }
    }
    exhausted = kNoExhaust;

    if (heap.Empty()) break;  // best delta is zero everywhere
    const size_t best_i = heap.TopRow();
    const size_t best_target = best_t[best_i];
    ++spent[best_target];
    if (spent[best_target] >= budgets[best_target]) {
      exhausted = static_cast<uint32_t>(best_target);
    }
    CommitPick(engine, round.edges[best_i], best_target, timer, result);
  }
  FinalizeResult(engine, timer, result);
  return result;
}

// Cold WT rounds, with the same buffer hoisting as CtGreedyCold.
Result<ProtectionResult> WtGreedyCold(Engine& engine,
                                      const std::vector<size_t>& budgets,
                                      const GreedyOptions& options) {
  WallTimer timer;
  ProtectionResult result;
  result.initial_similarity = engine.TotalSimilarity();

  std::vector<EdgeKey> candidates;
  std::vector<size_t> diffs(budgets.size());
  for (size_t t = 0; t < budgets.size(); ++t) {
    for (size_t b = 0; b < budgets[t]; ++b) {
      TPP_RETURN_IF_ERROR(PollCancellation(options.cancel, "wt-greedy"));
      engine.CandidatesInto(options.scope, &candidates);
      bool found = false;
      EdgeKey best_edge = 0;
      IncidenceIndex::SplitGain best_gain;
      for (EdgeKey e : candidates) {
        // Single GainVector per candidate, as in CT (see the note there).
        engine.GainVectorInto(e, diffs);
        if (diffs[t] == 0) continue;  // within-target: own gain required
        size_t total = 0;
        for (size_t d : diffs) total += d;
        IncidenceIndex::SplitGain gain{diffs[t], total - diffs[t]};
        if (!found || SplitGainLess(best_gain, gain)) {
          found = true;
          best_gain = gain;
          best_edge = e;
        }
      }
      if (!found) break;  // target t fully protected; move to next target
      CommitPick(engine, best_edge, t, timer, result);
    }
  }
  FinalizeResult(engine, timer, result);
  return result;
}

// Incremental WT: the focal target is fixed until its budget is spent, so
// the cached own gain of a row is just its rows[] cell for that target —
// re-read for the dirty set each round and for every row on a target
// switch. Selection is the same first-strict-max scan as CT restricted to
// candidates with positive own gain (the cold loop's diffs[t] == 0 skip).
Result<ProtectionResult> WtGreedyIncremental(
    Engine& engine, const std::vector<size_t>& budgets,
    const GreedyOptions& options) {
  WallTimer timer;
  ProtectionResult result;
  result.initial_similarity = engine.TotalSimilarity();

  std::vector<uint32_t> own;
  for (size_t t = 0; t < budgets.size(); ++t) {
    bool target_cached = false;
    for (size_t b = 0; b < budgets[t]; ++b) {
      TPP_RETURN_IF_ERROR(PollCancellation(options.cancel, "wt-greedy"));
      const RoundGains& round = engine.BeginRound(options.scope,
                                                  /*per_target=*/true);
      const size_t universe = round.edges.size();
      const uint32_t* rows = round.rows.data();
      const size_t stride = round.num_targets;
      if (round.all_dirty || !target_cached || own.size() != universe) {
        own.resize(universe);
        for (size_t i = 0; i < universe; ++i) own[i] = rows[i * stride + t];
        target_cached = true;
      } else {
        for (uint32_t i : round.dirty) own[i] = rows[i * stride + t];
      }

      bool found = false;
      size_t best_i = 0;
      uint32_t bo = 0;
      uint32_t bc = 0;
      for (size_t i = 0; i < universe; ++i) {
        const uint32_t total = round.totals[i];
        if (total == 0) continue;
        const uint32_t o = own[i];
        if (o == 0) continue;  // within-target: own gain required
        const uint32_t c = total - o;
        if (!found || bo < o || (bo == o && bc < c)) {  // SplitGainLess
          found = true;
          bo = o;
          bc = c;
          best_i = i;
        }
      }
      if (!found) break;  // target t fully protected; move to next target
      CommitPick(engine, round.edges[best_i], t, timer, result);
    }
  }
  FinalizeResult(engine, timer, result);
  return result;
}

// Heap-selection WT: WtGreedyIncremental's per-target own-gain column
// behind a SelectionHeap keyed PackSplit(own, cross). The own > 0
// requirement (within-target picks must help the focal target) folds
// into the priority — PackSplit(0, anything) maps to "unselectable" by
// clamping to 0 — so the heap holds exactly the rows the flat scan's
// `o == 0` skip would keep. The heap is rebuilt whenever the focal
// target switches (priorities are a function of t) and patched from the
// dirty set otherwise.
Result<ProtectionResult> WtGreedyHeap(Engine& engine,
                                      const std::vector<size_t>& budgets,
                                      const GreedyOptions& options) {
  WallTimer timer;
  ProtectionResult result;
  result.initial_similarity = engine.TotalSimilarity();

  std::vector<uint32_t> own;
  SelectionHeap heap;
  heap.set_stats(options.heap_stats);
  for (size_t t = 0; t < budgets.size(); ++t) {
    bool target_cached = false;
    for (size_t b = 0; b < budgets[t]; ++b) {
      TPP_RETURN_IF_ERROR(PollCancellation(options.cancel, "wt-greedy"));
      const RoundGains& round = engine.BeginRound(options.scope,
                                                  /*per_target=*/true);
      const size_t universe = round.edges.size();
      const uint32_t* rows = round.rows.data();
      const size_t stride = round.num_targets;
      auto priority = [&](size_t i) -> uint64_t {
        const uint32_t total = round.totals[i];
        const uint32_t o = own[i];
        if (total == 0 || o == 0) return 0;
        return SelectionHeap::PackSplit(o, total - o);
      };
      if (round.all_dirty || !target_cached || own.size() != universe) {
        own.resize(universe);
        heap.BuildBegin(universe);
        for (size_t i = 0; i < universe; ++i) {
          own[i] = rows[i * stride + t];
          heap.BuildAdd(static_cast<uint32_t>(i), priority(i));
        }
        heap.BuildFinish();
        target_cached = true;
      } else {
        for (uint32_t i : round.dirty) {
          own[i] = rows[i * stride + t];
          heap.Update(i, priority(i));
        }
      }
      if (heap.Empty()) break;  // target t fully protected; next target
      CommitPick(engine, round.edges[heap.TopRow()], t, timer, result);
    }
  }
  FinalizeResult(engine, timer, result);
  return result;
}

}  // namespace

Result<ProtectionResult> SgbGreedy(Engine& engine, size_t budget,
                                   const GreedyOptions& options) {
  if (options.lazy) {
    // Dirty-aware CELF is the heap loop: incremental gain maintenance
    // collapses CELF's stale-bound re-evaluation into dirty re-keying.
    if (options.celf == CelfMode::kClassic) {
      return SgbGreedyLazyClassic(engine, budget, options);
    }
    return SgbGreedyHeap(engine, budget, options);
  }
  return SgbGreedyEager(engine, budget, options);
}

Result<ProtectionResult> CtGreedy(Engine& engine,
                                  const std::vector<size_t>& budgets,
                                  const GreedyOptions& options) {
  if (budgets.size() != engine.NumTargets()) {
    return Status::InvalidArgument(
        StrFormat("budget vector size %zu != target count %zu",
                  budgets.size(), engine.NumTargets()));
  }
  switch (options.rounds) {
    case RoundMode::kColdSweep:
      return CtGreedyCold(engine, budgets, options);
    case RoundMode::kHeap:
      return CtGreedyHeap(engine, budgets, options);
    case RoundMode::kIncremental:
      break;
  }
  return CtGreedyIncremental(engine, budgets, options);
}

Result<ProtectionResult> WtGreedy(Engine& engine,
                                  const std::vector<size_t>& budgets,
                                  const GreedyOptions& options) {
  if (budgets.size() != engine.NumTargets()) {
    return Status::InvalidArgument(
        StrFormat("budget vector size %zu != target count %zu",
                  budgets.size(), engine.NumTargets()));
  }
  switch (options.rounds) {
    case RoundMode::kColdSweep:
      return WtGreedyCold(engine, budgets, options);
    case RoundMode::kHeap:
      return WtGreedyHeap(engine, budgets, options);
    case RoundMode::kIncremental:
      break;
  }
  return WtGreedyIncremental(engine, budgets, options);
}

Result<ProtectionResult> FullProtection(Engine& engine,
                                        const GreedyOptions& options) {
  // The candidate pool is finite and each pick strictly reduces the number
  // of alive target subgraphs, so SGB with budget == current similarity
  // always reaches zero.
  size_t bound = engine.TotalSimilarity();
  return SgbGreedy(engine, bound, options);
}

}  // namespace tpp::core
