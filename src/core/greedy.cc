#include "core/greedy.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "common/strings.h"
#include "common/timer.h"
#include "graph/edge.h"

namespace tpp::core {

using graph::Edge;
using graph::EdgeKey;
using graph::EdgeKeyU;
using graph::EdgeKeyV;
using motif::IncidenceIndex;

namespace {

void CommitPick(Engine& engine, EdgeKey edge, size_t for_target,
                const WallTimer& timer, ProtectionResult& result) {
  size_t realized = engine.DeleteEdge(edge);
  PickTrace trace;
  trace.edge = edge;
  trace.realized_gain = realized;
  trace.for_target = for_target;
  trace.similarity_after = engine.TotalSimilarity();
  trace.cumulative_seconds = timer.Seconds();
  result.picks.push_back(trace);
  result.protectors.emplace_back(EdgeKeyU(edge), EdgeKeyV(edge));
}

void FinalizeResult(Engine& engine, const WallTimer& timer,
                    ProtectionResult& result) {
  result.final_similarity = engine.TotalSimilarity();
  result.gain_evaluations = engine.GainEvaluations();
  result.total_seconds = timer.Seconds();
}

// Plain SGB iteration: evaluate every candidate, take the best. The whole
// round's query work goes through CandidateGains: IndexedEngine answers
// the restricted scope with one scan of its alive-count cache, and the
// full-edge scope falls back to a (possibly threaded) BatchGain sweep.
// Candidate order is preserved, so the first-max tie-break is identical to
// the historical serial loop.
Result<ProtectionResult> SgbGreedyEager(Engine& engine, size_t budget,
                                        const GreedyOptions& options) {
  WallTimer timer;
  ProtectionResult result;
  result.initial_similarity = engine.TotalSimilarity();
  std::vector<EdgeKey> candidates;
  std::vector<size_t> gains;
  while (result.protectors.size() < budget) {
    engine.CandidateGains(options.scope, &candidates, &gains);
    EdgeKey best_edge = 0;
    size_t best_gain = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (gains[i] > best_gain) {  // strict: first max wins => smallest key
        best_gain = gains[i];
        best_edge = candidates[i];
      }
    }
    if (best_gain == 0) break;
    CommitPick(engine, best_edge, PickTrace::kNoTarget, timer, result);
  }
  FinalizeResult(engine, timer, result);
  return result;
}

// CELF lazy-greedy SGB: keep stale upper bounds in a max-heap; re-evaluate
// only the top element. Valid because the gain of a fixed edge can only
// shrink as deletions accumulate (submodularity, Lemma 2).
Result<ProtectionResult> SgbGreedyLazy(Engine& engine, size_t budget,
                                       const GreedyOptions& options) {
  WallTimer timer;
  ProtectionResult result;
  result.initial_similarity = engine.TotalSimilarity();

  struct HeapEntry {
    size_t bound;
    EdgeKey edge;
    uint64_t round;  // deletion round the bound was computed in
  };
  auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.bound != b.bound) return a.bound < b.bound;
    return a.edge > b.edge;  // prefer smaller key on ties
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(
      cmp);
  {
    // Initial bounds come from one batched sweep (first-round full scan).
    std::vector<EdgeKey> candidates;
    std::vector<size_t> gains;
    engine.CandidateGains(options.scope, &candidates, &gains);
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (gains[i] > 0) heap.push({gains[i], candidates[i], 0});
    }
  }
  uint64_t round = 0;
  while (result.protectors.size() < budget && !heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (top.round != round) {
      size_t fresh = engine.Gain(top.edge);
      if (fresh > 0) heap.push({fresh, top.edge, round});
      continue;
    }
    if (top.bound == 0) break;
    CommitPick(engine, top.edge, PickTrace::kNoTarget, timer, result);
    ++round;
  }
  FinalizeResult(engine, timer, result);
  return result;
}

// Lexicographic comparison of (own, cross) gains, the exact-arithmetic
// form of the paper's own + cross / C score.
bool SplitGainLess(const IncidenceIndex::SplitGain& a,
                   const IncidenceIndex::SplitGain& b) {
  if (a.own != b.own) return a.own < b.own;
  return a.cross < b.cross;
}

}  // namespace

Result<ProtectionResult> SgbGreedy(Engine& engine, size_t budget,
                                   const GreedyOptions& options) {
  if (options.lazy) return SgbGreedyLazy(engine, budget, options);
  return SgbGreedyEager(engine, budget, options);
}

Result<ProtectionResult> CtGreedy(Engine& engine,
                                  const std::vector<size_t>& budgets,
                                  const GreedyOptions& options) {
  if (budgets.size() != engine.NumTargets()) {
    return Status::InvalidArgument(
        StrFormat("budget vector size %zu != target count %zu",
                  budgets.size(), engine.NumTargets()));
  }
  WallTimer timer;
  ProtectionResult result;
  result.initial_similarity = engine.TotalSimilarity();

  std::vector<size_t> spent(budgets.size(), 0);
  size_t total_budget = 0;
  for (size_t b : budgets) total_budget += b;

  while (result.protectors.size() < total_budget) {
    std::vector<EdgeKey> candidates = engine.Candidates(options.scope);
    bool found = false;
    size_t best_target = 0;
    EdgeKey best_edge = 0;
    IncidenceIndex::SplitGain best_gain;
    for (EdgeKey e : candidates) {
      // One evaluation yields the per-target split for every (t, e) pair —
      // this is what keeps CT at the paper's O(k n m (log N)^2). No
      // batched prefilter here: on the recount engine a total-gain sweep
      // would double the per-round motif enumeration work and distort the
      // paper-cost-model runtime benches (Figs. 5-6).
      std::vector<size_t> diffs = engine.GainVector(e);
      size_t total = 0;
      for (size_t d : diffs) total += d;
      if (total == 0) continue;
      for (size_t t = 0; t < budgets.size(); ++t) {
        if (spent[t] >= budgets[t]) continue;  // budget used up (set T')
        IncidenceIndex::SplitGain gain{diffs[t], total - diffs[t]};
        if (!found || SplitGainLess(best_gain, gain)) {
          found = true;
          best_gain = gain;
          best_edge = e;
          best_target = t;
        }
      }
    }
    if (!found) break;  // best delta is zero everywhere
    ++spent[best_target];
    CommitPick(engine, best_edge, best_target, timer, result);
  }
  FinalizeResult(engine, timer, result);
  return result;
}

Result<ProtectionResult> WtGreedy(Engine& engine,
                                  const std::vector<size_t>& budgets,
                                  const GreedyOptions& options) {
  if (budgets.size() != engine.NumTargets()) {
    return Status::InvalidArgument(
        StrFormat("budget vector size %zu != target count %zu",
                  budgets.size(), engine.NumTargets()));
  }
  WallTimer timer;
  ProtectionResult result;
  result.initial_similarity = engine.TotalSimilarity();

  for (size_t t = 0; t < budgets.size(); ++t) {
    for (size_t b = 0; b < budgets[t]; ++b) {
      std::vector<EdgeKey> candidates = engine.Candidates(options.scope);
      bool found = false;
      EdgeKey best_edge = 0;
      IncidenceIndex::SplitGain best_gain;
      for (EdgeKey e : candidates) {
        // Single GainVector per candidate, as in CT (see the note there).
        std::vector<size_t> diffs = engine.GainVector(e);
        if (diffs[t] == 0) continue;  // within-target: own gain required
        size_t total = 0;
        for (size_t d : diffs) total += d;
        IncidenceIndex::SplitGain gain{diffs[t], total - diffs[t]};
        if (!found || SplitGainLess(best_gain, gain)) {
          found = true;
          best_gain = gain;
          best_edge = e;
        }
      }
      if (!found) break;  // target t fully protected; move to next target
      CommitPick(engine, best_edge, t, timer, result);
    }
  }
  FinalizeResult(engine, timer, result);
  return result;
}

Result<ProtectionResult> FullProtection(Engine& engine,
                                        const GreedyOptions& options) {
  // The candidate pool is finite and each pick strictly reduces the number
  // of alive target subgraphs, so SGB with budget == current similarity
  // always reaches zero.
  size_t bound = engine.TotalSimilarity();
  return SgbGreedy(engine, bound, options);
}

}  // namespace tpp::core
