// The paper's three greedy protector-selection algorithms.
//
//   SGB-Greedy (Alg. 1): single global budget, 1-1/e approximation.
//   CT-Greedy  (Alg. 2): per-target budgets, picks globally across targets
//                        (partition matroid), 1/2 approximation.
//   WT-Greedy  (Alg. 3): per-target budgets, satisfies targets one by one,
//                        1-e^{-(1-1/e)} ~ 0.46 approximation.
//
// Each runs against any Engine; the candidate scope selects between the
// base algorithms (kAllEdges) and their scalable "-R" variants
// (kTargetSubgraphEdges, Lemma 5). SGB additionally supports lazy (CELF)
// evaluation, valid because f is monotone submodular.

#ifndef TPP_CORE_GREEDY_H_
#define TPP_CORE_GREEDY_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "core/engine.h"
#include "core/selection_heap.h"

namespace tpp::core {

/// Round evaluation strategy of the eager greedy loops.
enum class RoundMode {
  /// Incremental rounds on Engine::BeginRound: per-candidate gains
  /// persist across rounds and only the dirty set of each committed
  /// deletion is re-evaluated. Picks, traces, and gain-evaluation
  /// accounting are bit-identical to the cold sweep; only wall time
  /// differs (bench/solver_rounds tracks the gap).
  kIncremental,
  /// The historical loop: re-evaluate every candidate every round. Kept
  /// as the differential baseline of the incremental engine.
  kColdSweep,
  /// Incremental rounds with SELECTION on an addressable max-heap
  /// (core/selection_heap.h) layered over the same BeginRound gain
  /// table: each round re-keys only the dirtied entries and reads the
  /// pick off the heap top, so selection costs O(|dirty| log n) instead
  /// of the kIncremental flat O(universe) scan. Picks, traces, and
  /// accounting remain bit-identical to the cold sweep (the heap order
  /// is exactly the flat scan's first-strict-max rule).
  kHeap,
};

/// How the lazy (CELF) SGB path evaluates stale upper bounds.
enum class CelfMode {
  /// Dirty-aware CELF: the selection heap is invalidated from the dirty
  /// set each committed deletion emits (IncidenceIndex deferred-count
  /// flush via Engine::BeginRound), so only genuinely changed bounds are
  /// re-keyed and the work metric matches the eager sweep exactly. The
  /// default, and the only mode whose gain-evaluation accounting is
  /// bit-identical to the eager paths.
  kDirtyAware,
  /// The historical CELF loop: a std::priority_queue of stale bounds,
  /// re-evaluating whatever surfaces at the top. Kept as the
  /// differential/bench baseline of the dirty-aware path; evaluation
  /// counts depend on how often stale bounds surface.
  kClassic,
};

/// Shared knobs for the greedy algorithms.
struct GreedyOptions {
  /// Candidate protector scope; kTargetSubgraphEdges gives the "-R"
  /// variants with identical output (Lemma 5).
  CandidateScope scope = CandidateScope::kAllEdges;
  /// SGB only: use CELF lazy evaluation (upper bounds from submodularity).
  bool lazy = false;
  /// Eager rounds only (SGB non-lazy, CT, WT, FullProtection): how each
  /// round's candidate gains are produced and the pick is selected.
  RoundMode rounds = RoundMode::kIncremental;
  /// Lazy SGB only: stale-bound strategy of the CELF loop.
  CelfMode celf = CelfMode::kDirtyAware;
  /// When set, heap-backed selection paths (RoundMode::kHeap and the
  /// dirty-aware CELF) accumulate their operation counters here —
  /// bench/solver_rounds' heap-ops / dirty-repush telemetry. Never
  /// touched by the flat-scan or classic paths.
  SelectionHeapStats* heap_stats = nullptr;
  /// Cooperative cancellation: when set, every greedy loop polls the
  /// token at each round boundary and returns its status (deadline
  /// exceeded / aborted) instead of committing further picks. Polling is
  /// read-only and a pick is the atom of engine mutation, so a canceled
  /// run leaves the engine in the exact state of its last COMPLETED
  /// round — never half-mutated — and an un-expired token changes no
  /// output at all. nullptr (the default) means uncancelable.
  const CancellationToken* cancel = nullptr;
};

/// One committed protector deletion, for evolution plots and audits.
struct PickTrace {
  graph::EdgeKey edge = 0;       ///< the deleted protector
  size_t realized_gain = 0;      ///< target subgraphs actually broken
  size_t for_target = kNoTarget; ///< paying target (CT/WT); kNoTarget = SGB
  size_t similarity_after = 0;   ///< s(P, T) after this deletion
  double cumulative_seconds = 0; ///< wall time from start through this pick

  static constexpr size_t kNoTarget = std::numeric_limits<size_t>::max();
};

/// Outcome of one protector-selection run.
struct ProtectionResult {
  std::vector<graph::Edge> protectors;  ///< deletion order
  std::vector<PickTrace> picks;         ///< one entry per deletion
  size_t initial_similarity = 0;        ///< s({}, T)
  size_t final_similarity = 0;          ///< s(P, T)
  uint64_t gain_evaluations = 0;        ///< engine work performed
  double total_seconds = 0;             ///< wall time of the selection

  /// Total dissimilarity increase achieved (= initial - final similarity).
  size_t TotalGain() const { return initial_similarity - final_similarity; }
};

/// SGB-Greedy (Algorithm 1): selects up to `budget` protectors, each
/// maximizing the global dissimilarity gain; stops early when the best
/// gain is zero. Ties break toward the smallest edge key.
Result<ProtectionResult> SgbGreedy(Engine& engine, size_t budget,
                                   const GreedyOptions& options = {});

/// CT-Greedy (Algorithm 2): cross-target picking under per-target budgets
/// `K` (|K| == NumTargets()). Each step maximizes (own gain, cross gain)
/// lexicographically over all (target with remaining budget, candidate)
/// pairs — the paper's own + cross/C scoring with exact arithmetic.
Result<ProtectionResult> CtGreedy(Engine& engine,
                                  const std::vector<size_t>& budgets,
                                  const GreedyOptions& options = {});

/// WT-Greedy (Algorithm 3): satisfies targets in index order; target t
/// greedily spends k_t picks maximizing (own gain for t, cross gain).
/// When t has no positive own gain left, its remaining budget is skipped
/// and selection moves to the next target (see DESIGN.md on the paper's
/// `return` at this point).
Result<ProtectionResult> WtGreedy(Engine& engine,
                                  const std::vector<size_t>& budgets,
                                  const GreedyOptions& options = {});

/// Runs SGB-Greedy with an unlimited budget until total similarity reaches
/// zero, returning the critical budget k* (paper §VI: full protection).
Result<ProtectionResult> FullProtection(Engine& engine,
                                        const GreedyOptions& options = {});

}  // namespace tpp::core

#endif  // TPP_CORE_GREEDY_H_
