#include "core/engine.h"

#include <algorithm>

namespace tpp::core {

using graph::EdgeKey;

void Engine::BatchGainVector(std::span<const EdgeKey> edges,
                             std::vector<uint32_t>* out) {
  const size_t num_targets = NumTargets();
  out->resize(edges.size() * num_targets);
  std::vector<size_t> diffs(num_targets);
  for (size_t i = 0; i < edges.size(); ++i) {
    GainVectorInto(edges[i], diffs);
    uint32_t* row = out->data() + i * num_targets;
    for (size_t t = 0; t < num_targets; ++t) {
      row[t] = static_cast<uint32_t>(diffs[t]);
    }
  }
}

const RoundGains& Engine::BeginRound(CandidateScope scope, bool per_target) {
  // Trivial always-dirty fallback: rebuild the candidate universe and
  // re-evaluate everything through the counting query APIs, so the work
  // metric matches the cold sweep this stands in for (one evaluation per
  // live candidate). NaiveEngine keeps the paper's recount cost model this
  // way; only engines with dirty tracking override.
  GainTable& table = fallback_table_;
  CandidatesInto(scope, &table.edges);
  const size_t num_targets = NumTargets();
  table.totals.resize(table.edges.size());
  if (per_target) {
    BatchGainVector(table.edges, &table.rows);
    for (size_t i = 0; i < table.edges.size(); ++i) {
      uint32_t total = 0;
      const uint32_t* row = table.rows.data() + i * num_targets;
      for (size_t t = 0; t < num_targets; ++t) total += row[t];
      table.totals[i] = total;
    }
  } else {
    table.rows.clear();
    std::vector<size_t> gains = BatchGain(table.edges);
    for (size_t i = 0; i < gains.size(); ++i) {
      table.totals[i] = static_cast<uint32_t>(gains[i]);
    }
  }
  table.dirty.clear();
  table.active = true;
  table.scope = scope;
  table.per_target = per_target;
  table.view.edges = table.edges;
  table.view.totals = table.totals;
  table.view.rows = per_target ? std::span<const uint32_t>(table.rows)
                               : std::span<const uint32_t>();
  table.view.num_targets = per_target ? num_targets : 0;
  table.view.dirty = {};
  table.view.all_dirty = true;
  table.view.num_candidates = table.edges.size();
  return table.view;
}

}  // namespace tpp::core
