#include "core/alternatives.h"

#include <unordered_set>

#include "common/strings.h"
#include "motif/enumerate.h"

namespace tpp::core {

using graph::Edge;
using graph::EdgeKey;
using graph::Graph;
using graph::MakeEdgeKey;
using graph::NodeId;

namespace {

// Adds `k` random non-links to `g`, avoiding `forbidden` keys. Returns
// the inserted edges; may return fewer if the graph is near-complete.
std::vector<Edge> AddRandomNonLinks(
    Graph& g, size_t k, const std::unordered_set<EdgeKey>& forbidden,
    Rng& rng) {
  std::vector<Edge> added;
  const size_t n = g.NumNodes();
  if (n < 2) return added;
  size_t attempts = 0;
  const size_t max_attempts = 1000 * (k + 1);
  while (added.size() < k && attempts++ < max_attempts) {
    NodeId u = static_cast<NodeId>(rng.UniformIndex(n));
    NodeId v = static_cast<NodeId>(rng.UniformIndex(n));
    if (u == v || g.HasEdge(u, v)) continue;
    if (forbidden.count(MakeEdgeKey(u, v)) > 0) continue;
    Status s = g.AddEdge(u, v);
    TPP_CHECK(s.ok());
    added.emplace_back(u, v);
  }
  return added;
}

std::unordered_set<EdgeKey> TargetKeys(const TppInstance& instance) {
  std::unordered_set<EdgeKey> keys;
  keys.reserve(instance.targets.size() * 2);
  for (const Edge& t : instance.targets) keys.insert(t.Key());
  return keys;
}

}  // namespace

Result<PerturbationResult> RandomLinkAddition(const TppInstance& instance,
                                              size_t k, Rng& rng) {
  PerturbationResult result;
  result.graph = instance.released;
  result.similarity_before = motif::TotalSimilarity(
      instance.released, instance.targets, instance.motif);
  result.added =
      AddRandomNonLinks(result.graph, k, TargetKeys(instance), rng);
  result.similarity_after = motif::TotalSimilarity(
      result.graph, instance.targets, instance.motif);
  return result;
}

Result<PerturbationResult> RandomLinkSwitch(const TppInstance& instance,
                                            size_t k, Rng& rng) {
  PerturbationResult result;
  result.graph = instance.released;
  result.similarity_before = motif::TotalSimilarity(
      instance.released, instance.targets, instance.motif);
  // Step 1: delete k random existing links.
  for (size_t i = 0; i < k && result.graph.NumEdges() > 0; ++i) {
    std::vector<EdgeKey> keys = result.graph.EdgeKeys();
    EdgeKey victim = keys[rng.UniformIndex(keys.size())];
    Status s = result.graph.RemoveEdgeKey(victim);
    TPP_CHECK(s.ok());
    result.deleted.emplace_back(graph::EdgeKeyU(victim),
                                graph::EdgeKeyV(victim));
  }
  // Step 2: add k random non-links (never resurrecting a target).
  result.added =
      AddRandomNonLinks(result.graph, k, TargetKeys(instance), rng);
  result.similarity_after = motif::TotalSimilarity(
      result.graph, instance.targets, instance.motif);
  return result;
}

}  // namespace tpp::core
