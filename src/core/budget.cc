#include "core/budget.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace tpp::core {

std::string_view BudgetDivisionName(BudgetDivision division) {
  switch (division) {
    case BudgetDivision::kTargetSubgraphBased:
      return "TBD";
    case BudgetDivision::kDegreeProductBased:
      return "DBD";
  }
  return "Unknown";
}

std::vector<size_t> ProportionalDivision(const std::vector<double>& weights,
                                         size_t k,
                                         const std::vector<size_t>& caps) {
  const size_t n = weights.size();
  std::vector<size_t> out(n, 0);
  if (n == 0 || k == 0) return out;
  TPP_CHECK(caps.empty() || caps.size() == n);

  auto cap_of = [&](size_t i) {
    return caps.empty() ? k : std::min(caps[i], k);
  };

  double total_weight = 0.0;
  for (double w : weights) {
    TPP_CHECK_GE(w, 0.0);
    total_weight += w;
  }
  std::vector<double> effective(n);
  if (total_weight <= 0.0) {
    // Degenerate: split uniformly.
    std::fill(effective.begin(), effective.end(), 1.0);
    total_weight = static_cast<double>(n);
  } else {
    for (size_t i = 0; i < n; ++i) effective[i] = weights[i];
  }

  // Largest-remainder apportionment with caps: floor the ideal shares, then
  // hand out remaining units by descending fractional part, then spill any
  // capped surplus to uncapped targets by descending weight.
  std::vector<double> ideal(n);
  size_t assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    ideal[i] = static_cast<double>(k) * effective[i] / total_weight;
    out[i] = std::min(static_cast<size_t>(std::floor(ideal[i])), cap_of(i));
    assigned += out[i];
  }
  // Order targets by fractional remainder (desc), index asc for ties.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double fa = ideal[a] - std::floor(ideal[a]);
    double fb = ideal[b] - std::floor(ideal[b]);
    return fa > fb;
  });
  // Distribute one unit at a time until k is reached or everyone is capped.
  bool progress = true;
  while (assigned < k && progress) {
    progress = false;
    for (size_t i : order) {
      if (assigned >= k) break;
      if (out[i] < cap_of(i) && effective[i] > 0.0) {
        ++out[i];
        ++assigned;
        progress = true;
      }
    }
    if (!progress) {
      // All positive-weight targets capped; allow zero-weight ones.
      for (size_t i : order) {
        if (assigned >= k) break;
        if (out[i] < cap_of(i)) {
          ++out[i];
          ++assigned;
          progress = true;
        }
      }
      if (!progress) break;  // every target at cap
    }
  }
  return out;
}

std::vector<size_t> DivideBudgetTbd(
    const std::vector<size_t>& initial_similarities, size_t k) {
  std::vector<double> weights(initial_similarities.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<double>(initial_similarities[i]);
  }
  return ProportionalDivision(weights, k, initial_similarities);
}

std::vector<size_t> DivideBudgetDbd(const TppInstance& instance, size_t k) {
  std::vector<double> weights(instance.targets.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    const graph::Edge& t = instance.targets[i];
    weights[i] = static_cast<double>(instance.released.Degree(t.u)) *
                 static_cast<double>(instance.released.Degree(t.v));
  }
  return ProportionalDivision(weights, k, /*caps=*/{});
}

}  // namespace tpp::core
