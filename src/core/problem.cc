#include "core/problem.h"

#include <unordered_set>

#include "common/strings.h"

namespace tpp::core {

using graph::Edge;
using graph::EdgeKey;
using graph::Graph;

Result<TppInstance> MakeInstance(const Graph& original,
                                 std::vector<Edge> targets,
                                 motif::MotifKind motif) {
  TppInstance inst;
  inst.released = original;
  inst.motif = motif;
  std::unordered_set<EdgeKey> seen;
  seen.reserve(targets.size() * 2);
  for (const Edge& t : targets) {
    if (!seen.insert(t.Key()).second) {
      return Status::InvalidArgument(
          StrFormat("duplicate target (%u,%u)", t.u, t.v));
    }
    Status s = inst.released.RemoveEdge(t.u, t.v);
    if (!s.ok()) {
      return Status::InvalidArgument(
          StrFormat("target (%u,%u) is not an edge of the graph", t.u, t.v));
    }
  }
  inst.targets = std::move(targets);
  return inst;
}

Result<std::vector<Edge>> SampleTargets(const Graph& g, size_t count,
                                        Rng& rng) {
  if (count > g.NumEdges()) {
    return Status::InvalidArgument(
        StrFormat("cannot sample %zu targets from %zu edges", count,
                  g.NumEdges()));
  }
  std::vector<Edge> edges = g.Edges();
  return rng.SampleK(edges, count);
}

}  // namespace tpp::core
