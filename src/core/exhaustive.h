// Exhaustive optimal protector selection for tiny instances.
//
// Used only by tests and the approximation-ratio experiments: enumerates
// all candidate subsets of size <= k and returns the best achievable
// dissimilarity gain. Exponential — guarded by an explicit work limit.

#ifndef TPP_CORE_EXHAUSTIVE_H_
#define TPP_CORE_EXHAUSTIVE_H_

#include <vector>

#include "common/result.h"
#include "core/problem.h"

namespace tpp::core {

/// Result of exhaustive search.
struct ExhaustiveResult {
  std::vector<graph::Edge> best_set;  ///< an optimal protector set
  size_t best_gain = 0;               ///< max achievable gain with <= k
  size_t subsets_examined = 0;
};

/// Finds an optimal SGBT protector set of size <= k by exhaustive search
/// over the restricted candidate edges (optimal sets never benefit from
/// edges outside target subgraphs, by Lemma 5). Errors with OutOfRange if
/// the number of subsets would exceed `max_subsets`.
Result<ExhaustiveResult> ExhaustiveOptimal(const TppInstance& instance,
                                           size_t k,
                                           size_t max_subsets = 2'000'000);

}  // namespace tpp::core

#endif  // TPP_CORE_EXHAUSTIVE_H_
