#include "core/indexed_engine.h"

#include <algorithm>

#include "common/check.h"
#include "common/flags.h"
#include "common/thread_pool.h"

namespace tpp::core {

using graph::EdgeKey;

namespace {

// Below this batch size thread spawn overhead dominates the O(1) lookups.
constexpr size_t kMinEdgesPerThread = 2048;

// Row fills read a whole CSR-2 segment each, so they amortize fan-out at
// a much smaller batch than the O(1) Gain lookups do.
constexpr size_t kMinRowsPerThread = 256;

constexpr uint32_t kNoRow = motif::IncidenceIndex::kNoEdge;

}  // namespace

Result<IndexedEngine> IndexedEngine::Create(const TppInstance& instance) {
  return Create(instance, motif::IncidenceIndex::BuildOptions{});
}

Result<IndexedEngine> IndexedEngine::Create(
    const TppInstance& instance,
    const motif::IncidenceIndex::BuildOptions& build_options,
    motif::IncidenceIndex::BuildStats* build_stats) {
  TPP_ASSIGN_OR_RETURN(motif::IncidenceIndex index,
                       motif::IncidenceIndex::Build(
                           instance.released, instance.targets,
                           instance.motif, build_options, build_stats));
  return IndexedEngine(instance.released, std::move(index), instance.targets,
                       instance.motif);
}

Result<IndexedEngine> IndexedEngine::Adopt(const TppInstance& instance,
                                           motif::IncidenceIndex index) {
  if (index.NumTargets() != instance.targets.size()) {
    return Status::InvalidArgument(
        "adopted index was built over a different target count");
  }
  return IndexedEngine(instance.released, std::move(index), instance.targets,
                       instance.motif);
}

Status IndexedEngine::ApplyEdit(const graph::GraphDelta& delta,
                                const CancellationToken* cancel) {
  // Graph first (the repair enumerates created instances on the post-edit
  // graph), index second; a repair failure rolls the graph back by
  // replaying the inverse delta, so errors leave the engine unchanged.
  TPP_RETURN_IF_ERROR(g_.ApplyDelta(delta));
  Status repaired = index_.ApplyGraphDelta(g_, targets_, motif_, delta, cancel);
  if (!repaired.ok()) {
    graph::GraphDelta inverse;
    inverse.inserted = delta.removed;
    inverse.removed = delta.inserted;
    Status rollback = g_.ApplyDelta(inverse);
    TPP_CHECK(rollback.ok());
    return repaired;
  }
  // The candidate universe and count arrays the session aliases changed
  // shape: reset, exactly as Clone does, so the next BeginRound is a full
  // evaluation against the repaired layout.
  table_.Reset();
  session_dirty_.clear();
  row_ids_ = {};
  id_to_row_ = {};
  session_flush_epoch_ = 0;
  return Status::Ok();
}

std::vector<size_t> IndexedEngine::BatchGain(std::span<const EdgeKey> edges) {
  std::vector<size_t> out(edges.size());
  // An explicit set_threads() is honored exactly (benchmarks and tests
  // exercise the parallel partition on small batches); the global default
  // only parallelizes batches big enough to amortize thread spawns.
  // One count flush up front keeps the fan-out below a pure read: every
  // worker's Gain call then sees an empty maintenance queue.
  index_.FlushDeferredCounts();
  size_t workers =
      threads_ > 0
          ? std::min(static_cast<size_t>(threads_), edges.size())
          : std::min(static_cast<size_t>(GlobalThreadCount()),
                     edges.size() / kMinEdgesPerThread);
  if (workers <= 1) {
    for (size_t i = 0; i < edges.size(); ++i) out[i] = index_.Gain(edges[i]);
    gain_evals_ += edges.size();
    return out;
  }
  // Chunked dynamic partition on the shared process pool: workers claim
  // contiguous ranges, writing disjoint slots of `out` (no synchronization
  // on reads — gain queries never mutate the index). The pool's threads
  // are created once per process, not once per sweep.
  GlobalThreadPool().ParallelFor(
      edges.size(), static_cast<int>(workers), /*grain=*/1024,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) out[i] = index_.Gain(edges[i]);
      });
  // Work accounting folds in after the parallel region: ParallelFor
  // covers all of [0, n) before returning, so the count is exactly the
  // batch size and pool workers never write unsynchronized engine state.
  gain_evals_ += edges.size();
  return out;
}

std::vector<size_t> IndexedEngine::GainVector(EdgeKey e) {
  ++gain_evals_;
  std::vector<size_t> diffs(index_.NumTargets(), 0);
  index_.AccumulateGains(e, &diffs);
  return diffs;
}

void IndexedEngine::GainVectorInto(EdgeKey e, std::span<size_t> out) {
  ++gain_evals_;
  std::fill(out.begin(), out.end(), size_t{0});
  index_.AccumulateGains(e, out);
}

void IndexedEngine::ParallelRowJob(
    size_t n, const std::function<void(size_t, size_t)>& body) {
  size_t workers = threads_ > 0
                       ? std::min(static_cast<size_t>(threads_), n)
                       : std::min(static_cast<size_t>(GlobalThreadCount()),
                                  n / kMinRowsPerThread);
  if (workers <= 1) {
    body(0, n);
    return;
  }
  GlobalThreadPool().ParallelFor(n, static_cast<int>(workers),
                                 /*grain=*/128, body);
}

void IndexedEngine::FillGainRows(std::span<const uint32_t> ids,
                                 size_t stride, uint32_t* out) {
  // One flush up front makes every row fill below a pure read of the
  // index, so the fan-out needs no synchronization: workers write
  // disjoint output rows and only read CSR-2 cells.
  index_.FlushDeferredMaintenance();
  // Blocked pass: maximal runs of consecutive ids (with consecutive
  // output rows by construction here) go through one streaming
  // ReadGainRows walk of their contiguous CSR-2 block instead of per-row
  // offset re-derivation. Whole-universe fills are one run per chunk;
  // dirty-set fills get runs wherever dirtied ids cluster.
  ParallelRowJob(ids.size(), [&](size_t begin, size_t end) {
    size_t i = begin;
    while (i < end) {
      if (ids[i] == kNoRow) {
        std::fill(out + i * stride, out + (i + 1) * stride, 0u);
        ++i;
        continue;
      }
      size_t len = 1;
      while (i + len < end && ids[i + len] == ids[i] + len) ++len;
      index_.ReadGainRows(ids[i], len, stride, out + i * stride);
      i += len;
    }
  });
}

void IndexedEngine::BatchGainVector(std::span<const EdgeKey> edges,
                                    std::vector<uint32_t>* out) {
  const size_t num_targets = index_.NumTargets();
  out->resize(edges.size() * num_targets);
  std::vector<uint32_t> ids(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    ids[i] = index_.InternedIdOf(edges[i]);
  }
  FillGainRows(ids, num_targets, out->data());
  // Work accounting folds in after the parallel region, exactly like
  // BatchGain: no pool worker writes unsynchronized engine state.
  gain_evals_ += edges.size();
}

size_t IndexedEngine::DeleteEdge(EdgeKey e) {
  if (!g_.HasEdgeKey(e)) return 0;  // absent or already deleted: no-op
  Status s = g_.RemoveEdgeKey(e);
  TPP_CHECK(s.ok());
  // Kill marks only; count and cell maintenance stays queued in the index
  // until the next gain read (BeginRound collects the dirty set from the
  // flush it performs then).
  return index_.DeleteEdge(e);
}

std::vector<EdgeKey> IndexedEngine::Candidates(CandidateScope scope) {
  if (scope == CandidateScope::kAllEdges) return g_.EdgeKeys();
  return index_.AliveCandidateEdges();
}

void IndexedEngine::CandidatesInto(CandidateScope scope,
                                   std::vector<EdgeKey>* out) {
  if (scope == CandidateScope::kAllEdges) {
    *out = g_.EdgeKeys();
    return;
  }
  index_.AliveCandidateEdgesInto(out);
}

void IndexedEngine::CandidateGains(CandidateScope scope,
                                   std::vector<EdgeKey>* edges,
                                   std::vector<size_t>* gains) {
  if (scope != CandidateScope::kTargetSubgraphEdges) {
    Engine::CandidateGains(scope, edges, gains);
    return;
  }
  index_.AliveCandidateGains(edges, gains);
  gain_evals_ += edges->size();
}

void IndexedEngine::InitRoundSession(CandidateScope scope, bool per_target) {
  table_.Reset();
  session_dirty_.clear();
  const size_t num_targets = index_.NumTargets();
  size_t num_rows = 0;
  if (scope == CandidateScope::kTargetSubgraphEdges) {
    // The universe is the interned edge set: row index == dense edge id,
    // so the totals span aliases the index's eagerly-maintained alive
    // counts — the restricted-scope total table needs NO per-round upkeep
    // at all. Dead candidates keep total 0 and can never win a pick.
    num_rows = index_.NumInternedEdges();
    id_to_row_ = {};
    table_.view.edges = index_.InternedEdgeKeys();
    table_.view.totals = index_.PerEdgeAliveCounts();
    row_ids_.resize(num_rows);
    for (size_t i = 0; i < num_rows; ++i) {
      row_ids_[i] = static_cast<uint32_t>(i);
    }
  } else {
    // Full scope: the universe is the graph's edge set at session start
    // (a committed pick zeroes its row via the dirty set, exactly like a
    // candidate dying). Non-interned edges have no instances, hence gain
    // 0 forever and never appear in a dirty set.
    table_.edges = g_.EdgeKeys();
    num_rows = table_.edges.size();
    table_.totals.resize(num_rows);
    row_ids_.assign(num_rows, kNoRow);
    id_to_row_.assign(index_.NumInternedEdges(), kNoRow);
    const std::vector<uint32_t>& counts = index_.PerEdgeAliveCounts();
    for (size_t i = 0; i < num_rows; ++i) {
      const uint32_t id = index_.InternedIdOf(table_.edges[i]);
      row_ids_[i] = id;
      if (id == kNoRow) {
        table_.totals[i] = 0;
      } else {
        table_.totals[i] = counts[id];
        id_to_row_[id] = static_cast<uint32_t>(i);
      }
    }
    table_.view.edges = table_.edges;
    table_.view.totals = table_.totals;
  }
  if (per_target) {
    table_.rows.resize(num_rows * num_targets);
    FillGainRows(row_ids_, num_targets, table_.rows.data());
    table_.view.rows = table_.rows;
    table_.view.num_targets = num_targets;
  }
  table_.active = true;
  table_.scope = scope;
  table_.per_target = per_target;
  table_.view.all_dirty = true;
  table_.view.dirty = {};
}

const RoundGains& IndexedEngine::BeginRound(CandidateScope scope,
                                            bool per_target) {
  // A count-flush epoch different from the one this session recorded
  // means some other read (Gain, BatchGain, SimilarityOf, Candidates, a
  // direct index access, ...) flushed queued kills WITHOUT dirty
  // collection since the last round — that dirty information is gone, so
  // the only correct continuation is a full re-evaluation. Sessions
  // whose rounds only interleave DeleteEdge with BeginRound (the greedy
  // loops) never trip this.
  const bool restart = !table_.active || table_.scope != scope ||
                       table_.per_target != per_target ||
                       index_.CountsFlushEpoch() != session_flush_epoch_;
  if (restart) {
    index_.FlushDeferredCounts();
    InitRoundSession(scope, per_target);
  } else {
    // Incremental round: the count flush applies everything the session's
    // deletions queued and emits exactly the dirty set — the candidates
    // whose gains changed. Everything else keeps last round's state, and
    // a session without per-target rows (SGB-style) never triggers the
    // CSR-2 half of the maintenance at all.
    session_dirty_.clear();
    index_.FlushDeferredCounts(&session_dirty_);
    std::sort(session_dirty_.begin(), session_dirty_.end());
    table_.dirty.clear();
    table_.dirty.reserve(session_dirty_.size());
    const bool full_scope = scope == CandidateScope::kAllEdges;
    const std::vector<uint32_t>& counts = index_.PerEdgeAliveCounts();
    for (uint32_t id : session_dirty_) {
      const uint32_t row = full_scope ? id_to_row_[id] : id;
      if (row == kNoRow) continue;  // dirtied edge outside the universe
      table_.dirty.push_back(row);
      if (full_scope) table_.totals[row] = counts[id];
    }
    if (per_target && !table_.dirty.empty()) {
      index_.FlushDeferredMaintenance();
      const size_t num_targets = table_.view.num_targets;
      uint32_t* rows = table_.rows.data();
      // Blocked dirty refresh: the dirty rows are sorted, and under the
      // restricted scope row == id, so consecutive dirty rows are
      // consecutive ids — one streaming ReadGainRows per run. Under the
      // full scope a run additionally requires the id column to step with
      // the rows (non-interned edges sit between universe rows), which
      // the inner extension check enforces. Dirty ids cluster naturally:
      // a killed instance dirties arity edges interned near each other.
      ParallelRowJob(table_.dirty.size(), [&](size_t begin, size_t end) {
        size_t k = begin;
        while (k < end) {
          const uint32_t row = table_.dirty[k];
          const uint32_t id = full_scope ? row_ids_[row] : row;
          size_t len = 1;
          while (k + len < end) {
            const uint32_t next_row = table_.dirty[k + len];
            if (next_row != row + len) break;
            if (full_scope && row_ids_[next_row] != id + len) break;
            ++len;
          }
          index_.ReadGainRows(id, len, num_targets,
                              rows + row * num_targets);
          k += len;
        }
      });
    }
    table_.view.dirty = table_.dirty;
    table_.view.all_dirty = false;
  }
  session_flush_epoch_ = index_.CountsFlushEpoch();
  table_.view.num_candidates =
      scope == CandidateScope::kTargetSubgraphEdges ? index_.NumAliveEdges()
                                                    : g_.NumEdges();
  // One evaluation per live candidate, exactly the cold sweep's count.
  gain_evals_ += table_.view.num_candidates;
  return table_.view;
}

}  // namespace tpp::core
