#include "core/indexed_engine.h"

#include <algorithm>

#include "common/check.h"
#include "common/flags.h"
#include "common/thread_pool.h"

namespace tpp::core {

using graph::EdgeKey;

namespace {

// Below this batch size thread spawn overhead dominates the O(1) lookups.
constexpr size_t kMinEdgesPerThread = 2048;

}  // namespace

Result<IndexedEngine> IndexedEngine::Create(const TppInstance& instance) {
  return Create(instance, motif::IncidenceIndex::BuildOptions{});
}

Result<IndexedEngine> IndexedEngine::Create(
    const TppInstance& instance,
    const motif::IncidenceIndex::BuildOptions& build_options,
    motif::IncidenceIndex::BuildStats* build_stats) {
  TPP_ASSIGN_OR_RETURN(motif::IncidenceIndex index,
                       motif::IncidenceIndex::Build(
                           instance.released, instance.targets,
                           instance.motif, build_options, build_stats));
  return IndexedEngine(instance.released, std::move(index));
}

std::vector<size_t> IndexedEngine::BatchGain(std::span<const EdgeKey> edges) {
  std::vector<size_t> out(edges.size());
  // An explicit set_threads() is honored exactly (benchmarks and tests
  // exercise the parallel partition on small batches); the global default
  // only parallelizes batches big enough to amortize thread spawns.
  size_t workers =
      threads_ > 0
          ? std::min(static_cast<size_t>(threads_), edges.size())
          : std::min(static_cast<size_t>(GlobalThreadCount()),
                     edges.size() / kMinEdgesPerThread);
  if (workers <= 1) {
    for (size_t i = 0; i < edges.size(); ++i) out[i] = index_.Gain(edges[i]);
    gain_evals_ += edges.size();
    return out;
  }
  // Chunked dynamic partition on the shared process pool: workers claim
  // contiguous ranges, writing disjoint slots of `out` (no synchronization
  // on reads — gain queries never mutate the index). The pool's threads
  // are created once per process, not once per sweep.
  GlobalThreadPool().ParallelFor(
      edges.size(), static_cast<int>(workers), /*grain=*/1024,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) out[i] = index_.Gain(edges[i]);
      });
  // Work accounting folds in after the parallel region: ParallelFor
  // covers all of [0, n) before returning, so the count is exactly the
  // batch size and pool workers never write unsynchronized engine state.
  gain_evals_ += edges.size();
  return out;
}

std::vector<size_t> IndexedEngine::GainVector(EdgeKey e) {
  ++gain_evals_;
  std::vector<size_t> diffs(index_.NumTargets(), 0);
  index_.AccumulateGains(e, &diffs);
  return diffs;
}

size_t IndexedEngine::DeleteEdge(EdgeKey e) {
  if (!g_.HasEdgeKey(e)) return 0;  // absent or already deleted: no-op
  Status s = g_.RemoveEdgeKey(e);
  TPP_CHECK(s.ok());
  return index_.DeleteEdge(e);
}

std::vector<EdgeKey> IndexedEngine::Candidates(CandidateScope scope) {
  if (scope == CandidateScope::kAllEdges) return g_.EdgeKeys();
  return index_.AliveCandidateEdges();
}

void IndexedEngine::CandidateGains(CandidateScope scope,
                                   std::vector<EdgeKey>* edges,
                                   std::vector<size_t>* gains) {
  if (scope != CandidateScope::kTargetSubgraphEdges) {
    Engine::CandidateGains(scope, edges, gains);
    return;
  }
  index_.AliveCandidateGains(edges, gains);
  gain_evals_ += edges->size();
}

}  // namespace tpp::core
