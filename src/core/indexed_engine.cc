#include "core/indexed_engine.h"

#include "common/check.h"

namespace tpp::core {

using graph::EdgeKey;

Result<IndexedEngine> IndexedEngine::Create(const TppInstance& instance) {
  TPP_ASSIGN_OR_RETURN(motif::IncidenceIndex index,
                       motif::IncidenceIndex::Build(
                           instance.released, instance.targets,
                           instance.motif));
  return IndexedEngine(instance.released, std::move(index));
}

std::vector<size_t> IndexedEngine::GainVector(EdgeKey e) {
  ++gain_evals_;
  std::vector<size_t> diffs(index_.NumTargets(), 0);
  index_.AccumulateGains(e, &diffs);
  return diffs;
}

size_t IndexedEngine::DeleteEdge(EdgeKey e) {
  if (!g_.HasEdgeKey(e)) return 0;
  Status s = g_.RemoveEdgeKey(e);
  TPP_CHECK(s.ok());
  return index_.DeleteEdge(e);
}

std::vector<EdgeKey> IndexedEngine::Candidates(CandidateScope scope) {
  if (scope == CandidateScope::kAllEdges) return g_.EdgeKeys();
  return index_.AliveCandidateEdges();
}

}  // namespace tpp::core
