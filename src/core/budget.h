// Budget division strategies for the multi-local-budget problem (MLBT).

#ifndef TPP_CORE_BUDGET_H_
#define TPP_CORE_BUDGET_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/problem.h"

namespace tpp::core {

/// The two division strategies of paper §V-A.
enum class BudgetDivision {
  kTargetSubgraphBased,  ///< TBD: k_t proportional to |W_t|, capped at |W_t|
  kDegreeProductBased,   ///< DBD: k_t proportional to deg(u) * deg(v)
};

/// Stable display name: "TBD" / "DBD".
std::string_view BudgetDivisionName(BudgetDivision division);

/// Splits integer budget `k` across targets proportionally to `weights`
/// using the largest-remainder method, honoring optional per-target `caps`
/// (pass empty for uncapped). The result sums to min(k, sum of caps); all
/// ties are broken deterministically by target index. Zero-weight targets
/// receive budget only if every weight is zero (then the split is uniform).
std::vector<size_t> ProportionalDivision(const std::vector<double>& weights,
                                         size_t k,
                                         const std::vector<size_t>& caps);

/// TBD: weight_t = |W_t| (initial target-subgraph count), cap k_t <= |W_t|.
/// `initial_similarities` must be s({}, t) for each target.
std::vector<size_t> DivideBudgetTbd(
    const std::vector<size_t>& initial_similarities, size_t k);

/// DBD: weight_t = deg(u) * deg(v) in the released (phase-1) graph.
/// Uncapped; a target of high-degree ends gets a large share even when it
/// has few target subgraphs, which is exactly the weakness the paper's
/// evaluation observes for DBD.
std::vector<size_t> DivideBudgetDbd(const TppInstance& instance, size_t k);

}  // namespace tpp::core

#endif  // TPP_CORE_BUDGET_H_
