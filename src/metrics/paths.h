// Average path length (Table II metric "l").

#ifndef TPP_METRICS_PATHS_H_
#define TPP_METRICS_PATHS_H_

#include <cstddef>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace tpp::metrics {

/// Options for average-path-length estimation.
struct AplOptions {
  /// If > 0 and smaller than the node count, run BFS from this many
  /// uniformly sampled source nodes instead of all nodes (the paper itself
  /// skips l on DBLP because the exact computation is impractical).
  size_t sample_sources = 0;
  /// Seed for source sampling (only used when sampling).
  uint64_t seed = 1;
  /// BFS sweeps to run in parallel; 1 = sequential. The result is
  /// bit-identical regardless of thread count (integer sums are combined
  /// in source order).
  size_t num_threads = 1;
};

/// Average BFS distance over all reachable ordered pairs (u, v), u != v.
/// Unreachable pairs are excluded from the average, the standard convention
/// for disconnected graphs. Errors if the graph has < 2 nodes or no
/// reachable pair exists.
Result<double> AveragePathLength(const graph::Graph& g,
                                 const AplOptions& options = {});

}  // namespace tpp::metrics

#endif  // TPP_METRICS_PATHS_H_
