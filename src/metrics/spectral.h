// Laplacian spectrum (Table II metric "mu": second largest eigenvalue).
//
// Two solvers are provided:
//   * DenseSymmetricEigenvalues — cyclic Jacobi on an explicit matrix;
//     exact, O(n^3), used directly for small graphs and as the test oracle;
//   * TopLaplacianEigenvalues — Lanczos with full reorthogonalization on
//     the implicit Laplacian operator; scales to large sparse graphs.

#ifndef TPP_METRICS_SPECTRAL_H_
#define TPP_METRICS_SPECTRAL_H_

#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace tpp::metrics {

/// All eigenvalues of a dense symmetric matrix (row-major, n x n), sorted
/// descending. Cyclic Jacobi; errors if the matrix is not square or not
/// symmetric within 1e-9.
Result<std::vector<double>> DenseSymmetricEigenvalues(
    const std::vector<double>& matrix, size_t n);

/// The dense Laplacian L = D - A of `g` (row-major). Intended for small
/// graphs and tests.
std::vector<double> DenseLaplacian(const graph::Graph& g);

/// Options for the Lanczos solver.
struct LanczosOptions {
  size_t max_iterations = 120;  ///< Krylov dimension cap
  uint64_t seed = 7;            ///< deterministic start vector
};

/// Approximates the `count` largest eigenvalues of the graph Laplacian,
/// sorted descending. Extremal Ritz values converge first, so modest
/// iteration counts give accurate top eigenvalues. For graphs with
/// <= max_iterations nodes the result is exact (full Krylov space).
/// Errors when the graph is empty.
Result<std::vector<double>> TopLaplacianEigenvalues(
    const graph::Graph& g, size_t count, const LanczosOptions& options = {});

/// Convenience: the second largest Laplacian eigenvalue, the "mu" metric
/// the paper uses for spectrum-preservation analysis.
Result<double> SecondLargestLaplacianEigenvalue(
    const graph::Graph& g, const LanczosOptions& options = {});

}  // namespace tpp::metrics

#endif  // TPP_METRICS_SPECTRAL_H_
