// Clustering coefficient (Table II metric "clust").

#ifndef TPP_METRICS_CLUSTERING_H_
#define TPP_METRICS_CLUSTERING_H_

#include "graph/graph.h"

namespace tpp::metrics {

/// Local clustering coefficient of node v: (links among neighbors) /
/// (deg(v) choose 2). Nodes of degree < 2 have coefficient 0 by
/// convention (the formula's denominator vanishes).
double LocalClustering(const graph::Graph& g, graph::NodeId v);

/// Average of LocalClustering over all nodes (Watts-Strogatz style).
/// Returns 0 for an empty graph.
double AverageClustering(const graph::Graph& g);

/// Global transitivity: 3 * triangles / connected triples. Returns 0 when
/// the graph has no connected triple. Provided alongside the average local
/// coefficient because generator calibration uses both.
double GlobalTransitivity(const graph::Graph& g);

}  // namespace tpp::metrics

#endif  // TPP_METRICS_CLUSTERING_H_
