#include "metrics/summary.h"

#include <algorithm>

#include "common/strings.h"
#include "graph/traversal.h"
#include "metrics/clustering.h"
#include "metrics/kcore.h"

namespace tpp::metrics {

using graph::Graph;
using graph::NodeId;

GraphSummary SummarizeGraph(const Graph& g) {
  GraphSummary s;
  s.num_nodes = g.NumNodes();
  s.num_edges = g.NumEdges();
  if (s.num_nodes == 0) return s;
  s.min_degree = g.NumNodes() ? g.Degree(0) : 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    size_t d = g.Degree(v);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) ++s.num_isolated;
  }
  s.avg_degree = 2.0 * static_cast<double>(s.num_edges) /
                 static_cast<double>(s.num_nodes);
  if (s.num_nodes > 1) {
    s.density = static_cast<double>(s.num_edges) /
                (static_cast<double>(s.num_nodes) *
                 static_cast<double>(s.num_nodes - 1) / 2.0);
  }
  graph::Components comps = graph::ConnectedComponents(g);
  s.num_components = comps.num_components;
  for (size_t size : comps.sizes) {
    s.largest_component = std::max(s.largest_component, size);
  }
  s.avg_clustering = AverageClustering(g);
  s.transitivity = GlobalTransitivity(g);
  s.degeneracy = Degeneracy(g);
  return s;
}

std::vector<size_t> DegreeHistogram(const Graph& g) {
  size_t max_degree = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
  }
  std::vector<size_t> hist(max_degree + 1, 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ++hist[g.Degree(v)];
  }
  return hist;
}

std::string SummaryToString(const GraphSummary& s) {
  std::string out;
  out += StrFormat("nodes:             %zu\n", s.num_nodes);
  out += StrFormat("edges:             %zu\n", s.num_edges);
  out += StrFormat("degree (min/avg/max): %zu / %.2f / %zu\n", s.min_degree,
                   s.avg_degree, s.max_degree);
  out += StrFormat("density:           %.6f\n", s.density);
  out += StrFormat("components:        %zu (largest %zu, isolated %zu)\n",
                   s.num_components, s.largest_component, s.num_isolated);
  out += StrFormat("avg clustering:    %.4f\n", s.avg_clustering);
  out += StrFormat("transitivity:      %.4f\n", s.transitivity);
  out += StrFormat("degeneracy:        %zu\n", s.degeneracy);
  return out;
}

}  // namespace tpp::metrics
