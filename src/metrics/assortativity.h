// Degree assortativity coefficient (Table II metric "r").

#ifndef TPP_METRICS_ASSORTATIVITY_H_
#define TPP_METRICS_ASSORTATIVITY_H_

#include "common/result.h"
#include "graph/graph.h"

namespace tpp::metrics {

/// Newman's degree assortativity: the Pearson correlation of the degrees
/// at the two ends of a uniformly random edge. In [-1, 1]. Errors if the
/// graph has no edges or the degree distribution at edge ends is constant
/// (zero variance makes the coefficient undefined).
Result<double> DegreeAssortativity(const graph::Graph& g);

}  // namespace tpp::metrics

#endif  // TPP_METRICS_ASSORTATIVITY_H_
