// Graph summary statistics: the one-call profile used by examples, the
// CLI, and dataset calibration.

#ifndef TPP_METRICS_SUMMARY_H_
#define TPP_METRICS_SUMMARY_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace tpp::metrics {

/// Degree-distribution and connectivity profile of a graph.
struct GraphSummary {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t min_degree = 0;
  size_t max_degree = 0;
  double avg_degree = 0.0;
  double density = 0.0;           ///< m / (n choose 2)
  size_t num_components = 0;
  size_t largest_component = 0;   ///< node count of the largest component
  size_t num_isolated = 0;        ///< degree-0 nodes
  double avg_clustering = 0.0;
  double transitivity = 0.0;
  size_t degeneracy = 0;          ///< max core number
};

/// Computes the summary. O(n + m + triangle counting).
GraphSummary SummarizeGraph(const graph::Graph& g);

/// Degree histogram: hist[d] = number of nodes of degree d.
std::vector<size_t> DegreeHistogram(const graph::Graph& g);

/// Multi-line human-readable rendering of the summary.
std::string SummaryToString(const GraphSummary& summary);

}  // namespace tpp::metrics

#endif  // TPP_METRICS_SUMMARY_H_
