#include "metrics/assortativity.h"

#include <cmath>

namespace tpp::metrics {

using graph::Graph;
using graph::NodeId;

Result<double> DegreeAssortativity(const Graph& g) {
  if (g.NumEdges() == 0) {
    return Status::InvalidArgument("assortativity undefined without edges");
  }
  // Newman (2002), eq. (4): over all edges with end degrees (j, k),
  //   r = [M^-1 sum jk - (M^-1 sum (j+k)/2)^2] /
  //       [M^-1 sum (j^2+k^2)/2 - (M^-1 sum (j+k)/2)^2].
  double sum_jk = 0.0, sum_half = 0.0, sum_sq_half = 0.0;
  const double inv_m = 1.0 / static_cast<double>(g.NumEdges());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const double du = static_cast<double>(g.Degree(u));
    for (NodeId v : g.Neighbors(u)) {
      if (u >= v) continue;  // each undirected edge once
      const double dv = static_cast<double>(g.Degree(v));
      sum_jk += du * dv;
      sum_half += 0.5 * (du + dv);
      sum_sq_half += 0.5 * (du * du + dv * dv);
    }
  }
  const double mean = inv_m * sum_half;
  const double denom = inv_m * sum_sq_half - mean * mean;
  if (std::abs(denom) < 1e-15) {
    return Status::FailedPrecondition(
        "assortativity undefined: constant end degrees");
  }
  return (inv_m * sum_jk - mean * mean) / denom;
}

}  // namespace tpp::metrics
