// k-core decomposition (Table II metric "cn").

#ifndef TPP_METRICS_KCORE_H_
#define TPP_METRICS_KCORE_H_

#include <vector>

#include "graph/graph.h"

namespace tpp::metrics {

/// Core number of every node via the Batagelj–Zaversnik bucket algorithm,
/// O(n + m). The core number of v is the largest k such that v belongs to
/// a subgraph where every node has degree >= k.
std::vector<size_t> CoreNumbers(const graph::Graph& g);

/// Average core number over all nodes (0 for an empty graph).
double AverageCoreNumber(const graph::Graph& g);

/// Degeneracy: the maximum core number (0 for an edgeless graph).
size_t Degeneracy(const graph::Graph& g);

}  // namespace tpp::metrics

#endif  // TPP_METRICS_KCORE_H_
