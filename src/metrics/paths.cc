#include "metrics/paths.h"

#include <atomic>
#include <numeric>

#include "common/thread_pool.h"
#include "graph/traversal.h"

namespace tpp::metrics {

using graph::Graph;
using graph::NodeId;

namespace {

// Distance sums for a contiguous slice of sources.
struct SliceSums {
  uint64_t total = 0;
  uint64_t pairs = 0;
};

SliceSums SumDistances(const Graph& g, const std::vector<NodeId>& sources,
                       size_t begin, size_t end) {
  SliceSums sums;
  const size_t n = g.NumNodes();
  for (size_t i = begin; i < end; ++i) {
    NodeId s = sources[i];
    std::vector<int32_t> dist = graph::BfsDistances(g, s);
    for (NodeId v = 0; v < n; ++v) {
      if (v == s || dist[v] == graph::kUnreachable) continue;
      sums.total += static_cast<uint64_t>(dist[v]);
      ++sums.pairs;
    }
  }
  return sums;
}

}  // namespace

Result<double> AveragePathLength(const Graph& g, const AplOptions& options) {
  const size_t n = g.NumNodes();
  if (n < 2) {
    return Status::InvalidArgument("average path length needs >= 2 nodes");
  }
  std::vector<NodeId> sources;
  if (options.sample_sources > 0 && options.sample_sources < n) {
    Rng rng(options.seed);
    for (size_t i : rng.SampleWithoutReplacement(n, options.sample_sources)) {
      sources.push_back(static_cast<NodeId>(i));
    }
  } else {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), 0);
  }

  // Sum distances over ordered reachable pairs from the chosen sources;
  // with all sources this averages the same value as the unordered-pair
  // definition (each unordered pair counted twice in both numerator and
  // denominator).
  uint64_t total = 0;
  uint64_t pairs = 0;
  size_t threads = std::max<size_t>(1, options.num_threads);
  threads = std::min(threads, sources.size());
  if (threads <= 1) {
    SliceSums sums = SumDistances(g, sources, 0, sources.size());
    total = sums.total;
    pairs = sums.pairs;
  } else {
    // Per-source BFS sweeps on the shared process pool; each chunk's
    // sums fold into the totals atomically (order-independent, so the
    // result stays deterministic).
    std::atomic<uint64_t> atomic_total{0};
    std::atomic<uint64_t> atomic_pairs{0};
    const size_t chunk = (sources.size() + threads - 1) / threads;
    GlobalThreadPool().ParallelFor(
        sources.size(), static_cast<int>(threads), chunk,
        [&](size_t begin, size_t end) {
          SliceSums sums = SumDistances(g, sources, begin, end);
          atomic_total.fetch_add(sums.total);
          atomic_pairs.fetch_add(sums.pairs);
        });
    total = atomic_total.load();
    pairs = atomic_pairs.load();
  }
  if (pairs == 0) {
    return Status::FailedPrecondition("graph has no connected pair");
  }
  return static_cast<double>(total) / static_cast<double>(pairs);
}

}  // namespace tpp::metrics
