#include "metrics/spectral.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace tpp::metrics {

using graph::Graph;
using graph::NodeId;

Result<std::vector<double>> DenseSymmetricEigenvalues(
    const std::vector<double>& matrix, size_t n) {
  if (matrix.size() != n * n) {
    return Status::InvalidArgument(
        StrFormat("matrix size %zu != n^2 (n=%zu)", matrix.size(), n));
  }
  std::vector<double> a = matrix;
  auto at = [&](size_t i, size_t j) -> double& { return a[i * n + j]; };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (std::abs(at(i, j) - at(j, i)) > 1e-9) {
        return Status::InvalidArgument("matrix is not symmetric");
      }
    }
  }
  // Cyclic Jacobi: zero out the largest off-diagonal entries by rotations
  // until the off-diagonal norm is negligible.
  const size_t max_sweeps = 100;
  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) off += at(i, j) * at(i, j);
    }
    if (off < 1e-22 * static_cast<double>(n * n)) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        double app = at(p, p), aqq = at(q, q);
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        for (size_t k = 0; k < n; ++k) {
          double akp = at(k, p), akq = at(k, q);
          at(k, p) = c * akp - s * akq;
          at(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          double apk = at(p, k), aqk = at(q, k);
          at(p, k) = c * apk - s * aqk;
          at(q, k) = s * apk + c * aqk;
        }
      }
    }
  }
  std::vector<double> eig(n);
  for (size_t i = 0; i < n; ++i) eig[i] = at(i, i);
  std::sort(eig.begin(), eig.end(), std::greater<double>());
  return eig;
}

std::vector<double> DenseLaplacian(const Graph& g) {
  const size_t n = g.NumNodes();
  std::vector<double> lap(n * n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    lap[u * n + u] = static_cast<double>(g.Degree(u));
    for (NodeId v : g.Neighbors(u)) {
      lap[u * n + v] = -1.0;
    }
  }
  return lap;
}

namespace {

// y = L x for the implicit Laplacian of g.
void ApplyLaplacian(const Graph& g, const std::vector<double>& x,
                    std::vector<double>* y) {
  const size_t n = g.NumNodes();
  for (NodeId u = 0; u < n; ++u) {
    double acc = static_cast<double>(g.Degree(u)) * x[u];
    for (NodeId v : g.Neighbors(u)) acc -= x[v];
    (*y)[u] = acc;
  }
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void Axpy(double alpha, const std::vector<double>& x,
          std::vector<double>* y) {
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

}  // namespace

Result<std::vector<double>> TopLaplacianEigenvalues(
    const Graph& g, size_t count, const LanczosOptions& options) {
  const size_t n = g.NumNodes();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (count == 0) return std::vector<double>{};

  const size_t m = std::min(n, std::max(count + 2, options.max_iterations));

  // Lanczos with full reorthogonalization. A single Krylov sequence finds
  // each distinct eigenvalue once; to recover multiplicities (e.g. the
  // (n-1)-fold eigenvalue n of K_n's Laplacian) we deflate: whenever the
  // recurrence breaks down (invariant subspace found), restart with a
  // fresh random vector orthogonal to everything seen so far. Segments are
  // exactly L-orthogonal, so the projected matrix is block tridiagonal and
  // the Ritz values are the union over segments.
  std::vector<std::vector<double>> basis;  // global orthonormal basis
  basis.reserve(m);
  Rng rng(options.seed);
  std::vector<double> ritz;  // accumulated Ritz values over all segments
  std::vector<double> w(n);

  auto fresh_start_vector = [&](std::vector<double>* v) -> bool {
    // Random vector, fully orthogonalized against the basis; false when no
    // independent direction remains.
    for (int attempt = 0; attempt < 5; ++attempt) {
      for (double& x : *v) x = rng.UniformReal() - 0.5;
      for (const auto& q : basis) {
        double proj = Dot(*v, q);
        if (proj != 0.0) Axpy(-proj, q, v);
      }
      double norm = std::sqrt(Dot(*v, *v));
      if (norm > 1e-10) {
        for (double& x : *v) x /= norm;
        return true;
      }
    }
    return false;
  };

  auto append_tridiagonal_eigs = [&](const std::vector<double>& alpha,
                                     const std::vector<double>& beta) {
    const size_t k = alpha.size();
    if (k == 0) return;
    std::vector<double> tri(k * k, 0.0);
    for (size_t i = 0; i < k; ++i) {
      tri[i * k + i] = alpha[i];
      if (i + 1 < k) {
        tri[i * k + (i + 1)] = beta[i];
        tri[(i + 1) * k + i] = beta[i];
      }
    }
    Result<std::vector<double>> eigs = DenseSymmetricEigenvalues(tri, k);
    TPP_CHECK(eigs.ok());
    ritz.insert(ritz.end(), eigs->begin(), eigs->end());
  };

  std::vector<double> v(n);
  while (basis.size() < m) {
    if (!fresh_start_vector(&v)) break;
    std::vector<double> alpha, beta;
    size_t segment_start = basis.size();
    while (basis.size() < m) {
      basis.push_back(v);
      ApplyLaplacian(g, v, &w);
      double a_j = Dot(w, v);
      alpha.push_back(a_j);
      Axpy(-a_j, v, &w);
      if (basis.size() - segment_start > 1) {
        Axpy(-beta.back(), basis[basis.size() - 2], &w);
      }
      // Full reorthogonalization for numerical stability.
      for (const auto& q : basis) {
        double proj = Dot(w, q);
        if (proj != 0.0) Axpy(-proj, q, &w);
      }
      double b_j = std::sqrt(Dot(w, w));
      if (b_j < 1e-10 || basis.size() == m) break;  // deflate or budget out
      beta.push_back(b_j);
      for (size_t i = 0; i < n; ++i) v[i] = w[i] / b_j;
    }
    append_tridiagonal_eigs(alpha, beta);
  }

  std::sort(ritz.begin(), ritz.end(), std::greater<double>());
  if (ritz.size() > count) ritz.resize(count);
  return ritz;
}

Result<double> SecondLargestLaplacianEigenvalue(
    const Graph& g, const LanczosOptions& options) {
  TPP_ASSIGN_OR_RETURN(std::vector<double> top,
                       TopLaplacianEigenvalues(g, 2, options));
  if (top.size() < 2) {
    return Status::FailedPrecondition(
        "graph too small for a second eigenvalue");
  }
  return top[1];
}

}  // namespace tpp::metrics
