// Graph utility metrics bundle and the utility-loss ratio (paper §VI-C).

#ifndef TPP_METRICS_UTILITY_H_
#define TPP_METRICS_UTILITY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace tpp::metrics {

/// The Table II metric bundle. Metrics that were disabled or could not be
/// computed (e.g. assortativity on a regular graph) are nullopt.
struct UtilityMetrics {
  std::optional<double> apl;            ///< l: average path length
  std::optional<double> clustering;     ///< clust: avg clustering coeff
  std::optional<double> assortativity;  ///< r
  std::optional<double> avg_core;       ///< cn: average core number
  std::optional<double> mu;             ///< 2nd largest Laplacian eigenvalue
  std::optional<double> modularity;     ///< Mod (via Louvain)
};

/// Which metrics to compute and how.
struct UtilityOptions {
  bool apl = true;
  bool clustering = true;
  bool assortativity = true;
  bool core = true;
  bool mu = true;
  bool modularity = true;
  /// 0 = exact all-pairs BFS; otherwise sample this many BFS sources
  /// (needed on DBLP-scale graphs, as the paper notes).
  size_t apl_sample_sources = 0;
  size_t lanczos_iterations = 120;
  uint64_t seed = 7;
};

/// Computes the enabled metrics; individual failures become nullopt rather
/// than failing the bundle (the paper likewise drops metrics it cannot
/// compute on DBLP).
UtilityMetrics ComputeUtilityMetrics(const graph::Graph& g,
                                     const UtilityOptions& options = {});

/// Utility loss between the original and a perturbed graph:
///   ulr(z) = |z(G) - z(G')| / |z(G)| per metric, and the average over all
/// metrics available in both bundles. Metrics with z(G) == 0 are reported
/// as 0 when z(G') == 0 and skipped otherwise.
struct UtilityLoss {
  /// (metric name, loss ratio), in Table II order, only for metrics
  /// present in both bundles.
  std::vector<std::pair<std::string, double>> per_metric;
  /// Mean of per_metric ratios; 0 if none available.
  double average = 0.0;
};

UtilityLoss UtilityLossRatio(const UtilityMetrics& original,
                             const UtilityMetrics& perturbed);

}  // namespace tpp::metrics

#endif  // TPP_METRICS_UTILITY_H_
