#include "metrics/utility.h"

#include <cmath>

#include "community/louvain.h"
#include "metrics/assortativity.h"
#include "metrics/clustering.h"
#include "metrics/kcore.h"
#include "metrics/paths.h"
#include "metrics/spectral.h"

namespace tpp::metrics {

using graph::Graph;

UtilityMetrics ComputeUtilityMetrics(const Graph& g,
                                     const UtilityOptions& options) {
  UtilityMetrics m;
  if (options.apl) {
    AplOptions apl_opts;
    apl_opts.sample_sources = options.apl_sample_sources;
    apl_opts.seed = options.seed;
    Result<double> r = AveragePathLength(g, apl_opts);
    if (r.ok()) m.apl = *r;
  }
  if (options.clustering) {
    m.clustering = AverageClustering(g);
  }
  if (options.assortativity) {
    Result<double> r = DegreeAssortativity(g);
    if (r.ok()) m.assortativity = *r;
  }
  if (options.core) {
    m.avg_core = AverageCoreNumber(g);
  }
  if (options.mu) {
    LanczosOptions lo;
    lo.max_iterations = options.lanczos_iterations;
    lo.seed = options.seed;
    Result<double> r = SecondLargestLaplacianEigenvalue(g, lo);
    if (r.ok()) m.mu = *r;
  }
  if (options.modularity) {
    Result<community::LouvainResult> r = community::Louvain(g);
    if (r.ok()) m.modularity = r->modularity;
  }
  return m;
}

UtilityLoss UtilityLossRatio(const UtilityMetrics& original,
                             const UtilityMetrics& perturbed) {
  UtilityLoss loss;
  auto add = [&](const char* name, const std::optional<double>& a,
                 const std::optional<double>& b) {
    if (!a.has_value() || !b.has_value()) return;
    double za = *a, zb = *b;
    if (za == 0.0) {
      if (zb == 0.0) loss.per_metric.emplace_back(name, 0.0);
      return;  // cannot normalize a change from exactly zero
    }
    loss.per_metric.emplace_back(name, std::abs(za - zb) / std::abs(za));
  };
  add("l", original.apl, perturbed.apl);
  add("clust", original.clustering, perturbed.clustering);
  add("r", original.assortativity, perturbed.assortativity);
  add("cn", original.avg_core, perturbed.avg_core);
  add("mu", original.mu, perturbed.mu);
  add("Mod", original.modularity, perturbed.modularity);
  if (!loss.per_metric.empty()) {
    double sum = 0.0;
    for (const auto& [name, v] : loss.per_metric) sum += v;
    loss.average = sum / static_cast<double>(loss.per_metric.size());
  }
  return loss;
}

}  // namespace tpp::metrics
