#include "metrics/degree_distribution.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "metrics/summary.h"

namespace tpp::metrics {

using graph::Graph;
using graph::NodeId;

Result<PowerLawFit> FitPowerLawTail(const Graph& g, size_t d_min) {
  if (d_min < 1) {
    return Status::InvalidArgument("d_min must be >= 1");
  }
  double log_sum = 0.0;
  size_t tail = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    size_t d = g.Degree(v);
    if (d < d_min) continue;
    ++tail;
    log_sum +=
        std::log(static_cast<double>(d) /
                 (static_cast<double>(d_min) - 0.5));
  }
  if (tail < 10) {
    return Status::FailedPrecondition(
        StrFormat("tail too small for a fit: %zu nodes with degree >= %zu",
                  tail, d_min));
  }
  PowerLawFit fit;
  fit.d_min = d_min;
  fit.tail_size = tail;
  fit.alpha = 1.0 + static_cast<double>(tail) / log_sum;
  return fit;
}

Result<double> DegreeDistributionDistance(const Graph& a, const Graph& b) {
  if (a.NumNodes() == 0 || b.NumNodes() == 0) {
    return Status::InvalidArgument(
        "degree distribution undefined for empty graph");
  }
  std::vector<size_t> ha = DegreeHistogram(a);
  std::vector<size_t> hb = DegreeHistogram(b);
  const size_t buckets = std::max(ha.size(), hb.size());
  const double na = static_cast<double>(a.NumNodes());
  const double nb = static_cast<double>(b.NumNodes());
  double tv = 0.0;
  for (size_t d = 0; d < buckets; ++d) {
    double pa = d < ha.size() ? static_cast<double>(ha[d]) / na : 0.0;
    double pb = d < hb.size() ? static_cast<double>(hb[d]) / nb : 0.0;
    tv += std::abs(pa - pb);
  }
  return tv / 2.0;
}

}  // namespace tpp::metrics
