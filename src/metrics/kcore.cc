#include "metrics/kcore.h"

#include <algorithm>

namespace tpp::metrics {

using graph::Graph;
using graph::NodeId;

std::vector<size_t> CoreNumbers(const Graph& g) {
  const size_t n = g.NumNodes();
  std::vector<size_t> degree(n), core(n, 0);
  size_t max_degree = 0;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = g.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort nodes by degree.
  std::vector<size_t> bin(max_degree + 2, 0);
  for (NodeId v = 0; v < n; ++v) ++bin[degree[v]];
  size_t start = 0;
  for (size_t d = 0; d <= max_degree; ++d) {
    size_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<NodeId> order(n);
  std::vector<size_t> pos(n);
  {
    std::vector<size_t> fill(bin.begin(), bin.end());
    for (NodeId v = 0; v < n; ++v) {
      pos[v] = fill[degree[v]]++;
      order[pos[v]] = v;
    }
  }
  // Peel in non-decreasing degree order.
  for (size_t i = 0; i < n; ++i) {
    NodeId v = order[i];
    core[v] = degree[v];
    for (NodeId u : g.Neighbors(v)) {
      if (degree[u] > degree[v]) {
        // Swap u to the front of its degree bucket, then decrement.
        size_t du = degree[u];
        size_t pu = pos[u];
        size_t pw = bin[du];
        NodeId w = order[pw];
        if (u != w) {
          std::swap(order[pu], order[pw]);
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bin[du];
        --degree[u];
      }
    }
  }
  return core;
}

double AverageCoreNumber(const Graph& g) {
  if (g.NumNodes() == 0) return 0.0;
  std::vector<size_t> core = CoreNumbers(g);
  double sum = 0.0;
  for (size_t c : core) sum += static_cast<double>(c);
  return sum / static_cast<double>(g.NumNodes());
}

size_t Degeneracy(const Graph& g) {
  std::vector<size_t> core = CoreNumbers(g);
  size_t best = 0;
  for (size_t c : core) best = std::max(best, c);
  return best;
}

}  // namespace tpp::metrics
