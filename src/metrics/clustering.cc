#include "metrics/clustering.h"

namespace tpp::metrics {

using graph::Graph;
using graph::NodeId;

double LocalClustering(const Graph& g, NodeId v) {
  const size_t d = g.Degree(v);
  if (d < 2) return 0.0;
  // Count links among neighbors; each counted once via ordered scan.
  size_t links = 0;
  auto nbrs = g.Neighbors(v);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    for (size_t j = i + 1; j < nbrs.size(); ++j) {
      if (g.HasEdge(nbrs[i], nbrs[j])) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(d) * static_cast<double>(d - 1));
}

double AverageClustering(const Graph& g) {
  if (g.NumNodes() == 0) return 0.0;
  double sum = 0.0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    sum += LocalClustering(g, v);
  }
  return sum / static_cast<double>(g.NumNodes());
}

double GlobalTransitivity(const Graph& g) {
  // closed triples = 3 * triangles counted once per corner = sum over v of
  // (links among neighbors); open+closed triples = sum over v of C(d_v, 2).
  double closed = 0.0;
  double triples = 0.0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const size_t d = g.Degree(v);
    if (d < 2) continue;
    triples += static_cast<double>(d) * static_cast<double>(d - 1) / 2.0;
    auto nbrs = g.Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (g.HasEdge(nbrs[i], nbrs[j])) closed += 1.0;
      }
    }
  }
  return triples > 0.0 ? closed / triples : 0.0;
}

}  // namespace tpp::metrics
