// Degree-distribution analysis: power-law tail fitting and distribution
// distances, used to validate the synthetic dataset stand-ins and as an
// additional utility comparison between original and released graphs.

#ifndef TPP_METRICS_DEGREE_DISTRIBUTION_H_
#define TPP_METRICS_DEGREE_DISTRIBUTION_H_

#include "common/result.h"
#include "graph/graph.h"

namespace tpp::metrics {

/// Result of a discrete power-law tail fit.
struct PowerLawFit {
  double alpha = 0.0;     ///< exponent of P(d) ~ d^-alpha for d >= d_min
  size_t d_min = 1;       ///< tail cutoff used
  size_t tail_size = 0;   ///< nodes with degree >= d_min
};

/// Maximum-likelihood estimate of the power-law exponent for degrees
/// >= d_min, using the standard continuous approximation
///   alpha = 1 + n_tail / sum(ln(d_i / (d_min - 0.5))).
/// Errors if fewer than 10 nodes lie in the tail.
Result<PowerLawFit> FitPowerLawTail(const graph::Graph& g, size_t d_min);

/// Total-variation distance between the degree distributions of two
/// graphs: 0 = identical distributions, 1 = disjoint support. Defined for
/// any pair of non-empty graphs (node counts may differ; distributions
/// are normalized).
Result<double> DegreeDistributionDistance(const graph::Graph& a,
                                          const graph::Graph& b);

}  // namespace tpp::metrics

#endif  // TPP_METRICS_DEGREE_DISTRIBUTION_H_
