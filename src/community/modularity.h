// Newman modularity of a node partition (paper Table II metric "Mod").

#ifndef TPP_COMMUNITY_MODULARITY_H_
#define TPP_COMMUNITY_MODULARITY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace tpp::community {

/// Computes Q = (1/2m) * sum_ij [A_ij - d_i d_j / 2m] delta(c_i, c_j) for
/// the given per-node community labels. Labels may be arbitrary
/// non-negative integers. Errors if the label vector size mismatches or the
/// graph has no edges.
Result<double> Modularity(const graph::Graph& g,
                          const std::vector<int32_t>& labels);

}  // namespace tpp::community

#endif  // TPP_COMMUNITY_MODULARITY_H_
