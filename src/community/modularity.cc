#include "community/modularity.h"

#include <unordered_map>

#include "common/strings.h"

namespace tpp::community {

using graph::Graph;
using graph::NodeId;

Result<double> Modularity(const Graph& g, const std::vector<int32_t>& labels) {
  if (labels.size() != g.NumNodes()) {
    return Status::InvalidArgument(
        StrFormat("label vector size %zu != node count %zu", labels.size(),
                  g.NumNodes()));
  }
  if (g.NumEdges() == 0) {
    return Status::InvalidArgument("modularity undefined for empty graph");
  }
  const double two_m = static_cast<double>(2 * g.NumEdges());
  // Q = sum_c [ internal_c / 2m - (degree_total_c / 2m)^2 ].
  std::unordered_map<int32_t, double> internal;   // 2 * edges inside c
  std::unordered_map<int32_t, double> deg_total;  // sum of degrees in c
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    deg_total[labels[u]] += static_cast<double>(g.Degree(u));
    for (NodeId v : g.Neighbors(u)) {
      if (labels[u] == labels[v]) internal[labels[u]] += 1.0;
    }
  }
  double q = 0.0;
  for (const auto& [c, deg] : deg_total) {
    double in_c = 0.0;
    auto it = internal.find(c);
    if (it != internal.end()) in_c = it->second;
    q += in_c / two_m - (deg / two_m) * (deg / two_m);
  }
  return q;
}

}  // namespace tpp::community
