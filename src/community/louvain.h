// Louvain community detection (Blondel et al. 2008).
//
// Needed because the paper's Mod utility metric requires a community
// assignment; the paper does not fix a specific algorithm, and Louvain is
// the de-facto standard modularity optimizer at these graph sizes.

#ifndef TPP_COMMUNITY_LOUVAIN_H_
#define TPP_COMMUNITY_LOUVAIN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace tpp::community {

/// Result of a Louvain run.
struct LouvainResult {
  std::vector<int32_t> labels;  ///< final community per original node
  double modularity = 0.0;      ///< modularity of the final partition
  size_t num_communities = 0;
  size_t num_levels = 0;        ///< aggregation rounds performed
};

/// Options for Louvain.
struct LouvainOptions {
  /// Stop a local-moving sweep once the modularity gain of a full pass
  /// drops below this threshold.
  double min_gain = 1e-7;
  /// Hard cap on aggregation levels (safety valve).
  size_t max_levels = 32;
};

/// Runs Louvain on `g`. Deterministic: nodes are visited in index order at
/// every level, so the same graph always yields the same partition.
/// Errors on graphs without edges (modularity undefined).
Result<LouvainResult> Louvain(const graph::Graph& g,
                              const LouvainOptions& options = {});

}  // namespace tpp::community

#endif  // TPP_COMMUNITY_LOUVAIN_H_
