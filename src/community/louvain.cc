#include "community/louvain.h"

#include <numeric>
#include <unordered_map>

#include "common/check.h"
#include "community/modularity.h"

namespace tpp::community {

using graph::Graph;
using graph::NodeId;

namespace {

// Internal weighted graph for the aggregation levels. Self-loop weight is
// the total weight of edges folded inside a super-node; node strength
// k[u] = sum of incident weights + 2 * self_w[u].
struct WGraph {
  std::vector<std::vector<std::pair<uint32_t, double>>> adj;  // no self
  std::vector<double> self_w;
  std::vector<double> k;
  double m2 = 0.0;  // total strength == 2 * total weight

  size_t NumNodes() const { return adj.size(); }

  void Finalize() {
    k.assign(adj.size(), 0.0);
    m2 = 0.0;
    for (size_t u = 0; u < adj.size(); ++u) {
      double s = 2.0 * self_w[u];
      for (const auto& [v, w] : adj[u]) s += w;
      k[u] = s;
      m2 += s;
    }
  }
};

WGraph FromGraph(const Graph& g) {
  WGraph wg;
  wg.adj.resize(g.NumNodes());
  wg.self_w.assign(g.NumNodes(), 0.0);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    wg.adj[u].reserve(g.Degree(u));
    for (NodeId v : g.Neighbors(u)) {
      wg.adj[u].emplace_back(v, 1.0);
    }
  }
  wg.Finalize();
  return wg;
}

// One Louvain level: local moving until stable. Returns the number of
// communities and fills `comm` with dense community ids.
size_t LocalMoving(const WGraph& wg, double min_gain,
                   std::vector<int32_t>* comm) {
  const size_t n = wg.NumNodes();
  comm->resize(n);
  std::iota(comm->begin(), comm->end(), 0);
  std::vector<double> tot(wg.k);  // total strength per community

  // Scratch: weight from the current node to each touched community.
  std::vector<double> w_to(n, 0.0);
  std::vector<int32_t> touched;

  bool moved_any_pass = true;
  while (moved_any_pass) {
    moved_any_pass = false;
    for (size_t u = 0; u < n; ++u) {
      const int32_t cu = (*comm)[u];
      touched.clear();
      for (const auto& [v, w] : wg.adj[u]) {
        int32_t cv = (*comm)[v];
        if (w_to[cv] == 0.0) touched.push_back(cv);
        w_to[cv] += w;
      }
      // Remove u from its community for the comparison.
      tot[cu] -= wg.k[u];
      // Baseline: staying in cu (after conceptual removal).
      double base_gain = w_to[cu] - wg.k[u] * tot[cu] / wg.m2;
      double best_gain = base_gain;
      int32_t best_comm = cu;
      for (int32_t c : touched) {
        if (c == cu) continue;
        double gain = w_to[c] - wg.k[u] * tot[c] / wg.m2;
        if (gain > best_gain + min_gain ||
            (gain > best_gain && c < best_comm)) {
          best_gain = gain;
          best_comm = c;
        }
      }
      tot[best_comm] += wg.k[u];
      if (best_comm != cu) {
        (*comm)[u] = best_comm;
        moved_any_pass = true;
      }
      for (int32_t c : touched) w_to[c] = 0.0;
    }
  }

  // Renumber communities densely in order of first appearance.
  std::unordered_map<int32_t, int32_t> dense;
  dense.reserve(n);
  for (size_t u = 0; u < n; ++u) {
    auto [it, inserted] =
        dense.try_emplace((*comm)[u], static_cast<int32_t>(dense.size()));
    (void)inserted;
    (*comm)[u] = it->second;
  }
  return dense.size();
}

// Builds the aggregated graph whose nodes are the communities of `comm`.
WGraph Aggregate(const WGraph& wg, const std::vector<int32_t>& comm,
                 size_t num_comms) {
  WGraph out;
  out.adj.resize(num_comms);
  out.self_w.assign(num_comms, 0.0);
  std::vector<std::unordered_map<uint32_t, double>> acc(num_comms);
  for (size_t u = 0; u < wg.NumNodes(); ++u) {
    uint32_t cu = static_cast<uint32_t>(comm[u]);
    out.self_w[cu] += wg.self_w[u];
    for (const auto& [v, w] : wg.adj[u]) {
      uint32_t cv = static_cast<uint32_t>(comm[v]);
      if (cu == cv) {
        // Each undirected internal edge appears twice in adjacency; add
        // half each time so the folded weight is counted once.
        out.self_w[cu] += w / 2.0;
      } else {
        acc[cu][cv] += w;
      }
    }
  }
  for (size_t c = 0; c < num_comms; ++c) {
    out.adj[c].assign(acc[c].begin(), acc[c].end());
    // Sort for determinism across runs/platforms.
    std::sort(out.adj[c].begin(), out.adj[c].end());
  }
  out.Finalize();
  return out;
}

}  // namespace

Result<LouvainResult> Louvain(const Graph& g, const LouvainOptions& options) {
  if (g.NumEdges() == 0) {
    return Status::InvalidArgument("Louvain requires at least one edge");
  }
  LouvainResult result;
  result.labels.resize(g.NumNodes());
  std::iota(result.labels.begin(), result.labels.end(), 0);

  WGraph wg = FromGraph(g);
  for (size_t level = 0; level < options.max_levels; ++level) {
    std::vector<int32_t> comm;
    size_t num_comms = LocalMoving(wg, options.min_gain, &comm);
    ++result.num_levels;
    // Compose into original-node labels.
    for (size_t u = 0; u < result.labels.size(); ++u) {
      result.labels[u] = comm[result.labels[u]];
    }
    if (num_comms == wg.NumNodes()) break;  // no merge happened: converged
    wg = Aggregate(wg, comm, num_comms);
  }

  std::unordered_map<int32_t, int32_t> dense;
  for (int32_t& l : result.labels) {
    auto [it, inserted] =
        dense.try_emplace(l, static_cast<int32_t>(dense.size()));
    (void)inserted;
    l = it->second;
  }
  result.num_communities = dense.size();
  TPP_ASSIGN_OR_RETURN(result.modularity, Modularity(g, result.labels));
  return result;
}

}  // namespace tpp::community
