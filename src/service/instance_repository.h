// InstanceRepository: build-once sharing of (targets, motif) problem
// instances within a batch.
//
// Requests naming the same resolved target list and motif would each
// rebuild the same TppInstance and CSR IncidenceIndex — the dominant
// serving cost on large graphs (a full motif enumeration per request).
// The repository interns each distinct (ordered target list, motif) pair
// into a group, builds the group's instance and a prototype IndexedEngine
// exactly once (thread-safe: the first acquirer builds, concurrent
// acquirers wait on the same per-group build mutex), and hands every
// request a private engine clone (IndexedEngine::Clone) whose committed
// deletions cannot leak across requests. Clone carries the graph and index state
// but RESETS the incremental round session (the persistent gain table of
// Engine::BeginRound), so every request's solver starts its rounds from
// a full evaluation rather than a sibling request's dirty tracking.
//
// Target ORDER is part of the group identity: per-target budget division
// and plan serialization follow target positions, so reordered target
// lists are distinct instances — collapsing them would change responses.
//
// A repository lives for one RunBatch pipeline execution by default, but
// can be owned externally (BatchOptions::repository) and carried across
// batches: between batches, ApplyEdit advances every built group across a
// committed base-graph edit by repairing its released graph and prototype
// engine IN PLACE (IndexedEngine::ApplyEdit — O(delta-neighborhood), not
// a re-enumeration), so churn-then-solve workloads never pay a cold
// build for untouched instances. Build errors (e.g. a target link absent
// from the base) are memoized per group so every member request reports
// the same status a standalone run would.

#ifndef TPP_SERVICE_INSTANCE_REPOSITORY_H_
#define TPP_SERVICE_INSTANCE_REPOSITORY_H_

#include <atomic>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/indexed_engine.h"
#include "core/problem.h"
#include "graph/graph.h"
#include "motif/motif.h"

namespace tpp::service {

namespace store {
class WarmStore;
}  // namespace store

class InstanceRepository {
 public:
  /// `base` must outlive the repository.
  explicit InstanceRepository(const graph::Graph* base) : base_(base) {}

  /// Worker budget for each group's one-time IncidenceIndex build
  /// (<= 0: tpp::GlobalThreadCount()). The pipeline sets this to its own
  /// max_workers so a cold batch's build stage uses the same pool budget
  /// as its solve stage; nested ParallelFor keeps that safe even when the
  /// build runs inside a pool worker. Set before the first AcquireEngine.
  void set_build_threads(int threads) { build_threads_ = threads; }

  /// Attaches a warm-start store (not owned; may be nullptr to detach).
  /// With a store attached, each group's one-time build first probes the
  /// store for a snapshot keyed by (`base_fingerprint`, motif, target-set
  /// hash) and adopts it instead of building; a cold build writes its
  /// index back (best effort) so the NEXT process start is warm. A
  /// snapshot that fails validation (corrupt, version or fingerprint
  /// mismatch) warns on stderr and falls back to the cold build — never
  /// an error, never a wrong index. Set before the first AcquireEngine.
  void set_store(store::WarmStore* store, uint64_t base_fingerprint) {
    store_ = store;
    base_fingerprint_ = base_fingerprint;
  }

  InstanceRepository(const InstanceRepository&) = delete;
  InstanceRepository& operator=(const InstanceRepository&) = delete;

  /// Interns (targets, motif) and returns its group id; the same pair
  /// always returns the same id. Not thread-safe — call from the
  /// single-threaded group-by stage of the pipeline.
  size_t Intern(const std::vector<graph::Edge>& targets,
                motif::MotifKind motif);

  /// Builds the group's TppInstance + prototype engine on first call
  /// (thread-safe build-once) and returns a private clone. Build errors
  /// are memoized: every acquirer of a failed group gets the same status
  /// — EXCEPT cancellation/deadline failures (kAborted, kDeadlineExceeded
  /// from `cancel`, polled at the build's internal stage boundaries).
  /// Those depend on the requesting caller's clock, not the group, so the
  /// group resets to unbuilt and the next acquirer rebuilds under its own
  /// deadline.
  Result<core::IndexedEngine> AcquireEngine(
      size_t group, const CancellationToken* cancel = nullptr);

  /// The group's problem instance; valid only after AcquireEngine(group)
  /// returned OK, immutable from then on (safe to read concurrently).
  const core::TppInstance& instance(size_t group) const {
    return *groups_[group].instance;
  }

  /// Distinct (targets, motif) groups interned.
  size_t NumGroups() const { return groups_.size(); }

  /// Prototype builds performed (<= NumGroups(): only acquired groups
  /// build).
  size_t NumBuilds() const {
    return builds_.load(std::memory_order_relaxed);
  }

  /// Engine clones handed out; NumAcquisitions() - NumBuilds() full index
  /// builds were avoided by sharing.
  size_t NumAcquisitions() const {
    return acquisitions_.load(std::memory_order_relaxed);
  }

  /// Builds satisfied by adopting a store snapshot (<= NumBuilds()).
  size_t NumSnapshotHits() const {
    return snapshot_hits_.load(std::memory_order_relaxed);
  }

  /// Cold builds whose index was written back to the store.
  size_t NumSnapshotStores() const {
    return snapshot_stores_.load(std::memory_order_relaxed);
  }

  /// Snapshot write-backs that failed (after the store's retry policy
  /// gave up). Every failure is also warned on stderr, but warnings
  /// cannot be gated on — this counter feeds BatchStats and the batch
  /// footer so CI can assert on it.
  size_t NumStoreWriteFailures() const {
    return store_write_failures_.load(std::memory_order_relaxed);
  }

  /// Snapshot loads that degraded to a cold build: the file existed but
  /// failed validation or I/O (kNotFound clean misses excluded). One
  /// step of the degradation ladder — service continues, warm start is
  /// lost.
  size_t NumStoreDegradations() const {
    return store_degradations_.load(std::memory_order_relaxed);
  }

  /// Advances every group across a committed base-graph edit. The caller
  /// has already applied `delta` to the base graph this repository points
  /// at; `new_fingerprint` is the post-edit graph::Fingerprint (the key
  /// future snapshot probes and write-backs use). Per group:
  ///   * unbuilt groups are untouched — their eventual build reads the
  ///     edited base;
  ///   * groups whose TARGET links intersect the delta are reset to
  ///     unbuilt (the edit changed the problem itself, so the next
  ///     acquisition cold-builds), as are groups holding a memoized build
  ///     error (the edit may have cured it);
  ///   * every other built group is repaired in place: the delta replays
  ///     onto the instance's released graph and the prototype engine's
  ///     index (IndexedEngine::ApplyEdit), after which clones answer
  ///     exactly as if the group had been cold-built on the edited base.
  ///     A repair failure degrades to a reset, never an error.
  /// Repaired indexes write back to the store (best effort) under the new
  /// fingerprint. NOT thread-safe against AcquireEngine — call between
  /// batches, exactly where PlanService::ApplyEdit sits.
  void ApplyEdit(const graph::GraphDelta& delta, uint64_t new_fingerprint);

  /// Built groups ApplyEdit repaired in place (cumulative).
  size_t NumEditRepairs() const { return edit_repairs_; }

  /// Built groups ApplyEdit reset for a cold rebuild (cumulative).
  size_t NumEditResets() const { return edit_resets_; }

 private:
  struct Group {
    std::vector<graph::Edge> targets;
    motif::MotifKind motif = motif::MotifKind::kTriangle;
    // Build-once gate; a mutex + flag rather than a once_flag so
    // ApplyEdit can RESET a group back to unbuilt.
    std::mutex build_mu;
    bool built = false;  // guarded by build_mu
    Status status = Status::Ok();
    std::optional<core::TppInstance> instance;
    std::optional<core::IndexedEngine> engine;  // the shared prototype
  };

  /// The build-once body: try the store, else cold-build + write back.
  void BuildGroup(Group& group, const CancellationToken* cancel);

  /// Returns `group` to the unbuilt state; the next acquisition rebuilds.
  static void ResetGroup(Group& group);

  const graph::Graph* base_;
  int build_threads_ = 0;
  store::WarmStore* store_ = nullptr;  // not owned
  uint64_t base_fingerprint_ = 0;
  // deque: push_back never moves existing groups, so build mutexes and
  // handed-out instance references stay valid as interning continues.
  std::deque<Group> groups_;
  std::unordered_map<std::string, size_t> ids_;
  std::atomic<size_t> builds_{0};
  std::atomic<size_t> acquisitions_{0};
  std::atomic<size_t> snapshot_hits_{0};
  std::atomic<size_t> snapshot_stores_{0};
  std::atomic<size_t> store_write_failures_{0};
  std::atomic<size_t> store_degradations_{0};
  // Mutated only by ApplyEdit, which runs single-threaded between
  // batches; plain counters suffice.
  size_t edit_repairs_ = 0;
  size_t edit_resets_ = 0;
};

}  // namespace tpp::service

#endif  // TPP_SERVICE_INSTANCE_REPOSITORY_H_
