#include "service/store/retry_policy.h"

#include <algorithm>

#include "common/rng.h"

namespace tpp::service::store {

int64_t BackoffMicros(const RetryPolicy& policy, int attempt, uint64_t seed) {
  if (policy.initial_backoff_us <= 0) return 0;
  // initial * 2^(attempt-1), saturating at the cap (attempt is small, but
  // a shift past 62 would wrap).
  int64_t base = policy.initial_backoff_us;
  for (int i = 1; i < attempt && base < policy.max_backoff_us; ++i) {
    base *= 2;
  }
  base = std::min(base, policy.max_backoff_us);
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter == 0.0) return base;
  // Deterministic jitter in [1-jitter, 1]: herd-avoiding without a
  // global RNG, reproducible for a fixed (seed, attempt).
  const uint64_t draw =
      SplitMix64(seed ^ (static_cast<uint64_t>(attempt) * 0x9e3779b97f4a7c15ull));
  const double unit =
      static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
  const double scale = 1.0 - jitter * unit;
  return std::max<int64_t>(1, static_cast<int64_t>(
                                  static_cast<double>(base) * scale));
}

}  // namespace tpp::service::store
