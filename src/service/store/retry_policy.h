// RetryPolicy: capped exponential backoff with deterministic jitter for
// transient store I/O.
//
// Retry loops key off StatusCode::kUnavailable ONLY (see IsRetryable in
// common/status.h): a transient fault — EINTR, a momentary mount hiccup,
// an injected fault::FaultKind::kTransient — may succeed if repeated,
// while permanent errors (kIoError, kInternal) and caller decisions
// (kDeadlineExceeded, kAborted) must surface immediately. Backoff doubles
// per attempt up to a cap, and jitter is derived from a caller seed via
// SplitMix64 rather than a global RNG so retry timing never perturbs any
// request's random stream — plans stay bit-identical under injection.

#ifndef TPP_SERVICE_STORE_RETRY_POLICY_H_
#define TPP_SERVICE_STORE_RETRY_POLICY_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/status.h"

namespace tpp::service::store {

struct RetryPolicy {
  /// Total tries including the first; 1 disables retrying entirely.
  int max_attempts = 4;
  /// Backoff before the first retry; doubles per subsequent retry.
  int64_t initial_backoff_us = 50;
  /// Ceiling on any single backoff sleep.
  int64_t max_backoff_us = 2000;
  /// Fraction of the backoff randomized away (0 = fixed, 0.5 = each
  /// sleep lands in [0.5b, b]). Deterministic per (seed, attempt).
  double jitter = 0.5;
};

/// The sleep (microseconds) before retry number `attempt` (1-based),
/// with the policy's jitter applied deterministically from `seed`.
int64_t BackoffMicros(const RetryPolicy& policy, int attempt, uint64_t seed);

/// Runs `fn` (returning Status) up to policy.max_attempts times,
/// sleeping the backoff schedule between attempts, retrying only while
/// the result is retryable (kUnavailable). Returns the last status.
/// `retries`, when set, accumulates the number of retry attempts made.
template <typename Fn>
Status RetryTransient(const RetryPolicy& policy, uint64_t seed, Fn&& fn,
                      uint64_t* retries = nullptr) {
  Status status = fn();
  for (int attempt = 1;
       attempt < policy.max_attempts && IsRetryable(status.code());
       ++attempt) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(BackoffMicros(policy, attempt, seed)));
    if (retries != nullptr) ++*retries;
    status = fn();
  }
  return status;
}

}  // namespace tpp::service::store

#endif  // TPP_SERVICE_STORE_RETRY_POLICY_H_
