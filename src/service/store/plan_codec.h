// Binary serialization of PlanResponse for the persistent plan store.
//
// The warm store's plan log (warm_store.h) persists full PlanResponses
// keyed by the canonical request key; this codec turns a response into a
// flat byte payload and back. Host-endian, versioned; integrity is the
// log record's concern (each record carries a checksum over key +
// payload), so the codec only bounds-checks. `from_cache` is transient
// serving state and is not persisted — a decoded response always starts
// from_cache = false and the pipeline marks it on delivery.

#ifndef TPP_SERVICE_STORE_PLAN_CODEC_H_
#define TPP_SERVICE_STORE_PLAN_CODEC_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "service/plan_service.h"

namespace tpp::service::store {

/// Serializes `response` — status, targets, the full ProtectionResult
/// with its pick trace, the plan text, the optional released graph, and
/// the solve wall time — into a self-contained byte payload.
std::string EncodePlanResponse(const PlanResponse& response);

/// Inverse of EncodePlanResponse. InvalidArgument on any malformed or
/// short payload (the store treats that as a miss and re-solves).
Result<PlanResponse> DecodePlanResponse(std::string_view payload);

}  // namespace tpp::service::store

#endif  // TPP_SERVICE_STORE_PLAN_CODEC_H_
