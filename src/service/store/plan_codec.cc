#include "service/store/plan_codec.h"

#include <cstring>

namespace tpp::service::store {

namespace {

constexpr uint32_t kPlanPayloadVersion = 1;

void PutBytes(std::string* out, const void* src, size_t size) {
  out->append(static_cast<const char*>(src), size);
}

template <typename T>
void Put(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  PutBytes(out, &value, sizeof value);
}

void PutString(std::string* out, std::string_view s) {
  Put<uint64_t>(out, s.size());
  PutBytes(out, s.data(), s.size());
}

void PutEdges(std::string* out, const std::vector<graph::Edge>& edges) {
  Put<uint64_t>(out, edges.size());
  for (const graph::Edge& e : edges) {
    Put<uint32_t>(out, e.u);
    Put<uint32_t>(out, e.v);
  }
}

// Bounds-checked forward reader over the payload.
struct Cursor {
  const char* p;
  size_t left;

  bool Bytes(void* dst, size_t size) {
    if (size > left) return false;
    std::memcpy(dst, p, size);
    p += size;
    left -= size;
    return true;
  }

  template <typename T>
  bool Get(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Bytes(value, sizeof *value);
  }

  bool GetString(std::string* out) {
    uint64_t size = 0;
    if (!Get(&size) || size > left) return false;
    out->assign(p, size);
    p += size;
    left -= size;
    return true;
  }

  bool GetEdges(std::vector<graph::Edge>* out) {
    uint64_t count = 0;
    if (!Get(&count) || count > left / 8) return false;
    out->clear();
    out->reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t u = 0, v = 0;
      if (!Get(&u) || !Get(&v)) return false;
      out->emplace_back(u, v);
    }
    return true;
  }
};

}  // namespace

std::string EncodePlanResponse(const PlanResponse& response) {
  std::string out;
  Put<uint32_t>(&out, kPlanPayloadVersion);
  Put<uint32_t>(&out, static_cast<uint32_t>(response.status.code()));
  PutString(&out, response.status.message());
  PutEdges(&out, response.targets);
  PutEdges(&out, response.result.protectors);
  Put<uint64_t>(&out, response.result.picks.size());
  for (const core::PickTrace& pick : response.result.picks) {
    Put<uint64_t>(&out, pick.edge);
    Put<uint64_t>(&out, pick.realized_gain);
    Put<uint64_t>(&out, pick.for_target);
    Put<uint64_t>(&out, pick.similarity_after);
    Put<double>(&out, pick.cumulative_seconds);
  }
  Put<uint64_t>(&out, response.result.initial_similarity);
  Put<uint64_t>(&out, response.result.final_similarity);
  Put<uint64_t>(&out, response.result.gain_evaluations);
  Put<double>(&out, response.result.total_seconds);
  PutString(&out, response.plan_text);
  // The released graph round-trips as (node count, canonical edge list);
  // BuildGraph's sorted adjacency reconstruction makes the decode
  // structurally identical to the original.
  const bool has_released = response.released.NumNodes() > 0;
  Put<uint8_t>(&out, has_released ? 1 : 0);
  if (has_released) {
    const graph::Graph& g = response.released;
    Put<uint64_t>(&out, g.NumNodes());
    Put<uint64_t>(&out, g.NumEdges());
    for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
      for (graph::NodeId v : g.Neighbors(u)) {
        if (v > u) {
          Put<uint32_t>(&out, u);
          Put<uint32_t>(&out, v);
        }
      }
    }
  }
  Put<double>(&out, response.seconds);
  return out;
}

Result<PlanResponse> DecodePlanResponse(std::string_view payload) {
  const auto malformed = [] {
    return Status::InvalidArgument("malformed plan payload");
  };
  Cursor c{payload.data(), payload.size()};
  uint32_t version = 0;
  if (!c.Get(&version)) return malformed();
  if (version != kPlanPayloadVersion) {
    return Status::InvalidArgument("unsupported plan payload version");
  }
  PlanResponse response;
  uint32_t code = 0;
  std::string message;
  if (!c.Get(&code) || !c.GetString(&message)) return malformed();
  if (code > static_cast<uint32_t>(StatusCode::kIoError)) return malformed();
  response.status = Status(static_cast<StatusCode>(code), std::move(message));
  if (!c.GetEdges(&response.targets) ||
      !c.GetEdges(&response.result.protectors)) {
    return malformed();
  }
  uint64_t num_picks = 0;
  if (!c.Get(&num_picks) || num_picks > c.left / 8) return malformed();
  response.result.picks.resize(num_picks);
  for (core::PickTrace& pick : response.result.picks) {
    uint64_t edge = 0, realized = 0, for_target = 0, after = 0;
    if (!c.Get(&edge) || !c.Get(&realized) || !c.Get(&for_target) ||
        !c.Get(&after) || !c.Get(&pick.cumulative_seconds)) {
      return malformed();
    }
    pick.edge = edge;
    pick.realized_gain = realized;
    pick.for_target = for_target;
    pick.similarity_after = after;
  }
  uint64_t initial = 0, final_sim = 0;
  if (!c.Get(&initial) || !c.Get(&final_sim) ||
      !c.Get(&response.result.gain_evaluations) ||
      !c.Get(&response.result.total_seconds) ||
      !c.GetString(&response.plan_text)) {
    return malformed();
  }
  response.result.initial_similarity = initial;
  response.result.final_similarity = final_sim;
  uint8_t has_released = 0;
  if (!c.Get(&has_released)) return malformed();
  if (has_released) {
    uint64_t num_nodes = 0, num_edges = 0;
    if (!c.Get(&num_nodes) || !c.Get(&num_edges) ||
        num_edges > c.left / 8) {
      return malformed();
    }
    std::vector<graph::Edge> edges;
    edges.reserve(num_edges);
    for (uint64_t i = 0; i < num_edges; ++i) {
      uint32_t u = 0, v = 0;
      if (!c.Get(&u) || !c.Get(&v)) return malformed();
      edges.emplace_back(u, v);
    }
    Result<graph::Graph> g = graph::BuildGraph(num_nodes, edges);
    if (!g.ok()) return malformed();
    response.released = std::move(*g);
  }
  if (!c.Get(&response.seconds) || c.left != 0) return malformed();
  return response;
}

}  // namespace tpp::service::store
