// WarmStore: the disk-backed warm-start store behind --store.
//
// One directory holds two kinds of entries:
//
//   index/<fingerprint>-<motif>-<targethash>.idx
//       One mmap-able IncidenceIndex snapshot per built instance
//       (motif/index_snapshot.h), addressed by (graph fingerprint,
//       motif, target-set hash). A warm process start loads the built
//       index in one mmap instead of re-running enumeration + CSR
//       construction.
//
//   plans/seg-<NNNNNN>.log
//       A log-structured record stream of serialized PlanResponses
//       (plan_codec.h) keyed by the canonical PlanCache key. Records
//       append to the highest-numbered ACTIVE segment; when it outgrows
//       StoreOptions::plan_segment_bytes it is SEALED — a key -> offset
//       index footer is appended so later opens need no record scan —
//       and a fresh segment starts. Unsealed segments (the active one,
//       or one cut short by a crash) recover by a forward scan that
//       stops at the first torn record, so a crash mid-append loses at
//       most the tail record. Within and across segments, the LAST
//       record for a key wins.
//
// Capacity: `capacity_bytes` caps the sum of all entry files. Entries
// larger than the cap are not admitted at all; when the total exceeds
// the cap, whole files are evicted oldest-mtime-first (reads bump the
// file mtime, making this LRU at file/segment granularity). The active
// plan segment is never evicted.
//
// Integrity: every reader validates checksums (snapshot header/payload
// checksums; per-record checksums in plan logs) and treats any
// violation as a miss — the caller falls back to a cold build/solve and
// the store never serves corrupt bytes as a plan.
//
// Thread-safe behind one mutex; the expensive payloads (snapshot load,
// record read) are file-granular and cheap relative to the work they
// save, so coarse locking suffices for the pipeline's access pattern
// (one probe per instance group / request).

#ifndef TPP_SERVICE_STORE_WARM_STORE_H_
#define TPP_SERVICE_STORE_WARM_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "motif/index_snapshot.h"
#include "service/store/retry_policy.h"

namespace tpp::service::store {

struct StoreOptions {
  /// Total on-disk byte budget across snapshots and plan segments;
  /// 0 = unbounded (no admission limit, no eviction).
  uint64_t capacity_bytes = 0;
  /// A plan segment seals (gains its index footer) once it exceeds this
  /// many bytes of records.
  uint64_t plan_segment_bytes = 4ull << 20;
  /// Backoff schedule for transient I/O errors (kUnavailable): every
  /// store read/write retries through this before giving up. The
  /// defaults absorb EINTR-class hiccups in well under a millisecond;
  /// set max_attempts = 1 to fail fast.
  RetryPolicy retry;
};

/// One store entry as listed by Scan() — the row format of
/// `tpp store ls`.
struct StoreEntry {
  enum class Kind { kIndexSnapshot, kPlanSegment };
  Kind kind = Kind::kIndexSnapshot;
  std::string name;  ///< file name within the store directory
  std::string path;  ///< full path
  uint64_t bytes = 0;
  double age_seconds = 0;  ///< now - mtime (LRU age)
  // Index snapshots only:
  uint64_t graph_fingerprint = 0;
  uint64_t target_hash = 0;
  std::string motif;  ///< display name; empty for plan segments
  // Plan segments only:
  size_t plan_records = 0;  ///< live (last-write-wins) keys in the segment
  bool sealed = false;
};

class WarmStore {
 public:
  /// Running hit/miss accounting across both entry kinds.
  struct Stats {
    uint64_t index_hits = 0;
    uint64_t index_misses = 0;   ///< no snapshot file for the key
    uint64_t index_rejects = 0;  ///< snapshot present but failed validation
    uint64_t plan_hits = 0;
    uint64_t plan_misses = 0;
    uint64_t evicted_files = 0;
    uint64_t admission_rejects = 0;  ///< entries larger than the capacity
    /// Transient I/O errors absorbed by the retry schedule (each retry
    /// attempt counts once; a fault the first retry fixes adds 1).
    uint64_t io_retries = 0;
    /// Writes (snapshot save, plan append, segment seal) that failed
    /// even after retries. The store stays serving: a failed write
    /// degrades to "not persisted", never to a failed request.
    uint64_t write_failures = 0;
    /// Reads that failed with a real I/O error (not a clean miss) and
    /// degraded to a miss — the caller cold-builds or re-solves.
    uint64_t read_degradations = 0;

    /// Every event where the store fell short of full service — the
    /// number the batch footer and `tpp store verify` surface.
    uint64_t degradations() const {
      return write_failures + read_degradations + index_rejects;
    }
  };

  /// Opens (creating directories as needed) the store at `dir` and
  /// recovers the plan-key table from every existing segment — sealed
  /// segments through their footers, unsealed ones by forward scan.
  static Result<std::unique_ptr<WarmStore>> Open(
      const std::string& dir, const StoreOptions& options = {});

  WarmStore(const WarmStore&) = delete;
  WarmStore& operator=(const WarmStore&) = delete;

  /// Loads the snapshot for `meta`, zero-copy (motif/index_snapshot.h).
  /// NotFound when no snapshot exists for the key; other errors mean a
  /// file was present but failed validation (corrupt, version/fingerprint
  /// mismatch) — callers warn and cold-build either way. A hit bumps the
  /// file's LRU clock.
  Result<motif::IncidenceIndex> LoadIndex(
      const motif::IndexSnapshotMeta& meta);

  /// Writes the snapshot for `meta` atomically (complete file or
  /// nothing), then enforces the capacity. Oversized snapshots are not
  /// admitted (OK is still returned; the store just declines).
  Status SaveIndex(const motif::IncidenceIndex& index,
                   const motif::IndexSnapshotMeta& meta);

  /// Copies the stored payload for `key` into `*payload`. Returns false
  /// on a miss — unknown key OR a record that fails its checksum (the
  /// store never serves corrupt bytes). A hit bumps the segment's LRU
  /// clock.
  bool LoadPlan(const std::string& key, std::string* payload);

  /// Appends a (key, payload) record to the active segment, sealing it
  /// when it outgrows the segment budget, then enforces the capacity.
  /// Oversized records are not admitted.
  Status AppendPlan(const std::string& key, std::string_view payload);

  /// Everything currently on disk, index snapshots first, then plan
  /// segments in segment order.
  Result<std::vector<StoreEntry>> Scan();

  /// Full-store integrity check: snapshot checksums and every plan
  /// record. Appends one human-readable line per problem; OK with an
  /// empty `problems` means the store is clean.
  Status VerifyAll(std::vector<std::string>* problems);

  /// Deletes the entry file named `name` (as printed by Scan/ls).
  /// Evicting a plan segment drops all its keys. NotFound if no such
  /// entry exists.
  Status EvictByName(const std::string& name);

  /// Deletes every entry file older (by mtime) than `seconds`. The
  /// active plan segment is exempt. Returns the number of files removed.
  Result<size_t> EvictOlderThan(double seconds);

  /// Deletes entries no caller serving `live_fingerprint` can ever match:
  /// index snapshots whose header is unreadable, carries a superseded
  /// format version (IndexSnapshotCodec::kFormatVersion — e.g. v1 files
  /// written under the old order-dependent fingerprint scheme), or names
  /// a different graph fingerprint; and SEALED plan segments none of
  /// whose live keys embed the live fingerprint. Keys in an unrecognized
  /// format are conservatively treated as live; the unsealed active
  /// segment is exempt. The workhorse of `tpp store evict --stale`.
  /// Returns the number of files removed.
  Result<size_t> EvictStale(uint64_t live_fingerprint);

  const std::string& dir() const { return dir_; }
  Stats stats() const;

 private:
  struct PlanLocation {
    uint64_t segment_number = 0;  ///< stable across segment eviction
    uint64_t offset = 0;          ///< record start within the segment file
  };
  struct Segment {
    uint64_t number = 0;
    std::string path;
    uint64_t bytes = 0;  ///< record bytes (excludes any footer)
    size_t live_keys = 0;
    bool sealed = false;
  };

  WarmStore(std::string dir, const StoreOptions& options);

  Status RecoverSegments();
  Status SealActiveSegment();  // writes the footer; requires mu_ held
  void EnforceCapacity();      // requires mu_ held
  void DropSegmentKeys(uint64_t segment_number);  // requires mu_ held
  std::string IndexPath(const motif::IndexSnapshotMeta& meta) const;

  const std::string dir_;
  const StoreOptions options_;

  mutable std::mutex mu_;
  std::vector<Segment> segments_;  // ascending segment number
  std::unordered_map<std::string, PlanLocation> plans_;
  Stats stats_;
};

}  // namespace tpp::service::store

#endif  // TPP_SERVICE_STORE_WARM_STORE_H_
