#include "service/store/warm_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/blob_io.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/strings.h"

namespace tpp::service::store {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t kRecordMagic = 0x4C505054u;  // "TPPL"
constexpr uint32_t kFooterMagic = 0x46505054u;  // "TPPF"

struct RecordHeader {
  uint32_t magic = kRecordMagic;
  uint32_t key_size = 0;
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
};
static_assert(sizeof(RecordHeader) == 24);

struct FooterTrailer {
  uint64_t footer_offset = 0;
  uint64_t entry_count = 0;
  uint64_t footer_checksum = 0;
  uint32_t magic = kFooterMagic;
};
static_assert(sizeof(FooterTrailer) == 32);  // 4 bytes tail padding

uint64_t RecordChecksum(std::string_view key, std::string_view payload) {
  return SplitMix64(HashBytes64(key.data(), key.size()) ^
                    HashBytes64(payload.data(), payload.size()));
}

uint64_t RecordSize(size_t key_size, size_t payload_size) {
  return sizeof(RecordHeader) + key_size + payload_size;
}

double FileAgeSeconds(const fs::path& p) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(p, ec);
  if (ec) return 0;
  const auto now = fs::file_time_type::clock::now();
  return std::chrono::duration<double>(now - mtime).count();
}

void BumpMtime(const fs::path& p) {
  std::error_code ec;
  fs::last_write_time(p, fs::file_time_type::clock::now(), ec);
  // Best effort: a failed bump only weakens LRU ordering.
}

uint64_t FileBytes(const fs::path& p) {
  std::error_code ec;
  const uint64_t size = fs::file_size(p, ec);
  return ec ? 0 : size;
}

// Jitter seed for the retry schedule of operations on `path`: stable per
// file so retry timing is reproducible, distinct across files so
// concurrent retries do not march in lockstep.
uint64_t RetrySeed(const std::string& path) {
  return HashBytes64(path.data(), path.size());
}

}  // namespace

WarmStore::WarmStore(std::string dir, const StoreOptions& options)
    : dir_(std::move(dir)), options_(options) {}

Result<std::unique_ptr<WarmStore>> WarmStore::Open(
    const std::string& dir, const StoreOptions& options) {
  std::error_code ec;
  fs::create_directories(fs::path(dir) / "index", ec);
  if (ec) return Status::IoError("cannot create " + dir + "/index");
  fs::create_directories(fs::path(dir) / "plans", ec);
  if (ec) return Status::IoError("cannot create " + dir + "/plans");
  std::unique_ptr<WarmStore> store(new WarmStore(dir, options));
  TPP_RETURN_IF_ERROR(store->RecoverSegments());
  return store;
}

Status WarmStore::RecoverSegments() {
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(fs::path(dir_) / "plans", ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() != 14 || name.rfind("seg-", 0) != 0 ||
        name.substr(10) != ".log") {
      continue;
    }
    Result<int64_t> number = ParseInt64(name.substr(4, 6));
    if (!number.ok()) continue;
    Segment seg;
    seg.number = static_cast<uint64_t>(*number);
    seg.path = entry.path().string();
    segments_.push_back(std::move(seg));
  }
  if (ec) return Status::IoError("cannot list " + dir_ + "/plans");
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) {
              return a.number < b.number;
            });

  // Rebuild the key table in segment order so later segments overwrite
  // earlier ones (last write wins).
  for (Segment& seg : segments_) {
    // Injection site "store.recover": a transient fault here models a
    // flaky read during startup recovery; retries absorb it, and a
    // persistent failure degrades the segment to empty (its records are
    // simply not served) instead of failing the open.
    Result<std::shared_ptr<const MappedBlob>> blob_or =
        Status::Internal("unset");
    Status opened = RetryTransient(
        options_.retry, RetrySeed(seg.path),
        [&] {
          if (fault::FaultDecision f = fault::Hit("store.recover"); f.fire) {
            return f.ToStatus("store.recover(" + seg.path + ")");
          }
          blob_or = MappedBlob::Open(seg.path);
          return blob_or.status();
        },
        &stats_.io_retries);
    if (!opened.ok()) {
      ++stats_.read_degradations;
      continue;  // unreadable: treat as empty
    }
    const MappedBlob& blob = **blob_or;
    const uint8_t* data = blob.data();
    const uint64_t size = blob.size();

    // Sealed path: a valid trailer names the footer; no record scan.
    bool recovered = false;
    if (size >= sizeof(FooterTrailer)) {
      FooterTrailer trailer;
      std::memcpy(&trailer, data + size - sizeof trailer, sizeof trailer);
      const uint64_t footer_end = size - sizeof trailer;
      if (trailer.magic == kFooterMagic &&
          trailer.footer_offset <= footer_end &&
          trailer.footer_checksum ==
              HashBytes64(data + trailer.footer_offset,
                          footer_end - trailer.footer_offset)) {
        uint64_t off = trailer.footer_offset;
        bool ok = true;
        std::vector<std::pair<std::string, uint64_t>> entries;
        for (uint64_t i = 0; i < trailer.entry_count && ok; ++i) {
          uint32_t key_size = 0;
          uint64_t rec_offset = 0;
          if (off + 12 > footer_end) {
            ok = false;
            break;
          }
          std::memcpy(&key_size, data + off, 4);
          std::memcpy(&rec_offset, data + off + 4, 8);
          off += 12;
          if (off + key_size > footer_end) {
            ok = false;
            break;
          }
          entries.emplace_back(
              std::string(reinterpret_cast<const char*>(data + off),
                          key_size),
              rec_offset);
          off += key_size;
        }
        if (ok) {
          for (auto& [key, rec_offset] : entries) {
            auto it = plans_.find(key);
            if (it != plans_.end()) {
              for (Segment& prev : segments_) {
                if (prev.number == it->second.segment_number) {
                  --prev.live_keys;
                }
              }
            }
            plans_[std::move(key)] =
                PlanLocation{seg.number, rec_offset};
            ++seg.live_keys;
          }
          seg.bytes = trailer.footer_offset;
          seg.sealed = true;
          recovered = true;
        }
      }
    }
    if (recovered) continue;

    // Unsealed (or torn-seal) path: forward scan, stopping at the first
    // record that fails its bounds or checksum — a crash mid-append
    // loses at most the tail.
    uint64_t off = 0;
    while (off + sizeof(RecordHeader) <= size) {
      RecordHeader header;
      std::memcpy(&header, data + off, sizeof header);
      if (header.magic != kRecordMagic) break;
      const uint64_t body = off + sizeof header;
      if (header.key_size > size - body ||
          header.payload_size > size - body - header.key_size) {
        break;
      }
      const char* key_ptr = reinterpret_cast<const char*>(data + body);
      const char* payload_ptr = key_ptr + header.key_size;
      if (header.checksum !=
          RecordChecksum({key_ptr, header.key_size},
                         {payload_ptr, header.payload_size})) {
        break;
      }
      std::string key(key_ptr, header.key_size);
      auto it = plans_.find(key);
      if (it != plans_.end()) {
        for (Segment& prev : segments_) {
          if (prev.number == it->second.segment_number) --prev.live_keys;
        }
        if (it->second.segment_number == seg.number) --seg.live_keys;
      }
      plans_[std::move(key)] = PlanLocation{seg.number, off};
      ++seg.live_keys;
      off = body + header.key_size + header.payload_size;
    }
    seg.bytes = off;
    seg.sealed = false;
    if (off < size) {
      // Physically drop the torn tail: appends write at the file end, so
      // the end must BE the committed boundary the key table records. If
      // the truncate fails, freeze the segment instead — its recovered
      // records still serve (their offsets precede the tail), but new
      // appends go to a fresh segment rather than landing after garbage.
      std::error_code trunc_ec;
      fs::resize_file(seg.path, off, trunc_ec);
      if (trunc_ec) seg.sealed = true;
    }
  }
  return Status::Ok();
}

std::string WarmStore::IndexPath(const motif::IndexSnapshotMeta& meta) const {
  return (fs::path(dir_) / "index" /
          StrFormat("%016llx-%s-%016llx.idx",
                    static_cast<unsigned long long>(meta.graph_fingerprint),
                    std::string(motif::MotifName(meta.motif)).c_str(),
                    static_cast<unsigned long long>(meta.target_hash)))
      .string();
}

Result<motif::IncidenceIndex> WarmStore::LoadIndex(
    const motif::IndexSnapshotMeta& meta) {
  const std::string path = IndexPath(meta);
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      ++stats_.index_misses;
      return Status::NotFound("no snapshot for this instance");
    }
  }
  // Injection site "snapshot.load". Transient read faults retry; a
  // persistent failure (or a corrupt/mismatched snapshot) reports as a
  // reject and the caller cold-builds — degradation, never a wrong index.
  Result<motif::IncidenceIndex> index = Status::Internal("unset");
  uint64_t retries = 0;
  (void)RetryTransient(
      options_.retry, RetrySeed(path),
      [&] {
        if (fault::FaultDecision f = fault::Hit("snapshot.load"); f.fire) {
          index = f.ToStatus("snapshot.load(" + path + ")");
          return index.status();
        }
        index = motif::IndexSnapshotCodec::Load(path, meta);
        return index.status();
      },
      &retries);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.io_retries += retries;
  if (!index.ok()) {
    // Transient-I/O failures that outlived the retries count as read
    // degradations; everything else — corrupt bytes, version/fingerprint
    // mismatch, permanent I/O errors — is a validation reject. Exactly
    // one counter per failed load, so degradations() never double-counts.
    if (index.status().code() == StatusCode::kUnavailable) {
      ++stats_.read_degradations;
    } else {
      ++stats_.index_rejects;
    }
    return index;
  }
  ++stats_.index_hits;
  BumpMtime(path);
  return index;
}

Status WarmStore::SaveIndex(const motif::IncidenceIndex& index,
                            const motif::IndexSnapshotMeta& meta) {
  TPP_ASSIGN_OR_RETURN(std::string bytes,
                       motif::IndexSnapshotCodec::Serialize(index, meta));
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.capacity_bytes > 0 &&
      bytes.size() > options_.capacity_bytes) {
    ++stats_.admission_rejects;
    return Status::Ok();  // declined, not failed
  }
  // Injection site "snapshot.save" plus whatever "blob.write" injects
  // underneath. Transient faults retry; AtomicWriteFile guarantees the
  // final path is all-or-nothing on every attempt, so retrying after a
  // torn write is safe.
  const std::string path = IndexPath(meta);
  Status written = RetryTransient(
      options_.retry, RetrySeed(path),
      [&] {
        if (fault::FaultDecision f = fault::Hit("snapshot.save"); f.fire) {
          return f.ToStatus("snapshot.save(" + path + ")");
        }
        return AtomicWriteFile(path, bytes);
      },
      &stats_.io_retries);
  if (!written.ok()) {
    ++stats_.write_failures;
    return written;
  }
  EnforceCapacity();
  return Status::Ok();
}

bool WarmStore::LoadPlan(const std::string& key, std::string* payload) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(key);
  if (it == plans_.end()) {
    ++stats_.plan_misses;
    return false;
  }
  const Segment* seg = nullptr;
  for (const Segment& s : segments_) {
    if (s.number == it->second.segment_number) {
      seg = &s;
      break;
    }
  }
  if (seg == nullptr) {
    ++stats_.plan_misses;
    return false;
  }
  // Injection site "plan.load". Transient faults retry through the
  // policy; any persistent failure — injected, unreadable stream, or a
  // record that fails validation — degrades to a miss (the pipeline
  // re-solves), never to served corruption.
  auto attempt = [&]() -> Status {
    if (fault::FaultDecision f = fault::Hit("plan.load"); f.fire) {
      return f.ToStatus("plan.load(" + seg->path + ")");
    }
    std::ifstream f(seg->path, std::ios::binary);
    RecordHeader header;
    if (!f.seekg(static_cast<std::streamoff>(it->second.offset)) ||
        !f.read(reinterpret_cast<char*>(&header), sizeof header) ||
        header.magic != kRecordMagic || header.key_size != key.size()) {
      return Status::IoError("unreadable plan record in " + seg->path);
    }
    std::string stored_key(header.key_size, '\0');
    payload->assign(header.payload_size, '\0');
    if (!f.read(stored_key.data(),
                static_cast<std::streamsize>(stored_key.size())) ||
        !f.read(payload->data(),
                static_cast<std::streamsize>(payload->size())) ||
        stored_key != key ||
        header.checksum != RecordChecksum(stored_key, *payload)) {
      // Never serve bytes that fail validation.
      payload->clear();
      return Status::IoError("corrupt plan record in " + seg->path);
    }
    return Status::Ok();
  };
  Status read = RetryTransient(options_.retry, RetrySeed(seg->path), attempt,
                               &stats_.io_retries);
  if (!read.ok()) {
    payload->clear();
    ++stats_.read_degradations;
    ++stats_.plan_misses;
    return false;
  }
  ++stats_.plan_hits;
  BumpMtime(seg->path);
  return true;
}

Status WarmStore::AppendPlan(const std::string& key,
                             std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t record_size = RecordSize(key.size(), payload.size());
  if (options_.capacity_bytes > 0 &&
      record_size > options_.capacity_bytes) {
    ++stats_.admission_rejects;
    return Status::Ok();  // declined, not failed
  }
  if (segments_.empty() || segments_.back().sealed) {
    Segment seg;
    seg.number = segments_.empty() ? 1 : segments_.back().number + 1;
    seg.path = (fs::path(dir_) / "plans" /
                StrFormat("seg-%06llu.log",
                          static_cast<unsigned long long>(seg.number)))
                   .string();
    segments_.push_back(std::move(seg));
  }
  Segment& seg = segments_.back();

  RecordHeader header;
  header.key_size = static_cast<uint32_t>(key.size());
  header.payload_size = payload.size();
  header.checksum = RecordChecksum(key, payload);
  std::string record;
  record.reserve(record_size);
  record.append(reinterpret_cast<const char*>(&header), sizeof header);
  record.append(key);
  record.append(payload.data(), payload.size());

  // Injection site "store.append". Unlike AtomicWriteFile, appends land
  // in place, so a torn write leaves a prefix of the record in the live
  // segment. Between attempts (and after a final failure) the file is
  // truncated back to the committed record boundary — a retry must not
  // append after its own torn garbage, and recovery's forward scan stops
  // at exactly this boundary if the process dies before the truncate.
  auto attempt = [&]() -> Status {
    fault::FaultDecision f = fault::Hit("store.append", record.size());
    if (f.fire && f.kind != fault::FaultKind::kTorn) {
      return f.ToStatus("store.append(" + seg.path + ")");
    }
    const size_t limit =
        f.fire ? static_cast<size_t>(f.torn_bytes) : record.size();
    std::ofstream out(seg.path, std::ios::binary | std::ios::app);
    if (!out) return Status::IoError("cannot append to " + seg.path);
    out.write(record.data(), static_cast<std::streamsize>(limit));
    out.flush();
    if (f.fire) {  // simulated crash: the prefix is on disk, then death
      return f.ToStatus("store.append(" + seg.path + ")");
    }
    if (!out.good()) return Status::IoError("short append to " + seg.path);
    return Status::Ok();
  };
  auto truncate_to_committed = [&] {
    std::error_code ec;
    fs::resize_file(seg.path, seg.bytes, ec);  // best effort
  };
  Status written = attempt();
  for (int a = 1;
       a < options_.retry.max_attempts && IsRetryable(written.code()); ++a) {
    truncate_to_committed();
    std::this_thread::sleep_for(std::chrono::microseconds(
        BackoffMicros(options_.retry, a, RetrySeed(seg.path))));
    ++stats_.io_retries;
    written = attempt();
  }
  if (!written.ok()) {
    truncate_to_committed();
    ++stats_.write_failures;
    return written;
  }
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    for (Segment& prev : segments_) {
      if (prev.number == it->second.segment_number) --prev.live_keys;
    }
  }
  plans_[key] = PlanLocation{seg.number, seg.bytes};
  ++seg.live_keys;
  seg.bytes += record_size;
  if (seg.bytes > options_.plan_segment_bytes) {
    // Sealing is an optimization (footer-indexed opens); a seal that
    // fails even after retries degrades to "stay unsealed" — recovery
    // falls back to the forward scan — and must not fail the append,
    // whose record is already durable.
    Status sealed = SealActiveSegment();
    if (!sealed.ok()) ++stats_.write_failures;
  }
  EnforceCapacity();
  return Status::Ok();
}

Status WarmStore::SealActiveSegment() {
  Segment& seg = segments_.back();
  // Footer: the live key -> record-offset table of this segment, then a
  // fixed trailer naming it. Appending the footer is the commit; a crash
  // before the trailer lands leaves a scannable unsealed segment.
  std::string footer;
  uint64_t entry_count = 0;
  for (const auto& [key, loc] : plans_) {
    if (loc.segment_number != seg.number) continue;
    const uint32_t key_size = static_cast<uint32_t>(key.size());
    footer.append(reinterpret_cast<const char*>(&key_size), 4);
    footer.append(reinterpret_cast<const char*>(&loc.offset), 8);
    footer.append(key);
    ++entry_count;
  }
  FooterTrailer trailer;
  trailer.footer_offset = seg.bytes;
  trailer.entry_count = entry_count;
  trailer.footer_checksum = HashBytes64(footer.data(), footer.size());
  footer.append(reinterpret_cast<const char*>(&trailer), sizeof trailer);

  // Injection site "store.seal". The footer is append-only commit data:
  // between attempts the file truncates back to the record boundary so a
  // retried footer never lands after a torn one, and a crash at any
  // point leaves a scannable unsealed segment.
  auto attempt = [&]() -> Status {
    fault::FaultDecision f = fault::Hit("store.seal", footer.size());
    if (f.fire && f.kind != fault::FaultKind::kTorn) {
      return f.ToStatus("store.seal(" + seg.path + ")");
    }
    const size_t limit =
        f.fire ? static_cast<size_t>(f.torn_bytes) : footer.size();
    std::ofstream out(seg.path, std::ios::binary | std::ios::app);
    if (!out) return Status::IoError("cannot seal " + seg.path);
    out.write(footer.data(), static_cast<std::streamsize>(limit));
    out.flush();
    if (f.fire) return f.ToStatus("store.seal(" + seg.path + ")");
    if (!out.good()) {
      return Status::IoError("short footer write to " + seg.path);
    }
    return Status::Ok();
  };
  auto truncate_to_records = [&] {
    std::error_code ec;
    fs::resize_file(seg.path, seg.bytes, ec);  // best effort
  };
  Status written = attempt();
  for (int a = 1;
       a < options_.retry.max_attempts && IsRetryable(written.code()); ++a) {
    truncate_to_records();
    std::this_thread::sleep_for(std::chrono::microseconds(
        BackoffMicros(options_.retry, a, RetrySeed(seg.path))));
    ++stats_.io_retries;
    written = attempt();
  }
  if (!written.ok()) {
    truncate_to_records();
    return written;
  }
  seg.sealed = true;
  return Status::Ok();
}

void WarmStore::DropSegmentKeys(uint64_t segment_number) {
  for (auto it = plans_.begin(); it != plans_.end();) {
    if (it->second.segment_number == segment_number) {
      it = plans_.erase(it);
    } else {
      ++it;
    }
  }
}

void WarmStore::EnforceCapacity() {
  if (options_.capacity_bytes == 0) return;
  struct Candidate {
    std::string path;
    uint64_t bytes = 0;
    double age = 0;
    bool is_segment = false;
    uint64_t segment_number = 0;
  };
  for (;;) {
    std::vector<Candidate> candidates;
    uint64_t total = 0;
    std::error_code ec;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(fs::path(dir_) / "index", ec)) {
      Candidate c;
      c.path = entry.path().string();
      c.bytes = FileBytes(entry.path());
      c.age = FileAgeSeconds(entry.path());
      total += c.bytes;
      candidates.push_back(std::move(c));
    }
    for (size_t s = 0; s < segments_.size(); ++s) {
      const uint64_t bytes = FileBytes(segments_[s].path);
      total += bytes;
      if (s + 1 == segments_.size()) continue;  // active segment is exempt
      Candidate c;
      c.path = segments_[s].path;
      c.bytes = bytes;
      c.age = FileAgeSeconds(segments_[s].path);
      c.is_segment = true;
      c.segment_number = segments_[s].number;
      candidates.push_back(std::move(c));
    }
    if (total <= options_.capacity_bytes || candidates.empty()) return;
    // Oldest mtime goes first: reads bump mtimes, so this is LRU at file
    // granularity.
    auto victim = std::max_element(
        candidates.begin(), candidates.end(),
        [](const Candidate& a, const Candidate& b) { return a.age < b.age; });
    std::error_code rm;
    fs::remove(victim->path, rm);
    if (rm) return;  // cannot evict; stop rather than loop forever
    ++stats_.evicted_files;
    if (victim->is_segment) {
      DropSegmentKeys(victim->segment_number);
      segments_.erase(
          std::remove_if(segments_.begin(), segments_.end(),
                         [&](const Segment& s) {
                           return s.number == victim->segment_number;
                         }),
          segments_.end());
    }
  }
}

Result<std::vector<StoreEntry>> WarmStore::Scan() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StoreEntry> entries;
  std::error_code ec;
  std::vector<fs::path> index_files;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(fs::path(dir_) / "index", ec)) {
    index_files.push_back(entry.path());
  }
  std::sort(index_files.begin(), index_files.end());
  for (const fs::path& path : index_files) {
    StoreEntry e;
    e.kind = StoreEntry::Kind::kIndexSnapshot;
    e.name = (fs::path("index") / path.filename()).string();
    e.path = path.string();
    e.bytes = FileBytes(path);
    e.age_seconds = FileAgeSeconds(path);
    Result<motif::IndexSnapshotCodec::FileInfo> info =
        motif::IndexSnapshotCodec::Inspect(path.string());
    if (info.ok()) {
      e.graph_fingerprint = info->meta.graph_fingerprint;
      e.target_hash = info->meta.target_hash;
      e.motif = std::string(motif::MotifName(info->meta.motif));
    } else {
      e.motif = "<unreadable>";
    }
    entries.push_back(std::move(e));
  }
  for (const Segment& seg : segments_) {
    StoreEntry e;
    e.kind = StoreEntry::Kind::kPlanSegment;
    e.name = (fs::path("plans") / fs::path(seg.path).filename()).string();
    e.path = seg.path;
    e.bytes = FileBytes(seg.path);
    e.age_seconds = FileAgeSeconds(seg.path);
    e.plan_records = seg.live_keys;
    e.sealed = seg.sealed;
    entries.push_back(std::move(e));
  }
  return entries;
}

Status WarmStore::VerifyAll(std::vector<std::string>* problems) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(fs::path(dir_) / "index", ec)) {
    Status status = motif::IndexSnapshotCodec::Verify(entry.path().string());
    if (!status.ok()) problems->push_back(status.ToString());
  }
  for (const Segment& seg : segments_) {
    Result<std::shared_ptr<const MappedBlob>> blob_or =
        MappedBlob::Open(seg.path);
    if (!blob_or.ok()) {
      problems->push_back(blob_or.status().ToString());
      continue;
    }
    const MappedBlob& blob = **blob_or;
    uint64_t off = 0;
    while (off < seg.bytes) {
      if (off + sizeof(RecordHeader) > blob.size()) {
        problems->push_back(seg.path + ": record past end of file");
        break;
      }
      RecordHeader header;
      std::memcpy(&header, blob.data() + off, sizeof header);
      const uint64_t body = off + sizeof header;
      if (header.magic != kRecordMagic ||
          header.key_size > blob.size() - body ||
          header.payload_size > blob.size() - body - header.key_size) {
        problems->push_back(seg.path + ": malformed record");
        break;
      }
      const char* key_ptr =
          reinterpret_cast<const char*>(blob.data() + body);
      if (header.checksum !=
          RecordChecksum({key_ptr, header.key_size},
                         {key_ptr + header.key_size,
                          header.payload_size})) {
        problems->push_back(seg.path + ": record checksum mismatch");
        break;
      }
      off = body + header.key_size + header.payload_size;
    }
  }
  return Status::Ok();
}

Status WarmStore::EvictByName(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const fs::path path = fs::path(dir_) / name;
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    return Status::NotFound("no store entry named " + name);
  }
  std::error_code rm;
  fs::remove(path, rm);
  if (rm) return Status::IoError("cannot remove " + path.string());
  for (size_t s = 0; s < segments_.size(); ++s) {
    if (segments_[s].path == path.string()) {
      DropSegmentKeys(segments_[s].number);
      segments_.erase(segments_.begin() + static_cast<ptrdiff_t>(s));
      break;
    }
  }
  ++stats_.evicted_files;
  return Status::Ok();
}

Result<size_t> WarmStore::EvictOlderThan(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t removed = 0;
  std::error_code ec;
  std::vector<fs::path> victims;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(fs::path(dir_) / "index", ec)) {
    if (FileAgeSeconds(entry.path()) > seconds) {
      victims.push_back(entry.path());
    }
  }
  for (size_t s = 0; s < segments_.size(); ++s) {
    if (s + 1 == segments_.size() && !segments_[s].sealed) {
      continue;  // active segment is exempt
    }
    if (FileAgeSeconds(segments_[s].path) > seconds) {
      victims.push_back(segments_[s].path);
    }
  }
  for (const fs::path& path : victims) {
    std::error_code rm;
    fs::remove(path, rm);
    if (rm) continue;
    ++removed;
    ++stats_.evicted_files;
    for (size_t s = 0; s < segments_.size(); ++s) {
      if (segments_[s].path == path.string()) {
        DropSegmentKeys(segments_[s].number);
        segments_.erase(segments_.begin() + static_cast<ptrdiff_t>(s));
        break;
      }
    }
  }
  return removed;
}

namespace {

// True when `key` could still be served against the live graph. Keys are
// canonical plan-cache keys, "tpp-plan-v1|fp=<16 hex>|..."; anything in
// another shape is conservatively treated as live.
bool KeyServesLiveGraph(const std::string& key, uint64_t live_fingerprint) {
  constexpr std::string_view kTag = "tpp-plan-v1|fp=";
  if (key.size() < kTag.size() + 16 ||
      key.compare(0, kTag.size(), kTag) != 0) {
    return true;
  }
  uint64_t fp = 0;
  for (size_t i = 0; i < 16; ++i) {
    const char c = key[kTag.size() + i];
    fp <<= 4;
    if (c >= '0' && c <= '9') {
      fp |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      fp |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return true;
    }
  }
  return fp == live_fingerprint;
}

}  // namespace

Result<size_t> WarmStore::EvictStale(uint64_t live_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t removed = 0;
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(fs::path(dir_) / "index", ec)) {
    Result<motif::IndexSnapshotCodec::FileInfo> info =
        motif::IndexSnapshotCodec::Inspect(entry.path().string());
    // Inspect already rejects bad magic, foreign format versions, and
    // header corruption — all states no live caller can load.
    const bool stale =
        !info.ok() || info->meta.graph_fingerprint != live_fingerprint;
    if (!stale) continue;
    std::error_code rm;
    fs::remove(entry.path(), rm);
    if (rm) continue;
    ++removed;
    ++stats_.evicted_files;
  }
  std::vector<uint64_t> stale_segments;
  for (size_t s = 0; s < segments_.size(); ++s) {
    if (!segments_[s].sealed) continue;  // active segment is exempt
    bool live = false;
    for (const auto& [key, loc] : plans_) {
      if (loc.segment_number == segments_[s].number &&
          KeyServesLiveGraph(key, live_fingerprint)) {
        live = true;
        break;
      }
    }
    if (!live) stale_segments.push_back(segments_[s].number);
  }
  for (uint64_t number : stale_segments) {
    for (size_t s = 0; s < segments_.size(); ++s) {
      if (segments_[s].number != number) continue;
      std::error_code rm;
      fs::remove(segments_[s].path, rm);
      if (rm) break;
      ++removed;
      ++stats_.evicted_files;
      DropSegmentKeys(number);
      segments_.erase(segments_.begin() + static_cast<ptrdiff_t>(s));
      break;
    }
  }
  return removed;
}

WarmStore::Stats WarmStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace tpp::service::store
