// PlanCache: content-addressed LRU memo of plan responses.
//
// Nightly protection batches re-issue identical (targets, motif, spec,
// seed) requests against the same released base graph over and over. The
// cache memoizes the full PlanResponse under a canonical key string that
// embeds graph::Fingerprint(base) plus every response-relevant request
// field (the request name is excluded — it never reaches the payload).
// Keying on the fingerprint makes entries self-invalidate when the base
// graph changes: a modified base produces a new fingerprint, so stale
// entries simply never match again and age out of the LRU ring. Keys are
// compared by full string equality, so a hit is exact over the key
// itself — the request-payload fields cannot collide; the graph is
// abbreviated by its 64-bit fingerprint, whose ~2^-64 collision risk the
// cache accepts (see graph/fingerprint.h).
//
// Failed responses are cached too by default: a request that
// deterministically fails (e.g. sampling more targets than the graph has
// edges) fails identically on recomputation, so serving the memoized
// status preserves bit-identity. set_cache_failures(false) turns that
// memoization off for deployments where failures can be transient (an
// OOM-killed build, a disk hiccup); the disk-backed store runs in that
// mode so a transient error is never persisted and served across runs.
//
// An optional backing store (service/store/warm_store.h) extends the
// in-memory LRU across process restarts: OK responses write through to
// the store's plan log, and an in-memory miss probes the store before
// reporting a miss — a disk hit decodes, refills the memory tier, and
// serves. Failed responses NEVER reach the store regardless of
// cache_failures.
//
// Thread-safe: PlanService pipeline workers probe and fill one cache
// concurrently; a single mutex suffices because entries are coarse (one
// solved plan) and the guarded work is a hash lookup plus a splice.

#ifndef TPP_SERVICE_PLAN_CACHE_H_
#define TPP_SERVICE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>

#include "graph/edge.h"
#include "service/plan_service.h"

namespace tpp::service {

namespace store {
class WarmStore;
}  // namespace store

/// Canonical content key of one request against one base graph: a pure
/// function of the fingerprint and the request payload (name excluded).
/// Equal keys imply bit-identical responses; any field that can change
/// the response — including seed, scope, lazy, budget, and whether the
/// released graph is wanted — changes the key.
std::string CanonicalRequestKey(uint64_t base_fingerprint,
                                const PlanRequest& request);

/// LRU-bounded response memo. See file comment.
class PlanCache {
 public:
  /// Running totals; size/capacity are a snapshot at stats() time.
  struct Stats {
    uint64_t hits = 0;          ///< in-memory hits
    uint64_t backing_hits = 0;  ///< misses served from the backing store
    uint64_t misses = 0;        ///< true misses (both tiers)
    uint64_t evictions = 0;
    uint64_t invalidated_by_edit = 0;  ///< entries dropped by InvalidateForEdit
    uint64_t rekeyed_by_edit = 0;  ///< entries surviving an edit (rekeyed)
    /// Write-throughs the backing store could not persist (after its own
    /// retry policy gave up). The memory tier still holds the entry, so
    /// this process keeps serving it; only the cross-restart warm start
    /// is lost. Feeds the batch footer for CI gating.
    uint64_t backing_write_failures = 0;
    size_t size = 0;
    size_t capacity = 0;
  };

  /// Per-call outcome of InvalidateForEdit.
  struct EditOutcome {
    size_t invalidated = 0;  ///< entries dropped
    size_t rekeyed = 0;      ///< entries moved under the new fingerprint
  };

  /// `capacity` bounds the number of memoized responses; 0 means
  /// unbounded (no evictions).
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Copies the memoized response for `key` into `*out` and marks the
  /// entry most-recently-used. Counts a hit or a miss. The payload copy
  /// (which may embed a released graph) happens outside the lock —
  /// entries are immutable and shared_ptr-owned, so the critical section
  /// is just the hash lookup plus the LRU splice.
  bool Lookup(const std::string& key, PlanResponse* out);

  /// Memoizes `response` under `key`, evicting the least-recently-used
  /// entry when at capacity. Inserting an existing key refreshes the
  /// entry (last writer wins — with deterministic responses both writers
  /// carry the same payload).
  void Insert(const std::string& key, PlanResponse response);

  Stats stats() const;

  /// Reconciles the memory tier with a committed base-graph edit that
  /// moved the fingerprint from `old_fingerprint` to `new_fingerprint`.
  /// Fingerprint keying already guarantees correctness — stale keys can
  /// never match again — so this is purely about SURVIVAL: an entry whose
  /// response provably cannot change under the edit is rekeyed in place to
  /// the new fingerprint (keeping its LRU position, and written through to
  /// the backing store so the survival persists), instead of becoming
  /// unreachable garbage that forces a re-solve.
  ///
  /// An entry survives iff every condition holds:
  ///   * its algorithm is deterministic and motif-local (sgb / ct-tbd /
  ///     ct-dbd / wt-tbd / wt-dbd — the randomized baselines consume RNG
  ///     draws whose alignment an edit can shift);
  ///   * it names explicit target links (sampled targets draw from the
  ///     edge set, which the edit changed);
  ///   * its candidate scope is the target-subgraph restriction (scope=all
  ///     ranges over every edge of the base, so any edit perturbs it);
  ///   * it does not carry a released graph (rel=0 — the released graph
  ///     embeds the whole edited base);
  ///   * no target endpoint lies in `affected` — the sorted node set
  ///     within distance 1 of an edited edge ON THE PRE-EDIT GRAPH (the
  ///     delta-neighborhood rule: every motif instance an edit creates or
  ///     destroys anchors a target endpoint there, see
  ///     motif/index_repair.cc), so targets outside it keep their exact
  ///     instance sets and the solver replays byte-identically.
  /// Everything else under `old_fingerprint` is dropped and counted in
  /// `invalidated_by_edit`. Entries under other fingerprints are left
  /// untouched.
  EditOutcome InvalidateForEdit(uint64_t old_fingerprint,
                                uint64_t new_fingerprint,
                                std::span<const graph::NodeId> affected);

  /// Drops every entry (counters keep running). The backing store, if
  /// any, is untouched — its entries are still served on future misses.
  void Clear();

  /// Attaches (or with nullptr, detaches) a persistent second tier.
  /// Not owned; must outlive the cache or be detached first.
  void set_backing_store(store::WarmStore* backing) { backing_ = backing; }

  /// Whether failed responses are memoized in memory (default true; see
  /// file comment). Failures never reach the backing store either way,
  /// and TIMING-DEPENDENT failures (deadline exceeded, canceled,
  /// transient unavailability) are never memoized at all — a retry with
  /// a fresh deadline must re-solve, not replay the stale verdict.
  void set_cache_failures(bool cache_failures) {
    cache_failures_ = cache_failures;
  }

 private:
  // Entries are immutable once inserted; shared_ptr ownership lets
  // Lookup hand the payload out of the critical section safely even if
  // the entry is evicted a moment later.
  using Entry = std::shared_ptr<const PlanResponse>;
  using LruList = std::list<std::pair<std::string, Entry>>;

  /// Insert's memory-tier half: memoize under `key` + LRU-evict, handing
  /// any displaced entry out through `evicted` so its (possibly large)
  /// payload is destroyed outside the lock. Shared by Insert and the
  /// backing-store refill path in Lookup. Requires mu_ held.
  void InsertInMemory(const std::string& key, Entry entry, Entry* evicted);

  mutable std::mutex mu_;
  size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t backing_hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t invalidated_by_edit_ = 0;
  uint64_t rekeyed_by_edit_ = 0;
  std::atomic<uint64_t> backing_write_failures_{0};  // bumped outside mu_
  store::WarmStore* backing_ = nullptr;  // not owned
  bool cache_failures_ = true;
};

}  // namespace tpp::service

#endif  // TPP_SERVICE_PLAN_CACHE_H_
