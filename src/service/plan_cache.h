// PlanCache: content-addressed LRU memo of plan responses.
//
// Nightly protection batches re-issue identical (targets, motif, spec,
// seed) requests against the same released base graph over and over. The
// cache memoizes the full PlanResponse under a canonical key string that
// embeds graph::Fingerprint(base) plus every response-relevant request
// field (the request name is excluded — it never reaches the payload).
// Keying on the fingerprint makes entries self-invalidate when the base
// graph changes: a modified base produces a new fingerprint, so stale
// entries simply never match again and age out of the LRU ring. Keys are
// compared by full string equality, so a hit is exact over the key
// itself — the request-payload fields cannot collide; the graph is
// abbreviated by its 64-bit fingerprint, whose ~2^-64 collision risk the
// cache accepts (see graph/fingerprint.h).
//
// Failed responses are cached too: a request that deterministically fails
// (e.g. sampling more targets than the graph has edges) fails identically
// on recomputation, so serving the memoized status preserves bit-identity.
//
// Thread-safe: PlanService pipeline workers probe and fill one cache
// concurrently; a single mutex suffices because entries are coarse (one
// solved plan) and the guarded work is a hash lookup plus a splice.

#ifndef TPP_SERVICE_PLAN_CACHE_H_
#define TPP_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "service/plan_service.h"

namespace tpp::service {

/// Canonical content key of one request against one base graph: a pure
/// function of the fingerprint and the request payload (name excluded).
/// Equal keys imply bit-identical responses; any field that can change
/// the response — including seed, scope, lazy, budget, and whether the
/// released graph is wanted — changes the key.
std::string CanonicalRequestKey(uint64_t base_fingerprint,
                                const PlanRequest& request);

/// LRU-bounded response memo. See file comment.
class PlanCache {
 public:
  /// Running totals; size/capacity are a snapshot at stats() time.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t size = 0;
    size_t capacity = 0;
  };

  /// `capacity` bounds the number of memoized responses; 0 means
  /// unbounded (no evictions).
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Copies the memoized response for `key` into `*out` and marks the
  /// entry most-recently-used. Counts a hit or a miss. The payload copy
  /// (which may embed a released graph) happens outside the lock —
  /// entries are immutable and shared_ptr-owned, so the critical section
  /// is just the hash lookup plus the LRU splice.
  bool Lookup(const std::string& key, PlanResponse* out);

  /// Memoizes `response` under `key`, evicting the least-recently-used
  /// entry when at capacity. Inserting an existing key refreshes the
  /// entry (last writer wins — with deterministic responses both writers
  /// carry the same payload).
  void Insert(const std::string& key, PlanResponse response);

  Stats stats() const;

  /// Drops every entry (counters keep running).
  void Clear();

 private:
  // Entries are immutable once inserted; shared_ptr ownership lets
  // Lookup hand the payload out of the critical section safely even if
  // the entry is evicted a moment later.
  using Entry = std::shared_ptr<const PlanResponse>;
  using LruList = std::list<std::pair<std::string, Entry>>;

  mutable std::mutex mu_;
  size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace tpp::service

#endif  // TPP_SERVICE_PLAN_CACHE_H_
