#include "service/plan_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <limits>
#include <mutex>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/flags.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/indexed_engine.h"
#include "graph/fingerprint.h"
#include "service/instance_repository.h"
#include "service/plan_cache.h"
#include "service/store/warm_store.h"

namespace tpp::service {

using core::IndexedEngine;
using core::SolverSpec;
using core::TppInstance;
using graph::Edge;

namespace {

constexpr size_t kNoGroup = std::numeric_limits<size_t>::max();

// The solve tail shared by RunOne and the batch pipeline: everything
// after the targets are resolved and an engine over the instance exists.
// Keeping it one function makes "pipeline output == sequential RunOne
// loop" an identity by construction, not by coincidence.
void SolveWithEngine(const PlanRequest& request, const TppInstance& instance,
                     IndexedEngine& engine, Rng& rng,
                     const CancellationToken* cancel,
                     PlanResponse* response) {
  SolverSpec spec = request.spec;
  if (cancel != nullptr) spec.cancel = cancel;
  Result<core::ProtectionResult> result =
      core::RunSolver(spec, engine, instance, rng);
  if (!result.ok()) {
    response->status = result.status();
    return;
  }
  response->result = std::move(*result);
  response->plan_text =
      core::SerializeDeletionPlan(instance, response->result);
  if (request.want_released) response->released = engine.CurrentGraph();
}

// The effective cancel source of one request: its own deadline_ms (clock
// starting now) tightened by an optional batch deadline, chained over the
// request's external cancel token. Arms `token` and returns it when any
// source is active, else returns the bare external token (possibly null)
// so unarmed requests keep the null fast path.
const CancellationToken* ArmRequestToken(
    const PlanRequest& request, bool batch_deadline,
    CancellationToken::Clock::time_point batch_by, CancellationToken& token) {
  if (request.deadline_ms <= 0 && !batch_deadline) return request.cancel;
  if (request.deadline_ms > 0) {
    token.TightenDeadline(CancellationToken::Clock::now() +
                          std::chrono::milliseconds(request.deadline_ms));
  }
  if (batch_deadline) token.TightenDeadline(batch_by);
  token.set_parent(request.cancel);
  return &token;
}

}  // namespace

Rng RequestRng(uint64_t seed) { return Rng(SplitMix64(seed)); }

PlanService::PlanService(graph::Graph base)
    : base_(std::move(base)), fingerprint_(graph::Fingerprint(base_)) {}

namespace {

// Marks a RunBatch/RunOne execution live for the ApplyEdit guard.
struct ActiveRunGuard {
  explicit ActiveRunGuard(std::atomic<int>& counter) : counter(counter) {
    counter.fetch_add(1, std::memory_order_acq_rel);
  }
  ~ActiveRunGuard() { counter.fetch_sub(1, std::memory_order_acq_rel); }
  std::atomic<int>& counter;
};

}  // namespace

PlanResponse PlanService::RunOne(const PlanRequest& request) const {
  ActiveRunGuard active(active_runs_);
  WallTimer timer;
  PlanResponse response;
  CancellationToken deadline_token;
  const CancellationToken* cancel = ArmRequestToken(
      request, /*batch_deadline=*/false, {}, deadline_token);
  // Everything below depends only on the base graph and the request, so
  // concurrent execution order cannot change any response.
  Rng rng = RequestRng(request.seed);
  if (request.targets.empty()) {
    Result<std::vector<Edge>> sampled =
        core::SampleTargets(base_, request.sample, rng);
    if (!sampled.ok()) {
      response.status = sampled.status();
      return response;
    }
    response.targets = std::move(*sampled);
  } else {
    response.targets = request.targets;
  }
  // Stage-boundary poll before the expensive build; the solver polls at
  // its own round boundaries from here on.
  response.status = PollCancellation(cancel, "plan:build");
  if (!response.status.ok()) return response;
  Result<TppInstance> instance =
      core::MakeInstance(base_, response.targets, request.motif);
  if (!instance.ok()) {
    response.status = instance.status();
    return response;
  }
  motif::IncidenceIndex::BuildOptions build_options;
  build_options.cancel = cancel;
  Result<IndexedEngine> engine =
      IndexedEngine::Create(*instance, build_options);
  if (!engine.ok()) {
    response.status = engine.status();
    return response;
  }
  SolveWithEngine(request, *instance, *engine, rng, cancel, &response);
  if (!response.status.ok()) return response;
  response.seconds = timer.Seconds();
  return response;
}

std::vector<PlanResponse> PlanService::RunPipeline(
    std::span<const PlanRequest> requests, const BatchOptions& options,
    const ResponseSink* sink) const {
  ActiveRunGuard active(active_runs_);
  const size_t n = requests.size();
  std::vector<PlanResponse> responses(n);
  BatchStats stats;
  stats.requests = n;
  if (n == 0) {
    if (options.stats) *options.stats = stats;
    return responses;
  }

  // -- Stage 1: canonicalize. One content key per request, a pure
  // function of the base-graph fingerprint and the request payload.
  // Keys feed dedup and the cache only; with both disabled the stage is
  // skipped entirely.
  const bool need_keys = options.dedup || options.cache != nullptr;
  std::vector<std::string> keys(need_keys ? n : 0);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = CanonicalRequestKey(fingerprint_, requests[i]);
  }

  // -- Stage 2: dedup. The first occurrence of a key is the
  // representative; later occurrences share its response. Identical keys
  // imply identical payloads, so sharing is bit-identical to re-solving.
  std::vector<size_t> rep(n);
  if (options.dedup) {
    std::unordered_map<std::string_view, size_t> first;
    first.reserve(n * 2);
    for (size_t i = 0; i < n; ++i) {
      auto [it, inserted] = first.try_emplace(keys[i], i);
      rep[i] = it->second;
      if (!inserted) ++stats.dedup_shared;
    }
  } else {
    for (size_t i = 0; i < n; ++i) rep[i] = i;
  }

  // -- Stage 3: cache probe (representatives only). Hits are final
  // immediately; misses become solve units.
  struct Unit {
    size_t index = 0;        // the representative's input position
    std::optional<Rng> rng;  // stream already advanced past sampling
    size_t group = kNoGroup;
    bool failed = false;     // resolution failed; status already recorded
    const CancellationToken* cancel = nullptr;  // effective deadline/cancel
  };
  std::vector<char> done(n, 0);  // representative slots that are final
  std::vector<Unit> units;
  for (size_t i = 0; i < n; ++i) {
    if (rep[i] != i) continue;
    if (options.cache && options.cache->Lookup(keys[i], &responses[i])) {
      responses[i].from_cache = true;
      done[i] = 1;
      ++stats.cache_hits;
      continue;
    }
    Unit unit;
    unit.index = i;
    units.push_back(std::move(unit));
  }
  stats.solved = units.size();

  // Deadline arming: one token per deadline-carrying unit, owned here for
  // the pipeline's lifetime (deque: emplace_back never moves tokens, whose
  // address is their identity). The batch clock starts now, so cache hits
  // above never consumed any of the budget.
  const bool batch_deadline = options.batch_deadline_ms > 0;
  CancellationToken::Clock::time_point batch_by{};
  if (batch_deadline) {
    batch_by = CancellationToken::Clock::now() +
               std::chrono::milliseconds(options.batch_deadline_ms);
  }
  std::deque<CancellationToken> deadline_tokens;
  for (Unit& unit : units) {
    const PlanRequest& request = requests[unit.index];
    if (request.deadline_ms <= 0 && !batch_deadline &&
        request.cancel == nullptr) {
      continue;  // unarmed: keep the null fast path
    }
    unit.cancel = ArmRequestToken(request, batch_deadline, batch_by,
                                  deadline_tokens.emplace_back());
  }

  // -- Stage 4: resolve targets and group by instance. Sampling draws
  // come from the request's own stream exactly as RunOne draws them, and
  // the advanced stream is kept for the solve stage. Units with the same
  // resolved (targets, motif) land in one repository group and will share
  // a single TppInstance + IncidenceIndex build.
  int max_workers =
      options.max_workers > 0 ? options.max_workers : GlobalThreadCount();
  InstanceRepository local_repository(&base_);
  // An external repository (options.repository) carries prototype engines
  // across batches; its counters are cumulative, so stats report the
  // deltas this run produced.
  InstanceRepository& repository = options.repository != nullptr
                                       ? *options.repository
                                       : local_repository;
  const size_t builds_before = repository.NumBuilds();
  const size_t snapshot_hits_before = repository.NumSnapshotHits();
  const size_t snapshot_stores_before = repository.NumSnapshotStores();
  // Store health counters are cumulative on the store; report this run's
  // deltas (retries absorbed, writes lost, degradations) alongside.
  store::WarmStore::Stats store_before;
  if (options.store != nullptr) store_before = options.store->stats();
  // A cold group's one-time index build parallelizes over the same pool
  // budget the solve stage gets; nesting inside a pool worker is safe
  // (the building worker drains its own ParallelFor chunks).
  repository.set_build_threads(max_workers);
  if (options.store != nullptr) {
    repository.set_store(options.store, fingerprint_);
  }
  for (Unit& unit : units) {
    const PlanRequest& request = requests[unit.index];
    PlanResponse& response = responses[unit.index];
    unit.rng.emplace(RequestRng(request.seed));
    if (request.targets.empty()) {
      Result<std::vector<Edge>> sampled =
          core::SampleTargets(base_, request.sample, *unit.rng);
      if (!sampled.ok()) {
        response.status = sampled.status();
        unit.failed = true;
        continue;
      }
      response.targets = std::move(*sampled);
    } else {
      response.targets = request.targets;
    }
    if (options.share_instances) {
      unit.group = repository.Intern(response.targets, request.motif);
    }
  }

  // -- Stages 5-7: build-once, solve, serialize, cache-fill. Units are
  // claimed dynamically by up to max_workers workers. Mirroring
  // ThreadPool::ParallelFor, the calling thread always participates, so
  // progress never depends on a free pool thread; between its own units
  // (and while waiting at the end) it also delivers the completed
  // in-order prefix to the sink.
  std::mutex mu;
  std::condition_variable cv;
  int helpers_left = 0;  // guarded by mu
  std::atomic<size_t> next{0};

  auto run_unit = [&](Unit& unit) {
    WallTimer timer;
    const PlanRequest& request = requests[unit.index];
    PlanResponse& response = responses[unit.index];
    if (!unit.failed) {
      // Stage-boundary poll before the build/solve stage; the solver
      // polls at its own round boundaries from here on. An expired unit
      // fails in place — the rest of the batch proceeds.
      response.status = PollCancellation(unit.cancel, "pipeline:solve");
    }
    if (!unit.failed && response.status.ok()) {
      if (unit.group != kNoGroup) {
        Result<IndexedEngine> engine =
            repository.AcquireEngine(unit.group, unit.cancel);
        if (!engine.ok()) {
          response.status = engine.status();
        } else {
          SolveWithEngine(request, repository.instance(unit.group), *engine,
                          *unit.rng, unit.cancel, &response);
        }
      } else {
        // Unshared path (share_instances off): the per-request build of
        // RunOne.
        Result<TppInstance> instance =
            core::MakeInstance(base_, response.targets, request.motif);
        if (!instance.ok()) {
          response.status = instance.status();
        } else {
          motif::IncidenceIndex::BuildOptions build_options;
          build_options.cancel = unit.cancel;
          Result<IndexedEngine> engine =
              IndexedEngine::Create(*instance, build_options);
          if (!engine.ok()) {
            response.status = engine.status();
          } else {
            SolveWithEngine(request, *instance, *engine, *unit.rng,
                            unit.cancel, &response);
          }
        }
      }
      if (response.status.ok()) response.seconds = timer.Seconds();
    }
    // Failed responses are memoized too: deterministic inputs fail
    // deterministically, so a cached failure equals a recomputed one.
    if (options.cache) options.cache->Insert(keys[unit.index], response);
  };
  // -- Stage 8 (interleaved): deliver in input order. `delivered` is only
  // touched by the calling thread; a done flag observed under the mutex
  // happens-after the worker's writes to that response slot, and final
  // slots are never written again, so the copy/sink below runs unlocked.
  size_t delivered = 0;
  auto deliver_ready = [&] {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (delivered >= n || !done[rep[delivered]]) return;
      }
      size_t i = delivered++;
      if (rep[i] != i) responses[i] = responses[rep[i]];
      if (sink) (*sink)(i, responses[i]);
    }
  };
  // `deliver` is true only on the calling thread: it flushes the ready
  // prefix between its own units, so a 1-worker run streams
  // solve-one-deliver-one and a parallel run streams at request
  // granularity.
  auto claim_units = [&](bool deliver) {
    for (;;) {
      if (deliver) deliver_ready();
      size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= units.size()) break;
      run_unit(units[k]);
      {
        // Notify under the lock: the caller destroys cv right after its
        // exit predicate holds, so a notify outside the critical section
        // could touch a dead condition variable.
        std::lock_guard<std::mutex> lock(mu);
        done[units[k].index] = 1;
        cv.notify_all();
      }
    }
  };

  int helpers = 0;
  if (units.size() > 1 && max_workers > 1) {
    helpers = static_cast<int>(std::min<size_t>(
        static_cast<size_t>(max_workers - 1), units.size() - 1));
  }
  if (helpers > 0) {
    helpers_left = helpers;
    ThreadPool& pool = GlobalThreadPool();
    pool.EnsureThreads(helpers);
    for (int h = 0; h < helpers; ++h) {
      // Helpers capture the local pipeline state by reference; the final
      // wait below does not return until every helper task has finished,
      // so nothing of this frame escapes the call.
      pool.Run([&] {
        claim_units(/*deliver=*/false);
        // Notify under the lock (see claim_units): after the caller sees
        // helpers_left == 0 this frame — cv included — may be gone.
        std::lock_guard<std::mutex> lock(mu);
        --helpers_left;
        cv.notify_all();
      });
    }
  }

  claim_units(/*deliver=*/true);  // the caller is always worker 0
  for (;;) {
    deliver_ready();
    std::unique_lock<std::mutex> lock(mu);
    if (delivered == n && helpers_left == 0) break;
    cv.wait(lock, [&] {
      return helpers_left == 0 ||
             (delivered < n && done[rep[delivered]]);
    });
  }

  stats.instance_groups = repository.NumGroups();
  stats.instance_builds = repository.NumBuilds() - builds_before;
  stats.snapshot_hits = repository.NumSnapshotHits() - snapshot_hits_before;
  stats.snapshot_stores =
      repository.NumSnapshotStores() - snapshot_stores_before;
  if (options.store != nullptr) {
    store::WarmStore::Stats store_now = options.store->stats();
    stats.store_retries = store_now.io_retries - store_before.io_retries;
    stats.store_write_failures =
        store_now.write_failures - store_before.write_failures;
    stats.store_degradations =
        store_now.degradations() - store_before.degradations();
  }
  for (const PlanResponse& response : responses) {
    if (response.status.code() == StatusCode::kDeadlineExceeded) {
      ++stats.deadline_exceeded;
    }
  }
  if (options.stats) *options.stats = stats;
  return responses;
}

std::vector<PlanResponse> PlanService::RunBatch(
    std::span<const PlanRequest> requests, int max_workers) const {
  BatchOptions options;
  options.max_workers = max_workers;
  return RunPipeline(requests, options, nullptr);
}

std::vector<PlanResponse> PlanService::RunBatch(
    std::span<const PlanRequest> requests,
    const BatchOptions& options) const {
  return RunPipeline(requests, options, nullptr);
}

void PlanService::RunBatch(std::span<const PlanRequest> requests,
                           const BatchOptions& options,
                           const ResponseSink& sink) const {
  RunPipeline(requests, options, &sink);
}

Result<EditSummary> PlanService::ApplyEdit(const graph::GraphDelta& delta,
                                           PlanCache* cache,
                                           InstanceRepository* repository) {
  // Serving-state guard: an edit that lands while a batch is solving
  // would mutate the base graph under live readers. Refuse up front —
  // nothing has changed when this returns — and let the caller sequence
  // at its own drain point (the plan server's epoch barrier does exactly
  // that). The check is advisory-atomic, not a lock: RunBatch entered
  // after the check races as before, but the documented contract already
  // forbids that interleaving; the guard catches the accidental case.
  if (active_runs_.load(std::memory_order_acquire) != 0) {
    return Status::FailedPrecondition(
        "ApplyEdit while a RunBatch/RunOne is in flight; drain the batch "
        "before editing");
  }
  EditSummary summary;
  summary.old_fingerprint = fingerprint_;
  summary.inserted = delta.inserted.size();
  summary.removed = delta.removed.size();
  // Affected node set on the PRE-edit graph: every endpoint of an edited
  // edge plus its neighbors. Every motif instance the edit creates or
  // destroys anchors a target endpoint in this set (the delta-
  // neighborhood rule; see motif/index_repair.cc), so cached plans whose
  // targets avoid it survive the edit byte-identically. Computed before
  // the delta lands because removal-killed instances anchor in PRE-edit
  // neighborhoods; inserted edges only ADD the opposite endpoint to a
  // neighborhood, and both endpoints are in the set anyway.
  std::vector<graph::NodeId> affected;
  auto absorb = [&](const Edge& e) {
    affected.push_back(e.u);
    affected.push_back(e.v);
    if (e.u < base_.NumNodes()) {
      for (graph::NodeId w : base_.Neighbors(e.u)) affected.push_back(w);
    }
    if (e.v < base_.NumNodes()) {
      for (graph::NodeId w : base_.Neighbors(e.v)) affected.push_back(w);
    }
  };
  for (const Edge& e : delta.inserted) absorb(e);
  for (const Edge& e : delta.removed) absorb(e);
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());

  TPP_RETURN_IF_ERROR(base_.ApplyDelta(delta));
  fingerprint_ =
      graph::UpdateFingerprint(fingerprint_, delta.inserted, delta.removed);
  summary.new_fingerprint = fingerprint_;
  if (cache != nullptr) {
    PlanCache::EditOutcome outcome = cache->InvalidateForEdit(
        summary.old_fingerprint, summary.new_fingerprint, affected);
    summary.cache_rekeyed = outcome.rekeyed;
    summary.cache_invalidated = outcome.invalidated;
  }
  if (repository != nullptr) {
    const size_t repairs_before = repository->NumEditRepairs();
    const size_t resets_before = repository->NumEditResets();
    repository->ApplyEdit(delta, fingerprint_);
    summary.groups_repaired = repository->NumEditRepairs() - repairs_before;
    summary.groups_reset = repository->NumEditResets() - resets_before;
  }
  return summary;
}

Result<std::vector<Edge>> ParseLinkList(std::string_view value) {
  std::vector<Edge> links;
  std::unordered_set<graph::EdgeKey> seen;
  for (std::string_view pair : SplitNonEmpty(value, ";")) {
    // Exactly one '-' with a non-empty id on each side; a lenient split
    // would silently accept "-1-2" or "1--2" as "1-2".
    size_t dash = pair.find('-');
    if (dash == 0 || dash == std::string_view::npos ||
        dash + 1 == pair.size() ||
        pair.find('-', dash + 1) != std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("link '%s' is not of the form u-v",
                    std::string(pair).c_str()));
    }
    // The strict split above means neither operand can carry a sign, so
    // the parsed values are non-negative by construction.
    TPP_ASSIGN_OR_RETURN(int64_t u, ParseInt64(pair.substr(0, dash)));
    TPP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(pair.substr(dash + 1)));
    constexpr int64_t kMaxNodeId = std::numeric_limits<graph::NodeId>::max();
    if (u > kMaxNodeId || v > kMaxNodeId) {
      return Status::InvalidArgument(
          StrFormat("node id out of range in '%s'",
                    std::string(pair).c_str()));
    }
    if (u == v) {
      return Status::InvalidArgument(
          StrFormat("link '%s' is a self-loop", std::string(pair).c_str()));
    }
    Edge link(static_cast<graph::NodeId>(u), static_cast<graph::NodeId>(v));
    if (!seen.insert(link.Key()).second) {
      return Status::InvalidArgument(
          StrFormat("duplicate link '%s'", std::string(pair).c_str()));
    }
    links.push_back(link);
  }
  return links;
}

Result<PlanRequest> ParsePlanRequestLine(std::string_view text, size_t line,
                                         size_t index) {
  PlanRequest request;
  request.name = StrFormat("r%zu", index);
  for (std::string_view token : SplitNonEmpty(text, " \t")) {
    size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("line %zu: token '%s' is not key=value", line,
                    std::string(token).c_str()));
    }
    std::string_view key = token.substr(0, eq);
    std::string_view value = token.substr(eq + 1);
    if (key == "name") {
      // Names become `<plan-dir>/<name>.plan` paths; restrict them so a
      // request file cannot write outside the plan directory.
      for (char c : value) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok) {
          return Status::InvalidArgument(StrFormat(
              "line %zu: name '%s' has characters outside [A-Za-z0-9._-]",
              line, std::string(value).c_str()));
        }
      }
      if (value == "." || value == "..") {
        return Status::InvalidArgument(
            StrFormat("line %zu: name '%s' is reserved", line,
                      std::string(value).c_str()));
      }
      request.name = std::string(value);
    } else if (key == "algorithm") {
      request.spec.algorithm = std::string(value);
    } else if (key == "motif") {
      TPP_ASSIGN_OR_RETURN(request.motif, motif::ParseMotifKind(value));
    } else if (key == "sample") {
      TPP_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value));
      request.sample = static_cast<size_t>(n);
    } else if (key == "links") {
      Result<std::vector<Edge>> links = ParseLinkList(value);
      if (!links.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %zu: %s", line,
                      links.status().ToString().c_str()));
      }
      request.targets = std::move(*links);
    } else if (key == "seed") {
      TPP_ASSIGN_OR_RETURN(int64_t seed, ParseInt64(value));
      request.seed = static_cast<uint64_t>(seed);
    } else if (key == "budget") {
      if (value == "full") {
        request.spec.budget = SolverSpec::kFullProtection;
      } else {
        TPP_ASSIGN_OR_RETURN(int64_t budget, ParseInt64(value));
        request.spec.budget = core::BudgetFromFlag(budget);
      }
    } else if (key == "scope") {
      Result<core::CandidateScope> scope = core::ParseCandidateScope(value);
      if (!scope.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %zu: %s", line,
                      scope.status().ToString().c_str()));
      }
      request.spec.scope = *scope;
    } else if (key == "lazy") {
      request.spec.lazy = value == "1" || value == "true";
    } else if (key == "rounds") {
      // Wall-clock knob only: every round mode is bit-identical in
      // output, so the plan-cache fingerprint ignores it (requests
      // differing only here share a cache entry, correctly).
      Result<core::RoundMode> rounds = core::ParseRoundMode(value);
      if (!rounds.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %zu: %s", line,
                      rounds.status().ToString().c_str()));
      }
      request.spec.rounds = *rounds;
    } else if (key == "celf") {
      Result<core::CelfMode> celf = core::ParseCelfMode(value);
      if (!celf.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %zu: %s", line,
                      celf.status().ToString().c_str()));
      }
      request.spec.celf = *celf;
    } else if (key == "deadline_ms") {
      // Wall-clock knob like rounds=: excluded from the cache key (a
      // deadline changes whether a run finishes, not what it produces).
      TPP_ASSIGN_OR_RETURN(int64_t deadline, ParseInt64(value));
      request.deadline_ms = deadline;
    } else if (key == "released") {
      // Carrying the released graph costs O(graph) memory per response;
      // batches opt in per request.
      request.want_released = value == "1" || value == "true";
    } else {
      return Status::InvalidArgument(
          StrFormat("line %zu: unknown key '%s'", line,
                    std::string(key).c_str()));
    }
  }
  // Validate the whole spec early: a typo'd solver name or an
  // unsupported flag combination should fail at parse time, not
  // mid-batch.
  Status valid = core::ValidateSolverSpec(request.spec);
  if (!valid.ok()) {
    return Status::InvalidArgument(
        StrFormat("line %zu: %s", line, valid.ToString().c_str()));
  }
  return request;
}

Result<std::vector<PlanRequest>> ParsePlanRequests(std::istream& stream) {
  std::vector<PlanRequest> requests;
  size_t line_number = 0;
  std::string line;
  while (std::getline(stream, line)) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    TPP_ASSIGN_OR_RETURN(
        PlanRequest request,
        ParsePlanRequestLine(stripped, line_number, requests.size()));
    requests.push_back(std::move(request));
  }
  return requests;
}

Result<std::vector<PlanRequest>> ParsePlanRequests(const std::string& text) {
  std::istringstream stream(text);
  return ParsePlanRequests(stream);
}

Result<std::vector<PlanRequest>> LoadPlanRequests(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  return ParsePlanRequests(f);
}

Result<graph::GraphDelta> ParseEditLine(std::string_view text, size_t line) {
  graph::GraphDelta delta;
  bool first = true;
  for (std::string_view token : SplitNonEmpty(text, " \t")) {
    if (first) {
      first = false;
      if (token != "edit") {
        return Status::InvalidArgument(
            StrFormat("line %zu: not an edit directive", line));
      }
      continue;
    }
    size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("line %zu: token '%s' is not key=value", line,
                    std::string(token).c_str()));
    }
    std::string_view key = token.substr(0, eq);
    std::string_view value = token.substr(eq + 1);
    std::vector<Edge>* out = nullptr;
    if (key == "insert") {
      out = &delta.inserted;
    } else if (key == "remove") {
      out = &delta.removed;
    } else {
      return Status::InvalidArgument(
          StrFormat("line %zu: unknown edit key '%s'", line,
                    std::string(key).c_str()));
    }
    if (!out->empty()) {
      return Status::InvalidArgument(
          StrFormat("line %zu: duplicate '%s=' token", line,
                    std::string(key).c_str()));
    }
    Result<std::vector<Edge>> edges = ParseLinkList(value);
    if (!edges.ok()) {
      return Status::InvalidArgument(StrFormat(
          "line %zu: %s", line, edges.status().ToString().c_str()));
    }
    *out = std::move(*edges);
  }
  if (delta.empty()) {
    return Status::InvalidArgument(StrFormat(
        "line %zu: edit needs at least one of insert=/remove=", line));
  }
  // Normalize to the GraphDelta contract: canonical endpoints, each list
  // key-sorted (ParseLinkList already rejected within-list duplicates),
  // lists disjoint.
  auto canonicalize = [](std::vector<Edge>* edges) {
    for (Edge& e : *edges) {
      if (e.u > e.v) std::swap(e.u, e.v);
    }
    std::sort(edges->begin(), edges->end(),
              [](const Edge& a, const Edge& b) { return a.Key() < b.Key(); });
  };
  canonicalize(&delta.inserted);
  canonicalize(&delta.removed);
  for (const Edge& e : delta.inserted) {
    if (std::binary_search(delta.removed.begin(), delta.removed.end(), e,
                           [](const Edge& a, const Edge& b) {
                             return a.Key() < b.Key();
                           })) {
      return Status::InvalidArgument(
          StrFormat("line %zu: edge %u-%u both inserted and removed", line,
                    e.u, e.v));
    }
  }
  return delta;
}

Result<std::vector<PlanScriptStep>> ParsePlanScript(std::istream& stream) {
  std::vector<PlanScriptStep> steps;
  PlanScriptStep current;
  size_t line_number = 0;
  size_t request_index = 0;
  std::string line;
  while (std::getline(stream, line)) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    if (stripped == "edit" || stripped.rfind("edit ", 0) == 0 ||
        stripped.rfind("edit\t", 0) == 0) {
      TPP_ASSIGN_OR_RETURN(current.edit, ParseEditLine(stripped, line_number));
      steps.push_back(std::move(current));
      current = PlanScriptStep{};
      continue;
    }
    TPP_ASSIGN_OR_RETURN(
        PlanRequest request,
        ParsePlanRequestLine(stripped, line_number, request_index));
    ++request_index;
    current.requests.push_back(std::move(request));
  }
  // A trailing edit line already pushed its step; only keep the tail step
  // when it holds requests (or the script is empty — one empty step).
  if (!current.requests.empty() || steps.empty()) {
    steps.push_back(std::move(current));
  }
  return steps;
}

Result<std::vector<PlanScriptStep>> ParsePlanScript(const std::string& text) {
  std::istringstream stream(text);
  return ParsePlanScript(stream);
}

Result<std::vector<PlanScriptStep>> LoadPlanScript(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  return ParsePlanScript(f);
}

}  // namespace tpp::service
