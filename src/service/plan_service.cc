#include "service/plan_service.h"

#include <fstream>
#include <sstream>

#include "common/flags.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/indexed_engine.h"

namespace tpp::service {

using core::IndexedEngine;
using core::SolverSpec;
using core::TppInstance;
using graph::Edge;

Rng RequestRng(uint64_t seed) { return Rng(SplitMix64(seed)); }

PlanResponse PlanService::RunOne(const PlanRequest& request) const {
  WallTimer timer;
  PlanResponse response;
  // Everything below depends only on the base graph and the request, so
  // concurrent execution order cannot change any response.
  Rng rng = RequestRng(request.seed);
  if (request.targets.empty()) {
    Result<std::vector<Edge>> sampled =
        core::SampleTargets(base_, request.sample, rng);
    if (!sampled.ok()) {
      response.status = sampled.status();
      return response;
    }
    response.targets = std::move(*sampled);
  } else {
    response.targets = request.targets;
  }
  Result<TppInstance> instance =
      core::MakeInstance(base_, response.targets, request.motif);
  if (!instance.ok()) {
    response.status = instance.status();
    return response;
  }
  Result<IndexedEngine> engine = IndexedEngine::Create(*instance);
  if (!engine.ok()) {
    response.status = engine.status();
    return response;
  }
  Result<core::ProtectionResult> result =
      core::RunSolver(request.spec, *engine, *instance, rng);
  if (!result.ok()) {
    response.status = result.status();
    return response;
  }
  response.result = std::move(*result);
  response.plan_text = core::SerializeDeletionPlan(*instance,
                                                   response.result);
  response.released = engine->CurrentGraph();
  response.seconds = timer.Seconds();
  return response;
}

std::vector<PlanResponse> PlanService::RunBatch(
    std::span<const PlanRequest> requests, int max_workers) const {
  std::vector<PlanResponse> responses(requests.size());
  if (max_workers <= 0) max_workers = GlobalThreadCount();
  // One request per chunk: requests are coarse units, and dynamic chunk
  // claiming already balances uneven solver costs across workers.
  GlobalThreadPool().ParallelFor(
      requests.size(), max_workers, /*grain=*/1,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          responses[i] = RunOne(requests[i]);
        }
      });
  return responses;
}

Result<std::vector<Edge>> ParseLinkList(std::string_view value) {
  std::vector<Edge> links;
  for (std::string_view pair : SplitNonEmpty(value, ";")) {
    std::vector<std::string_view> ends = SplitNonEmpty(pair, "-");
    if (ends.size() != 2) {
      return Status::InvalidArgument(
          StrFormat("link '%s' is not of the form u-v",
                    std::string(pair).c_str()));
    }
    TPP_ASSIGN_OR_RETURN(int64_t u, ParseInt64(ends[0]));
    TPP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(ends[1]));
    if (u < 0 || v < 0) {
      return Status::InvalidArgument(
          StrFormat("negative node id in '%s'",
                    std::string(pair).c_str()));
    }
    links.emplace_back(static_cast<graph::NodeId>(u),
                       static_cast<graph::NodeId>(v));
  }
  return links;
}

namespace {

Result<PlanRequest> ParseRequestLine(std::string_view text, size_t line,
                                     size_t index) {
  PlanRequest request;
  request.name = StrFormat("r%zu", index);
  for (std::string_view token : SplitNonEmpty(text, " \t")) {
    size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("line %zu: token '%s' is not key=value", line,
                    std::string(token).c_str()));
    }
    std::string_view key = token.substr(0, eq);
    std::string_view value = token.substr(eq + 1);
    if (key == "name") {
      // Names become `<plan-dir>/<name>.plan` paths; restrict them so a
      // request file cannot write outside the plan directory.
      for (char c : value) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok) {
          return Status::InvalidArgument(StrFormat(
              "line %zu: name '%s' has characters outside [A-Za-z0-9._-]",
              line, std::string(value).c_str()));
        }
      }
      if (value == "." || value == "..") {
        return Status::InvalidArgument(
            StrFormat("line %zu: name '%s' is reserved", line,
                      std::string(value).c_str()));
      }
      request.name = std::string(value);
    } else if (key == "algorithm") {
      request.spec.algorithm = std::string(value);
    } else if (key == "motif") {
      TPP_ASSIGN_OR_RETURN(request.motif, motif::ParseMotifKind(value));
    } else if (key == "sample") {
      TPP_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value));
      request.sample = static_cast<size_t>(n);
    } else if (key == "links") {
      Result<std::vector<Edge>> links = ParseLinkList(value);
      if (!links.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %zu: %s", line,
                      links.status().ToString().c_str()));
      }
      request.targets = std::move(*links);
    } else if (key == "seed") {
      TPP_ASSIGN_OR_RETURN(int64_t seed, ParseInt64(value));
      request.seed = static_cast<uint64_t>(seed);
    } else if (key == "budget") {
      if (value == "full") {
        request.spec.budget = SolverSpec::kFullProtection;
      } else {
        TPP_ASSIGN_OR_RETURN(int64_t budget, ParseInt64(value));
        request.spec.budget = core::BudgetFromFlag(budget);
      }
    } else if (key == "scope") {
      Result<core::CandidateScope> scope = core::ParseCandidateScope(value);
      if (!scope.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %zu: %s", line,
                      scope.status().ToString().c_str()));
      }
      request.spec.scope = *scope;
    } else if (key == "lazy") {
      request.spec.lazy = value == "1" || value == "true";
    } else {
      return Status::InvalidArgument(
          StrFormat("line %zu: unknown key '%s'", line,
                    std::string(key).c_str()));
    }
  }
  // Validate the whole spec early: a typo'd solver name or an
  // unsupported flag combination should fail at parse time, not
  // mid-batch.
  Status valid = core::ValidateSolverSpec(request.spec);
  if (!valid.ok()) {
    return Status::InvalidArgument(
        StrFormat("line %zu: %s", line, valid.ToString().c_str()));
  }
  return request;
}

}  // namespace

Result<std::vector<PlanRequest>> ParsePlanRequests(const std::string& text) {
  std::vector<PlanRequest> requests;
  size_t line_number = 0;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    TPP_ASSIGN_OR_RETURN(
        PlanRequest request,
        ParseRequestLine(stripped, line_number, requests.size()));
    requests.push_back(std::move(request));
  }
  return requests;
}

Result<std::vector<PlanRequest>> LoadPlanRequests(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParsePlanRequests(buf.str());
}

}  // namespace tpp::service
