#include "service/plan_cache.h"

#include "common/strings.h"
#include "service/store/plan_codec.h"
#include "service/store/warm_store.h"

namespace tpp::service {

std::string CanonicalRequestKey(uint64_t base_fingerprint,
                                const PlanRequest& request) {
  std::string key = StrFormat(
      "tpp-plan-v1|fp=%016llx|motif=%s|alg=%s|scope=%d|lazy=%d|seed=%llu|"
      "rel=%d|",
      static_cast<unsigned long long>(base_fingerprint),
      std::string(motif::MotifName(request.motif)).c_str(),
      request.spec.algorithm.c_str(), static_cast<int>(request.spec.scope),
      request.spec.lazy ? 1 : 0,
      static_cast<unsigned long long>(request.seed),
      request.want_released ? 1 : 0);
  if (request.spec.budget == core::SolverSpec::kFullProtection) {
    key += "budget=full|";
  } else {
    key += StrFormat("budget=%llu|",
                     static_cast<unsigned long long>(request.spec.budget));
  }
  if (request.targets.empty()) {
    key += StrFormat("sample=%llu",
                     static_cast<unsigned long long>(request.sample));
  } else {
    // Endpoint order is preserved: targets are carried through to plan
    // serialization as written, so (2,1) and (1,2) are distinct payloads.
    key += "links=";
    for (const graph::Edge& e : request.targets) {
      key += StrFormat("%u-%u;", e.u, e.v);
    }
  }
  return key;
}

bool PlanCache::Lookup(const std::string& key, PlanResponse* out) {
  Entry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      entry = it->second->second;
    }
  }
  if (entry != nullptr) {
    // The deep copy (possibly a whole released graph) runs unlocked; the
    // shared_ptr keeps the payload alive past any concurrent eviction.
    *out = *entry;
    return true;
  }
  // Memory miss: probe the persistent tier. A disk record that fails its
  // checksum or decode is a miss — the pipeline re-solves and the fresh
  // OK response overwrites the bad record via write-through.
  if (backing_ != nullptr) {
    std::string payload;
    if (backing_->LoadPlan(key, &payload)) {
      Result<PlanResponse> decoded = store::DecodePlanResponse(payload);
      if (decoded.ok()) {
        entry = std::make_shared<const PlanResponse>(std::move(*decoded));
        Entry evicted;  // destroyed outside the lock
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++backing_hits_;
          InsertInMemory(key, entry, &evicted);
        }
        *out = *entry;
        return true;
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  return false;
}

void PlanCache::InsertInMemory(const std::string& key, Entry entry,
                               Entry* evicted) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    *evicted = std::exchange(it->second->second, std::move(entry));
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  if (capacity_ > 0 && lru_.size() > capacity_) {
    *evicted = std::move(lru_.back().second);
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

void PlanCache::Insert(const std::string& key, PlanResponse response) {
  const bool ok_response = response.status.ok();
  if (!ok_response && !cache_failures_) return;  // never memoize failures
  Entry entry = std::make_shared<const PlanResponse>(std::move(response));
  Entry evicted;  // destroyed outside the lock
  {
    std::lock_guard<std::mutex> lock(mu_);
    InsertInMemory(key, entry, &evicted);
  }
  // Write-through happens outside the lock (encode + append are the slow
  // half); failures are never persisted regardless of cache_failures_ —
  // a transient error must not outlive the process that saw it.
  if (backing_ != nullptr && ok_response) {
    (void)backing_->AppendPlan(key, store::EncodePlanResponse(*entry));
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.backing_hits = backing_hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  index_.clear();
  lru_.clear();
}

}  // namespace tpp::service
