#include "service/plan_cache.h"

#include "common/strings.h"

namespace tpp::service {

std::string CanonicalRequestKey(uint64_t base_fingerprint,
                                const PlanRequest& request) {
  std::string key = StrFormat(
      "tpp-plan-v1|fp=%016llx|motif=%s|alg=%s|scope=%d|lazy=%d|seed=%llu|"
      "rel=%d|",
      static_cast<unsigned long long>(base_fingerprint),
      std::string(motif::MotifName(request.motif)).c_str(),
      request.spec.algorithm.c_str(), static_cast<int>(request.spec.scope),
      request.spec.lazy ? 1 : 0,
      static_cast<unsigned long long>(request.seed),
      request.want_released ? 1 : 0);
  if (request.spec.budget == core::SolverSpec::kFullProtection) {
    key += "budget=full|";
  } else {
    key += StrFormat("budget=%llu|",
                     static_cast<unsigned long long>(request.spec.budget));
  }
  if (request.targets.empty()) {
    key += StrFormat("sample=%llu",
                     static_cast<unsigned long long>(request.sample));
  } else {
    // Endpoint order is preserved: targets are carried through to plan
    // serialization as written, so (2,1) and (1,2) are distinct payloads.
    key += "links=";
    for (const graph::Edge& e : request.targets) {
      key += StrFormat("%u-%u;", e.u, e.v);
    }
  }
  return key;
}

bool PlanCache::Lookup(const std::string& key, PlanResponse* out) {
  Entry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    entry = it->second->second;
  }
  // The deep copy (possibly a whole released graph) runs unlocked; the
  // shared_ptr keeps the payload alive past any concurrent eviction.
  *out = *entry;
  return true;
}

void PlanCache::Insert(const std::string& key, PlanResponse response) {
  Entry entry = std::make_shared<const PlanResponse>(std::move(response));
  Entry evicted;  // destroyed outside the lock
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    evicted = std::exchange(it->second->second, std::move(entry));
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  if (capacity_ > 0 && lru_.size() > capacity_) {
    evicted = std::move(lru_.back().second);
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  index_.clear();
  lru_.clear();
}

}  // namespace tpp::service
