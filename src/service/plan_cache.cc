#include "service/plan_cache.h"

#include <algorithm>
#include <vector>

#include "common/strings.h"
#include "core/engine_scope.h"
#include "service/store/plan_codec.h"
#include "service/store/warm_store.h"

namespace tpp::service {

namespace {

// The fingerprint field occupies a fixed-width slot right after the
// format tag, so rekeying a surviving entry is a constant-position
// splice. Kept in lockstep with CanonicalRequestKey below.
constexpr std::string_view kKeyTag = "tpp-plan-v1|fp=";
constexpr size_t kFingerprintHexDigits = 16;

// Extracts the value of `field` ("|alg=", ...) from a canonical key:
// everything up to the next '|' (or end of key). Empty view if absent.
std::string_view KeyField(std::string_view key, std::string_view field) {
  size_t pos = key.find(field);
  if (pos == std::string_view::npos) return {};
  pos += field.size();
  size_t end = key.find('|', pos);
  if (end == std::string_view::npos) end = key.size();
  return key.substr(pos, end - pos);
}

// The survival conditions of InvalidateForEdit (see plan_cache.h),
// evaluated on the canonical key alone — the key embeds every field the
// decision needs, so no request object has to be reconstructed.
bool SurvivesEdit(std::string_view key,
                  std::span<const graph::NodeId> affected) {
  // Deterministic, motif-local algorithms only: their plans are a pure
  // function of the targets' instance sets.
  std::string_view alg = KeyField(key, "|alg=");
  if (alg != "sgb" && alg != "ct-tbd" && alg != "ct-dbd" &&
      alg != "wt-tbd" && alg != "wt-dbd") {
    return false;
  }
  constexpr int kRestricted =
      static_cast<int>(core::CandidateScope::kTargetSubgraphEdges);
  if (KeyField(key, "|scope=") != StrFormat("%d", kRestricted)) return false;
  if (KeyField(key, "|rel=") != "0") return false;
  std::string_view links = KeyField(key, "|links=");
  if (links.empty()) return false;  // sampled targets, or malformed
  // Every endpoint must sit outside the edit's affected neighborhood.
  for (std::string_view pair : SplitNonEmpty(links, ";")) {
    size_t dash = pair.find('-');
    if (dash == std::string_view::npos) return false;
    Result<int64_t> u = ParseInt64(pair.substr(0, dash));
    Result<int64_t> v = ParseInt64(pair.substr(dash + 1));
    if (!u.ok() || !v.ok()) return false;
    if (std::binary_search(affected.begin(), affected.end(),
                           static_cast<graph::NodeId>(*u)) ||
        std::binary_search(affected.begin(), affected.end(),
                           static_cast<graph::NodeId>(*v))) {
      return false;
    }
  }
  return true;
}

// Whether a failed response's status depends on when (not what) was
// asked: a deadline that expired, a cancellation, or a transient store
// hiccup. Memoizing these — even with cache_failures on — would poison
// the cache: the same request retried with a fresh deadline would be
// served the stale failure instead of being solved.
bool IsTimingDependent(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kAborted:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string CanonicalRequestKey(uint64_t base_fingerprint,
                                const PlanRequest& request) {
  std::string key = StrFormat(
      "tpp-plan-v1|fp=%016llx|motif=%s|alg=%s|scope=%d|lazy=%d|seed=%llu|"
      "rel=%d|",
      static_cast<unsigned long long>(base_fingerprint),
      std::string(motif::MotifName(request.motif)).c_str(),
      request.spec.algorithm.c_str(), static_cast<int>(request.spec.scope),
      request.spec.lazy ? 1 : 0,
      static_cast<unsigned long long>(request.seed),
      request.want_released ? 1 : 0);
  if (request.spec.budget == core::SolverSpec::kFullProtection) {
    key += "budget=full|";
  } else {
    key += StrFormat("budget=%llu|",
                     static_cast<unsigned long long>(request.spec.budget));
  }
  if (request.targets.empty()) {
    key += StrFormat("sample=%llu",
                     static_cast<unsigned long long>(request.sample));
  } else {
    // Endpoint order is preserved: targets are carried through to plan
    // serialization as written, so (2,1) and (1,2) are distinct payloads.
    key += "links=";
    for (const graph::Edge& e : request.targets) {
      key += StrFormat("%u-%u;", e.u, e.v);
    }
  }
  return key;
}

bool PlanCache::Lookup(const std::string& key, PlanResponse* out) {
  Entry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      entry = it->second->second;
    }
  }
  if (entry != nullptr) {
    // The deep copy (possibly a whole released graph) runs unlocked; the
    // shared_ptr keeps the payload alive past any concurrent eviction.
    *out = *entry;
    return true;
  }
  // Memory miss: probe the persistent tier. A disk record that fails its
  // checksum or decode is a miss — the pipeline re-solves and the fresh
  // OK response overwrites the bad record via write-through.
  if (backing_ != nullptr) {
    std::string payload;
    if (backing_->LoadPlan(key, &payload)) {
      Result<PlanResponse> decoded = store::DecodePlanResponse(payload);
      if (decoded.ok()) {
        entry = std::make_shared<const PlanResponse>(std::move(*decoded));
        Entry evicted;  // destroyed outside the lock
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++backing_hits_;
          InsertInMemory(key, entry, &evicted);
        }
        *out = *entry;
        return true;
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  return false;
}

void PlanCache::InsertInMemory(const std::string& key, Entry entry,
                               Entry* evicted) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    *evicted = std::exchange(it->second->second, std::move(entry));
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  if (capacity_ > 0 && lru_.size() > capacity_) {
    *evicted = std::move(lru_.back().second);
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

void PlanCache::Insert(const std::string& key, PlanResponse response) {
  const bool ok_response = response.status.ok();
  if (!ok_response &&
      (!cache_failures_ || IsTimingDependent(response.status))) {
    return;  // never memoize (timing-dependent) failures
  }
  Entry entry = std::make_shared<const PlanResponse>(std::move(response));
  Entry evicted;  // destroyed outside the lock
  {
    std::lock_guard<std::mutex> lock(mu_);
    InsertInMemory(key, entry, &evicted);
  }
  // Write-through happens outside the lock (encode + append are the slow
  // half); failures are never persisted regardless of cache_failures_ —
  // a transient error must not outlive the process that saw it.
  if (backing_ != nullptr && ok_response) {
    Status appended = backing_->AppendPlan(key, store::EncodePlanResponse(*entry));
    if (!appended.ok()) {
      backing_write_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

PlanCache::EditOutcome PlanCache::InvalidateForEdit(
    uint64_t old_fingerprint, uint64_t new_fingerprint,
    std::span<const graph::NodeId> affected) {
  const std::string old_prefix =
      StrFormat("%s%016llx|", std::string(kKeyTag).c_str(),
                static_cast<unsigned long long>(old_fingerprint));
  const std::string new_hex = StrFormat(
      "%016llx", static_cast<unsigned long long>(new_fingerprint));
  EditOutcome outcome;
  // Survivors are re-persisted under their new key so the backing store
  // serves them across restarts too; dropped payloads (possibly large)
  // are destroyed outside the lock.
  std::vector<std::pair<std::string, Entry>> write_through;
  std::vector<Entry> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->first.compare(0, old_prefix.size(), old_prefix) != 0) {
        ++it;  // a different graph's entry; not this edit's concern
        continue;
      }
      index_.erase(it->first);
      if (SurvivesEdit(it->first, affected)) {
        // Rekey in place: same node, same LRU position, new fingerprint.
        it->first.replace(kKeyTag.size(), kFingerprintHexDigits, new_hex);
        index_[it->first] = it;
        ++outcome.rekeyed;
        if (backing_ != nullptr && it->second->status.ok()) {
          write_through.emplace_back(it->first, it->second);
        }
        ++it;
      } else {
        dropped.push_back(std::move(it->second));
        it = lru_.erase(it);
        ++outcome.invalidated;
      }
    }
    invalidated_by_edit_ += outcome.invalidated;
    rekeyed_by_edit_ += outcome.rekeyed;
  }
  for (const auto& [key, entry] : write_through) {
    Status appended = backing_->AppendPlan(key, store::EncodePlanResponse(*entry));
    if (!appended.ok()) {
      backing_write_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return outcome;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.backing_hits = backing_hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.invalidated_by_edit = invalidated_by_edit_;
  s.rekeyed_by_edit = rekeyed_by_edit_;
  s.backing_write_failures =
      backing_write_failures_.load(std::memory_order_relaxed);
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  index_.clear();
  lru_.clear();
}

}  // namespace tpp::service
