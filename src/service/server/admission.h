// Bounded admission control for the plan server.
//
// Overload policy (docs/ROBUSTNESS.md, "overload ladder"): work the
// server cannot finish in bounded time must be refused AT THE DOOR, with
// a retryable status, rather than queued into an ever-growing backlog
// that times every request out. The queue enforces four admission rules
// — global depth, queued payload bytes, per-client in-flight, and the
// deadline-hopeless rule (a deadline-tagged request whose deadline will
// lapse before the backlog drains is shed IMMEDIATELY, when the client
// can still retry elsewhere, not after burning queue time) — and serves
// admitted work round-robin across clients so one firehose connection
// cannot starve trickle clients.
//
// Thread model: one mutex guards everything. The IO thread calls Offer /
// DropClient; the solve loop calls TakeRoundRobin. Both are O(clients)
// worst case and never block on solving.

#ifndef TPP_SERVICE_SERVER_ADMISSION_H_
#define TPP_SERVICE_SERVER_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace tpp::service::server {

struct AdmissionOptions {
  /// Global cap on queued (admitted, not yet picked up) requests. The
  /// high-water mark of the ladder: past it every Offer sheds.
  size_t max_queue_depth = 256;
  /// Cap on the sum of queued request-line bytes; a second gate so a few
  /// enormous scripts cannot monopolize memory under the depth cap.
  size_t max_queued_bytes = 4u << 20;
  /// Per-client cap on queued + in-flight requests. 0: unlimited.
  size_t max_per_client = 64;
  /// Planning estimate of one request's service time, used only by the
  /// deadline-hopeless rule and the retry-after hint. Deliberately
  /// coarse: the rule sheds requests that are hopeless by an order of
  /// magnitude, not a close call.
  uint64_t est_request_ms = 50;
};

enum class ShedReason : uint8_t {
  kQueueFull = 0,
  kQueuedBytes = 1,
  kClientCap = 2,
  kDeadlineHopeless = 3,
  kDraining = 4,
};

/// Wire token for a shed reason (stable; appears in shed lines and
/// counters).
const char* ShedReasonName(ShedReason reason);

/// One admitted request line, queued verbatim; parsing happens at pickup
/// on the solve loop so a malformed line costs the IO thread nothing.
struct QueuedItem {
  uint64_t client = 0;        // session id
  uint64_t sequence = 0;      // admission order, for deterministic tests
  uint64_t epoch = 0;         // admission epoch (edit barrier)
  uint64_t deadline_ms = 0;   // 0: untagged
  size_t request_index = 0;   // request number within the client's stream
  size_t line_number = 0;     // 1-based line number within the stream
  std::string line;           // the raw request line
};

struct AdmissionDecision {
  bool admitted = false;
  ShedReason reason = ShedReason::kQueueFull;  // valid when !admitted
  /// Client-facing hint: milliseconds after which a retry has a chance.
  uint64_t retry_after_ms = 0;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(const AdmissionOptions& options)
      : options_(options) {}

  /// Applies the admission rules to `item` and queues it if they pass.
  /// Sheds unconditionally (reason kDraining) once StopAdmission has
  /// been called or when `draining` is passed (test convenience).
  AdmissionDecision Offer(QueuedItem item, bool draining);

  /// Closes the door: every later Offer sheds with kDraining. Taken
  /// under the queue mutex, so it strictly orders against concurrent
  /// Offers — after StopAdmission returns, the queue depth can only
  /// decrease, which is what lets the drain loop's exit check (drained
  /// when depth reaches 0) stay stable against racing admissions.
  void StopAdmission();

  /// Removes and returns up to `limit` queued items with epoch <= `epoch`
  /// in round-robin order across clients (one item per client per
  /// rotation, oldest first within a client). Items of a LATER epoch stay
  /// queued — they are behind an edit barrier the solve loop has not
  /// crossed yet. Returns an empty vector when nothing <= epoch is
  /// queued.
  std::vector<QueuedItem> TakeRoundRobin(uint64_t epoch, size_t limit);

  /// Marks one previously taken item finished (releases its per-client
  /// in-flight slot).
  void Finish(uint64_t client);

  /// Drops every queued item of a disconnected client and forgets its
  /// in-flight accounting. Returns how many queued items died with it.
  size_t DropClient(uint64_t client);

  /// True when the client has nothing queued and nothing in flight —
  /// every response it will ever get has already been written. Used by
  /// the server to retire half-closed sessions.
  bool ClientIdle(uint64_t client) const;

  /// Queued items of ANY epoch (drain loop: exit when 0 and no edits
  /// pending).
  size_t Depth() const;

  /// Queued items with epoch <= `epoch` (the solve loop's pickup set).
  size_t DepthAtOrBefore(uint64_t epoch) const;

  // Counters (monotonic). Locked reads: the footer reads them after the
  // loops exit, but tests read them while the IO thread still offers.
  uint64_t admitted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return admitted_;
  }
  uint64_t shed(ShedReason reason) const {
    std::lock_guard<std::mutex> lock(mu_);
    return shed_[static_cast<size_t>(reason)];
  }
  uint64_t shed_total() const;
  /// Largest queued + in-flight count any single client reached.
  size_t max_client_load() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_client_load_;
  }
  /// High-water mark of the global queue depth.
  size_t max_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_depth_;
  }

 private:
  struct ClientState {
    std::deque<QueuedItem> queued;
    size_t in_flight = 0;
  };

  size_t LoadLocked(const ClientState& c) const {
    return c.queued.size() + c.in_flight;
  }

  AdmissionOptions options_;
  mutable std::mutex mu_;
  bool stopped_ = false;  // StopAdmission called; every Offer sheds
  std::unordered_map<uint64_t, ClientState> clients_;
  // Round-robin pickup order; a client appears once while it has queued
  // items. Rebuilt lazily as clients drain and refill.
  std::deque<uint64_t> rotation_;
  size_t depth_ = 0;
  size_t queued_bytes_ = 0;
  uint64_t next_sequence_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_[5] = {0, 0, 0, 0, 0};
  size_t max_client_load_ = 0;
  size_t max_depth_ = 0;
};

}  // namespace tpp::service::server

#endif  // TPP_SERVICE_SERVER_ADMISSION_H_
