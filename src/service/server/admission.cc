#include "service/server/admission.h"

#include <algorithm>

namespace tpp::service::server {

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kQueuedBytes:
      return "queued_bytes";
    case ShedReason::kClientCap:
      return "client_cap";
    case ShedReason::kDeadlineHopeless:
      return "deadline_hopeless";
    case ShedReason::kDraining:
      return "draining";
  }
  return "unknown";
}

AdmissionDecision AdmissionQueue::Offer(QueuedItem item, bool draining) {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionDecision decision;
  auto shed = [&](ShedReason reason) {
    decision.admitted = false;
    decision.reason = reason;
    // Hint: time for the current backlog plus one slot to drain at the
    // planning estimate. Deliberately pessimistic so honest clients back
    // off past the overload rather than hammering its trailing edge.
    decision.retry_after_ms =
        options_.est_request_ms * static_cast<uint64_t>(depth_ + 1);
    shed_[static_cast<size_t>(reason)] += 1;
    return decision;
  };
  if (draining || stopped_) return shed(ShedReason::kDraining);
  if (depth_ >= options_.max_queue_depth) {
    return shed(ShedReason::kQueueFull);
  }
  if (queued_bytes_ + item.line.size() > options_.max_queued_bytes) {
    return shed(ShedReason::kQueuedBytes);
  }
  ClientState& client = clients_[item.client];
  if (options_.max_per_client != 0 &&
      LoadLocked(client) >= options_.max_per_client) {
    return shed(ShedReason::kClientCap);
  }
  if (item.deadline_ms != 0) {
    // Deadline-hopeless rule: with `depth_` requests ahead at
    // est_request_ms each, a deadline shorter than the projected wait
    // cannot be met — shed NOW, while the client's own clock still has
    // budget to retry against a less loaded server.
    const uint64_t projected_wait_ms =
        options_.est_request_ms * static_cast<uint64_t>(depth_);
    if (item.deadline_ms <= projected_wait_ms) {
      return shed(ShedReason::kDeadlineHopeless);
    }
  }
  item.sequence = next_sequence_++;
  queued_bytes_ += item.line.size();
  depth_ += 1;
  max_depth_ = std::max(max_depth_, depth_);
  if (client.queued.empty()) rotation_.push_back(item.client);
  client.queued.push_back(std::move(item));
  max_client_load_ = std::max(max_client_load_, LoadLocked(client));
  admitted_ += 1;
  decision.admitted = true;
  return decision;
}

void AdmissionQueue::StopAdmission() {
  std::lock_guard<std::mutex> lock(mu_);
  stopped_ = true;
}

std::vector<QueuedItem> AdmissionQueue::TakeRoundRobin(uint64_t epoch,
                                                       size_t limit) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueuedItem> taken;
  if (limit == 0 || rotation_.empty()) return taken;
  // One pass per rotation slot: pop a client, take its oldest eligible
  // item, requeue the client at the back if it still has queued work.
  // `misses` counts consecutive clients whose head item sits behind a
  // later epoch barrier — a full rotation of misses means nothing else
  // is eligible this epoch.
  size_t misses = 0;
  while (taken.size() < limit && misses < rotation_.size()) {
    const uint64_t id = rotation_.front();
    rotation_.pop_front();
    auto it = clients_.find(id);
    if (it == clients_.end() || it->second.queued.empty()) continue;
    ClientState& client = it->second;
    if (client.queued.front().epoch > epoch) {
      // Behind the barrier: leave queued, rotate past.
      rotation_.push_back(id);
      ++misses;
      continue;
    }
    misses = 0;
    QueuedItem item = std::move(client.queued.front());
    client.queued.pop_front();
    depth_ -= 1;
    queued_bytes_ -= item.line.size();
    client.in_flight += 1;
    if (!client.queued.empty()) rotation_.push_back(id);
    taken.push_back(std::move(item));
  }
  return taken;
}

void AdmissionQueue::Finish(uint64_t client) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clients_.find(client);
  if (it != clients_.end() && it->second.in_flight > 0) {
    it->second.in_flight -= 1;
    // A disconnected client with nothing queued and nothing in flight is
    // fully retired.
    if (it->second.in_flight == 0 && it->second.queued.empty()) {
      clients_.erase(it);
    }
  }
}

size_t AdmissionQueue::DropClient(uint64_t client) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clients_.find(client);
  if (it == clients_.end()) return 0;
  const size_t dropped = it->second.queued.size();
  for (const QueuedItem& item : it->second.queued) {
    depth_ -= 1;
    queued_bytes_ -= item.line.size();
  }
  it->second.queued.clear();
  // In-flight work still finishes (the solve loop holds the item); the
  // client record survives until Finish retires it. The rotation entry,
  // if any, is skipped lazily by TakeRoundRobin.
  if (it->second.in_flight == 0) clients_.erase(it);
  return dropped;
}

bool AdmissionQueue::ClientIdle(uint64_t client) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clients_.find(client);
  return it == clients_.end() ||
         (it->second.queued.empty() && it->second.in_flight == 0);
}

size_t AdmissionQueue::Depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

size_t AdmissionQueue::DepthAtOrBefore(uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [id, client] : clients_) {
    for (const QueuedItem& item : client.queued) {
      if (item.epoch <= epoch) ++count;
    }
  }
  return count;
}

uint64_t AdmissionQueue::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (uint64_t count : shed_) total += count;
  return total;
}

}  // namespace tpp::service::server
