// Newline framing for the plan server's wire protocol.
//
// The server speaks the batch-script grammar (docs/SERVICE.md) one line
// at a time over a byte stream: requests, `edit` directives, and control
// verbs are each one LF-terminated line. Socket reads deliver arbitrary
// chunks — half a line, three lines and a tail, a lone '\n' — so every
// session owns a LineAssembler that buffers the partial tail between
// reads and yields only COMPLETE lines. A client that dies mid-line (or
// a torn read injected via the `net.read` fault site) leaves a partial
// tail that is counted and dropped, never parsed: a torn frame must not
// become a truncated-but-valid request.

#ifndef TPP_SERVICE_SERVER_FRAMING_H_
#define TPP_SERVICE_SERVER_FRAMING_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tpp::service::server {

class LineAssembler {
 public:
  /// `max_line_bytes` bounds the buffered tail: a peer that streams
  /// forever without a newline (malicious or broken) is detected when the
  /// tail crosses the cap, and the session should be closed. 0 disables
  /// the cap.
  explicit LineAssembler(size_t max_line_bytes = 1 << 20)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends one read's worth of bytes and returns every line COMPLETED
  /// by it, newline stripped (a trailing "\r" is stripped too, so
  /// CRLF-framing clients work). The partial tail stays buffered for the
  /// next feed.
  std::vector<std::string> Feed(std::string_view bytes);

  /// True once a fed line exceeded max_line_bytes; latched until Reset.
  /// Feed keeps accepting input but discards the oversized line's bytes.
  bool overflowed() const { return overflowed_; }

  /// Reads and clears the overflow latch (the discard of the oversized
  /// line itself continues to its terminating newline regardless).
  bool TakeOverflow() {
    const bool was = overflowed_;
    overflowed_ = false;
    return was;
  }

  /// Bytes of incomplete line currently buffered. Nonzero at EOF means
  /// the peer died mid-line — the tail is a torn frame, not a request.
  size_t pending_bytes() const { return tail_.size(); }

  /// Drops any buffered tail and clears the overflow latch.
  void Reset() {
    tail_.clear();
    overflowed_ = false;
    discarding_ = false;
  }

 private:
  size_t max_line_bytes_;
  std::string tail_;
  bool overflowed_ = false;
  // While true the current (oversized) line is being thrown away up to
  // its terminating newline; framing resumes on the next line.
  bool discarding_ = false;
};

}  // namespace tpp::service::server

#endif  // TPP_SERVICE_SERVER_FRAMING_H_
