#include "service/server/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/blob_io.h"
#include "common/net_io.h"
#include "common/strings.h"
#include "service/instance_repository.h"
#include "service/plan_cache.h"
#include "service/store/warm_store.h"

#if defined(__unix__) || defined(__APPLE__)
#define TPP_SERVER_POSIX 1
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace tpp::service::server {

namespace {

// Cheap token scan used at ADMISSION time, before the full parse: the
// deadline-hopeless rule and shed replies need deadline_ms= and name=
// without paying ParsePlanRequestLine on the IO thread. The scan accepts
// anything; a malformed value is caught by the real parser at pickup.
std::string_view ScanToken(std::string_view line, std::string_view key) {
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    const size_t end = line.find_first_of(" \t", pos);
    const std::string_view word =
        line.substr(pos, end == std::string_view::npos ? end : end - pos);
    if (word.size() > key.size() && word.substr(0, key.size()) == key) {
      return word.substr(key.size());
    }
    if (end == std::string_view::npos) break;
    pos = end;
  }
  return {};
}

uint64_t ScanDeadlineMs(std::string_view line) {
  const std::string_view value = ScanToken(line, "deadline_ms=");
  uint64_t out = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return 0;  // let the real parser reject it
    out = out * 10 + static_cast<uint64_t>(c - '0');
  }
  return out;
}

}  // namespace

std::string FormatResponseLine(const PlanRequest& request,
                               const PlanResponse& response) {
  if (!response.status.ok()) {
    return StrFormat("%s error %s", request.name.c_str(),
                     response.status.ToString().c_str());
  }
  // The offline stream line minus seconds= and the (cached) marker —
  // wall time and cache state are the two things that legitimately
  // differ across runs — plus the plan-text hash, so "byte-identical"
  // covers the full serialized plan, not just the scoreboard.
  return StrFormat(
      "%s ok solver=%s motif=%s targets=%zu deleted=%zu "
      "similarity=%zu->%zu plan_hash=%016llx",
      request.name.c_str(), request.spec.algorithm.c_str(),
      std::string(motif::MotifName(request.motif)).c_str(),
      response.targets.size(), response.result.protectors.size(),
      response.result.initial_similarity, response.result.final_similarity,
      static_cast<unsigned long long>(
          HashBytes64(response.plan_text.data(), response.plan_text.size())));
}

// One client connection (or the stdio pipe pair). The IO thread owns
// reads and lifecycle; responses are written by the solve loop. write_mu
// serializes the two writers (IO-thread shed/parse replies vs solve-loop
// responses) and guards fd_out teardown, so a write never races a close.
struct PlanServer::Session {
  uint64_t id = 0;
  int fd_in = -1;
  int fd_out = -1;  // == fd_in for sockets; the write end for stdio
  bool is_stdio = false;
  bool owns_fds = true;  // stdio fds belong to the process, not the session
  LineAssembler assembler;
  std::mutex write_mu;
  std::atomic<bool> dead{false};
  // IO-thread-only state, mirroring the offline script parser's
  // counters: line_number counts every received line (comments too),
  // request_index only request lines, so a single-session transcript
  // gets the same default r<N> names as `tpp batch` on the same script.
  size_t line_number = 0;
  size_t request_index = 0;
  bool input_closed = false;
};

PlanServer::PlanServer(PlanService* service, ServerOptions options)
    : service_(service),
      options_(std::move(options)),
      queue_(options_.admission) {}

PlanServer::~PlanServer() = default;

ServerStats PlanServer::snapshot_stats() const {
  ServerStats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.admitted = queue_.admitted();
  stats.responses = responses_.load(std::memory_order_relaxed);
  stats.shed_queue_full = queue_.shed(ShedReason::kQueueFull);
  stats.shed_queued_bytes = queue_.shed(ShedReason::kQueuedBytes);
  stats.shed_client_cap = queue_.shed(ShedReason::kClientCap);
  stats.shed_deadline_hopeless = queue_.shed(ShedReason::kDeadlineHopeless);
  stats.shed_draining = queue_.shed(ShedReason::kDraining);
  stats.drained_in_flight = drained_in_flight_.load(std::memory_order_relaxed);
  stats.dropped_responses = dropped_responses_.load(std::memory_order_relaxed);
  stats.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  stats.torn_frames = torn_frames_.load(std::memory_order_relaxed);
  stats.edits_applied = edits_applied_.load(std::memory_order_relaxed);
  stats.edits_failed = edits_failed_.load(std::memory_order_relaxed);
  stats.net_write_retries = net_write_retries_.load(std::memory_order_relaxed);
  stats.aborted_in_flight = aborted_in_flight_.load(std::memory_order_relaxed);
  stats.max_client_load = queue_.max_client_load();
  stats.max_queue_depth = queue_.max_depth();
  return stats;
}

void PlanServer::RequestDrain() {
  draining_.store(true, std::memory_order_release);
  // Close the door inside the queue's own mutex: an Offer that ran
  // before this sheds or was admitted with depth > 0 (so the solve loop
  // cannot see an empty queue and exit past it), and every Offer after
  // it sheds — no request can slip in unadmitted-and-unanswered between
  // a stale draining_ read and the queue insert.
  queue_.StopAdmission();
  work_cv_.notify_all();
  Wake();
}

void PlanServer::RequestAbort() {
  RequestDrain();
  if (!aborting_.exchange(true, std::memory_order_acq_rel)) {
    server_token_.Cancel();
  }
  work_cv_.notify_all();
  Wake();
}

void PlanServer::Wake() {
#if TPP_SERVER_POSIX
  std::lock_guard<std::mutex> lock(wake_mu_);
  if (wake_write_ >= 0) {
    const char byte = 'w';
    ssize_t ignored = ::write(wake_write_, &byte, 1);
    (void)ignored;
  }
#endif
}

bool PlanServer::WriteLine(const std::shared_ptr<Session>& session,
                           const std::string& line) {
  const std::string framed = line + "\n";
  std::lock_guard<std::mutex> lock(session->write_mu);
  if (session->dead.load(std::memory_order_acquire) || session->fd_out < 0) {
    return false;
  }
  for (int attempt = 0; attempt < 3; ++attempt) {
    Status wrote =
        net::WriteAll(session->fd_out, framed.data(), framed.size(),
                      "net.write");
    if (wrote.ok()) return true;
    if (wrote.code() == StatusCode::kUnavailable) {
      // Transient fault fired BEFORE any bytes (net_io contract): the
      // frame is still whole, a retry is safe and invisible.
      net_write_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Permanent error or a torn frame already on the wire: retrying
    // would corrupt the stream (duplicate or interleave a partial
    // line). The session is done; its queued work dies with it.
    break;
  }
  session->dead.store(true, std::memory_order_release);
  const size_t orphaned = queue_.DropClient(session->id);
  dropped_responses_.fetch_add(orphaned, std::memory_order_relaxed);
  if (session->is_stdio) {
    // A dead session leaves the poll set, so a dead STDIO session's EOF
    // — the event that would have requested the drain — can never be
    // observed anymore. Its peer is gone either way: drain now.
    RequestDrain();
  }
  return false;
}

void PlanServer::HandleLine(const std::shared_ptr<Session>& session,
                            std::string line) {
  ++session->line_number;
  const std::string_view stripped = StripWhitespace(line);
  if (stripped.empty() || stripped.front() == '#') return;

  if (stripped == "shutdown") {
    // Control verb (server-only, not part of the offline grammar): same
    // drain ladder as the first SIGTERM.
    WriteLine(session, "shutdown ok draining");
    RequestDrain();
    return;
  }

  if (stripped == "edit" || stripped.rfind("edit ", 0) == 0 ||
      stripped.rfind("edit\t", 0) == 0) {
    Result<graph::GraphDelta> delta =
        ParseEditLine(stripped, session->line_number);
    if (!delta.ok()) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      WriteLine(session, StrFormat("edit error %s",
                                   delta.status().ToString().c_str()));
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Drain admits no new work, edits included. Checked under mu_
      // because the solve loop's exit check (draining + empty queue +
      // no pending edits) also runs under mu_: an edit pushed here is
      // either seen by that check or shed here — never queued after the
      // loop has already exited.
      if (draining_.load(std::memory_order_acquire)) {
        WriteLine(session, "edit shed reason=draining");
        return;
      }
      PendingEdit edit;
      // The barrier: the edit applies after every request admitted up to
      // now (epoch E) and before anything admitted from here on (E+1).
      edit.after_epoch =
          admission_epoch_.fetch_add(1, std::memory_order_acq_rel);
      edit.delta = std::move(*delta);
      edit.session = session;
      edit.line_number = session->line_number;
      edits_.push_back(std::move(edit));
    }
    work_cv_.notify_all();
    return;
  }

  // Request line. Admission happens here, on the raw line, before any
  // parse: overload feedback must not queue behind solving.
  QueuedItem item;
  item.client = session->id;
  item.epoch = admission_epoch_.load(std::memory_order_acquire);
  item.deadline_ms = ScanDeadlineMs(stripped);
  item.request_index = session->request_index;
  item.line_number = session->line_number;
  item.line = std::string(stripped);
  // The index advances even when the request sheds — names must stay
  // aligned with the client's own line accounting.
  ++session->request_index;
  AdmissionDecision decision =
      queue_.Offer(std::move(item), draining_.load(std::memory_order_acquire));
  if (!decision.admitted) {
    std::string_view name = ScanToken(stripped, "name=");
    const std::string label =
        name.empty() ? StrFormat("r%zu", session->request_index - 1)
                     : std::string(name);
    // The wire form of kUnavailable + retry-after: the one retryable
    // status in the model (Status::IsRetryable), so a well-behaved
    // client backs off and retries rather than failing the request.
    WriteLine(session,
              StrFormat("%s shed Unavailable reason=%s retry_after_ms=%llu",
                        label.c_str(), ShedReasonName(decision.reason),
                        static_cast<unsigned long long>(
                            decision.retry_after_ms)));
    return;
  }
  work_cv_.notify_all();
}

void PlanServer::HandleSessionReadable(
    const std::shared_ptr<Session>& session) {
  char buffer[4096];
  Result<size_t> got =
      net::ReadSome(session->fd_in, buffer, sizeof(buffer), "net.read");
  if (!got.ok()) {
    if (got.status().code() == StatusCode::kUnavailable) {
      return;  // transient (injected or spurious poll): try next round
    }
    // Permanent read error: the connection is unusable. A buffered
    // partial line is a torn frame, discarded unparsed.
    if (session->assembler.pending_bytes() > 0) {
      torn_frames_.fetch_add(1, std::memory_order_relaxed);
    }
    CloseSession(session);
    return;
  }
  if (*got == 0) {  // EOF: the client finished sending
    session->input_closed = true;
    if (session->assembler.pending_bytes() > 0) {
      // Died mid-line. The tail is NOT a request — a torn frame must
      // never become a truncated-but-valid one.
      torn_frames_.fetch_add(1, std::memory_order_relaxed);
      session->assembler.Reset();
    }
    if (session->is_stdio) {
      // `tpp serve --stdio < script`: end of script means drain — finish
      // everything admitted, then exit. This makes the stdio server a
      // superset of the offline batch run.
      RequestDrain();
    }
    // Socket sessions stay open for writes: queued work still answers
    // (shutdown(SHUT_WR) clients read responses after sending).
    return;
  }
  std::vector<std::string> lines =
      session->assembler.Feed(std::string_view(buffer, *got));
  if (session->assembler.TakeOverflow()) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    // The discarded line still advances the session's line/request
    // counters — the client sent it and numbers its own stream by it —
    // so later default r<N> names stay aligned, and the error reply
    // carries the label the discarded request would have answered under.
    ++session->line_number;
    const size_t index = session->request_index++;
    WriteLine(session, StrFormat("r%zu error line exceeds maximum length",
                                 index));
  }
  for (std::string& line : lines) {
    HandleLine(session, std::move(line));
  }
}

void PlanServer::CloseSession(const std::shared_ptr<Session>& session) {
  session->input_closed = true;
  const size_t orphaned = queue_.DropClient(session->id);
  dropped_responses_.fetch_add(orphaned, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(session->write_mu);
  session->dead.store(true, std::memory_order_release);
#if TPP_SERVER_POSIX
  if (session->owns_fds) {
    if (session->fd_in >= 0) ::close(session->fd_in);
    if (session->fd_out >= 0 && session->fd_out != session->fd_in) {
      ::close(session->fd_out);
    }
  }
#endif
  session->fd_in = -1;
  session->fd_out = -1;
  if (session->is_stdio) {
    // A closed stdio session can never deliver the EOF that would have
    // requested the drain; its peer is gone either way. (Idempotent on
    // the normal EOF path, where drain is already requested.)
    RequestDrain();
  }
}

void PlanServer::PruneSessions() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const std::shared_ptr<Session>& session = it->second;
    bool retire = session->dead.load(std::memory_order_acquire);
    if (!retire && session->input_closed && queue_.ClientIdle(session->id)) {
      // Input done and every admitted request answered (in-flight items
      // hold their slot until AFTER their response is written, so an
      // idle client has nothing left to receive) — unless a pending
      // edit still owes this session its reply.
      retire = true;
      for (const PendingEdit& edit : edits_) {
        if (edit.session == session) {
          retire = false;
          break;
        }
      }
    }
    if (retire) {
      CloseSession(session);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

#if TPP_SERVER_POSIX

void PlanServer::IoLoop(int listener_fd, int wake_fd) {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Session>> polled;
  while (!io_done_.load(std::memory_order_acquire)) {
    fds.clear();
    polled.clear();
    fds.push_back({wake_fd, POLLIN, 0});
    size_t signal_slot = SIZE_MAX;
    if (options_.signal_fd >= 0) {
      signal_slot = fds.size();
      fds.push_back({options_.signal_fd, POLLIN, 0});
    }
    // Drain closes the front door: the listener leaves the poll set, so
    // new connect attempts queue in the kernel backlog and die with the
    // listener at exit instead of being accepted and immediately shed.
    size_t listener_slot = SIZE_MAX;
    if (listener_fd >= 0 && !draining_.load(std::memory_order_acquire)) {
      listener_slot = fds.size();
      fds.push_back({listener_fd, POLLIN, 0});
    }
    const size_t session_base = fds.size();
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [id, session] : sessions_) {
        if (session->fd_in >= 0 && !session->input_closed &&
            !session->dead.load(std::memory_order_acquire)) {
          fds.push_back({session->fd_in, POLLIN, 0});
          polled.push_back(session);
        }
      }
    }
    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: loop re-reads the flags
      break;                         // poll itself broken; drain via flags
    }
    // Wake pipe: drained and discarded — its only job is ending poll().
    if (fds[0].revents & POLLIN) {
      char sink[64];
      while (::read(wake_fd, sink, sizeof(sink)) > 0) {
      }
    }
    // Shutdown pipe: one byte per delivered signal. First byte drains,
    // the second escalates to abort (SIGTERM SIGTERM == "now").
    if (signal_slot != SIZE_MAX && (fds[signal_slot].revents & POLLIN)) {
      char sink[16];
      const ssize_t n = ::read(options_.signal_fd, sink, sizeof(sink));
      for (ssize_t i = 0; i < n; ++i) {
        if (draining_.load(std::memory_order_acquire)) {
          RequestAbort();
        } else {
          RequestDrain();
        }
      }
    }
    if (listener_slot != SIZE_MAX &&
        (fds[listener_slot].revents & POLLIN)) {
      Result<int> accepted = net::AcceptRetry(listener_fd);
      if (accepted.ok()) {
        auto session = std::make_shared<Session>();
        session->fd_in = *accepted;
        session->fd_out = *accepted;
        connections_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu_);
        session->id = next_session_id_++;
        sessions_.emplace(session->id, std::move(session));
      }
    }
    for (size_t i = 0; i < polled.size(); ++i) {
      const short revents = fds[session_base + i].revents;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        HandleSessionReadable(polled[i]);
      }
    }
    // Retire dead and fully-answered half-closed sessions every cycle
    // (<= 100ms): a long-lived server must not accumulate one open fd
    // and one Session per historical connection.
    PruneSessions();
  }
}

Status PlanServer::Serve() {
  int listener_fd = -1;
  if (!options_.socket_path.empty()) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("socket path too long: " +
                                     options_.socket_path);
    }
    listener_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener_fd < 0) return Status::IoError("cannot create socket");
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size());
    // A stale socket file is the expected debris after kill -9; replace
    // it so restart just works.
    ::unlink(options_.socket_path.c_str());
    if (::bind(listener_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listener_fd, 64) != 0) {
      ::close(listener_fd);
      return Status::IoError("cannot bind/listen on " + options_.socket_path);
    }
  }
  int wake_fds[2];
  if (::pipe(wake_fds) != 0) {
    if (listener_fd >= 0) ::close(listener_fd);
    return Status::IoError("cannot create wake pipe");
  }
  // Non-blocking both ends: the IO thread drains opportunistically and a
  // full pipe must never block a drain request.
  ::fcntl(wake_fds[0], F_SETFL, O_NONBLOCK);
  ::fcntl(wake_fds[1], F_SETFL, O_NONBLOCK);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_write_ = wake_fds[1];
  }

  if (options_.stdio) {
    auto session = std::make_shared<Session>();
    session->fd_in = options_.stdio_in;
    session->fd_out = options_.stdio_out;
    session->is_stdio = true;
    session->owns_fds = false;  // the process owns its stdio
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    session->id = next_session_id_++;
    sessions_.emplace(session->id, std::move(session));
  }

  std::thread io_thread([this, listener_fd, wake_read = wake_fds[0]] {
    IoLoop(listener_fd, wake_read);
  });
  SolveLoop();
  io_done_.store(true, std::memory_order_release);
  Wake();
  io_thread.join();

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, session] : sessions_) {
      std::lock_guard<std::mutex> wlock(session->write_mu);
      if (session->owns_fds) {
        if (session->fd_in >= 0) ::close(session->fd_in);
        if (session->fd_out >= 0 && session->fd_out != session->fd_in) {
          ::close(session->fd_out);
        }
      }
      session->fd_in = -1;
      session->fd_out = -1;
      session->dead.store(true, std::memory_order_release);
    }
    sessions_.clear();
  }
  if (listener_fd >= 0) {
    ::close(listener_fd);
    ::unlink(options_.socket_path.c_str());
  }
  ::close(wake_fds[0]);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ::close(wake_fds[1]);
    wake_write_ = -1;
  }
  return Status::Ok();
}

#else  // !TPP_SERVER_POSIX

void PlanServer::IoLoop(int, int) {}

Status PlanServer::Serve() {
  return Status::Unimplemented("tpp serve requires POSIX");
}

#endif  // TPP_SERVER_POSIX

void PlanServer::ApplyPendingEditsLocked() {
  // An edit applies exactly when every request admitted BEFORE it has
  // been picked up and answered (the solve loop is the single consumer,
  // so nothing of the old epoch is in flight here) and nothing admitted
  // AFTER it has started. That is the drain point PlanService::ApplyEdit
  // requires; its serving-state guard never trips on this path.
  while (!edits_.empty() && edits_.front().after_epoch == solve_epoch_ &&
         queue_.DepthAtOrBefore(solve_epoch_) == 0) {
    PendingEdit edit = std::move(edits_.front());
    edits_.pop_front();
    Result<EditSummary> summary = service_->ApplyEdit(
        edit.delta, options_.cache, options_.repository);
    // The epoch advances even on failure: later items were admitted
    // under the bumped epoch regardless, and holding them hostage to a
    // failed edit would wedge the queue.
    ++solve_epoch_;
    if (summary.ok()) {
      edits_applied_.fetch_add(1, std::memory_order_relaxed);
      WriteLine(edit.session,
                StrFormat("edit ok inserted=%zu removed=%zu "
                          "fingerprint=%016llx",
                          summary->inserted, summary->removed,
                          static_cast<unsigned long long>(
                              summary->new_fingerprint)));
    } else {
      edits_failed_.fetch_add(1, std::memory_order_relaxed);
      WriteLine(edit.session, StrFormat("edit error %s",
                                        summary.status().ToString().c_str()));
    }
  }
}

void PlanServer::SolveLoop() {
  for (;;) {
    if (options_.before_pickup) options_.before_pickup();
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        ApplyPendingEditsLocked();
        if (queue_.DepthAtOrBefore(solve_epoch_) > 0) break;
        if (draining_.load(std::memory_order_acquire) &&
            queue_.Depth() == 0 && edits_.empty()) {
          return;
        }
        // Timed wait: a notify can race the unlocked Offer path, and the
        // drain flag can flip without a notify from a signal handler
        // context. 20ms bounds the staleness either way.
        work_cv_.wait_for(lock, std::chrono::milliseconds(20));
      }
    }
    std::vector<QueuedItem> taken =
        queue_.TakeRoundRobin(solve_epoch_, options_.max_batch);
    if (taken.empty()) continue;
    const bool draining_now = draining_.load(std::memory_order_acquire);
    for (const QueuedItem& item : taken) {
      if (options_.on_pickup) options_.on_pickup(item);
    }

    // Parse on the solve loop — a malformed line answers an error line
    // in place, exactly where its response would go, and costs the IO
    // thread nothing.
    std::vector<PlanRequest> requests;
    std::vector<size_t> request_to_item(taken.size(), SIZE_MAX);
    std::vector<std::string> replies(taken.size());
    std::vector<std::shared_ptr<Session>> targets(taken.size());
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < taken.size(); ++i) {
        auto it = sessions_.find(taken[i].client);
        if (it != sessions_.end()) targets[i] = it->second;
      }
    }
    for (size_t i = 0; i < taken.size(); ++i) {
      Result<PlanRequest> parsed = ParsePlanRequestLine(
          taken[i].line, taken[i].line_number, taken[i].request_index);
      if (!parsed.ok()) {
        parse_errors_.fetch_add(1, std::memory_order_relaxed);
        replies[i] = StrFormat("r%zu error %s", taken[i].request_index,
                               parsed.status().ToString().c_str());
        continue;
      }
      parsed->cancel = &server_token_;  // abort escalation reaches solves
      request_to_item[requests.size()] = i;
      requests.push_back(std::move(*parsed));
    }

    if (!requests.empty()) {
      BatchOptions batch_options;
      batch_options.max_workers = options_.max_workers;
      batch_options.cache = options_.cache;
      batch_options.store = options_.store;
      batch_options.repository = options_.repository;
      std::vector<PlanResponse> batch_responses =
          service_->RunBatch(requests, batch_options);
      for (size_t r = 0; r < batch_responses.size(); ++r) {
        const size_t i = request_to_item[r];
        replies[i] = FormatResponseLine(requests[r], batch_responses[r]);
        if (batch_responses[r].status.code() == StatusCode::kAborted) {
          aborted_in_flight_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }

    for (size_t i = 0; i < taken.size(); ++i) {
      bool delivered = false;
      if (targets[i] != nullptr) {
        delivered = WriteLine(targets[i], replies[i]);
      }
      if (delivered) {
        responses_.fetch_add(1, std::memory_order_relaxed);
        if (draining_now) {
          drained_in_flight_.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        dropped_responses_.fetch_add(1, std::memory_order_relaxed);
      }
      queue_.Finish(taken[i].client);
    }
  }
}

}  // namespace tpp::service::server
