#include "service/server/framing.h"

namespace tpp::service::server {

std::vector<std::string> LineAssembler::Feed(std::string_view bytes) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < bytes.size()) {
    const size_t nl = bytes.find('\n', start);
    if (nl == std::string_view::npos) {
      if (!discarding_) {
        tail_.append(bytes.substr(start));
        if (max_line_bytes_ != 0 && tail_.size() > max_line_bytes_) {
          overflowed_ = true;
          discarding_ = true;
          tail_.clear();
        }
      }
      return lines;
    }
    if (discarding_) {
      // The oversized line ends here; resume framing after it.
      discarding_ = false;
    } else {
      tail_.append(bytes.substr(start, nl - start));
      if (max_line_bytes_ != 0 && tail_.size() > max_line_bytes_) {
        overflowed_ = true;
        tail_.clear();
      } else {
        if (!tail_.empty() && tail_.back() == '\r') tail_.pop_back();
        lines.push_back(std::move(tail_));
        tail_.clear();
      }
    }
    start = nl + 1;
  }
  return lines;
}

}  // namespace tpp::service::server
