// tpp serve — a long-lived plan server over the batch-script grammar.
//
// The server is an INGESTION AND ADMISSION SHELL around
// PlanService::RunBatch, not a new solve path: every admitted request
// line is parsed by the same ParsePlanRequestLine, solved by the same
// pipeline, and answered bit-identically to what the offline `tpp batch`
// pipeline would produce for the same script (the response line is
// timing-free for exactly this reason — see FormatResponseLine).
//
// Two threads:
//   * the IO thread owns every file descriptor: it accepts connections
//     on the Unix-domain listener (and/or serves one session over a
//     stdio pipe pair), assembles newline frames, applies admission
//     control synchronously (a shed reply is written by the IO thread
//     the moment the decision is made — overload feedback never waits
//     behind solving), queues `edit` directives behind an epoch barrier,
//     and watches the shutdown signal pipe;
//   * the solve loop (the thread that called Serve) picks admitted work
//     round-robin across clients, runs it through PlanService::RunBatch,
//     writes response lines, and applies pending edits exactly at the
//     epoch drain point — after every request admitted before the edit
//     finished, before any admitted after it starts.
//
// Overload ladder (docs/ROBUSTNESS.md): admit -> queue -> shed
// (kUnavailable + retry-after hint, immediately at the door) -> drain.
// Drain (first SIGTERM/SIGINT byte, `shutdown` directive, or stdio EOF)
// stops admission, finishes queued and in-flight work, flushes, and
// Serve returns OK; a second signal escalates to abort — the server's
// CancellationToken (chained into every in-flight request) cancels, and
// unfinished requests answer kAborted.

#ifndef TPP_SERVICE_SERVER_SERVER_H_
#define TPP_SERVICE_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "service/plan_service.h"
#include "service/server/admission.h"
#include "service/server/framing.h"

namespace tpp::service::server {

/// Monotonic counters of one Serve run; read them after Serve returns
/// (or via snapshot_stats() while serving). They feed the CLI footer and
/// BENCH_server_soak.json.
struct ServerStats {
  uint64_t connections = 0;
  uint64_t admitted = 0;
  uint64_t responses = 0;           ///< response lines written OK
  uint64_t shed_queue_full = 0;
  uint64_t shed_queued_bytes = 0;
  uint64_t shed_client_cap = 0;
  uint64_t shed_deadline_hopeless = 0;
  uint64_t shed_draining = 0;
  /// Requests that were in queue or in flight when drain began and still
  /// ran to completion with their response delivered — the graceful-drain
  /// guarantee, gated to be > 0 under drain-under-load tests and to equal
  /// queue depth at drain time.
  uint64_t drained_in_flight = 0;
  /// Responses lost because the client was gone or its pipe failed
  /// permanently when the write happened. Zero on a clean drain.
  uint64_t dropped_responses = 0;
  uint64_t parse_errors = 0;
  /// Sessions that ended with a partial line buffered (client died
  /// mid-line, or a torn read was injected and EOF followed). The tail is
  /// discarded, never parsed.
  uint64_t torn_frames = 0;
  uint64_t edits_applied = 0;
  uint64_t edits_failed = 0;
  /// Transient net.write faults absorbed by retry.
  uint64_t net_write_retries = 0;
  uint64_t aborted_in_flight = 0;   ///< requests canceled by abort escalation
  size_t max_client_load = 0;       ///< per-client queued+in-flight high water
  size_t max_queue_depth = 0;       ///< global queue-depth high water
  uint64_t shed_total() const {
    return shed_queue_full + shed_queued_bytes + shed_client_cap +
           shed_deadline_hopeless + shed_draining;
  }
};

struct ServerOptions {
  /// Unix-domain listener path; empty disables the socket listener. An
  /// existing socket file at the path is replaced (the expected state
  /// after kill -9).
  std::string socket_path;
  /// Serve one session over a pipe/terminal pair instead of (or in
  /// addition to) the socket: reads requests from `stdio_in`, writes
  /// replies to `stdio_out`. EOF on the input is an implicit drain
  /// request, so `tpp serve --stdio < script.txt` degenerates to a
  /// drained batch run.
  bool stdio = false;
  int stdio_in = 0;
  int stdio_out = 1;
  /// Shutdown pipe read end (signals::InstallShutdownPipe). -1 disables
  /// signal handling (tests drive RequestDrain/RequestAbort directly).
  int signal_fd = -1;
  AdmissionOptions admission;
  /// Requests per solve-loop pickup (one RunBatch call); bounds how long
  /// a pending edit waits behind the barrier.
  size_t max_batch = 8;
  /// Worker budget passed through to BatchOptions::max_workers.
  int max_workers = 0;
  /// Shared serving state, all optional, all not owned: exactly what
  /// `tpp batch` wires up, so a server ride of --store re-serves scripts
  /// byte-identically after a crash.
  PlanCache* cache = nullptr;
  store::WarmStore* store = nullptr;
  InstanceRepository* repository = nullptr;
  /// Test hooks. `before_pickup` runs on the solve loop before every
  /// pickup attempt — a test that blocks in it freezes pickup while the
  /// IO thread keeps admitting/shedding, making overload deterministic.
  /// `on_pickup` observes each picked item in pickup order.
  std::function<void()> before_pickup;
  std::function<void(const QueuedItem&)> on_pickup;
};

/// The timing-free response line: everything `tpp batch`'s stream line
/// carries except seconds= and the (cached) marker, plus a 64-bit hash of
/// the serialized plan so byte-identity of the PLAN (not just the
/// scoreboard) is asserted end to end. Identical requests against
/// identical graph state produce identical lines across runs, restarts,
/// worker counts, and cache states.
std::string FormatResponseLine(const PlanRequest& request,
                               const PlanResponse& response);

class PlanServer {
 public:
  /// `service` (and every pointer in `options`) must outlive the server.
  PlanServer(PlanService* service, ServerOptions options);
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  /// Runs the server on the calling thread until drain completes.
  /// Returns non-OK only for setup failures (bad socket path, pipe
  /// creation); per-session and per-request failures are handled inline
  /// and counted.
  Status Serve();

  /// Thread-safe drain request: admission stops (new offers shed with
  /// reason `draining`), queued and in-flight work finishes, Serve
  /// returns. Idempotent.
  void RequestDrain();

  /// Thread-safe abort escalation: drain + cancel in-flight work via the
  /// server's CancellationToken. Unfinished requests answer kAborted.
  void RequestAbort();

  /// Counters; stable after Serve returns, racy-but-monotonic snapshot
  /// while serving.
  ServerStats snapshot_stats() const;

  bool draining() const { return draining_.load(std::memory_order_acquire); }

 private:
  struct Session;
  struct PendingEdit {
    uint64_t after_epoch = 0;  ///< apply once this epoch fully drains
    graph::GraphDelta delta;
    std::shared_ptr<Session> session;  ///< where the edit reply goes
    size_t line_number = 0;
  };

  // IO-thread body and helpers (server.cc).
  void IoLoop(int listener_fd, int wake_fd);
  void HandleSessionReadable(const std::shared_ptr<Session>& session);
  void HandleLine(const std::shared_ptr<Session>& session, std::string line);
  void CloseSession(const std::shared_ptr<Session>& session);
  /// Retires finished sessions: dead ones (write failure, read error)
  /// and half-closed ones whose every admitted request has answered and
  /// that no pending edit still owes a reply. Closes their fds and
  /// erases them from sessions_, so a long-lived server's fd count and
  /// session table track LIVE connections, not historical ones.
  void PruneSessions();

  // Solve-loop body and helpers.
  void SolveLoop();
  void ApplyPendingEditsLocked();
  /// Writes one framed line to the session; retries transient net.write
  /// faults, marks the session dead (and drops its queued work) on a
  /// permanent or torn failure. Returns whether the line was delivered.
  /// Never takes mu_ — safe from either thread, including under mu_.
  bool WriteLine(const std::shared_ptr<Session>& session,
                 const std::string& line);

  void Wake();

  PlanService* service_;
  ServerOptions options_;
  AdmissionQueue queue_;
  CancellationToken server_token_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> aborting_{false};
  std::atomic<bool> io_done_{false};

  // Admission epochs: bumped by every edit directive; items carry the
  // epoch they were admitted under and the solve loop never picks an
  // item from a later epoch than the edits it has applied.
  std::atomic<uint64_t> admission_epoch_{0};
  uint64_t solve_epoch_ = 0;  // solve loop only

  std::mutex mu_;  // guards edits_, sessions_, next_session_id_
  std::condition_variable work_cv_;
  std::deque<PendingEdit> edits_;
  // Live sessions by id; retired entries are erased by PruneSessions, so
  // response-target lookup stays O(1) in live connections.
  std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;

  // Counters as individual atomics (not a mutex-guarded struct): both
  // threads bump them, including on paths that already hold mu_.
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> dropped_responses_{0};
  std::atomic<uint64_t> parse_errors_{0};
  std::atomic<uint64_t> torn_frames_{0};
  std::atomic<uint64_t> edits_applied_{0};
  std::atomic<uint64_t> edits_failed_{0};
  std::atomic<uint64_t> net_write_retries_{0};
  std::atomic<uint64_t> drained_in_flight_{0};
  std::atomic<uint64_t> aborted_in_flight_{0};

  // Wake pipe write end. The mutex covers the fd value AND the write(2)
  // against Serve's teardown close: RequestDrain/RequestAbort are
  // documented thread-safe, so a caller may race Serve returning — the
  // wake write must never land on a closed (possibly reused) fd.
  std::mutex wake_mu_;
  int wake_write_ = -1;  // solve/drain -> IO thread wakeup pipe
};

}  // namespace tpp::service::server

#endif  // TPP_SERVICE_SERVER_SERVER_H_
