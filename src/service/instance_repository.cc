#include "service/instance_repository.h"

#include <cstdio>
#include <utility>

#include "common/strings.h"
#include "graph/fingerprint.h"
#include "service/store/warm_store.h"

namespace tpp::service {

using core::IndexedEngine;
using core::TppInstance;

size_t InstanceRepository::Intern(const std::vector<graph::Edge>& targets,
                                  motif::MotifKind motif) {
  std::string key =
      StrFormat("%d|", static_cast<int>(motif));
  for (const graph::Edge& e : targets) {
    key += StrFormat("%u-%u;", e.u, e.v);
  }
  auto [it, inserted] = ids_.try_emplace(std::move(key), groups_.size());
  if (inserted) {
    Group& group = groups_.emplace_back();
    group.targets = targets;
    group.motif = motif;
  }
  return it->second;
}

void InstanceRepository::BuildGroup(Group& group) {
  builds_.fetch_add(1, std::memory_order_relaxed);
  Result<TppInstance> instance =
      core::MakeInstance(*base_, group.targets, group.motif);
  if (!instance.ok()) {
    group.status = instance.status();
    return;
  }
  group.instance.emplace(std::move(*instance));

  motif::IndexSnapshotMeta meta;
  if (store_ != nullptr) {
    meta.graph_fingerprint = base_fingerprint_;
    meta.target_hash = graph::TargetSetHash(group.instance->targets);
    meta.motif = group.motif;
    meta.num_targets = static_cast<uint32_t>(group.instance->targets.size());
    Result<motif::IncidenceIndex> snapshot = store_->LoadIndex(meta);
    if (snapshot.ok()) {
      Result<IndexedEngine> adopted =
          IndexedEngine::Adopt(*group.instance, std::move(*snapshot));
      if (adopted.ok()) {
        snapshot_hits_.fetch_add(1, std::memory_order_relaxed);
        group.engine.emplace(std::move(*adopted));
        return;
      }
      std::fprintf(stderr,
                   "tpp: warm store snapshot rejected at adoption (%s); "
                   "cold-building\n",
                   adopted.status().ToString().c_str());
    } else if (snapshot.status().code() != StatusCode::kNotFound) {
      // Present but invalid: corrupt file, format/fingerprint mismatch.
      // A warning plus a cold build is the whole failure mode.
      std::fprintf(stderr,
                   "tpp: warm store snapshot rejected (%s); cold-building\n",
                   snapshot.status().ToString().c_str());
    }
  }

  motif::IncidenceIndex::BuildOptions build_options;
  build_options.threads = build_threads_;
  Result<IndexedEngine> engine =
      IndexedEngine::Create(*group.instance, build_options);
  if (!engine.ok()) {
    group.status = engine.status();
    group.instance.reset();
    return;
  }
  group.engine.emplace(std::move(*engine));
  if (store_ != nullptr) {
    // Best-effort write-back: the warm start is an optimization, so a
    // full disk or I/O error must not fail the request.
    Status saved = store_->SaveIndex(group.engine->index(), meta);
    if (saved.ok()) {
      snapshot_stores_.fetch_add(1, std::memory_order_relaxed);
    } else {
      std::fprintf(stderr, "tpp: warm store snapshot write failed (%s)\n",
                   saved.ToString().c_str());
    }
  }
}

Result<IndexedEngine> InstanceRepository::AcquireEngine(size_t group_id) {
  Group& group = groups_[group_id];
  std::call_once(group.built, [&] { BuildGroup(group); });
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  if (!group.status.ok()) return group.status;
  return group.engine->Clone();
}

}  // namespace tpp::service
