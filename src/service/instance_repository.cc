#include "service/instance_repository.h"

#include <utility>

#include "common/strings.h"

namespace tpp::service {

using core::IndexedEngine;
using core::TppInstance;

size_t InstanceRepository::Intern(const std::vector<graph::Edge>& targets,
                                  motif::MotifKind motif) {
  std::string key =
      StrFormat("%d|", static_cast<int>(motif));
  for (const graph::Edge& e : targets) {
    key += StrFormat("%u-%u;", e.u, e.v);
  }
  auto [it, inserted] = ids_.try_emplace(std::move(key), groups_.size());
  if (inserted) {
    Group& group = groups_.emplace_back();
    group.targets = targets;
    group.motif = motif;
  }
  return it->second;
}

Result<IndexedEngine> InstanceRepository::AcquireEngine(size_t group_id) {
  Group& group = groups_[group_id];
  std::call_once(group.built, [&] {
    builds_.fetch_add(1, std::memory_order_relaxed);
    Result<TppInstance> instance =
        core::MakeInstance(*base_, group.targets, group.motif);
    if (!instance.ok()) {
      group.status = instance.status();
      return;
    }
    group.instance.emplace(std::move(*instance));
    motif::IncidenceIndex::BuildOptions build_options;
    build_options.threads = build_threads_;
    Result<IndexedEngine> engine =
        IndexedEngine::Create(*group.instance, build_options);
    if (!engine.ok()) {
      group.status = engine.status();
      group.instance.reset();
      return;
    }
    group.engine.emplace(std::move(*engine));
  });
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  if (!group.status.ok()) return group.status;
  return group.engine->Clone();
}

}  // namespace tpp::service
