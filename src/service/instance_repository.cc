#include "service/instance_repository.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "graph/fingerprint.h"
#include "service/store/warm_store.h"

namespace tpp::service {

using core::IndexedEngine;
using core::TppInstance;

size_t InstanceRepository::Intern(const std::vector<graph::Edge>& targets,
                                  motif::MotifKind motif) {
  std::string key =
      StrFormat("%d|", static_cast<int>(motif));
  for (const graph::Edge& e : targets) {
    key += StrFormat("%u-%u;", e.u, e.v);
  }
  auto [it, inserted] = ids_.try_emplace(std::move(key), groups_.size());
  if (inserted) {
    Group& group = groups_.emplace_back();
    group.targets = targets;
    group.motif = motif;
  }
  return it->second;
}

void InstanceRepository::BuildGroup(Group& group,
                                    const CancellationToken* cancel) {
  builds_.fetch_add(1, std::memory_order_relaxed);
  if (Status polled = PollCancellation(cancel, "repository:build");
      !polled.ok()) {
    group.status = std::move(polled);
    return;
  }
  Result<TppInstance> instance =
      core::MakeInstance(*base_, group.targets, group.motif);
  if (!instance.ok()) {
    group.status = instance.status();
    return;
  }
  group.instance.emplace(std::move(*instance));

  motif::IndexSnapshotMeta meta;
  if (store_ != nullptr) {
    meta.graph_fingerprint = base_fingerprint_;
    meta.target_hash = graph::TargetSetHash(group.instance->targets);
    meta.motif = group.motif;
    meta.num_targets = static_cast<uint32_t>(group.instance->targets.size());
    Result<motif::IncidenceIndex> snapshot = store_->LoadIndex(meta);
    if (snapshot.ok()) {
      Result<IndexedEngine> adopted =
          IndexedEngine::Adopt(*group.instance, std::move(*snapshot));
      if (adopted.ok()) {
        snapshot_hits_.fetch_add(1, std::memory_order_relaxed);
        group.engine.emplace(std::move(*adopted));
        return;
      }
      store_degradations_.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr,
                   "tpp: warm store snapshot rejected at adoption (%s); "
                   "cold-building\n",
                   adopted.status().ToString().c_str());
    } else if (snapshot.status().code() != StatusCode::kNotFound) {
      // Present but invalid (corrupt file, format/fingerprint mismatch)
      // or unreadable after retries: one rung down the degradation
      // ladder — warn, count, cold-build.
      store_degradations_.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr,
                   "tpp: warm store snapshot rejected (%s); cold-building\n",
                   snapshot.status().ToString().c_str());
    }
  }

  motif::IncidenceIndex::BuildOptions build_options;
  build_options.threads = build_threads_;
  build_options.cancel = cancel;
  Result<IndexedEngine> engine =
      IndexedEngine::Create(*group.instance, build_options);
  if (!engine.ok()) {
    group.status = engine.status();
    group.instance.reset();
    return;
  }
  group.engine.emplace(std::move(*engine));
  if (store_ != nullptr) {
    // Best-effort write-back: the warm start is an optimization, so a
    // full disk or I/O error must not fail the request.
    Status saved = store_->SaveIndex(group.engine->index(), meta);
    if (saved.ok()) {
      snapshot_stores_.fetch_add(1, std::memory_order_relaxed);
    } else {
      store_write_failures_.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr, "tpp: warm store snapshot write failed (%s)\n",
                   saved.ToString().c_str());
    }
  }
}

Result<IndexedEngine> InstanceRepository::AcquireEngine(
    size_t group_id, const CancellationToken* cancel) {
  Group& group = groups_[group_id];
  {
    std::lock_guard<std::mutex> lock(group.build_mu);
    if (!group.built) {
      BuildGroup(group, cancel);
      group.built = true;
    }
    const StatusCode code = group.status.code();
    if (code == StatusCode::kAborted || code == StatusCode::kDeadlineExceeded) {
      // The build died on THIS caller's clock, not on anything intrinsic
      // to the group — memoizing it would poison every later acquirer
      // (including ones with generous deadlines). Hand the failure to
      // this caller only and return the group to unbuilt so the next
      // acquirer rebuilds under its own token.
      Status failed = group.status;
      ResetGroup(group);
      acquisitions_.fetch_add(1, std::memory_order_relaxed);
      return failed;
    }
  }
  // Past the gate the group is immutable until the next ApplyEdit (which
  // never overlaps acquisitions), so the clone runs unlocked exactly as
  // the once_flag version did.
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  if (!group.status.ok()) return group.status;
  return group.engine->Clone();
}

void InstanceRepository::ResetGroup(Group& group) {
  group.built = false;
  group.status = Status::Ok();
  group.engine.reset();
  group.instance.reset();
}

void InstanceRepository::ApplyEdit(const graph::GraphDelta& delta,
                                   uint64_t new_fingerprint) {
  base_fingerprint_ = new_fingerprint;
  if (delta.empty()) return;
  std::vector<graph::EdgeKey> touched;
  touched.reserve(delta.size());
  for (const graph::Edge& e : delta.inserted) touched.push_back(e.Key());
  for (const graph::Edge& e : delta.removed) touched.push_back(e.Key());
  std::sort(touched.begin(), touched.end());
  for (Group& group : groups_) {
    std::lock_guard<std::mutex> lock(group.build_mu);
    if (!group.built) continue;  // will build against the edited base
    bool hits_target = false;
    for (const graph::Edge& t : group.targets) {
      if (std::binary_search(touched.begin(), touched.end(), t.Key())) {
        hits_target = true;
        break;
      }
    }
    if (hits_target || !group.status.ok()) {
      // The edit changed the problem (or may have cured a memoized build
      // failure): back to unbuilt, next acquisition cold-builds.
      ResetGroup(group);
      ++edit_resets_;
      continue;
    }
    // In-place repair: released graph first, then the engine (its own
    // graph copy + incidence-index repair around the delta neighborhood).
    Status repaired = group.instance->released.ApplyDelta(delta);
    if (repaired.ok()) repaired = group.engine->ApplyEdit(delta);
    if (!repaired.ok()) {
      std::fprintf(stderr,
                   "tpp: in-place instance repair failed (%s); group will "
                   "cold-rebuild\n",
                   repaired.ToString().c_str());
      ResetGroup(group);
      ++edit_resets_;
      continue;
    }
    ++edit_repairs_;
    if (store_ != nullptr) {
      // Re-home the snapshot under the post-edit fingerprint (best
      // effort, like the cold-build write-back) so the NEXT process
      // start warm-loads the repaired index.
      motif::IndexSnapshotMeta meta;
      meta.graph_fingerprint = base_fingerprint_;
      meta.target_hash = graph::TargetSetHash(group.instance->targets);
      meta.motif = group.motif;
      meta.num_targets = static_cast<uint32_t>(group.instance->targets.size());
      const motif::IncidenceIndex& index =
          std::as_const(*group.engine).index();
      Status saved = store_->SaveIndex(index, meta);
      if (saved.ok()) {
        snapshot_stores_.fetch_add(1, std::memory_order_relaxed);
      } else {
        store_write_failures_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "tpp: warm store snapshot write failed (%s)\n",
                     saved.ToString().c_str());
      }
    }
  }
}

}  // namespace tpp::service
