// PlanService: one loaded base graph serving batches of TPP protection
// requests through a staged pipeline.
//
// The deployment story of target privacy preserving is a stream of
// designated users ("protect these links before the next release") hitting
// one released network, and nightly batches repeat much of the same work.
// The service loads the base graph once; each PlanRequest names its
// targets (explicitly or by sample count), a motif, and a SolverSpec, and
// RunBatch executes the requests through an explicit pipeline:
//
//   canonicalize  — derive each request's content key (base-graph
//                   fingerprint + request payload; plan_cache.h)
//   cache-probe   — serve repeats of earlier batches from the optional
//                   PlanCache
//   dedup         — requests with identical keys inside the batch solve
//                   once and share the response
//   group-by-instance — requests with the same (targets, motif) share one
//                   TppInstance + IncidenceIndex build
//                   (instance_repository.h)
//   build-once / solve / serialize — build each group's prototype engine
//                   once, hand every request a private IndexedEngine
//                   clone, run the spec'd solver, serialize the plan
//   cache-fill    — insert fresh responses into the cache
//
// Every stage is a pure optimization: responses are bit-identical to a
// sequential RunOne loop at any worker count, cache state, or sharing
// group (regression-tested in tests/plan_pipeline_test.cc).
//
// Determinism: every request derives its own RNG stream purely from its
// seed (Rng(SplitMix64(seed)), see common/rng.h), so responses are
// bit-identical whether the batch runs on 1 thread or 8, in any order,
// and a batch of one request equals a standalone `tpp protect` run with
// the same parameters. Two requests with equal seeds produce identical
// plans; distinct seeds produce independent streams even when adjacent.
//
// Request-file format (docs/SERVICE.md): one request per line of
// whitespace-separated key=value tokens, e.g.
//
//   # tpp batch request file v1
//   name=r0 algorithm=sgb motif=Triangle sample=20 seed=1 budget=10
//   name=r1 algorithm=ct-tbd links=3-14;15-92 budget=6 scope=all

#ifndef TPP_SERVICE_PLAN_SERVICE_H_
#define TPP_SERVICE_PLAN_SERVICE_H_

#include <atomic>
#include <functional>
#include <istream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "core/problem.h"
#include "core/report.h"
#include "core/solver.h"
#include "graph/graph.h"
#include "motif/motif.h"

namespace tpp::service {

class PlanCache;            // plan_cache.h
class InstanceRepository;   // instance_repository.h

namespace store {
class WarmStore;  // store/warm_store.h
}  // namespace store

/// One unit of work: protect one target set of the base graph.
struct PlanRequest {
  /// Request id, used in reports and plan file names. Parsed files default
  /// it to "r<line-index>". Excluded from the cache key: two requests that
  /// differ only in name produce the same response payload.
  std::string name;
  /// Explicit target links. When empty, `sample` links are drawn
  /// uniformly from the base graph's edges instead.
  std::vector<graph::Edge> targets;
  size_t sample = 10;  ///< number of targets to sample (targets empty)
  motif::MotifKind motif = motif::MotifKind::kTriangle;
  core::SolverSpec spec;  ///< algorithm, scope, lazy flag, budget
  uint64_t seed = 1;      ///< per-request RNG stream seed
  /// Copy the final released graph into PlanResponse::released. Off by
  /// default so large batches do not hold O(batch x graph) memory; `tpp
  /// protect` and the request-file key `released=1` turn it on.
  bool want_released = false;
  /// Wall-clock budget for this request in milliseconds; <= 0 means
  /// unlimited. The clock starts when the pipeline (or RunOne) picks the
  /// request up; past the deadline the solver stops at its next round
  /// boundary and the response carries kDeadlineExceeded — the rest of
  /// the batch is unaffected. Request-file key `deadline_ms=`, CLI flag
  /// --deadline-ms. Excluded from the cache key: a deadline changes
  /// whether a run finishes, never what a finished run produces.
  int64_t deadline_ms = 0;
  /// Optional external cancel signal (not owned; must outlive the run).
  /// Chained under the per-request deadline token, so either source
  /// stops the solve. Excluded from the cache key.
  const CancellationToken* cancel = nullptr;
};

/// Outcome of one request. Failures are isolated: a bad request yields a
/// non-OK status in its slot and the rest of the batch proceeds.
struct PlanResponse {
  Status status = Status::Ok();
  std::vector<graph::Edge> targets;  ///< realized targets (sampled or given)
  core::ProtectionResult result;
  std::string plan_text;      ///< SerializeDeletionPlan output
  /// Base minus targets minus protectors; only populated when the request
  /// set want_released (empty Graph(0) otherwise).
  graph::Graph released{0};
  double seconds = 0;         ///< wall time of this request
  bool from_cache = false;    ///< served by a PlanCache hit
};

/// Counters one pipeline run fills when BatchOptions::stats is set. Every
/// request is accounted exactly once among cache_hits, dedup_shared, and
/// solved.
struct BatchStats {
  size_t requests = 0;        ///< batch size
  size_t cache_hits = 0;      ///< served straight from the PlanCache
  size_t dedup_shared = 0;    ///< shared an in-batch representative's work
  size_t solved = 0;          ///< executed by the solve stage (incl. failures)
  size_t instance_groups = 0; ///< distinct (targets, motif) groups solved
  size_t instance_builds = 0; ///< TppInstance + index builds performed
  size_t snapshot_hits = 0;   ///< builds satisfied by a warm-store snapshot
  size_t snapshot_stores = 0; ///< cold builds written back to the store
  /// Requests whose response is kDeadlineExceeded (their own deadline_ms
  /// or the batch deadline fired). Dedup followers of an expired
  /// representative count too — they carry the same response.
  size_t deadline_exceeded = 0;
  /// Transient store I/O errors this run absorbed via the retry policy
  /// (store attached only; see RetryPolicy in store/retry_policy.h).
  size_t store_retries = 0;
  /// Store writes (snapshot save, plan append, segment seal) that failed
  /// even after retries. Requests still succeed — the write degrades to
  /// "not persisted".
  size_t store_write_failures = 0;
  /// Every store shortfall this run: write failures + reads degraded to
  /// cold builds/solves + rejected snapshots. Zero in a healthy run; the
  /// batch footer prints it and CI gates on it.
  size_t store_degradations = 0;
};

/// Knobs of one RunBatch pipeline execution.
struct BatchOptions {
  /// Concurrent requests at a time; <= 0 uses GlobalThreadCount().
  int max_workers = 0;
  /// Optional response memo shared across batches (and across services:
  /// keys embed the base-graph fingerprint). nullptr disables the
  /// cache-probe and cache-fill stages.
  PlanCache* cache = nullptr;
  /// Build each distinct (targets, motif) instance once and clone engines
  /// (instance_repository.h). Off reproduces the build-per-request path,
  /// kept for benchmarking the sharing gain; output is identical either
  /// way.
  bool share_instances = true;
  /// Solve identical in-batch requests once and share the response. Off
  /// solves every request individually (with dedup, sharing, and cache
  /// all off, the pipeline degenerates to the historical
  /// one-solve-per-request batch); output is identical either way.
  bool dedup = true;
  /// Optional disk-backed warm-start store (store/warm_store.h). The
  /// build-once stage probes it for IncidenceIndex snapshots before
  /// building (writing cold builds back), making the expensive index
  /// construction survive process restarts. Plan-level persistence is the
  /// cache's concern: attach the same store to the PlanCache with
  /// set_backing_store. Responses stay bit-identical with or without a
  /// store (regression-tested in tests/store_warmstart_test.cc).
  store::WarmStore* store = nullptr;
  /// Optional externally-owned instance repository reused ACROSS batches
  /// (nullptr: the pipeline builds a fresh per-batch repository, the
  /// historical behavior). It must have been constructed over this
  /// service's base graph and, between batches, kept in step with every
  /// PlanService::ApplyEdit (which repairs its built groups in place).
  /// With an external repository a follow-up batch naming the same
  /// (targets, motif) groups re-clones the surviving prototype engines
  /// instead of re-enumerating — the stats report builds performed BY
  /// THIS RUN, so a fully warm batch shows instance_builds == 0. The
  /// pipeline (re)applies its build-thread budget and store attachment on
  /// every run.
  InstanceRepository* repository = nullptr;
  /// Optional out-param for pipeline counters.
  BatchStats* stats = nullptr;
  /// Wall-clock budget for the WHOLE batch in milliseconds; <= 0 means
  /// unlimited. The clock starts at pipeline entry; every request's
  /// effective deadline is the earlier of its own deadline_ms and this.
  /// Requests already solved keep their responses — only work past the
  /// deadline returns kDeadlineExceeded.
  int64_t batch_deadline_ms = 0;
};

/// Outcome summary of one committed base-graph edit applied through
/// PlanService::ApplyEdit.
struct EditSummary {
  uint64_t old_fingerprint = 0;
  uint64_t new_fingerprint = 0;
  size_t inserted = 0;           ///< net edges inserted
  size_t removed = 0;            ///< net edges removed
  size_t cache_rekeyed = 0;      ///< cache entries surviving under the new fp
  size_t cache_invalidated = 0;  ///< cache entries dropped by the edit
  size_t groups_repaired = 0;    ///< repository groups repaired in place
  size_t groups_reset = 0;       ///< repository groups reset for cold rebuild
};

/// Streaming delivery callback: invoked once per request, in input order,
/// on the calling thread, as the completed prefix of the batch grows —
/// response i is delivered as soon as requests 0..i have all finished, so
/// long batches can be tailed without waiting for the slowest request.
using ResponseSink =
    std::function<void(size_t index, const PlanResponse& response)>;

/// Derives the request's RNG stream from its seed; the single derivation
/// rule shared by the service and the CLI so batch and standalone runs
/// agree bit-for-bit.
Rng RequestRng(uint64_t seed);

/// Serves protection requests against one base graph. Thread-compatible:
/// RunBatch may be called repeatedly (sequentially); each call fans its
/// requests out over the shared pool.
class PlanService {
 public:
  explicit PlanService(graph::Graph base);

  const graph::Graph& base() const { return base_; }

  /// graph::Fingerprint of the base, computed once at construction; the
  /// content-address prefix of every cache key this service produces.
  uint64_t fingerprint() const { return fingerprint_; }

  /// Executes one request cold: sample/validate targets, build the
  /// TppInstance and IndexedEngine, run the spec'd solver, serialize the
  /// plan. No cache, no sharing — this is the reference semantics every
  /// pipeline configuration must reproduce bit-for-bit.
  PlanResponse RunOne(const PlanRequest& request) const;

  /// Executes all requests through the pipeline (default BatchOptions
  /// with `max_workers`) and returns responses in input order.
  std::vector<PlanResponse> RunBatch(std::span<const PlanRequest> requests,
                                     int max_workers = 0) const;

  /// Pipeline execution with explicit options; responses in input order.
  std::vector<PlanResponse> RunBatch(std::span<const PlanRequest> requests,
                                     const BatchOptions& options) const;

  /// Streaming pipeline execution: delivers each response to `sink` (see
  /// ResponseSink for the ordering contract) instead of collecting them.
  /// The calling thread participates in solving, so delivery granularity
  /// is one request; with max_workers == 1 this is exact
  /// solve-one-deliver-one streaming.
  void RunBatch(std::span<const PlanRequest> requests,
                const BatchOptions& options, const ResponseSink& sink) const;

  /// Commits a normalized base-graph edit (the GraphDelta contract —
  /// typically a graph::Graph::EditSession::Commit result replayed here)
  /// to the LIVE service: applies the delta to the base graph, advances
  /// the fingerprint in O(|delta|) (graph::UpdateFingerprint — no
  /// re-walk), and keeps the serving state consistent:
  ///   * `cache` (if given): entries under the old fingerprint whose
  ///     response provably cannot change — deterministic algorithm,
  ///     explicit targets, restricted scope, every target endpoint
  ///     outside the edit's distance-1 neighborhood on the pre-edit graph
  ///     — are rekeyed to the new fingerprint and survive; the rest are
  ///     dropped (PlanCache::InvalidateForEdit).
  ///   * `repository` (if given): built instance groups are repaired in
  ///     place around the delta neighborhood instead of re-enumerated
  ///     (InstanceRepository::ApplyEdit); only groups whose target links
  ///     the edit touches reset to a cold build.
  /// On a delta that fails validation (an absent removal, a present
  /// insertion) nothing changes and the error is returned. Must not run
  /// concurrently with RunBatch/RunOne — edits sit between batches. The
  /// restriction is ENFORCED, not conventional: an ApplyEdit that
  /// overlaps an in-flight RunBatch/RunOne returns kFailedPrecondition
  /// and changes nothing, instead of mutating the base graph under a
  /// running solve. Callers that interleave edits with serving (the plan
  /// server's epoch barrier, the CLI's edit sessions) retry or sequence
  /// at their own drain point.
  Result<EditSummary> ApplyEdit(const graph::GraphDelta& delta,
                                PlanCache* cache = nullptr,
                                InstanceRepository* repository = nullptr);

 private:
  std::vector<PlanResponse> RunPipeline(std::span<const PlanRequest> requests,
                                        const BatchOptions& options,
                                        const ResponseSink* sink) const;

  graph::Graph base_;
  uint64_t fingerprint_ = 0;
  // Live RunBatch/RunOne executions; ApplyEdit refuses while nonzero.
  mutable std::atomic<int> active_runs_{0};
};

/// Parses an explicit link list "u-v;u-v;..." (the `links=` value of the
/// request-file format and the CLI's --links flag). Rejects malformed
/// pairs, negative or > 32-bit node ids, self-loops, and duplicate links
/// (including reversed duplicates like "1-2;2-1").
Result<std::vector<graph::Edge>> ParseLinkList(std::string_view value);

/// Parses one request line (the format above, already stripped of
/// comments and surrounding whitespace). `line` is the 1-based line
/// number used in error messages; `index` names the request "r<index>"
/// when the line has no name= token. The building block of the stream
/// overload below, exposed for feeds that arrive a line at a time.
Result<PlanRequest> ParsePlanRequestLine(std::string_view text, size_t line,
                                         size_t index);

/// Parses a request stream line by line (format above; see
/// docs/SERVICE.md) — each line is read, validated, and appended before
/// the next is pulled from the stream, so arbitrarily long files never
/// need a second in-memory copy. Errors name the offending line.
Result<std::vector<PlanRequest>> ParsePlanRequests(std::istream& stream);

/// Parses an in-memory request file.
Result<std::vector<PlanRequest>> ParsePlanRequests(const std::string& text);

/// Loads and parses a request file from disk (line by line).
Result<std::vector<PlanRequest>> LoadPlanRequests(const std::string& path);

/// Parses one `edit` directive line of a batch script:
///
///   edit insert=u-v;u-v remove=u-v
///
/// At least one of insert=/remove= must be present; both take the
/// ParseLinkList syntax. The result is normalized to the GraphDelta
/// contract (canonical u<v endpoints, each list sorted by key and
/// duplicate-free, lists disjoint); violations are parse errors, so a
/// parsed delta is always directly applicable.
Result<graph::GraphDelta> ParseEditLine(std::string_view text, size_t line);

/// One step of a batch script: the requests to run, then (optionally) the
/// edit to commit before the next step.
struct PlanScriptStep {
  std::vector<PlanRequest> requests;
  std::optional<graph::GraphDelta> edit;
};

/// Parses a batch SCRIPT: the plain request-file format plus `edit`
/// directive lines (see ParseEditLine) that split the file into
/// sequential steps. Each step's requests run as one pipeline batch
/// against the then-current base graph; its edit (if any) commits through
/// PlanService::ApplyEdit before the next step runs. A file with no edit
/// lines parses as a single step — the format is a strict superset of the
/// request-file format. Request indices ("r<N>" default names) number
/// across the whole script.
Result<std::vector<PlanScriptStep>> ParsePlanScript(std::istream& stream);

/// Parses an in-memory batch script.
Result<std::vector<PlanScriptStep>> ParsePlanScript(const std::string& text);

/// Loads and parses a batch script from disk (line by line).
Result<std::vector<PlanScriptStep>> LoadPlanScript(const std::string& path);

}  // namespace tpp::service

#endif  // TPP_SERVICE_PLAN_SERVICE_H_
