// PlanService: one loaded base graph serving batches of TPP protection
// requests concurrently.
//
// The deployment story of target privacy preserving is a stream of
// designated users ("protect these links before the next release") hitting
// one released network. The service loads the base graph once; each
// PlanRequest names its targets (explicitly or by sample count), a motif,
// and a SolverSpec, and RunBatch executes the requests concurrently on
// the shared process thread pool (common/thread_pool.h).
//
// Determinism: every request derives its own RNG stream purely from its
// seed (Rng(SplitMix64(seed)), see common/rng.h), so responses are
// bit-identical whether the batch runs on 1 thread or 8, in any order,
// and a batch of one request equals a standalone `tpp protect` run with
// the same parameters. Two requests with equal seeds produce identical
// plans; distinct seeds produce independent streams even when adjacent.
//
// Request-file format (docs/SERVICE.md): one request per line of
// whitespace-separated key=value tokens, e.g.
//
//   # tpp batch request file v1
//   name=r0 algorithm=sgb motif=Triangle sample=20 seed=1 budget=10
//   name=r1 algorithm=ct-tbd links=3-14;15-92 budget=6 scope=all

#ifndef TPP_SERVICE_PLAN_SERVICE_H_
#define TPP_SERVICE_PLAN_SERVICE_H_

#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/problem.h"
#include "core/report.h"
#include "core/solver.h"
#include "graph/graph.h"
#include "motif/motif.h"

namespace tpp::service {

/// One unit of work: protect one target set of the base graph.
struct PlanRequest {
  /// Request id, used in reports and plan file names. Parsed files default
  /// it to "r<line-index>".
  std::string name;
  /// Explicit target links. When empty, `sample` links are drawn
  /// uniformly from the base graph's edges instead.
  std::vector<graph::Edge> targets;
  size_t sample = 10;  ///< number of targets to sample (targets empty)
  motif::MotifKind motif = motif::MotifKind::kTriangle;
  core::SolverSpec spec;  ///< algorithm, scope, lazy flag, budget
  uint64_t seed = 1;      ///< per-request RNG stream seed
};

/// Outcome of one request. Failures are isolated: a bad request yields a
/// non-OK status in its slot and the rest of the batch proceeds.
struct PlanResponse {
  Status status = Status::Ok();
  std::vector<graph::Edge> targets;  ///< realized targets (sampled or given)
  core::ProtectionResult result;
  std::string plan_text;      ///< SerializeDeletionPlan output
  graph::Graph released{0};   ///< base minus targets minus protectors
  double seconds = 0;         ///< wall time of this request
};

/// Derives the request's RNG stream from its seed; the single derivation
/// rule shared by the service and the CLI so batch and standalone runs
/// agree bit-for-bit.
Rng RequestRng(uint64_t seed);

/// Serves protection requests against one base graph. Thread-compatible:
/// RunBatch may be called repeatedly (sequentially); each call fans its
/// requests out over the shared pool.
class PlanService {
 public:
  explicit PlanService(graph::Graph base) : base_(std::move(base)) {}

  const graph::Graph& base() const { return base_; }

  /// Executes one request: sample/validate targets, build the TppInstance
  /// and IndexedEngine, run the spec'd solver, serialize the plan.
  PlanResponse RunOne(const PlanRequest& request) const;

  /// Executes all requests concurrently (at most `max_workers` at a time;
  /// <= 0 uses GlobalThreadCount()) and returns responses in input order.
  /// Output is bit-identical to a sequential RunOne loop.
  std::vector<PlanResponse> RunBatch(std::span<const PlanRequest> requests,
                                     int max_workers = 0) const;

 private:
  graph::Graph base_;
};

/// Parses an explicit link list "u-v;u-v;..." (the `links=` value of the
/// request-file format and the CLI's --links flag).
Result<std::vector<graph::Edge>> ParseLinkList(std::string_view value);

/// Parses a request file (format above; see docs/SERVICE.md). Errors name
/// the offending line.
Result<std::vector<PlanRequest>> ParsePlanRequests(const std::string& text);

/// Loads and parses a request file from disk.
Result<std::vector<PlanRequest>> LoadPlanRequests(const std::string& path);

}  // namespace tpp::service

#endif  // TPP_SERVICE_PLAN_SERVICE_H_
