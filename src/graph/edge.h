// Edge primitives: node ids, canonical undirected edge keys.

#ifndef TPP_GRAPH_EDGE_H_
#define TPP_GRAPH_EDGE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <utility>

#include "common/check.h"

namespace tpp::graph {

/// Node identifier; nodes of a Graph are always 0..NumNodes()-1.
using NodeId = uint32_t;

/// Canonical packed key for an undirected edge: (min(u,v) << 32) | max(u,v).
/// Using a single 64-bit integer makes edge sets hashable and cheap to
/// compare, which the motif incidence index relies on heavily.
using EdgeKey = uint64_t;

/// Packs an unordered node pair into its canonical EdgeKey.
/// Requires u != v (self-loops are not representable by design).
inline EdgeKey MakeEdgeKey(NodeId u, NodeId v) {
  TPP_CHECK_NE(u, v);
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
}

/// The smaller endpoint of a packed edge.
inline NodeId EdgeKeyU(EdgeKey k) { return static_cast<NodeId>(k >> 32); }

/// The larger endpoint of a packed edge.
inline NodeId EdgeKeyV(EdgeKey k) {
  return static_cast<NodeId>(k & 0xffffffffu);
}

/// An undirected edge as an explicit endpoint pair. Always stored
/// canonically (u <= v is NOT enforced here; use MakeEdgeKey for identity).
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  Edge() = default;
  Edge(NodeId a, NodeId b) : u(a), v(b) {}

  /// Canonical key of this edge.
  EdgeKey Key() const { return MakeEdgeKey(u, v); }

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.Key() == b.Key();
  }
};

inline std::ostream& operator<<(std::ostream& os, const Edge& e) {
  return os << "(" << e.u << "," << e.v << ")";
}

}  // namespace tpp::graph

namespace std {
template <>
struct hash<tpp::graph::Edge> {
  size_t operator()(const tpp::graph::Edge& e) const {
    return std::hash<uint64_t>()(e.Key());
  }
};
}  // namespace std

#endif  // TPP_GRAPH_EDGE_H_
