// Random graph generators.
//
// The paper's building-principle references ([16] Barabási–Albert,
// [17] Watts–Strogatz, [18] Erdős–Rényi, [19] configuration model) are all
// implemented here, plus the Holme–Kim power-law-cluster model and a
// community-clique co-authorship model used to synthesize the evaluation
// datasets (see datasets.h and DESIGN.md §4).

#ifndef TPP_GRAPH_GENERATORS_H_
#define TPP_GRAPH_GENERATORS_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace tpp::graph {

/// Erdős–Rényi G(n, m): exactly m distinct uniform random edges.
/// Errors if m exceeds n*(n-1)/2.
Result<Graph> ErdosRenyiGnm(size_t n, size_t m, Rng& rng);

/// Erdős–Rényi G(n, p): each pair independently with probability p.
/// Uses geometric skipping, O(n + m) expected.
Result<Graph> ErdosRenyiGnp(size_t n, double p, Rng& rng);

/// Barabási–Albert preferential attachment: start from a clique of
/// m0 = m + 1 seed nodes, then each new node attaches to m distinct
/// existing nodes chosen proportionally to degree.
/// Requires 1 <= m < n.
Result<Graph> BarabasiAlbert(size_t n, size_t m, Rng& rng);

/// Holme–Kim power-law-cluster model: Barabási–Albert growth where after
/// each preferential attachment step, with probability `triad_p`, the next
/// link closes a triangle with a random neighbor of the previous target.
/// Produces scale-free graphs with tunable clustering — our Arenas-email
/// stand-in. Requires 1 <= m < n and 0 <= triad_p <= 1.
Result<Graph> HolmeKim(size_t n, size_t m, double triad_p, Rng& rng);

/// Watts–Strogatz small world: ring lattice with k neighbors per node
/// (k even), each edge rewired with probability beta (avoiding self-loops
/// and duplicates; rewiring is skipped when no legal endpoint exists).
Result<Graph> WattsStrogatz(size_t n, size_t k, double beta, Rng& rng);

/// Configuration model for a given degree sequence: random stub matching
/// with self-loop/multi-edge rejection by discarding offending pairs
/// (erased configuration model). The realized degree sequence may therefore
/// be slightly below the request. Degree sum must be even.
Result<Graph> ConfigurationModel(const std::vector<size_t>& degrees,
                                 Rng& rng);

/// Parameters of the community-clique co-authorship model.
struct CoauthorshipParams {
  size_t num_authors = 1000;    ///< node count
  size_t num_papers = 1500;     ///< number of collaboration events
  size_t min_authors = 2;       ///< min authors per paper
  size_t max_authors = 5;       ///< max authors per paper (clique size)
  /// Probability that a paper's author is recruited preferentially by the
  /// number of papers already written (rich-get-richer); otherwise uniform.
  double preferential_p = 0.75;
  /// Probability that a non-lead author slot is filled by a never-published
  /// author (a "student"). High values make most authors one-paper authors
  /// whose neighborhood is a single clique, which is what drives the very
  /// high clustering of real co-authorship graphs.
  double fresh_p = 0.0;
};

/// Community-clique co-authorship model: each "paper" adds a clique over a
/// small author set recruited preferentially. Produces the clique-heavy,
/// high-clustering structure of real co-authorship networks — our DBLP
/// stand-in. Isolated authors (no papers) remain isolated nodes.
Result<Graph> Coauthorship(const CoauthorshipParams& params, Rng& rng);

/// Samples a power-law degree-like sequence with exponent gamma in
/// [min_degree, max_degree], adjusting the last element to make the sum
/// even (for ConfigurationModel).
std::vector<size_t> PowerLawDegreeSequence(size_t n, double gamma,
                                           size_t min_degree,
                                           size_t max_degree, Rng& rng);

}  // namespace tpp::graph

#endif  // TPP_GRAPH_GENERATORS_H_
