#include "graph/relabel.h"

#include <numeric>

#include "common/strings.h"

namespace tpp::graph {

Result<RelabeledGraph> RelabelNodes(const Graph& g,
                                    const std::vector<NodeId>& permutation) {
  const size_t n = g.NumNodes();
  if (permutation.size() != n) {
    return Status::InvalidArgument(
        StrFormat("permutation size %zu != node count %zu",
                  permutation.size(), n));
  }
  std::vector<uint8_t> seen(n, 0);
  for (NodeId p : permutation) {
    if (p >= n || seen[p]) {
      return Status::InvalidArgument("not a permutation of 0..n-1");
    }
    seen[p] = 1;
  }
  RelabeledGraph out;
  out.new_id = permutation;
  out.graph = Graph(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (u < v) {
        Status s = out.graph.AddEdge(permutation[u], permutation[v]);
        TPP_CHECK(s.ok());
      }
    }
  }
  return out;
}

RelabeledGraph RandomRelabel(const Graph& g, Rng& rng) {
  std::vector<NodeId> permutation(g.NumNodes());
  std::iota(permutation.begin(), permutation.end(), 0);
  rng.Shuffle(permutation);
  Result<RelabeledGraph> out = RelabelNodes(g, permutation);
  TPP_CHECK(out.ok());  // a shuffled iota is always a permutation
  return *std::move(out);
}

}  // namespace tpp::graph
