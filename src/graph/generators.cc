#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/strings.h"

namespace tpp::graph {

Result<Graph> ErdosRenyiGnm(size_t n, size_t m, Rng& rng) {
  size_t max_edges = n * (n - 1) / 2;
  if (m > max_edges) {
    return Status::InvalidArgument(
        StrFormat("G(n,m): m=%zu exceeds max %zu for n=%zu", m, max_edges, n));
  }
  Graph g(n);
  std::unordered_set<EdgeKey> used;
  used.reserve(m * 2);
  while (g.NumEdges() < m) {
    NodeId u = static_cast<NodeId>(rng.UniformIndex(n));
    NodeId v = static_cast<NodeId>(rng.UniformIndex(n));
    if (u == v) continue;
    EdgeKey key = MakeEdgeKey(u, v);
    if (!used.insert(key).second) continue;
    Status s = g.AddEdge(u, v);
    TPP_CHECK(s.ok());
  }
  return g;
}

Result<Graph> ErdosRenyiGnp(size_t n, double p, Rng& rng) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument(StrFormat("G(n,p): p=%f out of [0,1]", p));
  }
  Graph g(n);
  if (p == 0.0 || n < 2) return g;
  if (p == 1.0) {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        Status s = g.AddEdge(u, v);
        TPP_CHECK(s.ok());
      }
    }
    return g;
  }
  // Geometric skipping over the lexicographic pair enumeration.
  const double log_q = std::log(1.0 - p);
  int64_t v = 1;
  int64_t u = -1;
  const int64_t nn = static_cast<int64_t>(n);
  while (v < nn) {
    double r = 1.0 - rng.UniformReal();  // in (0, 1]
    u += 1 + static_cast<int64_t>(std::floor(std::log(r) / log_q));
    while (u >= v && v < nn) {
      u -= v;
      ++v;
    }
    if (v < nn) {
      Status s = g.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
      TPP_CHECK(s.ok());
    }
  }
  return g;
}

namespace {

// Degree-proportional sampling via the repeated-endpoints trick: keep a
// vector with every edge endpoint; a uniform draw from it is a
// degree-weighted node draw.
class EndpointSampler {
 public:
  void Add(NodeId u) { endpoints_.push_back(u); }
  NodeId Sample(Rng& rng) const {
    TPP_CHECK(!endpoints_.empty());
    return endpoints_[rng.UniformIndex(endpoints_.size())];
  }
  bool empty() const { return endpoints_.empty(); }

 private:
  std::vector<NodeId> endpoints_;
};

}  // namespace

Result<Graph> BarabasiAlbert(size_t n, size_t m, Rng& rng) {
  if (m < 1 || m >= n) {
    return Status::InvalidArgument(
        StrFormat("BA: need 1 <= m < n, got m=%zu n=%zu", m, n));
  }
  Graph g(n);
  EndpointSampler sampler;
  size_t m0 = m + 1;  // seed clique
  for (NodeId u = 0; u < m0; ++u) {
    for (NodeId v = u + 1; v < m0; ++v) {
      Status s = g.AddEdge(u, v);
      TPP_CHECK(s.ok());
      sampler.Add(u);
      sampler.Add(v);
    }
  }
  for (NodeId w = static_cast<NodeId>(m0); w < n; ++w) {
    std::unordered_set<NodeId> chosen;
    while (chosen.size() < m) {
      NodeId t = sampler.Sample(rng);
      if (t != w) chosen.insert(t);
    }
    for (NodeId t : chosen) {
      Status s = g.AddEdge(w, t);
      TPP_CHECK(s.ok());
      sampler.Add(w);
      sampler.Add(t);
    }
  }
  return g;
}

Result<Graph> HolmeKim(size_t n, size_t m, double triad_p, Rng& rng) {
  if (m < 1 || m >= n) {
    return Status::InvalidArgument(
        StrFormat("HolmeKim: need 1 <= m < n, got m=%zu n=%zu", m, n));
  }
  if (triad_p < 0.0 || triad_p > 1.0) {
    return Status::InvalidArgument(
        StrFormat("HolmeKim: triad_p=%f out of [0,1]", triad_p));
  }
  Graph g(n);
  EndpointSampler sampler;
  size_t m0 = m + 1;
  for (NodeId u = 0; u < m0; ++u) {
    for (NodeId v = u + 1; v < m0; ++v) {
      Status s = g.AddEdge(u, v);
      TPP_CHECK(s.ok());
      sampler.Add(u);
      sampler.Add(v);
    }
  }
  for (NodeId w = static_cast<NodeId>(m0); w < n; ++w) {
    NodeId prev_target = 0;
    bool have_prev = false;
    size_t added = 0;
    // Guard against pathological loops on tiny graphs.
    size_t attempts = 0;
    const size_t max_attempts = 200 * m + 1000;
    while (added < m && attempts++ < max_attempts) {
      NodeId t = 0;
      bool ok = false;
      if (have_prev && rng.Bernoulli(triad_p)) {
        // Triad-formation step: link to a random neighbor of prev_target.
        auto nbrs = g.Neighbors(prev_target);
        if (!nbrs.empty()) {
          t = nbrs[rng.UniformIndex(nbrs.size())];
          ok = (t != w) && !g.HasEdge(w, t);
        }
      }
      if (!ok) {
        // Preferential-attachment step.
        t = sampler.Sample(rng);
        ok = (t != w) && !g.HasEdge(w, t);
      }
      if (!ok) continue;
      Status s = g.AddEdge(w, t);
      TPP_CHECK(s.ok());
      sampler.Add(w);
      sampler.Add(t);
      prev_target = t;
      have_prev = true;
      ++added;
    }
  }
  return g;
}

Result<Graph> WattsStrogatz(size_t n, size_t k, double beta, Rng& rng) {
  if (k % 2 != 0 || k == 0 || k >= n) {
    return Status::InvalidArgument(
        StrFormat("WS: need even 0 < k < n, got k=%zu n=%zu", k, n));
  }
  if (beta < 0.0 || beta > 1.0) {
    return Status::InvalidArgument(StrFormat("WS: beta=%f out of [0,1]", beta));
  }
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (size_t j = 1; j <= k / 2; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % n);
      if (!g.HasEdge(u, v)) {
        Status s = g.AddEdge(u, v);
        TPP_CHECK(s.ok());
      }
    }
  }
  // Rewire each original lattice edge (u, u+j) with probability beta.
  for (NodeId u = 0; u < n; ++u) {
    for (size_t j = 1; j <= k / 2; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % n);
      if (!rng.Bernoulli(beta)) continue;
      if (!g.HasEdge(u, v)) continue;  // already rewired away
      // Find a replacement endpoint w: w != u, no existing edge (u, w).
      if (g.Degree(u) >= n - 1) continue;  // u saturated, nothing legal
      NodeId w;
      do {
        w = static_cast<NodeId>(rng.UniformIndex(n));
      } while (w == u || g.HasEdge(u, w));
      Status rs = g.RemoveEdge(u, v);
      TPP_CHECK(rs.ok());
      Status as = g.AddEdge(u, w);
      TPP_CHECK(as.ok());
    }
  }
  return g;
}

Result<Graph> ConfigurationModel(const std::vector<size_t>& degrees,
                                 Rng& rng) {
  size_t sum = 0;
  for (size_t d : degrees) sum += d;
  if (sum % 2 != 0) {
    return Status::InvalidArgument("configuration model: odd degree sum");
  }
  std::vector<NodeId> stubs;
  stubs.reserve(sum);
  for (NodeId u = 0; u < degrees.size(); ++u) {
    for (size_t i = 0; i < degrees[u]; ++i) stubs.push_back(u);
  }
  rng.Shuffle(stubs);
  Graph g(degrees.size());
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    NodeId u = stubs[i], v = stubs[i + 1];
    if (u == v || g.HasEdge(u, v)) continue;  // erased configuration model
    Status s = g.AddEdge(u, v);
    TPP_CHECK(s.ok());
  }
  return g;
}

Result<Graph> Coauthorship(const CoauthorshipParams& params, Rng& rng) {
  if (params.num_authors == 0) {
    return Status::InvalidArgument("coauthorship: zero authors");
  }
  if (params.min_authors < 2 || params.min_authors > params.max_authors) {
    return Status::InvalidArgument(
        "coauthorship: need 2 <= min_authors <= max_authors");
  }
  if (params.max_authors > params.num_authors) {
    return Status::InvalidArgument(
        "coauthorship: max_authors exceeds author count");
  }
  if (params.preferential_p < 0.0 || params.preferential_p > 1.0) {
    return Status::InvalidArgument("coauthorship: preferential_p out of [0,1]");
  }
  if (params.fresh_p < 0.0 || params.fresh_p > 1.0) {
    return Status::InvalidArgument("coauthorship: fresh_p out of [0,1]");
  }
  Graph g(params.num_authors);
  // Paper-count endpoints: a uniform draw from this vector is a draw
  // proportional to (1 + papers written), seeding every author once so
  // newcomers can enter.
  std::vector<NodeId> activity;
  activity.reserve(params.num_authors + params.num_papers * 4);
  for (NodeId a = 0; a < params.num_authors; ++a) activity.push_back(a);
  // Shuffled id pool from which "fresh" (never published) authors are drawn
  // in order; node ids carry no meaning, so this is uniform without
  // replacement.
  std::vector<NodeId> fresh_pool(params.num_authors);
  for (NodeId a = 0; a < params.num_authors; ++a) fresh_pool[a] = a;
  rng.Shuffle(fresh_pool);
  size_t next_fresh = 0;
  std::vector<uint8_t> published(params.num_authors, 0);

  std::vector<NodeId> authors;
  for (size_t paper = 0; paper < params.num_papers; ++paper) {
    size_t team = params.min_authors +
                  rng.UniformIndex(params.max_authors - params.min_authors + 1);
    authors.clear();
    std::unordered_set<NodeId> seen;
    size_t guard = 0;
    while (authors.size() < team && guard++ < 100 * team + 100) {
      NodeId a;
      // The first slot is the "lead" (always a returning/weighted pick);
      // later slots may recruit a fresh author.
      bool want_fresh = !authors.empty() && rng.Bernoulli(params.fresh_p);
      if (want_fresh) {
        while (next_fresh < fresh_pool.size() &&
               published[fresh_pool[next_fresh]]) {
          ++next_fresh;
        }
        if (next_fresh < fresh_pool.size()) {
          a = fresh_pool[next_fresh++];
        } else {
          want_fresh = false;  // everyone has published; fall through
        }
      }
      if (!want_fresh) {
        if (rng.Bernoulli(params.preferential_p)) {
          a = activity[rng.UniformIndex(activity.size())];
        } else {
          a = static_cast<NodeId>(rng.UniformIndex(params.num_authors));
        }
      }
      if (seen.insert(a).second) authors.push_back(a);
    }
    for (NodeId a : authors) published[a] = 1;
    // Clique over the team.
    for (size_t i = 0; i < authors.size(); ++i) {
      for (size_t j = i + 1; j < authors.size(); ++j) {
        if (!g.HasEdge(authors[i], authors[j])) {
          Status s = g.AddEdge(authors[i], authors[j]);
          TPP_CHECK(s.ok());
        }
      }
      activity.push_back(authors[i]);
    }
  }
  return g;
}

std::vector<size_t> PowerLawDegreeSequence(size_t n, double gamma,
                                           size_t min_degree,
                                           size_t max_degree, Rng& rng) {
  TPP_CHECK_GE(min_degree, 1u);
  TPP_CHECK_LE(min_degree, max_degree);
  TPP_CHECK_GT(gamma, 1.0);
  // Inverse-transform sampling of P(d) ~ d^-gamma on [min, max].
  std::vector<size_t> degrees(n);
  const double a = 1.0 - gamma;
  const double lo = std::pow(static_cast<double>(min_degree), a);
  const double hi = std::pow(static_cast<double>(max_degree) + 1.0, a);
  size_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    double u = rng.UniformReal();
    double d = std::pow(lo + u * (hi - lo), 1.0 / a);
    size_t di = std::min<size_t>(
        max_degree, std::max<size_t>(min_degree, static_cast<size_t>(d)));
    degrees[i] = di;
    sum += di;
  }
  if (sum % 2 != 0) {
    // Bump one node by +-1 within bounds to even the sum.
    for (size_t i = 0; i < n; ++i) {
      if (degrees[i] < max_degree) {
        ++degrees[i];
        break;
      }
      if (degrees[i] > min_degree) {
        --degrees[i];
        break;
      }
    }
  }
  return degrees;
}

}  // namespace tpp::graph
