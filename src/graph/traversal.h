// Breadth-first traversal utilities: distances, components.

#ifndef TPP_GRAPH_TRAVERSAL_H_
#define TPP_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tpp::graph {

/// Distance value for unreachable nodes.
inline constexpr int32_t kUnreachable = -1;

/// BFS hop distances from `source` to every node (kUnreachable if not
/// connected to source). O(n + m).
std::vector<int32_t> BfsDistances(const Graph& g, NodeId source);

/// Connected-component labels in [0, num_components); label order follows
/// the smallest node id in each component.
struct Components {
  std::vector<int32_t> label;   ///< per-node component id
  size_t num_components = 0;    ///< total number of components
  std::vector<size_t> sizes;    ///< per-component node counts
};

/// Computes connected components via BFS. O(n + m).
Components ConnectedComponents(const Graph& g);

/// Node ids of the largest connected component (ties broken by lowest
/// component label).
std::vector<NodeId> LargestComponent(const Graph& g);

/// True iff the graph is connected (and non-empty).
bool IsConnected(const Graph& g);

}  // namespace tpp::graph

#endif  // TPP_GRAPH_TRAVERSAL_H_
