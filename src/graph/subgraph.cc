#include "graph/subgraph.h"

#include <algorithm>
#include <unordered_map>

#include "common/strings.h"
#include "graph/traversal.h"

namespace tpp::graph {

Result<InducedSubgraph> ExtractInducedSubgraph(
    const Graph& g, const std::vector<NodeId>& nodes) {
  InducedSubgraph out;
  std::unordered_map<NodeId, NodeId> to_new;
  to_new.reserve(nodes.size() * 2);
  for (NodeId v : nodes) {
    if (v >= g.NumNodes()) {
      return Status::InvalidArgument(
          StrFormat("node %u out of range (n=%zu)", v, g.NumNodes()));
    }
    if (to_new.emplace(v, static_cast<NodeId>(out.to_original.size()))
            .second) {
      out.to_original.push_back(v);
    }
  }
  out.graph = Graph(out.to_original.size());
  for (NodeId new_u = 0; new_u < out.to_original.size(); ++new_u) {
    NodeId old_u = out.to_original[new_u];
    for (NodeId old_v : g.Neighbors(old_u)) {
      auto it = to_new.find(old_v);
      if (it == to_new.end()) continue;
      NodeId new_v = it->second;
      if (new_u < new_v) {
        Status s = out.graph.AddEdge(new_u, new_v);
        TPP_CHECK(s.ok());
      }
    }
  }
  return out;
}

std::vector<NodeId> KHopNeighborhood(const Graph& g, NodeId center,
                                     size_t hops) {
  std::vector<NodeId> out;
  if (center >= g.NumNodes()) return out;
  std::vector<int32_t> dist = BfsDistances(g, center);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (dist[v] != kUnreachable &&
        dist[v] <= static_cast<int32_t>(hops)) {
      out.push_back(v);
    }
  }
  return out;  // BFS order by id scan: already ascending
}

Result<InducedSubgraph> ExtractEgoNetwork(const Graph& g, NodeId center,
                                          size_t hops) {
  if (center >= g.NumNodes()) {
    return Status::InvalidArgument(
        StrFormat("node %u out of range (n=%zu)", center, g.NumNodes()));
  }
  return ExtractInducedSubgraph(g, KHopNeighborhood(g, center, hops));
}

}  // namespace tpp::graph
