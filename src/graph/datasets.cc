#include "graph/datasets.h"

#include <cmath>

#include "common/strings.h"
#include "graph/generators.h"

namespace tpp::graph {

DatasetProfile ArenasEmailProfile() { return {1133, 5451, 0.22}; }

DatasetProfile DblpProfile() { return {317080, 1049866, 0.63}; }

Result<Graph> MakeArenasEmailLike(uint64_t seed) {
  DatasetProfile profile = ArenasEmailProfile();
  Rng rng(seed);
  TPP_ASSIGN_OR_RETURN(Graph g,
                       HolmeKim(profile.num_nodes, /*m=*/5,
                                /*triad_p=*/0.35, rng));
  // Holme-Kim with m=5 yields ~5650 edges; thin uniformly to the published
  // edge count so densities (and thus motif counts) are comparable.
  std::vector<Edge> edges = g.Edges();
  while (g.NumEdges() > profile.num_edges) {
    size_t i = rng.UniformIndex(edges.size());
    if (g.HasEdge(edges[i].u, edges[i].v)) {
      Status s = g.RemoveEdge(edges[i].u, edges[i].v);
      TPP_CHECK(s.ok());
    }
    edges[i] = edges.back();
    edges.pop_back();
  }
  return g;
}

Result<Graph> MakeDblpLike(uint64_t seed, double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument(
        StrFormat("MakeDblpLike: scale=%f out of (0,1]", scale));
  }
  DatasetProfile profile = DblpProfile();
  Rng rng(seed);
  CoauthorshipParams params;
  params.num_authors =
      std::max<size_t>(50, static_cast<size_t>(profile.num_nodes * scale));
  // Calibrated against the published DBLP profile (avg degree 6.62,
  // clustering ~0.63): papers are 3-6 author cliques, ~70% of non-lead
  // slots recruit a never-published author, and the papers/author ratio
  // sets the density.
  params.num_papers = static_cast<size_t>(params.num_authors * 0.40);
  params.min_authors = 3;
  params.max_authors = 6;
  params.preferential_p = 0.70;
  params.fresh_p = 0.70;
  return Coauthorship(params, rng);
}

}  // namespace tpp::graph
