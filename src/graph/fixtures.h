// Known-answer graph fixtures used across tests and examples.

#ifndef TPP_GRAPH_FIXTURES_H_
#define TPP_GRAPH_FIXTURES_H_

#include <vector>

#include "graph/graph.h"

namespace tpp::graph {

/// Path graph 0-1-...-(n-1).
Graph MakePath(size_t n);

/// Cycle graph on n >= 3 nodes.
Graph MakeCycle(size_t n);

/// Complete graph K_n.
Graph MakeComplete(size_t n);

/// Star with center 0 and n-1 leaves.
Graph MakeStar(size_t n);

/// Zachary's karate club: 34 nodes, 78 edges (0-indexed). The canonical
/// small social network with known clustering, modularity, and core
/// structure; used as a known-answer fixture for the utility metrics.
Graph MakeKarateClub();

/// The gadget of paper Fig. 7 used in the Extended Discussion to show that
/// Jaccard/Salton/Sørensen/HP/HD/LHN/AA/RA dissimilarities are not
/// monotone. Node ids are exposed as constants below; the target link
/// (u,v) is NOT part of the graph (it is the hidden link).
struct Fig7Gadget {
  Graph graph;         ///< graph without the target link
  NodeId u, v;         ///< target endpoints
  NodeId a, b, c, d, e;  ///< auxiliary nodes
  Edge p1, p2, p3, p4;   ///< the protector edges referenced by the paper
};
Fig7Gadget MakeFig7Gadget();

/// A worked example with the same SGB/CT/WT behaviour as paper Fig. 2:
/// five targets protected with the Triangle motif where the realized
/// dissimilarity gains are exactly SGB-Greedy(k=2)=5, CT-Greedy=4 and
/// WT-Greedy=3 under per-target budgets {t1:1, t2:1}.
struct Fig2StyleExample {
  Graph graph;                 ///< graph with targets already removed
  std::vector<Edge> targets;   ///< t1..t5 (not present in `graph`)
  Edge p1, p2, p3, p4;         ///< the distinguished protector edges
};
Fig2StyleExample MakeFig2StyleExample();

}  // namespace tpp::graph

#endif  // TPP_GRAPH_FIXTURES_H_
