#include "graph/traversal.h"

#include <algorithm>
#include <queue>

namespace tpp::graph {

std::vector<int32_t> BfsDistances(const Graph& g, NodeId source) {
  std::vector<int32_t> dist(g.NumNodes(), kUnreachable);
  if (source >= g.NumNodes()) return dist;
  std::vector<NodeId> frontier = {source};
  dist[source] = 0;
  int32_t level = 0;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId v : g.Neighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

Components ConnectedComponents(const Graph& g) {
  Components c;
  c.label.assign(g.NumNodes(), -1);
  for (NodeId s = 0; s < g.NumNodes(); ++s) {
    if (c.label[s] != -1) continue;
    int32_t id = static_cast<int32_t>(c.num_components++);
    c.sizes.push_back(0);
    std::queue<NodeId> q;
    q.push(s);
    c.label[s] = id;
    while (!q.empty()) {
      NodeId u = q.front();
      q.pop();
      ++c.sizes[id];
      for (NodeId v : g.Neighbors(u)) {
        if (c.label[v] == -1) {
          c.label[v] = id;
          q.push(v);
        }
      }
    }
  }
  return c;
}

std::vector<NodeId> LargestComponent(const Graph& g) {
  Components c = ConnectedComponents(g);
  std::vector<NodeId> out;
  if (c.num_components == 0) return out;
  size_t best = 0;
  for (size_t i = 1; i < c.num_components; ++i) {
    if (c.sizes[i] > c.sizes[best]) best = i;
  }
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (c.label[u] == static_cast<int32_t>(best)) out.push_back(u);
  }
  return out;
}

bool IsConnected(const Graph& g) {
  if (g.NumNodes() == 0) return false;
  return ConnectedComponents(g).num_components == 1;
}

}  // namespace tpp::graph
