#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/strings.h"

namespace tpp::graph {

Result<Graph> ParseEdgeList(const std::string& text,
                            const EdgeListOptions& options) {
  std::vector<std::pair<int64_t, int64_t>> raw;
  int64_t max_id = -1;
  size_t line_no = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = StripWhitespace(line);
    if (sv.empty()) continue;
    if (options.comment_prefixes.find(sv[0]) != std::string::npos) continue;
    std::vector<std::string_view> parts = SplitNonEmpty(sv, " \t,");
    if (parts.size() < 2) {
      return Status::InvalidArgument(
          StrFormat("line %zu: expected at least two columns", line_no));
    }
    Result<int64_t> u = ParseInt64(parts[0]);
    Result<int64_t> v = ParseInt64(parts[1]);
    if (!u.ok()) return u.status();
    if (!v.ok()) return v.status();
    if (*u < 0 || *v < 0) {
      return Status::InvalidArgument(
          StrFormat("line %zu: negative node id", line_no));
    }
    raw.emplace_back(*u, *v);
    max_id = std::max({max_id, *u, *v});
  }

  std::vector<Edge> edges;
  edges.reserve(raw.size());
  size_t num_nodes = 0;
  if (options.remap_ids) {
    // Rank ids in increasing order so the remap depends only on the id
    // SET, not on line order: a file whose ids are already dense 0..n-1
    // loads with its labels unchanged, which keeps save -> load round
    // trips (and therefore graph fingerprints) stable.
    std::vector<int64_t> ids;
    ids.reserve(raw.size() * 2);
    for (auto [u, v] : raw) {
      ids.push_back(u);
      ids.push_back(v);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    std::unordered_map<int64_t, NodeId> remap;
    remap.reserve(ids.size() * 2);
    for (size_t rank = 0; rank < ids.size(); ++rank) {
      remap.emplace(ids[rank], static_cast<NodeId>(rank));
    }
    for (auto [u, v] : raw) {
      edges.emplace_back(remap.at(u), remap.at(v));
    }
    num_nodes = ids.size();
  } else {
    for (auto [u, v] : raw) {
      edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
    }
    num_nodes = static_cast<size_t>(max_id + 1);
  }

  if (options.lenient) return BuildGraphLenient(num_nodes, edges);
  return BuildGraph(num_nodes, edges);
}

Result<Graph> LoadEdgeList(const std::string& path,
                           const EdgeListOptions& options) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseEdgeList(buf.str(), options);
}

std::string ToEdgeListString(const Graph& g) {
  std::string out =
      StrFormat("# undirected simple graph: %zu nodes, %zu edges\n",
                g.NumNodes(), g.NumEdges());
  for (const Edge& e : g.Edges()) {
    out += StrFormat("%u %u\n", e.u, e.v);
  }
  return out;
}

Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IoError("cannot open " + path + " for writing");
  f << ToEdgeListString(g);
  if (!f.good()) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace tpp::graph
