#include "graph/fixtures.h"

#include "common/check.h"

namespace tpp::graph {

namespace {

void MustAdd(Graph& g, NodeId u, NodeId v) {
  Status s = g.AddEdge(u, v);
  TPP_CHECK(s.ok());
}

}  // namespace

Graph MakePath(size_t n) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) MustAdd(g, i, i + 1);
  return g;
}

Graph MakeCycle(size_t n) {
  TPP_CHECK_GE(n, 3u);
  Graph g = MakePath(n);
  MustAdd(g, 0, static_cast<NodeId>(n - 1));
  return g;
}

Graph MakeComplete(size_t n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) MustAdd(g, u, v);
  }
  return g;
}

Graph MakeStar(size_t n) {
  TPP_CHECK_GE(n, 1u);
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) MustAdd(g, 0, v);
  return g;
}

Graph MakeKarateClub() {
  // 1-indexed edge list from Zachary (1977), shifted to 0-indexed.
  static constexpr int kEdges[][2] = {
      {1, 2},   {1, 3},   {1, 4},   {1, 5},   {1, 6},   {1, 7},   {1, 8},
      {1, 9},   {1, 11},  {1, 12},  {1, 13},  {1, 14},  {1, 18},  {1, 20},
      {1, 22},  {1, 32},  {2, 3},   {2, 4},   {2, 8},   {2, 14},  {2, 18},
      {2, 20},  {2, 22},  {2, 31},  {3, 4},   {3, 8},   {3, 9},   {3, 10},
      {3, 14},  {3, 28},  {3, 29},  {3, 33},  {4, 8},   {4, 13},  {4, 14},
      {5, 7},   {5, 11},  {6, 7},   {6, 11},  {6, 17},  {7, 17},  {9, 31},
      {9, 33},  {9, 34},  {10, 34}, {14, 34}, {15, 33}, {15, 34}, {16, 33},
      {16, 34}, {19, 33}, {19, 34}, {20, 34}, {21, 33}, {21, 34}, {23, 33},
      {23, 34}, {24, 26}, {24, 28}, {24, 30}, {24, 33}, {24, 34}, {25, 26},
      {25, 28}, {25, 32}, {26, 32}, {27, 30}, {27, 34}, {28, 34}, {29, 32},
      {29, 34}, {30, 33}, {30, 34}, {31, 33}, {31, 34}, {32, 33}, {32, 34},
      {33, 34},
  };
  Graph g(34);
  for (const auto& e : kEdges) {
    MustAdd(g, static_cast<NodeId>(e[0] - 1), static_cast<NodeId>(e[1] - 1));
  }
  TPP_CHECK_EQ(g.NumEdges(), 78u);
  return g;
}

Fig7Gadget MakeFig7Gadget() {
  // Nodes: u, v (target endpoints), common neighbors a (deg 3) and
  // b (deg 4), plus u-side neighbors c, d and v-side neighbor e.
  Fig7Gadget fx{Graph(7), 0, 1, 2, 3, 4, 5, 6, {}, {}, {}, {}};
  Graph& g = fx.graph;
  const NodeId u = fx.u, v = fx.v, a = fx.a, b = fx.b, c = fx.c, d = fx.d,
               e = fx.e;
  MustAdd(g, u, a);  // p2 in the paper's cases
  MustAdd(g, u, b);
  MustAdd(g, u, c);
  MustAdd(g, u, d);  // p4: deleting drops du to 3
  MustAdd(g, v, a);
  MustAdd(g, v, b);
  MustAdd(g, v, e);  // p3: deleting drops dv to 2 / union to 4
  MustAdd(g, a, c);  // p1: changes only deg(a), invisible to Jaccard et al.
  MustAdd(g, b, d);
  MustAdd(g, b, e);
  fx.p1 = Edge(a, c);
  fx.p2 = Edge(u, a);
  fx.p3 = Edge(v, e);
  fx.p4 = Edge(u, d);
  return fx;
}

Fig2StyleExample MakeFig2StyleExample() {
  // Construction (triangle motif; see tests/paper_examples_test.cc for the
  // full derivation): targets t1=(a,c1), t2=(a,c2), t3=(b,z1), t4=(b,z2),
  // t5=(b,z3). Target triangles after phase-1:
  //   t1: {p1,q1}           p1=(a,b)   q1=(b,c1)
  //   t2: {p1,p2}, {p4,q3}  p2=(b,c2)  p4=(a,e)  q3=(e,c2)
  //   t3: {p2,q4}           q4=(c2,z1)
  //   t4: {p2,q5}, {p3,q6}  q5=(c2,z2) p3=(b,y)  q6=(y,z2)
  //   t5: {p3,q7}           q7=(y,z3)
  // SGB(k=2) deletes p2 then p3/p1 for total gain 5; CT with budgets
  // {t1:1, t2:1} gains 4; WT gains 3 — matching the paper's Fig. 2 numbers.
  const NodeId a = 0, b = 1, c1 = 2, c2 = 3, e = 4, z1 = 5, z2 = 6, z3 = 7,
               y = 8;
  Fig2StyleExample fx;
  fx.graph = Graph(9);
  Graph& g = fx.graph;
  MustAdd(g, a, b);    // p1
  MustAdd(g, b, c1);   // q1
  MustAdd(g, b, c2);   // p2
  MustAdd(g, a, e);    // p4
  MustAdd(g, e, c2);   // q3
  MustAdd(g, c2, z1);  // q4
  MustAdd(g, c2, z2);  // q5
  MustAdd(g, b, y);    // p3
  MustAdd(g, y, z2);   // q6
  MustAdd(g, y, z3);   // q7
  fx.targets = {Edge(a, c1), Edge(a, c2), Edge(b, z1), Edge(b, z2),
                Edge(b, z3)};
  fx.p1 = Edge(a, b);
  fx.p2 = Edge(b, c2);
  fx.p3 = Edge(b, y);
  fx.p4 = Edge(a, e);
  return fx;
}

}  // namespace tpp::graph
