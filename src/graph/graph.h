// Graph: undirected simple graph with sorted adjacency lists.
//
// This is the substrate every other module builds on. The representation is
// tuned for the access patterns of the TPP algorithms:
//   * neighbor scans and sorted-set intersections (motif enumeration),
//   * O(log d) edge-existence queries,
//   * repeated edge deletions (protector removal) with O(d) cost,
//   * cheap whole-graph copies so experiments can perturb a working copy.

#ifndef TPP_GRAPH_GRAPH_H_
#define TPP_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/edge.h"

namespace tpp::graph {

/// The normalized outcome of one committed edit session: the NET edge
/// changes relative to the pre-commit graph. Both lists hold canonical
/// (u < v) edges, sorted ascending by key, duplicate-free and disjoint —
/// an edge inserted and removed inside the same session cancels out and
/// appears in neither. Consumers (fingerprint update, index repair, cache
/// invalidation) rely on exactly this contract.
struct GraphDelta {
  std::vector<Edge> inserted;
  std::vector<Edge> removed;

  bool empty() const { return inserted.empty() && removed.empty(); }
  size_t size() const { return inserted.size() + removed.size(); }
};

/// Mutable undirected simple graph on nodes 0..NumNodes()-1.
///
/// Self-loops and parallel edges are rejected. Adjacency lists are kept
/// sorted ascending at all times, so HasEdge is a binary search and
/// CommonNeighbors is a linear merge.
class Graph {
 public:
  /// Creates an empty graph with `num_nodes` isolated nodes.
  explicit Graph(size_t num_nodes = 0) : adj_(num_nodes) {}

  /// Number of nodes (fixed at construction; see AddNode).
  size_t NumNodes() const { return adj_.size(); }

  /// Number of undirected edges currently present.
  size_t NumEdges() const { return num_edges_; }

  /// Appends one isolated node and returns its id.
  NodeId AddNode();

  /// Inserts edge {u,v}. Errors: InvalidArgument for self-loops or ids out
  /// of range, AlreadyExists if the edge is present.
  Status AddEdge(NodeId u, NodeId v);

  /// Removes edge {u,v}. Errors: InvalidArgument for ids out of range,
  /// NotFound if the edge is absent.
  Status RemoveEdge(NodeId u, NodeId v);

  /// Removes edge by key; same contract as RemoveEdge(u, v).
  Status RemoveEdgeKey(EdgeKey key) {
    return RemoveEdge(EdgeKeyU(key), EdgeKeyV(key));
  }

  /// True iff edge {u,v} is present. Out-of-range ids return false.
  bool HasEdge(NodeId u, NodeId v) const;

  /// True iff the packed edge is present.
  bool HasEdgeKey(EdgeKey key) const {
    return HasEdge(EdgeKeyU(key), EdgeKeyV(key));
  }

  /// Degree of node u. Requires u < NumNodes().
  size_t Degree(NodeId u) const { return adj_[u].size(); }

  /// Sorted neighbor list of node u as a read-only view. The view is
  /// invalidated by any mutation of the graph.
  std::span<const NodeId> Neighbors(NodeId u) const {
    return std::span<const NodeId>(adj_[u]);
  }

  /// Sorted common neighbors of u and v (linear merge of two sorted lists).
  std::vector<NodeId> CommonNeighbors(NodeId u, NodeId v) const;

  /// Number of common neighbors without materializing them.
  size_t CountCommonNeighbors(NodeId u, NodeId v) const;

  /// Invokes `fn(w)` for every common neighbor w of u and v, in ascending
  /// order, without materializing a vector — the allocation-free form of
  /// CommonNeighbors the motif-enumeration hot path uses. Requires
  /// u, v < NumNodes(). `fn` must not mutate the graph.
  template <typename Fn>
  void ForEachCommonNeighbor(NodeId u, NodeId v, Fn&& fn) const {
    const std::vector<NodeId>& a = adj_[u];
    const std::vector<NodeId>& b = adj_[v];
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (a[i] > b[j]) {
        ++j;
      } else {
        fn(a[i]);
        ++i;
        ++j;
      }
    }
  }

  /// Snapshot of all edges with u < v, ordered by (u, v).
  std::vector<Edge> Edges() const;

  /// Snapshot of all canonical edge keys, ordered ascending.
  std::vector<EdgeKey> EdgeKeys() const;

  /// Sum of all degrees (== 2 * NumEdges()).
  size_t DegreeSum() const { return 2 * num_edges_; }

  /// Removes every edge in `edges` that is present; ignores absent ones.
  /// Returns the number actually removed. Accepts any contiguous Edge
  /// range (vector, array, subrange) without copying.
  size_t RemoveEdges(std::span<const Edge> edges);

  /// Batched insert: adds every edge in `edges` after validating the whole
  /// batch (range, self-loops, duplicates within the batch, edges already
  /// present) — all-or-nothing, the graph is untouched on error. Each
  /// touched adjacency list is grown ONCE with geometric spare-capacity
  /// slack and its new neighbors merged in by a single backward merge
  /// pass, so a commit inserting k edges into a degree-d list costs
  /// O(d + k) with at most one reallocation, instead of k full
  /// lower_bound-insert shifts (and never a re-sort). Lists stay sorted
  /// ascending at all times.
  Status AddEdges(std::span<const Edge> edges);

  /// Batched edit session against this graph. Queue Insert/Remove ops —
  /// each validated against the graph AS EDITED by the ops queued before
  /// it, so inserting a queued-removed edge is legal and an op that would
  /// no-op is an error surfaced immediately — then Commit() applies the
  /// net changes and returns the normalized GraphDelta. The session holds
  /// a pointer to the graph: do not mutate the graph directly while a
  /// session is open.
  class EditSession {
   public:
    /// Queues insertion of {u,v}. Errors: InvalidArgument (range,
    /// self-loop), AlreadyExists (present in the pending view).
    Status Insert(NodeId u, NodeId v);

    /// Queues removal of {u,v}. Errors: InvalidArgument (range,
    /// self-loop), NotFound (absent from the pending view).
    Status Remove(NodeId u, NodeId v);

    /// Net pending changes so far (cancelling pairs excluded).
    size_t NumPendingChanges() const;

    /// Applies the net changes (removals first, then one batched
    /// AddEdges) and returns the normalized delta. The session is empty
    /// afterwards and may be reused for a further edit.
    Result<GraphDelta> Commit();

   private:
    friend class Graph;
    explicit EditSession(Graph* g) : g_(g) {}

    Graph* g_;
    // Desired post-commit presence per touched key, sorted by key. Small
    // batches dominate, so a sorted vector beats a hash map here.
    std::vector<std::pair<EdgeKey, bool>> pending_;
  };

  /// Opens an edit session. See EditSession.
  EditSession BeginEdit() { return EditSession(this); }

  /// Applies an already-normalized delta (the GraphDelta contract:
  /// canonical sorted unique disjoint lists): every `removed` edge must be
  /// present and every `inserted` edge absent, else the graph is left
  /// untouched and an error returned. Removals apply first. This is how a
  /// delta committed against one copy of a graph replays onto another
  /// (e.g. the engine-owned released graphs inside a PlanService).
  Status ApplyDelta(const GraphDelta& delta);

  /// Structural equality: same node count and same edge set.
  friend bool operator==(const Graph& a, const Graph& b);

  /// Human-readable one-line summary, e.g. "Graph(n=1133, m=5451)".
  std::string DebugString() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
  size_t num_edges_ = 0;
};

/// Builds a graph from an explicit edge list. Errors on self-loops,
/// duplicate edges, or endpoints >= num_nodes.
Result<Graph> BuildGraph(size_t num_nodes, const std::vector<Edge>& edges);

/// Like BuildGraph but silently skips duplicates and self-loops; useful for
/// noisy external edge lists.
Graph BuildGraphLenient(size_t num_nodes, const std::vector<Edge>& edges);

}  // namespace tpp::graph

#endif  // TPP_GRAPH_GRAPH_H_
