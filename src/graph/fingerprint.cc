#include "graph/fingerprint.h"

#include "common/rng.h"

namespace tpp::graph {

uint64_t Fingerprint(const Graph& g) {
  // Chained SplitMix64 over the canonical edge enumeration. The chain is
  // order-sensitive, but adjacency lists are always sorted, so the
  // enumeration order — and therefore the value — is a pure function of
  // the structure.
  uint64_t h = SplitMix64(0x9a7fb55ad05f6a21ull ^ g.NumNodes());
  h = SplitMix64(h ^ g.NumEdges());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (v > u) h = SplitMix64(h ^ MakeEdgeKey(u, v));
    }
  }
  return h;
}

uint64_t TargetSetHash(std::span<const Edge> targets) {
  uint64_t h = SplitMix64(0x7467747365744831ull ^ targets.size());  // "tgtsetH1"
  for (const Edge& e : targets) {
    h = SplitMix64(h ^ MakeEdgeKey(e.u, e.v));
  }
  return h;
}

}  // namespace tpp::graph
