#include "graph/fingerprint.h"

#include "common/rng.h"

namespace tpp::graph {

uint64_t Fingerprint(const Graph& g) {
  // Chained SplitMix64 over the canonical edge enumeration. The chain is
  // order-sensitive, but adjacency lists are always sorted, so the
  // enumeration order — and therefore the value — is a pure function of
  // the structure.
  uint64_t h = SplitMix64(0x9a7fb55ad05f6a21ull ^ g.NumNodes());
  h = SplitMix64(h ^ g.NumEdges());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (v > u) h = SplitMix64(h ^ MakeEdgeKey(u, v));
    }
  }
  return h;
}

}  // namespace tpp::graph
