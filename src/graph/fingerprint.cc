#include "graph/fingerprint.h"

#include "common/rng.h"

namespace tpp::graph {

namespace {

// Domain separators: the node-count term and the per-edge terms mix
// different constants so a graph with k nodes and no edges can never
// collide with one whose edge terms happen to XOR to a node-count term.
constexpr uint64_t kNodeSeed = 0x9a7fb55ad05f6a21ull;
constexpr uint64_t kEdgeSeed = 0x6564676566703264ull;  // "edgefp2d"

}  // namespace

uint64_t EdgeFingerprint(EdgeKey key) {
  return SplitMix64(kEdgeSeed ^ key);
}

uint64_t Fingerprint(const Graph& g) {
  // XOR of independent per-edge avalanches plus a node-count term. XOR is
  // commutative, so the enumeration order is irrelevant; it is kept
  // canonical anyway for cache-friendly scanning.
  uint64_t h = SplitMix64(kNodeSeed ^ g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (v > u) h ^= EdgeFingerprint(MakeEdgeKey(u, v));
    }
  }
  return h;
}

uint64_t UpdateFingerprint(uint64_t fp, std::span<const Edge> inserted,
                           std::span<const Edge> removed) {
  for (const Edge& e : inserted) fp ^= EdgeFingerprint(MakeEdgeKey(e.u, e.v));
  for (const Edge& e : removed) fp ^= EdgeFingerprint(MakeEdgeKey(e.u, e.v));
  return fp;
}

uint64_t TargetSetHash(std::span<const Edge> targets) {
  uint64_t h = SplitMix64(0x7467747365744831ull ^ targets.size());  // "tgtsetH1"
  for (const Edge& e : targets) {
    h = SplitMix64(h ^ MakeEdgeKey(e.u, e.v));
  }
  return h;
}

}  // namespace tpp::graph
