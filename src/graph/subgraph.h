// Subgraph extraction utilities.

#ifndef TPP_GRAPH_SUBGRAPH_H_
#define TPP_GRAPH_SUBGRAPH_H_

#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace tpp::graph {

/// Result of an induced-subgraph extraction: the subgraph plus the
/// mapping from its dense node ids back to the original ids.
struct InducedSubgraph {
  Graph graph{0};
  std::vector<NodeId> to_original;  ///< subgraph id -> original id
};

/// Extracts the subgraph induced by `nodes` (deduplicated; order of first
/// appearance defines the new ids). Errors on out-of-range ids.
Result<InducedSubgraph> ExtractInducedSubgraph(
    const Graph& g, const std::vector<NodeId>& nodes);

/// Node ids within `hops` BFS steps of `center`, including the center
/// itself. Sorted ascending.
std::vector<NodeId> KHopNeighborhood(const Graph& g, NodeId center,
                                     size_t hops);

/// Convenience: the induced subgraph on the k-hop ball around `center` —
/// the local view an analyst inspects around a sensitive link.
Result<InducedSubgraph> ExtractEgoNetwork(const Graph& g, NodeId center,
                                          size_t hops);

}  // namespace tpp::graph

#endif  // TPP_GRAPH_SUBGRAPH_H_
