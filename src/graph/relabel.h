// Node relabeling for release pipelines.
//
// Deleting links is not enough for a safe release if node ids still match
// the owner's internal ids; publishers permute ids before sharing. These
// helpers produce the relabeled graph together with the secret mapping.

#ifndef TPP_GRAPH_RELABEL_H_
#define TPP_GRAPH_RELABEL_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace tpp::graph {

/// A relabeled graph plus the secret permutation that produced it.
struct RelabeledGraph {
  Graph graph{0};
  /// new_id[old] = the released id of original node `old`.
  std::vector<NodeId> new_id;
};

/// Applies an explicit permutation: node v of `g` becomes
/// `permutation[v]`. Errors unless `permutation` is a permutation of
/// 0..n-1.
Result<RelabeledGraph> RelabelNodes(const Graph& g,
                                    const std::vector<NodeId>& permutation);

/// Relabels with a uniform random permutation drawn from `rng`.
RelabeledGraph RandomRelabel(const Graph& g, Rng& rng);

/// Maps an edge of the original graph into released ids.
inline Edge MapEdge(const RelabeledGraph& relabeled, Edge e) {
  return Edge(relabeled.new_id[e.u], relabeled.new_id[e.v]);
}

}  // namespace tpp::graph

#endif  // TPP_GRAPH_RELABEL_H_
