// Synthetic stand-ins for the paper's evaluation datasets.
//
// The paper evaluates on Arenas-email (KONECT) and DBLP (SNAP). Neither is
// redistributable inside this repository and no network access is assumed,
// so we synthesize graphs matched on the structural properties that drive
// the TPP algorithms: size, degree tail, and clustering (see DESIGN.md §4).

#ifndef TPP_GRAPH_DATASETS_H_
#define TPP_GRAPH_DATASETS_H_

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace tpp::graph {

/// Reference statistics of the real datasets, used by tests to validate the
/// synthetic stand-ins.
struct DatasetProfile {
  size_t num_nodes;
  size_t num_edges;
  double approx_clustering;  ///< published average clustering coefficient
};

/// Arenas-email: 1133 nodes, 5451 edges, clustering ~0.22.
DatasetProfile ArenasEmailProfile();

/// DBLP co-authorship: 317080 nodes, 1049866 edges, clustering ~0.63.
DatasetProfile DblpProfile();

/// Synthesizes an Arenas-email-like graph: Holme–Kim power-law-cluster
/// model with N=1133, m=5, triad probability 0.35, then uniformly thinned
/// to exactly 5451 edges. Deterministic given `seed`.
Result<Graph> MakeArenasEmailLike(uint64_t seed);

/// Synthesizes a DBLP-like co-authorship graph at the given linear `scale`
/// (1.0 reproduces the full 317k-node size; benches default to 0.1).
/// Papers are small cliques over preferentially recruited authors.
/// Deterministic given `seed`. Requires 0 < scale <= 1.
Result<Graph> MakeDblpLike(uint64_t seed, double scale);

}  // namespace tpp::graph

#endif  // TPP_GRAPH_DATASETS_H_
