// Structural graph fingerprint for content-addressed caching.

#ifndef TPP_GRAPH_FINGERPRINT_H_
#define TPP_GRAPH_FINGERPRINT_H_

#include <cstdint>
#include <span>

#include "graph/graph.h"

namespace tpp::graph {

/// 64-bit fingerprint of a graph's exact structure: node count plus the
/// full edge set, chained through the SplitMix64 avalanche mix in
/// canonical (sorted-adjacency) order. Two graphs compare equal under
/// operator== iff they fingerprint equal (up to 64-bit collisions, which
/// the plan cache accepts because its keys also embed the request
/// payload). Any AddEdge/RemoveEdge changes the value, which is what lets
/// cache entries keyed on the fingerprint self-invalidate when the base
/// graph of a service changes.
///
/// Cost: one mix per edge, O(n + m), no allocation.
uint64_t Fingerprint(const Graph& g);

/// 64-bit hash of a target edge list, order-SENSITIVE (targets index the
/// per-target count arrays positionally, so a reordered set is a
/// different instance). Together with Fingerprint and the motif kind this
/// addresses one built IncidenceIndex — the key of the warm-start
/// snapshot store.
uint64_t TargetSetHash(std::span<const Edge> targets);

}  // namespace tpp::graph

#endif  // TPP_GRAPH_FINGERPRINT_H_
