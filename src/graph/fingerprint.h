// Structural graph fingerprint for content-addressed caching.

#ifndef TPP_GRAPH_FINGERPRINT_H_
#define TPP_GRAPH_FINGERPRINT_H_

#include <cstdint>
#include <span>

#include "graph/graph.h"

namespace tpp::graph {

/// Per-edge term of the graph fingerprint: a SplitMix64 avalanche of the
/// canonical edge key, domain-separated from the node-count term. The
/// whole-graph fingerprint XORs these, so the term of one edge is the
/// exact amount by which inserting or removing that edge moves the value.
uint64_t EdgeFingerprint(EdgeKey key);

/// 64-bit fingerprint of a graph's exact structure: a node-count term
/// XORed with EdgeFingerprint of every edge. Two graphs compare equal
/// under operator== iff they fingerprint equal (up to 64-bit collisions,
/// which the plan cache accepts because its keys also embed the request
/// payload). Any AddEdge/RemoveEdge changes the value, which is what lets
/// cache entries keyed on the fingerprint self-invalidate when the base
/// graph of a service changes.
///
/// The combiner is XOR — commutative and self-inverse — so the value is
/// EDIT-COMMUTATIVE: UpdateFingerprint advances it across a batched edge
/// edit in O(|delta|) without re-walking the graph, and any sequence of
/// edits arriving in any order lands on the same value as a fresh
/// Fingerprint of the final structure. (The previous chained-SplitMix64
/// scheme was order-dependent and could only be recomputed from scratch;
/// snapshot files carrying it are versioned out by
/// IndexSnapshotCodec::kFormatVersion.)
///
/// Cost: one mix per edge, O(n + m), no allocation.
uint64_t Fingerprint(const Graph& g);

/// Advances a Fingerprint across a committed edit in O(|delta|): XORs in
/// the per-edge terms of `inserted` and `removed` (self-inverse, so both
/// directions are the same operation). `fp` must be the fingerprint of
/// the pre-edit graph and the edit must not change the node count;
/// the result equals Fingerprint of the post-edit graph. Requires the
/// two lists to be disjoint and duplicate-free (the GraphDelta contract).
uint64_t UpdateFingerprint(uint64_t fp, std::span<const Edge> inserted,
                           std::span<const Edge> removed);

/// 64-bit hash of a target edge list, order-SENSITIVE (targets index the
/// per-target count arrays positionally, so a reordered set is a
/// different instance). Together with Fingerprint and the motif kind this
/// addresses one built IncidenceIndex — the key of the warm-start
/// snapshot store.
uint64_t TargetSetHash(std::span<const Edge> targets);

}  // namespace tpp::graph

#endif  // TPP_GRAPH_FINGERPRINT_H_
