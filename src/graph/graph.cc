#include "graph/graph.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/strings.h"

namespace tpp::graph {

namespace {

// Inserts `v` into the sorted vector `vec`; returns false if already there.
bool SortedInsert(std::vector<NodeId>& vec, NodeId v) {
  auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it != vec.end() && *it == v) return false;
  vec.insert(it, v);
  return true;
}

// Erases `v` from the sorted vector `vec`; returns false if absent.
bool SortedErase(std::vector<NodeId>& vec, NodeId v) {
  auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it == vec.end() || *it != v) return false;
  vec.erase(it);
  return true;
}

bool SortedContains(const std::vector<NodeId>& vec, NodeId v) {
  return std::binary_search(vec.begin(), vec.end(), v);
}

}  // namespace

NodeId Graph::AddNode() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size() - 1);
}

Status Graph::AddEdge(NodeId u, NodeId v) {
  if (u >= NumNodes() || v >= NumNodes()) {
    return Status::InvalidArgument(
        StrFormat("edge (%u,%u) out of range for n=%zu", u, v, NumNodes()));
  }
  if (u == v) {
    return Status::InvalidArgument(StrFormat("self-loop at node %u", u));
  }
  if (!SortedInsert(adj_[u], v)) {
    return Status::AlreadyExists(StrFormat("edge (%u,%u) exists", u, v));
  }
  SortedInsert(adj_[v], u);
  ++num_edges_;
  return Status::Ok();
}

Status Graph::RemoveEdge(NodeId u, NodeId v) {
  if (u >= NumNodes() || v >= NumNodes()) {
    return Status::InvalidArgument(
        StrFormat("edge (%u,%u) out of range for n=%zu", u, v, NumNodes()));
  }
  if (!SortedErase(adj_[u], v)) {
    return Status::NotFound(StrFormat("edge (%u,%u) absent", u, v));
  }
  SortedErase(adj_[v], u);
  --num_edges_;
  return Status::Ok();
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (u >= NumNodes() || v >= NumNodes() || u == v) return false;
  // Search the shorter list.
  if (adj_[u].size() <= adj_[v].size()) return SortedContains(adj_[u], v);
  return SortedContains(adj_[v], u);
}

std::vector<NodeId> Graph::CommonNeighbors(NodeId u, NodeId v) const {
  std::vector<NodeId> out;
  out.reserve(std::min(adj_[u].size(), adj_[v].size()));
  ForEachCommonNeighbor(u, v, [&](NodeId w) { out.push_back(w); });
  return out;
}

size_t Graph::CountCommonNeighbors(NodeId u, NodeId v) const {
  size_t count = 0;
  ForEachCommonNeighbor(u, v, [&](NodeId) { ++count; });
  return count;
}

std::vector<Edge> Graph::Edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (NodeId u = 0; u < NumNodes(); ++u) {
    for (NodeId v : adj_[u]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

std::vector<EdgeKey> Graph::EdgeKeys() const {
  std::vector<EdgeKey> out;
  out.reserve(num_edges_);
  for (NodeId u = 0; u < NumNodes(); ++u) {
    for (NodeId v : adj_[u]) {
      if (u < v) out.push_back(MakeEdgeKey(u, v));
    }
  }
  return out;
}

size_t Graph::RemoveEdges(std::span<const Edge> edges) {
  size_t removed = 0;
  for (const Edge& e : edges) {
    if (HasEdge(e.u, e.v)) {
      Status s = RemoveEdge(e.u, e.v);
      if (s.ok()) ++removed;
    }
  }
  return removed;
}

Status Graph::AddEdges(std::span<const Edge> edges) {
  if (edges.empty()) return Status::Ok();
  // Validate the whole batch before touching anything: the directed
  // half-edge list below is only built for a batch known to apply.
  std::vector<EdgeKey> keys;
  keys.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.u >= NumNodes() || e.v >= NumNodes()) {
      return Status::InvalidArgument(StrFormat(
          "edge (%u,%u) out of range for n=%zu", e.u, e.v, NumNodes()));
    }
    if (e.u == e.v) {
      return Status::InvalidArgument(StrFormat("self-loop at node %u", e.u));
    }
    if (HasEdge(e.u, e.v)) {
      return Status::AlreadyExists(
          StrFormat("edge (%u,%u) exists", e.u, e.v));
    }
    keys.push_back(MakeEdgeKey(e.u, e.v));
  }
  std::sort(keys.begin(), keys.end());
  for (size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] == keys[i - 1]) {
      return Status::InvalidArgument(
          StrFormat("edge (%u,%u) duplicated in batch",
                    EdgeKeyU(keys[i]), EdgeKeyV(keys[i])));
    }
  }

  // One directed half-edge per endpoint, grouped by node so every touched
  // adjacency list is grown once and merged once.
  std::vector<std::pair<NodeId, NodeId>> half;
  half.reserve(2 * keys.size());
  for (EdgeKey k : keys) {
    half.emplace_back(EdgeKeyU(k), EdgeKeyV(k));
    half.emplace_back(EdgeKeyV(k), EdgeKeyU(k));
  }
  std::sort(half.begin(), half.end());
  for (size_t lo = 0; lo < half.size();) {
    size_t hi = lo;
    const NodeId node = half[lo].first;
    while (hi < half.size() && half[hi].first == node) ++hi;
    std::vector<NodeId>& list = adj_[node];
    const size_t old_size = list.size();
    const size_t add = hi - lo;
    if (list.capacity() < old_size + add) {
      // Spare-capacity slack: grow geometrically so a churn workload's
      // repeated commits amortize to O(1) reallocations per edge.
      list.reserve(std::max(old_size + add, old_size + old_size / 2 + 4));
    }
    list.resize(old_size + add);
    // Backward merge of the (sorted) new neighbors half[lo..hi) into the
    // sorted prefix [0, old_size): one pass, no per-insert shifting.
    size_t i = old_size;    // one past the last unmerged old element
    size_t j = hi;          // one past the last unmerged new element
    size_t w = list.size();  // one past the next write slot
    while (j > lo) {
      if (i > 0 && list[i - 1] > half[j - 1].second) {
        list[--w] = list[--i];
      } else {
        list[--w] = half[--j].second;
      }
    }
    lo = hi;
  }
  num_edges_ += keys.size();
  return Status::Ok();
}

Status Graph::ApplyDelta(const GraphDelta& delta) {
  // Validate both directions up front so the graph is untouched on error.
  for (const Edge& e : delta.removed) {
    if (!HasEdge(e.u, e.v)) {
      return Status::NotFound(
          StrFormat("delta removes absent edge (%u,%u)", e.u, e.v));
    }
  }
  for (const Edge& e : delta.inserted) {
    if (e.u >= NumNodes() || e.v >= NumNodes() || e.u == e.v) {
      return Status::InvalidArgument(
          StrFormat("delta inserts invalid edge (%u,%u)", e.u, e.v));
    }
    if (HasEdge(e.u, e.v)) {
      return Status::AlreadyExists(
          StrFormat("delta inserts present edge (%u,%u)", e.u, e.v));
    }
  }
  for (const Edge& e : delta.removed) {
    Status s = RemoveEdge(e.u, e.v);
    TPP_CHECK(s.ok());
  }
  Status s = AddEdges(delta.inserted);
  TPP_CHECK(s.ok());
  return Status::Ok();
}

Status Graph::EditSession::Insert(NodeId u, NodeId v) {
  if (u >= g_->NumNodes() || v >= g_->NumNodes()) {
    return Status::InvalidArgument(StrFormat(
        "edge (%u,%u) out of range for n=%zu", u, v, g_->NumNodes()));
  }
  if (u == v) {
    return Status::InvalidArgument(StrFormat("self-loop at node %u", u));
  }
  const EdgeKey key = MakeEdgeKey(u, v);
  auto it = std::lower_bound(
      pending_.begin(), pending_.end(), key,
      [](const std::pair<EdgeKey, bool>& p, EdgeKey k) { return p.first < k; });
  const bool present =
      (it != pending_.end() && it->first == key) ? it->second
                                                 : g_->HasEdgeKey(key);
  if (present) {
    return Status::AlreadyExists(StrFormat("edge (%u,%u) exists", u, v));
  }
  if (it != pending_.end() && it->first == key) {
    it->second = true;
  } else {
    pending_.insert(it, {key, true});
  }
  return Status::Ok();
}

Status Graph::EditSession::Remove(NodeId u, NodeId v) {
  if (u >= g_->NumNodes() || v >= g_->NumNodes()) {
    return Status::InvalidArgument(StrFormat(
        "edge (%u,%u) out of range for n=%zu", u, v, g_->NumNodes()));
  }
  if (u == v) {
    return Status::InvalidArgument(StrFormat("self-loop at node %u", u));
  }
  const EdgeKey key = MakeEdgeKey(u, v);
  auto it = std::lower_bound(
      pending_.begin(), pending_.end(), key,
      [](const std::pair<EdgeKey, bool>& p, EdgeKey k) { return p.first < k; });
  const bool present =
      (it != pending_.end() && it->first == key) ? it->second
                                                 : g_->HasEdgeKey(key);
  if (!present) {
    return Status::NotFound(StrFormat("edge (%u,%u) absent", u, v));
  }
  if (it != pending_.end() && it->first == key) {
    it->second = false;
  } else {
    pending_.insert(it, {key, false});
  }
  return Status::Ok();
}

size_t Graph::EditSession::NumPendingChanges() const {
  size_t n = 0;
  for (const auto& [key, present] : pending_) {
    if (present != g_->HasEdgeKey(key)) ++n;
  }
  return n;
}

Result<GraphDelta> Graph::EditSession::Commit() {
  GraphDelta delta;
  // pending_ is key-sorted, so the delta lists come out sorted for free.
  for (const auto& [key, present] : pending_) {
    const bool now = g_->HasEdgeKey(key);
    if (present == now) continue;  // insert+remove (or the reverse) cancelled
    Edge e(EdgeKeyU(key), EdgeKeyV(key));
    (present ? delta.inserted : delta.removed).push_back(e);
  }
  pending_.clear();
  TPP_RETURN_IF_ERROR(g_->ApplyDelta(delta));
  return delta;
}

bool operator==(const Graph& a, const Graph& b) {
  return a.adj_ == b.adj_;
}

std::string Graph::DebugString() const {
  return StrFormat("Graph(n=%zu, m=%zu)", NumNodes(), NumEdges());
}

Result<Graph> BuildGraph(size_t num_nodes, const std::vector<Edge>& edges) {
  Graph g(num_nodes);
  for (const Edge& e : edges) {
    TPP_RETURN_IF_ERROR(g.AddEdge(e.u, e.v));
  }
  return g;
}

Graph BuildGraphLenient(size_t num_nodes, const std::vector<Edge>& edges) {
  Graph g(num_nodes);
  for (const Edge& e : edges) {
    if (e.u == e.v || e.u >= num_nodes || e.v >= num_nodes) continue;
    if (!g.HasEdge(e.u, e.v)) {
      Status s = g.AddEdge(e.u, e.v);
      (void)s;  // Cannot fail after the guards above.
    }
  }
  return g;
}

}  // namespace tpp::graph
