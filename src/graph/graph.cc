#include "graph/graph.h"

#include <algorithm>

#include "common/strings.h"

namespace tpp::graph {

namespace {

// Inserts `v` into the sorted vector `vec`; returns false if already there.
bool SortedInsert(std::vector<NodeId>& vec, NodeId v) {
  auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it != vec.end() && *it == v) return false;
  vec.insert(it, v);
  return true;
}

// Erases `v` from the sorted vector `vec`; returns false if absent.
bool SortedErase(std::vector<NodeId>& vec, NodeId v) {
  auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it == vec.end() || *it != v) return false;
  vec.erase(it);
  return true;
}

bool SortedContains(const std::vector<NodeId>& vec, NodeId v) {
  return std::binary_search(vec.begin(), vec.end(), v);
}

}  // namespace

NodeId Graph::AddNode() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size() - 1);
}

Status Graph::AddEdge(NodeId u, NodeId v) {
  if (u >= NumNodes() || v >= NumNodes()) {
    return Status::InvalidArgument(
        StrFormat("edge (%u,%u) out of range for n=%zu", u, v, NumNodes()));
  }
  if (u == v) {
    return Status::InvalidArgument(StrFormat("self-loop at node %u", u));
  }
  if (!SortedInsert(adj_[u], v)) {
    return Status::AlreadyExists(StrFormat("edge (%u,%u) exists", u, v));
  }
  SortedInsert(adj_[v], u);
  ++num_edges_;
  return Status::Ok();
}

Status Graph::RemoveEdge(NodeId u, NodeId v) {
  if (u >= NumNodes() || v >= NumNodes()) {
    return Status::InvalidArgument(
        StrFormat("edge (%u,%u) out of range for n=%zu", u, v, NumNodes()));
  }
  if (!SortedErase(adj_[u], v)) {
    return Status::NotFound(StrFormat("edge (%u,%u) absent", u, v));
  }
  SortedErase(adj_[v], u);
  --num_edges_;
  return Status::Ok();
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (u >= NumNodes() || v >= NumNodes() || u == v) return false;
  // Search the shorter list.
  if (adj_[u].size() <= adj_[v].size()) return SortedContains(adj_[u], v);
  return SortedContains(adj_[v], u);
}

std::vector<NodeId> Graph::CommonNeighbors(NodeId u, NodeId v) const {
  std::vector<NodeId> out;
  out.reserve(std::min(adj_[u].size(), adj_[v].size()));
  ForEachCommonNeighbor(u, v, [&](NodeId w) { out.push_back(w); });
  return out;
}

size_t Graph::CountCommonNeighbors(NodeId u, NodeId v) const {
  size_t count = 0;
  ForEachCommonNeighbor(u, v, [&](NodeId) { ++count; });
  return count;
}

std::vector<Edge> Graph::Edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (NodeId u = 0; u < NumNodes(); ++u) {
    for (NodeId v : adj_[u]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

std::vector<EdgeKey> Graph::EdgeKeys() const {
  std::vector<EdgeKey> out;
  out.reserve(num_edges_);
  for (NodeId u = 0; u < NumNodes(); ++u) {
    for (NodeId v : adj_[u]) {
      if (u < v) out.push_back(MakeEdgeKey(u, v));
    }
  }
  return out;
}

size_t Graph::RemoveEdges(std::span<const Edge> edges) {
  size_t removed = 0;
  for (const Edge& e : edges) {
    if (HasEdge(e.u, e.v)) {
      Status s = RemoveEdge(e.u, e.v);
      if (s.ok()) ++removed;
    }
  }
  return removed;
}

bool operator==(const Graph& a, const Graph& b) {
  return a.adj_ == b.adj_;
}

std::string Graph::DebugString() const {
  return StrFormat("Graph(n=%zu, m=%zu)", NumNodes(), NumEdges());
}

Result<Graph> BuildGraph(size_t num_nodes, const std::vector<Edge>& edges) {
  Graph g(num_nodes);
  for (const Edge& e : edges) {
    TPP_RETURN_IF_ERROR(g.AddEdge(e.u, e.v));
  }
  return g;
}

Graph BuildGraphLenient(size_t num_nodes, const std::vector<Edge>& edges) {
  Graph g(num_nodes);
  for (const Edge& e : edges) {
    if (e.u == e.v || e.u >= num_nodes || e.v >= num_nodes) continue;
    if (!g.HasEdge(e.u, e.v)) {
      Status s = g.AddEdge(e.u, e.v);
      (void)s;  // Cannot fail after the guards above.
    }
  }
  return g;
}

}  // namespace tpp::graph
