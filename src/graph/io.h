// Edge-list I/O in the formats used by SNAP / KONECT dumps.

#ifndef TPP_GRAPH_IO_H_
#define TPP_GRAPH_IO_H_

#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace tpp::graph {

/// Options controlling edge-list parsing.
struct EdgeListOptions {
  /// Lines starting with any of these characters are skipped.
  std::string comment_prefixes = "#%";
  /// When true, node ids found in the file are remapped to a dense
  /// 0..n-1 range in increasing id order, so the labeling depends only
  /// on the id set (not line order) and files whose ids are already
  /// dense 0..n-1 load with their labels unchanged — save/load round
  /// trips preserve labels and graph fingerprints. When false, ids are
  /// taken literally and the node count is max id + 1.
  bool remap_ids = true;
  /// When false, duplicate edges / self-loops are errors instead of being
  /// silently dropped.
  bool lenient = true;
};

/// Parses a whitespace-separated edge list (two integer columns per line;
/// extra columns such as weights or timestamps are ignored).
Result<Graph> ParseEdgeList(const std::string& text,
                            const EdgeListOptions& options = {});

/// Loads an edge-list file from disk.
Result<Graph> LoadEdgeList(const std::string& path,
                           const EdgeListOptions& options = {});

/// Serializes the graph as a "u v" edge list with a header comment.
std::string ToEdgeListString(const Graph& g);

/// Writes the edge list to disk.
Status SaveEdgeList(const Graph& g, const std::string& path);

}  // namespace tpp::graph

#endif  // TPP_GRAPH_IO_H_
