// Adversarial link-prediction attack evaluation.
//
// Implements the paper's threat model (§III-B): the attacker holds the full
// released graph and scores candidate missing links with a similarity
// index. We measure how well the hidden targets rank among non-edges —
// before protection they should rank high; after full TPP protection every
// triangle-based index scores them 0.

#ifndef TPP_LINKPRED_ATTACK_H_
#define TPP_LINKPRED_ATTACK_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "linkpred/indices.h"

namespace tpp::linkpred {

/// Attack-quality measurement for one (graph, targets, index) combination.
struct AttackReport {
  IndexKind index = IndexKind::kCommonNeighbors;
  /// Probability a random hidden target outscores a random non-edge
  /// (ties count 1/2) — the standard link-prediction AUC, estimated over
  /// `num_comparisons` sampled pairs.
  double auc = 0.0;
  /// Fraction of the top-|T| ranked candidate pairs that are true targets,
  /// where candidates = targets plus the sampled non-edges.
  double precision_at_t = 0.0;
  /// Per-target similarity scores under the index.
  std::vector<double> target_scores;
  /// Number of targets with score exactly 0 (invisible to this attacker).
  size_t zero_score_targets = 0;
};

/// Options for attack evaluation.
struct AttackOptions {
  size_t num_comparisons = 10000;  ///< AUC sample size
  size_t num_non_edges = 1000;     ///< non-edge pool for precision@|T|
};

/// Evaluates one index against the released graph. `targets` must be
/// absent from `g` (they are the hidden links). Non-edges are sampled
/// uniformly among unconnected pairs, excluding the targets themselves.
Result<AttackReport> EvaluateAttack(const graph::Graph& g,
                                    const std::vector<graph::Edge>& targets,
                                    IndexKind index, Rng& rng,
                                    const AttackOptions& options = {});

/// Runs EvaluateAttack for every index in kAllIndices.
Result<std::vector<AttackReport>> EvaluateAllAttacks(
    const graph::Graph& g, const std::vector<graph::Edge>& targets, Rng& rng,
    const AttackOptions& options = {});

/// Exact attack evaluation for small graphs: enumerates EVERY non-edge
/// instead of sampling, computing the exact AUC (rank statistic with tie
/// correction) and exact precision@|T|. Errors if the number of node
/// pairs exceeds `max_pairs` (default 2M) — use the sampled EvaluateAttack
/// beyond that.
Result<AttackReport> EvaluateAttackExact(
    const graph::Graph& g, const std::vector<graph::Edge>& targets,
    IndexKind index, size_t max_pairs = 2'000'000);

}  // namespace tpp::linkpred

#endif  // TPP_LINKPRED_ATTACK_H_
