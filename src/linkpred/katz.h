// Truncated Katz index (paper future-work reference [47]).

#ifndef TPP_LINKPRED_KATZ_H_
#define TPP_LINKPRED_KATZ_H_

#include "common/result.h"
#include "graph/graph.h"

namespace tpp::linkpred {

/// Parameters of the truncated Katz similarity
///   katz(u,v) = sum_{l=1..max_length} beta^l * paths_l(u, v)
/// where paths_l counts walks of length l. beta must satisfy
/// 0 < beta < 1 for the series to be meaningful when truncated.
struct KatzParams {
  double beta = 0.05;
  size_t max_length = 4;
};

/// Computes the truncated Katz score for one node pair by dynamic
/// programming over walk counts: O(max_length * m) time, O(n) space.
Result<double> KatzScore(const graph::Graph& g, graph::NodeId u,
                         graph::NodeId v, const KatzParams& params = {});

/// Computes Katz scores from `u` to every node (one DP sweep).
Result<std::vector<double>> KatzScoresFrom(const graph::Graph& g,
                                           graph::NodeId u,
                                           const KatzParams& params = {});

/// Walk counts from `u`: counts[l][x] = number of length-l walks u -> x,
/// for l = 0..max_length. The building block for Katz and for the
/// first-order edge-deletion gain estimates in core/katz_defense.h.
Result<std::vector<std::vector<double>>> KatzWalkCounts(
    const graph::Graph& g, graph::NodeId u, size_t max_length);

}  // namespace tpp::linkpred

#endif  // TPP_LINKPRED_KATZ_H_
