// Neighborhood-based link-prediction similarity indices.
//
// These are the attack-side predictors from the paper's threat model and
// Extended Discussion (§VI-D): all are functions of the common-neighbor
// set of the two endpoints, so a graph in which every target has zero
// target triangles defeats all of them at once.

#ifndef TPP_LINKPRED_INDICES_H_
#define TPP_LINKPRED_INDICES_H_

#include <array>
#include <string_view>

#include "common/result.h"
#include "graph/graph.h"

namespace tpp::linkpred {

/// The similarity indices discussed in the paper (references [37]-[43]).
enum class IndexKind {
  kCommonNeighbors = 0,    ///< |CN|
  kJaccard,                ///< |CN| / |union of neighborhoods|
  kSalton,                 ///< |CN| / sqrt(du * dv)
  kSorensen,               ///< 2|CN| / (du + dv)
  kHubPromoted,            ///< |CN| / min(du, dv)
  kHubDepressed,           ///< |CN| / max(du, dv)
  kLeichtHolmeNewman,      ///< |CN| / (du * dv)
  kAdamicAdar,             ///< sum over CN of 1 / log(dw)
  kResourceAllocation,     ///< sum over CN of 1 / dw
};

/// All indices, for sweeps and parameterized tests.
inline constexpr std::array<IndexKind, 9> kAllIndices = {
    IndexKind::kCommonNeighbors, IndexKind::kJaccard,
    IndexKind::kSalton,          IndexKind::kSorensen,
    IndexKind::kHubPromoted,     IndexKind::kHubDepressed,
    IndexKind::kLeichtHolmeNewman, IndexKind::kAdamicAdar,
    IndexKind::kResourceAllocation};

/// Stable display name, e.g. "Jaccard".
std::string_view IndexName(IndexKind kind);

/// Parses an index display name.
Result<IndexKind> ParseIndexKind(std::string_view name);

/// Similarity score of the (typically missing) node pair (u, v) under the
/// given index. Degenerate denominators (isolated endpoints, degree-1 logs)
/// yield 0, matching the convention that an unpredictable pair scores 0.
double Score(const graph::Graph& g, graph::NodeId u, graph::NodeId v,
             IndexKind kind);

}  // namespace tpp::linkpred

#endif  // TPP_LINKPRED_INDICES_H_
