#include "linkpred/indices.h"

#include <algorithm>
#include <cmath>

namespace tpp::linkpred {

using graph::Graph;
using graph::NodeId;

std::string_view IndexName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kCommonNeighbors:
      return "CommonNeighbors";
    case IndexKind::kJaccard:
      return "Jaccard";
    case IndexKind::kSalton:
      return "Salton";
    case IndexKind::kSorensen:
      return "Sorensen";
    case IndexKind::kHubPromoted:
      return "HubPromoted";
    case IndexKind::kHubDepressed:
      return "HubDepressed";
    case IndexKind::kLeichtHolmeNewman:
      return "LeichtHolmeNewman";
    case IndexKind::kAdamicAdar:
      return "AdamicAdar";
    case IndexKind::kResourceAllocation:
      return "ResourceAllocation";
  }
  return "Unknown";
}

Result<IndexKind> ParseIndexKind(std::string_view name) {
  for (IndexKind k : kAllIndices) {
    if (IndexName(k) == name) return k;
  }
  return Status::InvalidArgument("unknown index: " + std::string(name));
}

double Score(const Graph& g, NodeId u, NodeId v, IndexKind kind) {
  const double du = static_cast<double>(g.Degree(u));
  const double dv = static_cast<double>(g.Degree(v));
  switch (kind) {
    case IndexKind::kCommonNeighbors:
      return static_cast<double>(g.CountCommonNeighbors(u, v));
    case IndexKind::kJaccard: {
      double cn = static_cast<double>(g.CountCommonNeighbors(u, v));
      double uni = du + dv - cn;
      return uni > 0 ? cn / uni : 0.0;
    }
    case IndexKind::kSalton: {
      double cn = static_cast<double>(g.CountCommonNeighbors(u, v));
      double denom = std::sqrt(du * dv);
      return denom > 0 ? cn / denom : 0.0;
    }
    case IndexKind::kSorensen: {
      double cn = static_cast<double>(g.CountCommonNeighbors(u, v));
      double denom = du + dv;
      return denom > 0 ? 2.0 * cn / denom : 0.0;
    }
    case IndexKind::kHubPromoted: {
      double cn = static_cast<double>(g.CountCommonNeighbors(u, v));
      double denom = std::min(du, dv);
      return denom > 0 ? cn / denom : 0.0;
    }
    case IndexKind::kHubDepressed: {
      double cn = static_cast<double>(g.CountCommonNeighbors(u, v));
      double denom = std::max(du, dv);
      return denom > 0 ? cn / denom : 0.0;
    }
    case IndexKind::kLeichtHolmeNewman: {
      double cn = static_cast<double>(g.CountCommonNeighbors(u, v));
      double denom = du * dv;
      return denom > 0 ? cn / denom : 0.0;
    }
    case IndexKind::kAdamicAdar: {
      double score = 0.0;
      for (NodeId w : g.CommonNeighbors(u, v)) {
        double dw = static_cast<double>(g.Degree(w));
        if (dw > 1.0) score += 1.0 / std::log(dw);
      }
      return score;
    }
    case IndexKind::kResourceAllocation: {
      double score = 0.0;
      for (NodeId w : g.CommonNeighbors(u, v)) {
        double dw = static_cast<double>(g.Degree(w));
        if (dw > 0.0) score += 1.0 / dw;
      }
      return score;
    }
  }
  return 0.0;
}

}  // namespace tpp::linkpred
