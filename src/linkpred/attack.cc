#include "linkpred/attack.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"

namespace tpp::linkpred {

using graph::Edge;
using graph::Graph;
using graph::NodeId;

namespace {

// Samples a non-edge (u != v, no edge, not a target) uniformly at random.
// Returns false if the graph is too dense to find one quickly.
bool SampleNonEdge(const Graph& g,
                   const std::unordered_set<graph::EdgeKey>& excluded,
                   Rng& rng, Edge* out) {
  const size_t n = g.NumNodes();
  if (n < 2) return false;
  for (int attempt = 0; attempt < 200; ++attempt) {
    NodeId u = static_cast<NodeId>(rng.UniformIndex(n));
    NodeId v = static_cast<NodeId>(rng.UniformIndex(n));
    if (u == v) continue;
    if (g.HasEdge(u, v)) continue;
    if (excluded.count(graph::MakeEdgeKey(u, v)) > 0) continue;
    *out = Edge(u, v);
    return true;
  }
  return false;
}

}  // namespace

Result<AttackReport> EvaluateAttack(const Graph& g,
                                    const std::vector<Edge>& targets,
                                    IndexKind index, Rng& rng,
                                    const AttackOptions& options) {
  if (targets.empty()) {
    return Status::InvalidArgument("attack evaluation needs >= 1 target");
  }
  std::unordered_set<graph::EdgeKey> target_keys;
  for (const Edge& t : targets) {
    if (g.HasEdge(t.u, t.v)) {
      return Status::FailedPrecondition(
          StrFormat("target (%u,%u) still present in released graph", t.u,
                    t.v));
    }
    target_keys.insert(t.Key());
  }

  AttackReport report;
  report.index = index;
  report.target_scores.reserve(targets.size());
  for (const Edge& t : targets) {
    double s = Score(g, t.u, t.v, index);
    report.target_scores.push_back(s);
    if (s == 0.0) ++report.zero_score_targets;
  }

  // AUC by sampling (target, non-edge) comparisons.
  double auc_sum = 0.0;
  size_t auc_n = 0;
  for (size_t i = 0; i < options.num_comparisons; ++i) {
    Edge non_edge;
    if (!SampleNonEdge(g, target_keys, rng, &non_edge)) break;
    double ts = report.target_scores[rng.UniformIndex(targets.size())];
    double ns = Score(g, non_edge.u, non_edge.v, index);
    if (ts > ns) {
      auc_sum += 1.0;
    } else if (ts == ns) {
      auc_sum += 0.5;
    }
    ++auc_n;
  }
  report.auc = auc_n > 0 ? auc_sum / static_cast<double>(auc_n) : 0.0;

  // Precision@|T| over targets + sampled non-edge pool.
  struct Scored {
    double score;
    bool is_target;
  };
  std::vector<Scored> pool;
  pool.reserve(targets.size() + options.num_non_edges);
  for (double s : report.target_scores) pool.push_back({s, true});
  for (size_t i = 0; i < options.num_non_edges; ++i) {
    Edge non_edge;
    if (!SampleNonEdge(g, target_keys, rng, &non_edge)) break;
    pool.push_back({Score(g, non_edge.u, non_edge.v, index), false});
  }
  // Rank descending by score; break ties pessimistically for the attacker
  // (non-targets first) so precision is not inflated by tied zeros.
  std::stable_sort(pool.begin(), pool.end(), [](const Scored& a,
                                                const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return !a.is_target && b.is_target;
  });
  size_t hits = 0;
  size_t cutoff = std::min(targets.size(), pool.size());
  for (size_t i = 0; i < cutoff; ++i) {
    if (pool[i].is_target) ++hits;
  }
  report.precision_at_t =
      cutoff > 0 ? static_cast<double>(hits) / static_cast<double>(cutoff)
                 : 0.0;
  return report;
}

Result<AttackReport> EvaluateAttackExact(const Graph& g,
                                         const std::vector<Edge>& targets,
                                         IndexKind index, size_t max_pairs) {
  if (targets.empty()) {
    return Status::InvalidArgument("attack evaluation needs >= 1 target");
  }
  const size_t n = g.NumNodes();
  if (n < 2 || n * (n - 1) / 2 > max_pairs) {
    return Status::OutOfRange(
        StrFormat("graph with %zu nodes exceeds the exact-evaluation pair "
                  "limit %zu",
                  n, max_pairs));
  }
  std::unordered_set<graph::EdgeKey> target_keys;
  for (const Edge& t : targets) {
    if (g.HasEdge(t.u, t.v)) {
      return Status::FailedPrecondition(
          StrFormat("target (%u,%u) still present in released graph", t.u,
                    t.v));
    }
    target_keys.insert(t.Key());
  }

  AttackReport report;
  report.index = index;
  for (const Edge& t : targets) {
    double s = Score(g, t.u, t.v, index);
    report.target_scores.push_back(s);
    if (s == 0.0) ++report.zero_score_targets;
  }

  // Score every true non-edge (excluding the targets).
  std::vector<double> non_edge_scores;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (g.HasEdge(u, v)) continue;
      if (target_keys.count(graph::MakeEdgeKey(u, v)) > 0) continue;
      non_edge_scores.push_back(Score(g, u, v, index));
    }
  }
  if (non_edge_scores.empty()) {
    return Status::FailedPrecondition("no non-edges to compare against");
  }

  // Exact AUC via the rank statistic: sort non-edge scores once, then for
  // each target count how many non-edges it beats (+0.5 per tie).
  std::sort(non_edge_scores.begin(), non_edge_scores.end());
  double auc_sum = 0.0;
  for (double ts : report.target_scores) {
    auto lo = std::lower_bound(non_edge_scores.begin(),
                               non_edge_scores.end(), ts);
    auto hi = std::upper_bound(lo, non_edge_scores.end(), ts);
    double below = static_cast<double>(lo - non_edge_scores.begin());
    double ties = static_cast<double>(hi - lo);
    auc_sum += (below + 0.5 * ties) /
               static_cast<double>(non_edge_scores.size());
  }
  report.auc = auc_sum / static_cast<double>(targets.size());

  // Exact precision@|T|: how many targets outrank the |T|-th best
  // candidate. Pessimistic tie-breaking (non-targets first), matching the
  // sampled evaluator.
  std::vector<std::pair<double, bool>> pool;
  pool.reserve(non_edge_scores.size() + targets.size());
  for (double s : non_edge_scores) pool.emplace_back(s, false);
  for (double s : report.target_scores) pool.emplace_back(s, true);
  std::stable_sort(pool.begin(), pool.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first > b.first;
                     return !a.second && b.second;
                   });
  size_t hits = 0;
  size_t cutoff = std::min(targets.size(), pool.size());
  for (size_t i = 0; i < cutoff; ++i) {
    if (pool[i].second) ++hits;
  }
  report.precision_at_t =
      cutoff > 0 ? static_cast<double>(hits) / static_cast<double>(cutoff)
                 : 0.0;
  return report;
}

Result<std::vector<AttackReport>> EvaluateAllAttacks(
    const Graph& g, const std::vector<Edge>& targets, Rng& rng,
    const AttackOptions& options) {
  std::vector<AttackReport> reports;
  reports.reserve(kAllIndices.size());
  for (IndexKind k : kAllIndices) {
    TPP_ASSIGN_OR_RETURN(AttackReport r,
                         EvaluateAttack(g, targets, k, rng, options));
    reports.push_back(std::move(r));
  }
  return reports;
}

}  // namespace tpp::linkpred
