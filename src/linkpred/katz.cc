#include "linkpred/katz.h"

#include "common/strings.h"

namespace tpp::linkpred {

using graph::Graph;
using graph::NodeId;

Result<std::vector<double>> KatzScoresFrom(const Graph& g, NodeId u,
                                           const KatzParams& params) {
  if (u >= g.NumNodes()) {
    return Status::InvalidArgument(StrFormat("node %u out of range", u));
  }
  if (params.beta <= 0.0 || params.beta >= 1.0) {
    return Status::InvalidArgument(
        StrFormat("Katz beta=%f out of (0,1)", params.beta));
  }
  std::vector<double> walks(g.NumNodes(), 0.0);  // walks of length l to node
  std::vector<double> next(g.NumNodes(), 0.0);
  std::vector<double> score(g.NumNodes(), 0.0);
  walks[u] = 1.0;  // one empty walk of length 0
  double beta_pow = 1.0;
  for (size_t l = 1; l <= params.max_length; ++l) {
    beta_pow *= params.beta;
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId x = 0; x < g.NumNodes(); ++x) {
      if (walks[x] == 0.0) continue;
      for (NodeId y : g.Neighbors(x)) next[y] += walks[x];
    }
    walks.swap(next);
    for (NodeId y = 0; y < g.NumNodes(); ++y) {
      score[y] += beta_pow * walks[y];
    }
  }
  return score;
}

Result<std::vector<std::vector<double>>> KatzWalkCounts(const Graph& g,
                                                        NodeId u,
                                                        size_t max_length) {
  if (u >= g.NumNodes()) {
    return Status::InvalidArgument(StrFormat("node %u out of range", u));
  }
  std::vector<std::vector<double>> counts(
      max_length + 1, std::vector<double>(g.NumNodes(), 0.0));
  counts[0][u] = 1.0;
  for (size_t l = 1; l <= max_length; ++l) {
    const std::vector<double>& prev = counts[l - 1];
    std::vector<double>& cur = counts[l];
    for (NodeId x = 0; x < g.NumNodes(); ++x) {
      if (prev[x] == 0.0) continue;
      for (NodeId y : g.Neighbors(x)) cur[y] += prev[x];
    }
  }
  return counts;
}

Result<double> KatzScore(const Graph& g, NodeId u, NodeId v,
                         const KatzParams& params) {
  if (v >= g.NumNodes()) {
    return Status::InvalidArgument(StrFormat("node %u out of range", v));
  }
  TPP_ASSIGN_OR_RETURN(std::vector<double> scores,
                       KatzScoresFrom(g, u, params));
  return scores[v];
}

}  // namespace tpp::linkpred
