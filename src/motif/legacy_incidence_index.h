// LegacyIncidenceIndex: the original unordered_map posting-list incidence
// index, kept as a reference implementation.
//
// This is the pre-CSR layout: edge -> vector<instance id> in a hash map,
// with every gain query walking the posting list and testing per-instance
// liveness (O(instances incident to e) per query). It is NOT used by any
// engine; it exists so that
//   * the gain-kernel benchmarks (bench/gain_kernels.cc,
//     bench/micro_kernels.cc) can quantify the CSR speedup against the
//     historical baseline, and
//   * differential tests can cross-check the CSR index's cached counts
//     against an independently maintained implementation.
// See motif/incidence_index.h for the production CSR index.

#ifndef TPP_MOTIF_LEGACY_INCIDENCE_INDEX_H_
#define TPP_MOTIF_LEGACY_INCIDENCE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "motif/enumerate.h"
#include "motif/incidence_index.h"
#include "motif/motif.h"
#include "motif/target_subgraph.h"

namespace tpp::motif {

/// Map-based reference incidence index; same contract and query surface as
/// IncidenceIndex (SplitGain is shared), different complexity: every gain
/// query is O(instances incident to the edge).
class LegacyIncidenceIndex {
 public:
  using SplitGain = IncidenceIndex::SplitGain;

  /// Same contract as IncidenceIndex::Build.
  static Result<LegacyIncidenceIndex> Build(
      const graph::Graph& g, const std::vector<graph::Edge>& targets,
      MotifKind kind);

  size_t NumTargets() const { return alive_per_target_.size(); }
  const std::vector<TargetSubgraph>& instances() const { return instances_; }
  bool IsAlive(size_t i) const { return alive_[i] != 0; }
  size_t TotalAlive() const { return total_alive_; }
  size_t AliveForTarget(size_t t) const { return alive_per_target_[t]; }
  const std::vector<size_t>& AliveCounts() const { return alive_per_target_; }

  /// O(instances incident to e) posting-list walk.
  size_t Gain(graph::EdgeKey e) const;
  SplitGain GainFor(graph::EdgeKey e, size_t t) const;
  void AccumulateGains(graph::EdgeKey e, std::vector<size_t>* out) const;
  size_t DeleteEdge(graph::EdgeKey e);
  std::vector<graph::EdgeKey> AliveCandidateEdges() const;
  std::vector<graph::EdgeKey> AllParticipatingEdges() const;

 private:
  LegacyIncidenceIndex() = default;

  std::vector<TargetSubgraph> instances_;
  std::vector<uint8_t> alive_;
  std::vector<size_t> alive_per_target_;
  size_t total_alive_ = 0;
  std::unordered_map<graph::EdgeKey, std::vector<uint32_t>>
      edge_to_instances_;
};

}  // namespace tpp::motif

#endif  // TPP_MOTIF_LEGACY_INCIDENCE_INDEX_H_
