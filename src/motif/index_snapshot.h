// IndexSnapshotCodec: single-file serialization of a built IncidenceIndex.
//
// A snapshot holds the complete post-build layout — the instance table,
// the interned edge keys, the EdgeIdOf probe table, both CSR structures,
// the slot/maintenance records, and the fresh count caches — as flat
// trivially-copyable sections behind a fixed header, each section aligned
// to 64 bytes so a loaded file can be ADOPTED in place: LoadIndex mmaps
// the file (common/blob_io.h) and points the index's immutable FlatArray
// members straight into the mapping, copying only the small mutable count
// arrays. Warm-starting a service therefore skips enumeration, interning,
// and every CSR pass; the load cost is one mmap plus two memcpys.
//
// Layout (all integers host-endian; the format is an on-machine cache,
// not an interchange format):
//
//   SnapshotHeader              (fixed size, checksummed separately)
//   SectionRecord[kNumSections] ({offset, size} per section)
//   ... 64-byte-aligned sections, zero-padded gaps ...
//
// Integrity: `header_checksum` covers the header bytes before it;
// `payload_checksum` covers everything after the header (section table
// included). A reader rejects — and the caller falls back to a cold
// build — on short files, bad magic, a version it does not understand,
// checksum mismatches, and meta mismatches (graph fingerprint, motif,
// target-set hash), in that order. Writers only ever publish complete
// files: SaveIndex serializes to memory and hands the bytes to
// AtomicWriteFile (tmp + fsync + rename).
//
// Only FRESH indexes snapshot: every instance alive, no deferred
// maintenance. That is exactly the state a cold build produces and the
// only state a warm start wants; Serialize refuses anything else.

#ifndef TPP_MOTIF_INDEX_SNAPSHOT_H_
#define TPP_MOTIF_INDEX_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "motif/incidence_index.h"
#include "motif/motif.h"

namespace tpp::motif {

/// Identity of one built index: which graph (structural fingerprint),
/// which targets (order-sensitive hash — targets index count arrays
/// positionally), which motif. Stored in the snapshot header and checked
/// on load; a mismatch means the snapshot answers a different question
/// and must not be served.
struct IndexSnapshotMeta {
  uint64_t graph_fingerprint = 0;
  uint64_t target_hash = 0;
  MotifKind motif = MotifKind::kTriangle;
  uint32_t num_targets = 0;
};

class IndexSnapshotCodec {
 public:
  /// Bumped whenever the header or section layout changes — or the
  /// meaning of a header field: version 2 switched the graph fingerprint
  /// to the edit-commutative XOR scheme (graph/fingerprint.h), so version
  /// 1 files carry fingerprints no current caller can ever match. A
  /// reader rejects any other value (falling back to a cold build) rather
  /// than guessing at an old layout; `tpp store evict --stale` garbage-
  /// collects the superseded files.
  static constexpr uint32_t kFormatVersion = 2;

  /// Header metadata of a snapshot file, as read back by Inspect —
  /// everything `tpp store ls` prints without touching the payload.
  struct FileInfo {
    IndexSnapshotMeta meta;
    uint32_t format_version = 0;
    uint64_t num_instances = 0;
    uint64_t num_edges = 0;  ///< interned participating edges
    uint64_t file_size = 0;
  };

  /// Serializes `index` (which must be fresh — all instances alive, no
  /// deferred maintenance) into the single-file snapshot format.
  static Result<std::string> Serialize(const IncidenceIndex& index,
                                       const IndexSnapshotMeta& meta);

  /// Serialize + AtomicWriteFile: publishes the snapshot at `path` with
  /// the complete-file-or-nothing guarantee.
  static Status Save(const IncidenceIndex& index,
                     const IndexSnapshotMeta& meta, const std::string& path);

  /// Maps `path` and reconstitutes the index, adopting the immutable
  /// sections zero-copy out of the mapping (the returned index, and every
  /// clone of it, keeps the mapping alive). Fails — callers fall back to
  /// a cold build — on any integrity violation or when the file's meta
  /// differs from `expected`.
  static Result<IncidenceIndex> Load(const std::string& path,
                                     const IndexSnapshotMeta& expected);

  /// Reads and validates only the header (magic, version, header
  /// checksum) and returns its metadata. Cheap: no payload verification.
  static Result<FileInfo> Inspect(const std::string& path);

  /// Full integrity check: header plus payload checksum over the whole
  /// file. The workhorse of `tpp store verify`.
  static Status Verify(const std::string& path);
};

}  // namespace tpp::motif

#endif  // TPP_MOTIF_INDEX_SNAPSHOT_H_
