// Brute-force reference enumerators: independent O(n^2)-per-target
// implementations used as differential-test oracles for enumerate.h.

#ifndef TPP_MOTIF_BRUTE_FORCE_H_
#define TPP_MOTIF_BRUTE_FORCE_H_

#include <vector>

#include "graph/graph.h"
#include "motif/motif.h"
#include "motif/target_subgraph.h"

namespace tpp::motif {

/// Enumerates target subgraphs by scanning all node (pairs); deliberately
/// written without shared code with EnumerateTargetSubgraphs so the two can
/// cross-check each other.
std::vector<TargetSubgraph> BruteForceTargetSubgraphs(
    const graph::Graph& g, graph::Edge target, MotifKind kind,
    int32_t target_index = 0);

/// Count-only variant.
size_t BruteForceCount(const graph::Graph& g, graph::Edge target,
                       MotifKind kind);

}  // namespace tpp::motif

#endif  // TPP_MOTIF_BRUTE_FORCE_H_
