// TargetSubgraph: one motif instance serving one target link.

#ifndef TPP_MOTIF_TARGET_SUBGRAPH_H_
#define TPP_MOTIF_TARGET_SUBGRAPH_H_

#include <algorithm>
#include <array>
#include <cstdint>

#include "graph/edge.h"

namespace tpp::motif {

/// A single target subgraph: the (<= 4) non-target edges of one motif
/// instance, plus the index of the target it serves. Edge keys are kept
/// sorted ascending so two instances are equal iff their fields match.
///
/// An instance is *alive* while all of its edges are present in the
/// released graph; deleting any one of them breaks it permanently (the
/// graph only ever loses edges during phase 2).
struct TargetSubgraph {
  int32_t target = -1;                  ///< index into the target vector
  uint8_t num_edges = 0;                ///< 2 (Tri), 3 (Rect) or 4 (RecTri)
  std::array<graph::EdgeKey, 4> edges{};  ///< sorted; tail entries are 0

  TargetSubgraph() = default;

  /// Builds an instance from an unsorted edge list (at most 4 keys).
  TargetSubgraph(int32_t target_index,
                 std::initializer_list<graph::EdgeKey> keys)
      : target(target_index) {
    for (graph::EdgeKey k : keys) {
      // Insertion sort; instances have at most 4 edges.
      uint8_t i = num_edges++;
      while (i > 0 && edges[i - 1] > k) {
        edges[i] = edges[i - 1];
        --i;
      }
      edges[i] = k;
    }
  }

  /// True iff the instance contains edge `key`.
  bool ContainsEdge(graph::EdgeKey key) const {
    return std::binary_search(edges.begin(), edges.begin() + num_edges, key);
  }

  friend bool operator==(const TargetSubgraph& a, const TargetSubgraph& b) {
    return a.target == b.target && a.num_edges == b.num_edges &&
           a.edges == b.edges;
  }
};

}  // namespace tpp::motif

#endif  // TPP_MOTIF_TARGET_SUBGRAPH_H_
