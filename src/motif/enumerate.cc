#include "motif/enumerate.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "common/flags.h"
#include "common/thread_pool.h"

namespace tpp::motif {

using graph::Edge;
using graph::EdgeKey;
using graph::Graph;
using graph::MakeEdgeKey;
using graph::NodeId;

namespace {

// Hub-splitting policy for the parallel build: a Rectangle/Pentagon/RecTri
// target whose outer loop runs over more than kHubSplitDegree first
// neighbors is split into kHubChunk-wide tasks so one hub target cannot
// serialize a parallel enumeration. Triangles are never split — their
// whole per-target cost is one neighbor-list scan. The policy is a pure
// function of the graph and targets (never of a thread budget), so the
// task list, and therefore the merged output order, is the same on every
// run.
constexpr size_t kHubSplitDegree = 128;
constexpr size_t kHubChunk = 64;

// Shared enumeration core: calls `emit` for each instance's edge list
// whose outermost probe lies in positions [nbr_begin, nbr_end) of
// target.u's neighbor list. Membership probes (x in N(v), x in N(u)) are
// O(1) scratch-marker reads instead of per-probe binary searches; common
// neighbors are found by scanning u's (sub)list against the v-marks, which
// preserves the ascending order the serial merge produced. Passing a
// count-only sink lets Count and Append share one definition. The caller
// must have called scratch.MarkTarget(g, target, kind) already — the
// task loops below mark once per (worker, target), not once per chunk.
template <typename Emit2, typename Emit3, typename Emit4>
void ForEachInstancePremarked(const Graph& g, Edge target, MotifKind kind,
                              size_t nbr_begin, size_t nbr_end,
                              const EnumerateScratch& scratch, Emit2 emit2,
                              Emit3 emit3, Emit4 emit4) {
  const NodeId u = target.u;
  const NodeId v = target.v;
  TPP_CHECK_NE(u, v);
  if (nbr_begin >= nbr_end) return;
  const std::span<const NodeId> outer =
      g.Neighbors(u).subspan(nbr_begin, nbr_end - nbr_begin);
  switch (kind) {
    case MotifKind::kTriangle: {
      // Common neighbors of u and v: u's (sorted) neighbors that carry a
      // v-mark, visited in the same ascending order the old merge used.
      for (NodeId w : outer) {
        if (scratch.VMarked(w)) {
          emit2(MakeEdgeKey(u, w), MakeEdgeKey(w, v));
        }
      }
      break;
    }
    case MotifKind::kRectangle: {
      // Simple 3-paths u-a-b-v.
      for (NodeId a : outer) {
        if (a == v) continue;
        for (NodeId b : g.Neighbors(a)) {
          if (b == u || b == v) continue;
          if (scratch.VMarked(b)) {
            emit3(MakeEdgeKey(u, a), MakeEdgeKey(a, b), MakeEdgeKey(b, v));
          }
        }
      }
      break;
    }
    case MotifKind::kPentagon: {
      // Simple 4-paths u-a-b-c-v with distinct intermediates.
      for (NodeId a : outer) {
        if (a == v) continue;
        for (NodeId b : g.Neighbors(a)) {
          if (b == u || b == v) continue;
          for (NodeId c : g.Neighbors(b)) {
            if (c == u || c == v || c == a) continue;
            if (scratch.VMarked(c)) {
              emit4(MakeEdgeKey(u, a), MakeEdgeKey(a, b), MakeEdgeKey(b, c),
                    MakeEdgeKey(c, v));
            }
          }
        }
      }
      break;
    }
    case MotifKind::kRecTri: {
      // 2-path u-w-v plus a 3-path sharing intermediate w.
      for (NodeId w : outer) {
        if (!scratch.VMarked(w)) continue;
        const EdgeKey uw = MakeEdgeKey(u, w);
        const EdgeKey wv = MakeEdgeKey(w, v);
        for (NodeId x : g.Neighbors(w)) {
          if (x == u || x == v) continue;
          // Type A: 3-path u-w-x-v.
          if (scratch.VMarked(x)) {
            emit4(uw, wv, MakeEdgeKey(w, x), MakeEdgeKey(x, v));
          }
          // Type B: 3-path u-x-w-v.
          if (scratch.UMarked(x)) {
            emit4(uw, wv, MakeEdgeKey(u, x), MakeEdgeKey(x, w));
          }
        }
      }
      break;
    }
  }
}

// Appends instances without re-marking (see ForEachInstancePremarked).
void AppendPremarked(const Graph& g, Edge target, MotifKind kind,
                     int32_t target_index, size_t nbr_begin, size_t nbr_end,
                     const EnumerateScratch& scratch,
                     std::vector<TargetSubgraph>& out) {
  ForEachInstancePremarked(
      g, target, kind, nbr_begin, nbr_end, scratch,
      [&](EdgeKey a, EdgeKey b) {
        out.push_back(TargetSubgraph(target_index, {a, b}));
      },
      [&](EdgeKey a, EdgeKey b, EdgeKey c) {
        out.push_back(TargetSubgraph(target_index, {a, b, c}));
      },
      [&](EdgeKey a, EdgeKey b, EdgeKey c, EdgeKey d) {
        out.push_back(TargetSubgraph(target_index, {a, b, c, d}));
      });
}

size_t CountPremarked(const Graph& g, Edge target, MotifKind kind,
                      size_t nbr_begin, size_t nbr_end,
                      const EnumerateScratch& scratch) {
  size_t count = 0;
  ForEachInstancePremarked(
      g, target, kind, nbr_begin, nbr_end, scratch,
      [&](EdgeKey, EdgeKey) { ++count; },
      [&](EdgeKey, EdgeKey, EdgeKey) { ++count; },
      [&](EdgeKey, EdgeKey, EdgeKey, EdgeKey) { ++count; });
  return count;
}

// Worker-local memo of the last target marked into the thread's scratch.
// The epoch is unique per task-sweep invocation, so a thread_local cache
// can never serve marks from an earlier sweep (or an earlier graph that
// happened to reuse the same address); within one sweep the graph and
// target list are fixed, so (epoch, target) fully identifies the marks.
// Consecutive hub chunks of one target claimed by the same worker then
// mark once, not once per 64-neighbor chunk.
std::atomic<uint64_t> g_sweep_epoch{0};

struct MarkMemo {
  uint64_t epoch = 0;
  uint32_t target = 0;
};

void EnsureMarked(const Graph& g, Edge target, MotifKind kind,
                  uint64_t epoch, uint32_t target_index,
                  EnumerateScratch& scratch, MarkMemo& memo) {
  if (memo.epoch == epoch && memo.target == target_index) return;
  scratch.MarkTarget(g, target, kind);
  memo.epoch = epoch;
  memo.target = target_index;
}

}  // namespace

void EnumerateScratch::Mark(std::span<const NodeId> nbrs, size_t num_nodes,
                            std::vector<uint32_t>& mark, uint32_t& stamp) {
  if (mark.size() < num_nodes) mark.resize(num_nodes, 0);
  if (++stamp == 0) {  // stamp wrapped: clear stale marks once per 2^32
    std::fill(mark.begin(), mark.end(), 0);
    stamp = 1;
  }
  for (NodeId w : nbrs) mark[w] = stamp;
}

void EnumerateScratch::MarkTarget(const Graph& g, Edge target,
                                  MotifKind kind) {
  Mark(g.Neighbors(target.v), g.NumNodes(), vmark_, vstamp_);
  if (kind == MotifKind::kRecTri) {
    Mark(g.Neighbors(target.u), g.NumNodes(), umark_, ustamp_);
  }
}

void AppendTargetSubgraphs(const Graph& g, Edge target, MotifKind kind,
                           int32_t target_index, size_t nbr_begin,
                           size_t nbr_end, EnumerateScratch& scratch,
                           std::vector<TargetSubgraph>& out) {
  if (nbr_begin >= nbr_end) return;
  scratch.MarkTarget(g, target, kind);
  AppendPremarked(g, target, kind, target_index, nbr_begin, nbr_end,
                  scratch, out);
}

std::vector<TargetSubgraph> EnumerateTargetSubgraphs(const Graph& g,
                                                     Edge target,
                                                     MotifKind kind,
                                                     int32_t target_index) {
  std::vector<TargetSubgraph> out;
  EnumerateScratch scratch;
  AppendTargetSubgraphs(g, target, kind, target_index, 0,
                        g.Degree(target.u), scratch, out);
  return out;
}

std::vector<TargetSubgraph> EnumerateTargetSubgraphsReference(
    const Graph& g, Edge target, MotifKind kind, int32_t target_index) {
  // The pre-optimization implementation, frozen as the bench baseline: a
  // CommonNeighbors vector per probe and a HasEdge binary search per
  // adjacency test. Do not "fix" this to use EnumerateScratch — its whole
  // point is to keep costing what the old build cost.
  const NodeId u = target.u;
  const NodeId v = target.v;
  TPP_CHECK_NE(u, v);
  std::vector<TargetSubgraph> out;
  switch (kind) {
    case MotifKind::kTriangle: {
      for (NodeId w : g.CommonNeighbors(u, v)) {
        out.push_back(TargetSubgraph(
            target_index, {MakeEdgeKey(u, w), MakeEdgeKey(w, v)}));
      }
      break;
    }
    case MotifKind::kRectangle: {
      for (NodeId a : g.Neighbors(u)) {
        if (a == v) continue;
        for (NodeId b : g.Neighbors(a)) {
          if (b == u || b == v) continue;
          if (g.HasEdge(b, v)) {
            out.push_back(TargetSubgraph(
                target_index,
                {MakeEdgeKey(u, a), MakeEdgeKey(a, b), MakeEdgeKey(b, v)}));
          }
        }
      }
      break;
    }
    case MotifKind::kPentagon: {
      for (NodeId a : g.Neighbors(u)) {
        if (a == v) continue;
        for (NodeId b : g.Neighbors(a)) {
          if (b == u || b == v) continue;
          for (NodeId c : g.Neighbors(b)) {
            if (c == u || c == v || c == a) continue;
            if (g.HasEdge(c, v)) {
              out.push_back(TargetSubgraph(
                  target_index,
                  {MakeEdgeKey(u, a), MakeEdgeKey(a, b), MakeEdgeKey(b, c),
                   MakeEdgeKey(c, v)}));
            }
          }
        }
      }
      break;
    }
    case MotifKind::kRecTri: {
      for (NodeId w : g.CommonNeighbors(u, v)) {
        const EdgeKey uw = MakeEdgeKey(u, w);
        const EdgeKey wv = MakeEdgeKey(w, v);
        for (NodeId x : g.Neighbors(w)) {
          if (x == u || x == v) continue;
          if (g.HasEdge(x, v)) {
            out.push_back(TargetSubgraph(
                target_index,
                {uw, wv, MakeEdgeKey(w, x), MakeEdgeKey(x, v)}));
          }
          if (g.HasEdge(u, x)) {
            out.push_back(TargetSubgraph(
                target_index,
                {uw, wv, MakeEdgeKey(u, x), MakeEdgeKey(x, w)}));
          }
        }
      }
      break;
    }
  }
  return out;
}

size_t CountTargetSubgraphs(const Graph& g, Edge target, MotifKind kind) {
  EnumerateScratch scratch;
  return CountTargetSubgraphs(g, target, kind, scratch);
}

size_t CountTargetSubgraphs(const Graph& g, Edge target, MotifKind kind,
                            EnumerateScratch& scratch) {
  const size_t deg = g.Degree(target.u);
  if (deg == 0) return 0;
  scratch.MarkTarget(g, target, kind);
  return CountPremarked(g, target, kind, 0, deg, scratch);
}

std::vector<EnumerationTask> PlanEnumerationTasks(
    const Graph& g, const std::vector<Edge>& targets, MotifKind kind) {
  std::vector<EnumerationTask> tasks;
  tasks.reserve(targets.size());
  for (uint32_t t = 0; t < targets.size(); ++t) {
    const size_t deg = g.Degree(targets[t].u);
    if (deg == 0) continue;  // no outer probes, no instances
    if (kind == MotifKind::kTriangle || deg <= kHubSplitDegree) {
      tasks.push_back({t, 0, static_cast<uint32_t>(deg)});
      continue;
    }
    for (size_t lo = 0; lo < deg; lo += kHubChunk) {
      tasks.push_back({t, static_cast<uint32_t>(lo),
                       static_cast<uint32_t>(std::min(lo + kHubChunk, deg))});
    }
  }
  return tasks;
}

std::vector<TargetSubgraph> EnumerateAllTargetSubgraphs(
    const Graph& g, const std::vector<Edge>& targets, MotifKind kind,
    int threads, size_t* num_tasks) {
  const std::vector<EnumerationTask> tasks =
      PlanEnumerationTasks(g, targets, kind);
  if (num_tasks) *num_tasks = tasks.size();
  const int workers = threads > 0 ? threads : GlobalThreadCount();
  const uint64_t epoch =
      g_sweep_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  if (workers <= 1 || tasks.size() <= 1) {
    // Serial: append straight into the result; task order == serial order.
    std::vector<TargetSubgraph> out;
    EnumerateScratch scratch;
    MarkMemo memo;
    for (const EnumerationTask& task : tasks) {
      EnsureMarked(g, targets[task.target], kind, epoch, task.target,
                   scratch, memo);
      AppendPremarked(g, targets[task.target], kind,
                      static_cast<int32_t>(task.target), task.nbr_begin,
                      task.nbr_end, scratch, out);
    }
    return out;
  }

  // Parallel: every task fills a private slot (dynamic claiming over the
  // shared pool balances hub chunks), then the slots are merged
  // count-then-fill in task order — the serial (target, emit) order.
  std::vector<std::vector<TargetSubgraph>> slots(tasks.size());
  ThreadPool& pool = GlobalThreadPool();
  pool.ParallelFor(tasks.size(), workers, /*grain=*/1,
                   [&](size_t begin, size_t end) {
                     thread_local EnumerateScratch scratch;
                     thread_local MarkMemo memo;
                     for (size_t k = begin; k < end; ++k) {
                       const EnumerationTask& task = tasks[k];
                       EnsureMarked(g, targets[task.target], kind, epoch,
                                    task.target, scratch, memo);
                       AppendPremarked(
                           g, targets[task.target], kind,
                           static_cast<int32_t>(task.target), task.nbr_begin,
                           task.nbr_end, scratch, slots[k]);
                     }
                   });
  std::vector<size_t> offsets(tasks.size() + 1, 0);
  for (size_t k = 0; k < slots.size(); ++k) {
    offsets[k + 1] = offsets[k] + slots[k].size();
  }
  std::vector<TargetSubgraph> out(offsets.back());
  pool.ParallelFor(slots.size(), workers, /*grain=*/1,
                   [&](size_t begin, size_t end) {
                     for (size_t k = begin; k < end; ++k) {
                       std::copy(slots[k].begin(), slots[k].end(),
                                 out.begin() + offsets[k]);
                     }
                   });
  return out;
}

size_t TotalSimilarity(const Graph& g, const std::vector<Edge>& targets,
                       MotifKind kind, int threads) {
  const int workers = threads > 0 ? threads : GlobalThreadCount();
  if (workers <= 1 || targets.size() <= 1) {
    EnumerateScratch scratch;
    size_t total = 0;
    for (const Edge& t : targets) {
      total += CountTargetSubgraphs(g, t, kind, scratch);
    }
    return total;
  }
  const std::vector<EnumerationTask> tasks =
      PlanEnumerationTasks(g, targets, kind);
  const uint64_t epoch =
      g_sweep_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  std::vector<size_t> partial(tasks.size(), 0);
  GlobalThreadPool().ParallelFor(
      tasks.size(), workers, /*grain=*/1, [&](size_t begin, size_t end) {
        thread_local EnumerateScratch scratch;
        thread_local MarkMemo memo;
        for (size_t k = begin; k < end; ++k) {
          const EnumerationTask& task = tasks[k];
          EnsureMarked(g, targets[task.target], kind, epoch, task.target,
                       scratch, memo);
          partial[k] = CountPremarked(g, targets[task.target], kind,
                                      task.nbr_begin, task.nbr_end, scratch);
        }
      });
  size_t total = 0;
  for (size_t p : partial) total += p;
  return total;
}

}  // namespace tpp::motif
