#include "motif/enumerate.h"

#include "common/check.h"

namespace tpp::motif {

using graph::Edge;
using graph::EdgeKey;
using graph::Graph;
using graph::MakeEdgeKey;
using graph::NodeId;

namespace {

// Shared enumeration core: calls `emit` for each instance's edge list.
// Passing a count-only sink lets Count and Enumerate share one definition.
template <typename Emit2, typename Emit3, typename Emit4>
void ForEachInstance(const Graph& g, Edge target, MotifKind kind,
                     Emit2 emit2, Emit3 emit3, Emit4 emit4) {
  const NodeId u = target.u;
  const NodeId v = target.v;
  TPP_CHECK_NE(u, v);
  switch (kind) {
    case MotifKind::kTriangle: {
      for (NodeId w : g.CommonNeighbors(u, v)) {
        emit2(MakeEdgeKey(u, w), MakeEdgeKey(w, v));
      }
      break;
    }
    case MotifKind::kRectangle: {
      // Simple 3-paths u-a-b-v.
      for (NodeId a : g.Neighbors(u)) {
        if (a == v) continue;
        for (NodeId b : g.Neighbors(a)) {
          if (b == u || b == v) continue;
          if (g.HasEdge(b, v)) {
            emit3(MakeEdgeKey(u, a), MakeEdgeKey(a, b), MakeEdgeKey(b, v));
          }
        }
      }
      break;
    }
    case MotifKind::kPentagon: {
      // Simple 4-paths u-a-b-c-v with distinct intermediates.
      for (NodeId a : g.Neighbors(u)) {
        if (a == v) continue;
        for (NodeId b : g.Neighbors(a)) {
          if (b == u || b == v) continue;
          for (NodeId c : g.Neighbors(b)) {
            if (c == u || c == v || c == a) continue;
            if (g.HasEdge(c, v)) {
              emit4(MakeEdgeKey(u, a), MakeEdgeKey(a, b), MakeEdgeKey(b, c),
                    MakeEdgeKey(c, v));
            }
          }
        }
      }
      break;
    }
    case MotifKind::kRecTri: {
      // 2-path u-w-v plus a 3-path sharing intermediate w.
      for (NodeId w : g.CommonNeighbors(u, v)) {
        const EdgeKey uw = MakeEdgeKey(u, w);
        const EdgeKey wv = MakeEdgeKey(w, v);
        for (NodeId x : g.Neighbors(w)) {
          if (x == u || x == v) continue;
          // Type A: 3-path u-w-x-v.
          if (g.HasEdge(x, v)) {
            emit4(uw, wv, MakeEdgeKey(w, x), MakeEdgeKey(x, v));
          }
          // Type B: 3-path u-x-w-v.
          if (g.HasEdge(u, x)) {
            emit4(uw, wv, MakeEdgeKey(u, x), MakeEdgeKey(x, w));
          }
        }
      }
      break;
    }
  }
}

}  // namespace

std::vector<TargetSubgraph> EnumerateTargetSubgraphs(const Graph& g,
                                                     Edge target,
                                                     MotifKind kind,
                                                     int32_t target_index) {
  std::vector<TargetSubgraph> out;
  ForEachInstance(
      g, target, kind,
      [&](EdgeKey a, EdgeKey b) {
        out.push_back(TargetSubgraph(target_index, {a, b}));
      },
      [&](EdgeKey a, EdgeKey b, EdgeKey c) {
        out.push_back(TargetSubgraph(target_index, {a, b, c}));
      },
      [&](EdgeKey a, EdgeKey b, EdgeKey c, EdgeKey d) {
        out.push_back(TargetSubgraph(target_index, {a, b, c, d}));
      });
  return out;
}

size_t CountTargetSubgraphs(const Graph& g, Edge target, MotifKind kind) {
  size_t count = 0;
  ForEachInstance(
      g, target, kind, [&](EdgeKey, EdgeKey) { ++count; },
      [&](EdgeKey, EdgeKey, EdgeKey) { ++count; },
      [&](EdgeKey, EdgeKey, EdgeKey, EdgeKey) { ++count; });
  return count;
}

size_t TotalSimilarity(const Graph& g, const std::vector<Edge>& targets,
                       MotifKind kind) {
  size_t total = 0;
  for (const Edge& t : targets) {
    total += CountTargetSubgraphs(g, t, kind);
  }
  return total;
}

}  // namespace tpp::motif
