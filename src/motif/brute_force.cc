#include "motif/brute_force.h"

namespace tpp::motif {

using graph::Edge;
using graph::Graph;
using graph::MakeEdgeKey;
using graph::NodeId;

std::vector<TargetSubgraph> BruteForceTargetSubgraphs(const Graph& g,
                                                      Edge target,
                                                      MotifKind kind,
                                                      int32_t target_index) {
  std::vector<TargetSubgraph> out;
  const NodeId u = target.u;
  const NodeId v = target.v;
  const NodeId n = static_cast<NodeId>(g.NumNodes());
  switch (kind) {
    case MotifKind::kTriangle: {
      for (NodeId w = 0; w < n; ++w) {
        if (w == u || w == v) continue;
        if (g.HasEdge(u, w) && g.HasEdge(w, v)) {
          out.push_back(TargetSubgraph(
              target_index, {MakeEdgeKey(u, w), MakeEdgeKey(w, v)}));
        }
      }
      break;
    }
    case MotifKind::kRectangle: {
      for (NodeId a = 0; a < n; ++a) {
        if (a == u || a == v) continue;
        for (NodeId b = 0; b < n; ++b) {
          if (b == u || b == v || b == a) continue;
          if (g.HasEdge(u, a) && g.HasEdge(a, b) && g.HasEdge(b, v)) {
            out.push_back(TargetSubgraph(target_index,
                                         {MakeEdgeKey(u, a), MakeEdgeKey(a, b),
                                          MakeEdgeKey(b, v)}));
          }
        }
      }
      break;
    }
    case MotifKind::kPentagon: {
      for (NodeId a = 0; a < n; ++a) {
        if (a == u || a == v) continue;
        for (NodeId b = 0; b < n; ++b) {
          if (b == u || b == v || b == a) continue;
          for (NodeId c = 0; c < n; ++c) {
            if (c == u || c == v || c == a || c == b) continue;
            if (g.HasEdge(u, a) && g.HasEdge(a, b) && g.HasEdge(b, c) &&
                g.HasEdge(c, v)) {
              out.push_back(TargetSubgraph(target_index,
                                           {MakeEdgeKey(u, a),
                                            MakeEdgeKey(a, b),
                                            MakeEdgeKey(b, c),
                                            MakeEdgeKey(c, v)}));
            }
          }
        }
      }
      break;
    }
    case MotifKind::kRecTri: {
      for (NodeId w = 0; w < n; ++w) {
        if (w == u || w == v) continue;
        if (!g.HasEdge(u, w) || !g.HasEdge(w, v)) continue;
        for (NodeId x = 0; x < n; ++x) {
          if (x == u || x == v || x == w) continue;
          // Type A: 3-path u-w-x-v shares w with the 2-path u-w-v.
          if (g.HasEdge(w, x) && g.HasEdge(x, v)) {
            out.push_back(TargetSubgraph(target_index,
                                         {MakeEdgeKey(u, w), MakeEdgeKey(w, v),
                                          MakeEdgeKey(w, x),
                                          MakeEdgeKey(x, v)}));
          }
          // Type B: 3-path u-x-w-v shares w with the 2-path u-w-v.
          if (g.HasEdge(u, x) && g.HasEdge(x, w)) {
            out.push_back(TargetSubgraph(target_index,
                                         {MakeEdgeKey(u, w), MakeEdgeKey(w, v),
                                          MakeEdgeKey(u, x),
                                          MakeEdgeKey(x, w)}));
          }
        }
      }
      break;
    }
  }
  return out;
}

size_t BruteForceCount(const Graph& g, Edge target, MotifKind kind) {
  return BruteForceTargetSubgraphs(g, target, kind).size();
}

}  // namespace tpp::motif
