#include "motif/motif.h"

namespace tpp::motif {

std::string_view MotifName(MotifKind kind) {
  switch (kind) {
    case MotifKind::kTriangle:
      return "Triangle";
    case MotifKind::kRectangle:
      return "Rectangle";
    case MotifKind::kRecTri:
      return "RecTri";
    case MotifKind::kPentagon:
      return "Pentagon";
  }
  return "Unknown";
}

Result<MotifKind> ParseMotifKind(std::string_view name) {
  for (MotifKind k : kAllMotifs) {
    if (MotifName(k) == name) return k;
  }
  return Status::InvalidArgument("unknown motif: " + std::string(name));
}

size_t MotifEdgeCount(MotifKind kind) {
  switch (kind) {
    case MotifKind::kTriangle:
      return 2;
    case MotifKind::kRectangle:
      return 3;
    case MotifKind::kRecTri:
      return 4;
    case MotifKind::kPentagon:
      return 4;
  }
  return 0;
}

}  // namespace tpp::motif
