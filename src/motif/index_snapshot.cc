#include "motif/index_snapshot.h"

#include <bit>
#include <cstddef>
#include <cstring>

#include "common/blob_io.h"
#include "common/strings.h"

namespace tpp::motif {

namespace {

constexpr char kMagic[8] = {'T', 'P', 'P', 'I', 'D', 'X', '1', '\0'};
constexpr size_t kSectionAlign = 64;

// Section order is part of the format; bump kFormatVersion to change it.
enum Section : uint32_t {
  kInstances = 0,
  kEdgeKeys,
  kUOffsets,
  kProbeKeys,
  kProbeIds,
  kInstOffsets,
  kInstanceIds,
  kTgtOffsets,
  kTgtIds,
  kTgtCounts,
  kAliveCount,
  kMaint,
  kNumSections,
};

struct SnapshotHeader {
  char magic[8];
  uint32_t format_version;
  uint32_t motif;
  uint64_t graph_fingerprint;
  uint64_t target_hash;
  uint32_t num_targets;
  uint32_t arity;
  uint64_t num_instances;
  uint64_t num_edges;          // interned participating edges
  uint64_t num_u_offsets;      // NumNodes() + 1 at build time
  uint64_t probe_capacity;
  uint64_t num_cells;          // CSR-2 (target, count) pairs
  uint64_t num_instance_refs;  // CSR-1 posting-list entries
  uint64_t file_size;          // total snapshot size, truncation guard
  uint64_t payload_checksum;   // HashBytes64 of everything after the header
  uint64_t header_checksum;    // HashBytes64 of the header before this field
};
static_assert(std::is_trivially_copyable_v<SnapshotHeader>);
static_assert(sizeof(SnapshotHeader) == 112);

struct SectionRecord {
  uint64_t offset = 0;
  uint64_t size = 0;
};
static_assert(sizeof(SectionRecord) == 16);

// The adopted sections reinterpret file bytes as these structs; their
// layout is therefore part of the format.
static_assert(std::is_trivially_copyable_v<TargetSubgraph>);
static_assert(sizeof(TargetSubgraph) == 40);

constexpr size_t kTableOffset = sizeof(SnapshotHeader);
constexpr size_t kTableSize = kNumSections * sizeof(SectionRecord);

size_t Align64(size_t offset) {
  return (offset + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

uint64_t HeaderChecksum(const SnapshotHeader& h) {
  return HashBytes64(&h, offsetof(SnapshotHeader, header_checksum));
}

Status CorruptError(const std::string& path, const char* what) {
  return Status::IoError(StrFormat("snapshot %s: %s", path.c_str(), what));
}

// Reads and validates the fixed header: length, magic, header checksum,
// version. Meta and payload validation are the caller's concern.
Result<SnapshotHeader> ReadHeader(const MappedBlob& blob,
                                  const std::string& path) {
  if (blob.size() < kTableOffset + kTableSize) {
    return CorruptError(path, "file shorter than header");
  }
  SnapshotHeader h;
  std::memcpy(&h, blob.data(), sizeof h);
  if (std::memcmp(h.magic, kMagic, sizeof kMagic) != 0) {
    return CorruptError(path, "bad magic");
  }
  if (h.header_checksum != HeaderChecksum(h)) {
    return CorruptError(path, "header checksum mismatch");
  }
  if (h.format_version != IndexSnapshotCodec::kFormatVersion) {
    return CorruptError(path, "unsupported format version");
  }
  return h;
}

}  // namespace

Result<std::string> IndexSnapshotCodec::Serialize(
    const IncidenceIndex& index, const IndexSnapshotMeta& meta) {
  if (index.HasDeferredMaintenance() ||
      index.total_alive_ != index.instances_.size()) {
    return Status::FailedPrecondition(
        "only fresh indexes snapshot: all instances alive, nothing queued");
  }
  if (meta.num_targets != index.NumTargets()) {
    return Status::InvalidArgument("meta.num_targets != index.NumTargets()");
  }

  SnapshotHeader h{};
  std::memcpy(h.magic, kMagic, sizeof kMagic);
  h.format_version = kFormatVersion;
  h.motif = static_cast<uint32_t>(meta.motif);
  h.graph_fingerprint = meta.graph_fingerprint;
  h.target_hash = meta.target_hash;
  h.num_targets = meta.num_targets;
  h.arity = index.arity_;
  h.num_instances = index.instances_.size();
  h.num_edges = index.edge_keys_.size();
  h.num_u_offsets = index.u_offsets_.size();
  h.probe_capacity = index.probe_keys_.size();
  h.num_cells = index.tgt_ids_.size();
  h.num_instance_refs = index.instance_ids_.size();

  SectionRecord table[kNumSections];
  const size_t section_bytes[kNumSections] = {
      h.num_instances * sizeof(TargetSubgraph),
      h.num_edges * sizeof(graph::EdgeKey),
      h.num_u_offsets * sizeof(uint32_t),
      h.probe_capacity * sizeof(graph::EdgeKey),
      h.probe_capacity * sizeof(uint32_t),
      (h.num_edges + 1) * sizeof(uint32_t),
      h.num_instance_refs * sizeof(uint32_t),
      (h.num_edges + 1) * sizeof(uint32_t),
      h.num_cells * sizeof(uint32_t),
      h.num_cells * sizeof(uint32_t),
      h.num_edges * sizeof(uint32_t),
      h.num_instances * sizeof(IncidenceIndex::InstanceMaintenance),
  };
  size_t cursor = Align64(kTableOffset + kTableSize);
  for (uint32_t s = 0; s < kNumSections; ++s) {
    table[s].offset = cursor;
    table[s].size = section_bytes[s];
    cursor = Align64(cursor + section_bytes[s]);
  }
  h.file_size = cursor;

  // One zero-initialized buffer: alignment gaps — and struct padding, see
  // the instance normalization below — serialize as deterministic zeros.
  std::string out(h.file_size, '\0');
  const auto put = [&out, &table](Section s, const void* src, size_t size) {
    if (size > 0) std::memcpy(out.data() + table[s].offset, src, size);
  };
  // TargetSubgraph carries 3 padding bytes after num_edges; copying the
  // raw array would write whatever the build left there. Normalize via
  // field-wise copies into the pre-zeroed buffer so snapshot bytes are a
  // pure function of the index content.
  for (size_t i = 0; i < index.instances_.size(); ++i) {
    const TargetSubgraph& src = index.instances_[i];
    char* dst =
        out.data() + table[kInstances].offset + i * sizeof(TargetSubgraph);
    std::memcpy(dst + offsetof(TargetSubgraph, target), &src.target,
                sizeof src.target);
    std::memcpy(dst + offsetof(TargetSubgraph, num_edges), &src.num_edges,
                sizeof src.num_edges);
    std::memcpy(dst + offsetof(TargetSubgraph, edges), src.edges.data(),
                sizeof src.edges);
  }
  put(kEdgeKeys, index.edge_keys_.data(), section_bytes[kEdgeKeys]);
  put(kUOffsets, index.u_offsets_.data(), section_bytes[kUOffsets]);
  put(kProbeKeys, index.probe_keys_.data(), section_bytes[kProbeKeys]);
  put(kProbeIds, index.probe_ids_.data(), section_bytes[kProbeIds]);
  put(kInstOffsets, index.inst_offsets_.data(), section_bytes[kInstOffsets]);
  put(kInstanceIds, index.instance_ids_.data(),
      section_bytes[kInstanceIds]);
  put(kTgtOffsets, index.tgt_offsets_.data(), section_bytes[kTgtOffsets]);
  put(kTgtIds, index.tgt_ids_.data(), section_bytes[kTgtIds]);
  put(kTgtCounts, index.tgt_counts_.data(), section_bytes[kTgtCounts]);
  put(kAliveCount, index.alive_count_.data(), section_bytes[kAliveCount]);
  put(kMaint, index.maint_.data(), section_bytes[kMaint]);
  std::memcpy(out.data() + kTableOffset, table, kTableSize);

  h.payload_checksum = HashBytes64(out.data() + sizeof h,
                                   out.size() - sizeof h);
  h.header_checksum = HeaderChecksum(h);
  std::memcpy(out.data(), &h, sizeof h);
  return out;
}

Status IndexSnapshotCodec::Save(const IncidenceIndex& index,
                                const IndexSnapshotMeta& meta,
                                const std::string& path) {
  TPP_ASSIGN_OR_RETURN(std::string bytes, Serialize(index, meta));
  return AtomicWriteFile(path, bytes);
}

Result<IncidenceIndex> IndexSnapshotCodec::Load(
    const std::string& path, const IndexSnapshotMeta& expected) {
  TPP_ASSIGN_OR_RETURN(std::shared_ptr<const MappedBlob> blob,
                       MappedBlob::Open(path));
  TPP_ASSIGN_OR_RETURN(SnapshotHeader h, ReadHeader(*blob, path));
  if (h.file_size != blob->size()) {
    return CorruptError(path, "truncated or oversized file");
  }
  if (h.payload_checksum !=
      HashBytes64(blob->data() + sizeof h, blob->size() - sizeof h)) {
    return CorruptError(path, "payload checksum mismatch");
  }
  if (h.graph_fingerprint != expected.graph_fingerprint) {
    return CorruptError(path, "graph fingerprint mismatch");
  }
  if (h.target_hash != expected.target_hash) {
    return CorruptError(path, "target set mismatch");
  }
  if (h.motif != static_cast<uint32_t>(expected.motif)) {
    return CorruptError(path, "motif mismatch");
  }
  if (h.num_targets != expected.num_targets) {
    return CorruptError(path, "target count mismatch");
  }
  if (h.arity != MotifEdgeCount(expected.motif)) {
    return CorruptError(path, "arity inconsistent with motif");
  }
  if (h.probe_capacity < 16 || !std::has_single_bit(h.probe_capacity)) {
    return CorruptError(path, "probe capacity not a power of two");
  }

  SectionRecord table[kNumSections];
  std::memcpy(table, blob->data() + kTableOffset, kTableSize);
  const size_t section_bytes[kNumSections] = {
      h.num_instances * sizeof(TargetSubgraph),
      h.num_edges * sizeof(graph::EdgeKey),
      h.num_u_offsets * sizeof(uint32_t),
      h.probe_capacity * sizeof(graph::EdgeKey),
      h.probe_capacity * sizeof(uint32_t),
      (h.num_edges + 1) * sizeof(uint32_t),
      h.num_instance_refs * sizeof(uint32_t),
      (h.num_edges + 1) * sizeof(uint32_t),
      h.num_cells * sizeof(uint32_t),
      h.num_cells * sizeof(uint32_t),
      h.num_edges * sizeof(uint32_t),
      h.num_instances * sizeof(IncidenceIndex::InstanceMaintenance),
  };
  for (uint32_t s = 0; s < kNumSections; ++s) {
    if (table[s].size != section_bytes[s] ||
        table[s].offset % kSectionAlign != 0 ||
        table[s].offset > blob->size() ||
        table[s].size > blob->size() - table[s].offset) {
      return CorruptError(path, "section table inconsistent with header");
    }
  }

  // Adopt the immutable sections straight out of the mapping: the blob
  // handle rides along as the FlatArray owner, so the mapping outlives
  // the index and every clone of it.
  const auto adopt = [&blob, &table](auto* tag, Section s) {
    using T = std::remove_pointer_t<decltype(tag)>;
    const T* data = reinterpret_cast<const T*>(blob->data() + table[s].offset);
    return FlatArray<T>::Adopt(data, table[s].size / sizeof(T), blob);
  };
  IncidenceIndex idx;
  idx.instances_ = adopt(static_cast<TargetSubgraph*>(nullptr), kInstances);
  idx.edge_keys_ = adopt(static_cast<graph::EdgeKey*>(nullptr), kEdgeKeys);
  idx.u_offsets_ = adopt(static_cast<uint32_t*>(nullptr), kUOffsets);
  idx.probe_keys_ = adopt(static_cast<graph::EdgeKey*>(nullptr), kProbeKeys);
  idx.probe_ids_ = adopt(static_cast<uint32_t*>(nullptr), kProbeIds);
  idx.inst_offsets_ = adopt(static_cast<uint32_t*>(nullptr), kInstOffsets);
  idx.instance_ids_ = adopt(static_cast<uint32_t*>(nullptr), kInstanceIds);
  idx.tgt_offsets_ = adopt(static_cast<uint32_t*>(nullptr), kTgtOffsets);
  idx.tgt_ids_ = adopt(static_cast<uint32_t*>(nullptr), kTgtIds);
  idx.maint_ =
      adopt(static_cast<IncidenceIndex::InstanceMaintenance*>(nullptr),
            kMaint);

  // The mutable count caches copy out of the snapshot (they decay as
  // edges are deleted; the file stays pristine).
  const uint32_t* tgt_counts =
      reinterpret_cast<const uint32_t*>(blob->data() +
                                        table[kTgtCounts].offset);
  idx.tgt_counts_.assign(tgt_counts, tgt_counts + h.num_cells);
  const uint32_t* alive_count =
      reinterpret_cast<const uint32_t*>(blob->data() +
                                        table[kAliveCount].offset);
  idx.alive_count_.assign(alive_count, alive_count + h.num_edges);

  idx.arity_ = static_cast<uint8_t>(h.arity);
  idx.probe_mask_ = h.probe_capacity - 1;
  idx.probe_shift_ =
      64 - std::countr_zero(static_cast<size_t>(h.probe_capacity));
  // Snapshots are fresh by construction (Serialize enforces it), so the
  // shared build tail reconstitutes all alive state and the deferral
  // queues exactly as a cold build would.
  idx.FinishAliveState(h.num_targets);
  return idx;
}

Result<IndexSnapshotCodec::FileInfo> IndexSnapshotCodec::Inspect(
    const std::string& path) {
  TPP_ASSIGN_OR_RETURN(std::shared_ptr<const MappedBlob> blob,
                       MappedBlob::Open(path));
  TPP_ASSIGN_OR_RETURN(SnapshotHeader h, ReadHeader(*blob, path));
  FileInfo info;
  info.meta.graph_fingerprint = h.graph_fingerprint;
  info.meta.target_hash = h.target_hash;
  info.meta.motif = static_cast<MotifKind>(h.motif);
  info.meta.num_targets = h.num_targets;
  info.format_version = h.format_version;
  info.num_instances = h.num_instances;
  info.num_edges = h.num_edges;
  info.file_size = blob->size();
  return info;
}

Status IndexSnapshotCodec::Verify(const std::string& path) {
  TPP_ASSIGN_OR_RETURN(std::shared_ptr<const MappedBlob> blob,
                       MappedBlob::Open(path));
  TPP_ASSIGN_OR_RETURN(SnapshotHeader h, ReadHeader(*blob, path));
  if (h.file_size != blob->size()) {
    return CorruptError(path, "truncated or oversized file");
  }
  if (h.payload_checksum !=
      HashBytes64(blob->data() + sizeof h, blob->size() - sizeof h)) {
    return CorruptError(path, "payload checksum mismatch");
  }
  return Status::Ok();
}

}  // namespace tpp::motif
