// IncidenceIndex: edge -> target-subgraph incidence with alive counts.
//
// Because phase 2 only deletes edges, the set of target subgraphs is fixed
// once enumerated; an instance dies permanently when any of its edges is
// deleted. This index materializes all instances and answers the greedy
// algorithms' core queries in time proportional to the number of instances
// touching an edge:
//   * Gain(e)        — how many alive instances break if e is deleted,
//   * GainFor(e, t)  — the same, split into own-target and cross-target,
//   * DeleteEdge(e)  — commit a protector deletion.

#ifndef TPP_MOTIF_INCIDENCE_INDEX_H_
#define TPP_MOTIF_INCIDENCE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "motif/enumerate.h"
#include "motif/motif.h"
#include "motif/target_subgraph.h"

namespace tpp::motif {

/// See file comment. Build once per (graph, targets, motif) experiment;
/// the index is self-contained after Build and does not retain the graph.
class IncidenceIndex {
 public:
  /// Marginal gain of deleting an edge, split by beneficiary.
  struct SplitGain {
    size_t own = 0;    ///< alive instances of the focal target containing e
    size_t cross = 0;  ///< alive instances of all other targets containing e
    size_t total() const { return own + cross; }
  };

  /// Enumerates all target subgraphs of `kind` for every target and builds
  /// the incidence map. `g` must already have the targets removed
  /// (phase 1); an error is returned if any target edge is still present.
  static Result<IncidenceIndex> Build(const graph::Graph& g,
                                      const std::vector<graph::Edge>& targets,
                                      MotifKind kind);

  /// Number of targets the index was built over.
  size_t NumTargets() const { return alive_per_target_.size(); }

  /// All enumerated instances (alive and dead).
  const std::vector<TargetSubgraph>& instances() const { return instances_; }

  /// True iff instance `i` has not lost any edge yet.
  bool IsAlive(size_t i) const { return alive_[i] != 0; }

  /// Total alive instances: s(P, T) for the deletions committed so far.
  size_t TotalAlive() const { return total_alive_; }

  /// Alive instances serving target `t`: s(P, t).
  size_t AliveForTarget(size_t t) const { return alive_per_target_[t]; }

  /// Alive counts for all targets.
  const std::vector<size_t>& AliveCounts() const { return alive_per_target_; }

  /// Number of alive instances containing `e` = dissimilarity gain of
  /// deleting e. O(instances incident to e).
  size_t Gain(graph::EdgeKey e) const;

  /// Gain split into own-target (t) and cross-target parts.
  SplitGain GainFor(graph::EdgeKey e, size_t t) const;

  /// Adds the per-target gains of deleting `e` into `out` (size
  /// NumTargets()): one pass over the edge's posting list.
  void AccumulateGains(graph::EdgeKey e, std::vector<size_t>* out) const;

  /// Commits the deletion of edge `e`: kills all alive instances containing
  /// it. Returns the number killed. Idempotent (second call returns 0).
  size_t DeleteEdge(graph::EdgeKey e);

  /// Edges that appear in at least one alive instance — exactly the
  /// restricted candidate set of Lemma 5 (the "-R" algorithms). Sorted
  /// ascending for determinism.
  std::vector<graph::EdgeKey> AliveCandidateEdges() const;

  /// Edges that appeared in any instance at build time (sorted); the RDT
  /// baseline samples from this set.
  std::vector<graph::EdgeKey> AllParticipatingEdges() const;

 private:
  IncidenceIndex() = default;

  std::vector<TargetSubgraph> instances_;
  std::vector<uint8_t> alive_;
  std::vector<size_t> alive_per_target_;
  size_t total_alive_ = 0;
  std::unordered_map<graph::EdgeKey, std::vector<uint32_t>>
      edge_to_instances_;
};

}  // namespace tpp::motif

#endif  // TPP_MOTIF_INCIDENCE_INDEX_H_
