// IncidenceIndex: CSR-flattened edge -> target-subgraph incidence with
// cached per-edge alive counts.
//
// Because phase 2 only deletes edges, the set of target subgraphs is fixed
// once enumerated; an instance dies permanently when any of its edges is
// deleted. Build interns every participating edge into a dense edge id
// (EdgeKey -> uint32, ids assigned in ascending key order; keyed queries
// resolve ids through a per-endpoint bucket table over the sorted key
// array — the index carries no hash map) and lays the incidence relation
// out in two contiguous CSR structures:
//
//   * inst_offsets_ / instance_ids_ — the posting list of edge id e is
//     instance_ids_[inst_offsets_[e] .. inst_offsets_[e+1]). Walks are
//     linear scans over contiguous memory, never hash-bucket chases.
//   * tgt_offsets_ / tgt_ids_ / tgt_counts_ — the per-target split of each
//     edge's alive count: for edge id e, the segment holds one
//     (target, alive count) pair per target that had an instance through e
//     at build time. GainFor and AccumulateGains scan one short segment
//     instead of the full posting list.
//
// On top of the layout the index caches alive_count_[e], the number of
// alive instances containing edge id e. The maintained invariant is
//
//   alive_count_[e] == |{i : alive_[i] and e in instance i}|, and
//   tgt_counts_ partitions alive_count_[e] by instance target,
//
// so Gain(e) is a bucket lookup plus an array read — O(1) — and DeleteEdge
// pays the maintenance cost exactly once per killed instance: each killed
// instance decrements its sibling edges' alive counts and, via the
// build-time slot table (InstanceMaintenance::slots in maint_), the exact
// (edge, target) cell of CSR 2 — no per-sibling scan of the target
// segment. Total greedy work is therefore proportional to instances
// actually killed, not instances scanned.
//
// Construction is parallel and deterministic: enumeration fans out over
// the shared thread pool in per-target tasks (hub targets split by
// first-neighbor chunk, see motif/enumerate.h) whose outputs merge in the
// serial (target, emit) order; edge interning is sort+unique over the flat
// instance-edge array with binary-search id resolution in the fill passes;
// and both CSR structures are built with parallel count-then-fill passes
// whose stable per-block cursors reproduce the serial layout exactly. The
// result is bit-identical to BuildSerialReference at any thread count
// (differential-tested in tests/index_build_parallel_test.cc).
//
// Complexity per query (E = interned edges, I(e) = instances through e,
// T(e) = distinct targets through e, T(e) <= min(NumTargets(), I(e))):
//   Gain                 O(1)
//   GainFor              O(T(e))
//   AccumulateGains      O(T(e))
//   DeleteEdge           O(sum of arity over instances killed); O(1) when
//                        the edge is already dead or unknown
//   AliveCandidateEdges  O(E) scan of alive_count_ (ids are key-sorted, so
//                        the result needs no sort); the result vector is
//                        reserved from the maintained alive-edge count,
//                        not the build-time edge count
//   AliveCandidateGains  O(E) — candidates AND their gains in one scan,
//                        the whole query side of an eager greedy round
//   AllParticipatingEdges O(E) copy
//
// The previous unordered_map posting-list implementation is preserved as
// LegacyIncidenceIndex (legacy_incidence_index.h) and serves as the
// reference baseline in the gain-kernel benchmarks and differential tests.

#ifndef TPP_MOTIF_INCIDENCE_INDEX_H_
#define TPP_MOTIF_INCIDENCE_INDEX_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "motif/enumerate.h"
#include "motif/motif.h"
#include "motif/target_subgraph.h"

namespace tpp::motif {

/// See file comment. Build once per (graph, targets, motif) experiment;
/// the index is self-contained after Build and does not retain the graph.
class IncidenceIndex {
 public:
  /// Marginal gain of deleting an edge, split by beneficiary.
  struct SplitGain {
    size_t own = 0;    ///< alive instances of the focal target containing e
    size_t cross = 0;  ///< alive instances of all other targets containing e
    size_t total() const { return own + cross; }
  };

  /// Knobs of one Build call.
  struct BuildOptions {
    /// Worker budget for the enumeration and CSR passes; <= 0 resolves to
    /// tpp::GlobalThreadCount() (the --threads flag / TPP_THREADS). The
    /// built index is bit-identical at any value.
    int threads = 0;
  };

  /// Per-stage wall-time breakdown of one Build call (the index_build
  /// bench reports these).
  struct BuildStats {
    double enumerate_seconds = 0;  ///< task fan-out + instance merge
    double intern_seconds = 0;     ///< sort+unique edge keys + id map
    double csr_seconds = 0;        ///< CSR 1/2 count-then-fill + slot table
    size_t instances = 0;          ///< enumerated instances
    size_t interned_edges = 0;     ///< distinct participating edges
    size_t tasks = 0;              ///< enumeration work units
  };

  /// Enumerates all target subgraphs of `kind` for every target and builds
  /// the CSR incidence layout plus the alive-count caches, fanning the
  /// enumeration and CSR passes out over the shared thread pool. `g` must
  /// already have the targets removed (phase 1); an error is returned if
  /// any target edge is still present.
  static Result<IncidenceIndex> Build(const graph::Graph& g,
                                      const std::vector<graph::Edge>& targets,
                                      MotifKind kind);

  /// Build with an explicit thread budget and optional per-stage timings.
  static Result<IncidenceIndex> Build(const graph::Graph& g,
                                      const std::vector<graph::Edge>& targets,
                                      MotifKind kind,
                                      const BuildOptions& options,
                                      BuildStats* stats = nullptr);

  /// The single-threaded pre-parallel build: serial per-target enumeration
  /// with materialized common-neighbor vectors and hash-map edge-id
  /// resolution. Kept verbatim as the baseline of the index_build bench
  /// and the reference of the parallel-vs-serial differential tests; its
  /// result is required to be bit-identical to Build at any thread count.
  static Result<IncidenceIndex> BuildSerialReference(
      const graph::Graph& g, const std::vector<graph::Edge>& targets,
      MotifKind kind);

  /// Number of targets the index was built over.
  size_t NumTargets() const { return alive_per_target_.size(); }

  /// Number of distinct edges interned at build time (the CSR width).
  size_t NumInternedEdges() const { return edge_keys_.size(); }

  /// All enumerated instances (alive and dead).
  const std::vector<TargetSubgraph>& instances() const { return instances_; }

  /// True iff instance `i` has not lost any edge yet.
  bool IsAlive(size_t i) const { return alive_[i] != 0; }

  /// Total alive instances: s(P, T) for the deletions committed so far.
  size_t TotalAlive() const { return total_alive_; }

  /// Alive instances serving target `t`: s(P, t).
  size_t AliveForTarget(size_t t) const { return alive_per_target_[t]; }

  /// Alive counts for all targets.
  const std::vector<size_t>& AliveCounts() const { return alive_per_target_; }

  /// Edges that still appear in at least one alive instance — the exact
  /// size of AliveCandidateEdges(). Maintained by DeleteEdge, so late
  /// greedy rounds reserve what they return instead of the build-time
  /// edge count.
  size_t NumAliveEdges() const { return alive_edges_; }

  /// Number of alive instances containing `e` = dissimilarity gain of
  /// deleting e: a cached count behind the bucketed key lookup, not a
  /// posting-list walk.
  size_t Gain(graph::EdgeKey e) const {
    const uint32_t id = EdgeIdOf(e);
    return id == kNoEdge ? 0 : alive_count_[id];
  }

  /// Gain split into own-target (t) and cross-target parts. O(T(e)).
  SplitGain GainFor(graph::EdgeKey e, size_t t) const;

  /// Adds the per-target gains of deleting `e` into `out` (size
  /// NumTargets()): one pass over the edge's per-target count segment.
  void AccumulateGains(graph::EdgeKey e, std::vector<size_t>* out) const;

  /// Commits the deletion of edge `e`: kills all alive instances containing
  /// it and restores the alive-count invariant by decrementing the counts
  /// of every killed instance's sibling edges. Returns the number killed.
  /// Idempotent (second call returns 0).
  size_t DeleteEdge(graph::EdgeKey e);

  /// Edges that appear in at least one alive instance — exactly the
  /// restricted candidate set of Lemma 5 (the "-R" algorithms). Sorted
  /// ascending for determinism (edge ids are assigned in key order, so
  /// this is a single scan of the alive-count array).
  std::vector<graph::EdgeKey> AliveCandidateEdges() const;

  /// One-pass gain sweep: fills `edges` with every alive candidate edge
  /// (sorted ascending, identical to AliveCandidateEdges()) and `gains`
  /// with the aligned alive counts. This is the entire per-round query
  /// work of an eager greedy iteration, answered by a single hash-free,
  /// sort-free scan of the cached count array: O(E) total, not
  /// O(E log E + sum I(e)) as the map-based layout required.
  void AliveCandidateGains(std::vector<graph::EdgeKey>* edges,
                           std::vector<size_t>* gains) const;

  /// Edges that appeared in any instance at build time (sorted); the RDT
  /// baseline samples from this set.
  std::vector<graph::EdgeKey> AllParticipatingEdges() const {
    return edge_keys_;
  }

  /// True iff every internal structure of this index equals `other`'s —
  /// instances, interning, both CSR layouts, slot tables, and all alive
  /// state. The check behind "parallel build == serial build" in the
  /// differential tests and the index_build bench.
  bool BitIdentical(const IncidenceIndex& other) const;

 private:
  IncidenceIndex() = default;

  /// Sentinel of EdgeIdOf: the key was never interned.
  static constexpr uint32_t kNoEdge = 0xffffffffu;

  /// Dense id of key `e`, or kNoEdge. Two reads of the smaller-endpoint
  /// bucket table plus a scan of the bucket's few keys — measurably
  /// cheaper than a hash find on the keyed query hot paths (Gain,
  /// DeleteEdge), and the index needs no hash map at all. Buckets are a
  /// node's interned edges, so they average a handful of keys; a
  /// predictable linear scan wins there, with a binary-search fallback
  /// for hub buckets.
  uint32_t EdgeIdOf(graph::EdgeKey e) const {
    const size_t u = graph::EdgeKeyU(e);
    if (u + 1 >= u_offsets_.size()) return kNoEdge;
    uint32_t id = u_offsets_[u];
    uint32_t end = u_offsets_[u + 1];
    if (end - id > 16) {
      const graph::EdgeKey* it = std::lower_bound(
          edge_keys_.data() + id, edge_keys_.data() + end, e);
      id = static_cast<uint32_t>(it - edge_keys_.data());
    } else {
      while (id < end && edge_keys_[id] < e) ++id;
    }
    if (id == end || edge_keys_[id] != e) return kNoEdge;
    return id;
  }

  // DeleteEdge's kill loop, specialized on the motif arity so the sibling
  // count updates fully unroll.
  template <int kArity>
  size_t DeleteEdgeImpl(uint32_t id);

  // Shared tail of Build and BuildSerialReference: sizes and fills the
  // alive state (alive_, total_alive_, alive_per_target_, alive_edges_)
  // from the enumerated instances in O(instances + E).
  void FinishAliveState(size_t num_targets);

  // Instance storage (shared shape with LegacyIncidenceIndex).
  std::vector<TargetSubgraph> instances_;
  std::vector<uint8_t> alive_;
  std::vector<size_t> alive_per_target_;
  size_t total_alive_ = 0;

  // Edge interner: edge_keys_ is sorted ascending (id order == key
  // order) and u_offsets_[u] .. u_offsets_[u+1] brackets the keys whose
  // smaller endpoint is u — the bucket table EdgeIdOf resolves through.
  std::vector<graph::EdgeKey> edge_keys_;
  std::vector<uint32_t> u_offsets_;  // size NumNodes() + 1

  // CSR 1: edge id -> instance ids.
  std::vector<uint32_t> inst_offsets_;  // size NumInternedEdges() + 1
  std::vector<uint32_t> instance_ids_;  // flat posting lists

  // Cached gain: alive_count_[e] == alive instances containing edge id e,
  // and alive_edges_ == |{e : alive_count_[e] > 0}|.
  std::vector<uint32_t> alive_count_;
  size_t alive_edges_ = 0;

  // CSR 2: edge id -> (target, alive count) pairs.
  std::vector<uint32_t> tgt_offsets_;  // size NumInternedEdges() + 1
  std::vector<uint32_t> tgt_ids_;      // flat target indices
  std::vector<uint32_t> tgt_counts_;   // flat alive counts, mutated

  // Everything DeleteEdge needs per killed instance, in one compact
  // record (one cache line instead of three scattered structures): the
  // instance's target, its interned edge ids, and the flat CSR-2 slot of
  // (edge_ids[j], target) — so the per-target count is decremented
  // directly instead of scanning the sibling edge's target segment.
  struct InstanceMaintenance {
    uint32_t target = 0;
    std::array<uint32_t, 4> edge_ids{};
    std::array<uint32_t, 4> slots{};
    friend bool operator==(const InstanceMaintenance& a,
                           const InstanceMaintenance& b) = default;
  };
  std::vector<InstanceMaintenance> maint_;
  // Edges per instance — uniform for one motif kind (MotifEdgeCount), so
  // DeleteEdge never reads the 40-byte TargetSubgraph.
  uint8_t arity_ = 0;
};

}  // namespace tpp::motif

#endif  // TPP_MOTIF_INCIDENCE_INDEX_H_
