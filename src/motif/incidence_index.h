// IncidenceIndex: CSR-flattened edge -> target-subgraph incidence with
// cached per-edge alive counts.
//
// Because phase 2 only deletes edges, the set of target subgraphs is fixed
// once enumerated; an instance dies permanently when any of its edges is
// deleted. Build interns every participating edge into a dense edge id
// (EdgeKey -> uint32, ids assigned in ascending key order) and lays the
// incidence relation out in two contiguous CSR structures:
//
//   * inst_offsets_ / instance_ids_ — the posting list of edge id e is
//     instance_ids_[inst_offsets_[e] .. inst_offsets_[e+1]). Walks are
//     linear scans over contiguous memory, never hash-bucket chases.
//   * tgt_offsets_ / tgt_ids_ / tgt_counts_ — the per-target split of each
//     edge's alive count: for edge id e, the segment holds one
//     (target, alive count) pair per target that had an instance through e
//     at build time. GainFor and AccumulateGains scan one short segment
//     instead of the full posting list.
//
// On top of the layout the index caches alive_count_[e], the number of
// alive instances containing edge id e. The maintained invariant is
//
//   alive_count_[e] == |{i : alive_[i] and e in instance i}|, and
//   tgt_counts_ partitions alive_count_[e] by instance target,
//
// so Gain(e) is a hash lookup plus an array read — O(1) — and DeleteEdge
// pays the maintenance cost exactly once per killed instance by
// decrementing the counts of the instance's surviving sibling edges. Total
// greedy work is therefore proportional to instances actually killed, not
// instances scanned.
//
// Complexity per query (E = interned edges, I(e) = instances through e,
// T(e) = distinct targets through e, T(e) <= min(NumTargets(), I(e))):
//   Gain                 O(1)
//   GainFor              O(T(e))
//   AccumulateGains      O(T(e))
//   DeleteEdge           O(sum of arity over instances killed); O(1) when
//                        the edge is already dead or unknown
//   AliveCandidateEdges  O(E) scan of alive_count_ (ids are key-sorted, so
//                        the result needs no sort)
//   AliveCandidateGains  O(E) — candidates AND their gains in one scan,
//                        the whole query side of an eager greedy round
//   AllParticipatingEdges O(E) copy
//
// The previous unordered_map posting-list implementation is preserved as
// LegacyIncidenceIndex (legacy_incidence_index.h) and serves as the
// reference baseline in the gain-kernel benchmarks and differential tests.

#ifndef TPP_MOTIF_INCIDENCE_INDEX_H_
#define TPP_MOTIF_INCIDENCE_INDEX_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "motif/enumerate.h"
#include "motif/motif.h"
#include "motif/target_subgraph.h"

namespace tpp::motif {

/// See file comment. Build once per (graph, targets, motif) experiment;
/// the index is self-contained after Build and does not retain the graph.
class IncidenceIndex {
 public:
  /// Marginal gain of deleting an edge, split by beneficiary.
  struct SplitGain {
    size_t own = 0;    ///< alive instances of the focal target containing e
    size_t cross = 0;  ///< alive instances of all other targets containing e
    size_t total() const { return own + cross; }
  };

  /// Enumerates all target subgraphs of `kind` for every target and builds
  /// the CSR incidence layout plus the alive-count caches. `g` must
  /// already have the targets removed (phase 1); an error is returned if
  /// any target edge is still present.
  static Result<IncidenceIndex> Build(const graph::Graph& g,
                                      const std::vector<graph::Edge>& targets,
                                      MotifKind kind);

  /// Number of targets the index was built over.
  size_t NumTargets() const { return alive_per_target_.size(); }

  /// Number of distinct edges interned at build time (the CSR width).
  size_t NumInternedEdges() const { return edge_keys_.size(); }

  /// All enumerated instances (alive and dead).
  const std::vector<TargetSubgraph>& instances() const { return instances_; }

  /// True iff instance `i` has not lost any edge yet.
  bool IsAlive(size_t i) const { return alive_[i] != 0; }

  /// Total alive instances: s(P, T) for the deletions committed so far.
  size_t TotalAlive() const { return total_alive_; }

  /// Alive instances serving target `t`: s(P, t).
  size_t AliveForTarget(size_t t) const { return alive_per_target_[t]; }

  /// Alive counts for all targets.
  const std::vector<size_t>& AliveCounts() const { return alive_per_target_; }

  /// Number of alive instances containing `e` = dissimilarity gain of
  /// deleting e. O(1): a cached count, not a posting-list walk.
  size_t Gain(graph::EdgeKey e) const {
    auto it = edge_id_.find(e);
    return it == edge_id_.end() ? 0 : alive_count_[it->second];
  }

  /// Gain split into own-target (t) and cross-target parts. O(T(e)).
  SplitGain GainFor(graph::EdgeKey e, size_t t) const;

  /// Adds the per-target gains of deleting `e` into `out` (size
  /// NumTargets()): one pass over the edge's per-target count segment.
  void AccumulateGains(graph::EdgeKey e, std::vector<size_t>* out) const;

  /// Commits the deletion of edge `e`: kills all alive instances containing
  /// it and restores the alive-count invariant by decrementing the counts
  /// of every killed instance's sibling edges. Returns the number killed.
  /// Idempotent (second call returns 0).
  size_t DeleteEdge(graph::EdgeKey e);

  /// Edges that appear in at least one alive instance — exactly the
  /// restricted candidate set of Lemma 5 (the "-R" algorithms). Sorted
  /// ascending for determinism (edge ids are assigned in key order, so
  /// this is a single scan of the alive-count array).
  std::vector<graph::EdgeKey> AliveCandidateEdges() const;

  /// One-pass gain sweep: fills `edges` with every alive candidate edge
  /// (sorted ascending, identical to AliveCandidateEdges()) and `gains`
  /// with the aligned alive counts. This is the entire per-round query
  /// work of an eager greedy iteration, answered by a single hash-free,
  /// sort-free scan of the cached count array: O(E) total, not
  /// O(E log E + sum I(e)) as the map-based layout required.
  void AliveCandidateGains(std::vector<graph::EdgeKey>* edges,
                           std::vector<size_t>* gains) const;

  /// Edges that appeared in any instance at build time (sorted); the RDT
  /// baseline samples from this set.
  std::vector<graph::EdgeKey> AllParticipatingEdges() const {
    return edge_keys_;
  }

 private:
  IncidenceIndex() = default;

  // Instance storage (shared shape with LegacyIncidenceIndex).
  std::vector<TargetSubgraph> instances_;
  std::vector<uint8_t> alive_;
  std::vector<size_t> alive_per_target_;
  size_t total_alive_ = 0;

  // Edge interner: edge_keys_ is sorted ascending and edge_id_ maps a key
  // to its position, so id order == key order.
  std::vector<graph::EdgeKey> edge_keys_;
  std::unordered_map<graph::EdgeKey, uint32_t> edge_id_;

  // CSR 1: edge id -> instance ids.
  std::vector<uint32_t> inst_offsets_;  // size NumInternedEdges() + 1
  std::vector<uint32_t> instance_ids_;  // flat posting lists

  // Cached gain: alive_count_[e] == alive instances containing edge id e.
  std::vector<uint32_t> alive_count_;

  // CSR 2: edge id -> (target, alive count) pairs.
  std::vector<uint32_t> tgt_offsets_;  // size NumInternedEdges() + 1
  std::vector<uint32_t> tgt_ids_;      // flat target indices
  std::vector<uint32_t> tgt_counts_;   // flat alive counts, mutated

  // Instance id -> interned edge ids (arity <= 4), so DeleteEdge updates
  // sibling counts without hashing edge keys.
  std::vector<std::array<uint32_t, 4>> inst_edge_ids_;
};

}  // namespace tpp::motif

#endif  // TPP_MOTIF_INCIDENCE_INDEX_H_
