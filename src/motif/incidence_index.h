// IncidenceIndex: CSR-flattened edge -> target-subgraph incidence with
// cached per-edge alive counts.
//
// Because phase 2 only deletes edges, the set of target subgraphs is fixed
// once enumerated; an instance dies permanently when any of its edges is
// deleted. Build interns every participating edge into a dense edge id
// (EdgeKey -> uint32, ids assigned in ascending key order; keyed queries
// resolve ids through a static flat open-addressing probe table built
// once from the sorted key array — multiply-shift hash, no node chase,
// immutable after build) and lays the incidence relation out in two
// contiguous CSR structures:
//
//   * inst_offsets_ / instance_ids_ — the posting list of edge id e is
//     instance_ids_[inst_offsets_[e] .. inst_offsets_[e+1]). Walks are
//     linear scans over contiguous memory, never hash-bucket chases.
//   * tgt_offsets_ / tgt_ids_ / tgt_counts_ — the per-target split of each
//     edge's alive count: for edge id e, the segment holds one
//     (target, alive count) pair per target that had an instance through e
//     at build time. GainFor and AccumulateGains scan one short segment
//     instead of the full posting list.
//
// On top of the layout the index caches alive_count_[e], the number of
// alive instances containing edge id e. The maintained invariant is
//
//   alive_count_[e] == |{i : alive_[i] and e in instance i}|, and
//   tgt_counts_ partitions alive_count_[e] by instance target,
//
// so Gain(e) is a probe lookup plus an array read — O(1) — and the
// maintenance restoring the invariant after a deletion is paid exactly
// once per killed instance: each killed instance decrements its edges'
// alive counts and, via the build-time slot table
// (InstanceMaintenance::slots in maint_), the exact (edge, target) cell
// of CSR 2 — no per-sibling scan of the target segment. Total greedy
// work is therefore proportional to instances actually killed, not
// instances scanned.
//
// Count upkeep is DEFERRED: DeleteEdge only marks the killed instances
// (tri-state alive flags) and queues the deleted edge id — two O(1)
// stores beyond the kill marks, touching neither maintenance records nor
// count arrays — while total_alive_ stays eager so similarity traces read
// without any flush. The queued maintenance replays in two granularities,
// each before the reads that need it:
//
//   * FlushDeferredCounts — restores alive_count_, alive_per_target_, and
//     alive_edges_ by walking the queued edges' posting lists once per
//     killed instance. Runs implicitly before every count-level read
//     (Gain, AliveCandidateGains, NumAliveEdges, AliveForTarget, ...) and
//     can emit the DIRTY SET: the ids of every edge whose cached count
//     changed — exactly the candidates an incremental round engine must
//     re-evaluate (core/gain_table.h).
//   * FlushDeferredMaintenance — additionally restores the CSR-2 per-
//     target cells (zero the dead edges' segments wholesale, then replay
//     the queued kills against the slot table). Runs implicitly before
//     every per-target read (GainFor, AccumulateGains); ReadGainRow
//     assumes it already ran so parallel row fans stay pure reads.
//
// The deferral costs nothing it would not pay eagerly — each killed
// instance is processed exactly once per granularity — but moves the work
// out of the commit: a greedy round flushes once before its first gain
// read instead of scattering decrements inside every DeleteEdge, a run
// that never reads per-target splits (SGB, the random baselines) never
// pays the CSR-2 half at all, and delete-only bursts (the delete_commit
// kernel, bulk phase-1 deletions) pay only the kill marks. Steady-state
// Gain stays an O(1) cached read, and BatchGain flushes once up front so
// its parallel partition remains synchronization-free.
//
// Construction is parallel and deterministic: enumeration fans out over
// the shared thread pool in per-target tasks (hub targets split by
// first-neighbor chunk, see motif/enumerate.h) whose outputs merge in the
// serial (target, emit) order; edge interning is sort+unique over the flat
// instance-edge array with binary-search id resolution in the fill passes;
// and both CSR structures are built with parallel count-then-fill passes
// whose stable per-block cursors reproduce the serial layout exactly. The
// result is bit-identical to BuildSerialReference at any thread count
// (differential-tested in tests/index_build_parallel_test.cc).
//
// Complexity per query (E = interned edges, I(e) = instances through e,
// T(e) = distinct targets through e, T(e) <= min(NumTargets(), I(e))):
//   Gain                 O(1) flushed (amortized: the first call after a
//                        delete pays that delete's count flush)
//   GainFor              O(T(e)) flushed
//   AccumulateGains      O(T(e)) flushed
//   DeleteEdge           O(I(e)) kill marks; the deferred flushes later
//                        pay O(arity) per killed instance per
//                        granularity; O(1) when the edge is already dead
//                        or unknown
//   AliveCandidateEdges  O(E) scan of alive_count_ (ids are key-sorted, so
//                        the result needs no sort); the result vector is
//                        reserved from the maintained alive-edge count,
//                        not the build-time edge count
//   AliveCandidateGains  O(E) — candidates AND their gains in one scan,
//                        the whole query side of an eager greedy round
//   AllParticipatingEdges O(E) copy
//
// The previous unordered_map posting-list implementation is preserved as
// LegacyIncidenceIndex (legacy_incidence_index.h) and serves as the
// reference baseline in the gain-kernel benchmarks and differential tests.

#ifndef TPP_MOTIF_INCIDENCE_INDEX_H_
#define TPP_MOTIF_INCIDENCE_INDEX_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/cancellation.h"
#include "common/flat_array.h"
#include "common/result.h"
#include "graph/graph.h"
#include "motif/enumerate.h"
#include "motif/motif.h"
#include "motif/target_subgraph.h"

namespace tpp::motif {

class IndexSnapshotCodec;

/// See file comment. Build once per (graph, targets, motif) experiment;
/// the index is self-contained after Build and does not retain the graph.
class IncidenceIndex {
 public:
  /// Marginal gain of deleting an edge, split by beneficiary.
  struct SplitGain {
    size_t own = 0;    ///< alive instances of the focal target containing e
    size_t cross = 0;  ///< alive instances of all other targets containing e
    size_t total() const { return own + cross; }
  };

  /// Knobs of one Build call.
  struct BuildOptions {
    /// Worker budget for the enumeration and CSR passes; <= 0 resolves to
    /// tpp::GlobalThreadCount() (the --threads flag / TPP_THREADS). The
    /// built index is bit-identical at any value.
    int threads = 0;
    /// Optional cancel/deadline source (not owned; must outlive the
    /// call). Polled between the build's internal stages — enumerate,
    /// intern, each CSR pass — so a request whose deadline expires
    /// mid-build fails at the next stage boundary instead of paying for
    /// the whole construction. Null: never canceled (one branch per
    /// stage). Polling cannot perturb a build that finishes in time.
    const CancellationToken* cancel = nullptr;
  };

  /// Per-stage wall-time breakdown of one Build call (the index_build
  /// bench reports these).
  struct BuildStats {
    double enumerate_seconds = 0;  ///< task fan-out + instance merge
    double intern_seconds = 0;     ///< sort+unique edge keys + id map
    double csr_seconds = 0;        ///< CSR 1/2 count-then-fill + slot table
    size_t instances = 0;          ///< enumerated instances
    size_t interned_edges = 0;     ///< distinct participating edges
    size_t tasks = 0;              ///< enumeration work units
  };

  /// Enumerates all target subgraphs of `kind` for every target and builds
  /// the CSR incidence layout plus the alive-count caches, fanning the
  /// enumeration and CSR passes out over the shared thread pool. `g` must
  /// already have the targets removed (phase 1); an error is returned if
  /// any target edge is still present.
  static Result<IncidenceIndex> Build(const graph::Graph& g,
                                      const std::vector<graph::Edge>& targets,
                                      MotifKind kind);

  /// Build with an explicit thread budget and optional per-stage timings.
  static Result<IncidenceIndex> Build(const graph::Graph& g,
                                      const std::vector<graph::Edge>& targets,
                                      MotifKind kind,
                                      const BuildOptions& options,
                                      BuildStats* stats = nullptr);

  /// The single-threaded pre-parallel build: serial per-target enumeration
  /// with materialized common-neighbor vectors and hash-map edge-id
  /// resolution. Kept verbatim as the baseline of the index_build bench
  /// and the reference of the parallel-vs-serial differential tests; its
  /// result is required to be bit-identical to Build at any thread count.
  static Result<IncidenceIndex> BuildSerialReference(
      const graph::Graph& g, const std::vector<graph::Edge>& targets,
      MotifKind kind);

  /// Number of targets the index was built over.
  size_t NumTargets() const { return alive_per_target_.size(); }

  /// Number of distinct edges interned at build time (the CSR width).
  size_t NumInternedEdges() const { return edge_keys_.size(); }

  /// All enumerated instances (alive and dead).
  std::span<const TargetSubgraph> instances() const {
    return instances_.span();
  }

  /// True iff instance `i` has not lost any edge yet. (Internally a dead
  /// instance may still carry queued CSR-2 upkeep — state 2 below — but it
  /// is dead either way.)
  bool IsAlive(size_t i) const { return alive_[i] == 1; }

  /// Total alive instances: s(P, T) for the deletions committed so far.
  size_t TotalAlive() const { return total_alive_; }

  /// Alive instances serving target `t`: s(P, t). Flushes deferred count
  /// maintenance first (hence non-const).
  size_t AliveForTarget(size_t t) {
    FlushDeferredCounts();
    return alive_per_target_[t];
  }

  /// Alive counts for all targets (flushes deferred count maintenance).
  const std::vector<size_t>& AliveCounts() {
    FlushDeferredCounts();
    return alive_per_target_;
  }

  /// Edges that still appear in at least one alive instance — the exact
  /// size of AliveCandidateEdges(), so late greedy rounds reserve what
  /// they return instead of the build-time edge count. Flushes deferred
  /// count maintenance.
  size_t NumAliveEdges() {
    FlushDeferredCounts();
    return alive_edges_;
  }

  /// Number of alive instances containing `e` = dissimilarity gain of
  /// deleting e: a cached count behind the bucketed key lookup, not a
  /// posting-list walk. O(1) whenever deferred count maintenance is
  /// flushed (one predictable branch checks); the first call after a
  /// DeleteEdge pays that delete's count upkeep.
  size_t Gain(graph::EdgeKey e) {
    FlushDeferredCounts();
    const uint32_t id = EdgeIdOf(e);
    return id == kNoEdge ? 0 : alive_count_[id];
  }

  /// Gain split into own-target (t) and cross-target parts. O(T(e)).
  /// Flushes deferred CSR-2 maintenance first (hence non-const).
  SplitGain GainFor(graph::EdgeKey e, size_t t);

  /// Adds the per-target gains of deleting `e` into `out` (size
  /// NumTargets()): one pass over the edge's per-target count segment.
  /// Flushes deferred CSR-2 maintenance first (hence non-const).
  void AccumulateGains(graph::EdgeKey e, std::vector<size_t>* out);

  /// Span form of AccumulateGains (out.size() == NumTargets()); the
  /// allocation-free inner query of the hoisted CT/WT loops.
  void AccumulateGains(graph::EdgeKey e, std::span<size_t> out);

  /// Commits the deletion of edge `e`: kills all alive instances
  /// containing it (marks only — count and cell upkeep is queued, see the
  /// file comment; total_alive_ stays current). Returns the number
  /// killed. Idempotent (second call returns 0).
  size_t DeleteEdge(graph::EdgeKey e);

  /// In-place repair after a committed base-graph edit (index_repair.cc).
  ///
  /// `g` is the POST-edit released graph (the delta already applied),
  /// `targets` the build-time target list in build order, and `delta` the
  /// normalized net edit (the GraphDelta contract). The repair
  ///
  ///   * retires every instance killed by a removed base edge through the
  ///     existing DeleteEdge + deferred-flush machinery (exact: an
  ///     instance dies iff it contains a removed edge),
  ///   * enumerates CREATED instances only around the inserted edges —
  ///     for each inserted edge, the per-motif slot cases that can absorb
  ///     it, over the targets within distance one of its endpoints —
  ///     instead of re-enumerating every target,
  ///   * and repairs the layout by linear gather/merge passes: the edge
  ///     universe only GROWS (a key whose last instance died keeps its
  ///     dense id with alive count 0, so removals shift no ids and the
  ///     interner, probe table, and endpoint bucket view are reused
  ///     untouched; only never-seen keys splice in at key rank), dead
  ///     instance rows compact out, created rows append, and survivor
  ///     slot tables update by O(1) gathers — no hashing, sorting, or
  ///     per-entry searches on the survivor path.
  ///
  /// The result is PLAN-EQUIVALENT to a cold Build on the edited graph:
  /// per-key gains, per-target splits, alive tallies, and the alive
  /// candidate set (AliveCandidateEdges) come out identical, and the
  /// interned universe is an ascending SUPERSET of the cold build's whose
  /// extra keys hold alive count 0 — exactly the zero rows the greedy
  /// sweeps and incremental round sessions already skip, so every
  /// deterministic solver reproduces the cold plan byte-for-byte.
  /// (AllParticipatingEdges, the RDT sampling pool, correspondingly keeps
  /// historical participants instead of shrinking to the edited graph's;
  /// only that randomized baseline can observe the difference.) The
  /// instance-row order (and therefore CSR-1 posting ids) may differ too,
  /// which no gain or candidate query observes. The repaired index is
  /// fresh again (every instance alive, no deferred work), so further
  /// edits compose. CountsFlushEpoch() is bumped so open round sessions
  /// restart rather than serve stale layouts.
  ///
  /// Requirements (error, index unchanged): `kind` must be the motif the
  /// index was built for (the index only records the arity, so the caller
  /// supplies the kind it built with), the index must be fresh, the
  /// target list must match the build (count and node range), no delta
  /// edge may be a target link, inserted edges must be present in `g` and
  /// removed edges absent. Cost: O(E + I + cells) merge passes plus the
  /// delta-neighborhood enumeration — independent of the number of
  /// targets touched, and far below a rebuild's full enumeration.
  /// `cancel` (optional) is polled BEFORE the repair mutates anything —
  /// a repair cannot back out halfway, so an expired token fails the
  /// call with the index untouched rather than aborting mid-mutation.
  Status ApplyGraphDelta(const graph::Graph& g,
                         const std::vector<graph::Edge>& targets,
                         MotifKind kind, const graph::GraphDelta& delta,
                         const CancellationToken* cancel = nullptr);

  /// DeleteEdge followed by a dirty-emitting count flush: appends to
  /// `dirty` the dense id of every edge whose cached alive count changed
  /// since the last count flush — the killed instances' edges, this
  /// call's and any earlier unflushed deletes' alike — deduplicated. The
  /// dirty set is exactly the candidates an incremental round engine must
  /// re-evaluate; everything else kept its gain from the previous round.
  size_t DeleteEdge(graph::EdgeKey e, std::vector<uint32_t>* dirty);

  /// Applies the queued count maintenance (alive_count_,
  /// alive_per_target_, alive_edges_), appending the dirty set to `dirty`
  /// when non-null. O(sum of arity over unflushed kills); idempotent and
  /// O(1) when nothing is queued.
  void FlushDeferredCounts(std::vector<uint32_t>* dirty = nullptr);

  /// FlushDeferredCounts plus the queued CSR-2 cell maintenance. Reading
  /// cells concurrently (ReadGainRow from a parallel fan-out) is safe
  /// only after this returns and before the next DeleteEdge. Idempotent.
  void FlushDeferredMaintenance();

  /// True iff any maintenance (counts or cells) is queued but unapplied.
  bool HasDeferredMaintenance() const {
    return counts_pending_ > 0 || cells_pending_ > 0;
  }

  /// Number of count flushes that have applied queued kills so far. An
  /// incremental round session records this after its own dirty-emitting
  /// flush; a different value at the next round means some other read
  /// flushed in between — consuming kills whose dirty set the session
  /// never saw — so the session must restart (full re-evaluation)
  /// instead of serving stale gains. See IndexedEngine::BeginRound.
  uint64_t CountsFlushEpoch() const { return counts_flush_epoch_; }

  /// Writes edge id `id`'s per-target gains into `out` (size
  /// NumTargets()), zero-filling targets without alive instances through
  /// the edge. PURE READ: requires !HasDeferredMaintenance() (call
  /// FlushDeferredMaintenance first); safe to call concurrently from pool
  /// workers under that precondition — the row fill of BatchGainVector.
  void ReadGainRow(uint32_t id, std::span<uint32_t> out) const;

  /// Blocked form of ReadGainRow: writes the per-target gain rows of the
  /// CONSECUTIVE edge ids [first, first + count) to out, out + stride,
  /// out + 2 * stride, ... Because ids are dense and CSR-2 segments are
  /// laid out in id order, the run's (target, count) cells are one
  /// contiguous block walked by a single running cursor — a streaming
  /// kernel instead of `count` point queries re-deriving offsets. Same
  /// PURE READ precondition and concurrency contract as ReadGainRow; the
  /// incremental round engine decomposes its dirty set into such runs
  /// (dirty ids cluster: an instance's edges intern near each other).
  void ReadGainRows(uint32_t first, size_t count, size_t stride,
                    uint32_t* out) const;

  /// The cached per-edge-id alive counts, indexed by dense edge id. PURE
  /// READ of the incremental round session's total-gain table: requires a
  /// prior FlushDeferredCounts, after which entry id equals
  /// Gain(InternedEdgeKeys()[id]) until the next DeleteEdge.
  const std::vector<uint32_t>& PerEdgeAliveCounts() const {
    return alive_count_;
  }

  /// Edges that appear in at least one alive instance — exactly the
  /// restricted candidate set of Lemma 5 (the "-R" algorithms). Sorted
  /// ascending for determinism (edge ids are assigned in key order, so
  /// this is a single scan of the alive-count array, after a count
  /// flush).
  std::vector<graph::EdgeKey> AliveCandidateEdges();

  /// One-pass gain sweep: fills `edges` with every alive candidate edge
  /// (sorted ascending, identical to AliveCandidateEdges()) and `gains`
  /// with the aligned alive counts. This is the entire per-round query
  /// work of an eager greedy iteration, answered by a single hash-free,
  /// sort-free scan of the cached count array: O(E) total, not
  /// O(E log E + sum I(e)) as the map-based layout required.
  void AliveCandidateGains(std::vector<graph::EdgeKey>* edges,
                           std::vector<size_t>* gains);

  /// Fill form of AliveCandidateEdges: reuses `out`'s capacity across
  /// rounds instead of allocating a fresh vector per call.
  void AliveCandidateEdgesInto(std::vector<graph::EdgeKey>* out);

  /// Edges that appeared in any instance at build time (sorted); the RDT
  /// baseline samples from this set. After an ApplyGraphDelta repair the
  /// set keeps historical participants (the universe only grows), so the
  /// randomized baseline may sample edges with zero alive instances —
  /// harmless: such picks simply score a gain of 0.
  std::vector<graph::EdgeKey> AllParticipatingEdges() const {
    return std::vector<graph::EdgeKey>(edge_keys_.begin(), edge_keys_.end());
  }

  /// The interned edge keys themselves, ascending — the STATIC candidate
  /// universe of an incremental round session (dense ids are positions in
  /// this span). Lives as long as the index (or any copy sharing its
  /// backing).
  std::span<const graph::EdgeKey> InternedEdgeKeys() const {
    return edge_keys_.span();
  }

  /// Dense id of `e`, or kNoEdge when it was never interned.
  uint32_t InternedIdOf(graph::EdgeKey e) const { return EdgeIdOf(e); }

  /// Sentinel of InternedIdOf: the key was never interned.
  static constexpr uint32_t kNoEdge = 0xffffffffu;

  /// True iff every internal structure of this index equals `other`'s —
  /// instances, interning, both CSR layouts, slot tables, and all alive
  /// state. Deferred CSR-2 maintenance is compared by EFFECT, not by
  /// queue state: an index with queued decrements equals its flushed twin.
  /// The check behind "parallel build == serial build" in the differential
  /// tests and the index_build bench.
  bool BitIdentical(const IncidenceIndex& other) const;

 private:
  // The snapshot codec (motif/index_snapshot.h) serializes the private
  // layout verbatim and reconstitutes it by adopting mmap'd file bytes
  // into the FlatArray members below.
  friend class IndexSnapshotCodec;

  IncidenceIndex() = default;

  /// Dense id of key `e`, or kNoEdge, resolved through a STATIC open-
  /// addressing table built once after interning: multiply-shift hash
  /// into a power-of-two slot array (no prime modulus, so no hardware
  /// division like std::unordered_map pays), linear probing at <= 50%
  /// load, keys and ids in parallel flat arrays (8 keys per cache line,
  /// no node chase). The table never changes after build — deletions
  /// maintain counts, not the interning — so the keyed query hot paths
  /// (Gain, DeleteEdge) pay one multiply plus typically one cache line.
  /// The per-endpoint bucket table (u_offsets_) remains as the sorted
  /// view of the interning for the CSR fill passes and differential
  /// checks.
  uint32_t EdgeIdOf(graph::EdgeKey e) const {
    // Fibonacci multiply-shift: the product's high bits index the table.
    uint64_t slot = (e * 0x9E3779B97F4A7C15ull) >> probe_shift_;
    for (;; slot = (slot + 1) & probe_mask_) {
      const graph::EdgeKey k = probe_keys_[slot];
      if (k == e) return probe_ids_[slot];
      if (k == 0) return kNoEdge;  // 0 is no valid key (u < v => v >= 1)
    }
  }

  // FlushDeferredCounts' kill walk, specialized on the motif arity so the
  // count updates fully unroll, and on dirty collection so the plain
  // flush carries no per-edge branch for it. The kDirty instantiation
  // appends changed edge ids to `dirty` (deduplicated through the stamp
  // array).
  template <int kArity, bool kDirty>
  void FlushCountsImpl(std::vector<uint32_t>* dirty);

  // Builds the static EdgeIdOf probe table from the finished edge_keys_;
  // both build paths call it right after interning.
  void BuildProbeTable();

  // Shared tail of Build and BuildSerialReference: sizes and fills the
  // alive state (alive_, total_alive_, alive_per_target_, alive_edges_)
  // from the enumerated instances in O(instances + E).
  void FinishAliveState(size_t num_targets);

  // Fills the repair-acceleration caches (target_keys_sorted_ and the
  // node -> target CSR) from the build-time target list. Both build
  // tails call it; ApplyGraphDelta rebuilds it lazily when absent (an
  // index restored from a snapshot, which does not carry the caches).
  void PopulateRepairCaches(const std::vector<graph::Edge>& targets);

  // Storage split: everything immutable after build is a FlatArray —
  // copies of the index (IndexedEngine::Clone) alias one backing
  // allocation, and a snapshot load (motif/index_snapshot.h) adopts the
  // mmap'd file bytes in place. Only the genuinely mutable state (alive
  // flags, cached counts, CSR-2 cells, deferral queues) stays in
  // std::vectors that deep-copy per clone.

  // Instance storage (shared shape with LegacyIncidenceIndex). alive_ is
  // a four-state flag: 1 = alive; 2 = dead, count AND cell maintenance
  // queued (set by DeleteEdge); 3 = dead, counts applied, cell
  // maintenance still queued (set by FlushDeferredCounts, consumed by
  // FlushDeferredMaintenance); 0 = dead and fully flushed. Everything
  // outside the flush machinery treats any non-1 state as dead.
  FlatArray<TargetSubgraph> instances_;
  std::vector<uint8_t> alive_;
  std::vector<size_t> alive_per_target_;
  size_t total_alive_ = 0;

  // Edge interner: edge_keys_ is sorted ascending (id order == key
  // order) and u_offsets_[u] .. u_offsets_[u+1] brackets the keys whose
  // smaller endpoint is u.
  FlatArray<graph::EdgeKey> edge_keys_;
  FlatArray<uint32_t> u_offsets_;  // size NumNodes() + 1

  // The static probe table behind EdgeIdOf (see its comment): power-of-
  // two capacity at <= 50% load, key 0 = empty slot, ids aligned with
  // probe_keys_. Built by BuildProbeTable right after interning in both
  // build paths (the CSR fill passes already resolve through it),
  // immutable afterwards; deterministic (insertion in ascending id order
  // with linear probing), so equal edge_keys_ imply an equal table.
  FlatArray<graph::EdgeKey> probe_keys_;
  FlatArray<uint32_t> probe_ids_;
  uint64_t probe_mask_ = 0;
  int probe_shift_ = 63;

  // CSR 1: edge id -> instance ids.
  FlatArray<uint32_t> inst_offsets_;  // size NumInternedEdges() + 1
  FlatArray<uint32_t> instance_ids_;  // flat posting lists

  // Cached gain: alive_count_[e] == alive instances containing edge id e,
  // and alive_edges_ == |{e : alive_count_[e] > 0}|.
  std::vector<uint32_t> alive_count_;
  size_t alive_edges_ = 0;

  // CSR 2: edge id -> (target, alive count) pairs. tgt_counts_ cells may
  // lag behind the eager alive state by the queued decrements in pending_;
  // FlushDeferredMaintenance() restores them before any per-target read.
  FlatArray<uint32_t> tgt_offsets_;   // size NumInternedEdges() + 1
  FlatArray<uint32_t> tgt_ids_;       // flat target indices
  std::vector<uint32_t> tgt_counts_;  // flat alive counts, mutated

  // Deferred-maintenance queues: fixed-size arrays (sized
  // NumInternedEdges() at build, so even a fresh index copy queues
  // without ever allocating) used as stacks of deleted edge ids. An edge
  // enters counts_queue_ at most once — only the delete that kills its
  // last alive instances queues it — so the bound is exact.
  // FlushDeferredCounts drains counts_queue_ (walking each queued edge's
  // posting list for state-2 instances) and moves the ids to
  // cells_queue_; FlushDeferredMaintenance drains cells_queue_ (zeroing
  // the dead edges' segments wholesale, then replaying state-3 instances
  // against the slot table, each cell decrement guarded by cell > 0 — a
  // zero cell belongs to a wholesale-zeroed edge whose decrements are
  // already absorbed, while cells of live edges are always >= the
  // decrements queued against them, so the guard never skips a real
  // update).
  std::vector<uint32_t> counts_queue_;  // [0, counts_pending_) are queued
  std::vector<uint32_t> cells_queue_;   // [0, cells_pending_) are queued
  size_t counts_pending_ = 0;
  size_t cells_pending_ = 0;
  uint64_t counts_flush_epoch_ = 0;  // see CountsFlushEpoch()

  // Dirty-set dedup scratch: stamp[e] == dirty_epoch_ iff edge id e was
  // already emitted by the current dirty-collecting count flush. Lazily
  // sized on first use; epoch bumps make clearing O(1).
  std::vector<uint32_t> dirty_stamp_;
  uint32_t dirty_epoch_ = 0;

  // Repair-acceleration caches (index_repair.cc): the target keys sorted
  // ascending (delta validation binary-searches them instead of sorting
  // per commit) and a node -> target-index CSR over the target endpoints
  // (candidate generation for the delta neighborhood walks it instead of
  // rebuilding it per commit). Pure functions of the build-time target
  // list — populated by PopulateRepairCaches in both build tails, lazily
  // rebuilt on the first repair of a snapshot-loaded index — and
  // deliberately absent from the serialized form AND from BitIdentical
  // (a loaded index must compare equal to the built one).
  std::vector<graph::EdgeKey> target_keys_sorted_;
  std::vector<uint32_t> node_tgt_off_;  // size NumNodes() + 1 once filled
  std::vector<uint32_t> node_tgt_;     // flat target indexes

  // Everything DeleteEdge needs per killed instance, in one compact
  // record (one cache line instead of three scattered structures): the
  // instance's target, its interned edge ids, and the flat CSR-2 slot of
  // (edge_ids[j], target) — so the per-target count is decremented
  // directly instead of scanning the sibling edge's target segment.
  struct InstanceMaintenance {
    uint32_t target = 0;
    std::array<uint32_t, 4> edge_ids{};
    std::array<uint32_t, 4> slots{};
    friend bool operator==(const InstanceMaintenance& a,
                           const InstanceMaintenance& b) = default;
  };
  FlatArray<InstanceMaintenance> maint_;
  // Edges per instance — uniform for one motif kind (MotifEdgeCount), so
  // DeleteEdge never reads the 40-byte TargetSubgraph.
  uint8_t arity_ = 0;
};

}  // namespace tpp::motif

#endif  // TPP_MOTIF_INCIDENCE_INDEX_H_
