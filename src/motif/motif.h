// Motif kinds used as link-prediction bases (paper Fig. 1).

#ifndef TPP_MOTIF_MOTIF_H_
#define TPP_MOTIF_MOTIF_H_

#include <array>
#include <string_view>

#include "common/result.h"

namespace tpp::motif {

/// The subgraph patterns TPP can be instantiated with. A *target
/// subgraph* for hidden link t=(u,v) is an instance of the pattern that t
/// would complete:
///   * Triangle — a 2-path u–w–v (common-neighbor prediction basis);
///   * Rectangle — a simple 3-path u–a–b–v (4-cycle with the target);
///   * RecTri — a 2-path u–w–v plus a 3-path sharing intermediate w
///     (u–w–x–v or u–x–w–v);
///   * Pentagon — a simple 4-path u–a–b–c–v (5-cycle with the target);
///     not in the paper's evaluation, included to exercise the paper's
///     claim that TPP generalizes to any motif.
enum class MotifKind {
  kTriangle = 0,
  kRectangle = 1,
  kRecTri = 2,
  kPentagon = 3,
};

/// All supported motif kinds, for parameterized tests and sweeps.
inline constexpr std::array<MotifKind, 4> kAllMotifs = {
    MotifKind::kTriangle, MotifKind::kRectangle, MotifKind::kRecTri,
    MotifKind::kPentagon};

/// The three motifs the paper's evaluation uses; the bench harnesses
/// sweep exactly these.
inline constexpr std::array<MotifKind, 3> kPaperMotifs = {
    MotifKind::kTriangle, MotifKind::kRectangle, MotifKind::kRecTri};

/// Stable display name: "Triangle", "Rectangle", "RecTri".
std::string_view MotifName(MotifKind kind);

/// Parses a motif name (case-sensitive match of MotifName).
Result<MotifKind> ParseMotifKind(std::string_view name);

/// Number of non-target edges in one instance of the pattern:
/// Triangle=2, Rectangle=3, RecTri=4.
size_t MotifEdgeCount(MotifKind kind);

}  // namespace tpp::motif

#endif  // TPP_MOTIF_MOTIF_H_
