// Target-subgraph enumeration: the similarity function s(P, t).
//
// These are the production enumerators used by the TPP engines. They assume
// phase-1 has already happened (the target links are absent from the graph);
// they do not modify the graph.
//
// Two tiers of API:
//   * EnumerateTargetSubgraphs / CountTargetSubgraphs — one target, the
//     historical convenience form.
//   * PlanEnumerationTasks + AppendTargetSubgraphs +
//     EnumerateAllTargetSubgraphs — the allocation-lean, parallelizable
//     build path. A target's enumeration is split into tasks over ranges
//     of u's neighbor list (hub targets become several tasks so one hub
//     cannot serialize a parallel build); concatenating task outputs in
//     task order reproduces the serial (target, emit) order exactly, which
//     is what makes the parallel IncidenceIndex build bit-identical to the
//     serial one.
//
// EnumerateScratch replaces the per-probe HasEdge binary searches of the
// Rectangle / Pentagon / RecTri inner loops with O(1) reads of a stamped
// neighbor-marker array, and replaces CommonNeighbors materialization with
// a marker test while scanning u's neighbor list. One scratch is reused
// across targets (and graphs); it grows to the largest node count seen and
// never shrinks.

#ifndef TPP_MOTIF_ENUMERATE_H_
#define TPP_MOTIF_ENUMERATE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "motif/motif.h"
#include "motif/target_subgraph.h"

namespace tpp::motif {

/// Reusable per-thread scratch for allocation-lean enumeration: stamped
/// marker arrays over node ids recording membership in N(v) (always) and
/// N(u) (RecTri only). Marking is O(deg); each subsequent membership probe
/// is one array read. Not thread-safe; use one scratch per worker.
class EnumerateScratch {
 public:
  /// Marks the neighbor sets the enumeration core probes for `target` on
  /// `g`: N(target.v) for every kind, N(target.u) additionally for RecTri.
  /// Grows the marker arrays to g.NumNodes() on demand.
  void MarkTarget(const graph::Graph& g, graph::Edge target, MotifKind kind);

  /// True iff w was a neighbor of target.u at the last MarkTarget (RecTri
  /// targets only; unspecified for other kinds).
  bool UMarked(graph::NodeId w) const { return umark_[w] == ustamp_; }

  /// True iff w was a neighbor of target.v at the last MarkTarget.
  bool VMarked(graph::NodeId w) const { return vmark_[w] == vstamp_; }

 private:
  static void Mark(std::span<const graph::NodeId> nbrs, size_t num_nodes,
                   std::vector<uint32_t>& mark, uint32_t& stamp);

  std::vector<uint32_t> umark_, vmark_;
  uint32_t ustamp_ = 0, vstamp_ = 0;
};

/// Enumerates every target subgraph of `kind` for the hidden link `target`
/// on graph `g`, labeling instances with `target_index`. Complexity:
///   Triangle  O(du + dv)
///   Rectangle O(sum of deg over Gamma(u))
///   RecTri    O(sum of deg over common neighbors)
std::vector<TargetSubgraph> EnumerateTargetSubgraphs(
    const graph::Graph& g, graph::Edge target, MotifKind kind,
    int32_t target_index = 0);

/// Appends the target subgraphs whose outermost probe lies in positions
/// [nbr_begin, nbr_end) of target.u's sorted neighbor list — the unit of
/// parallel enumeration work. The full range (0, Degree(u)) appends
/// exactly what EnumerateTargetSubgraphs returns, in the same order.
/// `scratch` must be dedicated to the calling thread; its marks are
/// (re)set here, so callers never pre-mark.
void AppendTargetSubgraphs(const graph::Graph& g, graph::Edge target,
                           MotifKind kind, int32_t target_index,
                           size_t nbr_begin, size_t nbr_end,
                           EnumerateScratch& scratch,
                           std::vector<TargetSubgraph>& out);

/// The pre-optimization enumerator, frozen verbatim: materializes
/// CommonNeighbors vectors and answers every adjacency probe with a
/// HasEdge binary search. Output is identical to EnumerateTargetSubgraphs
/// (differential-tested); kept as the honest baseline of the index_build
/// bench and of IncidenceIndex::BuildSerialReference.
std::vector<TargetSubgraph> EnumerateTargetSubgraphsReference(
    const graph::Graph& g, graph::Edge target, MotifKind kind,
    int32_t target_index = 0);

/// Counts target subgraphs without materializing them: s({}, t) on the
/// current graph. Same complexity as enumeration.
size_t CountTargetSubgraphs(const graph::Graph& g, graph::Edge target,
                            MotifKind kind);

/// Allocation-lean counting using a caller-provided scratch (the form the
/// parallel TotalSimilarity sweep uses per worker).
size_t CountTargetSubgraphs(const graph::Graph& g, graph::Edge target,
                            MotifKind kind, EnumerateScratch& scratch);

/// One unit of parallel enumeration work: target `target` restricted to
/// first-neighbor positions [nbr_begin, nbr_end) of N(target.u).
struct EnumerationTask {
  uint32_t target = 0;
  uint32_t nbr_begin = 0;
  uint32_t nbr_end = 0;
};

/// Splits `targets` into enumeration tasks. Triangle targets are one task
/// each (their per-target cost is O(du + dv), not worth splitting); for
/// the heavier kinds a target whose u-degree exceeds the hub threshold is
/// split by first-neighbor chunk so the task list has no single dominant
/// element. The task list depends only on (g, targets, kind) — never on a
/// thread budget — and concatenating task outputs in list order equals the
/// serial enumeration order.
std::vector<EnumerationTask> PlanEnumerationTasks(
    const graph::Graph& g, const std::vector<graph::Edge>& targets,
    MotifKind kind);

/// Enumerates all targets' subgraphs over the shared thread pool
/// (`threads` <= 0 resolves to tpp::GlobalThreadCount()) and returns them
/// in the serial (target, emit) order: the result is bit-identical to
/// concatenating EnumerateTargetSubgraphs(g, targets[t], kind, t) for t in
/// order, at any thread count. The instance array is assembled
/// count-then-fill from per-task slots, so it is sized exactly once.
std::vector<TargetSubgraph> EnumerateAllTargetSubgraphs(
    const graph::Graph& g, const std::vector<graph::Edge>& targets,
    MotifKind kind, int threads, size_t* num_tasks = nullptr);

/// Total similarity s({}, T) over all targets on the current graph.
/// Counts targets in parallel over the shared pool (`threads` <= 0
/// resolves to tpp::GlobalThreadCount()); the sum is exact integer
/// arithmetic, so the result is identical at any thread count.
size_t TotalSimilarity(const graph::Graph& g,
                       const std::vector<graph::Edge>& targets,
                       MotifKind kind, int threads = 0);

}  // namespace tpp::motif

#endif  // TPP_MOTIF_ENUMERATE_H_
