// Target-subgraph enumeration: the similarity function s(P, t).
//
// These are the production enumerators used by the TPP engines. They assume
// phase-1 has already happened (the target links are absent from the graph);
// they do not modify the graph.

#ifndef TPP_MOTIF_ENUMERATE_H_
#define TPP_MOTIF_ENUMERATE_H_

#include <vector>

#include "graph/graph.h"
#include "motif/motif.h"
#include "motif/target_subgraph.h"

namespace tpp::motif {

/// Enumerates every target subgraph of `kind` for the hidden link `target`
/// on graph `g`, labeling instances with `target_index`. Complexity:
///   Triangle  O(du + dv)
///   Rectangle O(sum of deg over Gamma(u))
///   RecTri    O(sum of deg over common neighbors)
std::vector<TargetSubgraph> EnumerateTargetSubgraphs(
    const graph::Graph& g, graph::Edge target, MotifKind kind,
    int32_t target_index = 0);

/// Counts target subgraphs without materializing them: s({}, t) on the
/// current graph. Same complexity as enumeration.
size_t CountTargetSubgraphs(const graph::Graph& g, graph::Edge target,
                            MotifKind kind);

/// Total similarity s({}, T) over all targets on the current graph.
size_t TotalSimilarity(const graph::Graph& g,
                       const std::vector<graph::Edge>& targets,
                       MotifKind kind);

}  // namespace tpp::motif

#endif  // TPP_MOTIF_ENUMERATE_H_
