#include "motif/legacy_incidence_index.h"

#include <algorithm>

#include "common/strings.h"

namespace tpp::motif {

using graph::Edge;
using graph::EdgeKey;
using graph::Graph;

Result<LegacyIncidenceIndex> LegacyIncidenceIndex::Build(
    const Graph& g, const std::vector<Edge>& targets, MotifKind kind) {
  LegacyIncidenceIndex idx;
  idx.alive_per_target_.assign(targets.size(), 0);
  for (size_t t = 0; t < targets.size(); ++t) {
    const Edge& target = targets[t];
    if (g.HasEdge(target.u, target.v)) {
      return Status::FailedPrecondition(
          StrFormat("target (%u,%u) still present; run phase-1 deletion first",
                    target.u, target.v));
    }
    std::vector<TargetSubgraph> ts = EnumerateTargetSubgraphs(
        g, target, kind, static_cast<int32_t>(t));
    for (TargetSubgraph& inst : ts) {
      idx.instances_.push_back(inst);
    }
  }
  idx.alive_.assign(idx.instances_.size(), 1);
  idx.total_alive_ = idx.instances_.size();
  for (uint32_t i = 0; i < idx.instances_.size(); ++i) {
    const TargetSubgraph& inst = idx.instances_[i];
    ++idx.alive_per_target_[inst.target];
    for (uint8_t j = 0; j < inst.num_edges; ++j) {
      idx.edge_to_instances_[inst.edges[j]].push_back(i);
    }
  }
  return idx;
}

size_t LegacyIncidenceIndex::Gain(EdgeKey e) const {
  auto it = edge_to_instances_.find(e);
  if (it == edge_to_instances_.end()) return 0;
  size_t gain = 0;
  for (uint32_t i : it->second) {
    if (alive_[i]) ++gain;
  }
  return gain;
}

LegacyIncidenceIndex::SplitGain LegacyIncidenceIndex::GainFor(
    EdgeKey e, size_t t) const {
  SplitGain gain;
  auto it = edge_to_instances_.find(e);
  if (it == edge_to_instances_.end()) return gain;
  for (uint32_t i : it->second) {
    if (!alive_[i]) continue;
    if (instances_[i].target == static_cast<int32_t>(t)) {
      ++gain.own;
    } else {
      ++gain.cross;
    }
  }
  return gain;
}

void LegacyIncidenceIndex::AccumulateGains(EdgeKey e,
                                           std::vector<size_t>* out) const {
  auto it = edge_to_instances_.find(e);
  if (it == edge_to_instances_.end()) return;
  for (uint32_t i : it->second) {
    if (alive_[i]) ++(*out)[instances_[i].target];
  }
}

size_t LegacyIncidenceIndex::DeleteEdge(EdgeKey e) {
  auto it = edge_to_instances_.find(e);
  if (it == edge_to_instances_.end()) return 0;
  size_t killed = 0;
  for (uint32_t i : it->second) {
    if (!alive_[i]) continue;
    alive_[i] = 0;
    --alive_per_target_[instances_[i].target];
    --total_alive_;
    ++killed;
  }
  return killed;
}

std::vector<EdgeKey> LegacyIncidenceIndex::AliveCandidateEdges() const {
  std::vector<EdgeKey> out;
  out.reserve(edge_to_instances_.size());
  for (const auto& [e, insts] : edge_to_instances_) {
    for (uint32_t i : insts) {
      if (alive_[i]) {
        out.push_back(e);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<EdgeKey> LegacyIncidenceIndex::AllParticipatingEdges() const {
  std::vector<EdgeKey> out;
  out.reserve(edge_to_instances_.size());
  for (const auto& [e, insts] : edge_to_instances_) {
    (void)insts;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tpp::motif
