// IncidenceIndex::ApplyGraphDelta — in-place index repair after a
// committed base-graph edit (graph::Graph::EditSession).
//
// A cold Build pays full enumeration over every target; an edit that
// touches a handful of edges invalidates almost none of that work. The
// repair exploits two facts:
//
//   * an instance DIES iff it contains a removed edge — exactly what the
//     existing DeleteEdge + deferred-flush machinery computes, so the
//     removal half reuses it verbatim; and
//   * an instance is CREATED iff it contains an inserted edge, and every
//     motif slot an inserted edge (p,q) can fill places a target endpoint
//     within distance one of {p,q} (see the per-slot enumerators below),
//     so the creation half only visits targets in the delta neighborhood
//     and only walks the slot cases that route through the new edge.
//
// Creation enumerates, per inserted edge e_k (ascending key order), the
// instances containing e_k ON THE POST-EDIT GRAPH, partitioned by the
// slot e_k fills — the cases are structurally disjoint, so no instance is
// produced twice for one (target, e_k) pair — and an instance is kept
// only when e_k is its LOWEST-indexed inserted edge, which makes each
// created instance appear exactly once across all pairs.
//
// The merge then repairs in linear gather passes over the surviving
// layout — no hashing, no sorting, no per-entry searches on the survivor
// path. The edge universe only ever GROWS: a key whose last instance died
// keeps its dense id with alive count 0 (the greedy sweeps and the
// incremental round engine skip and tolerate zero rows by design, see
// core/greedy.cc), so removals shift no ids and the interner, probe
// table, and endpoint bucket view are reused untouched; only keys never
// seen before splice in at key rank. Dead instance rows compact out
// (survivors keep their relative order, created rows append), CSR-1
// refills by streaming the old posting lists through the alive bits, and
// CSR-2 merges per edge with a flat cell map so survivor slot tables
// update by O(1) gathers. Everything a gain or candidate query can
// observe — per-key gains, per-target splits, the alive candidate set —
// comes out IDENTICAL to a cold build of the edited graph; the interned
// universe is an ascending superset whose extra keys hold alive count 0,
// and the instance-row permutation differs, neither of which any query or
// deterministic solver observes (tested in tests/index_repair_test.cc by
// solving to byte-identical plans against a cold build after randomized
// churn).

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/strings.h"
#include "motif/incidence_index.h"
#include "motif/motif.h"
#include "motif/target_subgraph.h"

namespace tpp::motif {

using graph::Edge;
using graph::EdgeKey;
using graph::Graph;
using graph::GraphDelta;
using graph::MakeEdgeKey;
using graph::NodeId;

namespace {

// --- Per-motif slot-case enumerators -----------------------------------
//
// Each enumerator emits every instance of target (u, v) that contains the
// inserted edge e = {p, q} in the POST-edit graph, exactly once. The
// cases partition by the slot e fills: e touches u, e touches v (mutually
// exclusive — e == (u,v) would be the target link, which deltas may not
// carry), or e is an interior edge, tried in both orientations. Emission
// reproduces the cold enumerators' edge lists (motif/enumerate.cc);
// TargetSubgraph's constructor sorts the keys either way.
//
// `adjpq(a, x)` answers g.HasEdge(a, x) for a in {p, q} in O(1) through
// the caller's stamp marks over N(p) and N(q); every adjacency test with
// an inserted endpoint on one side routes through it, and the remaining
// "x adjacent to both y and z" filters run as sorted-list intersections
// (Graph::ForEachCommonNeighbor) instead of per-neighbor binary probes.

template <typename AdjPQ, typename Emit>
void TriangleDelta(NodeId u, NodeId v, NodeId p, NodeId q, AdjPQ&& adjpq,
                   Emit&& emit) {
  // Cold: w in N(u) ∩ N(v), edges {(u,w), (w,v)} — both touch a target
  // endpoint, so there is no interior case and the inserted edge must
  // share an endpoint with the target (the candidate walk exploits
  // this: triangle candidates are only the targets incident to p or q).
  if (p == u || q == u) {
    const NodeId w = (p == u) ? q : p;
    if (adjpq(w, v)) emit({MakeEdgeKey(u, w), MakeEdgeKey(w, v)});
  } else if (p == v || q == v) {
    const NodeId w = (p == v) ? q : p;
    if (adjpq(w, u)) emit({MakeEdgeKey(u, w), MakeEdgeKey(w, v)});
  }
}

template <typename AdjPQ, typename Emit>
void RectangleDelta(const Graph& g, NodeId u, NodeId v, NodeId p, NodeId q,
                    AdjPQ&& adjpq, Emit&& emit) {
  // Cold: a in N(u), a != v; b in N(a), b not in {u,v}; b in N(v);
  // edges {(u,a), (a,b), (b,v)}.
  if (p == u || q == u) {  // e fills the (u,a) slot
    const NodeId a = (p == u) ? q : p;
    if (a == v) return;
    g.ForEachCommonNeighbor(a, v, [&](NodeId b) {  // b in N(a) ∩ N(v)
      if (b == u) return;  // b == v is impossible (b in N(v))
      emit({MakeEdgeKey(u, a), MakeEdgeKey(a, b), MakeEdgeKey(b, v)});
    });
    return;
  }
  if (p == v || q == v) {  // e fills the (b,v) slot
    const NodeId b = (p == v) ? q : p;
    if (b == u) return;
    g.ForEachCommonNeighbor(b, u, [&](NodeId a) {  // a in N(b) ∩ N(u)
      if (a == v) return;  // a == u is impossible (a in N(u))
      emit({MakeEdgeKey(u, a), MakeEdgeKey(a, b), MakeEdgeKey(b, v)});
    });
    return;
  }
  // e fills the interior (a,b) slot, in either orientation — all the
  // remaining adjacencies touch an inserted endpoint, so the case is O(1).
  auto ab = [&](NodeId a, NodeId b) {
    if (a == v || b == u || b == v) return;
    if (!adjpq(a, u)) return;  // u in N(a); also rejects a == u
    if (adjpq(b, v)) {
      emit({MakeEdgeKey(u, a), MakeEdgeKey(a, b), MakeEdgeKey(b, v)});
    }
  };
  ab(p, q);
  ab(q, p);
}

template <typename AdjPQ, typename Emit>
void PentagonDelta(const Graph& g, NodeId u, NodeId v, NodeId p, NodeId q,
                   AdjPQ&& adjpq, Emit&& emit) {
  // Cold: a in N(u), a != v; b in N(a), b not in {u,v}; c in N(b), c not
  // in {u,v,a}; c in N(v); edges {(u,a), (a,b), (b,c), (c,v)}.
  if (p == u || q == u) {  // e fills the (u,a) slot
    const NodeId a = (p == u) ? q : p;
    if (a == v) return;
    for (NodeId b : g.Neighbors(a)) {
      if (b == u || b == v) continue;
      for (NodeId c : g.Neighbors(b)) {
        if (c == u || c == v || c == a) continue;
        if (g.HasEdge(c, v)) {
          emit({MakeEdgeKey(u, a), MakeEdgeKey(a, b), MakeEdgeKey(b, c),
                MakeEdgeKey(c, v)});
        }
      }
    }
    return;
  }
  if (p == v || q == v) {  // e fills the (c,v) slot
    const NodeId c = (p == v) ? q : p;
    if (c == u) return;
    for (NodeId b : g.Neighbors(c)) {
      if (b == u || b == v) continue;
      for (NodeId a : g.Neighbors(b)) {
        if (a == u || a == v || a == c) continue;
        if (g.HasEdge(u, a)) {
          emit({MakeEdgeKey(u, a), MakeEdgeKey(a, b), MakeEdgeKey(b, c),
                MakeEdgeKey(c, v)});
        }
      }
    }
    return;
  }
  // e fills the interior (a,b) slot, in either orientation. a and b are
  // inserted endpoints here, so the gating adjacency checks are O(1).
  auto ab = [&](NodeId a, NodeId b) {
    if (a == v || b == u || b == v) return;
    if (!adjpq(a, u)) return;  // u in N(a); also rejects a == u
    for (NodeId c : g.Neighbors(b)) {
      if (c == u || c == v || c == a) continue;
      if (g.HasEdge(c, v)) {
        emit({MakeEdgeKey(u, a), MakeEdgeKey(a, b), MakeEdgeKey(b, c),
              MakeEdgeKey(c, v)});
      }
    }
  };
  // e fills the interior (b,c) slot, in either orientation.
  auto bc = [&](NodeId b, NodeId c) {
    if (b == u || b == v || c == u || c == v) return;
    if (!adjpq(c, v)) return;  // v in N(c)
    for (NodeId a : g.Neighbors(b)) {
      if (a == u || a == v || a == c) continue;
      if (g.HasEdge(u, a)) {
        emit({MakeEdgeKey(u, a), MakeEdgeKey(a, b), MakeEdgeKey(b, c),
              MakeEdgeKey(c, v)});
      }
    }
  };
  ab(p, q);
  ab(q, p);
  bc(p, q);
  bc(q, p);
}

template <typename AdjPQ, typename Emit>
void RecTriDelta(const Graph& g, NodeId u, NodeId v, NodeId p, NodeId q,
                 AdjPQ&& adjpq, Emit&& emit) {
  // Cold: w in N(u) ∩ N(v); x in N(w), x not in {u,v}; type A when x in
  // N(v): {uw, wv, (w,x), (x,v)}; type B when x in N(u): {uw, wv, (u,x),
  // (x,w)}. One (w,x) can emit both types — two distinct instances. (The
  // matching branches here emit all type-A hits before the type-B hits
  // of the same (target, e) pair instead of interleaving them per x; the
  // within-pair emission order never leaves this file — instance rows
  // sort target-major either way and ids do not leak into plans.)
  if (p == u || q == u) {
    const NodeId y = (p == u) ? q : p;
    // e fills the uw slot (w = y): both types route through it.
    if (adjpq(y, v)) {
      g.ForEachCommonNeighbor(y, v, [&](NodeId x) {  // type A: x in N(y)∩N(v)
        if (x == u) return;
        emit({MakeEdgeKey(u, y), MakeEdgeKey(y, v), MakeEdgeKey(y, x),
              MakeEdgeKey(x, v)});
      });
      g.ForEachCommonNeighbor(y, u, [&](NodeId x) {  // type B: x in N(y)∩N(u)
        if (x == v) return;
        emit({MakeEdgeKey(u, y), MakeEdgeKey(y, v), MakeEdgeKey(u, x),
              MakeEdgeKey(x, y)});
      });
    }
    // e fills type B's ux slot (x = y): the hub w still needs both links.
    if (y != v) {
      g.ForEachCommonNeighbor(y, u, [&](NodeId w) {  // w in N(y) ∩ N(u)
        if (w == v) return;
        if (g.HasEdge(w, v)) {
          emit({MakeEdgeKey(u, w), MakeEdgeKey(w, v), MakeEdgeKey(u, y),
                MakeEdgeKey(y, w)});
        }
      });
    }
    return;
  }
  if (p == v || q == v) {
    const NodeId y = (p == v) ? q : p;
    // e fills the wv slot (w = y): both types route through it.
    if (adjpq(y, u)) {
      g.ForEachCommonNeighbor(y, v, [&](NodeId x) {  // type A: x in N(y)∩N(v)
        if (x == u) return;
        emit({MakeEdgeKey(u, y), MakeEdgeKey(y, v), MakeEdgeKey(y, x),
              MakeEdgeKey(x, v)});
      });
      g.ForEachCommonNeighbor(y, u, [&](NodeId x) {  // type B: x in N(y)∩N(u)
        if (x == v) return;
        emit({MakeEdgeKey(u, y), MakeEdgeKey(y, v), MakeEdgeKey(u, x),
              MakeEdgeKey(x, y)});
      });
    }
    // e fills type A's xv slot (x = y).
    if (y != u) {
      g.ForEachCommonNeighbor(y, u, [&](NodeId w) {  // w in N(y) ∩ N(u)
        if (w == v) return;
        if (g.HasEdge(w, v)) {
          emit({MakeEdgeKey(u, w), MakeEdgeKey(w, v), MakeEdgeKey(w, y),
                MakeEdgeKey(y, v)});
        }
      });
    }
    return;
  }
  // e fills the interior spoke slot — type A's (w,x) or type B's (x,w),
  // the same key — in either orientation of (hub, spoke). Every check
  // touches an inserted endpoint, so the whole case is O(1).
  auto wx = [&](NodeId w, NodeId x) {
    if (w == u || w == v || x == u || x == v) return;
    if (!adjpq(w, u) || !adjpq(w, v)) return;
    if (adjpq(x, v)) {
      emit({MakeEdgeKey(u, w), MakeEdgeKey(w, v), MakeEdgeKey(w, x),
            MakeEdgeKey(x, v)});
    }
    if (adjpq(x, u)) {
      emit({MakeEdgeKey(u, w), MakeEdgeKey(w, v), MakeEdgeKey(u, x),
            MakeEdgeKey(x, w)});
    }
  };
  wx(p, q);
  wx(q, p);
}

// Enumerates every instance CREATED by the delta on the post-edit graph.
// The walk is insert-major: for each inserted edge e_k = {p, q} it marks
// N(p) and N(q) in a stamp array — the slot enumerators answer adjacency
// against the inserted endpoints in O(1) through it — then generates the
// candidate targets and runs the slot enumerators per candidate. A
// target t can gain an instance through e_k only when one of its
// endpoints lies in {p,q} ∪ N(p) ∪ N(q) (every slot case anchors a
// target endpoint at distance <= 1 from e); triangles tighten this to
// the targets INCIDENT to p or q, since their slot cases require a
// shared endpoint. Candidates come from the prebuilt node -> target CSR
// (`node_off`/`node_tgt`, cached on the index) deduplicated per k with a
// stamp array. An instance is kept only when e_k is its LOWEST-indexed
// inserted edge, so each created instance is produced exactly once; the
// final stable sort by target restores the target-major row order the
// phase-3 merge relies on (within one target the insert-major walk
// already emits in ascending k).
std::vector<TargetSubgraph> EnumerateCreatedInstances(
    const Graph& g, const std::vector<Edge>& targets, MotifKind kind,
    const std::vector<Edge>& inserted, std::span<const uint32_t> node_off,
    std::span<const uint32_t> node_tgt) {
  std::vector<TargetSubgraph> created;
  if (inserted.empty()) return created;

  std::vector<EdgeKey> inserted_keys;
  inserted_keys.reserve(inserted.size());
  for (const Edge& e : inserted) inserted_keys.push_back(MakeEdgeKey(e.u, e.v));

  std::vector<uint8_t> mark(g.NumNodes(), 0);  // bit 1: N(p), bit 2: N(q)
  std::vector<uint32_t> tstamp(targets.size(), 0);
  for (size_t k = 0; k < inserted.size(); ++k) {
    const NodeId p = inserted[k].u;
    const NodeId q = inserted[k].v;
    for (NodeId w : g.Neighbors(p)) mark[w] |= 1;
    for (NodeId w : g.Neighbors(q)) mark[w] |= 2;
    auto adjpq = [&](NodeId a, NodeId x) {
      return (mark[x] & (a == p ? 1 : 2)) != 0;
    };
    const size_t kk = k;
    auto run = [&](uint32_t t) {
      const NodeId u = targets[t].u;
      const NodeId v = targets[t].v;
      // Rectangle and RecTri slot cases either match an inserted endpoint
      // to a target endpoint or anchor BOTH target endpoints inside
      // N(p) ∪ N(q) — their interior slots connect u and v to the
      // inserted edge directly — so a candidate failing both cannot
      // contain e and skips the enumerator. (Pentagon interiors reach a
      // target endpoint at distance two; only the generic distance-one
      // candidate rule applies there.)
      if ((kind == MotifKind::kRectangle || kind == MotifKind::kRecTri) &&
          u != p && u != q && v != p && v != q &&
          (mark[u] == 0 || mark[v] == 0)) {
        return;
      }
      auto emit = [&](std::initializer_list<EdgeKey> keys) {
        TargetSubgraph inst(static_cast<int32_t>(t), keys);
        // Keep the instance only when e_k is its lowest-indexed inserted
        // edge; pairs with later inserted edges re-produce it and drop
        // it here, so each created instance lands exactly once.
        for (uint8_t j = 0; j < inst.num_edges; ++j) {
          auto it = std::lower_bound(inserted_keys.begin(),
                                     inserted_keys.end(), inst.edges[j]);
          if (it != inserted_keys.end() && *it == inst.edges[j] &&
              static_cast<size_t>(it - inserted_keys.begin()) < kk) {
            return;
          }
        }
        created.push_back(inst);
      };
      switch (kind) {
        case MotifKind::kTriangle:
          TriangleDelta(u, v, p, q, adjpq, emit);
          break;
        case MotifKind::kRectangle:
          RectangleDelta(g, u, v, p, q, adjpq, emit);
          break;
        case MotifKind::kPentagon:
          PentagonDelta(g, u, v, p, q, adjpq, emit);
          break;
        case MotifKind::kRecTri:
          RecTriDelta(g, u, v, p, q, adjpq, emit);
          break;
      }
    };
    const uint32_t stamp = static_cast<uint32_t>(k) + 1;
    auto consider = [&](NodeId x) {
      for (uint32_t i = node_off[x]; i < node_off[x + 1]; ++i) {
        const uint32_t t = node_tgt[i];
        if (tstamp[t] == stamp) continue;
        tstamp[t] = stamp;
        run(t);
      }
    };
    consider(p);
    consider(q);
    if (kind != MotifKind::kTriangle) {
      for (NodeId w : g.Neighbors(p)) consider(w);
      for (NodeId w : g.Neighbors(q)) consider(w);
    }
    for (NodeId w : g.Neighbors(p)) mark[w] = 0;
    for (NodeId w : g.Neighbors(q)) mark[w] = 0;
  }
  std::stable_sort(created.begin(), created.end(),
                   [](const TargetSubgraph& a, const TargetSubgraph& b) {
                     return a.target < b.target;
                   });
  return created;
}

// The GraphDelta contract the repair leans on: canonical edges, strictly
// ascending by key (the lowest-inserted-index dedup binary-searches it).
Status ValidateDeltaList(const std::vector<Edge>& list, const char* what,
                         size_t num_nodes) {
  EdgeKey prev = 0;
  for (const Edge& e : list) {
    if (e.u >= num_nodes || e.v >= num_nodes || e.u >= e.v) {
      return Status::InvalidArgument(
          StrFormat("delta %s edge (%u,%u) not canonical for n=%zu", what,
                    e.u, e.v, num_nodes));
    }
    const EdgeKey key = MakeEdgeKey(e.u, e.v);
    if (key <= prev && prev != 0) {
      return Status::InvalidArgument(
          StrFormat("delta %s list not strictly ascending at (%u,%u)", what,
                    e.u, e.v));
    }
    prev = key;
  }
  return Status::Ok();
}

}  // namespace

Status IncidenceIndex::ApplyGraphDelta(const Graph& g,
                                       const std::vector<Edge>& targets,
                                       MotifKind kind,
                                       const GraphDelta& delta,
                                       const CancellationToken* cancel) {
  // Cancellation is honored only here, before anything mutates: a repair
  // rewires live CSR state in place and cannot back out halfway, so once
  // the delta starts applying it runs to completion even if the caller's
  // deadline lapses mid-way.
  TPP_RETURN_IF_ERROR(PollCancellation(cancel, "index:repair"));
  // --- Validation: any failure leaves the index untouched. ---
  if (MotifEdgeCount(kind) != arity_) {
    return Status::InvalidArgument(
        StrFormat("motif %s (arity %zu) does not match the built index "
                  "(arity %u)",
                  std::string(MotifName(kind)).c_str(), MotifEdgeCount(kind),
                  static_cast<unsigned>(arity_)));
  }
  if (u_offsets_.size() != g.NumNodes() + 1) {
    return Status::InvalidArgument(
        StrFormat("graph has %zu nodes but the index was built over %zu",
                  g.NumNodes(),
                  u_offsets_.size() == 0 ? 0 : u_offsets_.size() - 1));
  }
  if (targets.size() != NumTargets()) {
    return Status::InvalidArgument(
        StrFormat("target list size %zu does not match the built index (%zu)",
                  targets.size(), NumTargets()));
  }
  if (HasDeferredMaintenance() || total_alive_ != instances_.size()) {
    return Status::FailedPrecondition(
        "index is not fresh: repair composes only on an index with every "
        "instance alive and no deferred maintenance");
  }
  TPP_RETURN_IF_ERROR(ValidateDeltaList(delta.inserted, "inserted",
                                        g.NumNodes()));
  TPP_RETURN_IF_ERROR(ValidateDeltaList(delta.removed, "removed",
                                        g.NumNodes()));
  // The sorted target keys and the node -> target CSR the candidate walk
  // needs are cached on the index (populated at build; an index restored
  // from a snapshot, which does not carry them, rebuilds them here on
  // its first repair). Both are pure functions of the build-time target
  // list, which the checks above pinned to this one.
  if (target_keys_sorted_.size() != targets.size() ||
      node_tgt_off_.size() != u_offsets_.size()) {
    PopulateRepairCaches(targets);
  }
  auto check_edges = [&](const std::vector<Edge>& list, bool want_present,
                         const char* what) -> Status {
    for (const Edge& e : list) {
      if (g.HasEdge(e.u, e.v) != want_present) {
        return Status::InvalidArgument(StrFormat(
            "delta %s edge (%u,%u) %s in the post-edit graph", what, e.u,
            e.v, want_present ? "absent" : "present"));
      }
      if (std::binary_search(target_keys_sorted_.begin(),
                             target_keys_sorted_.end(),
                             MakeEdgeKey(e.u, e.v))) {
        return Status::InvalidArgument(StrFormat(
            "delta %s edge (%u,%u) is a target link", what, e.u, e.v));
      }
    }
    return Status::Ok();
  };
  TPP_RETURN_IF_ERROR(check_edges(delta.inserted, /*want_present=*/true,
                                  "inserted"));
  TPP_RETURN_IF_ERROR(check_edges(delta.removed, /*want_present=*/false,
                                  "removed"));
  if (delta.empty()) return Status::Ok();

  // --- Phase 1: retire instances killed by removed edges. DeleteEdge is
  // exact here — an instance dies iff it contains a removed edge — and
  // the flushes restore every count so the survivor layout below reads
  // consistently. Removed edges that were never interned no-op.
  size_t killed = 0;
  for (const Edge& e : delta.removed) {
    killed += DeleteEdge(MakeEdgeKey(e.u, e.v));
  }
  FlushDeferredMaintenance();

  // --- Phase 2: enumerate instances created by inserted edges (on the
  // post-edit graph, which the caller already advanced).
  std::vector<TargetSubgraph> created = EnumerateCreatedInstances(
      g, targets, kind, delta.inserted, node_tgt_off_, node_tgt_);

  if (killed == 0 && created.empty()) return Status::Ok();  // structural no-op

  // --- Phase 3: in-place merge. The edge universe only GROWS: a key
  // whose last instance died keeps its dense id with alive count 0 (the
  // greedy sweeps and incremental round sessions skip and tolerate zero
  // rows, see core/greedy.cc), so removals shift no ids — the interner,
  // probe table, and endpoint bucket view are reused untouched unless
  // genuinely fresh keys intern. Everything below is a linear gather or
  // two-pointer merge over the surviving layout; the survivor path does
  // no hashing, no sorting, and no per-entry searches.
  const size_t old_num_edges = edge_keys_.size();
  const size_t old_num_instances = instances_.size();
  const size_t arity = arity_;
  const uint32_t kDead = std::numeric_limits<uint32_t>::max();

  std::vector<EdgeKey> fresh_keys;
  for (const TargetSubgraph& inst : created) {
    for (uint8_t j = 0; j < inst.num_edges; ++j) {
      if (EdgeIdOf(inst.edges[j]) == kNoEdge) {
        fresh_keys.push_back(inst.edges[j]);
      }
    }
  }
  std::sort(fresh_keys.begin(), fresh_keys.end());
  fresh_keys.erase(std::unique(fresh_keys.begin(), fresh_keys.end()),
                   fresh_keys.end());
  const size_t num_fresh = fresh_keys.size();
  const size_t num_edges = old_num_edges + num_fresh;

  // Fresh keys splice in at key rank — the universe must stay ascending
  // (the solver tie-break contract) — shifting old ids by the number of
  // fresh keys below them. `idmap` records the shift; it stays empty (and
  // the interner/probe/bucket views stay shared with every clone) in the
  // common case of no never-seen key.
  std::vector<uint32_t> idmap;
  if (num_fresh > 0) {
    idmap.resize(old_num_edges);
    std::vector<EdgeKey> new_keys;
    new_keys.reserve(num_edges);
    size_t fi = 0;
    for (size_t e = 0; e < old_num_edges; ++e) {
      const EdgeKey key = edge_keys_[e];
      while (fi < num_fresh && fresh_keys[fi] < key) {
        new_keys.push_back(fresh_keys[fi++]);
      }
      idmap[e] = static_cast<uint32_t>(new_keys.size());
      new_keys.push_back(key);
    }
    while (fi < num_fresh) new_keys.push_back(fresh_keys[fi++]);
    edge_keys_ = std::move(new_keys);
    BuildProbeTable();
    std::vector<uint32_t> u_offsets(g.NumNodes() + 1, 0);
    for (EdgeKey key : edge_keys_) {
      ++u_offsets[graph::EdgeKeyU(key) + 1];
    }
    for (size_t x = 0; x < g.NumNodes(); ++x) {
      u_offsets[x + 1] += u_offsets[x];
    }
    u_offsets_ = std::move(u_offsets);
  }
  const auto remap = [&](uint32_t e) -> uint32_t {
    return num_fresh > 0 ? idmap[e] : e;
  };

  // Instance renumber: dead rows compact out, survivors keep their
  // relative order (the renumber is monotone, so ascending posting lists
  // stay ascending), created rows append in (target, emission) order.
  // Instance ids never leak into plans, so the permutation vs a cold
  // build is unobservable.
  const size_t num_survivors = total_alive_;
  const size_t num_instances = num_survivors + created.size();
  // One fused pass builds the dead-row renumber map and gathers the
  // survivors into the replacement instance and maintenance arrays —
  // both are FlatArrays whose backing is shared across clones, so they
  // must be fresh allocations, never mutated in place.
  std::vector<uint32_t> instmap(old_num_instances);
  std::vector<TargetSubgraph> new_instances;
  new_instances.reserve(num_instances);
  std::vector<InstanceMaintenance> maint;
  maint.reserve(num_instances);
  {
    // Dead rows are sparse (one per removed-edge incidence), so the
    // survivors form long contiguous runs: gather them with ranged
    // inserts (memcpy for these trivially copyable rows) instead of
    // element-wise push_backs. Slots stay valid unless CSR-2 changes.
    uint32_t next = 0;
    size_t i = 0;
    while (i < old_num_instances) {
      if (alive_[i] != 1) {
        instmap[i] = kDead;
        ++i;
        continue;
      }
      size_t j = i;
      while (j < old_num_instances && alive_[j] == 1) instmap[j++] = next++;
      new_instances.insert(new_instances.end(), instances_.begin() + i,
                           instances_.begin() + j);
      maint.insert(maint.end(), maint_.begin() + i, maint_.begin() + j);
      i = j;
    }
    TPP_CHECK(next == num_survivors);
  }
  if (num_fresh > 0) {
    for (size_t i = 0; i < num_survivors; ++i) {
      InstanceMaintenance& m = maint[i];
      for (size_t j = 0; j < arity; ++j) m.edge_ids[j] = idmap[m.edge_ids[j]];
    }
  }
  for (const TargetSubgraph& inst : created) {
    new_instances.push_back(inst);
    InstanceMaintenance m{};
    m.target = static_cast<uint32_t>(inst.target);
    for (size_t j = 0; j < arity; ++j) {
      const uint32_t e = EdgeIdOf(inst.edges[j]);  // post-splice probe
      TPP_CHECK(e != kNoEdge);
      m.edge_ids[j] = e;
    }
    maint.push_back(m);
  }

  // Created postings bucketed per edge by a stable counting pass: within
  // each edge the created instance ids (and with them their targets, the
  // emission order being target-major) come out ascending — the invariant
  // both CSR fills below rely on.
  std::vector<uint32_t> created_off;
  std::vector<uint32_t> created_ids;
  if (!created.empty()) {  // removal-only commits skip the bucketing cost
    created_off.assign(num_edges + 1, 0);
    for (size_t c = 0; c < created.size(); ++c) {
      const InstanceMaintenance& m = maint[num_survivors + c];
      for (size_t j = 0; j < arity; ++j) ++created_off[m.edge_ids[j] + 1];
    }
    for (size_t e = 0; e < num_edges; ++e) created_off[e + 1] += created_off[e];
    created_ids.resize(created_off.back());
    std::vector<uint32_t> cursor(created_off.begin(), created_off.end() - 1);
    for (size_t c = 0; c < created.size(); ++c) {
      const InstanceMaintenance& m = maint[num_survivors + c];
      for (size_t j = 0; j < arity; ++j) {
        created_ids[cursor[m.edge_ids[j]]++] =
            static_cast<uint32_t>(num_survivors + c);
      }
    }
  }

  // CSR 1 (edge -> alive instance ids): survivor segment lengths are the
  // eagerly maintained alive counts (exact after the phase-1 flush),
  // created postings append after them. The fill streams the old posting
  // lists through the alive bits.
  std::vector<uint32_t> inst_offsets(num_edges + 1, 0);
  for (size_t e = 0; e < old_num_edges; ++e) {
    inst_offsets[remap(static_cast<uint32_t>(e)) + 1] = alive_count_[e];
  }
  if (!created.empty()) {
    for (size_t e = 0; e < num_edges; ++e) {
      inst_offsets[e + 1] +=
          created_off[e + 1] - created_off[e] + inst_offsets[e];
    }
  } else {
    for (size_t e = 0; e < num_edges; ++e) inst_offsets[e + 1] += inst_offsets[e];
  }
  std::vector<uint32_t> instance_ids(inst_offsets.back());
  for (size_t e = 0; e < old_num_edges; ++e) {
    uint32_t w = inst_offsets[remap(static_cast<uint32_t>(e))];
    for (uint32_t p = inst_offsets_[e]; p < inst_offsets_[e + 1]; ++p) {
      const uint32_t i = instance_ids_[p];
      if (alive_[i] == 1) instance_ids[w++] = instmap[i];
    }
  }
  if (!created.empty()) {
    for (size_t e = 0; e < num_edges; ++e) {
      uint32_t w = inst_offsets[e + 1] - (created_off[e + 1] - created_off[e]);
      for (uint32_t p = created_off[e]; p < created_off[e + 1]; ++p) {
        instance_ids[w++] = created_ids[p];
      }
    }
  }

  if (!created.empty()) {
    // CSR 2 (edge -> per-target counts): per-edge two-pointer merge of
    // the old cell run — kept verbatim, zeroed cells included, which gain
    // reads skip — with the created targets for that edge. `cellmap`
    // carries every old flat cell to its new flat position, so survivor
    // slot tables update by a straight gather; only created rows ever
    // binary-search their cell.
    std::vector<uint32_t> old_of_new;
    if (num_fresh > 0) {
      old_of_new.assign(num_edges, kDead);
      for (size_t e = 0; e < old_num_edges; ++e) {
        old_of_new[idmap[e]] = static_cast<uint32_t>(e);
      }
    }
    std::vector<uint32_t> tgt_offsets(num_edges + 1, 0);
    std::vector<uint32_t> tgt_ids;
    std::vector<uint32_t> tgt_counts;
    tgt_ids.reserve(tgt_ids_.size() + created.size() * arity);
    tgt_counts.reserve(tgt_ids_.size() + created.size() * arity);
    std::vector<uint32_t> cellmap(tgt_ids_.size());
    // An edge is PLAIN when it maps to an old edge (not freshly spliced)
    // and gained no created postings — its cell run copies verbatim.
    // Nearly every edge is plain, and within a maximal run of plain
    // edges the old ids are consecutive (the splice preserves relative
    // order and fresh ids break the run), so the run's cells form one
    // contiguous old-array span shifted by a single delta: one bulk
    // copy, one vectorizable cellmap fill, and one offset-rebase loop
    // replace per-edge bookkeeping.
    const auto is_plain = [&](size_t e) {
      if (created_off[e + 1] > created_off[e]) return false;
      return num_fresh == 0 || old_of_new[e] != kDead;
    };
    size_t en = 0;
    while (en < num_edges) {
      if (is_plain(en)) {
        size_t block_end = en + 1;
        while (block_end < num_edges && is_plain(block_end)) ++block_end;
        const uint32_t eo0 =
            num_fresh > 0 ? old_of_new[en] : static_cast<uint32_t>(en);
        const size_t len = block_end - en;
        const uint32_t q0 = tgt_offsets_[eo0];
        const uint32_t q1 = tgt_offsets_[eo0 + len];
        const uint32_t out = static_cast<uint32_t>(tgt_ids.size());
        for (uint32_t qq = q0; qq < q1; ++qq) cellmap[qq] = out + (qq - q0);
        tgt_ids.insert(tgt_ids.end(), tgt_ids_.begin() + q0,
                       tgt_ids_.begin() + q1);
        tgt_counts.insert(tgt_counts.end(), tgt_counts_.begin() + q0,
                          tgt_counts_.begin() + q1);
        for (size_t i = 0; i < len; ++i) {
          tgt_offsets[en + i + 1] = out + (tgt_offsets_[eo0 + i + 1] - q0);
        }
        en = block_end;
        continue;
      }
      const uint32_t eo =
          num_fresh > 0 ? old_of_new[en] : static_cast<uint32_t>(en);
      uint32_t q = eo == kDead ? 0 : tgt_offsets_[eo];
      const uint32_t q_end = eo == kDead ? 0 : tgt_offsets_[eo + 1];
      uint32_t p = created_off[en];
      const uint32_t p_end = created_off[en + 1];
      while (q < q_end || p < p_end) {
        const uint32_t old_tgt = q < q_end ? tgt_ids_[q] : kDead;
        const uint32_t new_tgt =
            p < p_end ? maint[created_ids[p]].target : kDead;
        if (old_tgt <= new_tgt) {
          uint32_t count = tgt_counts_[q];
          while (p < p_end && maint[created_ids[p]].target == old_tgt) {
            ++count;
            ++p;
          }
          cellmap[q] = static_cast<uint32_t>(tgt_ids.size());
          tgt_ids.push_back(old_tgt);
          tgt_counts.push_back(count);
          ++q;
        } else {
          uint32_t count = 1;
          ++p;
          while (p < p_end && maint[created_ids[p]].target == new_tgt) {
            ++count;
            ++p;
          }
          tgt_ids.push_back(new_tgt);
          tgt_counts.push_back(count);
        }
      }
      tgt_offsets[en + 1] = static_cast<uint32_t>(tgt_ids.size());
      ++en;
    }
    for (size_t i = 0; i < num_survivors; ++i) {
      for (size_t j = 0; j < arity; ++j) {
        maint[i].slots[j] = cellmap[maint[i].slots[j]];
      }
    }
    for (size_t i = num_survivors; i < num_instances; ++i) {
      InstanceMaintenance& m = maint[i];
      for (size_t j = 0; j < arity; ++j) {
        const uint32_t e = m.edge_ids[j];
        const uint32_t* seg_begin = tgt_ids.data() + tgt_offsets[e];
        const uint32_t* seg_end = tgt_ids.data() + tgt_offsets[e + 1];
        const uint32_t* it = std::lower_bound(seg_begin, seg_end, m.target);
        TPP_CHECK(it != seg_end && *it == m.target);
        m.slots[j] = static_cast<uint32_t>(tgt_offsets[e] + (it - seg_begin));
      }
    }
    tgt_offsets_ = std::move(tgt_offsets);
    tgt_ids_ = std::move(tgt_ids);
    tgt_counts_ = std::move(tgt_counts);
  }
  // else: removal-only repair — every surviving cell keeps its flat
  // position (the phase-1 flush already updated the counts through the
  // existing slot tables), so the whole CSR-2 split and every survivor
  // slot are reused verbatim.

  // Alive-count cache over the (possibly grown) universe; zero rows
  // persist by design and FinishAliveState tallies alive_edges_ from
  // this array.
  alive_count_.resize(num_edges);  // every entry overwritten below
  for (size_t e = 0; e < num_edges; ++e) {
    alive_count_[e] = inst_offsets[e + 1] - inst_offsets[e];
  }

  instances_ = std::move(new_instances);
  inst_offsets_ = std::move(inst_offsets);
  instance_ids_ = std::move(instance_ids);
  maint_ = std::move(maint);
  FinishAliveState(targets.size());
  // The layout changed shape: drop the lazily sized dirty scratch and
  // force open round sessions (which alias PerEdgeAliveCounts and the
  // interned-key span) to restart instead of serving the old layout.
  dirty_stamp_.clear();
  dirty_epoch_ = 0;
  ++counts_flush_epoch_;
  return Status::Ok();
}

}  // namespace tpp::motif
