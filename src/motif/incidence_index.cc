#include "motif/incidence_index.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "common/check.h"
#include "common/flags.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace tpp::motif {

using graph::Edge;
using graph::EdgeKey;
using graph::Graph;

namespace {

// Upper bound on the contiguous item blocks of BlockedStableScatter:
// each block keeps one uint32 cursor per digit, so the bound caps the
// transient memory at 8 x num_digits.
constexpr int kMaxScatterBlocks = 8;

// The one piece of counting-sort scaffolding every build pass shares: a
// stable blocked counting scatter. Items [0, n) each emit (digit, value)
// pairs through `for_each(i, sink)` (digit < num_digits); the returned
// vector holds every value grouped by digit, preserving emission order
// within equal digits. Blocks parallelize the count and scatter passes;
// the serial cursor transform between them makes the output independent
// of the block count — it is exactly the serial emission order. When
// `offsets` is non-null it receives the num_digits + 1 group boundaries
// (offsets[d] .. offsets[d+1] brackets digit d). Used with one pair per
// key for the LSD intern sort (O(K + NumNodes) per pass, no comparison
// sort — previously the hottest serial stretch after enumeration) and
// with arity pairs per instance to lay out the CSR-1 posting lists.
template <typename Value, typename ForEachPair>
std::vector<Value> BlockedStableScatter(size_t n, size_t num_digits,
                                        int workers, ThreadPool& pool,
                                        std::vector<uint32_t>* offsets,
                                        ForEachPair for_each) {
  if (offsets) offsets->assign(num_digits + 1, 0);
  if (n == 0) return {};
  const int num_blocks = static_cast<int>(std::min<size_t>(
      std::max(workers, 1),
      std::min<size_t>(kMaxScatterBlocks, n)));
  const size_t block_size =
      (n + static_cast<size_t>(num_blocks) - 1) /
      static_cast<size_t>(num_blocks);
  std::vector<std::vector<uint32_t>> block_counts(
      static_cast<size_t>(num_blocks),
      std::vector<uint32_t>(num_digits, 0));
  pool.ParallelFor(static_cast<size_t>(num_blocks), workers, /*grain=*/1,
                   [&](size_t bbegin, size_t bend) {
                     for (size_t b = bbegin; b < bend; ++b) {
                       std::vector<uint32_t>& counts = block_counts[b];
                       const size_t lo = b * block_size;
                       const size_t hi = std::min(lo + block_size, n);
                       for (size_t k = lo; k < hi; ++k) {
                         for_each(k, [&](uint32_t digit, const Value&) {
                           ++counts[digit];
                         });
                       }
                     }
                   });
  uint32_t running = 0;
  for (size_t d = 0; d < num_digits; ++d) {
    if (offsets) (*offsets)[d] = running;
    for (int b = 0; b < num_blocks; ++b) {
      const uint32_t count = block_counts[b][d];
      block_counts[b][d] = running;  // becomes block b's cursor for d
      running += count;
    }
  }
  if (offsets) (*offsets)[num_digits] = running;
  std::vector<Value> out(running);
  pool.ParallelFor(static_cast<size_t>(num_blocks), workers, /*grain=*/1,
                   [&](size_t bbegin, size_t bend) {
                     for (size_t b = bbegin; b < bend; ++b) {
                       std::vector<uint32_t>& cursor = block_counts[b];
                       const size_t lo = b * block_size;
                       const size_t hi = std::min(lo + block_size, n);
                       for (size_t k = lo; k < hi; ++k) {
                         for_each(k, [&](uint32_t digit, const Value& value) {
                           out[cursor[digit]++] = value;
                         });
                       }
                     }
                   });
  return out;
}

Status ValidateTargetsAbsent(const Graph& g,
                             const std::vector<Edge>& targets) {
  for (const Edge& target : targets) {
    if (g.HasEdge(target.u, target.v)) {
      return Status::FailedPrecondition(
          StrFormat("target (%u,%u) still present; run phase-1 deletion first",
                    target.u, target.v));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<IncidenceIndex> IncidenceIndex::Build(
    const Graph& g, const std::vector<Edge>& targets, MotifKind kind) {
  return Build(g, targets, kind, BuildOptions{});
}

Result<IncidenceIndex> IncidenceIndex::Build(const Graph& g,
                                             const std::vector<Edge>& targets,
                                             MotifKind kind,
                                             const BuildOptions& options,
                                             BuildStats* stats) {
  TPP_RETURN_IF_ERROR(ValidateTargetsAbsent(g, targets));
  // In-build cancellation: polled here and between the stages below, so
  // a deadline that expires mid-construction stops at the next stage
  // boundary instead of paying for the whole build. Polls are pure reads
  // — a build that finishes in time is bit-identical with or without a
  // token armed.
  TPP_RETURN_IF_ERROR(PollCancellation(options.cancel, "index:build"));
  IncidenceIndex idx;
  const int workers =
      options.threads > 0 ? options.threads : GlobalThreadCount();
  ThreadPool& pool = GlobalThreadPool();
  WallTimer timer;

  // -- Stage 1: enumerate. Per-target tasks (hub targets split by
  // first-neighbor chunk) fan out over the shared pool; the merged array
  // is in the serial (target, emit) order at any thread count.
  size_t num_tasks = 0;
  idx.instances_ =
      EnumerateAllTargetSubgraphs(g, targets, kind, workers, &num_tasks);
  const size_t num_instances = idx.instances_.size();
  if (stats) {
    stats->enumerate_seconds = timer.Seconds();
    stats->tasks = num_tasks;
    stats->instances = num_instances;
  }

  TPP_RETURN_IF_ERROR(PollCancellation(options.cancel,
                                       "index:build:intern"));

  // -- Stage 2: intern participating edges. Every instance of one motif
  // kind has the same arity, so the flat key array is sized exactly and
  // filled with disjoint writes; a two-pass stable counting sort over the
  // node-id digits (larger endpoint, then smaller) plus unique assigns
  // ids in ascending key order in O(K + NumNodes) — no comparison sort.
  // The keyed query API and the CSR fill passes resolve ids through the
  // static flat probe table built from the sorted keys (see EdgeIdOf).
  timer.Restart();
  const size_t arity = MotifEdgeCount(kind);
  const TargetSubgraph* const instances = idx.instances_.data();
  std::vector<EdgeKey> flat_keys(num_instances * arity);
  pool.ParallelFor(num_instances, workers, /*grain=*/4096,
                   [&](size_t begin, size_t end) {
                     for (size_t i = begin; i < end; ++i) {
                       const TargetSubgraph& inst = instances[i];
                       for (size_t j = 0; j < arity; ++j) {
                         flat_keys[i * arity + j] = inst.edges[j];
                       }
                     }
                   });
  {
    std::vector<EdgeKey> by_v = BlockedStableScatter<EdgeKey>(
        flat_keys.size(), g.NumNodes(), workers, pool, nullptr,
        [&](size_t k, auto sink) {
          sink(graph::EdgeKeyV(flat_keys[k]), flat_keys[k]);
        });
    flat_keys = BlockedStableScatter<EdgeKey>(
        by_v.size(), g.NumNodes(), workers, pool, nullptr,
        [&](size_t k, auto sink) {
          sink(graph::EdgeKeyU(by_v[k]), by_v[k]);
        });
  }
  flat_keys.erase(std::unique(flat_keys.begin(), flat_keys.end()),
                  flat_keys.end());
  // Release the pre-dedup capacity (instances x arity keys) before the
  // buffer becomes a long-lived member — prototype indexes live for a
  // whole batch inside InstanceRepository.
  flat_keys.shrink_to_fit();
  idx.edge_keys_ = std::move(flat_keys);
  idx.BuildProbeTable();
  const size_t num_edges = idx.edge_keys_.size();
  if (stats) {
    stats->intern_seconds = timer.Seconds();
    stats->interned_edges = num_edges;
  }

  TPP_RETURN_IF_ERROR(PollCancellation(options.cancel, "index:build:csr"));

  // -- Stage 3: CSR layouts, each a parallel count pass, a serial prefix
  // sum, and a parallel fill pass into disjoint slots. The structures
  // under construction live in local vectors and move into the immutable
  // FlatArray members once finished.
  timer.Restart();

  // The bucket table EdgeIdOf resolves through: edge_keys_ is sorted by
  // (u, v), so all keys sharing a smaller endpoint form one short
  // contiguous run located by two array reads. Built here, kept for the
  // life of the index (it replaces the old hash-map interner).
  std::vector<uint32_t> u_offsets(g.NumNodes() + 1, 0);
  for (EdgeKey key : idx.edge_keys_) {
    ++u_offsets[graph::EdgeKeyU(key) + 1];
  }
  for (size_t u = 0; u < g.NumNodes(); ++u) {
    u_offsets[u + 1] += u_offsets[u];
  }
  idx.u_offsets_ = std::move(u_offsets);
  // The maintenance records densify instance -> (target, edge ids) for
  // the posting-list walks below and for DeleteEdge: compact sequential
  // reads instead of chasing 40-byte TargetSubgraphs.
  idx.arity_ = static_cast<uint8_t>(arity);
  std::vector<InstanceMaintenance> maint(num_instances);
  pool.ParallelFor(
      num_instances, workers, /*grain=*/2048, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const TargetSubgraph& inst = instances[i];
          InstanceMaintenance& m = maint[i];
          m.target = static_cast<uint32_t>(inst.target);
          for (size_t j = 0; j < arity; ++j) {
            const EdgeKey key = inst.edges[j];
            m.edge_ids[j] = idx.EdgeIdOf(key);
          }
        }
      });

  // CSR 1 (edge -> instances): the same stable blocked scatter, emitting
  // arity (edge id, instance id) pairs per instance. Posting lists hold
  // ascending instance ids — exactly the serial fill order — at any
  // block count, and the scatter's group boundaries are the CSR offsets.
  std::vector<uint32_t> inst_offsets;
  std::vector<uint32_t> instance_ids = BlockedStableScatter<uint32_t>(
      num_instances, num_edges, workers, pool, &inst_offsets,
      [&](size_t i, auto sink) {
        for (size_t j = 0; j < arity; ++j) {
          sink(maint[i].edge_ids[j], static_cast<uint32_t>(i));
        }
      });

  // Alive-count cache: everything is alive at build time, so the count is
  // just the posting-list length.
  idx.alive_count_.resize(num_edges);
  for (size_t e = 0; e < num_edges; ++e) {
    idx.alive_count_[e] = inst_offsets[e + 1] - inst_offsets[e];
  }

  // CSR 2 (edge -> per-target counts): instances are laid out in target
  // order and posting lists hold ascending instance ids, so each posting
  // list's target sequence is already ascending — a run-length encode
  // reproduces the serial sorted aggregation without any per-edge scratch.
  std::vector<uint32_t> tgt_offsets(num_edges + 1, 0);
  pool.ParallelFor(
      num_edges, workers, /*grain=*/2048, [&](size_t begin, size_t end) {
        for (size_t e = begin; e < end; ++e) {
          uint32_t runs = 0;
          uint32_t prev_target = 0;
          for (uint32_t p = inst_offsets[e]; p < inst_offsets[e + 1]; ++p) {
            const uint32_t target = maint[instance_ids[p]].target;
            if (runs == 0 || target != prev_target) {
              ++runs;
              prev_target = target;
            }
          }
          tgt_offsets[e + 1] = runs;
        }
      });
  for (size_t e = 0; e < num_edges; ++e) {
    tgt_offsets[e + 1] += tgt_offsets[e];
  }
  std::vector<uint32_t> tgt_ids(tgt_offsets.back());
  idx.tgt_counts_.resize(tgt_ids.size());
  pool.ParallelFor(
      num_edges, workers, /*grain=*/2048, [&](size_t begin, size_t end) {
        for (size_t e = begin; e < end; ++e) {
          uint32_t slot = tgt_offsets[e];
          for (uint32_t p = inst_offsets[e]; p < inst_offsets[e + 1]; ++p) {
            const uint32_t target = maint[instance_ids[p]].target;
            if (slot == tgt_offsets[e] || tgt_ids[slot - 1] != target) {
              tgt_ids[slot] = target;
              idx.tgt_counts_[slot] = 1;
              ++slot;
            } else {
              ++idx.tgt_counts_[slot - 1];
            }
          }
        }
      });

  // Slot table: the CSR-2 cell of (edge j of instance i, target of i),
  // found once here by binary search over the edge's ascending target
  // segment so DeleteEdge never scans it.
  pool.ParallelFor(
      num_instances, workers, /*grain=*/2048, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          InstanceMaintenance& m = maint[i];
          for (size_t j = 0; j < arity; ++j) {
            const uint32_t e = m.edge_ids[j];
            const uint32_t* seg_begin = tgt_ids.data() + tgt_offsets[e];
            const uint32_t* seg_end = tgt_ids.data() + tgt_offsets[e + 1];
            const uint32_t* it =
                std::lower_bound(seg_begin, seg_end, m.target);
            TPP_CHECK(it != seg_end && *it == m.target);
            m.slots[j] =
                static_cast<uint32_t>(tgt_offsets[e] + (it - seg_begin));
          }
        }
      });

  idx.inst_offsets_ = std::move(inst_offsets);
  idx.instance_ids_ = std::move(instance_ids);
  idx.tgt_offsets_ = std::move(tgt_offsets);
  idx.tgt_ids_ = std::move(tgt_ids);
  idx.maint_ = std::move(maint);
  idx.FinishAliveState(targets.size());
  idx.PopulateRepairCaches(targets);
  if (stats) stats->csr_seconds = timer.Seconds();
  return idx;
}

Result<IncidenceIndex> IncidenceIndex::BuildSerialReference(
    const Graph& g, const std::vector<Edge>& targets, MotifKind kind) {
  TPP_RETURN_IF_ERROR(ValidateTargetsAbsent(g, targets));
  IncidenceIndex idx;
  std::vector<TargetSubgraph> instances;
  for (size_t t = 0; t < targets.size(); ++t) {
    std::vector<TargetSubgraph> ts = EnumerateTargetSubgraphsReference(
        g, targets[t], kind, static_cast<int32_t>(t));
    for (TargetSubgraph& inst : ts) {
      instances.push_back(inst);
    }
  }

  // Intern participating edges in ascending key order so edge id order is
  // key order.
  std::vector<EdgeKey> edge_keys;
  for (const TargetSubgraph& inst : instances) {
    for (uint8_t j = 0; j < inst.num_edges; ++j) {
      edge_keys.push_back(inst.edges[j]);
    }
  }
  std::sort(edge_keys.begin(), edge_keys.end());
  edge_keys.erase(std::unique(edge_keys.begin(), edge_keys.end()),
                  edge_keys.end());
  edge_keys.shrink_to_fit();
  idx.edge_keys_ = std::move(edge_keys);
  // The old hash-map interner, kept local: the reference pays its
  // construction and per-occurrence lookups exactly as the pre-parallel
  // build did, then derives the bucket table the final layout carries.
  idx.BuildProbeTable();
  std::unordered_map<EdgeKey, uint32_t> edge_id;
  edge_id.reserve(idx.edge_keys_.size());
  for (uint32_t id = 0; id < idx.edge_keys_.size(); ++id) {
    edge_id.emplace(idx.edge_keys_[id], id);
  }
  const size_t num_edges = idx.edge_keys_.size();

  // CSR 1 (edge -> instances), counting pass then fill pass, resolving
  // ids through the hash map.
  std::vector<uint32_t> inst_offsets(num_edges + 1, 0);
  idx.arity_ = static_cast<uint8_t>(MotifEdgeCount(kind));
  std::vector<InstanceMaintenance> maint(instances.size());
  for (uint32_t i = 0; i < instances.size(); ++i) {
    const TargetSubgraph& inst = instances[i];
    maint[i].target = static_cast<uint32_t>(inst.target);
    for (uint8_t j = 0; j < inst.num_edges; ++j) {
      uint32_t e = edge_id.at(inst.edges[j]);
      maint[i].edge_ids[j] = e;
      ++inst_offsets[e + 1];
    }
  }
  for (size_t e = 0; e < num_edges; ++e) {
    inst_offsets[e + 1] += inst_offsets[e];
  }
  std::vector<uint32_t> instance_ids(inst_offsets.back());
  {
    std::vector<uint32_t> cursor(inst_offsets.begin(),
                                 inst_offsets.end() - 1);
    for (uint32_t i = 0; i < instances.size(); ++i) {
      const TargetSubgraph& inst = instances[i];
      for (uint8_t j = 0; j < inst.num_edges; ++j) {
        instance_ids[cursor[maint[i].edge_ids[j]]++] = i;
      }
    }
  }

  // Alive-count cache: everything is alive at build time, so the count is
  // just the posting-list length.
  idx.alive_count_.resize(num_edges);
  for (size_t e = 0; e < num_edges; ++e) {
    idx.alive_count_[e] = inst_offsets[e + 1] - inst_offsets[e];
  }

  // CSR 2 (edge -> per-target counts): aggregate each posting list into
  // (target, count) pairs, kept in ascending target order.
  std::vector<uint32_t> tgt_offsets(num_edges + 1, 0);
  std::vector<uint32_t> tgt_ids;
  std::vector<uint32_t> tgts;  // scratch per edge
  for (size_t e = 0; e < num_edges; ++e) {
    tgts.clear();
    for (uint32_t p = inst_offsets[e]; p < inst_offsets[e + 1]; ++p) {
      tgts.push_back(
          static_cast<uint32_t>(instances[instance_ids[p]].target));
    }
    std::sort(tgts.begin(), tgts.end());
    for (size_t k = 0; k < tgts.size(); ++k) {
      if (k > 0 && tgts[k] == tgts[k - 1]) {
        ++idx.tgt_counts_.back();
      } else {
        tgt_ids.push_back(tgts[k]);
        idx.tgt_counts_.push_back(1);
      }
    }
    tgt_offsets[e + 1] = static_cast<uint32_t>(tgt_ids.size());
  }

  // Slot table (the serial form of the parallel build's last pass).
  for (uint32_t i = 0; i < instances.size(); ++i) {
    InstanceMaintenance& m = maint[i];
    for (uint8_t j = 0; j < instances[i].num_edges; ++j) {
      const uint32_t e = m.edge_ids[j];
      uint32_t slot = tgt_offsets[e];
      while (tgt_ids[slot] != m.target) ++slot;
      m.slots[j] = slot;
    }
  }

  // Bucket table for the keyed query API (see EdgeIdOf).
  std::vector<uint32_t> u_offsets(g.NumNodes() + 1, 0);
  for (EdgeKey key : idx.edge_keys_) {
    ++u_offsets[graph::EdgeKeyU(key) + 1];
  }
  for (size_t u = 0; u < g.NumNodes(); ++u) {
    u_offsets[u + 1] += u_offsets[u];
  }

  idx.instances_ = std::move(instances);
  idx.inst_offsets_ = std::move(inst_offsets);
  idx.instance_ids_ = std::move(instance_ids);
  idx.tgt_offsets_ = std::move(tgt_offsets);
  idx.tgt_ids_ = std::move(tgt_ids);
  idx.maint_ = std::move(maint);
  idx.u_offsets_ = std::move(u_offsets);
  idx.FinishAliveState(targets.size());
  idx.PopulateRepairCaches(targets);
  return idx;
}

void IncidenceIndex::FinishAliveState(size_t num_targets) {
  alive_.assign(instances_.size(), 1);
  total_alive_ = instances_.size();
  alive_per_target_.assign(num_targets, 0);
  for (const TargetSubgraph& inst : instances_) {
    ++alive_per_target_[inst.target];
  }
  // Counted from the (already populated) per-edge cache rather than
  // assumed to be every interned key: a repaired index keeps zero-alive
  // keys interned (the universe only grows across edits, see
  // index_repair.cc), and snapshots of repaired indexes restore through
  // this same tail. On a cold build the two are equal.
  alive_edges_ = 0;
  for (uint32_t c : alive_count_) alive_edges_ += (c > 0 ? 1u : 0u);
  // Sized here so the deferral queues never allocate — including on fresh
  // copies of the index, whose vector copies keep this size. resize, not
  // assign: entries beyond [0, pending) are never read, and after a
  // same-universe repair this is a no-op instead of a full rewrite.
  counts_queue_.resize(edge_keys_.size());
  cells_queue_.resize(edge_keys_.size());
  counts_pending_ = 0;
  cells_pending_ = 0;
}

void IncidenceIndex::PopulateRepairCaches(const std::vector<Edge>& targets) {
  target_keys_sorted_.clear();
  target_keys_sorted_.reserve(targets.size());
  for (const Edge& t : targets) {
    target_keys_sorted_.push_back(graph::MakeEdgeKey(t.u, t.v));
  }
  std::sort(target_keys_sorted_.begin(), target_keys_sorted_.end());
  const size_t n = u_offsets_.size() == 0 ? 0 : u_offsets_.size() - 1;
  node_tgt_off_.assign(n + 1, 0);
  for (const Edge& t : targets) {
    ++node_tgt_off_[t.u + 1];
    ++node_tgt_off_[t.v + 1];
  }
  for (size_t x = 0; x < n; ++x) node_tgt_off_[x + 1] += node_tgt_off_[x];
  node_tgt_.assign(node_tgt_off_.back(), 0);
  std::vector<uint32_t> cursor(node_tgt_off_.begin(), node_tgt_off_.end() - 1);
  for (size_t t = 0; t < targets.size(); ++t) {
    node_tgt_[cursor[targets[t].u]++] = static_cast<uint32_t>(t);
    node_tgt_[cursor[targets[t].v]++] = static_cast<uint32_t>(t);
  }
}

void IncidenceIndex::BuildProbeTable() {
  // The static probe table of EdgeIdOf: power-of-two capacity at <= 50%
  // load (minimum 16 so lookups on an empty index terminate on an empty
  // slot), keys inserted in ascending id order with linear probing —
  // fully determined by edge_keys_. Built immediately after interning:
  // the CSR fill passes already resolve ids through it.
  size_t capacity = 16;
  while (capacity < edge_keys_.size() * 2) capacity <<= 1;
  probe_mask_ = capacity - 1;
  probe_shift_ = 64 - std::countr_zero(capacity);
  std::vector<EdgeKey> keys(capacity, 0);
  std::vector<uint32_t> ids(capacity, 0);
  for (uint32_t id = 0; id < edge_keys_.size(); ++id) {
    const EdgeKey key = edge_keys_[id];
    uint64_t slot = (key * 0x9E3779B97F4A7C15ull) >> probe_shift_;
    while (keys[slot] != 0) slot = (slot + 1) & probe_mask_;
    keys[slot] = key;
    ids[slot] = id;
  }
  probe_keys_ = std::move(keys);
  probe_ids_ = std::move(ids);
}

IncidenceIndex::SplitGain IncidenceIndex::GainFor(EdgeKey e, size_t t) {
  FlushDeferredMaintenance();
  SplitGain gain;
  const uint32_t id = EdgeIdOf(e);
  if (id == kNoEdge) return gain;
  size_t total = alive_count_[id];
  for (uint32_t p = tgt_offsets_[id]; p < tgt_offsets_[id + 1]; ++p) {
    if (tgt_ids_[p] == static_cast<uint32_t>(t)) {
      gain.own = tgt_counts_[p];
      break;
    }
  }
  gain.cross = total - gain.own;
  return gain;
}

size_t IncidenceIndex::DeleteEdge(EdgeKey e) {
  const uint32_t id = EdgeIdOf(e);
  if (id == kNoEdge) return 0;
  // Start the posting-list metadata load before the liveness check below
  // resolves: when the edge is alive both lines are needed, and the check
  // stalls on its own cache line either way.
  __builtin_prefetch(&inst_offsets_[id]);
  // Counts only decrease, so a cached zero is definitely dead even with
  // maintenance queued; a stale positive just means the walk below finds
  // nothing alive and kills zero.
  if (alive_count_[id] == 0) return 0;
  // Kill marks only: every alive instance through `id` flips to state 2
  // (dead, all maintenance queued). No count array, maintenance record,
  // or CSR-2 cell is touched here — the flushes replay this edge's
  // posting list later, once per granularity.
  const uint32_t pend = inst_offsets_[id + 1];
  const uint32_t* const inst_ids = instance_ids_.data();
  uint8_t* const alive = alive_.data();
  size_t killed = 0;
  for (uint32_t p = inst_offsets_[id]; p < pend; ++p) {
    const uint32_t i = inst_ids[p];
    if (alive[i] != 1) continue;
    alive[i] = 2;
    ++killed;
  }
  if (killed == 0) return 0;  // stale positive count: nothing was alive
  total_alive_ -= killed;  // eager: similarity traces read without flush
  // The only delete that can kill instances through `id` is this one
  // (everything through it is dead now), so the queue sees each id at
  // most once and its fixed capacity of NumInternedEdges() is exact.
  counts_queue_[counts_pending_++] = id;
  return killed;
}

size_t IncidenceIndex::DeleteEdge(EdgeKey e, std::vector<uint32_t>* dirty) {
  TPP_CHECK(dirty != nullptr);
  const size_t killed = DeleteEdge(e);
  FlushDeferredCounts(dirty);
  return killed;
}

template <int kArity, bool kDirty>
void IncidenceIndex::FlushCountsImpl(std::vector<uint32_t>* dirty) {
  const uint32_t* const inst_ids = instance_ids_.data();
  const InstanceMaintenance* const maint = maint_.data();
  uint8_t* const alive = alive_.data();
  uint32_t* const alive_count = alive_count_.data();
  size_t* const per_target = alive_per_target_.data();
  [[maybe_unused]] uint32_t* const stamp = dirty_stamp_.data();
  [[maybe_unused]] const uint32_t epoch = dirty_epoch_;
  size_t died_edges = 0;
  for (size_t k = 0; k < counts_pending_; ++k) {
    const uint32_t id = counts_queue_[k];
    for (uint32_t p = inst_offsets_[id]; p < inst_offsets_[id + 1]; ++p) {
      const uint32_t i = inst_ids[p];
      if (alive[i] != 2) continue;  // alive, or counts already applied
      alive[i] = 3;  // counts applied below; cell upkeep still queued
      const InstanceMaintenance& m = maint[i];
      --per_target[m.target];
      // Every edge of the killed instance loses one alive instance — the
      // queued edge itself included: all its alive instances die across
      // the queued walks, so its count reaches exactly zero with no
      // special case.
      for (int j = 0; j < kArity; ++j) {
        const uint32_t sib = m.edge_ids[j];
        if (--alive_count[sib] == 0) ++died_edges;
        if constexpr (kDirty) {
          if (stamp[sib] != epoch) {
            stamp[sib] = epoch;
            dirty->push_back(sib);
          }
        }
      }
    }
    cells_queue_[cells_pending_++] = id;
  }
  alive_edges_ -= died_edges;
  counts_pending_ = 0;
}

void IncidenceIndex::FlushDeferredCounts(std::vector<uint32_t>* dirty) {
  if (counts_pending_ == 0) return;
  ++counts_flush_epoch_;
  if (dirty != nullptr) {
    // Fresh stamp epoch so earlier emissions do not suppress this one.
    if (dirty_stamp_.size() < alive_count_.size()) {
      dirty_stamp_.assign(alive_count_.size(), 0);
      dirty_epoch_ = 0;
    }
    ++dirty_epoch_;
    switch (arity_) {
      case 2:
        FlushCountsImpl<2, true>(dirty);
        return;
      case 3:
        FlushCountsImpl<3, true>(dirty);
        return;
      default:
        FlushCountsImpl<4, true>(dirty);
        return;
    }
  }
  switch (arity_) {
    case 2:
      FlushCountsImpl<2, false>(nullptr);
      return;
    case 3:
      FlushCountsImpl<3, false>(nullptr);
      return;
    default:
      FlushCountsImpl<4, false>(nullptr);
      return;
  }
}

void IncidenceIndex::FlushDeferredMaintenance() {
  FlushDeferredCounts();
  if (cells_pending_ == 0) return;
  uint32_t* const tgt_counts = tgt_counts_.data();
  const InstanceMaintenance* const maint = maint_.data();
  const uint32_t* const inst_ids = instance_ids_.data();
  uint8_t* const alive = alive_.data();
  const int arity = arity_;
  // Pass 1: every queued (deleted) edge's segment collapses to zero
  // wholesale — the edge is dead, so all its per-target counts are zero
  // by definition, and zeroing first lets the guard below absorb the
  // decrements its kills would have applied to it.
  for (size_t k = 0; k < cells_pending_; ++k) {
    const uint32_t id = cells_queue_[k];
    for (uint32_t q = tgt_offsets_[id]; q < tgt_offsets_[id + 1]; ++q) {
      tgt_counts[q] = 0;
    }
  }
  // Pass 2: walk each queued edge's posting list and apply the queued
  // kills (state 3).
  for (size_t k = 0; k < cells_pending_; ++k) {
    const uint32_t id = cells_queue_[k];
    for (uint32_t p = inst_offsets_[id]; p < inst_offsets_[id + 1]; ++p) {
      const uint32_t i = inst_ids[p];
      if (alive[i] != 3) continue;  // alive, or already fully flushed
      alive[i] = 0;
      const InstanceMaintenance& m = maint[i];
      for (int j = 0; j < arity; ++j) {
        // The cell > 0 guard absorbs decrements against wholesale-zeroed
        // (deleted) edges — including this instance's killer — see the
        // queue comment in the header.
        uint32_t& cell = tgt_counts[m.slots[j]];
        if (cell > 0) --cell;
      }
    }
  }
  cells_pending_ = 0;
}

void IncidenceIndex::AccumulateGains(EdgeKey e, std::vector<size_t>* out) {
  AccumulateGains(e, std::span<size_t>(*out));
}

void IncidenceIndex::AccumulateGains(EdgeKey e, std::span<size_t> out) {
  FlushDeferredMaintenance();
  const uint32_t id = EdgeIdOf(e);
  if (id == kNoEdge) return;
  for (uint32_t p = tgt_offsets_[id]; p < tgt_offsets_[id + 1]; ++p) {
    out[tgt_ids_[p]] += tgt_counts_[p];
  }
}

void IncidenceIndex::ReadGainRow(uint32_t id, std::span<uint32_t> out) const {
  std::fill(out.begin(), out.end(), 0u);
  for (uint32_t p = tgt_offsets_[id]; p < tgt_offsets_[id + 1]; ++p) {
    out[tgt_ids_[p]] = tgt_counts_[p];
  }
}

void IncidenceIndex::ReadGainRows(uint32_t first, size_t count, size_t stride,
                                  uint32_t* out) const {
  const size_t num_targets = alive_per_target_.size();
  // One running cursor covers the run's whole contiguous cell range
  // [tgt_offsets_[first], tgt_offsets_[first + count]); the offsets array
  // is only read once per row to find each row's end.
  uint32_t p = tgt_offsets_[first];
  for (size_t k = 0; k < count; ++k) {
    uint32_t* const row = out + k * stride;
    std::fill(row, row + num_targets, 0u);
    const uint32_t end = tgt_offsets_[first + k + 1];
    for (; p < end; ++p) row[tgt_ids_[p]] = tgt_counts_[p];
  }
}


std::vector<EdgeKey> IncidenceIndex::AliveCandidateEdges() {
  std::vector<EdgeKey> out;
  AliveCandidateEdgesInto(&out);
  return out;
}

void IncidenceIndex::AliveCandidateEdgesInto(std::vector<EdgeKey>* out) {
  FlushDeferredCounts();
  out->clear();
  out->reserve(alive_edges_);
  for (size_t e = 0; e < alive_count_.size(); ++e) {
    if (alive_count_[e] > 0) out->push_back(edge_keys_[e]);
  }
}

void IncidenceIndex::AliveCandidateGains(std::vector<EdgeKey>* edges,
                                         std::vector<size_t>* gains) {
  FlushDeferredCounts();
  edges->clear();
  gains->clear();
  edges->reserve(alive_edges_);
  gains->reserve(alive_edges_);
  for (size_t e = 0; e < alive_count_.size(); ++e) {
    if (alive_count_[e] > 0) {
      edges->push_back(edge_keys_[e]);
      gains->push_back(alive_count_[e]);
    }
  }
}

bool IncidenceIndex::BitIdentical(const IncidenceIndex& other) const {
  // Deferred maintenance is compared by EFFECT: a side with queued work
  // is replaced by a flushed value copy, then every structure compares
  // raw. Freshly built or already-flushed indexes — the common case in
  // the build benches — pay no copy at all.
  if (HasDeferredMaintenance()) {
    IncidenceIndex flushed = *this;
    flushed.FlushDeferredMaintenance();
    return flushed.BitIdentical(other);
  }
  if (other.HasDeferredMaintenance()) {
    IncidenceIndex flushed = other;
    flushed.FlushDeferredMaintenance();
    return BitIdentical(flushed);
  }
  const IncidenceIndex& a = *this;
  const IncidenceIndex& b = other;
  return a.instances_ == b.instances_ && a.alive_ == b.alive_ &&
         a.alive_per_target_ == b.alive_per_target_ &&
         a.total_alive_ == b.total_alive_ &&
         a.edge_keys_ == b.edge_keys_ &&
         a.u_offsets_ == b.u_offsets_ &&
         a.inst_offsets_ == b.inst_offsets_ &&
         a.instance_ids_ == b.instance_ids_ &&
         a.alive_count_ == b.alive_count_ &&
         a.alive_edges_ == b.alive_edges_ &&
         a.tgt_offsets_ == b.tgt_offsets_ && a.tgt_ids_ == b.tgt_ids_ &&
         a.tgt_counts_ == b.tgt_counts_ &&
         a.arity_ == b.arity_ && a.maint_ == b.maint_;
}

}  // namespace tpp::motif
