#include "motif/incidence_index.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace tpp::motif {

using graph::Edge;
using graph::EdgeKey;
using graph::Graph;

Result<IncidenceIndex> IncidenceIndex::Build(
    const Graph& g, const std::vector<Edge>& targets, MotifKind kind) {
  IncidenceIndex idx;
  idx.alive_per_target_.assign(targets.size(), 0);
  for (size_t t = 0; t < targets.size(); ++t) {
    const Edge& target = targets[t];
    if (g.HasEdge(target.u, target.v)) {
      return Status::FailedPrecondition(
          StrFormat("target (%u,%u) still present; run phase-1 deletion first",
                    target.u, target.v));
    }
    std::vector<TargetSubgraph> ts = EnumerateTargetSubgraphs(
        g, target, kind, static_cast<int32_t>(t));
    for (TargetSubgraph& inst : ts) {
      idx.instances_.push_back(inst);
    }
  }
  idx.alive_.assign(idx.instances_.size(), 1);
  idx.total_alive_ = idx.instances_.size();

  // Intern participating edges in ascending key order so edge id order is
  // key order (AliveCandidateEdges then never needs a sort).
  for (const TargetSubgraph& inst : idx.instances_) {
    for (uint8_t j = 0; j < inst.num_edges; ++j) {
      idx.edge_keys_.push_back(inst.edges[j]);
    }
  }
  std::sort(idx.edge_keys_.begin(), idx.edge_keys_.end());
  idx.edge_keys_.erase(
      std::unique(idx.edge_keys_.begin(), idx.edge_keys_.end()),
      idx.edge_keys_.end());
  idx.edge_id_.reserve(idx.edge_keys_.size());
  for (uint32_t id = 0; id < idx.edge_keys_.size(); ++id) {
    idx.edge_id_.emplace(idx.edge_keys_[id], id);
  }
  const size_t num_edges = idx.edge_keys_.size();

  // CSR 1 (edge -> instances), counting pass then fill pass.
  idx.inst_offsets_.assign(num_edges + 1, 0);
  idx.inst_edge_ids_.resize(idx.instances_.size());
  for (uint32_t i = 0; i < idx.instances_.size(); ++i) {
    const TargetSubgraph& inst = idx.instances_[i];
    ++idx.alive_per_target_[inst.target];
    for (uint8_t j = 0; j < inst.num_edges; ++j) {
      uint32_t e = idx.edge_id_.at(inst.edges[j]);
      idx.inst_edge_ids_[i][j] = e;
      ++idx.inst_offsets_[e + 1];
    }
  }
  for (size_t e = 0; e < num_edges; ++e) {
    idx.inst_offsets_[e + 1] += idx.inst_offsets_[e];
  }
  idx.instance_ids_.resize(idx.inst_offsets_.back());
  {
    std::vector<uint32_t> cursor(idx.inst_offsets_.begin(),
                                 idx.inst_offsets_.end() - 1);
    for (uint32_t i = 0; i < idx.instances_.size(); ++i) {
      const TargetSubgraph& inst = idx.instances_[i];
      for (uint8_t j = 0; j < inst.num_edges; ++j) {
        idx.instance_ids_[cursor[idx.inst_edge_ids_[i][j]]++] = i;
      }
    }
  }

  // Alive-count cache: everything is alive at build time, so the count is
  // just the posting-list length.
  idx.alive_count_.resize(num_edges);
  for (size_t e = 0; e < num_edges; ++e) {
    idx.alive_count_[e] = idx.inst_offsets_[e + 1] - idx.inst_offsets_[e];
  }

  // CSR 2 (edge -> per-target counts): aggregate each posting list into
  // (target, count) pairs, kept in ascending target order.
  idx.tgt_offsets_.assign(num_edges + 1, 0);
  std::vector<uint32_t> tgts;  // scratch per edge
  for (size_t e = 0; e < num_edges; ++e) {
    tgts.clear();
    for (uint32_t p = idx.inst_offsets_[e]; p < idx.inst_offsets_[e + 1];
         ++p) {
      tgts.push_back(
          static_cast<uint32_t>(idx.instances_[idx.instance_ids_[p]].target));
    }
    std::sort(tgts.begin(), tgts.end());
    for (size_t k = 0; k < tgts.size(); ++k) {
      if (k > 0 && tgts[k] == tgts[k - 1]) {
        ++idx.tgt_counts_.back();
      } else {
        idx.tgt_ids_.push_back(tgts[k]);
        idx.tgt_counts_.push_back(1);
      }
    }
    idx.tgt_offsets_[e + 1] = static_cast<uint32_t>(idx.tgt_ids_.size());
  }
  return idx;
}

IncidenceIndex::SplitGain IncidenceIndex::GainFor(EdgeKey e, size_t t) const {
  SplitGain gain;
  auto it = edge_id_.find(e);
  if (it == edge_id_.end()) return gain;
  uint32_t id = it->second;
  size_t total = alive_count_[id];
  for (uint32_t p = tgt_offsets_[id]; p < tgt_offsets_[id + 1]; ++p) {
    if (tgt_ids_[p] == static_cast<uint32_t>(t)) {
      gain.own = tgt_counts_[p];
      break;
    }
  }
  gain.cross = total - gain.own;
  return gain;
}

void IncidenceIndex::AccumulateGains(EdgeKey e,
                                     std::vector<size_t>* out) const {
  auto it = edge_id_.find(e);
  if (it == edge_id_.end()) return;
  uint32_t id = it->second;
  for (uint32_t p = tgt_offsets_[id]; p < tgt_offsets_[id + 1]; ++p) {
    (*out)[tgt_ids_[p]] += tgt_counts_[p];
  }
}

size_t IncidenceIndex::DeleteEdge(EdgeKey e) {
  auto it = edge_id_.find(e);
  if (it == edge_id_.end()) return 0;
  uint32_t id = it->second;
  if (alive_count_[id] == 0) return 0;  // already dead: O(1) no-op
  size_t killed = 0;
  for (uint32_t p = inst_offsets_[id]; p < inst_offsets_[id + 1]; ++p) {
    uint32_t i = instance_ids_[p];
    if (!alive_[i]) continue;
    alive_[i] = 0;
    const uint32_t target = static_cast<uint32_t>(instances_[i].target);
    --alive_per_target_[target];
    --total_alive_;
    ++killed;
    // Restore the invariant: every edge of the killed instance (including
    // `id` itself) loses one alive instance, in both count structures.
    for (uint8_t j = 0; j < instances_[i].num_edges; ++j) {
      uint32_t sib = inst_edge_ids_[i][j];
      TPP_CHECK_GT(alive_count_[sib], 0u);
      --alive_count_[sib];
      for (uint32_t q = tgt_offsets_[sib]; q < tgt_offsets_[sib + 1]; ++q) {
        if (tgt_ids_[q] == target) {
          --tgt_counts_[q];
          break;
        }
      }
    }
  }
  return killed;
}

std::vector<EdgeKey> IncidenceIndex::AliveCandidateEdges() const {
  std::vector<EdgeKey> out;
  for (size_t e = 0; e < alive_count_.size(); ++e) {
    if (alive_count_[e] > 0) out.push_back(edge_keys_[e]);
  }
  return out;
}

void IncidenceIndex::AliveCandidateGains(std::vector<EdgeKey>* edges,
                                         std::vector<size_t>* gains) const {
  edges->clear();
  gains->clear();
  edges->reserve(edge_keys_.size());
  gains->reserve(edge_keys_.size());
  for (size_t e = 0; e < alive_count_.size(); ++e) {
    if (alive_count_[e] > 0) {
      edges->push_back(edge_keys_[e]);
      gains->push_back(alive_count_[e]);
    }
  }
}

}  // namespace tpp::motif
